module sortlast

go 1.22
