package sortlast_test

import (
	"fmt"

	"sortlast"
)

// Render the paper's cube sample on four simulated processors with the
// BSBRC compositing method and inspect the cost summary.
func Example() {
	res, err := sortlast.Render("cube", sortlast.Options{
		Processors: 4,
		Method:     "bsbrc",
		Width:      96, Height: 96,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(res.Stats.Method, res.Stats.P)
	fmt.Println(res.Stats.TotalMS > 0)
	// Output:
	// BSBRC 4
	// true
}

// Any processor count works: non-powers-of-two use the paper's §5 fold
// extension automatically.
func Example_nonPowerOfTwo() {
	res, err := sortlast.Render("cube", sortlast.Options{
		Processors: 6,
		Width:      64, Height: 64,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(res.Stats.Method)
	// Output:
	// BSBRC+fold
}

// Caller-provided volume data renders through the same pipeline.
func ExampleRenderRaw() {
	const n = 16
	data := make([]uint8, n*n*n)
	for z := 6; z < 10; z++ {
		for y := 6; y < 10; y++ {
			for x := 6; x < 10; x++ {
				data[(z*n+y)*n+x] = 220
			}
		}
	}
	res, err := sortlast.RenderRaw(data, n, n, n, "linear", sortlast.Options{
		Processors: 2, Width: 32, Height: 32,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(res.Image.At(16, 16) > 0)
	// Output:
	// true
}
