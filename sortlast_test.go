package sortlast

import (
	"bytes"
	"strings"
	"testing"
)

func TestRenderDefaults(t *testing.T) {
	res, err := Render("cube", Options{Processors: 4, Width: 96, Height: 96})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Method != "BSBRC" || res.Stats.P != 4 {
		t.Errorf("stats echo wrong: %+v", res.Stats)
	}
	if res.Stats.TotalMS <= 0 {
		t.Error("modeled total must be positive")
	}
	if res.Image.Width != 96 || len(res.Image.Gray) != 96*96 {
		t.Error("image shape wrong")
	}
	lit := 0
	for _, g := range res.Image.Gray {
		if g > 0 {
			lit++
		}
	}
	if lit == 0 {
		t.Error("image is black")
	}
	if res.Image.At(48, 48) == 0 {
		t.Error("cube center must be lit")
	}
}

func TestRenderAllDatasetsAndMethods(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix is slow")
	}
	for _, ds := range Datasets() {
		res, err := Render(ds, Options{Processors: 2, Width: 96, Height: 96})
		if err != nil {
			t.Fatalf("%s: %v", ds, err)
		}
		if res.Stats.Dataset != ds {
			t.Errorf("dataset echo: %+v", res.Stats)
		}
	}
	for _, m := range Methods() {
		if _, err := Render("cube", Options{Processors: 4, Method: m, Width: 96, Height: 96}); err != nil {
			t.Fatalf("%s: %v", m, err)
		}
	}
}

func TestRenderNonPowerOfTwo(t *testing.T) {
	res, err := Render("cube", Options{Processors: 5, Width: 64, Height: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Stats.Method, "fold") {
		t.Errorf("method = %q, expected folded", res.Stats.Method)
	}
}

func TestRenderRaw(t *testing.T) {
	const n = 24
	data := make([]uint8, n*n*n)
	for z := 8; z < 16; z++ {
		for y := 8; y < 16; y++ {
			for x := 8; x < 16; x++ {
				data[(z*n+y)*n+x] = 200
			}
		}
	}
	res, err := RenderRaw(data, n, n, n, "linear", Options{Processors: 4, Width: 64, Height: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Image.At(32, 32) == 0 {
		t.Error("raw cube center must be lit")
	}
	if _, err := RenderRaw(data[:5], n, n, n, "linear", Options{}); err == nil {
		t.Error("size mismatch must error")
	}
	if _, err := RenderRaw(data, n, n, n, "bogus-tf", Options{}); err == nil {
		t.Error("unknown transfer preset must error")
	}
}

func TestImagePGM(t *testing.T) {
	res, err := Render("cube", Options{Processors: 2, Width: 32, Height: 32})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Image.WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("P5\n32 32\n255\n")) {
		t.Errorf("PGM header wrong: %q", buf.Bytes()[:20])
	}
}

func TestListings(t *testing.T) {
	if len(Datasets()) != 4 || len(Methods()) != 12 {
		t.Error("listings changed unexpectedly")
	}
	have := map[string]bool{}
	for _, m := range Methods() {
		have[m] = true
	}
	for _, m := range []string{"bsbrc", "ds", "dfb"} {
		if !have[m] {
			t.Errorf("method %q missing from listing %v", m, Methods())
		}
	}
	if SP2Params() == "" {
		t.Error("SP2Params must describe the preset")
	}
}
