// Package sortlast is a sort-last-sparse parallel volume rendering
// system for distributed memory machines, reproducing Yang, Yu and
// Chung, "Efficient Compositing Methods for the Sort-Last-Sparse
// Parallel Volume Rendering System on Distributed Memory Multicomputers"
// (ICPP 1999).
//
// The facade runs the complete three-phase pipeline — partitioning,
// parallel ray-cast rendering, and image compositing — over a simulated
// distributed-memory machine (one goroutine per processor, message
// passing only) and reports the compositing-cost quantities the paper
// studies. The compositing methods are the paper's BS, BSBR, BSLC and
// BSBRC plus the direct-send, parallel-pipeline and binary-tree
// baselines; see internal/core for the algorithms and DESIGN.md for the
// system inventory.
package sortlast

import (
	"fmt"
	"io"

	"sortlast/internal/core"
	"sortlast/internal/costmodel"
	"sortlast/internal/frame"
	"sortlast/internal/harness"
	"sortlast/internal/render"
	"sortlast/internal/transfer"
	"sortlast/internal/volume"
)

// Options configure one rendering run. The zero value renders the
// engine_low dataset on 8 processors with BSBRC at 384x384.
type Options struct {
	// Processors is the number of simulated ranks; any count >= 1 works
	// (non-powers-of-two use the fold extension). Default 8.
	Processors int
	// Method is the compositing method; see Methods for the list.
	// Default bsbrc, the paper's best.
	Method string
	// Width and Height set the image size. Default 384x384, the paper's
	// smaller configuration.
	Width, Height int
	// RotX and RotY rotate the viewpoint in degrees.
	RotX, RotY float64
	// Shaded enables gradient-based Lambertian shading.
	Shaded bool
	// Workers bounds the per-rank ray-casting worker pool. Zero means
	// GOMAXPROCS; 1 renders each rank's subimage serially. The rendered
	// image is bit-identical for any value.
	Workers int
	// DistributeVolume ships subvolumes (with ghost cells) through the
	// message-passing layer instead of sharing memory, exercising the
	// partitioning phase faithfully.
	DistributeVolume bool
}

func (o Options) fill() Options {
	if o.Processors == 0 {
		o.Processors = 8
	}
	if o.Method == "" {
		o.Method = "bsbrc"
	}
	if o.Width == 0 {
		o.Width = 384
	}
	if o.Height == 0 {
		o.Height = 384
	}
	return o
}

// Stats summarize a run with the paper's quantities.
type Stats struct {
	Dataset string
	Method  string
	P       int

	// Modeled compositing costs (ms) under the SP2 cost model — the
	// values comparable to the paper's tables.
	CompMS, CommMS, TotalMS float64

	// Measured wall-clock (ms) on this host: rendering and compositing
	// compute, max over ranks.
	RenderMS, MeasuredCompMS float64

	// MMaxBytes is the maximum received message size over all ranks
	// (the paper's M_max).
	MMaxBytes int
	// EmptyRects counts empty receiving bounding rectangles (§3.2).
	EmptyRects int
}

// Image is the rendered 8-bit gray image.
type Image struct {
	Width, Height int
	Gray          []uint8 // row-major, len Width*Height
	img           *frame.Image
}

// At returns the gray value at (x, y).
func (im *Image) At(x, y int) uint8 { return im.Gray[y*im.Width+x] }

// WritePGM writes the image in binary PGM format.
func (im *Image) WritePGM(w io.Writer) error { return im.img.WritePGM(w) }

// WritePGMFile writes the image to a PGM file.
func (im *Image) WritePGMFile(path string) error { return im.img.WritePGMFile(path) }

// Result bundles the image and the run statistics.
type Result struct {
	Image *Image
	Stats Stats
}

// Datasets lists the built-in workloads, mirroring the paper's four test
// samples.
func Datasets() []string {
	return []string{"engine_low", "engine_high", "head", "cube"}
}

// Methods lists the available compositing methods in registration
// order: the paper's four, the baselines, the related-work encodings as
// swap variants, then the tile-routed subsystem (ds, dfb). The facade
// links the harness, so every registered method is available here.
func Methods() []string {
	return core.Names()
}

// Render runs the full pipeline on a built-in dataset.
func Render(dataset string, opt Options) (*Result, error) {
	opt = opt.fill()
	cfg := harness.Config{
		Dataset: dataset,
		Width:   opt.Width, Height: opt.Height,
		P:      opt.Processors,
		Method: opt.Method,
		RotX:   opt.RotX, RotY: opt.RotY,
		RenderOpts:       render.Options{Shaded: opt.Shaded, Workers: opt.Workers},
		DistributeVolume: opt.DistributeVolume,
	}
	return finish(harness.RunWithImage(cfg))
}

// RenderRaw runs the pipeline on caller-provided 8-bit volume data
// (x-fastest layout) under a transfer-function preset name (see
// Datasets) or "linear".
func RenderRaw(data []uint8, nx, ny, nz int, tfName string, opt Options) (*Result, error) {
	if len(data) != nx*ny*nz {
		return nil, fmt.Errorf("sortlast: %d samples for a %dx%dx%d volume", len(data), nx, ny, nz)
	}
	vol := volume.New(nx, ny, nz)
	copy(vol.Data, data)
	var tf *transfer.Func
	if tfName == "linear" {
		tf = transfer.Ramp("linear", 0, 255, 0.3)
	} else {
		f, err := transfer.Preset(tfName)
		if err != nil {
			return nil, err
		}
		tf = f
	}
	opt = opt.fill()
	cfg := harness.Config{
		Dataset: tfName,
		Volume:  vol,
		TF:      tf,
		Width:   opt.Width, Height: opt.Height,
		P:      opt.Processors,
		Method: opt.Method,
		RotX:   opt.RotX, RotY: opt.RotY,
		RenderOpts:       render.Options{Shaded: opt.Shaded, Workers: opt.Workers},
		DistributeVolume: opt.DistributeVolume,
	}
	return finish(harness.RunWithImage(cfg))
}

func finish(row *harness.Row, img *frame.Image, err error) (*Result, error) {
	if err != nil {
		return nil, err
	}
	w, h := img.Full().Dx(), img.Full().Dy()
	out := &Image{Width: w, Height: h, Gray: img.AppendGray(nil), img: img}
	return &Result{
		Image: out,
		Stats: Stats{
			Dataset: row.Dataset, Method: row.Method, P: row.P,
			CompMS: row.CompMS, CommMS: row.CommMS, TotalMS: row.TotalMS,
			RenderMS: row.RenderMS, MeasuredCompMS: row.MeasuredCompMS,
			MMaxBytes: row.MMax, EmptyRects: row.EmptyRects,
		},
	}, nil
}

// SP2Params exposes the cost-model preset used for the paper-comparable
// numbers, for documentation purposes.
func SP2Params() string { return fmt.Sprintf("%+v", costmodel.SP2()) }
