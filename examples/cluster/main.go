// Cluster example: run the pipeline as four ranks over real TCP loopback
// sockets — the same code path cmd/clusternode uses across machines —
// and verify the distributed image matches a serial rendering.
//
//	go run ./examples/cluster
package main

import (
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"sortlast/internal/core"
	"sortlast/internal/frame"
	"sortlast/internal/mp"
	"sortlast/internal/mpnet"
	"sortlast/internal/partition"
	"sortlast/internal/render"
	"sortlast/internal/transfer"
	"sortlast/internal/volume"
)

func main() {
	const p = 4
	vol := volume.HeadPhantom(128, 128, 56)
	tf := transfer.Head()
	cam := render.NewCamera(256, 256, vol.Bounds(), 15, 30)
	dec, err := partition.Decompose(vol.Bounds(), p)
	if err != nil {
		log.Fatal(err)
	}

	// Bind one loopback listener per rank so the address list is known
	// before any rank starts (a multi-machine run would use a hostfile).
	listeners := make([]net.Listener, p)
	addrs := make([]string, p)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	fmt.Println("ranks:", addrs)

	var wg sync.WaitGroup
	var final *frame.Image
	errs := make([]error, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = func() error {
				node, err := mpnet.Connect(mpnet.Config{
					Rank: r, Addrs: addrs, Listener: listeners[r],
					Opts: mp.Options{RecvTimeout: 30 * time.Second},
				})
				if err != nil {
					return err
				}
				defer node.Close()
				c := node.Comm()

				img := render.Raycast(vol, dec.Box(r), cam, tf, render.Options{})
				res, err := core.BSBRC{}.Composite(c, dec, cam.Dir, img)
				if err != nil {
					return err
				}
				fmt.Printf("rank %d: composited %d px, received %d bytes over TCP\n",
					r, res.Stats.TotalComposited(), res.Stats.BytesReceived())
				out, err := core.GatherImage(c, 0, res)
				if err != nil {
					return err
				}
				if r == 0 {
					final = out
				}
				return c.Barrier() // quiesce before Close
			}()
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			log.Fatalf("rank %d: %v", r, err)
		}
	}

	serial := render.Raycast(vol, vol.Bounds(), cam, tf, render.Options{})
	if d := serial.MaxAbsDiff(final, serial.Full()); d > 2e-3 {
		log.Fatalf("distributed image differs from serial by %g", d)
	}
	if err := final.WritePGMFile("cluster.pgm"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("distributed image matches serial rendering; wrote cluster.pgm")
}
