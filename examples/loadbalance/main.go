// Load-balancing study (paper §5 future work): with an uneven volume,
// midpoint partitioning leaves some ranks nearly idle during rendering.
// This example compares the uniform and work-median decompositions of
// the engine dataset — per-rank estimated work, measured render time,
// and the compositing timeline — and verifies the balanced partition
// still composites correctly.
//
//	go run ./examples/loadbalance
package main

import (
	"fmt"
	"log"

	"sortlast/internal/costmodel"
	"sortlast/internal/harness"
	"sortlast/internal/partition"
	"sortlast/internal/report"
	"sortlast/internal/volume"
)

func main() {
	const p = 8
	vol, _, err := harness.Dataset("engine_high")
	if err != nil {
		log.Fatal(err)
	}
	est := volume.VoxelWork{Vol: vol, Threshold: 20}

	fmt.Println("engine_high, P=8 — estimated per-rank rendering work")
	uniform, err := partition.Decompose(vol.Bounds(), p)
	if err != nil {
		log.Fatal(err)
	}
	weighted, err := partition.DecomposeWeighted(vol.Bounds(), p, est)
	if err != nil {
		log.Fatal(err)
	}
	for name, dec := range map[string]*partition.Decomposition{
		"uniform (midpoint)": uniform, "weighted (work median)": weighted,
	} {
		min, max := ^uint64(0), uint64(0)
		for r := 0; r < p; r++ {
			w := est.BoxWork(dec.Box(r))
			if w < min {
				min = w
			}
			if w > max {
				max = w
			}
		}
		fmt.Printf("  %-24s max/min work imbalance: %.2f\n", name, float64(max)/float64(min))
	}

	for _, balanced := range []bool{false, true} {
		cfg := harness.Config{
			Dataset: "engine_high",
			Width:   384, Height: 384,
			P: p, Method: "bsbrc",
			RotX: 20, RotY: 30,
			BalanceRender: balanced,
			Validate:      true,
		}
		row, rs, err := harness.RunDetailed(cfg)
		if err != nil {
			log.Fatal(err)
		}
		label := "uniform"
		if balanced {
			label = "balanced"
		}
		fmt.Printf("\n%s partition: render %.1f ms (slowest rank), composite %.2f ms modeled, validated (diff %.1g)\n",
			label, row.RenderMS, row.TotalMS, row.ValidateDiff)
		fmt.Print(report.Timeline(rs, costmodel.SP2(), 48))
	}
}
