// Strong-scaling study: the paper's core observation is that rendering
// scales with processors while compositing becomes the bottleneck. This
// example sweeps P for one dataset and prints, per method, the modeled
// compositing cost next to the measured per-rank rendering time — the
// crossover is the reason the compositing methods matter.
//
//	go run ./examples/scaling [dataset]
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"sortlast/internal/harness"
	"sortlast/internal/report"
)

func main() {
	dataset := "head"
	if len(os.Args) > 1 {
		dataset = os.Args[1]
	}
	methods := []string{"bs", "bsbr", "bslc", "bsbrc"}
	var rows []harness.Row

	fmt.Printf("%s, 384x384 — strong scaling\n\n", dataset)
	tw := tabwriter.NewWriter(os.Stdout, 6, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "P\trender (measured ms)\tBS total\tBSBR total\tBSLC total\tBSBRC total\t(modeled ms)\t")
	for _, p := range harness.PowersOfTwo(64) {
		totals := map[string]float64{}
		var renderMS float64
		for _, m := range methods {
			row, err := harness.Run(harness.Config{
				Dataset: dataset,
				Width:   384, Height: 384,
				P: p, Method: m,
			})
			if err != nil {
				log.Fatal(err)
			}
			totals[m] = row.TotalMS
			renderMS = row.RenderMS
			rows = append(rows, *row)
		}
		fmt.Fprintf(tw, "%d\t%.1f\t%.2f\t%.2f\t%.2f\t%.2f\t\t\n",
			p, renderMS, totals["bs"], totals["bsbr"], totals["bslc"], totals["bsbrc"])
	}
	tw.Flush()

	fmt.Println("\nFull table (modeled SP2 costs):")
	fmt.Println(report.Table("", rows, []string{"BS", "BSBR", "BSLC", "BSBRC"}))
	fmt.Println("Rendering time falls ~1/P while plain BS compositing stays flat —")
	fmt.Println("the threshold beyond which compositing dominates is the paper's motivation.")
}
