// Surface rendering (paper §1 lists surface rendering via marching
// cubes as the other rendering path of a sort-last system; §2's
// Ahrens–Painter compositing was designed for it). This example extracts
// the head phantom's skull isosurface with marching tetrahedra,
// rasterizes it in parallel, composites with BSBRC, and then shows why
// encoding choice depends on image type: value-based RLE compresses
// flat-shaded surface images well but degenerates on float volume
// images — §3.3's argument, measured in both directions.
//
//	go run ./examples/surface
package main

import (
	"fmt"
	"log"

	"sortlast/internal/frame"
	"sortlast/internal/harness"
	"sortlast/internal/render"
	"sortlast/internal/rle"
)

func main() {
	const p = 8
	base := harness.Config{
		Dataset: "head",
		Width:   384, Height: 384,
		P: p, Method: "bsbrc",
		RotX: 20, RotY: 30,
		Surface:    true,
		IsoLevel:   160, // skull density
		RasterOpts: render.RasterOptions{Flat: true, Levels: 12},
		Validate:   true,
	}
	row, img, err := harness.RunWithImage(base)
	if err != nil {
		log.Fatal(err)
	}
	if err := img.WritePGMFile("skull.pgm"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("skull isosurface on %d ranks: %d surface pixels, composite %.2f ms modeled, validated\n",
		p, row.NonBlank, row.TotalMS)
	fmt.Println("wrote skull.pgm")

	// Encoding comparison on the two image types.
	fmt.Println("\nvalue-RLE compression by image type (runs per non-blank pixel; lower is better):")
	for _, mode := range []struct {
		name    string
		surface bool
	}{{"surface (flat-shaded)", true}, {"volume (ray-cast)", false}} {
		cfg := base
		cfg.Surface = mode.surface
		cfg.Validate = false
		_, im, err := harness.RunWithImage(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s %.3f\n", mode.name, valueRunsPerPixel(im))
	}
	fmt.Println("\nValue runs repeat on flat-shaded surfaces but almost never on float")
	fmt.Println("volume pixels — why BSLC/BSBRC encode blank/non-blank state instead.")
}

func valueRunsPerPixel(img *frame.Image) float64 {
	runs := rle.EncodeValues(img.PackRegion(img.Full()))
	nonBlankRuns := 0
	for _, r := range runs {
		if !r.Value.Blank() {
			nonBlankRuns++
		}
	}
	nb := img.CountNonBlank(img.Full())
	if nb == 0 {
		return 0
	}
	return float64(nonBlankRuns) / float64(nb)
}
