// Rotation study (paper §3.2): as the viewpoint rotates about one and
// then two axes, split planes stop separating paired footprints in
// screen space, the ratio of empty receiving bounding rectangles falls,
// and the bounding-rectangle methods ship more pixels. This example
// sweeps a camera orbit and prints, per frame, the empty-rectangle ratio
// and the M_max of BSBR vs BSBRC vs BSLC — the mechanism behind the
// paper's "factors of a viewing point are rotation dimension and
// rotation degree".
//
//	go run ./examples/rotation
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"sortlast/internal/harness"
)

func main() {
	const p = 16
	fmt.Printf("engine_high, P=%d, 384x384 — viewpoint rotation sweep\n\n", p)
	tw := tabwriter.NewWriter(os.Stdout, 6, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "rotX\trotY\tempty rects\tBSBR M_max\tBSBRC M_max\tBSLC M_max\tBSBRC total ms\t")

	frames := []struct{ rx, ry float64 }{
		{0, 0},           // normal orthogonal projection
		{0, 15}, {0, 30}, // rotating about one axis
		{0, 45}, {0, 60},
		{15, 15}, {30, 30}, // rotating about two axes
		{45, 60}, {60, 45},
	}
	for _, f := range frames {
		var mmax [3]int
		var empty int
		var total float64
		for i, m := range []string{"bsbr", "bsbrc", "bslc"} {
			row, err := harness.Run(harness.Config{
				Dataset: "engine_high",
				Width:   384, Height: 384,
				P: p, Method: m,
				RotX: f.rx, RotY: f.ry,
			})
			if err != nil {
				log.Fatal(err)
			}
			mmax[i] = row.MMax
			if m == "bsbrc" {
				empty = row.EmptyRects
				total = row.TotalMS
			}
		}
		fmt.Fprintf(tw, "%.0f\t%.0f\t%d\t%d\t%d\t%d\t%.2f\t\n",
			f.rx, f.ry, empty, mmax[0], mmax[1], mmax[2], total)
	}
	tw.Flush()
	fmt.Println("\nEmpty receiving rectangles shrink as rotation grows, and the")
	fmt.Println("gap between BSBR and BSBRC widens: exactly the paper's analysis.")
}
