// Quickstart: render a built-in dataset on 8 simulated processors with
// the paper's best compositing method (BSBRC) and save the image.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sortlast"
)

func main() {
	res, err := sortlast.Render("engine_low", sortlast.Options{
		Processors: 8,
		Method:     "bsbrc",
		Width:      384,
		Height:     384,
		RotX:       20,
		RotY:       30,
	})
	if err != nil {
		log.Fatal(err)
	}

	if err := res.Image.WritePGMFile("quickstart.pgm"); err != nil {
		log.Fatal(err)
	}

	s := res.Stats
	fmt.Printf("rendered %s with %s on %d processors\n", s.Dataset, s.Method, s.P)
	fmt.Printf("  compositing (modeled, SP2 parameters): comp %.2f ms + comm %.2f ms = %.2f ms\n",
		s.CompMS, s.CommMS, s.TotalMS)
	fmt.Printf("  maximum received message size: %d bytes\n", s.MMaxBytes)
	fmt.Printf("  host wall-clock: render %.1f ms, compositing compute %.2f ms\n",
		s.RenderMS, s.MeasuredCompMS)
	fmt.Println("wrote quickstart.pgm")
}
