// Command renderfleet runs the fleet gateway: N supervised renderd
// replicas behind one frame-protocol endpoint, with
// least-outstanding-work routing (camera-affinity tie-break), hedged
// dispatch at each replica's rolling p99, cross-replica retries, and a
// camera-quantized frame cache. The gateway speaks the same
// length-prefixed protocol as renderd, so internal/client works
// unchanged against it.
//
//	renderfleet -listen 127.0.0.1:7261 -metrics-addr 127.0.0.1:7262 -replicas 2 -p 4 &
//	curl -s http://127.0.0.1:7262/metrics | grep fleet_cache
//	curl -s 'http://127.0.0.1:7262/cache/invalidate?dataset=cube'
//	curl -s http://127.0.0.1:7262/debug/flight  # recent slow/failed/hedged requests
//
// Replicas are in-process by default (each its own supervised rank
// world); -attach points the gateway at externally-run renderd
// processes instead. -p takes either one value applied to every
// replica or a comma-separated list for a heterogeneous fleet.
// SIGINT/SIGTERM drain gracefully: in-flight frames finish, replicas
// shut down, hedge losers are reaped.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"sortlast/internal/autotune"
	"sortlast/internal/fleet"
	"sortlast/internal/server"
)

var (
	listen      = flag.String("listen", "127.0.0.1:7261", "frame-protocol listen address")
	metricsAddr = flag.String("metrics-addr", "127.0.0.1:7262", "observability sidecar address serving /healthz, /metrics, /cache/invalidate, /debug/pprof/ and /debug/flight; empty disables")
	replicas    = flag.Int("replicas", 2, "in-process renderd replicas (ignored with -attach)")
	attach      = flag.String("attach", "", "comma-separated addresses of externally-run renderd processes to route to instead of starting in-process replicas")
	pList       = flag.String("p", "4", "resident ranks per replica: one value for all, or a comma-separated per-replica list")
	world       = flag.String("world", "mp", "rank pool kind for in-process replicas: mp (in-process) or mpnet (TCP)")
	queue       = flag.Int("queue", 64, "admission queue depth per replica")
	inflight    = flag.Int("inflight", 2, "max frames pipelined per replica")
	workers     = flag.Int("workers", 0, "ray-casting workers per rank (0: GOMAXPROCS)")
	deadline    = flag.Duration("deadline", 30*time.Second, "default per-request deadline")
	frameTO     = flag.Duration("frame-timeout", 0, "per-frame watchdog deadline per replica (0: 60s)")
	profilePath = flag.String("profile", "", "machine profile JSON from cmd/calibrate, driving Method \"auto\" selection in each replica")
	cacheBytes  = flag.Int64("cache-bytes", 0, "frame cache byte budget (0: 64 MiB)")
	noCache     = flag.Bool("no-cache", false, "disable the frame cache")
	quant       = flag.Float64("quant", 0, "camera quantization step in degrees for cache keys (0: 0.25)")
	hedgeMin    = flag.Duration("hedge-min", 0, "floor on the hedge trigger delay (0: 10ms)")
	noHedge     = flag.Bool("no-hedge", false, "disable hedged dispatch")
	noTrace     = flag.Bool("no-trace", false, "disable request tracing at the gateway (no trace propagation to replicas, no merged span trees, no /debug/flight)")
	flightSize  = flag.Int("flight", 0, "flight recorder capacity: the last N slow/failed/hedged requests retained with merged span trees at /debug/flight (0: 64)")
	drain       = flag.Duration("drain", 30*time.Second, "graceful shutdown budget on SIGINT/SIGTERM")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "renderfleet: %v\n", err)
		os.Exit(1)
	}
}

// perReplicaP expands -p into one rank count per replica.
func perReplicaP(spec string, n int) ([]int, error) {
	parts := strings.Split(spec, ",")
	ps := make([]int, 0, len(parts))
	for _, s := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad -p value %q", s)
		}
		ps = append(ps, v)
	}
	if len(ps) == 1 {
		one := ps[0]
		ps = make([]int, n)
		for i := range ps {
			ps[i] = one
		}
	}
	if len(ps) != n {
		return nil, fmt.Errorf("-p lists %d values for %d replicas", len(ps), n)
	}
	return ps, nil
}

func run() error {
	var prof *autotune.Profile
	if *profilePath != "" {
		var err error
		if prof, err = autotune.LoadProfile(*profilePath); err != nil {
			return err
		}
	}

	var rcs []fleet.ReplicaConfig
	if *attach != "" {
		for _, a := range strings.Split(*attach, ",") {
			if a = strings.TrimSpace(a); a != "" {
				rcs = append(rcs, fleet.ReplicaConfig{Addr: a})
			}
		}
		if len(rcs) == 0 {
			return fmt.Errorf("-attach lists no addresses")
		}
	} else {
		if *replicas < 1 {
			return fmt.Errorf("-replicas must be >= 1")
		}
		ps, err := perReplicaP(*pList, *replicas)
		if err != nil {
			return err
		}
		for i := 0; i < *replicas; i++ {
			rcs = append(rcs, fleet.ReplicaConfig{Server: &server.Config{
				World:           *world,
				P:               ps[i],
				QueueDepth:      *queue,
				MaxInFlight:     *inflight,
				Workers:         *workers,
				DefaultDeadline: *deadline,
				FrameTimeout:    *frameTO,
				Profile:         prof,
			}})
		}
	}

	cb := *cacheBytes
	if *noCache {
		cb = -1
	}
	g, err := fleet.Start(fleet.Config{
		Addr:            *listen,
		HTTPAddr:        *metricsAddr,
		Replicas:        rcs,
		CacheBytes:      cb,
		QuantDeg:        *quant,
		HedgeMin:        *hedgeMin,
		HedgeDisabled:   *noHedge,
		DefaultDeadline: *deadline,
		TracingDisabled: *noTrace,
		FlightSize:      *flightSize,
	})
	if err != nil {
		return err
	}
	mode := fmt.Sprintf("%d in-process replicas", len(rcs))
	if *attach != "" {
		mode = fmt.Sprintf("%d attached replicas", len(rcs))
	}
	fmt.Printf("renderfleet: serving frames on %s (%s, cache=%v, hedge=%v)\n",
		g.Addr(), mode, !*noCache, !*noHedge)
	if a := g.HTTPAddr(); a != nil {
		fmt.Printf("renderfleet: /healthz, /metrics, /cache/invalidate, /debug/pprof/ and /debug/flight on http://%s\n", a)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("renderfleet: draining...")
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	return g.Shutdown(ctx)
}
