// Command animate renders an orbit animation through the parallel
// pipeline — the interactive-exploration use case that motivates the
// paper's §1 ("it is important for users to interactively explore the
// volume data in real time") — writing one PGM per frame plus a CSV of
// per-frame compositing stats, which shows how viewpoint rotation moves
// the compositing cost (the §3.2 effect) over a whole orbit.
//
//	animate -dataset engine_high -p 16 -frames 12 -outdir frames/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"sortlast/internal/autotune"
	"sortlast/internal/costmodel"
	"sortlast/internal/harness"
	"sortlast/internal/report"
)

var (
	dataset = flag.String("dataset", "engine_high", "built-in dataset")
	p       = flag.Int("p", 8, "number of simulated processors")
	method  = flag.String("method", "bsbrc", "compositing method, or auto for per-frame adaptive selection")
	profile = flag.String("profile", "", "machine profile JSON from cmd/calibrate driving -method auto (default: the paper's SP2 preset)")
	size    = flag.Int("size", 384, "image size (square)")
	frames  = flag.Int("frames", 12, "frames in the orbit")
	tiltDeg = flag.Float64("tilt", 20, "constant tilt about x (degrees)")
	outdir  = flag.String("outdir", "", "output directory (required)")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "animate:", err)
		os.Exit(1)
	}
}

func run() error {
	if *outdir == "" {
		flag.Usage()
		return fmt.Errorf("-outdir is required")
	}
	if *frames < 1 {
		return fmt.Errorf("-frames must be positive")
	}
	if err := os.MkdirAll(*outdir, 0o755); err != nil {
		return err
	}
	// For -method auto, one selector persists across the orbit: frame 1
	// seeds from a pre-scan, later frames predict from the previous
	// frame's measured sparsity, so the method can follow the viewpoint.
	var sel *autotune.Selector
	if autotune.IsAuto(*method) {
		params := costmodel.SP2()
		if *profile != "" {
			prof, err := autotune.LoadProfile(*profile)
			if err != nil {
				return err
			}
			if params, err = prof.Params(autotune.TransportMP); err != nil {
				return err
			}
		}
		sel = autotune.NewSelector(params, autotune.TransportMP)
	}
	var rows []harness.Row
	for f := 0; f < *frames; f++ {
		roty := 360 * float64(f) / float64(*frames)
		row, img, err := harness.RunWithImage(harness.Config{
			Dataset: *dataset,
			Width:   *size, Height: *size,
			P: *p, Method: *method,
			RotX: *tiltDeg, RotY: roty,
			Selector: sel,
		})
		if err != nil {
			return fmt.Errorf("frame %d: %w", f, err)
		}
		path := filepath.Join(*outdir, fmt.Sprintf("frame_%03d.pgm", f))
		if err := img.WritePGMFile(path); err != nil {
			return err
		}
		rows = append(rows, *row)
		label := ""
		if row.Auto {
			label = fmt.Sprintf(" [auto→%s]", row.Method)
		}
		fmt.Printf("frame %3d (rotY %5.1f): composite %6.2f ms modeled, M_max %7d B, %d empty rects%s\n",
			f, roty, row.TotalMS, row.MMax, row.EmptyRects, label)
	}
	csvPath := filepath.Join(*outdir, "stats.csv")
	if err := os.WriteFile(csvPath, []byte(report.CSV(rows)), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d frames and %s\n", *frames, csvPath)
	return nil
}
