// Command renderbench measures the ray-cast kernel in isolation: for
// each scenario (dense, sparse, shaded, plus the paper's cube workload)
// it times the accelerated kernel against the pre-acceleration
// reference, verifies the outputs are byte-identical, and reports
// ns/ray, speedup and the macro-cell skip fraction.
//
//	go run ./cmd/renderbench -out BENCH_render.json
//
// A mismatch between the kernels is a hard failure (exit 1): the
// benchmark doubles as the identity check on real frame sizes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"sortlast/internal/frame"
	"sortlast/internal/harness"
	"sortlast/internal/render"
)

var (
	size  = flag.Int("size", 256, "image size (square)")
	iters = flag.Int("iters", 8, "timed accelerated-kernel iterations per scenario")
	quick = flag.Bool("quick", false, "1 iteration at a small size (CI smoke)")
	out   = flag.String("out", "BENCH_render.json", "output path (- for stdout)")
)

// record is one scenario's result.
type record struct {
	Scenario    string  `json:"scenario"`
	Dataset     string  `json:"dataset"`
	Size        int     `json:"size"`
	Shaded      bool    `json:"shaded,omitempty"`
	Rays        int64   `json:"rays"`
	NSPerRay    float64 `json:"ns_per_ray"`
	NSPerRayRef float64 `json:"ns_per_ray_reference"`
	Speedup     float64 `json:"speedup"`
	SkipFrac    float64 `json:"skip_fraction"`
	Identical   bool    `json:"identical"`
}

type scenario struct {
	name    string
	dataset string
	shaded  bool
}

var scenarios = []scenario{
	{"dense", "engine_low", false},
	{"sparse", "engine_high", false},
	{"shaded", "head", true},
	{"cube", "cube", false},
}

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "renderbench: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	sz, n := *size, *iters
	if *quick {
		sz, n = 96, 1
	}
	var records []record
	for _, sc := range scenarios {
		rec, err := runScenario(sc, sz, n)
		if err != nil {
			return err
		}
		if !rec.Identical {
			return fmt.Errorf("%s: accelerated kernel output differs from reference", sc.name)
		}
		fmt.Fprintf(os.Stderr, "renderbench: %-7s %-11s %5.0f ns/ray (reference %5.0f), %.2fx, skip %.0f%%\n",
			sc.name, sc.dataset, rec.NSPerRay, rec.NSPerRayRef, rec.Speedup, rec.SkipFrac*100)
		records = append(records, rec)
	}
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}

func runScenario(sc scenario, sz, n int) (record, error) {
	vol, tf, err := harness.Dataset(sc.dataset)
	if err != nil {
		return record{}, err
	}
	cam := render.NewCamera(sz, sz, vol.Bounds(), 20, 30)
	opt := render.Options{Shaded: sc.shaded, Workers: 1}
	rec := record{Scenario: sc.name, Dataset: sc.dataset, Size: sz, Shaded: sc.shaded}

	vol.MacroCells() // once per dataset in production; keep it out of the timing
	var rs render.Stats
	statOpt := opt
	statOpt.Stats = &rs
	accel := render.Raycast(vol, vol.Bounds(), cam, tf, statOpt)
	snap := rs.Snapshot()
	rec.Rays = snap.Rays
	rec.SkipFrac = snap.SkipFraction()
	if rec.Rays == 0 {
		return rec, fmt.Errorf("%s: no rays intersected the volume", sc.name)
	}

	refStart := time.Now()
	ref := render.RaycastReference(vol, vol.Bounds(), cam, tf, opt)
	refWall := time.Since(refStart)
	rec.Identical = identical(accel, ref)

	start := time.Now()
	for i := 0; i < n; i++ {
		render.Raycast(vol, vol.Bounds(), cam, tf, opt)
	}
	wall := time.Since(start) / time.Duration(n)
	rec.NSPerRay = float64(wall.Nanoseconds()) / float64(rec.Rays)
	rec.NSPerRayRef = float64(refWall.Nanoseconds()) / float64(rec.Rays)
	if wall > 0 {
		rec.Speedup = float64(refWall) / float64(wall)
	}
	return rec, nil
}

// identical compares the two renderings bit for bit over the full frame.
func identical(a, b *frame.Image) bool {
	if a.Bounds() != b.Bounds() {
		return false
	}
	full := a.Full()
	for y := full.Y0; y < full.Y1; y++ {
		for x := full.X0; x < full.X1; x++ {
			if a.At(x, y) != b.At(x, y) {
				return false
			}
		}
	}
	return true
}
