package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"sortlast/internal/autotune"
	"sortlast/internal/costmodel"
	"sortlast/internal/harness"
)

// Autobench geometry: a short animation whose scene flips from dense
// (cube fills the frame) to sparse (engine_low occupies a fraction of
// it), so the right compositing method changes mid-sequence. Small
// enough to run in CI, large enough that the methods separate.
const (
	abP      = 8
	abSize   = 192
	abFrames = 8
	abTilt   = 20
)

// abFrameSpec is one frame of the mixed animation.
type abFrameSpec struct {
	Dataset string  `json:"dataset"`
	RotY    float64 `json:"roty"`
}

func abSequence() []abFrameSpec {
	seq := make([]abFrameSpec, abFrames)
	for f := range seq {
		d := "cube"
		if f >= abFrames/2 {
			d = "engine_low"
		}
		seq[f] = abFrameSpec{Dataset: d, RotY: 45 * float64(f)}
	}
	return seq
}

// abFrame is one measured frame of one method's run.
type abFrame struct {
	Dataset string  `json:"dataset"`
	RotY    float64 `json:"roty"`
	// Method is what actually composited the frame — for the auto run,
	// the selector's per-frame resolution.
	Method string `json:"method"`
	// WallMS is the end-to-end harness wall time (render + composite +
	// gather); rendering is identical across methods, so differences are
	// compositing.
	WallMS float64 `json:"wall_ms"`
	// ModelMS is the cost model's compositing time for the frame.
	ModelMS float64 `json:"model_ms"`
}

type abMethod struct {
	TotalWallMS float64   `json:"total_wall_ms"`
	Switches    int       `json:"switches,omitempty"`
	Frames      []abFrame `json:"frames"`
}

type abReport struct {
	CreatedAt string        `json:"created_at"`
	P         int           `json:"p"`
	Size      int           `json:"size"`
	Transport string        `json:"transport"`
	// Params are the cost-model constants the selector predicted with
	// (calibrated on this host unless -profile overrode them).
	Params   costmodel.Params `json:"params"`
	Sequence []abFrameSpec    `json:"sequence"`
	// Methods maps "auto" and each fixed candidate to its run.
	Methods map[string]abMethod `json:"methods"`

	BestFixed    string  `json:"best_fixed"`
	WorstFixed   string  `json:"worst_fixed"`
	AutoVsBest   float64 `json:"auto_vs_best_ratio"`
	AutoVsWorst  float64 `json:"auto_vs_worst_ratio"`
	AutoSwitches int     `json:"auto_switches"`
}

// runAutobench measures Method "auto" against every fixed candidate
// over the mixed animation and writes the comparison JSON to -o.
func runAutobench() error {
	// The selector compares its predictions against measured wall times,
	// so the model must be in this host's units, not the paper's SP2
	// machine: with SP2 constants every measurement looks implausibly
	// fast, the chosen method's correction factor collapses, and the
	// selection freezes on whatever won the first frame. Calibrate
	// when the caller didn't supply a profile.
	var params costmodel.Params
	if *profileFl != "" {
		prof, err := autotune.LoadProfile(*profileFl)
		if err != nil {
			return err
		}
		if params, err = prof.Params(autotune.TransportMP); err != nil {
			return err
		}
	} else {
		fmt.Fprintln(os.Stderr, "autobench: no -profile; running quick calibration")
		prof, err := autotune.Calibrate(autotune.CalibrateOptions{
			Quick: true, Transports: []string{autotune.TransportMP},
		})
		if err != nil {
			return err
		}
		if params, err = prof.Params(autotune.TransportMP); err != nil {
			return err
		}
	}
	seq := abSequence()
	// Warm the volume cache so the first timed frame doesn't pay the
	// one-time synthesis cost.
	for _, d := range []string{"cube", "engine_low"} {
		if _, _, err := harness.Dataset(d); err != nil {
			return err
		}
	}

	rep := abReport{
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
		P:         abP, Size: abSize,
		Transport: autotune.TransportMP,
		Params:    params,
		Sequence:  seq,
		Methods:   map[string]abMethod{},
	}
	methods := append([]string{autotune.MethodAuto}, autotune.Candidates()...)
	for _, m := range methods {
		var sel *autotune.Selector
		if autotune.IsAuto(m) {
			sel = autotune.NewSelector(params, autotune.TransportMP)
		}
		run := abMethod{}
		prev := ""
		for fi, spec := range seq {
			cfg := harness.Config{
				Dataset: spec.Dataset,
				Width:   abSize, Height: abSize,
				P: abP, Method: m,
				RotX: abTilt, RotY: spec.RotY,
				Params:   params,
				Selector: sel,
			}
			start := time.Now()
			row, err := harness.Run(cfg)
			if err != nil {
				return fmt.Errorf("autobench %s frame %d: %w", m, fi, err)
			}
			wall := time.Since(start)
			resolved := m
			if row.Auto {
				resolved = registryName(row.Method)
				if prev != "" && resolved != prev {
					run.Switches++
				}
				prev = resolved
			}
			run.Frames = append(run.Frames, abFrame{
				Dataset: spec.Dataset, RotY: spec.RotY,
				Method: resolved,
				WallMS: float64(wall) / 1e6, ModelMS: row.TotalMS,
			})
			run.TotalWallMS += float64(wall) / 1e6
			fmt.Fprintf(os.Stderr, ".")
		}
		rep.Methods[m] = run
		fmt.Fprintf(os.Stderr, " %s %.1f ms\n", m, run.TotalWallMS)
	}

	rep.AutoSwitches = rep.Methods[autotune.MethodAuto].Switches
	for _, m := range autotune.Candidates() {
		t := rep.Methods[m].TotalWallMS
		if rep.BestFixed == "" || t < rep.Methods[rep.BestFixed].TotalWallMS {
			rep.BestFixed = m
		}
		if rep.WorstFixed == "" || t > rep.Methods[rep.WorstFixed].TotalWallMS {
			rep.WorstFixed = m
		}
	}
	autoT := rep.Methods[autotune.MethodAuto].TotalWallMS
	rep.AutoVsBest = autoT / rep.Methods[rep.BestFixed].TotalWallMS
	rep.AutoVsWorst = autoT / rep.Methods[rep.WorstFixed].TotalWallMS

	b, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if err := os.WriteFile(*outFile, b, 0o644); err != nil {
		return err
	}
	fmt.Printf("autobench: auto %.1f ms over %d frames (switched %d times); best fixed %s %.1f ms (ratio %.2f), worst %s %.1f ms (ratio %.2f); wrote %s\n",
		autoT, abFrames, rep.AutoSwitches,
		rep.BestFixed, rep.Methods[rep.BestFixed].TotalWallMS, rep.AutoVsBest,
		rep.WorstFixed, rep.Methods[rep.WorstFixed].TotalWallMS, rep.AutoVsWorst,
		*outFile)
	return nil
}

// registryName maps a compositor's display name (Row.Method) back to
// its registry name, so the report speaks the names requests use.
func registryName(display string) string {
	for _, m := range autotune.Candidates() {
		if strings.EqualFold(m, display) {
			return m
		}
	}
	return display
}
