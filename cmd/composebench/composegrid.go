package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"sortlast/internal/core"
	"sortlast/internal/harness"
)

// Compose-grid geometry: every registered method over a dense workload
// (cube fills the frame) and a sparse one (engine_low occupies a
// fraction of it) at the paper's Table 1 image size, plus the
// native-any-P pair at non-power-of-two ranks no other method serves.
const (
	cgSize = 384
	cgReps = 3
	cgTilt = 20
	cgTurn = 30
)

var (
	cgWorkloads = []struct{ Workload, Dataset string }{
		{"dense", "cube"},
		{"sparse", "engine_low"},
	}
	cgPow2Ps = []int{4, 8, 16}
	cgAnyPPs = []int{3, 6}
)

// cgCell is one measured grid cell.
type cgCell struct {
	Workload string `json:"workload"`
	Dataset  string `json:"dataset"`
	Method   string `json:"method"`
	P        int    `json:"p"`
	// WallMS is the best-of-reps measured compositing wall: the slowest
	// rank's composite span including waits — the time a synchronized
	// world actually spends between render and gather.
	WallMS float64 `json:"wall_ms"`
	// ModelMS is the cost model's compositing estimate for the cell.
	ModelMS float64 `json:"model_ms"`
}

type cgReport struct {
	CreatedAt string   `json:"created_at"`
	Size      int      `json:"size"`
	Reps      int      `json:"reps"`
	Methods   []string `json:"methods"`
	Cells     []cgCell `json:"cells"`
	// DFBvsBSSparseP16 is dfb's measured wall over binary-swap's on the
	// sparse workload at P=16 — below 1 means the one-round tile-routed
	// reduction beats the log-P synchronized swap.
	DFBvsBSSparseP16 float64 `json:"dfb_vs_bs_sparse_p16"`
}

// cgRun measures one cell, keeping the best (least-noisy) wall of reps.
func cgRun(dataset, method string, p int) (cgCell, error) {
	cell := cgCell{Dataset: dataset, Method: method, P: p}
	for rep := 0; rep < cgReps; rep++ {
		row, err := harness.Run(harness.Config{
			Dataset: dataset, Width: cgSize, Height: cgSize,
			P: p, Method: method, RotX: cgTilt, RotY: cgTurn,
		})
		if err != nil {
			return cell, fmt.Errorf("%s/%s/P%d: %w", dataset, method, p, err)
		}
		if rep == 0 || row.WallMS < cell.WallMS {
			cell.WallMS = row.WallMS
		}
		cell.ModelMS = row.TotalMS
	}
	fmt.Fprintf(os.Stderr, ".")
	return cell, nil
}

// runComposeGrid measures the full method grid and writes the report to
// -o, failing if the tile-routed reduction does not beat binary swap on
// the sparse workload at P=16 — the single-round advantage the closed
// forms cannot express must be visible in measured wall time.
func runComposeGrid() error {
	methods := core.Names()
	rep := cgReport{
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
		Size:      cgSize, Reps: cgReps,
		Methods: methods,
	}
	// Warm the volume cache so the first cell doesn't pay synthesis.
	for _, w := range cgWorkloads {
		if _, _, err := harness.Dataset(w.Dataset); err != nil {
			return err
		}
	}
	walls := map[string]float64{} // "workload/method/P" -> wall
	for _, w := range cgWorkloads {
		for _, m := range methods {
			ps := cgPow2Ps
			if s, ok := core.Lookup(m); ok && s.Caps.NativeAnyP {
				ps = append(append([]int{}, cgAnyPPs...), cgPow2Ps...)
			}
			for _, p := range ps {
				cell, err := cgRun(w.Dataset, m, p)
				if err != nil {
					return err
				}
				cell.Workload = w.Workload
				rep.Cells = append(rep.Cells, cell)
				walls[fmt.Sprintf("%s/%s/%d", w.Workload, m, p)] = cell.WallMS
			}
		}
		fmt.Fprintln(os.Stderr)
	}

	dfb, bs := walls["sparse/dfb/16"], walls["sparse/bs/16"]
	if dfb <= 0 || bs <= 0 {
		return fmt.Errorf("compose grid missing the sparse P=16 cells (dfb %v, bs %v)", dfb, bs)
	}
	rep.DFBvsBSSparseP16 = dfb / bs
	if rep.DFBvsBSSparseP16 >= 1 {
		return fmt.Errorf("dfb (%.3f ms) did not beat bs (%.3f ms) on the sparse workload at P=16", dfb, bs)
	}

	b, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if err := os.WriteFile(*outFile, b, 0o644); err != nil {
		return err
	}
	fmt.Printf("compose: %d cells over %d methods; sparse P=16 dfb/bs wall ratio %.2f; wrote %s\n",
		len(rep.Cells), len(methods), rep.DFBvsBSSparseP16, *outFile)
	return nil
}
