// Command composebench regenerates the paper's evaluation (§4) from the
// command line: Table 1 (384x384), Table 2 (768x768), Figures 8-11 (the
// per-dataset compositing-time series), the Eq. 9 M_max comparison, and
// the autotune benchmark (auto vs every fixed method over a mixed
// sparse/dense animation).
//
// Examples:
//
//	composebench -table 1
//	composebench -table 1 -method auto,bsbrc
//	composebench -figure 11 -maxp 32
//	composebench -mmax -dataset cube
//	composebench -all -csv
//	composebench -autobench -o BENCH_autotune.json
//	composebench -compose -o BENCH_compose.json
//	composebench -table 1 -method ds,dfb -plist 3,6 -dataset cube
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"sortlast/internal/harness"
	"sortlast/internal/report"
	"sortlast/internal/trace"
)

var (
	table     = flag.Int("table", 0, "regenerate Table 1 or 2")
	figure    = flag.Int("figure", 0, "regenerate Figure 8, 9, 10 or 11")
	mmax      = flag.Bool("mmax", false, "regenerate the Eq. 9 M_max comparison")
	all       = flag.Bool("all", false, "regenerate every table and figure")
	autobench = flag.Bool("autobench", false, "compare Method auto against each fixed method over a mixed sparse/dense animation; writes JSON to -o")
	composeFl = flag.Bool("compose", false, "measure every registered method's compositing wall over a dense and a sparse workload, including ds/dfb at non-power-of-two P; writes JSON to -o")
	dataset   = flag.String("dataset", "", "restrict to one dataset (engine_low, engine_high, head, cube)")
	methodsFl = flag.String("method", "", "comma-separated methods overriding each sweep's method set (core methods or auto)")
	maxP      = flag.Int("maxp", 64, "largest processor count in the sweep")
	plist     = flag.String("plist", "", "comma-separated explicit processor counts overriding the power-of-two sweep (any-P methods accept non-powers of two)")
	tileFl    = flag.Int("tile", 0, "dfb tile edge in pixels (0: the tilecomp default)")
	rotX      = flag.Float64("rotx", 20, "viewpoint rotation about x (degrees)")
	rotY      = flag.Float64("roty", 30, "viewpoint rotation about y (degrees)")
	csv       = flag.Bool("csv", false, "emit CSV instead of formatted tables")
	profileFl = flag.String("profile", "", "machine profile JSON from cmd/calibrate driving auto selection (default: the paper's SP2 preset)")
	outFile   = flag.String("o", "BENCH_autotune.json", "output path of the -autobench report")
	traceOut  = flag.String("trace", "", "write a Chrome/Perfetto span trace of the last sweep cell to this JSON file")
)

// lastTrace is the recorder of the most recently completed sweep cell,
// written to -trace after the sweep finishes.
var lastTrace *trace.Recorder

var figureDataset = map[int]string{
	8:  "engine_low",
	9:  "head",
	10: "engine_high",
	11: "cube",
}

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "composebench:", err)
		os.Exit(1)
	}
}

func datasets() []string {
	if *dataset != "" {
		return []string{*dataset}
	}
	return []string{"engine_low", "engine_high", "head", "cube"}
}

// sweepPs is the processor-count axis: -plist verbatim when given,
// otherwise the power-of-two ladder up to -maxp.
func sweepPs() ([]int, error) {
	if *plist == "" {
		return harness.PowersOfTwo(*maxP), nil
	}
	var ps []int
	for _, s := range strings.Split(*plist, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || p < 1 {
			return nil, fmt.Errorf("-plist: bad processor count %q", s)
		}
		ps = append(ps, p)
	}
	return ps, nil
}

// sweep runs dataset x method x P at one image size.
func sweep(size int, methods []string, ds []string) ([]harness.Row, error) {
	ps, err := sweepPs()
	if err != nil {
		return nil, err
	}
	var rows []harness.Row
	for _, d := range ds {
		for _, m := range methods {
			for _, p := range ps {
				cfg := harness.Config{
					Dataset: d, Width: size, Height: size,
					P: p, Method: m, RotX: *rotX, RotY: *rotY,
					Tile: *tileFl,
				}
				if *traceOut != "" {
					cfg.Trace = trace.NewRecorder(p)
					lastTrace = cfg.Trace
				}
				row, err := harness.Run(cfg)
				if err != nil {
					return nil, fmt.Errorf("%s/%s/P%d: %w", d, m, p, err)
				}
				if row.Auto {
					// Fold every auto cell into one table column regardless
					// of which concrete method the selector resolved to.
					row.Method = "AUTO"
				}
				rows = append(rows, *row)
				fmt.Fprintf(os.Stderr, ".")
			}
		}
	}
	fmt.Fprintln(os.Stderr)
	return rows, nil
}

func emit(rows []harness.Row, format func() string) {
	if *csv {
		fmt.Print(report.CSV(rows))
		return
	}
	fmt.Println(format())
}

func run() error {
	did := false
	display := func(ms []string) []string {
		out := make([]string, len(ms))
		for i, m := range ms {
			out[i] = strings.ToUpper(m)
		}
		return out
	}
	// -method overrides the method set a table or figure sweeps.
	pick := func(def []string) []string {
		if *methodsFl == "" {
			return def
		}
		return strings.Split(*methodsFl, ",")
	}

	if *autobench {
		did = true
		if err := runAutobench(); err != nil {
			return err
		}
	}
	if *composeFl {
		did = true
		if err := runComposeGrid(); err != nil {
			return err
		}
	}
	if *all || *table == 1 {
		did = true
		methods := pick([]string{"bs", "bsbr", "bslc", "bsbrc"})
		rows, err := sweep(384, methods, datasets())
		if err != nil {
			return err
		}
		emit(rows, func() string {
			return report.Table("Table 1: compositing time, 384x384 (modeled ms, SP2 parameters)",
				rows, display(methods))
		})
	}
	if *all || *table == 2 {
		did = true
		methods := pick([]string{"bsbr", "bslc", "bsbrc"})
		rows, err := sweep(768, methods, datasets())
		if err != nil {
			return err
		}
		emit(rows, func() string {
			return report.Table("Table 2: compositing time, 768x768 (modeled ms, SP2 parameters)",
				rows, display(methods))
		})
	}
	figs := []int{}
	if *figure != 0 {
		figs = append(figs, *figure)
	} else if *all {
		figs = []int{8, 9, 10, 11}
	}
	for _, f := range figs {
		ds, ok := figureDataset[f]
		if !ok {
			return fmt.Errorf("unknown figure %d (want 8-11)", f)
		}
		did = true
		methods := pick([]string{"bsbr", "bslc", "bsbrc"})
		rows, err := sweep(384, methods, []string{ds})
		if err != nil {
			return err
		}
		f := f
		emit(rows, func() string {
			return report.Figure(fmt.Sprintf("Figure %d", f), rows, display(methods), ds)
		})
	}
	if *all || *mmax {
		did = true
		methods := pick([]string{"bs", "bsbr", "bslc", "bsbrc"})
		for _, ds := range datasets() {
			rows, err := sweep(384, methods, []string{ds})
			if err != nil {
				return err
			}
			ds := ds
			emit(rows, func() string {
				return report.MMax("Eq. 9 maximum received message size", rows, display(methods), ds)
			})
		}
	}
	if !did {
		flag.Usage()
		return fmt.Errorf("nothing to do: pass -table, -figure, -mmax, -autobench, -compose or -all")
	}
	if *traceOut != "" {
		if lastTrace == nil {
			return fmt.Errorf("-trace: no sweep cell ran")
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		werr := trace.WritePerfetto(f, lastTrace)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("writing trace %s: %w", *traceOut, werr)
		}
		fmt.Fprintf(os.Stderr, "wrote trace %s (last sweep cell; load in ui.perfetto.dev)\n", *traceOut)
	}
	return nil
}
