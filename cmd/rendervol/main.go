// Command rendervol renders a volume to a PGM image through the full
// sort-last pipeline (or serially with -p 1).
//
//	rendervol -dataset head -p 8 -size 384 -out head.pgm
//	rendervol -in engine.slsv -tf engine_high -p 16 -rotx 30 -out e.pgm
package main

import (
	"flag"
	"fmt"
	"os"

	"sortlast/internal/costmodel"
	"sortlast/internal/harness"
	"sortlast/internal/render"
	"sortlast/internal/report"
	"sortlast/internal/trace"
	"sortlast/internal/transfer"
	"sortlast/internal/volume"
)

var (
	dataset  = flag.String("dataset", "", "built-in dataset (engine_low, engine_high, head, cube)")
	in       = flag.String("in", "", "volume file to render instead of a built-in dataset")
	tfName   = flag.String("tf", "", "transfer preset for -in (engine_low, engine_high, head, cube, linear)")
	p        = flag.Int("p", 8, "number of simulated processors")
	method   = flag.String("method", "bsbrc", "compositing method")
	size     = flag.Int("size", 384, "output image size (square)")
	rotX     = flag.Float64("rotx", 0, "rotation about x (degrees)")
	rotY     = flag.Float64("roty", 0, "rotation about y (degrees)")
	shaded   = flag.Bool("shaded", false, "gradient-based Lambertian shading")
	out      = flag.String("out", "", "output PGM file (required)")
	stats    = flag.Bool("stats", true, "print the compositing-cost summary")
	validate = flag.Bool("validate", false, "check the parallel result against a sequential reference")
	balance  = flag.Bool("balance", false, "load-balance the rendering partition by estimated work")
	surface  = flag.Bool("surface", false, "surface rendering: isosurface extraction + rasterization")
	iso      = flag.Int("iso", 128, "iso level for -surface (0-255)")
	flat     = flag.Bool("flat", false, "flat (quantized) shading for -surface")
	traceOut = flag.String("trace", "", "write a Chrome/Perfetto span trace of the run to this JSON file and print the measured-vs-modeled stage report")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rendervol:", err)
		os.Exit(1)
	}
}

func run() error {
	if *out == "" {
		flag.Usage()
		return fmt.Errorf("-out is required")
	}
	cfg := harness.Config{
		Width: *size, Height: *size,
		P: *p, Method: *method,
		RotX: *rotX, RotY: *rotY,
		RenderOpts:    render.Options{Shaded: *shaded},
		Validate:      *validate,
		BalanceRender: *balance,
		Surface:       *surface,
		IsoLevel:      uint8(*iso),
		RasterOpts:    render.RasterOptions{Flat: *flat},
	}
	switch {
	case *in != "":
		v, err := volume.ReadFile(*in)
		if err != nil {
			return err
		}
		name := *tfName
		if name == "" {
			name = "linear"
		}
		var tf *transfer.Func
		if name == "linear" {
			tf = transfer.Ramp("linear", 0, 255, 0.3)
		} else {
			f, err := transfer.Preset(name)
			if err != nil {
				return err
			}
			tf = f
		}
		cfg.Dataset = name
		cfg.Volume = v
		cfg.TF = tf
	case *dataset != "":
		cfg.Dataset = *dataset
	default:
		flag.Usage()
		return fmt.Errorf("pass -dataset or -in")
	}

	var rec *trace.Recorder
	if *traceOut != "" {
		rec = trace.NewRecorder(*p)
		cfg.Trace = rec
	}
	row, img, ranks, err := harness.RunFull(cfg)
	if err != nil {
		return err
	}
	if err := img.WritePGMFile(*out); err != nil {
		return err
	}
	if *stats {
		fmt.Printf("%s %s P=%d %dx%d: render %.1f ms, composite (modeled SP2) comp %.2f + comm %.2f = %.2f ms, M_max %d B\n",
			row.Dataset, row.Method, row.P, row.Width, row.Height,
			row.RenderMS, row.CompMS, row.CommMS, row.TotalMS, row.MMax)
	}
	if rec != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		werr := trace.WritePerfetto(f, rec)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("writing trace %s: %w", *traceOut, werr)
		}
		fmt.Printf("wrote trace %s (load in ui.perfetto.dev or chrome://tracing)\n", *traceOut)
		fmt.Print(report.MeasuredVsModeled(rec, ranks, costmodel.SP2()))
	}
	if *validate {
		fmt.Printf("validated against sequential reference (max diff %.2g)\n", row.ValidateDiff)
	}
	fmt.Printf("wrote %s (%d non-blank pixels)\n", *out, row.NonBlank)
	return nil
}
