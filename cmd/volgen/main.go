// Command volgen generates the procedural datasets standing in for the
// paper's CT samples and writes them as native-format volume files.
//
//	volgen -dataset engine -out engine.slsv
//	volgen -dataset head -nx 128 -ny 128 -nz 64 -out head_small.slsv
package main

import (
	"flag"
	"fmt"
	"os"

	"sortlast/internal/volume"
)

var (
	dataset = flag.String("dataset", "engine", "engine, head, cube, sphere, ramp or checker")
	out     = flag.String("out", "", "output file (required)")
	nx      = flag.Int("nx", 0, "override x dimension (0: paper native)")
	ny      = flag.Int("ny", 0, "override y dimension")
	nz      = flag.Int("nz", 0, "override z dimension")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "volgen:", err)
		os.Exit(1)
	}
}

func run() error {
	if *out == "" {
		flag.Usage()
		return fmt.Errorf("-out is required")
	}
	var v *volume.Volume
	x, y, z := *nx, *ny, *nz
	custom := x > 0 && y > 0 && z > 0
	switch *dataset {
	case "engine":
		if !custom {
			x, y, z = 256, 256, 110
		}
		v = volume.EngineBlock(x, y, z)
	case "head":
		if !custom {
			x, y, z = 256, 256, 113
		}
		v = volume.HeadPhantom(x, y, z)
	case "cube":
		if !custom {
			x, y, z = 256, 256, 110
		}
		v = volume.SolidCube(x, y, z)
	case "sphere":
		if !custom {
			x, y, z = 128, 128, 128
		}
		v = volume.Sphere(x, y, z, 0.8, 200)
	case "ramp":
		if !custom {
			x, y, z = 128, 128, 128
		}
		v = volume.Ramp(x, y, z, 2)
	case "checker":
		if !custom {
			x, y, z = 128, 128, 128
		}
		v = volume.Checker(x, y, z, 8, 180)
	default:
		return fmt.Errorf("unknown dataset %q", *dataset)
	}
	if err := v.WriteFile(*out); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %dx%dx%d, %d voxels above zero\n",
		*out, v.NX, v.NY, v.NZ, v.CountAbove(0))
	return nil
}
