// Command calibrate measures the five cost-model constants of the
// paper's Eq. 1-8 (T_s, T_c, T_o, T_encode, T_bound) on the machine it
// runs on, for the in-process "mp" transport and the loopback-TCP
// "mpnet" transport, and emits a versioned machine-profile JSON. The
// autotune selector (Method "auto" in the harness, composebench and
// renderd) predicts per-frame compositing cost from this profile
// instead of the paper's 1999 SP2 preset.
//
//	calibrate -quick                       # coarse pass, prints to stdout
//	calibrate -o profile.json              # full pass, written to a file
//	renderd -profile profile.json ...      # serve with the calibrated model
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sortlast/internal/autotune"
)

var (
	quick = flag.Bool("quick", false,
		"shorter measurement floors: seconds instead of tens of seconds, coarser constants")
	out = flag.String("o", "", "write the profile JSON to this file (default: stdout)")
	transports = flag.String("transports", "",
		"comma-separated transports to calibrate: mp, mpnet (default: both)")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}
}

func run() error {
	opts := autotune.CalibrateOptions{Quick: *quick}
	if *transports != "" {
		opts.Transports = strings.Split(*transports, ",")
	}
	fmt.Fprintf(os.Stderr, "calibrate: measuring compute constants and %v round trips (quick=%v)...\n",
		transportList(opts), *quick)
	prof, err := autotune.Calibrate(opts)
	if err != nil {
		return err
	}
	for _, tr := range transportList(opts) {
		p, err := prof.Params(tr)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr,
			"calibrate: %-5s  Ts=%-10v Tc=%-8v To=%-8v Tencode=%-8v Tbound=%v\n",
			tr, p.Ts, p.Tc, p.To, p.Tencode, p.Tbound)
	}
	if *out == "" {
		return prof.Encode(os.Stdout)
	}
	if err := prof.WriteFile(*out); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "calibrate: wrote %s\n", *out)
	return nil
}

func transportList(opts autotune.CalibrateOptions) []string {
	if len(opts.Transports) != 0 {
		return opts.Transports
	}
	return []string{autotune.TransportMP, autotune.TransportMPNet}
}
