// Command clusternode runs one rank of the sort-last pipeline over TCP,
// so the system runs as a real distributed program — one OS process per
// rank, as the paper's SP2 jobs did. Every rank is started with the same
// address list and its own -rank:
//
//	clusternode -rank 0 -addrs 127.0.0.1:7000,127.0.0.1:7001 -dataset cube -out cube.pgm &
//	clusternode -rank 1 -addrs 127.0.0.1:7000,127.0.0.1:7001 -dataset cube
//
// The procedural datasets are deterministic, so every process generates
// an identical volume; -in loads a shared volume file instead.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sortlast/internal/core"
	"sortlast/internal/harness"
	"sortlast/internal/mp"
	"sortlast/internal/mpnet"
	"sortlast/internal/partition"
	"sortlast/internal/render"
	"sortlast/internal/tilecomp"
	"sortlast/internal/transfer"
	"sortlast/internal/volume"
)

var (
	rank    = flag.Int("rank", -1, "this process's rank (required)")
	addrs   = flag.String("addrs", "", "comma-separated listen addresses, one per rank (required)")
	dataset = flag.String("dataset", "cube", "built-in dataset")
	in      = flag.String("in", "", "volume file instead of a built-in dataset")
	tfName  = flag.String("tf", "", "transfer preset when using -in")
	method  = flag.String("method", "bsbrc", "compositing method (bs, bsbr, bslc, bsbrc, ds, dfb, ...)")
	size    = flag.Int("size", 384, "image size (square)")
	rotX    = flag.Float64("rotx", 0, "rotation about x (degrees)")
	rotY    = flag.Float64("roty", 0, "rotation about y (degrees)")
	out     = flag.String("out", "", "PGM output path (rank 0 only)")
	timeout = flag.Duration("timeout", 60*time.Second, "dial and receive timeout")
)

func main() {
	flag.Parse()
	list, err := validateFlags()
	if err != nil {
		fmt.Fprintf(os.Stderr, "clusternode: %v\n\n", err)
		flag.Usage()
		os.Exit(2)
	}
	if err := run(list); err != nil {
		fmt.Fprintf(os.Stderr, "clusternode[rank %d]: %v\n", *rank, err)
		os.Exit(1)
	}
}

// validateFlags checks every flag up front so misconfiguration is a
// usage error (exit 2), not a panic mid-pipeline or a hang in dial.
func validateFlags() ([]string, error) {
	if *addrs == "" {
		return nil, fmt.Errorf("-addrs is required (comma-separated, one address per rank)")
	}
	list := strings.Split(*addrs, ",")
	for i, a := range list {
		if strings.TrimSpace(a) == "" {
			return nil, fmt.Errorf("-addrs entry %d is empty", i)
		}
	}
	if *rank < 0 || *rank >= len(list) {
		return nil, fmt.Errorf("-rank %d out of range [0,%d)", *rank, len(list))
	}
	if _, err := core.New(*method); err != nil {
		return nil, fmt.Errorf("unknown -method %q (have %v)", *method, core.Names())
	}
	if *in == "" && !harness.KnownDataset(*dataset) {
		return nil, fmt.Errorf("unknown -dataset %q (have %v)", *dataset, harness.Datasets())
	}
	if *size <= 0 {
		return nil, fmt.Errorf("-size %d must be positive", *size)
	}
	if *timeout <= 0 {
		return nil, fmt.Errorf("-timeout %v must be positive", *timeout)
	}
	return list, nil
}

func run(list []string) error {
	var vol *volume.Volume
	var tf *transfer.Func
	var err error
	if *in != "" {
		vol, err = volume.ReadFile(*in)
		if err != nil {
			return err
		}
		name := *tfName
		if name == "" {
			name = "linear"
		}
		if name == "linear" {
			tf = transfer.Ramp("linear", 0, 255, 0.3)
		} else if tf, err = transfer.Preset(name); err != nil {
			return err
		}
	} else if vol, tf, err = harness.Dataset(*dataset); err != nil {
		return err
	}

	node, err := mpnet.Connect(mpnet.Config{
		Rank:        *rank,
		Addrs:       list,
		DialTimeout: *timeout,
		Opts:        mp.Options{RecvTimeout: *timeout},
	})
	if err != nil {
		return err
	}
	defer node.Close()
	c := node.Comm()

	comp, err := core.New(*method)
	if err != nil {
		return err
	}
	// Power-of-two worlds run over the kd decomposition; other world
	// sizes are served by the natively any-P tile-routed methods, which
	// take the fold plan as pure geometry (no fold messages).
	var dec *partition.Decomposition
	var lay partition.Layout
	if p := c.Size(); p&(p-1) == 0 {
		if dec, err = partition.Decompose(vol.Bounds(), p); err != nil {
			return err
		}
		lay = dec
	} else {
		spec, _ := core.Lookup(*method)
		if !spec.Caps.ServesAnyP() {
			return fmt.Errorf("method %q requires a power-of-two world, got %d ranks (any-P methods: %s)",
				*method, p, strings.Join(core.AnyPMethods(), ", "))
		}
		plan, err := partition.PlanFold(vol.Bounds(), p)
		if err != nil {
			return err
		}
		dec, lay = plan.Dec, plan
		switch v := comp.(type) {
		case tilecomp.DS:
			v.Lay = plan
			comp = v
		case tilecomp.DFB:
			v.Lay = plan
			comp = v
		default:
			comp = &core.Folded{Plan: plan, Inner: comp}
		}
	}
	cam := render.NewCamera(*size, *size, vol.Bounds(), *rotX, *rotY)

	start := time.Now()
	img := render.Raycast(vol, lay.Box(c.Rank()), cam, tf, render.Options{})
	renderTime := time.Since(start)

	if err := c.Barrier(); err != nil {
		return err
	}
	res, err := comp.Composite(c, dec, cam.Dir, img)
	if err != nil {
		return err
	}
	final, err := core.GatherImage(c, 0, res)
	if err != nil {
		return err
	}
	fmt.Printf("rank %d/%d: render %v, composited %d px, received %d B\n",
		c.Rank(), c.Size(), renderTime.Round(time.Millisecond),
		res.Stats.TotalComposited(), res.Stats.BytesReceived())
	if c.Rank() == 0 && *out != "" {
		if err := final.WritePGMFile(*out); err != nil {
			return err
		}
		fmt.Printf("rank 0: wrote %s\n", *out)
	}
	return c.Barrier() // quiesce before Close
}
