// Command clusternode runs one rank of the sort-last pipeline over TCP,
// so the system runs as a real distributed program — one OS process per
// rank, as the paper's SP2 jobs did. Every rank is started with the same
// address list and its own -rank:
//
//	clusternode -rank 0 -addrs 127.0.0.1:7000,127.0.0.1:7001 -dataset cube -out cube.pgm &
//	clusternode -rank 1 -addrs 127.0.0.1:7000,127.0.0.1:7001 -dataset cube
//
// The procedural datasets are deterministic, so every process generates
// an identical volume; -in loads a shared volume file instead.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sortlast/internal/core"
	"sortlast/internal/harness"
	"sortlast/internal/mp"
	"sortlast/internal/mpnet"
	"sortlast/internal/partition"
	"sortlast/internal/render"
	"sortlast/internal/transfer"
	"sortlast/internal/volume"
)

var (
	rank    = flag.Int("rank", -1, "this process's rank (required)")
	addrs   = flag.String("addrs", "", "comma-separated listen addresses, one per rank (required)")
	dataset = flag.String("dataset", "cube", "built-in dataset")
	in      = flag.String("in", "", "volume file instead of a built-in dataset")
	tfName  = flag.String("tf", "", "transfer preset when using -in")
	method  = flag.String("method", "bsbrc", "compositing method (bs, bsbr, bslc, bsbrc)")
	size    = flag.Int("size", 384, "image size (square)")
	rotX    = flag.Float64("rotx", 0, "rotation about x (degrees)")
	rotY    = flag.Float64("roty", 0, "rotation about y (degrees)")
	out     = flag.String("out", "", "PGM output path (rank 0 only)")
	timeout = flag.Duration("timeout", 60*time.Second, "dial and receive timeout")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "clusternode[rank %d]: %v\n", *rank, err)
		os.Exit(1)
	}
}

func run() error {
	list := strings.Split(*addrs, ",")
	if *addrs == "" || *rank < 0 || *rank >= len(list) {
		flag.Usage()
		return fmt.Errorf("need -rank in [0,%d) and -addrs", len(list))
	}

	var vol *volume.Volume
	var tf *transfer.Func
	var err error
	if *in != "" {
		vol, err = volume.ReadFile(*in)
		if err != nil {
			return err
		}
		name := *tfName
		if name == "" {
			name = "linear"
		}
		if name == "linear" {
			tf = transfer.Ramp("linear", 0, 255, 0.3)
		} else if tf, err = transfer.Preset(name); err != nil {
			return err
		}
	} else if vol, tf, err = harness.Dataset(*dataset); err != nil {
		return err
	}

	node, err := mpnet.Connect(mpnet.Config{
		Rank:        *rank,
		Addrs:       list,
		DialTimeout: *timeout,
		Opts:        mp.Options{RecvTimeout: *timeout},
	})
	if err != nil {
		return err
	}
	defer node.Close()
	c := node.Comm()

	dec, err := partition.Decompose(vol.Bounds(), c.Size())
	if err != nil {
		return err
	}
	comp, err := core.New(*method)
	if err != nil {
		return err
	}
	cam := render.NewCamera(*size, *size, vol.Bounds(), *rotX, *rotY)

	start := time.Now()
	img := render.Raycast(vol, dec.Box(c.Rank()), cam, tf, render.Options{})
	renderTime := time.Since(start)

	if err := c.Barrier(); err != nil {
		return err
	}
	res, err := comp.Composite(c, dec, cam.Dir, img)
	if err != nil {
		return err
	}
	final, err := core.GatherImage(c, 0, res)
	if err != nil {
		return err
	}
	fmt.Printf("rank %d/%d: render %v, composited %d px, received %d B\n",
		c.Rank(), c.Size(), renderTime.Round(time.Millisecond),
		res.Stats.TotalComposited(), res.Stats.BytesReceived())
	if c.Rank() == 0 && *out != "" {
		if err := final.WritePGMFile(*out); err != nil {
			return err
		}
		fmt.Printf("rank 0: wrote %s\n", *out)
	}
	return c.Barrier() // quiesce before Close
}
