// Command renderd runs the persistent frame service: a resident rank
// pool that keeps volumes, transfer functions and compositing scratch
// warm across requests and serves render requests over a
// length-prefixed TCP protocol, with admission control, pipelined
// frames and an HTTP observability sidecar.
//
//	renderd -listen 127.0.0.1:7171 -metrics-addr 127.0.0.1:7172 -p 8 &
//	curl -s http://127.0.0.1:7172/metrics | grep renderd_frames_total
//	curl -s http://127.0.0.1:7172/debug/trace/last > frame.json  # Perfetto
//	curl -s http://127.0.0.1:7172/debug/flight                   # recent slow/failed frames
//
// Requests are made with the internal/client library (see
// cmd/servebench for a load-driving example). SIGINT/SIGTERM drain the
// server gracefully: queued requests are answered with a typed
// shutting-down error, in-flight frames finish and are delivered.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sortlast/internal/autotune"
	"sortlast/internal/server"
)

var (
	listen      = flag.String("listen", "127.0.0.1:7171", "frame-protocol listen address")
	metricsAddr = flag.String("metrics-addr", "127.0.0.1:7172", "observability sidecar address serving /healthz, /metrics, /debug/pprof/ and /debug/trace/last; empty disables")
	httpAddr    = flag.String("http", "", "alias for -metrics-addr (kept for compatibility)")
	noTrace     = flag.Bool("no-trace", false, "disable the per-frame span recorder (also empties /debug/trace/last, /debug/flight and the phase histograms)")
	flightSize  = flag.Int("flight", 0, "frame flight recorder capacity: the last N slow/failed frames retained with span trees at /debug/flight (0: 64)")
	world       = flag.String("world", "mp", "resident rank pool kind: mp (in-process) or mpnet (TCP)")
	addrs       = flag.String("world-addrs", "", "comma-separated mpnet rank addresses (default: loopback ephemeral)")
	p           = flag.Int("p", 4, "resident ranks")
	queue       = flag.Int("queue", 64, "admission queue depth (full queue rejects with a typed overload error)")
	inflight    = flag.Int("inflight", 2, "max frames pipelined through the render/composite stages")
	deadline    = flag.Duration("deadline", 30*time.Second, "default per-request deadline")
	frameTO     = flag.Duration("frame-timeout", 0, "per-frame watchdog deadline; a frame stuck longer fails the rank world, which is rebuilt (0: 60s)")
	workers     = flag.Int("workers", 0, "ray-casting workers per rank (0: GOMAXPROCS)")
	profilePath = flag.String("profile", "", "machine profile JSON from cmd/calibrate, driving Method \"auto\" selection (default: the paper's SP2 preset)")
	noDegrade   = flag.Bool("no-degrade", false, "ignore DegradeOK on requests: a saturated queue rejects with a typed overload error and a slow frame fails the world, pinning full fidelity fleet-wide")
	drain       = flag.Duration("drain", 30*time.Second, "graceful shutdown budget on SIGINT/SIGTERM")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "renderd: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var worldAddrs []string
	if *addrs != "" {
		worldAddrs = strings.Split(*addrs, ",")
	}
	// -metrics-addr is canonical; -http remains as an alias and loses if
	// both are set explicitly.
	sidecar := *metricsAddr
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if set["http"] && !set["metrics-addr"] {
		sidecar = *httpAddr
	}
	var prof *autotune.Profile
	if *profilePath != "" {
		var err error
		if prof, err = autotune.LoadProfile(*profilePath); err != nil {
			return err
		}
	}
	srv, err := server.Start(server.Config{
		Addr:            *listen,
		HTTPAddr:        sidecar,
		World:           *world,
		WorldAddrs:      worldAddrs,
		P:               *p,
		QueueDepth:      *queue,
		MaxInFlight:     *inflight,
		DefaultDeadline: *deadline,
		FrameTimeout:    *frameTO,
		Workers:         *workers,
		Profile:         prof,
		DisableTracing:  *noTrace,
		FlightSize:      *flightSize,
		DegradeDisabled: *noDegrade,
	})
	if err != nil {
		return err
	}
	fmt.Printf("renderd: serving frames on %s (world=%s, P=%d, queue=%d, inflight=%d)\n",
		srv.Addr(), *world, *p, *queue, *inflight)
	if a := srv.HTTPAddr(); a != nil {
		fmt.Printf("renderd: /healthz, /metrics, /debug/pprof/, /debug/trace/last, /debug/flight and /debug/autotune on http://%s\n", a)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("renderd: draining...")
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	return srv.Shutdown(ctx)
}
