// Fleet mode: -fleet N benchmarks the gateway tier against a
// single-world baseline with a dashboard-style workload (a fixed set of
// repeat cameras plus a stream of unique ones), then sweeps an
// open-loop, coordinated-omission-safe load curve.
//
// Closed-loop numbers (a fixed worker pool waiting for each reply)
// understate tail latency under overload, because a slow server slows
// the offered load down with it. The open-loop sweep instead fixes the
// arrival rate — fixed interval or Poisson — and measures every request
// from its *intended* send time, so queueing delay the generator
// couldn't help is charged to the server. If the generator itself falls
// behind its schedule the point is marked saturated and the run fails
// loudly: a curve measured by a wedged generator is not a curve.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sortlast/internal/client"
	"sortlast/internal/fleet"
	"sortlast/internal/server"
)

var (
	fleetN     = flag.Int("fleet", 0, "benchmark a fleet gateway with N in-process replicas instead of the per-(P,method) sweep; writes a fleet report to -out")
	fleetP     = flag.Int("p", 2, "resident ranks per replica (fleet mode)")
	poisson    = flag.Bool("poisson", false, "Poisson (exponential) interarrivals in the open-loop sweep instead of a fixed interval")
	repeatFrac = flag.Float64("repeat-frac", 0.75, "fraction of requests aimed at the fixed dashboard cameras (the rest are unique cameras)")
	cameras    = flag.Int("cameras", 8, "dashboard cameras in the repeat set")
	benchSeed  = flag.Int64("seed", 1, "workload RNG seed (camera mix, Poisson gaps)")
	slipBudget = flag.Duration("slip-budget", 250*time.Millisecond, "max generator schedule slip before an open-loop point is declared unachievable")
)

// workload deals the dashboard/unique camera mix. Unique cameras never
// repeat across the whole run (one global counter), so a cache hit can
// only come from the dashboard set.
type workload struct {
	mu     sync.Mutex
	rng    *rand.Rand
	unique *atomic.Int64 // shared across phases: fleet phases share one cache
	dash   []server.Request
}

func newWorkload(rng *rand.Rand, unique *atomic.Int64) *workload {
	w := &workload{rng: rng, unique: unique}
	for i := 0; i < *cameras; i++ {
		w.dash = append(w.dash, server.Request{
			Dataset: "cube", Method: "bsbrc", Width: *size, Height: *size,
			RotY: float64(i) * (360.0 / float64(*cameras)),
		})
	}
	return w
}

func (w *workload) next() server.Request {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.rng.Float64() < *repeatFrac {
		return w.dash[w.rng.Intn(len(w.dash))]
	}
	// Unique cameras step by two quantization buckets so no two ever
	// share a cache key; RotX shifts each full turn to keep them unique
	// forever.
	u := w.unique.Add(1)
	return server.Request{
		Dataset: "cube", Method: "bsbrc", Width: *size, Height: *size,
		RotY: math.Mod(float64(u)*0.5, 360),
		RotX: 11.5 + 0.5*math.Floor(float64(u)/720),
	}
}

// closedLoop drives n requests through conc workers and reports
// per-call latency percentiles and throughput.
type closedResult struct {
	FPS    float64 `json:"frames_per_sec"`
	P50MS  float64 `json:"p50_ms"`
	P99MS  float64 `json:"p99_ms"`
	Frames int     `json:"frames"`
	Errors int     `json:"errors"`
}

func closedLoop(cl *client.Client, wl *workload, n int) (closedResult, error) {
	var mu sync.Mutex
	var lats []time.Duration
	var errCount int
	var lastErr error
	var wg sync.WaitGroup
	sem := make(chan struct{}, *conc)
	ctx := context.Background()
	start := time.Now()
	for i := 0; i < n; i++ {
		req := wl.next()
		wg.Add(1)
		sem <- struct{}{}
		go func(req server.Request) {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			_, err := cl.Render(ctx, req)
			mu.Lock()
			if err != nil {
				errCount++
				lastErr = err
			} else {
				lats = append(lats, time.Since(t0))
			}
			mu.Unlock()
		}(req)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if len(lats) == 0 {
		return closedResult{}, fmt.Errorf("all %d requests failed: %w", n, lastErr)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	q := func(f float64) float64 {
		return float64(lats[int(f*float64(len(lats)-1))]) / float64(time.Millisecond)
	}
	return closedResult{
		FPS: float64(len(lats)) / elapsed.Seconds(),
		P50MS: q(0.50), P99MS: q(0.99),
		Frames: len(lats), Errors: errCount,
	}, nil
}

// olPoint is one offered-rate point on the open-loop curve.
type olPoint struct {
	OfferedFPS  float64 `json:"offered_fps"`
	AchievedFPS float64 `json:"achieved_fps"`
	Sent        int     `json:"sent"`
	Errors      int     `json:"errors"`
	P50MS       float64 `json:"p50_ms"`
	P99MS       float64 `json:"p99_ms"`
	MaxMS       float64 `json:"max_ms"`
	// SlipMS is the worst generator schedule slip: how late a request
	// was handed to the network relative to its intended send time.
	// Latencies are measured from the intended time regardless, so slip
	// is charged to the result — this field says who was at fault.
	SlipMS    float64 `json:"generator_slip_ms"`
	Saturated bool    `json:"generator_saturated"`
	// Gateway deltas across the point.
	CacheHitRate float64 `json:"cache_hit_rate"`
	Hedges       int64   `json:"hedges"`
	Retries      int64   `json:"retries"`
	ReplicaFrames []int64 `json:"replica_frames"`
}

func statsDelta(after, before fleet.Stats) (hitRate float64, hedges, retries int64, perReplica []int64) {
	hits := after.CacheHits - before.CacheHits
	miss := after.CacheMisses - before.CacheMisses
	if hits+miss > 0 {
		hitRate = float64(hits) / float64(hits+miss)
	}
	hedges = after.HedgesIssued - before.HedgesIssued
	retries = after.Retries - before.Retries
	for i := range after.Replicas {
		f := after.Replicas[i].Frames
		if i < len(before.Replicas) {
			f -= before.Replicas[i].Frames
		}
		perReplica = append(perReplica, f)
	}
	return
}

// openLoop offers n requests at a fixed rate (or Poisson at the same
// mean) and measures each from its intended send time.
func openLoop(cl *client.Client, g *fleet.Gateway, wl *workload, rate float64, n int, rng *rand.Rand) olPoint {
	before := g.Stats()
	lats := make([]time.Duration, n)
	ok := make([]bool, n)
	var errCount atomic.Int64
	var wg sync.WaitGroup
	ctx := context.Background()

	start := time.Now().Add(20 * time.Millisecond)
	next := start
	var maxSlip time.Duration
	for i := 0; i < n; i++ {
		var gap time.Duration
		if *poisson {
			gap = time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		} else {
			gap = time.Duration(float64(time.Second) / rate)
		}
		next = next.Add(gap)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		if slip := time.Since(next); slip > maxSlip {
			maxSlip = slip
		}
		req := wl.next()
		wg.Add(1)
		go func(i int, intended time.Time, req server.Request) {
			defer wg.Done()
			_, err := cl.Render(ctx, req)
			if err != nil {
				errCount.Add(1)
				return
			}
			lats[i] = time.Since(intended) // intended send time: CO-safe
			ok[i] = true
		}(i, next, req)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var good []time.Duration
	for i := range lats {
		if ok[i] {
			good = append(good, lats[i])
		}
	}
	sort.Slice(good, func(i, j int) bool { return good[i] < good[j] })
	q := func(f float64) float64 {
		if len(good) == 0 {
			return math.NaN()
		}
		return float64(good[int(f*float64(len(good)-1))]) / float64(time.Millisecond)
	}
	pt := olPoint{
		OfferedFPS:  rate,
		AchievedFPS: float64(len(good)) / elapsed.Seconds(),
		Sent:        n,
		Errors:      int(errCount.Load()),
		P50MS:       q(0.50),
		P99MS:       q(0.99),
		MaxMS:       q(1.0),
		SlipMS:      float64(maxSlip) / float64(time.Millisecond),
		Saturated:   maxSlip > *slipBudget,
	}
	pt.CacheHitRate, pt.Hedges, pt.Retries, pt.ReplicaFrames = statsDelta(g.Stats(), before)
	return pt
}

// fleetReport is the -fleet mode output (BENCH_fleet.json).
type fleetReport struct {
	Replicas   int     `json:"replicas"`
	P          int     `json:"p"`
	Size       int     `json:"size"`
	Cameras    int     `json:"cameras"`
	RepeatFrac float64 `json:"repeat_frac"`
	Poisson    bool    `json:"poisson"`
	HostCPUs   int     `json:"host_cpus"`

	// Single is the closed-loop saturation of one renderd (no gateway)
	// on the same workload mix.
	Single closedResult `json:"single_world"`
	// FleetClosed is the gateway's closed-loop saturation on the same
	// mix; Speedup is its throughput over Single's. On a single-CPU
	// host the win comes from the frame cache absorbing the dashboard
	// repeats, not from parallel rendering.
	FleetClosed  closedResult `json:"fleet_closed"`
	Speedup      float64      `json:"speedup"`
	CacheHitRate float64      `json:"cache_hit_rate"`
	Hedges       int64        `json:"hedges"`
	HedgeWins    int64        `json:"hedge_wins"`
	Retries      int64        `json:"retries"`
	ReplicaFrames []int64     `json:"replica_frames"`

	// OpenLoop is the latency-vs-offered-load curve against the fleet,
	// rates set as multiples of the single-world saturation throughput.
	OpenLoop []olPoint `json:"open_loop"`

	// CacheByteIdentity records that a cached reply (Cached flag set)
	// was byte-identical to both the fresh fleet render that populated
	// it and a direct single-world render at equal P.
	CacheByteIdentity bool `json:"cache_byte_identity"`
}

func runFleet() error {
	// Fleet mode defaults differ from the per-(P,method) sweep; honor
	// explicit flags, resize the rest.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if !set["size"] {
		*size = 128
	}
	if !set["frames"] {
		*frames = 160
	}

	rep := fleetReport{
		Replicas: *fleetN, P: *fleetP, Size: *size,
		Cameras: *cameras, RepeatFrac: *repeatFrac, Poisson: *poisson,
		HostCPUs: runtime.NumCPU(),
	}
	var unique atomic.Int64
	identityReq := server.Request{Dataset: "cube", Method: "bsbrc", Width: *size, Height: *size, RotY: 33}

	// Phase 1: single-world closed-loop baseline (and the identity
	// reference bytes, rendered directly at the same P).
	srv, err := server.Start(server.Config{
		Addr: "127.0.0.1:0", P: *fleetP,
		QueueDepth: 2 * *frames, MaxInFlight: *inflight,
		DefaultDeadline: 5 * time.Minute,
	})
	if err != nil {
		return fmt.Errorf("baseline renderd: %w", err)
	}
	scl := client.New(srv.Addr().String())
	ref, err := scl.Render(context.Background(), identityReq) // also warms the dataset
	if err != nil {
		return fmt.Errorf("baseline identity render: %w", err)
	}
	rep.Single, err = closedLoop(scl, newWorkload(rand.New(rand.NewSource(*benchSeed)), &unique), *frames)
	scl.Close()
	{
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		srv.Shutdown(ctx)
		cancel()
	}
	if err != nil {
		return fmt.Errorf("single-world baseline: %w", err)
	}
	fmt.Fprintf(os.Stderr, "single world  P=%d %7.2f frames/s  p50 %6.1f ms  p99 %6.1f ms\n",
		*fleetP, rep.Single.FPS, rep.Single.P50MS, rep.Single.P99MS)

	// Phase 2: the fleet on the same mix, closed loop to saturation.
	rcs := make([]fleet.ReplicaConfig, *fleetN)
	for i := range rcs {
		rcs[i] = fleet.ReplicaConfig{Server: &server.Config{
			P: *fleetP, QueueDepth: 2 * *frames, MaxInFlight: *inflight,
			DefaultDeadline: 5 * time.Minute,
		}}
	}
	g, err := fleet.Start(fleet.Config{
		Addr: "127.0.0.1:0", Replicas: rcs,
		DefaultDeadline: 5 * time.Minute,
	})
	if err != nil {
		return fmt.Errorf("fleet gateway: %w", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		g.Shutdown(ctx)
	}()
	fcl := client.New(g.Addr().String())
	defer fcl.Close()
	if _, err := fcl.Render(context.Background(), server.Request{
		Dataset: "cube", Method: "bsbrc", Width: *size, Height: *size, RotY: 180,
	}); err != nil { // warm each replica's dataset cache via the gateway
		return fmt.Errorf("fleet warmup: %w", err)
	}

	before := g.Stats()
	rep.FleetClosed, err = closedLoop(fcl, newWorkload(rand.New(rand.NewSource(*benchSeed+1)), &unique), *frames)
	if err != nil {
		return fmt.Errorf("fleet closed loop: %w", err)
	}
	rep.Speedup = rep.FleetClosed.FPS / rep.Single.FPS
	rep.CacheHitRate, rep.Hedges, rep.Retries, rep.ReplicaFrames = statsDelta(g.Stats(), before)
	rep.HedgeWins = g.Stats().HedgeWins
	fmt.Fprintf(os.Stderr, "fleet x%d     P=%d %7.2f frames/s  p50 %6.1f ms  p99 %6.1f ms  speedup %.2fx  cache %2.0f%%  hedges %d  replicas %v\n",
		*fleetN, *fleetP, rep.FleetClosed.FPS, rep.FleetClosed.P50MS, rep.FleetClosed.P99MS,
		rep.Speedup, 100*rep.CacheHitRate, rep.Hedges, rep.ReplicaFrames)

	// Phase 3: open-loop sweep at multiples of the single-world
	// saturation throughput.
	olRng := rand.New(rand.NewSource(*benchSeed + 2))
	saturated := false
	for _, mult := range []float64{0.5, 1.0, 1.5, 1.7, 2.0} {
		rate := mult * rep.Single.FPS
		n := int(rate * 6)
		if n < 48 {
			n = 48
		}
		if n > 400 {
			n = 400
		}
		wl := newWorkload(rand.New(rand.NewSource(*benchSeed+10+int64(mult*10))), &unique)
		pt := openLoop(fcl, g, wl, rate, n, olRng)
		rep.OpenLoop = append(rep.OpenLoop, pt)
		note := ""
		if pt.Saturated {
			saturated = true
			note = "  GENERATOR SATURATED"
		}
		fmt.Fprintf(os.Stderr, "open loop %4.1fx offered %7.2f/s achieved %7.2f/s  p50 %6.1f ms  p99 %7.1f ms  err %d  cache %2.0f%%  hedges %d  replicas %v%s\n",
			mult, pt.OfferedFPS, pt.AchievedFPS, pt.P50MS, pt.P99MS, pt.Errors,
			100*pt.CacheHitRate, pt.Hedges, pt.ReplicaFrames, note)
	}

	// Phase 4: cached replies must be byte-identical to a direct
	// single-world render at equal P, and flagged as cached.
	fresh, err := fcl.Render(context.Background(), identityReq)
	if err != nil {
		return fmt.Errorf("fleet identity render: %w", err)
	}
	hit, err := fcl.Render(context.Background(), identityReq)
	if err != nil {
		return fmt.Errorf("fleet identity repeat: %w", err)
	}
	rep.CacheByteIdentity = hit.Stats.Cached &&
		string(fresh.Gray) == string(ref.Gray) && string(hit.Gray) == string(ref.Gray)
	if !rep.CacheByteIdentity {
		fmt.Fprintf(os.Stderr, "servebench: CACHE IDENTITY FAILURE (cached=%v, fresh==ref %v, hit==ref %v)\n",
			hit.Stats.Cached, string(fresh.Gray) == string(ref.Gray), string(hit.Gray) == string(ref.Gray))
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *out == "-" {
		if _, err := os.Stdout.Write(buf); err != nil {
			return err
		}
	} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
		return err
	}

	if saturated {
		return fmt.Errorf("open-loop generator fell more than %v behind its schedule: the offered rate was not achieved, the affected points do not measure the server — rerun with lower rates or a larger -slip-budget", *slipBudget)
	}
	if !rep.CacheByteIdentity {
		return fmt.Errorf("cached reply was not byte-identical to a direct render")
	}
	return nil
}
