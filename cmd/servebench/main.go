// Command servebench measures the serving tier end to end: it starts an
// in-process renderd (resident rank pool, admission queue, pipelined
// frames), drives it with concurrent client requests, and reports
// frames per second and p50/p99 request latency per world size.
//
//	go run ./cmd/servebench -frames 32 -out BENCH_serve.json
//
// The JSON output is an array of per-configuration records, one per
// (P, method) pair, consumed by `make bench-json`.
//
// With -fleet N the benchmark instead measures the fleet gateway
// (cmd/renderfleet's tier) against a single-world baseline and sweeps
// an open-loop, coordinated-omission-safe load curve; see fleet.go.
//
//	go run ./cmd/servebench -fleet 2 -out BENCH_fleet.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"sortlast/internal/client"
	"sortlast/internal/faultinject"
	"sortlast/internal/server"
)

var (
	frames    = flag.Int("frames", 32, "frames per configuration")
	size      = flag.Int("size", 256, "image size (square)")
	inflight  = flag.Int("inflight", 2, "max frames pipelined through the stages")
	conc      = flag.Int("conc", 8, "concurrent client requests")
	out       = flag.String("out", "BENCH_serve.json", "output path (- for stdout)")
	metrics   = flag.String("metrics-addr", "", "observability sidecar address for the in-process renderd (/healthz, /metrics, /debug/pprof/, /debug/trace/last); empty (the default) disables")
	chaos     = flag.Bool("chaos", false, "inject probabilistic connection resets into the rank world and drive through them with a retrying client (exercises world supervision under load; failed frames are counted, not fatal)")
	chaosSeed = flag.Int64("chaos-seed", 1, "fault-injection seed, so a chaos run is reproducible")
	quality   = flag.String("quality", "", "quality contract stamped on every request (full, approx, preview), or \"sweep\" to bench the whole ladder on one dense workload and write per-quality records")
)

// record is one benchmark configuration's result.
type record struct {
	P         int     `json:"p"`
	Method    string  `json:"method"`
	Quality   string  `json:"quality,omitempty"`
	Frames    int     `json:"frames"`
	Size      int     `json:"size"`
	FPS       float64 `json:"frames_per_sec"`
	P50MS     float64 `json:"p50_ms"`
	P99MS     float64 `json:"p99_ms"`
	WireBytes int64   `json:"wire_bytes_per_frame"`

	// Server-side decomposition of the latency, averaged over successful
	// frames: time spent queued behind admission control vs. in the
	// render/composite pipeline (from FrameStats on each reply). Their
	// gap to P50MS is transport + client overhead.
	QueueMS  float64 `json:"queue_ms_avg"`
	RenderMS float64 `json:"render_ms_avg"`

	// Chaos-mode extras: frames that exhausted their retry budget and
	// how many times the supervisor rebuilt the rank world.
	Failed        int   `json:"failed_frames,omitempty"`
	WorldRestarts int64 `json:"world_restarts,omitempty"`
}

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "servebench: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	if *fleetN > 0 {
		return runFleet()
	}
	if *quality == "sweep" {
		return runQualitySweep()
	}
	q, err := server.NormalizeQuality(*quality)
	if err != nil {
		return err
	}
	var records []record
	for _, p := range []int{4, 8} {
		for _, method := range []string{"bs", "bsbrc"} {
			rec, err := bench(p, method, q)
			if err != nil {
				return fmt.Errorf("P=%d method=%s: %w", p, method, err)
			}
			records = append(records, rec)
			line := fmt.Sprintf("P=%d %-6s %6.2f frames/s  p50 %6.1f ms  p99 %6.1f ms  queue %5.1f ms  render %5.1f ms",
				rec.P, rec.Method, rec.FPS, rec.P50MS, rec.P99MS, rec.QueueMS, rec.RenderMS)
			if *chaos {
				line += fmt.Sprintf("  world restarts %d  failed frames %d", rec.WorldRestarts, rec.Failed)
			}
			fmt.Fprintln(os.Stderr, line)
		}
	}
	buf, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(*out, buf, 0o644)
}

// runQualitySweep benches the full quality ladder on one dense
// workload (cube at -size, bsbrc, P=4) and writes per-quality records.
// The sweep asserts the contract's point: preview must cut p99 latency
// at least in half against full on the same workload, or the run fails
// loudly — a quality knob that does not buy latency is a regression.
func runQualitySweep() error {
	const p, method = 4, "bsbrc"
	var records []record
	byQuality := map[string]record{}
	for _, q := range []string{server.QualityFull, server.QualityApprox, server.QualityPreview} {
		rec, err := bench(p, method, q)
		if err != nil {
			return fmt.Errorf("quality=%s: %w", q, err)
		}
		records = append(records, rec)
		byQuality[q] = rec
		fmt.Fprintf(os.Stderr, "P=%d %-6s quality=%-7s %6.2f frames/s  p50 %6.1f ms  p99 %6.1f ms  wire %d B/frame\n",
			rec.P, rec.Method, q, rec.FPS, rec.P50MS, rec.P99MS, rec.WireBytes)
	}
	full, prev := byQuality[server.QualityFull], byQuality[server.QualityPreview]
	if prev.P99MS*2 > full.P99MS {
		return fmt.Errorf("preview p99 %.1f ms is not at least 2x below full p99 %.1f ms",
			prev.P99MS, full.P99MS)
	}
	buf, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(*out, buf, 0o644)
}

func bench(p int, method, quality string) (record, error) {
	cfg := server.Config{
		Addr: "127.0.0.1:0", P: p,
		HTTPAddr:        *metrics,
		QueueDepth:      2 * *frames,
		MaxInFlight:     *inflight,
		DefaultDeadline: 5 * time.Minute,
	}
	if *chaos {
		cfg.Chaos = faultinject.New(faultinject.Config{Seed: *chaosSeed, ResetProb: 0.01})
		cfg.FrameTimeout = 2 * time.Second
	}
	srv, err := server.Start(cfg)
	if err != nil {
		return record{}, fmt.Errorf("in-process renderd failed to start (world=mp, P=%d): %w", p, err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	cl := client.New(srv.Addr().String())
	defer cl.Close()
	if *chaos {
		cl.SetRetryPolicy(client.RetryPolicy{
			MaxAttempts: 10,
			BaseBackoff: 5 * time.Millisecond,
			MaxBackoff:  100 * time.Millisecond,
		})
	}

	req := server.Request{Dataset: "cube", Method: method, Width: *size, Height: *size, RotY: 30, Quality: quality}
	ctx := context.Background()
	if _, err := cl.Render(ctx, req); err != nil && !*chaos { // warm the dataset cache
		return record{}, err
	}

	var latencies []time.Duration
	var wire int64
	var queueMS, renderMS float64
	var failed int
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, *conc)
	errs := make(chan error, *frames)
	start := time.Now()
	for i := 0; i < *frames; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			f, err := cl.Render(ctx, req)
			if err != nil {
				errs <- err
				return
			}
			mu.Lock()
			latencies = append(latencies, time.Since(t0))
			wire += f.Stats.WireBytes
			queueMS += f.Stats.QueueMS
			renderMS += f.Stats.RenderMS
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	var lastErr error
	for err := range errs {
		// Under chaos a frame may exhaust its retry budget; count it and
		// keep going. A failure without chaos is a real bug.
		if !*chaos {
			return record{}, err
		}
		failed++
		lastErr = err
	}
	if len(latencies) == 0 {
		return record{}, fmt.Errorf("all %d frames failed: %w", *frames, lastErr)
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	quantile := func(q float64) float64 {
		i := int(q * float64(len(latencies)-1))
		return float64(latencies[i]) / float64(time.Millisecond)
	}
	return record{
		P: p, Method: method, Quality: quality, Frames: len(latencies), Size: *size,
		FPS:           float64(len(latencies)) / elapsed.Seconds(),
		P50MS:         quantile(0.50),
		P99MS:         quantile(0.99),
		WireBytes:     wire / int64(len(latencies)),
		QueueMS:       queueMS / float64(len(latencies)),
		RenderMS:      renderMS / float64(len(latencies)),
		Failed:        failed,
		WorldRestarts: srv.WorldRestarts(),
	}, nil
}
