GO ?= go

.PHONY: check vet build test race chaos bench bench-json bench-autotune bench-render bench-fleet bench-compose bench-quality

# check is the pre-commit gate: static analysis, a full build, the full
# test suite, and the race detector over the packages that run
# goroutine-parallel code (the simulated ranks in core/mp, the scanline
# worker pool in render, the TCP transport, and the frame server's
# pipelined scheduler).
check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/render/ ./internal/core/ ./internal/mp/ \
		./internal/mpnet/ ./internal/server/ ./internal/faultinject/ \
		./internal/client/ ./internal/fleet/ ./internal/trace/ \
		./internal/tilecomp/

# chaos drives an in-process renderd through injected connection resets
# with a retrying client: the run fails only if a configuration cannot
# serve a single frame through the world restarts.
chaos:
	$(GO) run ./cmd/servebench -chaos -frames 16 -size 96 -out -

# bench runs the compositing allocation benchmarks used in EXPERIMENTS.md.
bench:
	$(GO) test -run xxx -bench BenchmarkCompositeAllocs -benchmem .

# bench-json measures the serving tier (frames/sec, p50/p99 latency at
# P=4 and P=8) and writes BENCH_serve.json. Fails loudly when the
# in-process renderd cannot start or serve.
bench-json:
	@$(GO) run ./cmd/servebench -out BENCH_serve.json || \
		{ echo "bench-json: FAILED -- servebench could not start or drive renderd (see error above); BENCH_serve.json not updated" >&2; exit 1; }

# bench-render measures the ray-cast kernel against the
# pre-acceleration reference (ns/ray, speedup, macro-cell skip fraction)
# and writes BENCH_render.json. The run itself verifies byte-identity,
# so a kernel regression fails loudly here too.
bench-render:
	@$(GO) run ./cmd/renderbench -out BENCH_render.json || \
		{ echo "bench-render: FAILED -- renderbench did not complete or the kernels diverged (see error above); BENCH_render.json not updated" >&2; exit 1; }

# bench-fleet measures the fleet gateway (replica routing, hedged
# dispatch, frame cache) against a single-world baseline and sweeps an
# open-loop, coordinated-omission-safe load curve; writes
# BENCH_fleet.json. The run itself verifies cached replies are
# byte-identical to direct renders and that the load generator kept its
# schedule, so either failure mode is loud.
bench-fleet:
	@$(GO) run ./cmd/servebench -fleet 2 -out BENCH_fleet.json || \
		{ echo "bench-fleet: FAILED -- the fleet benchmark did not complete, a cached reply diverged, or the open-loop generator could not hold its offered rate (see error above); BENCH_fleet.json not updated" >&2; exit 1; }

# bench-quality sweeps the quality ladder (full, approx, preview) over
# one dense workload and writes BENCH_quality.json. The sweep itself
# asserts preview cuts p99 latency at least 2x against full, so a
# quality contract that stops buying latency fails loudly.
bench-quality:
	@$(GO) run ./cmd/servebench -quality sweep -out BENCH_quality.json || \
		{ echo "bench-quality: FAILED -- the quality sweep did not complete or preview lost its 2x p99 margin over full (see error above); BENCH_quality.json not updated" >&2; exit 1; }

# bench-autotune compares Method auto against every fixed compositing
# method over a mixed dense->sparse animation (quick-calibrating the
# host first) and writes BENCH_autotune.json.
bench-autotune:
	@$(GO) run ./cmd/composebench -autobench -o BENCH_autotune.json || \
		{ echo "bench-autotune: FAILED -- autobench did not complete (see error above); BENCH_autotune.json not updated" >&2; exit 1; }

# bench-compose measures every registered compositing method's wall time
# over a dense and a sparse workload (including ds/dfb at non-power-of-
# two P) and writes BENCH_compose.json. The run itself asserts the
# tile-routed reduction beats binary swap on the sparse workload at
# P=16, so a routing regression fails loudly.
bench-compose:
	@$(GO) run ./cmd/composebench -compose -o BENCH_compose.json || \
		{ echo "bench-compose: FAILED -- the compose grid did not complete or dfb lost to bs on the sparse P=16 workload (see error above); BENCH_compose.json not updated" >&2; exit 1; }
