GO ?= go

.PHONY: check vet build test race bench

# check is the pre-commit gate: static analysis, a full build, the full
# test suite, and the race detector over the packages that run
# goroutine-parallel code (the simulated ranks in core/mp and the
# scanline worker pool in render).
check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/render/ ./internal/core/ ./internal/mp/

# bench runs the compositing allocation benchmarks used in EXPERIMENTS.md.
bench:
	$(GO) test -run xxx -bench BenchmarkCompositeAllocs -benchmem .
