package fleet

import (
	"math"
	"testing"
	"time"
)

// The scorer is deterministic: least outstanding work wins, ties break
// to the lowest index.
func TestPickLeastOutstandingTieBreak(t *testing.T) {
	cases := []struct {
		name  string
		cands []pickCandidate
		want  int
	}{
		{"least loaded wins", []pickCandidate{{Outstanding: 3}, {Outstanding: 1}, {Outstanding: 2}}, 1},
		{"tie breaks to lowest index", []pickCandidate{{Outstanding: 2}, {Outstanding: 2}, {Outstanding: 2}}, 0},
		{"partial tie breaks to lowest index", []pickCandidate{{Outstanding: 5}, {Outstanding: 2}, {Outstanding: 2}}, 1},
		{"excluded candidates are skipped", []pickCandidate{{Outstanding: 0, Excluded: true}, {Outstanding: 7}}, 1},
		{"all excluded yields -1", []pickCandidate{{Excluded: true}, {Excluded: true}}, -1},
		{"empty set yields -1", nil, -1},
		{"penalty pushes a suspect behind a loaded healthy replica",
			[]pickCandidate{{Outstanding: 0, Penalty: suspectPenalty}, {Outstanding: 40}}, 1},
		{"a suspect is still picked when it is all that remains",
			[]pickCandidate{{Outstanding: 0, Penalty: suspectPenalty}, {Excluded: true}}, 0},
		{"degraded ranks behind healthy but ahead of suspect",
			[]pickCandidate{{Penalty: suspectPenalty}, {Penalty: degradedPenalty}}, 1},
	}
	for _, tc := range cases {
		if got := pickReplica(tc.cands, -1, 0); got != tc.want {
			t.Errorf("%s: pickReplica = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// Affinity breaks ties toward the warm replica but never outweighs a
// full request of load difference.
func TestPickAffinityBonus(t *testing.T) {
	even := []pickCandidate{{Outstanding: 1}, {Outstanding: 1}}
	if got := pickReplica(even, 1, 1.0); got != 1 {
		t.Errorf("affinity did not break the tie: got %d, want 1", got)
	}
	// One extra outstanding request on the affine replica must dominate
	// even a full-strength bonus.
	loaded := []pickCandidate{{Outstanding: 1}, {Outstanding: 2}}
	if got := pickReplica(loaded, 1, 1.0); got != 0 {
		t.Errorf("affinity outweighed load: got %d, want 0", got)
	}
	// A decayed bonus still wins an exact tie.
	if got := pickReplica(even, 1, 0.01); got != 1 {
		t.Errorf("decayed affinity did not break the tie: got %d, want 1", got)
	}
	// Zero weight leaves the deterministic index tie-break in place.
	if got := pickReplica(even, 1, 0); got != 0 {
		t.Errorf("zero-weight affinity changed the pick: got %d, want 0", got)
	}
	// Weights outside [0,1] are clamped, not amplified.
	if got := pickReplica(loaded, 1, 50); got != 0 {
		t.Errorf("oversized affinity weight was not clamped: got %d, want 0", got)
	}
}

// The affinity weight halves every half-life and is exactly 1 at zero
// age.
func TestAffinityDecay(t *testing.T) {
	const hl = 5 * time.Second
	if w := affinityDecay(0, hl); w != 1 {
		t.Errorf("decay(0) = %g, want 1", w)
	}
	if w := affinityDecay(hl, hl); math.Abs(w-0.5) > 1e-9 {
		t.Errorf("decay(halfLife) = %g, want 0.5", w)
	}
	if w := affinityDecay(2*hl, hl); math.Abs(w-0.25) > 1e-9 {
		t.Errorf("decay(2*halfLife) = %g, want 0.25", w)
	}
	// Monotonically non-increasing in age.
	prev := math.Inf(1)
	for age := time.Duration(0); age < 30*time.Second; age += 100 * time.Millisecond {
		w := affinityDecay(age, hl)
		if w > prev {
			t.Fatalf("decay not monotonic at age %v: %g > %g", age, w, prev)
		}
		prev = w
	}
	if w := affinityDecay(time.Hour, 0); w != 1 {
		t.Errorf("zero half-life must disable decay, got %g", w)
	}
}

// The router's table remembers the last server per camera key and
// reports a decayed weight; unknown keys report no affinity.
func TestRouterRememberAndDecay(t *testing.T) {
	r := newRouter(time.Second)
	key := cacheKey{dataset: "cube", method: "bs", width: 64, height: 64}
	if idx, w := r.affinity(key, time.Now()); idx != -1 || w != 0 {
		t.Fatalf("unknown key: affinity = (%d, %g), want (-1, 0)", idx, w)
	}
	now := time.Now()
	r.remember(key, 2, now)
	idx, w := r.affinity(key, now)
	if idx != 2 || math.Abs(w-1) > 1e-9 {
		t.Fatalf("fresh hint: affinity = (%d, %g), want (2, 1)", idx, w)
	}
	idx, w = r.affinity(key, now.Add(time.Second))
	if idx != 2 || math.Abs(w-0.5) > 1e-9 {
		t.Fatalf("one half-life later: affinity = (%d, %g), want (2, 0.5)", idx, w)
	}
}
