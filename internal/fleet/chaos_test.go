package fleet_test

import (
	"bytes"
	"context"
	"runtime"
	"testing"
	"time"

	"sortlast/internal/client"
	"sortlast/internal/faultinject"
	"sortlast/internal/fleet"
	"sortlast/internal/server"
)

// TestFleetDrainsToSurvivorOnCrash is the chaos acceptance test of the
// fleet tier: one replica's world crashes mid-run and the gateway
// retries its failed dispatches on the survivor, so the client sees
// zero failed requests and every frame stays byte-identical to the
// fault-free reference. Once the crashed replica's supervisor rebuilds
// its world and the suspect cooldown lapses, the gateway routes to it
// again.
func TestFleetDrainsToSurvivorOnCrash(t *testing.T) {
	before := runtime.NumGoroutine()

	const p = 2
	inj := faultinject.New(faultinject.Config{Seed: 42})
	cfg := fleet.Config{
		Addr: "127.0.0.1:0",
		Replicas: []fleet.ReplicaConfig{
			{Server: &server.Config{P: p, QueueDepth: 16, MaxInFlight: 2, DefaultDeadline: time.Minute, Chaos: inj}},
			{Server: &server.Config{P: p, QueueDepth: 16, MaxInFlight: 2, DefaultDeadline: time.Minute}},
		},
		DefaultDeadline: time.Minute,
		SuspectCooldown: 200 * time.Millisecond,
	}
	g, err := fleet.Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl := client.New(g.Addr().String())
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	render := func(i int, rot float64) {
		t.Helper()
		req := server.Request{Dataset: "cube", Method: "bsbrc", Width: 48, Height: 48, RotY: rot}
		f, err := cl.Render(ctx, req)
		if err != nil {
			t.Fatalf("request %d (rotY=%g) failed at the client: %v", i, rot, err)
		}
		if !bytes.Equal(f.Gray, referenceGray(t, req, p)) {
			t.Fatalf("request %d (rotY=%g) differs from fault-free reference", i, rot)
		}
	}

	// Healthy traffic first; distinct cameras keep the cache out of the
	// way so every request exercises a dispatch.
	for i := 0; i < 4; i++ {
		render(i, float64(i)*11)
	}

	// Kill a rank in replica 0's world. The next dispatches routed there
	// fail with the retryable world_failed code; the gateway must absorb
	// them by retrying on the survivor — the client sees only successes.
	inj.Crash(1)
	for i := 4; i < 16; i++ {
		render(i, float64(i)*11)
	}

	st := g.Stats()
	if st.Errors != 0 {
		t.Errorf("gateway surfaced %d request errors during the crash window", st.Errors)
	}
	if st.Retries == 0 {
		t.Error("gateway recorded no cross-replica retries across a replica crash")
	}
	if len(st.Replicas) != 2 || st.Replicas[1].Frames == 0 {
		t.Fatalf("survivor served no frames: %+v", st.Replicas)
	}

	// Recovery: the supervisor rebuilds replica 0's world (fresh
	// incarnations start healthy), the cooldown lapses, and the gateway
	// routes to it again.
	framesBefore := st.Replicas[0].Frames
	deadline := time.Now().Add(30 * time.Second)
	i := 16
	for time.Now().Before(deadline) {
		render(i, float64(i)*11)
		i++
		if g.Stats().Replicas[0].Frames > framesBefore {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if got := g.Stats().Replicas[0]; got.Frames <= framesBefore {
		t.Errorf("crashed replica never returned to service: %+v", got)
	}
	if r := g.Stats().Replicas[0].WorldRestarts; r < 1 {
		t.Errorf("replica 0 world restarts = %d, want >= 1", r)
	}

	cl.Close()
	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	if err := g.Shutdown(sctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
	waitNoLeaks(t, before)
}

// TestFleetHedgesStalledReplica pins the hedging path: after the
// latency windows are warm, a request that lands on a replica whose
// world has wedged exceeds that replica's rolling p99, the hedge fires
// on the second replica, and the client gets a fast successful reply
// flagged as hedged — it never waits out the stall.
func TestFleetHedgesStalledReplica(t *testing.T) {
	before := runtime.NumGoroutine()

	const p = 2
	inj := faultinject.New(faultinject.Config{Seed: 7})
	// A short per-frame watchdog bounds how long the stalled replica
	// holds the losing dispatch, so shutdown stays fast.
	cfg := fleet.Config{
		Addr: "127.0.0.1:0",
		Replicas: []fleet.ReplicaConfig{
			{Server: &server.Config{P: p, QueueDepth: 16, MaxInFlight: 2, DefaultDeadline: time.Minute,
				FrameTimeout: time.Second, Chaos: inj}},
			{Server: &server.Config{P: p, QueueDepth: 16, MaxInFlight: 2, DefaultDeadline: time.Minute}},
		},
		DefaultDeadline: time.Minute,
	}
	g, err := fleet.Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl := client.New(g.Addr().String())
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Warm replica 0's latency window past the cold-start sample count:
	// sequential distinct-camera requests all land on the lowest index,
	// dropping its hedge threshold from the 500ms cold default to the
	// measured p99 (floored at HedgeMin).
	for i := 0; i < 24; i++ {
		req := server.Request{Dataset: "cube", Method: "bsbrc", Width: 32, Height: 32, RotY: float64(i) * 3.7}
		if _, err := cl.Render(ctx, req); err != nil {
			t.Fatalf("warmup %d: %v", i, err)
		}
	}

	// Wedge replica 0's world: transport ops block far longer than any
	// sane frame. The next request routed there must be rescued by the
	// hedge, not by the stall expiring.
	inj.Stall(1, 30*time.Second)
	req := server.Request{Dataset: "cube", Method: "bsbrc", Width: 32, Height: 32, RotY: 271.3}
	ref := referenceGray(t, req, p)
	start := time.Now()
	f, err := cl.Render(ctx, req)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("request against stalled replica: %v", err)
	}
	if !bytes.Equal(f.Gray, ref) {
		t.Fatal("hedged frame differs from fault-free reference")
	}
	if !f.Stats.Hedged {
		t.Error("winning reply not flagged as hedged")
	}
	if elapsed > 10*time.Second {
		t.Errorf("hedged request took %v; the hedge should fire near the warm p99, not the stall", elapsed)
	}
	st := g.Stats()
	if st.HedgesIssued < 1 {
		t.Errorf("hedges issued = %d, want >= 1", st.HedgesIssued)
	}
	if st.HedgeWins < 1 {
		t.Errorf("hedge wins = %d, want >= 1", st.HedgeWins)
	}
	if len(st.Replicas) == 2 && st.Replicas[1].HedgeWins < 1 {
		t.Errorf("replica 1 hedge wins = %d, want >= 1", st.Replicas[1].HedgeWins)
	}

	cl.Close()
	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	if err := g.Shutdown(sctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
	waitNoLeaks(t, before)
}
