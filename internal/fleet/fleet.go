// Package fleet is the horizontal-capacity tier above renderd: a
// gateway that owns N world replicas (each a supervised internal/server
// world with its own P, transport and autotune configuration, or an
// externally running renderd it attaches to) and speaks the same
// length-prefixed frame protocol to clients, so internal/client works
// unchanged against a gateway.
//
// Three mechanisms turn one-world serving into a fleet:
//
//   - Routing: requests go to the replica with the least outstanding
//     work, biased by a decaying camera-affinity bonus (repeat cameras
//     stay on the replica whose caches are warm for them) and away from
//     replicas that recently failed or whose world is rebuilding. A
//     dispatch that fails with a retryable error is retried on the next
//     replica, so one crashing replica drains to the survivors without
//     failing client requests.
//
//   - Hedged dispatch: a request that outlives its replica's rolling
//     p99 latency is speculatively re-sent to a second replica; the
//     first reply wins. This bounds tail latency against a slow or
//     silently wedged replica at the cost of one duplicate render.
//
//   - Frame cache: successful frames are cached under their quantized
//     camera key (LRU, byte budget), so dashboard-style repeat traffic
//     is served from memory without touching a world. Entries are
//     invalidated per (dataset, method) when a dataset changes.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"sortlast/internal/client"
	"sortlast/internal/server"
	"sortlast/internal/trace"
)

// Config describes one gateway.
type Config struct {
	// Addr is the gateway's frame-protocol listen address. Default
	// 127.0.0.1:7261.
	Addr string
	// HTTPAddr is the observability sidecar address (/healthz, /metrics,
	// /cache/invalidate). Empty disables the sidecar.
	HTTPAddr string

	// Replicas is the replica set; at least one is required.
	Replicas []ReplicaConfig

	// CacheBytes is the frame cache's byte budget. Zero means 64 MiB;
	// negative disables the cache.
	CacheBytes int64
	// QuantDeg is the camera quantization step in degrees for cache and
	// affinity keys. Zero means DefaultQuantDeg.
	QuantDeg float64

	// HedgeMin floors the hedge delay so a replica with a very fast
	// rolling p99 is not hedged on scheduling noise. Zero means 10ms.
	HedgeMin time.Duration
	// HedgeDisabled turns hedged dispatch off.
	HedgeDisabled bool

	// AffinityHalfLife is the camera-affinity decay half-life. Zero
	// means 5s.
	AffinityHalfLife time.Duration
	// SuspectCooldown is how long a replica is deprioritized after a
	// failed dispatch. Zero means 1s.
	SuspectCooldown time.Duration

	// DefaultDeadline bounds requests that carry no DeadlineMS. Zero
	// means 30s.
	DefaultDeadline time.Duration
	// PoolConns sizes each replica's client connection pool. Zero means
	// 64.
	PoolConns int

	// TracingDisabled turns off the gateway's request tracing: no trace
	// contexts are propagated to replicas, no merged span trees are
	// returned to sampled callers, and the flight recorder is off.
	TracingDisabled bool
	// FlightSize bounds the gateway's frame flight recorder (last N
	// interesting requests with their merged span trees, served at
	// /debug/flight). Zero means trace.DefaultFlightSize.
	FlightSize int
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:7261"
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	if c.QuantDeg == 0 {
		c.QuantDeg = DefaultQuantDeg
	}
	if c.HedgeMin == 0 {
		c.HedgeMin = 10 * time.Millisecond
	}
	if c.AffinityHalfLife == 0 {
		c.AffinityHalfLife = 5 * time.Second
	}
	if c.SuspectCooldown == 0 {
		c.SuspectCooldown = time.Second
	}
	if c.DefaultDeadline == 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.PoolConns == 0 {
		c.PoolConns = 64
	}
	return c
}

// hedgeColdDelay is the hedge threshold while a replica has too few
// latency samples for a meaningful p99.
const hedgeColdDelay = 500 * time.Millisecond

// hedgeMinSamples is how many window samples a replica needs before its
// rolling p99 replaces the cold default.
const hedgeMinSamples = 16

// Gateway is a running fleet gateway.
type Gateway struct {
	cfg      Config
	replicas []*replica
	router   *router
	met      *metrics

	cacheMu sync.Mutex
	cache   *frameCache // nil when disabled

	// flight retains the merged span trees of the last N interesting
	// requests (errors, hedges, over-p99), served at /debug/flight. Nil
	// when tracing is disabled.
	flight *trace.Flight

	ln      net.Listener
	httpLn  net.Listener
	httpSrv *http.Server

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	connWG   sync.WaitGroup // accept loop + connection handlers
	sendWG   sync.WaitGroup // in-flight replica dispatches (incl. hedge losers)
	stopOnce sync.Once
}

// Start builds the replica set (concurrently — replicas are
// independent), then begins serving the frame protocol on cfg.Addr and
// the observability sidecar on cfg.HTTPAddr.
func Start(cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("fleet: no replicas configured")
	}
	replicas, err := startReplicas(cfg.Replicas, cfg.PoolConns)
	if err != nil {
		return nil, err
	}
	g := &Gateway{
		cfg:      cfg,
		replicas: replicas,
		router:   newRouter(cfg.AffinityHalfLife),
		met:      newFleetMetrics(),
		conns:    make(map[net.Conn]struct{}),
	}
	if cfg.CacheBytes > 0 {
		g.cache = newFrameCache(cfg.CacheBytes)
	}
	if !cfg.TracingDisabled {
		g.flight = trace.NewFlight(cfg.FlightSize)
		g.met.flightLen = g.flight.Len
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		g.stopReplicas(context.Background())
		return nil, err
	}
	g.ln = ln
	if cfg.HTTPAddr != "" {
		httpLn, err := net.Listen("tcp", cfg.HTTPAddr)
		if err != nil {
			ln.Close()
			g.stopReplicas(context.Background())
			return nil, err
		}
		g.httpLn = httpLn
		mux := http.NewServeMux()
		mux.HandleFunc("/healthz", g.handleHealthz)
		mux.HandleFunc("/metrics", g.handleMetrics)
		mux.HandleFunc("/cache/invalidate", g.handleInvalidate)
		mux.Handle("/debug/flight", g.flight) // nil-safe: answers 404 when disabled
		// Explicit pprof routes, matching renderd's sidecar: the gateway
		// uses its own mux, so the net/http/pprof init() registrations on
		// DefaultServeMux don't apply.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		g.httpSrv = &http.Server{Handler: mux}
		go g.httpSrv.Serve(httpLn)
	}
	g.connWG.Add(1)
	go g.acceptLoop()
	return g, nil
}

// Addr returns the gateway's frame-protocol listen address.
func (g *Gateway) Addr() net.Addr { return g.ln.Addr() }

// HTTPAddr returns the sidecar listen address, nil when disabled.
func (g *Gateway) HTTPAddr() net.Addr {
	if g.httpLn == nil {
		return nil
	}
	return g.httpLn.Addr()
}

// InvalidateDataset drops every cached frame of dataset; a non-empty
// method restricts the sweep to that method's entries. It returns the
// number of entries removed. Call it whenever a dataset's contents
// change, or stale frames will be served until eviction.
func (g *Gateway) InvalidateDataset(dataset, method string) int {
	if g.cache == nil {
		return 0
	}
	g.cacheMu.Lock()
	defer g.cacheMu.Unlock()
	return g.cache.invalidate(dataset, method)
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	now := time.Now()
	healthy := 0
	for _, r := range g.replicas {
		if !r.isSuspect(now) && !r.degraded() {
			healthy++
		}
	}
	if healthy == 0 {
		http.Error(w, fmt.Sprintf("degraded: 0/%d replicas healthy", len(g.replicas)),
			http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, "ok (%d/%d replicas healthy)\n", healthy, len(g.replicas))
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if server.NegotiatesOpenMetrics(r.Header.Get("Accept")) {
		w.Header().Set("Content-Type", server.ContentTypeOpenMetrics)
		g.writeProm(w, true)
		return
	}
	w.Header().Set("Content-Type", server.ContentTypeProm)
	g.writeProm(w, false)
}

func (g *Gateway) handleInvalidate(w http.ResponseWriter, r *http.Request) {
	dataset := r.URL.Query().Get("dataset")
	if dataset == "" {
		http.Error(w, "missing dataset parameter", http.StatusBadRequest)
		return
	}
	n := g.InvalidateDataset(dataset, r.URL.Query().Get("method"))
	fmt.Fprintf(w, "invalidated %d entries\n", n)
}

// ---- serving ----

func (g *Gateway) acceptLoop() {
	defer g.connWG.Done()
	for {
		conn, err := g.ln.Accept()
		if err != nil {
			return // listener closed by Shutdown
		}
		g.mu.Lock()
		if g.closed {
			g.mu.Unlock()
			conn.Close()
			return
		}
		g.conns[conn] = struct{}{}
		g.connWG.Add(1)
		g.mu.Unlock()
		go g.handleConn(conn)
	}
}

func (g *Gateway) handleConn(conn net.Conn) {
	defer g.connWG.Done()
	defer func() {
		g.mu.Lock()
		delete(g.conns, conn)
		g.mu.Unlock()
		conn.Close()
	}()
	for {
		var req server.Request
		if err := server.ReadJSON(conn, server.MaxRequestFrame, &req); err != nil {
			return // EOF, deadline from Shutdown, or garbage framing
		}
		resp, gray := g.serve(req)
		if err := server.WriteJSON(conn, resp); err != nil {
			return
		}
		if resp.OK {
			if err := server.WriteFrame(conn, gray); err != nil {
				return
			}
		}
	}
}

// serve answers one request: from the frame cache when the quantized
// camera hits, otherwise by dispatching to a replica (with hedging and
// cross-replica retry) and caching the result.
func (g *Gateway) serve(req server.Request) (*server.Response, []byte) {
	g.met.requests.Add(1)
	t0 := time.Now()
	key := quantKey(req, g.cfg.QuantDeg)
	rt := g.newReqTrace(req.Trace, t0)
	detail := reqDetail(req)

	// gen is the cache's invalidation generation as of this lookup; an
	// invalidation between here and the post-render put makes the put a
	// no-op instead of resurrecting bytes from the old dataset.
	var gen uint64
	if g.cache != nil {
		g.cacheMu.Lock()
		e, ok := g.cache.lookup(key)
		gen = g.cache.generation()
		g.cacheMu.Unlock()
		if ok {
			total := time.Since(t0)
			g.met.cacheHits.Add(1)
			g.met.latency.observeTraced(total.Seconds(), uint64(rt.traceID()))
			rt.finish(total)
			g.observeFlight(rt, "ok", detail, total, false, true)
			resp := &server.Response{
				OK: true, Width: e.width, Height: e.height,
				Stats: server.FrameStats{Cached: true, TotalMS: float64(total) / 1e6,
					Quality: e.quality, ErrorBound: e.errorBound,
					TraceID: rt.traceID().String()},
			}
			if rt.wantsReply() {
				resp.Trace = rt.wire()
			}
			return resp, e.gray
		}
		g.met.cacheMiss.Add(1)
		rt.cacheLookup(time.Since(t0))
	}

	deadline := g.cfg.DefaultDeadline
	if req.DeadlineMS > 0 {
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()

	f, idx, hedged, err := g.dispatch(ctx, req, key, rt)
	total := time.Since(t0)
	rt.finish(total)
	if err != nil {
		g.met.errored.Add(1)
		resp := errorResponse(err)
		resp.Stats.TraceID = rt.traceID().String()
		g.observeFlight(rt, failCode(resp.Code), detail, total, hedged, false)
		return resp, nil
	}
	g.router.remember(key, idx, time.Now())
	if g.cache != nil {
		// The entry is keyed by the quality actually delivered (a
		// DegradeOK request may come back below what it asked for), so a
		// later full-quality request can never be answered with these
		// bytes unless they really are full quality.
		ckey := key
		if q, err := server.NormalizeQuality(f.Stats.Quality); err == nil {
			ckey.quality = q
		}
		e := &cacheEntry{key: ckey, width: f.Width, height: f.Height, gray: f.Gray,
			quality: ckey.quality, errorBound: f.Stats.ErrorBound}
		g.cacheMu.Lock()
		evicted := g.cache.put(e, gen)
		g.cacheMu.Unlock()
		g.met.cacheEvict.Add(int64(evicted))
	}
	g.met.latency.observeTraced(total.Seconds(), uint64(rt.traceID()))
	g.observeFlight(rt, "ok", detail, total, hedged, false)
	resp := &server.Response{OK: true, Width: f.Width, Height: f.Height, Stats: f.Stats}
	resp.Stats.Replica = idx + 1
	resp.Stats.Hedged = hedged
	resp.Stats.TotalMS = float64(total) / 1e6
	resp.Stats.TraceID = rt.traceID().String()
	if rt.wantsReply() {
		resp.Trace = rt.wire()
	}
	return resp, f.Gray
}

// reqDetail is the flight-recorder label for one request.
func reqDetail(req server.Request) string {
	method := req.Method
	if method == "" {
		method = server.DefaultMethod
	}
	return fmt.Sprintf("%s %dx%d %s", method, req.Width, req.Height, req.Dataset)
}

// failCode normalizes an empty reply code for flight-entry outcomes.
func failCode(code string) string {
	if code == "" {
		return server.CodeInternal
	}
	return code
}

// observeFlight offers one finished request to the gateway's flight
// recorder. The span tree is built lazily at export time, so a hedge
// loser reaped after this call still shows up in the retained trace.
func (g *Gateway) observeFlight(rt *reqTrace, outcome, detail string, total time.Duration, hedged, cached bool) {
	if g.flight == nil || rt == nil {
		return
	}
	g.flight.Observe(trace.FlightEntry{
		TraceID: rt.traceID().String(),
		At:      time.Now(),
		Latency: total,
		Outcome: outcome,
		Hedged:  hedged,
		Cached:  cached,
		Detail:  detail,
		Trace:   rt.wire,
	})
}

// errorResponse maps a dispatch error onto the wire's typed reply. A
// typed replica reply passes through unchanged; everything else becomes
// deadline_exceeded or internal.
func errorResponse(err error) *server.Response {
	var typed *client.Error
	if errors.As(err, &typed) {
		return &server.Response{Code: typed.Code, Error: typed.Msg}
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return &server.Response{Code: CodeDeadline, Error: "request deadline expired at the gateway"}
	}
	return &server.Response{Code: server.CodeInternal, Error: err.Error()}
}

// CodeDeadline mirrors server.CodeDeadline; aliased here so callers of
// the fleet package need not import server for the constant.
const CodeDeadline = server.CodeDeadline

// result is one replica dispatch's outcome.
type result struct {
	f   *client.Frame
	err error
	idx int
}

// dispatch sends req to the best replica, hedging to a second one when
// the reply outlives the primary's rolling p99 and retrying on the next
// replica after a retryable failure. Each replica is tried at most once
// per request. It returns the winning frame and replica index, and
// whether a hedge was issued.
func (g *Gateway) dispatch(ctx context.Context, req server.Request, key cacheKey, rt *reqTrace) (*client.Frame, int, bool, error) {
	tried := make(map[int]bool, len(g.replicas))
	hedgeIdx := map[int]bool{}
	resCh := make(chan result, len(g.replicas))

	primary := g.pick(key, tried)
	if primary < 0 {
		return nil, 0, false, fmt.Errorf("fleet: no replicas available")
	}
	g.send(ctx, primary, req, resCh, rt, "primary")
	tried[primary] = true
	outstanding := 1
	hedged := false

	hedgeTimer := time.NewTimer(g.hedgeDelay(primary))
	defer hedgeTimer.Stop()

	var lastErr error
	for {
		select {
		case r := <-resCh:
			outstanding--
			if r.err == nil {
				if hedgeIdx[r.idx] {
					g.met.hedgeWins.Add(1)
					g.replicas[r.idx].hedgesWon.Add(1)
				}
				return r.f, r.idx, hedged, nil
			}
			lastErr = r.err
			if !dispatchRetryable(r.err) {
				// Permanent for this request (bad request, expired
				// deadline): another replica would answer identically.
				return nil, r.idx, hedged, r.err
			}
			g.replicas[r.idx].suspect(time.Now(), g.cfg.SuspectCooldown)
			if next := g.pick(key, tried); next >= 0 {
				g.met.retries.Add(1)
				g.send(ctx, next, req, resCh, rt, "retry")
				tried[next] = true
				outstanding++
			} else if outstanding == 0 {
				return nil, r.idx, hedged, lastErr
			}
		case <-hedgeTimer.C:
			if g.cfg.HedgeDisabled || hedged {
				continue
			}
			if next := g.pick(key, tried); next >= 0 {
				hedged = true
				hedgeIdx[next] = true
				g.met.hedges.Add(1)
				g.send(ctx, next, req, resCh, rt, "hedge")
				tried[next] = true
				outstanding++
			}
		case <-ctx.Done():
			return nil, 0, hedged, ctx.Err()
		}
	}
}

// send dispatches req to replica idx in its own goroutine. The replica
// does its own bookkeeping (outstanding, latency window, counters), so
// a hedge loser finishing after the winner returned still lands its
// numbers — and its trace attempt, which the flight recorder's lazy
// export picks up even after the winner's reply went out.
func (g *Gateway) send(ctx context.Context, idx int, req server.Request, ch chan<- result, rt *reqTrace, kind string) {
	r := g.replicas[idx]
	r.outstanding.Add(1)
	g.sendWG.Add(1)
	// req is a copy: the attempt-specific trace context never leaks into
	// a sibling dispatch.
	req.Trace = rt.childContext()
	a := rt.beginAttempt(idx, kind)
	go func() {
		defer g.sendWG.Done()
		defer r.outstanding.Add(-1)
		t0 := time.Now()
		f, err := r.cl.Render(ctx, req)
		if err == nil {
			rt.endAttempt(a, f.Trace, "")
			r.win.observe(time.Since(t0))
			r.frames.Add(1)
		} else {
			rt.endAttempt(a, nil, errCode(err))
			r.errs.Add(1)
		}
		ch <- result{f: f, err: err, idx: idx}
	}()
}

// errCode names a dispatch error for the attempt span's outcome label.
func errCode(err error) string {
	var typed *client.Error
	if errors.As(err, &typed) {
		return typed.Code
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return "cancelled"
	}
	return "transport_error"
}

// pick scores the replicas not yet tried for this request and returns
// the best, or -1 when all are exhausted.
func (g *Gateway) pick(key cacheKey, tried map[int]bool) int {
	now := time.Now()
	cands := make([]pickCandidate, len(g.replicas))
	for i, r := range g.replicas {
		cands[i].Outstanding = int(r.outstanding.Load())
		cands[i].Excluded = tried[i]
		if r.isSuspect(now) {
			cands[i].Penalty += suspectPenalty
		}
		if r.degraded() {
			cands[i].Penalty += degradedPenalty
		}
	}
	affIdx, w := g.router.affinity(key, now)
	return pickReplica(cands, affIdx, w)
}

// hedgeDelay is how long a dispatch to replica idx may run before a
// hedge fires: the replica's rolling p99, floored by HedgeMin, or a
// conservative cold default while the window is thin.
func (g *Gateway) hedgeDelay(idx int) time.Duration {
	p99, n := g.replicas[idx].win.p99()
	if n < hedgeMinSamples {
		return hedgeColdDelay
	}
	if p99 < g.cfg.HedgeMin {
		return g.cfg.HedgeMin
	}
	return p99
}

// dispatchRetryable reports whether a failed dispatch is worth retrying
// on another replica: backpressure, a failed or draining world, and
// transport errors (dial refused, torn connection) all are — a
// different replica is an independent failure domain. Validation
// failures and expired deadlines are not.
func dispatchRetryable(err error) bool {
	if errors.Is(err, client.ErrBadRequest) || errors.Is(err, client.ErrDeadline) {
		return false
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return false
	}
	return true
}

// ---- teardown ----

func (g *Gateway) stopReplicas(ctx context.Context) error {
	var firstErr error
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, r := range g.replicas {
		if r == nil || r.srv == nil {
			continue
		}
		wg.Add(1)
		go func(r *replica) {
			defer wg.Done()
			if err := r.srv.Shutdown(ctx); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("fleet: replica %d shutdown: %w", r.idx, err)
				}
				mu.Unlock()
			}
		}(r)
	}
	wg.Wait()
	for _, r := range g.replicas {
		if r != nil {
			r.stop()
		}
	}
	return firstErr
}

// Shutdown stops the gateway: the listener closes, connection handlers
// finish their current reply, in-flight dispatches (hedge losers
// included) complete, then the in-process replicas drain. ctx bounds
// the whole sequence.
func (g *Gateway) Shutdown(ctx context.Context) error {
	g.stopOnce.Do(func() {
		g.mu.Lock()
		g.closed = true
		g.mu.Unlock()
		g.ln.Close()
	})

	// Unblock idle connection readers, then wait for handlers; force-close
	// stragglers at the deadline.
	g.mu.Lock()
	for conn := range g.conns {
		conn.SetReadDeadline(time.Now())
	}
	g.mu.Unlock()
	var err error
	connDone := make(chan struct{})
	go func() { g.connWG.Wait(); close(connDone) }()
	select {
	case <-connDone:
	case <-ctx.Done():
		err = ctx.Err()
		g.mu.Lock()
		for conn := range g.conns {
			conn.Close()
		}
		g.mu.Unlock()
		<-connDone
	}

	// Hedge losers may still be in flight; their contexts carry request
	// deadlines, so this wait is bounded even if ctx is not.
	sendDone := make(chan struct{})
	go func() { g.sendWG.Wait(); close(sendDone) }()
	select {
	case <-sendDone:
	case <-ctx.Done():
		if err == nil {
			err = ctx.Err()
		}
	}

	if serr := g.stopReplicas(ctx); serr != nil && err == nil {
		err = serr
	}
	if g.httpSrv != nil {
		if herr := g.httpSrv.Shutdown(ctx); herr != nil && err == nil {
			err = herr
		}
	}
	return err
}
