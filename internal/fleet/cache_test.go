package fleet

import (
	"fmt"
	"testing"

	"sortlast/internal/server"
)

// Quantization boundary behavior: angles within half a step of a grid
// point share its bucket, the midpoint rounds away from the lower
// bucket, the circle wraps, and negative angles alias their positive
// equivalents.
func TestQuantizeDegBoundaries(t *testing.T) {
	const step = 0.5
	cases := []struct {
		a, b float64
		same bool
	}{
		{0, 0.24, true},     // inside the half-step band
		{0.24, 0.26, false}, // straddles the 0.25 midpoint
		{0.26, 0.5, true},   // both round to bucket 1
		{0.25, 0.5, true},   // midpoint rounds up (away from zero)
		{-0.2, 0.2, true},   // negative aliases across zero
		{359.9, 0.1, true},  // top bucket wraps onto bucket 0
		{360.0, 0.0, true},  // full turn aliases
		{-360.0, 0.0, true},
		{725.1, 5.1, true},   // multiple turns alias
		{30.0, 30.49, false}, // 30.49 rounds to 30.5's bucket
		{30.0, 30.24, true},
	}
	for _, tc := range cases {
		qa, qb := quantizeDeg(tc.a, step), quantizeDeg(tc.b, step)
		if (qa == qb) != tc.same {
			t.Errorf("quantizeDeg(%g)=%d vs quantizeDeg(%g)=%d: same=%v, want %v",
				tc.a, qa, tc.b, qb, qa == qb, tc.same)
		}
	}
}

// The key normalizes the empty method onto the server default and keeps
// everything that changes rendered bytes.
func TestQuantKeyNormalization(t *testing.T) {
	base := server.Request{Dataset: "cube", Width: 64, Height: 64, RotY: 30}
	k1 := quantKey(base, 0.5)
	withDefault := base
	withDefault.Method = server.DefaultMethod
	if k1 != quantKey(withDefault, 0.5) {
		t.Error("empty method and the explicit default produced different keys")
	}
	shaded := base
	shaded.Shaded = true
	if k1 == quantKey(shaded, 0.5) {
		t.Error("shading is not in the key")
	}
	deadline := base
	deadline.DeadlineMS = 5000
	if k1 != quantKey(deadline, 0.5) {
		t.Error("the request deadline leaked into the cache key")
	}
}

func entryFor(dataset, method string, rot float64, n int) *cacheEntry {
	key := quantKey(server.Request{Dataset: dataset, Method: method, Width: 8, Height: 8, RotY: rot}, 0.5)
	return &cacheEntry{key: key, width: 8, height: 8, gray: make([]byte, n)}
}

// LRU eviction respects the byte budget and evicts the least recently
// used entry first.
func TestCacheLRUByteBudget(t *testing.T) {
	const payload = 1000
	budget := int64(3 * (payload + entryOverhead))
	c := newFrameCache(budget)
	for i := 0; i < 3; i++ {
		if ev := c.put(entryFor("cube", "bs", float64(i*10), payload), c.generation()); ev != 0 {
			t.Fatalf("put %d evicted %d entries under budget", i, ev)
		}
	}
	if c.entries() != 3 {
		t.Fatalf("entries = %d, want 3", c.entries())
	}
	// Touch entry 0 so entry 1 (rot 10) is the LRU, then overflow.
	if _, ok := c.get(entryFor("cube", "bs", 0, payload).key); !ok {
		t.Fatal("entry 0 missing before overflow")
	}
	if ev := c.put(entryFor("cube", "bs", 30, payload), c.generation()); ev != 1 {
		t.Fatalf("overflow evicted %d entries, want 1", ev)
	}
	if _, ok := c.get(entryFor("cube", "bs", 10, payload).key); ok {
		t.Error("LRU entry (rot 10) survived the eviction")
	}
	if _, ok := c.get(entryFor("cube", "bs", 0, payload).key); !ok {
		t.Error("recently used entry (rot 0) was evicted")
	}
	if c.sizeBytes() > budget {
		t.Errorf("cache holds %d bytes over its %d budget", c.sizeBytes(), budget)
	}
	// An entry larger than the whole budget is refused, not cached.
	if c.put(entryFor("cube", "bs", 99, int(budget)), c.generation()); c.entries() != 3 {
		t.Errorf("oversized entry changed the cache: %d entries", c.entries())
	}
}

// Replacing an existing key must adjust the byte account, not leak it.
func TestCacheReplaceAccounting(t *testing.T) {
	c := newFrameCache(1 << 20)
	c.put(entryFor("cube", "bs", 0, 1000), c.generation())
	before := c.sizeBytes()
	c.put(entryFor("cube", "bs", 0, 500), c.generation())
	if c.entries() != 1 {
		t.Fatalf("entries = %d after replace, want 1", c.entries())
	}
	if got, want := c.sizeBytes(), before-500; got != want {
		t.Errorf("bytes = %d after shrinking replace, want %d", got, want)
	}
}

// Invalidation is scoped per (dataset, method): the dataset sweep drops
// all of a dataset's entries, the method-scoped sweep only that
// method's, and unrelated datasets survive both.
func TestCacheInvalidateDatasetMethod(t *testing.T) {
	c := newFrameCache(1 << 20)
	for _, ds := range []string{"cube", "head"} {
		for _, m := range []string{"bs", "bsbrc"} {
			c.put(entryFor(ds, m, 0, 100), c.generation())
			c.put(entryFor(ds, m, 10, 100), c.generation())
		}
	}
	if c.entries() != 8 {
		t.Fatalf("entries = %d, want 8", c.entries())
	}
	if n := c.invalidate("cube", "bs"); n != 2 {
		t.Errorf("invalidate(cube, bs) removed %d, want 2", n)
	}
	if _, ok := c.get(entryFor("cube", "bsbrc", 0, 100).key); !ok {
		t.Error("method-scoped sweep removed another method's entry")
	}
	if n := c.invalidate("head", ""); n != 4 {
		t.Errorf("invalidate(head, all) removed %d, want 4", n)
	}
	if c.entries() != 2 {
		t.Errorf("entries = %d after sweeps, want 2 (cube/bsbrc)", c.entries())
	}
	if n := c.invalidate("missing", ""); n != 0 {
		t.Errorf("invalidating an absent dataset removed %d entries", n)
	}
	// The byte account matches the survivors.
	var want int64
	for i := 0; i < c.entries(); i++ {
		want += 100 + entryOverhead
	}
	if c.sizeBytes() != want {
		t.Errorf("bytes = %d after sweeps, want %d", c.sizeBytes(), want)
	}
}

// A hit returns the exact stored bytes (the byte-identity guarantee is
// the whole point of an exact-key cache).
func TestCacheHitReturnsStoredBytes(t *testing.T) {
	c := newFrameCache(1 << 20)
	e := entryFor("cube", "bs", 42, 64)
	for i := range e.gray {
		e.gray[i] = byte(i * 7)
	}
	c.put(e, c.generation())
	got, ok := c.get(e.key)
	if !ok {
		t.Fatal("stored entry missed")
	}
	for i := range e.gray {
		if got.gray[i] != byte(i*7) {
			t.Fatalf("byte %d differs: %d != %d", i, got.gray[i], byte(i*7))
		}
	}
	if fmt.Sprintf("%p", got.gray) != fmt.Sprintf("%p", e.gray) {
		t.Error("hit copied the payload; entries should be shared read-only")
	}
}

// An insert whose generation snapshot predates an invalidation must be
// dropped: the render raced the invalidation and may carry bytes of the
// old dataset. This is the resurrection window behind /cache/invalidate
// racing an in-flight (possibly hedged) dispatch — the loser of that
// race must not repopulate the cache.
func TestCachePutStaleGenerationDropped(t *testing.T) {
	c := newFrameCache(1 << 20)
	gen := c.generation()
	c.invalidate("cube", "") // bumps the generation even with nothing cached
	if ev := c.put(entryFor("cube", "bs", 0, 100), gen); ev != 0 {
		t.Errorf("stale put evicted %d entries", ev)
	}
	if c.entries() != 0 || c.sizeBytes() != 0 {
		t.Fatalf("stale-generation put inserted: %d entries, %d bytes — invalidated bytes resurrected",
			c.entries(), c.sizeBytes())
	}
	// A fresh snapshot taken after the invalidation inserts normally.
	c.put(entryFor("cube", "bs", 0, 100), c.generation())
	if c.entries() != 1 {
		t.Fatalf("fresh-generation put did not insert")
	}
	// Repeating the same insert with the same still-current snapshot
	// replaces in place: one entry, single-charged.
	c.put(entryFor("cube", "bs", 0, 100), c.generation())
	if c.entries() != 1 || c.sizeBytes() != 100+entryOverhead {
		t.Errorf("duplicate insert double-counted: %d entries, %d bytes (want 1 entry, %d bytes)",
			c.entries(), c.sizeBytes(), 100+entryOverhead)
	}
}

func qualityKey(quality string, rot float64) cacheKey {
	return quantKey(server.Request{
		Dataset: "cube", Width: 8, Height: 8, RotY: rot, Quality: quality,
	}, 0.5)
}

// Quality is part of the cache key, and lookup may substitute higher
// fidelity for lower — a full entry answers an approx request — but
// never the reverse: a full request must not be served a preview or
// approx entry, and a preview contract keys separately because its
// bytes are a different geometry.
func TestCacheQualityKeyingAndFallback(t *testing.T) {
	c := newFrameCache(1 << 20)
	full := &cacheEntry{key: qualityKey("", 0), quality: server.QualityFull, gray: make([]byte, 64)}
	c.put(full, c.generation())

	// "" and "full" share the key.
	if k := qualityKey(server.QualityFull, 0); k != full.key {
		t.Errorf("explicit full keys differently from the default: %+v vs %+v", k, full.key)
	}
	// An approx request falls back onto the full entry (higher fidelity
	// satisfies a lower contract).
	if e, ok := c.lookup(qualityKey(server.QualityApprox, 0)); !ok || e != full {
		t.Error("approx lookup did not fall back to the full-quality entry")
	}
	// A preview request does not: preview bytes are quarter-geometry, so
	// the contract is served only by its own key.
	if _, ok := c.lookup(qualityKey(server.QualityPreview, 0)); ok {
		t.Error("preview lookup was served a full-quality entry")
	}

	// The reverse direction never holds: with only degraded entries
	// cached, a full request misses.
	approx := &cacheEntry{key: qualityKey(server.QualityApprox, 10), quality: server.QualityApprox, gray: make([]byte, 64)}
	preview := &cacheEntry{key: qualityKey(server.QualityPreview, 10), quality: server.QualityPreview, gray: make([]byte, 64)}
	c.put(approx, c.generation())
	c.put(preview, c.generation())
	if _, ok := c.lookup(qualityKey("", 10)); ok {
		t.Fatal("a full request was served a lower-quality entry")
	}
	if e, ok := c.lookup(qualityKey(server.QualityApprox, 10)); !ok || e != approx {
		t.Error("exact approx entry missed in favor of the fallback")
	}
}

// Invalidation sweeps degraded entries along with full ones — quality
// variants of a dataset never outlive their dataset.
func TestCacheInvalidateSweepsQualityVariants(t *testing.T) {
	c := newFrameCache(1 << 20)
	for _, q := range []string{"", server.QualityApprox, server.QualityPreview} {
		e := &cacheEntry{key: qualityKey(q, 0), quality: q, gray: make([]byte, 16)}
		c.put(e, c.generation())
	}
	if c.entries() != 3 {
		t.Fatalf("entries = %d, want 3 quality variants", c.entries())
	}
	if n := c.invalidate("cube", ""); n != 3 {
		t.Errorf("invalidate removed %d entries, want all 3 quality variants", n)
	}
}
