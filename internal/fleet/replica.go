package fleet

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sortlast/internal/client"
	"sortlast/internal/server"
)

// ReplicaConfig describes one world replica the gateway owns or fronts.
// Exactly one of Server and Addr must be set: a non-nil Server starts
// an in-process renderd (its own supervised world, P, transport and
// autotune config — replicas may be heterogeneous), while Addr attaches
// to a renderd already running elsewhere.
type ReplicaConfig struct {
	// Server configures an in-process replica. Its Addr defaults to a
	// loopback ephemeral port; the gateway dials it like any backend, so
	// the data path is identical for in-process and remote replicas.
	Server *server.Config
	// Addr attaches to an external renderd's frame-protocol address.
	Addr string
}

// latWindowSize is the rolling latency window per replica. 64 samples
// keeps the p99 responsive to regime changes (a replica going slow
// because its world is rebuilding) while being wide enough that one
// outlier does not own the estimate.
const latWindowSize = 64

// latWindow is a fixed-size ring of recent request latencies with an
// on-demand p99.
type latWindow struct {
	mu   sync.Mutex
	buf  [latWindowSize]time.Duration
	n    int // valid samples, <= latWindowSize
	next int // ring write position
}

func (w *latWindow) observe(d time.Duration) {
	w.mu.Lock()
	w.buf[w.next] = d
	w.next = (w.next + 1) % latWindowSize
	if w.n < latWindowSize {
		w.n++
	}
	w.mu.Unlock()
}

// p99 returns the window's 99th percentile and how many samples back
// it. With a 64-sample window this is the second-slowest latency.
func (w *latWindow) p99() (time.Duration, int) {
	w.mu.Lock()
	n := w.n
	var scratch [latWindowSize]time.Duration
	copy(scratch[:n], w.buf[:n])
	w.mu.Unlock()
	if n == 0 {
		return 0, 0
	}
	s := scratch[:n]
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[int(float64(n-1)*0.99)], n
}

// replica is one live backend: its client pool, load and health state.
type replica struct {
	idx  int
	addr string
	srv  *server.Server // nil when attached to an external renderd
	cl   *client.Client

	outstanding atomic.Int64
	frames      atomic.Int64
	errs        atomic.Int64
	hedgesWon   atomic.Int64

	// suspectUntil (unix nanos) marks the replica recently failed a
	// dispatch; picks penalize it until the cooldown passes.
	suspectUntil atomic.Int64

	win latWindow
}

func (r *replica) suspect(now time.Time, cooldown time.Duration) {
	r.suspectUntil.Store(now.Add(cooldown).UnixNano())
}

func (r *replica) isSuspect(now time.Time) bool {
	return now.UnixNano() < r.suspectUntil.Load()
}

// degraded reports the replica's world is down and being rebuilt; only
// observable for in-process replicas (remote ones surface it through
// dispatch failures instead).
func (r *replica) degraded() bool { return r.srv != nil && r.srv.Degraded() }

// restarts reports the replica's world restart count (in-process only).
func (r *replica) restarts() int64 {
	if r.srv == nil {
		return 0
	}
	return r.srv.Stats().WorldRestarts
}

// startReplicas builds every replica concurrently — world construction
// dominates gateway startup, and replicas are independent. Any failure
// shuts the already-started replicas down and fails Start.
func startReplicas(cfgs []ReplicaConfig, poolConns int) ([]*replica, error) {
	reps := make([]*replica, len(cfgs))
	errs := make([]error, len(cfgs))
	var wg sync.WaitGroup
	for i, rc := range cfgs {
		wg.Add(1)
		go func(i int, rc ReplicaConfig) {
			defer wg.Done()
			reps[i], errs[i] = startReplica(i, rc, poolConns)
		}(i, rc)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			for _, r := range reps {
				if r != nil {
					r.stop()
				}
			}
			return nil, fmt.Errorf("fleet: replica %d: %w", i, err)
		}
	}
	return reps, nil
}

func startReplica(idx int, rc ReplicaConfig, poolConns int) (*replica, error) {
	r := &replica{idx: idx}
	switch {
	case rc.Server != nil && rc.Addr != "":
		return nil, fmt.Errorf("both Server and Addr set")
	case rc.Server != nil:
		cfg := *rc.Server
		if cfg.Addr == "" {
			cfg.Addr = "127.0.0.1:0"
		}
		srv, err := server.Start(cfg)
		if err != nil {
			return nil, err
		}
		r.srv = srv
		r.addr = srv.Addr().String()
	case rc.Addr != "":
		r.addr = rc.Addr
	default:
		return nil, fmt.Errorf("neither Server nor Addr set")
	}
	r.cl = client.NewPooled(r.addr, poolConns)
	return r, nil
}

// stop drops the replica's connections; shutdown of in-process servers
// is the gateway's, bounded by its context.
func (r *replica) stop() {
	if r.cl != nil {
		r.cl.Close()
	}
}
