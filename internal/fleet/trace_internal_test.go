package fleet

import (
	"testing"
	"time"

	"sortlast/internal/trace"
)

// oversizedChild builds a replica span tree big enough that the merged
// gateway trace must truncate.
func oversizedChild(id trace.ID) *trace.Wire {
	spans := make([]trace.WireSpan, trace.MaxWireSpans)
	for i := range spans {
		spans[i] = trace.WireSpan{Name: "render", StartUS: float64(i), DurUS: 1}
	}
	return &trace.Wire{
		TraceID: id.String(),
		TotalUS: 500,
		Procs: []trace.WireProc{{
			Name:   "renderd",
			Tracks: []trace.WireTrack{{Name: "rank 0", Spans: spans}},
		}},
	}
}

// TestReqTraceWireRepeatable pins that wire() builds a Wire owning its
// data: the reply path truncates its merge, and a later /debug/flight
// export rebuilds from the same retained attempt children — which the
// first build must have left intact (no span loss, no duplicated
// tracks, no concurrent mutation under a marshal).
func TestReqTraceWireRepeatable(t *testing.T) {
	rt := &reqTrace{id: trace.NewID(), clientSampled: true, start: time.Now()}
	a := rt.beginAttempt(0, "primary")
	child := oversizedChild(rt.id)
	childSpans := child.SpanCount()
	rt.endAttempt(a, child, "")
	rt.finish(time.Millisecond)

	first := rt.wire()
	if !first.Truncated || first.SpanCount() != trace.MaxWireSpans {
		t.Fatalf("first merge: truncated=%v spans=%d, want truncated at %d",
			first.Truncated, first.SpanCount(), trace.MaxWireSpans)
	}
	if child.SpanCount() != childSpans || len(child.Procs[0].Tracks) != 1 {
		t.Fatalf("reply-path truncation corrupted the retained child: %d spans in %d tracks, want %d in 1",
			child.SpanCount(), len(child.Procs[0].Tracks), childSpans)
	}
	second := rt.wire()
	if second.SpanCount() != first.SpanCount() || len(second.Procs) != len(first.Procs) {
		t.Fatalf("flight re-export differs from reply merge: %d spans / %d procs vs %d / %d",
			second.SpanCount(), len(second.Procs), first.SpanCount(), len(first.Procs))
	}
}
