package fleet_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"

	"sortlast/internal/client"
	"sortlast/internal/fleet"
	"sortlast/internal/harness"
	"sortlast/internal/render"
	"sortlast/internal/server"
)

// referenceGray renders the request through the one-shot harness path.
func referenceGray(t *testing.T, req server.Request, p int) []byte {
	t.Helper()
	_, img, err := harness.RunWithImage(harness.Config{
		Dataset: req.Dataset, Method: req.Method,
		Width: req.Width, Height: req.Height,
		P:    p,
		RotX: req.RotX, RotY: req.RotY,
		RenderOpts: render.Options{Shaded: req.Shaded},
	})
	if err != nil {
		t.Fatalf("reference run %+v: %v", req, err)
	}
	return img.AppendGray(nil)
}

// waitNoLeaks polls until the goroutine count returns to the baseline.
func waitNoLeaks(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Errorf("goroutines leaked: %d before, %d after\n%s", before, runtime.NumGoroutine(), buf[:n])
}

func twoReplicaConfig(p int) fleet.Config {
	mk := func() *server.Config {
		return &server.Config{P: p, QueueDepth: 64, MaxInFlight: 2, DefaultDeadline: time.Minute}
	}
	return fleet.Config{
		Addr: "127.0.0.1:0", HTTPAddr: "127.0.0.1:0",
		Replicas:        []fleet.ReplicaConfig{{Server: mk()}, {Server: mk()}},
		DefaultDeadline: time.Minute,
	}
}

// TestFleetEndToEnd is the acceptance test of the fleet tier: a gateway
// over two in-process replicas serves 64 requests cycling through 8
// cameras — every frame byte-identical to a one-shot harness run
// (cached replies included), repeat cameras hit the frame cache, the
// per-replica accounting adds up, the observability surface reports the
// traffic, and shutdown leaks no goroutines.
func TestFleetEndToEnd(t *testing.T) {
	before := runtime.NumGoroutine()

	const p = 2
	g, err := fleet.Start(twoReplicaConfig(p))
	if err != nil {
		t.Fatal(err)
	}
	cl := client.New(g.Addr().String())

	// 64 requests over 8 distinct cameras: 8 misses, 56 exact-camera
	// repeats that the frame cache should absorb.
	const requests, cameras = 64, 8
	reqs := make([]server.Request, requests)
	refs := make(map[float64][]byte, cameras)
	for i := range reqs {
		rot := float64((i % cameras) * 10)
		reqs[i] = server.Request{Dataset: "cube", Method: "bsbrc", Width: 48, Height: 48, RotY: rot}
		if _, ok := refs[rot]; !ok {
			refs[rot] = referenceGray(t, reqs[i], p)
		}
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	cached := 0
	errCh := make(chan error, requests)
	sem := make(chan struct{}, 8)
	for i, r := range reqs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, r server.Request) {
			defer wg.Done()
			defer func() { <-sem }()
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			f, err := cl.Render(ctx, r)
			if err != nil {
				errCh <- fmt.Errorf("request %d: %w", i, err)
				return
			}
			if !bytes.Equal(f.Gray, refs[r.RotY]) {
				errCh <- fmt.Errorf("request %d (rotY=%g, cached=%v): image differs from one-shot run", i, r.RotY, f.Stats.Cached)
				return
			}
			mu.Lock()
			if f.Stats.Cached {
				cached++
			}
			mu.Unlock()
		}(i, r)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if t.Failed() {
		t.Fatal("fleet served wrong frames")
	}

	st := g.Stats()
	if st.CacheHits == 0 || cached == 0 {
		t.Errorf("no cache hits across %d requests over %d cameras (stats hits=%d, client-observed=%d)",
			requests, cameras, st.CacheHits, cached)
	}
	if int64(cached) != st.CacheHits {
		t.Errorf("client observed %d cached replies, gateway counted %d hits", cached, st.CacheHits)
	}
	var replicaFrames int64
	for _, r := range st.Replicas {
		replicaFrames += r.Frames
	}
	// Every miss was rendered by exactly one replica (no hedges should
	// fire on a healthy fleet with a cold-start threshold of 500ms).
	if replicaFrames+st.CacheHits < int64(requests) {
		t.Errorf("accounting: %d replica frames + %d cache hits < %d requests", replicaFrames, st.CacheHits, requests)
	}
	if st.Requests != int64(requests) {
		t.Errorf("gateway counted %d requests, want %d", st.Requests, requests)
	}

	// Observability surface.
	httpBase := "http://" + g.HTTPAddr().String()
	hresp, err := http.Get(httpBase + "/healthz")
	if err != nil || hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v status %v", err, hresp)
	}
	hresp.Body.Close()
	mresp, err := http.Get(httpBase + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, substr := range []string{
		`fleet_cache_requests_total{outcome="hit"}`,
		`fleet_cache_requests_total{outcome="miss"}`,
		`fleet_replica_frames_total{replica="0"}`,
		`fleet_replica_frames_total{replica="1"}`,
		`fleet_hedges_total`,
		`fleet_request_latency_seconds_bucket{le="+Inf"}`,
	} {
		if !bytes.Contains(body, []byte(substr)) {
			t.Errorf("metrics missing %q", substr)
		}
	}
	if bytes.Contains(body, []byte(`fleet_cache_requests_total{outcome="hit"} 0`)) {
		t.Error("metrics report zero cache hits after a repeat-camera workload")
	}

	// Dataset invalidation empties the cube entries; the next repeat
	// camera misses and re-renders identically.
	iresp, err := http.Get(httpBase + "/cache/invalidate?dataset=cube")
	if err != nil || iresp.StatusCode != http.StatusOK {
		t.Fatalf("cache invalidate: %v status %v", err, iresp)
	}
	iresp.Body.Close()
	if st := g.Stats(); st.CacheEntries != 0 {
		t.Errorf("cache holds %d entries after dataset invalidation", st.CacheEntries)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	f, err := cl.Render(ctx, reqs[0])
	cancel()
	if err != nil {
		t.Fatalf("render after invalidation: %v", err)
	}
	if f.Stats.Cached {
		t.Error("reply claimed to be cached right after invalidation")
	}
	if !bytes.Equal(f.Gray, refs[reqs[0].RotY]) {
		t.Error("re-rendered frame after invalidation differs from reference")
	}

	cl.Close()
	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	if err := g.Shutdown(sctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
	waitNoLeaks(t, before)
}

// A cached reply must be byte-identical to the fresh render that
// populated it, and must be flagged as cached.
func TestFleetCacheByteIdentity(t *testing.T) {
	before := runtime.NumGoroutine()
	g, err := fleet.Start(twoReplicaConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	cl := client.New(g.Addr().String())
	req := server.Request{Dataset: "cube", Method: "bs", Width: 40, Height: 40, RotY: 77.5}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	fresh, err := cl.Render(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Stats.Cached {
		t.Fatal("first render of a camera claimed a cache hit")
	}
	if fresh.Stats.Replica == 0 {
		t.Error("fresh render did not report its serving replica")
	}
	hit, err := cl.Render(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Stats.Cached {
		t.Fatal("exact repeat camera missed the cache")
	}
	if !bytes.Equal(fresh.Gray, hit.Gray) {
		t.Error("cached reply differs from the fresh render")
	}
	if !bytes.Equal(fresh.Gray, referenceGray(t, req, 2)) {
		t.Error("fresh render differs from the one-shot harness run")
	}

	cl.Close()
	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	if err := g.Shutdown(sctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
	waitNoLeaks(t, before)
}
