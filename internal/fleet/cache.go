package fleet

import (
	"container/list"
	"math"

	"sortlast/internal/server"
)

// The frame cache serves dashboard-style repeat traffic without
// touching a world: requests are keyed by their camera quantized to a
// configurable angular step, and an exact quantized-camera hit returns
// the cached encoded frame bytes. Entries are evicted LRU under a byte
// budget, and a dataset change invalidates per (dataset, method)
// without flushing unrelated entries.

// DefaultQuantDeg is the camera quantization step in degrees. Requests
// whose rotations land in the same step share a cache entry; the step
// is deliberately finer than any dashboard's camera grid, so identical
// repeat requests hit while animated sweeps miss.
const DefaultQuantDeg = 0.25

// cacheKey identifies one quantized camera configuration. Everything
// that changes the rendered bytes is in the key; the request deadline
// is not.
type cacheKey struct {
	dataset string
	method  string
	width   int
	height  int
	shaded  bool
	qx, qy  int
	// quality is the contract of the bytes behind the key — the
	// delivered quality on insert, the requested quality on lookup. An
	// approx lookup may also fall back to the full-quality key (lookup):
	// a higher-fidelity frame always satisfies a lower contract, never
	// the reverse.
	quality string
}

// quantizeDeg maps an angle in degrees onto its quantization bucket.
// Angles are normalized into [0, 360) first, so -0.1 and 359.9 share a
// bucket and full turns alias, and the top bucket wraps onto bucket 0.
func quantizeDeg(deg, step float64) int {
	if step <= 0 {
		step = DefaultQuantDeg
	}
	n := math.Mod(deg, 360)
	if n < 0 {
		n += 360
	}
	buckets := int(math.Round(360 / step))
	if buckets < 1 {
		buckets = 1
	}
	return int(math.Round(n/step)) % buckets
}

// quantKey builds the cache/affinity key for a request. The empty
// method is normalized to the server default so "bsbrc" and "" share an
// entry; "auto" keys as itself (all methods composite byte-identical
// images, so sharing across the selector's choices would also be
// sound — the split is kept so invalidation can be method-scoped).
func quantKey(req server.Request, step float64) cacheKey {
	method := req.Method
	if method == "" {
		method = server.DefaultMethod
	}
	// "" and "full" share a key; an invalid name keys as itself — it
	// can only miss, and the replica answers it with bad_request.
	quality := req.Quality
	if q, err := server.NormalizeQuality(quality); err == nil {
		quality = q
	}
	return cacheKey{
		dataset: req.Dataset,
		method:  method,
		width:   req.Width,
		height:  req.Height,
		shaded:  req.Shaded,
		qx:      quantizeDeg(req.RotX, step),
		qy:      quantizeDeg(req.RotY, step),
		quality: quality,
	}
}

// cacheEntry is one cached frame: the reply dimensions plus the raw
// gray payload exactly as a replica returned it, so a hit is
// byte-identical to the render that populated it.
type cacheEntry struct {
	key           cacheKey
	width, height int
	gray          []byte
	// quality and errorBound echo the delivered contract of the reply
	// that populated the entry, so a hit reports them like a render.
	quality    string
	errorBound float64
}

// entryOverhead approximates the bookkeeping bytes per entry charged
// against the byte budget on top of the pixel payload.
const entryOverhead = 128

func (e *cacheEntry) size() int64 { return int64(len(e.gray)) + entryOverhead }

// frameCache is an LRU byte-budgeted map from quantized camera keys to
// encoded frames. Not safe for concurrent use; the gateway guards it
// with one mutex (hits copy nothing and are O(1), so the critical
// section is tiny next to a render).
type frameCache struct {
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used; values are *cacheEntry
	index    map[cacheKey]*list.Element

	// gen guards put against resurrecting invalidated entries: every
	// invalidation bumps it, a serve snapshots it (generation) before
	// dispatching, and a put whose snapshot is stale is dropped — the
	// render raced an invalidation and may have read the old dataset.
	// Hedge losers reaped after a winner are already never inserted
	// (their replies are never read), so this closes the remaining
	// insert-after-invalidate window.
	gen uint64
}

func newFrameCache(maxBytes int64) *frameCache {
	return &frameCache{
		maxBytes: maxBytes,
		ll:       list.New(),
		index:    make(map[cacheKey]*list.Element),
	}
}

// get returns the cached entry for key, refreshing its recency.
func (c *frameCache) get(key cacheKey) (*cacheEntry, bool) {
	el, ok := c.index[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry), true
}

// lookup resolves the entry serving a request keyed by key: the exact
// quality match, or — for an approx contract — the full-quality entry
// of the same camera. Serving higher fidelity than asked is always
// sound; the keying makes serving lower impossible (a preview or approx
// entry can never answer a full request).
func (c *frameCache) lookup(key cacheKey) (*cacheEntry, bool) {
	if e, ok := c.get(key); ok {
		return e, true
	}
	if key.quality == server.QualityApprox {
		full := key
		full.quality = server.QualityFull
		if e, ok := c.get(full); ok {
			return e, true
		}
	}
	return nil, false
}

// generation returns the invalidation generation to snapshot before a
// dispatch whose result will be offered to put.
func (c *frameCache) generation() uint64 { return c.gen }

// put inserts or replaces the entry for key and evicts LRU entries
// until the byte budget holds again, reporting how many entries were
// evicted. gen must be the generation snapshotted before the render
// that produced e was dispatched: a stale generation means an
// invalidation ran in between and the entry is dropped instead of
// resurrecting stale bytes. Replacing an existing key swaps the value
// in place — the budget is charged the size difference, never twice, so
// a duplicate insert (e.g. a repeated render of the same camera) cannot
// double-charge. An entry larger than the whole budget is not cached.
func (c *frameCache) put(e *cacheEntry, gen uint64) (evicted int) {
	if gen != c.gen || e.size() > c.maxBytes {
		return 0
	}
	if el, ok := c.index[e.key]; ok {
		c.bytes += e.size() - el.Value.(*cacheEntry).size()
		el.Value = e
		c.ll.MoveToFront(el)
	} else {
		c.index[e.key] = c.ll.PushFront(e)
		c.bytes += e.size()
	}
	for c.bytes > c.maxBytes {
		c.removeElement(c.ll.Back())
		evicted++
	}
	return evicted
}

func (c *frameCache) removeElement(el *list.Element) {
	e := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.index, e.key)
	c.bytes -= e.size()
}

// invalidate removes every entry for dataset; a non-empty method
// restricts the sweep to that method's entries. It returns the number
// of entries removed. This is the dataset-change hook: a mutated or
// reloaded dataset must not serve stale frames.
func (c *frameCache) invalidate(dataset, method string) int {
	// Bump the generation before sweeping so any in-flight render
	// dispatched before this point can no longer insert (see put) —
	// regardless of whether its key matched the sweep.
	c.gen++
	removed := 0
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		e := el.Value.(*cacheEntry)
		if e.key.dataset == dataset && (method == "" || e.key.method == method) {
			c.removeElement(el)
			removed++
		}
	}
	return removed
}

func (c *frameCache) entries() int     { return len(c.index) }
func (c *frameCache) sizeBytes() int64 { return c.bytes }
