package fleet

import (
	"fmt"
	"sync"
	"time"

	"sortlast/internal/trace"
)

// reqTrace assembles the gateway's view of one request into a merged
// cross-process trace: the gateway's own serve/cache spans on a request
// track, one track per dispatch attempt (primary, hedge, cross-replica
// retry are overlapping siblings, so each gets its own track — see
// trace.ValidateNesting), and, nested under each attempt, the span tree
// the replica returned in its reply, shifted onto the gateway clock by
// the NTP-style midpoint estimate (trace.MidpointOffset).
//
// A nil *reqTrace means tracing is disabled at the gateway; every
// method no-ops. The struct is mutated from the dispatch goroutines
// (hedge losers land after the winner's reply has been sent), so wire()
// is safe to call at any time and a flight-recorder export made later
// includes attempts that finished late.
type reqTrace struct {
	id trace.ID
	// clientSampled: the caller asked for the span tree in its reply.
	// The gateway samples its replicas regardless (the flight recorder
	// wants full trees), but only echoes the merge upstream on request.
	clientSampled bool
	start         time.Time

	mu       sync.Mutex
	cacheDur time.Duration // cache lookup span (miss path)
	total    time.Duration // set by finish; zero while in flight
	attempts []*attempt
}

// attempt is one replica dispatch.
type attempt struct {
	idx   int    // replica index
	kind  string // "primary", "hedge", "retry"
	start time.Duration
	rtt   time.Duration // zero while in flight
	errC  string        // typed outcome, "" = ok or in flight
	child *trace.Wire   // the replica's returned span tree, may be nil
}

// newReqTrace starts the trace for one gateway request: the caller's
// trace identity is adopted, or — the gateway fronting an untraced
// external caller — a fresh ID is minted. Returns nil when gateway
// tracing is disabled.
func (g *Gateway) newReqTrace(tc *trace.Context, t0 time.Time) *reqTrace {
	if g.cfg.TracingDisabled {
		return nil
	}
	rt := &reqTrace{start: t0}
	if tc != nil {
		rt.id = tc.Trace()
		rt.clientSampled = tc.Sampled
	}
	if rt.id == 0 {
		rt.id = trace.NewID()
	}
	return rt
}

// sampled reports whether the caller wants the merged tree back.
func (rt *reqTrace) wantsReply() bool { return rt != nil && rt.clientSampled }

// traceID returns the request's trace identity, zero when untraced.
func (rt *reqTrace) traceID() trace.ID {
	if rt == nil {
		return 0
	}
	return rt.id
}

// childContext derives the trace context shipped with one dispatch
// attempt: same trace ID, the attempt as parent, sampling forced on so
// the replica returns its span tree for the merge.
func (rt *reqTrace) childContext() *trace.Context {
	if rt == nil {
		return nil
	}
	return &trace.Context{TraceID: rt.id.String(), ParentID: trace.NewID().String(), Sampled: true}
}

// cacheLookup records the cache-probe duration on the request track.
func (rt *reqTrace) cacheLookup(d time.Duration) {
	if rt == nil {
		return
	}
	rt.mu.Lock()
	rt.cacheDur = d
	rt.mu.Unlock()
}

// beginAttempt registers one dispatch attempt and returns its handle.
func (rt *reqTrace) beginAttempt(idx int, kind string) *attempt {
	if rt == nil {
		return nil
	}
	a := &attempt{idx: idx, kind: kind, start: time.Since(rt.start)}
	rt.mu.Lock()
	rt.attempts = append(rt.attempts, a)
	rt.mu.Unlock()
	return a
}

// endAttempt closes an attempt with its outcome. child is the replica's
// returned span tree (nil on failure or an untraced replica); errCode
// is the typed failure ("" on success). Safe after finish — a hedge
// loser reaped seconds later still lands in the retained trace.
func (rt *reqTrace) endAttempt(a *attempt, child *trace.Wire, errCode string) {
	if rt == nil || a == nil {
		return
	}
	rt.mu.Lock()
	a.rtt = time.Since(rt.start) - a.start
	a.child = child
	a.errC = errCode
	rt.mu.Unlock()
}

// finish stamps the request's total gateway wall time.
func (rt *reqTrace) finish(total time.Duration) {
	if rt == nil {
		return
	}
	rt.mu.Lock()
	rt.total = total
	rt.mu.Unlock()
}

// wire builds the merged trace as it stands now. The gateway process
// comes first (request track, then one track per attempt); each
// attempt's replica tree follows as its own process, renamed and
// offset onto the gateway timeline. Span-capped for the reply header.
func (rt *reqTrace) wire() *trace.Wire {
	if rt == nil {
		return nil
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()

	total := rt.total
	if total == 0 {
		total = time.Since(rt.start)
	}
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

	gw := trace.WireProc{Name: "gateway"}
	reqSpans := []trace.WireSpan{{Name: "serve", DurUS: us(total)}}
	if rt.cacheDur > 0 {
		reqSpans = append(reqSpans, trace.WireSpan{Name: "cache lookup", DurUS: us(rt.cacheDur)})
	}
	gw.Tracks = append(gw.Tracks, trace.WireTrack{Name: "request", Spans: reqSpans})

	w := &trace.Wire{TraceID: rt.id.String(), TotalUS: us(total)}
	for i, a := range rt.attempts {
		rtt := a.rtt
		stage := a.errC
		if rtt == 0 { // still in flight at export time
			rtt = time.Since(rt.start) - a.start
			if stage == "" {
				stage = "in-flight"
			}
		} else if stage == "" {
			// Explicit terminal marker: a discarded hedge loser can also
			// finish ok (e.g. a replica's client retried through a world
			// restart), and exports must distinguish that from in-flight.
			stage = "ok"
		}
		gw.Tracks = append(gw.Tracks, trace.WireTrack{
			Name: fmt.Sprintf("attempt %d (%s)", i, a.kind),
			Spans: []trace.WireSpan{{
				Name:    fmt.Sprintf("%s → replica %d", a.kind, a.idx+1),
				Stage:   stage,
				StartUS: us(a.start),
				DurUS:   us(rtt),
			}},
		})
	}
	w.Procs = append(w.Procs, gw)
	for _, a := range rt.attempts {
		if a.child == nil {
			continue
		}
		off := us(trace.MidpointOffset(a.start, a.rtt, a.child.Total()))
		if a.child.Truncated {
			w.Truncated = true
		}
		for _, p := range a.child.Procs {
			// Clone: the retained child tree is merged again on a later
			// flight export (and marshaled concurrently with it), so the
			// built Wire must own the tracks Truncate below rewrites.
			p = p.Clone()
			p.Name = fmt.Sprintf("replica %d: %s", a.idx+1, p.Name)
			p.OffsetUS += off
			w.Procs = append(w.Procs, p)
		}
	}
	w.Truncate(trace.MaxWireSpans)
	return w
}
