package fleet

import (
	"math"
	"sync"
	"time"
)

// Routing: every request is scored against the replica set and sent to
// the cheapest one. The score is the replica's outstanding request
// count (least outstanding work — the classic join-shortest-queue
// heuristic, which tracks real capacity differences between
// heterogeneous replicas better than round-robin), plus a large penalty
// for replicas that recently failed a dispatch or whose world is being
// rebuilt, minus a small camera-affinity bonus so repeat cameras keep
// landing on the replica whose volume, scratch arenas and autotune
// state are warm for them. The bonus decays with a half-life and is
// capped below one outstanding request, so affinity breaks ties but
// never outweighs real load imbalance.

const (
	// affinityBonus is the largest score reduction camera affinity can
	// produce. Strictly below 1 so a one-request load difference always
	// dominates affinity.
	affinityBonus = 0.9

	// suspectPenalty pushes a replica that recently failed a dispatch to
	// the back of the pick order without excluding it: when every other
	// replica is down too, a suspect replica is still tried.
	suspectPenalty = 1e3

	// degradedPenalty pushes a replica whose world is mid-rebuild behind
	// healthy ones (its admission queue would hold the request until the
	// world returns) but ahead of suspects (it is known to be coming
	// back).
	degradedPenalty = 1e2
)

// pickCandidate describes one replica to the pure scorer.
type pickCandidate struct {
	// Outstanding is the replica's in-flight dispatch count.
	Outstanding int
	// Penalty deprioritizes the replica (suspect, degraded) without
	// excluding it.
	Penalty float64
	// Excluded removes the replica from consideration entirely (it was
	// already tried for this request).
	Excluded bool
}

// pickReplica returns the index of the lowest-scoring candidate, or -1
// when every candidate is excluded. affinity (when >= 0) names the
// candidate holding the camera-affinity hint, whose score is reduced by
// affinityBonus·weight with weight clamped to [0, 1]. Ties break to the
// lowest index, deterministically.
func pickReplica(cands []pickCandidate, affinity int, affinityWeight float64) int {
	best := -1
	bestScore := math.Inf(1)
	for i, c := range cands {
		if c.Excluded {
			continue
		}
		score := float64(c.Outstanding) + c.Penalty
		if i == affinity {
			w := affinityWeight
			if w < 0 {
				w = 0
			} else if w > 1 {
				w = 1
			}
			score -= affinityBonus * w
		}
		if score < bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// affinityDecay is the weight of an affinity hint age old: 1 at zero
// age, halving every halfLife. Non-positive half-lives disable decay.
func affinityDecay(age, halfLife time.Duration) float64 {
	if halfLife <= 0 {
		return 1
	}
	if age < 0 {
		age = 0
	}
	return math.Exp2(-float64(age) / float64(halfLife))
}

// maxAffinityEntries bounds the affinity table. The table is a hint,
// not state: when it overflows the whole map is dropped and relearned,
// which costs at most one suboptimal pick per camera.
const maxAffinityEntries = 8192

// router holds the camera-affinity table. Replica outstanding counts
// and penalties live on the replicas themselves; the router only
// remembers which replica last served each quantized camera.
type router struct {
	halfLife time.Duration

	mu  sync.Mutex
	aff map[cacheKey]affEntry
}

type affEntry struct {
	replica int
	at      time.Time
}

func newRouter(halfLife time.Duration) *router {
	return &router{halfLife: halfLife, aff: make(map[cacheKey]affEntry)}
}

// affinity returns the replica that last served key and its decayed
// weight, or (-1, 0) when the camera is unknown.
func (r *router) affinity(key cacheKey, now time.Time) (int, float64) {
	r.mu.Lock()
	e, ok := r.aff[key]
	r.mu.Unlock()
	if !ok {
		return -1, 0
	}
	return e.replica, affinityDecay(now.Sub(e.at), r.halfLife)
}

// remember records that replica served key.
func (r *router) remember(key cacheKey, replica int, now time.Time) {
	r.mu.Lock()
	if len(r.aff) >= maxAffinityEntries {
		r.aff = make(map[cacheKey]affEntry)
	}
	r.aff[key] = affEntry{replica: replica, at: now}
	r.mu.Unlock()
}
