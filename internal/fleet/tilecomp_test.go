package fleet_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	"sortlast/internal/client"
	"sortlast/internal/fleet"
	"sortlast/internal/server"
)

// The fleet tier must route and frame-cache tile-routed requests like
// any other method — including at a non-power-of-two replica world
// size, which only ds/dfb serve natively.
func TestFleetServesTileRoutedNonPow2(t *testing.T) {
	const p = 3
	g, err := fleet.Start(twoReplicaConfig(p))
	if err != nil {
		t.Fatal(err)
	}
	cl := client.New(g.Addr().String())
	defer func() {
		cl.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := g.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	// Two cameras, three requests each: the first per camera misses and
	// is rendered by a replica, repeats are frame-cache hits.
	reqs := []server.Request{
		{Dataset: "cube", Method: "dfb", Width: 48, Height: 48, RotY: 0},
		{Dataset: "cube", Method: "dfb", Width: 48, Height: 48, RotY: 25},
	}
	refs := make([][]byte, len(reqs))
	for i, r := range reqs {
		refs[i] = referenceGray(t, r, p)
	}
	cached := 0
	for round := 0; round < 3; round++ {
		for i, r := range reqs {
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			f, err := cl.Render(ctx, r)
			cancel()
			if err != nil {
				t.Fatalf("round %d req %d: %v", round, i, err)
			}
			if !bytes.Equal(f.Gray, refs[i]) {
				t.Fatalf("round %d req %d (cached=%v): dfb frame differs from one-shot run",
					round, i, f.Stats.Cached)
			}
			if f.Stats.Cached {
				cached++
			} else if f.Stats.Replica == 0 {
				t.Errorf("round %d req %d: fresh frame reports no routing replica", round, i)
			}
		}
	}
	if cached != 4 {
		t.Errorf("frame cache absorbed %d of 4 repeat requests", cached)
	}
	st := g.Stats()
	if st.CacheHits != int64(cached) {
		t.Errorf("gateway counted %d hits, client observed %d", st.CacheHits, cached)
	}
	var frames int64
	for _, r := range st.Replicas {
		frames += r.Frames
	}
	if frames+st.CacheHits != int64(st.Requests) {
		t.Errorf("routing accounting: %d replica frames + %d hits != %d requests",
			frames, st.CacheHits, st.Requests)
	}
}
