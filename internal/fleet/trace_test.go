package fleet_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"sortlast/internal/client"
	"sortlast/internal/faultinject"
	"sortlast/internal/fleet"
	"sortlast/internal/server"
	"sortlast/internal/trace"
)

func gatewayGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, body
}

// TestFleetTracedHedgedRequest is the tracing acceptance test (and the
// CI smoke): a sampled request that gets hedged past a stalled replica
// comes back with ONE merged trace — the gateway's routing spans, both
// dispatch attempts as sibling tracks, and the winning replica's
// rank-level span tree, all under the caller's trace ID. The same
// request is retained by the gateway flight recorder, exports as
// Perfetto JSON, and once the stalled replica's watchdog reaps the
// losing dispatch, a later flight export shows the loser's final
// outcome too.
func TestFleetTracedHedgedRequest(t *testing.T) {
	before := runtime.NumGoroutine()

	const p = 2
	inj := faultinject.New(faultinject.Config{Seed: 7})
	cfg := fleet.Config{
		Addr:     "127.0.0.1:0",
		HTTPAddr: "127.0.0.1:0",
		Replicas: []fleet.ReplicaConfig{
			{Server: &server.Config{P: p, QueueDepth: 16, MaxInFlight: 2, DefaultDeadline: time.Minute,
				FrameTimeout: time.Second, Chaos: inj}},
			{Server: &server.Config{P: p, QueueDepth: 16, MaxInFlight: 2, DefaultDeadline: time.Minute}},
		},
		DefaultDeadline: time.Minute,
	}
	g, err := fleet.Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl := client.New(g.Addr().String())
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Warm replica 0's latency window past the cold-start sample count so
	// the hedge threshold drops to the measured p99.
	for i := 0; i < 24; i++ {
		req := server.Request{Dataset: "cube", Method: "bsbrc", Width: 32, Height: 32, RotY: float64(i) * 3.7}
		if _, err := cl.Render(ctx, req); err != nil {
			t.Fatalf("warmup %d: %v", i, err)
		}
	}

	// Wedge replica 0's world and send one sampled request. The hedge
	// must rescue it; the reply carries the merged trace.
	inj.Stall(1, 30*time.Second)
	tc := trace.NewContext()
	req := server.Request{Dataset: "cube", Method: "bsbrc", Width: 32, Height: 32, RotY: 271.3, Trace: tc}
	f, err := cl.Render(ctx, req)
	if err != nil {
		t.Fatalf("sampled request against stalled replica: %v", err)
	}
	if !f.Stats.Hedged {
		t.Error("winning reply not flagged as hedged")
	}
	if f.Stats.TraceID != tc.TraceID {
		t.Errorf("Stats.TraceID = %q, want %q", f.Stats.TraceID, tc.TraceID)
	}

	w := f.Trace
	if w == nil {
		t.Fatal("sampled request returned no merged trace")
	}
	if w.TraceID != tc.TraceID {
		t.Errorf("merged trace ID = %q, want %q", w.TraceID, tc.TraceID)
	}
	if len(w.Procs) < 2 {
		t.Fatalf("merged trace has %d procs, want gateway + at least one replica", len(w.Procs))
	}
	gw := w.Procs[0]
	if gw.Name != "gateway" {
		t.Fatalf("first proc = %q, want gateway", gw.Name)
	}
	kinds := map[string]int{}
	stages := map[string]string{}
	serve := false
	for _, tr := range gw.Tracks {
		if tr.Name == "request" {
			for _, s := range tr.Spans {
				if s.Name == "serve" {
					serve = true
				}
			}
			continue
		}
		for _, s := range tr.Spans {
			kind, _, _ := strings.Cut(s.Name, " ")
			kinds[kind]++
			stages[s.Name] = s.Stage
		}
	}
	if !serve {
		t.Error("gateway request track has no serve span")
	}
	if kinds["primary"] != 1 || kinds["hedge"] != 1 {
		t.Fatalf("attempt kinds = %v, want one primary and one hedge", kinds)
	}
	// Exactly one attempt won; which kind depends on timing (a
	// slow-but-healthy dispatch can outlast the hedge delay and still
	// beat the hedge), so assert on stages, not kinds: one "ok" winner,
	// the other attempt present in some state.
	oks := 0
	for _, stage := range stages {
		if stage == "ok" {
			oks++
		}
	}
	if oks < 1 {
		t.Fatalf("attempt stages = %v, want a completed winner", stages)
	}

	// The winning replica's tree is nested as its own process, rank
	// tracks included.
	renderSpans := 0
	for _, proc := range w.Procs[1:] {
		if !strings.HasPrefix(proc.Name, "replica ") {
			t.Errorf("nested proc %q not replica-prefixed", proc.Name)
		}
		for _, tr := range proc.Tracks {
			if !strings.HasPrefix(tr.Name, "rank ") {
				continue
			}
			for _, s := range tr.Spans {
				if s.Name == trace.SpanRender {
					renderSpans++
				}
			}
		}
	}
	if renderSpans == 0 {
		t.Error("merged trace has no rank-level render spans from the winning replica")
	}

	// Gateway sidecar: the request is on /debug/flight (kept by the
	// hedged rule), exports as Perfetto JSON spanning both processes, and
	// pprof answers on the gateway mux.
	base := "http://" + g.HTTPAddr().String()
	code, body := gatewayGet(t, base+"/debug/flight")
	if code != http.StatusOK {
		t.Fatalf("flight list: status %d", code)
	}
	var list struct {
		Entries []struct {
			TraceID string `json:"trace_id"`
			Outcome string `json:"outcome"`
			Hedged  bool   `json:"hedged"`
			Reason  string `json:"reason"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatalf("flight list JSON: %v", err)
	}
	found := false
	for _, e := range list.Entries {
		if e.TraceID == tc.TraceID {
			found = true
			if e.Outcome != "ok" || !e.Hedged || e.Reason != "hedged" {
				t.Errorf("flight entry = %+v, want ok/hedged/hedged", e)
			}
		}
	}
	if !found {
		t.Fatalf("flight list missing trace %s: %+v", tc.TraceID, list.Entries)
	}

	exportFile := func() trace.File {
		t.Helper()
		code, body := gatewayGet(t, base+"/debug/flight?trace="+tc.TraceID)
		if code != http.StatusOK {
			t.Fatalf("flight export: status %d", code)
		}
		var file trace.File
		if err := json.Unmarshal(body, &file); err != nil {
			t.Fatalf("flight export JSON: %v", err)
		}
		return file
	}
	file := exportFile()
	if file.TraceID != tc.TraceID {
		t.Errorf("flight export traceId = %q, want %q", file.TraceID, tc.TraceID)
	}
	pids := map[int]bool{}
	for _, ev := range file.TraceEvents {
		if ev.Ph == "X" {
			pids[ev.PID] = true
		}
	}
	if len(pids) < 2 {
		t.Errorf("flight export spans %d processes, want gateway + replica", len(pids))
	}

	// The losing attempt is usually still in flight when the winner
	// replies. Once it resolves — the stalled replica's 1s watchdog fails
	// the world under it, the gateway's dispatch context is cancelled, or
	// the replica's client even retries it to success through the world
	// restart — a fresh flight export (built lazily from the live attempt
	// set) shows its terminal stage. Poll until no attempt is in flight.
	attemptStages := func(file trace.File) map[string]string {
		out := map[string]string{}
		for _, ev := range file.TraceEvents {
			if ev.Ph != "X" {
				continue
			}
			kind, _, _ := strings.Cut(ev.Name, " ")
			if kind != "primary" && kind != "hedge" && kind != "retry" {
				continue
			}
			stage, _ := ev.Args["stage"].(string)
			out[ev.Name] = stage
		}
		return out
	}
	deadline := time.Now().Add(20 * time.Second)
	var last map[string]string
	for time.Now().Before(deadline) {
		last = attemptStages(exportFile())
		inFlight := false
		for _, stage := range last {
			if stage == "in-flight" || stage == "" {
				inFlight = true
			}
		}
		if !inFlight && len(last) >= 2 {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if len(last) < 2 {
		t.Fatalf("flight export retains %d attempt spans, want both: %v", len(last), last)
	}
	for name, stage := range last {
		if stage == "in-flight" || stage == "" {
			t.Errorf("attempt %q never resolved: stage %q", name, stage)
		}
	}

	if code, _ := gatewayGet(t, base+"/debug/pprof/"); code != http.StatusOK {
		t.Errorf("gateway pprof index: status %d, want 200", code)
	}
	// Exemplars ride the OpenMetrics exposition only; a classic scrape
	// must stay clean or a stock Prometheus would fail the whole scrape.
	omReq, err := http.NewRequest(http.MethodGet, base+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	omReq.Header.Set("Accept", "application/openmetrics-text;version=1.0.0,text/plain;version=0.0.4;q=0.5")
	resp, err := http.DefaultClient.Do(omReq)
	if err != nil {
		t.Fatal(err)
	}
	om, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "openmetrics") {
		t.Errorf("OpenMetrics scrape answered Content-Type %q", ct)
	}
	if !strings.Contains(string(om), `trace_id="`+tc.TraceID+`"`) {
		t.Error("gateway OpenMetrics scrape missing the request's exemplar")
	}
	if !strings.HasSuffix(string(om), "# EOF\n") {
		t.Error("gateway OpenMetrics scrape missing # EOF trailer")
	}
	_, metrics := gatewayGet(t, base+"/metrics")
	if strings.Contains(string(metrics), "trace_id") {
		t.Error("gateway classic scrape carries exemplars")
	}
	if !strings.Contains(string(metrics), "fleet_flight_entries ") {
		t.Error("gateway metrics missing fleet_flight_entries gauge")
	}

	cl.Close()
	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	if err := g.Shutdown(sctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
	waitNoLeaks(t, before)
}

// TestFleetTracingDisabled pins the gateway opt-out: sampled requests
// still render but get no span tree, no trace IDs appear in stats, and
// the flight endpoint answers 404.
func TestFleetTracingDisabled(t *testing.T) {
	g, err := fleet.Start(fleet.Config{
		Addr:     "127.0.0.1:0",
		HTTPAddr: "127.0.0.1:0",
		Replicas: []fleet.ReplicaConfig{
			{Server: &server.Config{P: 2, QueueDepth: 8, MaxInFlight: 2, DefaultDeadline: time.Minute}},
		},
		TracingDisabled: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer scancel()
		if err := g.Shutdown(sctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	cl := client.New(g.Addr().String())
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	f, err := cl.Render(ctx, server.Request{Dataset: "cube", Width: 32, Height: 32, Trace: trace.NewContext()})
	if err != nil {
		t.Fatal(err)
	}
	if f.Trace != nil {
		t.Error("tracing-disabled gateway returned a span tree")
	}
	if f.Stats.TraceID != "" {
		t.Errorf("tracing-disabled gateway stamped TraceID %q", f.Stats.TraceID)
	}
	base := "http://" + g.HTTPAddr().String()
	if code, _ := gatewayGet(t, base+"/debug/flight"); code != http.StatusNotFound {
		t.Errorf("flight endpoint with tracing disabled: status %d, want 404", code)
	}
}
