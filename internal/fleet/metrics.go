package fleet

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// histogram is a Prometheus-style cumulative latency histogram (same
// shape as renderd's; kept local because the bucket math is 40 lines
// and the two services version their metrics independently).
type histogram struct {
	buckets []float64 // upper bounds, seconds, ascending; +Inf implicit

	mu        sync.Mutex
	counts    []int64
	sum       float64
	count     int64
	exemplars []exemplar // per bucket (incl. +Inf): last traced observation
}

// exemplar links one histogram bucket to the trace of its most recent
// traced observation (OpenMetrics exemplar). A zero id means none yet.
type exemplar struct {
	id  uint64
	val float64
}

func newHistogram(buckets []float64) *histogram {
	return &histogram{
		buckets:   buckets,
		counts:    make([]int64, len(buckets)+1),
		exemplars: make([]exemplar, len(buckets)+1),
	}
}

func (h *histogram) observe(s float64) { h.observeTraced(s, 0) }

// observeTraced records s and, when traceID is nonzero, pins it as the
// owning bucket's exemplar.
func (h *histogram) observeTraced(s float64, traceID uint64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.buckets, s)
	h.counts[i]++
	h.sum += s
	h.count++
	if traceID != 0 {
		h.exemplars[i] = exemplar{id: traceID, val: s}
	}
	h.mu.Unlock()
}

// exemplarSuffix renders one bucket's exemplar annotation, empty when
// the bucket never saw a traced observation. Appended to the bucket's
// own sample line, and only on OpenMetrics-negotiated scrapes — the
// classic text parser rejects any trailing annotation, so emitting it
// there would fail the entire scrape (see server.NegotiatesOpenMetrics).
func exemplarSuffix(e exemplar) string {
	if e.id == 0 {
		return ""
	}
	return fmt.Sprintf(" # {trace_id=\"%016x\"} %g", e.id, e.val)
}

func (h *histogram) write(w io.Writer, name string, withExemplars bool) {
	h.mu.Lock()
	counts := append([]int64(nil), h.counts...)
	exemplars := append([]exemplar(nil), h.exemplars...)
	sum, count := h.sum, h.count
	h.mu.Unlock()
	suffix := func(e exemplar) string {
		if !withExemplars {
			return ""
		}
		return exemplarSuffix(e)
	}
	cum := int64(0)
	for i, ub := range h.buckets {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d%s\n", name, fmt.Sprintf("%g", ub), cum, suffix(exemplars[i]))
	}
	cum += counts[len(h.buckets)]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d%s\n", name, cum, suffix(exemplars[len(h.buckets)]))
	fmt.Fprintf(w, "%s_sum %g\n", name, sum)
	fmt.Fprintf(w, "%s_count %d\n", name, count)
}

// metrics is the gateway's observability surface: cache effectiveness,
// hedging activity, cross-replica retries, and per-replica traffic
// gauges, exposed in Prometheus text format on the HTTP sidecar.
type metrics struct {
	requests   atomic.Int64 // requests accepted (any outcome)
	errored    atomic.Int64 // requests answered with a typed error
	cacheHits  atomic.Int64
	cacheMiss  atomic.Int64
	cacheEvict atomic.Int64
	hedges     atomic.Int64 // hedged dispatches issued
	hedgeWins  atomic.Int64 // requests won by the hedge, not the primary
	retries    atomic.Int64 // cross-replica retries after a failed dispatch

	latency *histogram

	// flightLen reads the flight recorder's entry count; nil when
	// tracing is disabled.
	flightLen func() int
}

func newFleetMetrics() *metrics {
	return &metrics{
		latency: newHistogram([]float64{.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}),
	}
}

// ReplicaStats is one replica's slice of a Stats snapshot.
type ReplicaStats struct {
	// Addr is the replica's frame-protocol address.
	Addr string `json:"addr"`
	// Frames counts successful dispatches served by this replica.
	Frames int64 `json:"frames"`
	// Errors counts failed dispatches to this replica.
	Errors int64 `json:"errors"`
	// HedgeWins counts requests this replica won as the hedge target.
	HedgeWins int64 `json:"hedge_wins"`
	// Outstanding is the replica's current in-flight dispatch count.
	Outstanding int64 `json:"outstanding"`
	// P99MS is the replica's rolling-window p99 dispatch latency.
	P99MS float64 `json:"p99_ms"`
	// WorldRestarts is the replica's supervisor restart count
	// (in-process replicas only).
	WorldRestarts int64 `json:"world_restarts"`
	// Degraded reports the replica's world is down and rebuilding
	// (in-process replicas only).
	Degraded bool `json:"degraded"`
	// Suspect reports the replica is in its post-failure cooldown.
	Suspect bool `json:"suspect"`
}

// Stats is a point-in-time snapshot of the gateway, for load harnesses
// and tests (the HTTP sidecar exposes the same numbers as /metrics).
type Stats struct {
	Requests       int64          `json:"requests"`
	Errors         int64          `json:"errors"`
	CacheHits      int64          `json:"cache_hits"`
	CacheMisses    int64          `json:"cache_misses"`
	CacheEvictions int64          `json:"cache_evictions"`
	CacheBytes     int64          `json:"cache_bytes"`
	CacheEntries   int            `json:"cache_entries"`
	HedgesIssued   int64          `json:"hedges_issued"`
	HedgeWins      int64          `json:"hedge_wins"`
	Retries        int64          `json:"retries"`
	Replicas       []ReplicaStats `json:"replicas"`
}

// Stats returns a snapshot of the gateway's counters and per-replica
// state.
func (g *Gateway) Stats() Stats {
	s := Stats{
		Requests:       g.met.requests.Load(),
		Errors:         g.met.errored.Load(),
		CacheHits:      g.met.cacheHits.Load(),
		CacheMisses:    g.met.cacheMiss.Load(),
		CacheEvictions: g.met.cacheEvict.Load(),
		HedgesIssued:   g.met.hedges.Load(),
		HedgeWins:      g.met.hedgeWins.Load(),
		Retries:        g.met.retries.Load(),
	}
	if g.cache != nil {
		g.cacheMu.Lock()
		s.CacheBytes = g.cache.sizeBytes()
		s.CacheEntries = g.cache.entries()
		g.cacheMu.Unlock()
	}
	now := time.Now()
	for _, r := range g.replicas {
		p99, _ := r.win.p99()
		s.Replicas = append(s.Replicas, ReplicaStats{
			Addr:          r.addr,
			Frames:        r.frames.Load(),
			Errors:        r.errs.Load(),
			HedgeWins:     r.hedgesWon.Load(),
			Outstanding:   r.outstanding.Load(),
			P99MS:         float64(p99) / 1e6,
			WorldRestarts: r.restarts(),
			Degraded:      r.degraded(),
			Suspect:       r.isSuspect(now),
		})
	}
	return s
}

// writeProm renders the gateway metrics in the classic Prometheus text
// format (exemplars off) or, for a scrape that negotiated OpenMetrics,
// with per-bucket trace-ID exemplars and the mandatory # EOF trailer.
func (g *Gateway) writeProm(w io.Writer, openMetrics bool) {
	s := g.Stats()
	fmt.Fprintf(w, "# HELP fleet_requests_total Requests accepted by the gateway.\n")
	fmt.Fprintf(w, "# TYPE fleet_requests_total counter\n")
	fmt.Fprintf(w, "fleet_requests_total %d\n", s.Requests)
	fmt.Fprintf(w, "# HELP fleet_request_errors_total Requests answered with a typed error.\n")
	fmt.Fprintf(w, "# TYPE fleet_request_errors_total counter\n")
	fmt.Fprintf(w, "fleet_request_errors_total %d\n", s.Errors)
	fmt.Fprintf(w, "# HELP fleet_cache_requests_total Frame cache lookups, by outcome.\n")
	fmt.Fprintf(w, "# TYPE fleet_cache_requests_total counter\n")
	fmt.Fprintf(w, "fleet_cache_requests_total{outcome=\"hit\"} %d\n", s.CacheHits)
	fmt.Fprintf(w, "fleet_cache_requests_total{outcome=\"miss\"} %d\n", s.CacheMisses)
	fmt.Fprintf(w, "# HELP fleet_cache_evictions_total Cache entries evicted under the byte budget.\n")
	fmt.Fprintf(w, "# TYPE fleet_cache_evictions_total counter\n")
	fmt.Fprintf(w, "fleet_cache_evictions_total %d\n", s.CacheEvictions)
	fmt.Fprintf(w, "# HELP fleet_cache_bytes Bytes held by the frame cache.\n")
	fmt.Fprintf(w, "# TYPE fleet_cache_bytes gauge\n")
	fmt.Fprintf(w, "fleet_cache_bytes %d\n", s.CacheBytes)
	fmt.Fprintf(w, "# HELP fleet_cache_entries Entries held by the frame cache.\n")
	fmt.Fprintf(w, "# TYPE fleet_cache_entries gauge\n")
	fmt.Fprintf(w, "fleet_cache_entries %d\n", s.CacheEntries)
	fmt.Fprintf(w, "# HELP fleet_hedges_total Hedged dispatches issued after a request exceeded its replica's rolling p99.\n")
	fmt.Fprintf(w, "# TYPE fleet_hedges_total counter\n")
	fmt.Fprintf(w, "fleet_hedges_total %d\n", s.HedgesIssued)
	fmt.Fprintf(w, "# HELP fleet_hedge_wins_total Requests whose hedge replied before the primary dispatch.\n")
	fmt.Fprintf(w, "# TYPE fleet_hedge_wins_total counter\n")
	fmt.Fprintf(w, "fleet_hedge_wins_total %d\n", s.HedgeWins)
	fmt.Fprintf(w, "# HELP fleet_retries_total Cross-replica retries after a retryable dispatch failure.\n")
	fmt.Fprintf(w, "# TYPE fleet_retries_total counter\n")
	fmt.Fprintf(w, "fleet_retries_total %d\n", s.Retries)

	fmt.Fprintf(w, "# HELP fleet_replica_frames_total Successful dispatches per replica.\n")
	fmt.Fprintf(w, "# TYPE fleet_replica_frames_total counter\n")
	for i, r := range s.Replicas {
		fmt.Fprintf(w, "fleet_replica_frames_total{replica=\"%d\"} %d\n", i, r.Frames)
	}
	fmt.Fprintf(w, "# HELP fleet_replica_errors_total Failed dispatches per replica.\n")
	fmt.Fprintf(w, "# TYPE fleet_replica_errors_total counter\n")
	for i, r := range s.Replicas {
		fmt.Fprintf(w, "fleet_replica_errors_total{replica=\"%d\"} %d\n", i, r.Errors)
	}
	fmt.Fprintf(w, "# HELP fleet_replica_outstanding In-flight dispatches per replica.\n")
	fmt.Fprintf(w, "# TYPE fleet_replica_outstanding gauge\n")
	for i, r := range s.Replicas {
		fmt.Fprintf(w, "fleet_replica_outstanding{replica=\"%d\"} %d\n", i, r.Outstanding)
	}
	fmt.Fprintf(w, "# HELP fleet_replica_p99_seconds Rolling-window p99 dispatch latency per replica (hedge threshold).\n")
	fmt.Fprintf(w, "# TYPE fleet_replica_p99_seconds gauge\n")
	for i, r := range s.Replicas {
		fmt.Fprintf(w, "fleet_replica_p99_seconds{replica=\"%d\"} %g\n", i, r.P99MS/1e3)
	}
	fmt.Fprintf(w, "# HELP fleet_replica_degraded Whether the replica's world is down and rebuilding (in-process replicas).\n")
	fmt.Fprintf(w, "# TYPE fleet_replica_degraded gauge\n")
	for i, r := range s.Replicas {
		fmt.Fprintf(w, "fleet_replica_degraded{replica=\"%d\"} %d\n", i, b2i(r.Degraded))
	}
	fmt.Fprintf(w, "# HELP fleet_replica_world_restarts_total World restarts per in-process replica.\n")
	fmt.Fprintf(w, "# TYPE fleet_replica_world_restarts_total counter\n")
	for i, r := range s.Replicas {
		fmt.Fprintf(w, "fleet_replica_world_restarts_total{replica=\"%d\"} %d\n", i, r.WorldRestarts)
	}

	fmt.Fprintf(w, "# HELP fleet_request_latency_seconds Gateway-side request latency (cache hits included).\n")
	fmt.Fprintf(w, "# TYPE fleet_request_latency_seconds histogram\n")
	g.met.latency.write(w, "fleet_request_latency_seconds", openMetrics)

	if g.met.flightLen != nil {
		fmt.Fprintf(w, "# HELP fleet_flight_entries Requests retained by the flight recorder at /debug/flight.\n")
		fmt.Fprintf(w, "# TYPE fleet_flight_entries gauge\n")
		fmt.Fprintf(w, "fleet_flight_entries %d\n", g.met.flightLen())
	}
	if openMetrics {
		fmt.Fprintf(w, "# EOF\n")
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
