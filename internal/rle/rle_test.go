package rle

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"sortlast/internal/frame"
)

func px(i, a float64) frame.Pixel { return frame.Pixel{I: i, A: a} }

func randSparsePixels(r *rand.Rand, n int, density float64) []frame.Pixel {
	out := make([]frame.Pixel, n)
	for i := range out {
		if r.Float64() < density {
			a := 0.1 + 0.9*r.Float64()
			out[i] = px(r.Float64()*a, a)
		}
	}
	return out
}

func TestEncodeDecodeBasic(t *testing.T) {
	cases := [][]frame.Pixel{
		nil,
		{},
		make([]frame.Pixel, 100),     // all blank
		{px(0.1, 0.2), px(0.3, 0.4)}, // all non-blank
		{{}, px(1, 1), {}, {}, px(0.5, 0.5), px(0.25, 0.5), {}}, // mixed
		{px(1, 1)}, // single non-blank
		{{}},       // single blank
	}
	for i, in := range cases {
		e := Encode(in)
		got := e.Decode()
		if len(got) != len(in) {
			t.Fatalf("case %d: decoded length %d, want %d", i, len(got), len(in))
		}
		for j := range in {
			if got[j] != in[j] {
				t.Fatalf("case %d pixel %d: got %v want %v", i, j, got[j], in[j])
			}
		}
	}
}

func TestEncodeStartsWithBlankCode(t *testing.T) {
	e := Encode([]frame.Pixel{px(1, 1), px(1, 1)})
	if len(e.Codes) < 2 || e.Codes[0] != 0 || e.Codes[1] != 2 {
		t.Errorf("codes = %v, want leading zero blank run then 2", e.Codes)
	}
	e = Encode(make([]frame.Pixel, 5))
	if len(e.Codes) != 1 || e.Codes[0] != 5 {
		// A trailing blank run may be trimmed, but the mandatory leading
		// code remains; either [5] or [] with Total=5 decodes fine — the
		// implementation keeps [5].
		t.Errorf("all-blank codes = %v", e.Codes)
	}
}

func TestEncodeRoundTripProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300, Values: func(vals []reflect.Value, r *rand.Rand) {
		n := r.Intn(2000)
		vals[0] = reflect.ValueOf(randSparsePixels(r, n, r.Float64()))
	}}
	err := quick.Check(func(in []frame.Pixel) bool {
		e := Encode(in)
		out := e.Decode()
		if len(out) != len(in) {
			return false
		}
		for i := range in {
			if out[i] != in[i] {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestEncodeLongRuns(t *testing.T) {
	// Runs longer than 65535 must split correctly in both phases.
	n := 3*maxRun + 17
	in := make([]frame.Pixel, 2*n)
	for i := n; i < 2*n; i++ {
		in[i] = px(0.5, 0.5)
	}
	e := Encode(in)
	out := e.Decode()
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("pixel %d: got %v want %v", i, out[i], in[i])
		}
	}
	if len(e.NonBlank) != n {
		t.Errorf("non-blank count = %d, want %d", len(e.NonBlank), n)
	}
}

func TestWalkOrderAndPositions(t *testing.T) {
	in := []frame.Pixel{{}, px(1, 1), {}, px(0.5, 0.5), px(0.25, 0.25)}
	e := Encode(in)
	var seqs []int
	err := e.Walk(func(seq int, p frame.Pixel) {
		seqs = append(seqs, seq)
		if in[seq] != p {
			t.Errorf("walk pixel at %d = %v, want %v", seq, p, in[seq])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqs, []int{1, 3, 4}) {
		t.Errorf("walk positions = %v", seqs)
	}
}

func TestWalkRejectsCorruptEncodings(t *testing.T) {
	// Runs overrunning Total.
	e := Encoding{Codes: []uint16{10}, Total: 5}
	if err := e.Walk(func(int, frame.Pixel) {}); err == nil {
		t.Error("overrunning blank run must be rejected")
	}
	// Non-blank run without payload.
	e = Encoding{Codes: []uint16{0, 3}, Total: 3}
	if err := e.Walk(func(int, frame.Pixel) {}); err == nil {
		t.Error("missing payload must be rejected")
	}
	// Excess payload.
	e = Encoding{Codes: []uint16{3}, NonBlank: []frame.Pixel{px(1, 1)}, Total: 3}
	if err := e.Walk(func(int, frame.Pixel) {}); err == nil {
		t.Error("uncovered payload must be rejected")
	}
}

func TestPackUnpack(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		in := randSparsePixels(r, r.Intn(500), 0.3)
		e := Encode(in)
		buf := e.Pack(nil)
		buf = append(buf, 0xAA, 0xBB) // trailing bytes must be returned
		got, rest, err := Unpack(buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(rest) != 2 {
			t.Fatalf("rest = %d bytes, want 2", len(rest))
		}
		if got.Total != e.Total || !reflect.DeepEqual(got.Codes, e.Codes) {
			t.Fatalf("unpacked header mismatch")
		}
		out := got.Decode()
		for i := range in {
			if out[i] != in[i] {
				t.Fatalf("trial %d pixel %d mismatch", trial, i)
			}
		}
	}
}

func TestUnpackRejectsTruncation(t *testing.T) {
	e := Encode([]frame.Pixel{{}, px(1, 1), px(1, 0.5)})
	buf := e.Pack(nil)
	for cut := 1; cut < len(buf); cut++ {
		if _, _, err := Unpack(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d bytes not detected", cut)
		}
	}
}

func TestWireBytesMatchesPaperFormula(t *testing.T) {
	in := []frame.Pixel{{}, {}, px(1, 1), px(0.5, 0.5), {}, px(0.1, 0.1)}
	e := Encode(in)
	want := len(e.Codes)*2 + len(e.NonBlank)*16
	if e.WireBytes() != want {
		t.Errorf("WireBytes = %d, want %d", e.WireBytes(), want)
	}
}

func TestWorstCaseAlternation(t *testing.T) {
	// Alternating blank/non-blank: code count equals pixel count — the
	// paper's stated worst case, equivalent to explicit coordinates.
	n := 200
	in := make([]frame.Pixel, n)
	for i := 1; i < n; i += 2 {
		in[i] = px(0.5, 0.5)
	}
	e := Encode(in)
	if len(e.Codes) < n-1 {
		t.Errorf("alternating input produced %d codes; worst case expects ~%d", len(e.Codes), n)
	}
	out := e.Decode()
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("pixel %d mismatch", i)
		}
	}
}
