// Package rle implements the two run-length encodings discussed by the
// paper.
//
// The primary codec (Encode/Decode) is the background/foreground scheme
// of §3.3: a pixel sequence is described by alternating run lengths of
// blank and non-blank pixels, starting with a blank run, each length a
// 2-byte code; the non-blank pixel payload travels separately. This is
// what BSLC and BSBRC ship over the wire.
//
// The secondary codec (EncodeValues/DecodeValues and CompositeRuns) is
// the value-based scheme of Ahrens and Painter used by the binary-tree
// baseline, where runs of identical pixels carry an explicit count. The
// paper argues (§3.3) that for floating-point volume pixels this scheme
// degenerates to one run per pixel; the ablation benchmark measures that
// claim.
package rle

import (
	"fmt"

	"sortlast/internal/frame"
)

// CodeBytes is the wire size of one run-length code, the "2" in the
// paper's Eq. (6) and (8).
const CodeBytes = 2

// maxRun is the longest run expressible in a single 2-byte code.
const maxRun = 0xFFFF

// Encoding is a background/foreground run-length encoding of a pixel
// sequence. Codes hold alternating run lengths, blank run first (possibly
// zero); NonBlank holds the foreground pixels in sequence order. The
// encoded form never materializes blank pixels.
type Encoding struct {
	Codes    []uint16
	NonBlank []frame.Pixel
	Total    int // length of the encoded sequence in pixels
}

// WireBytes returns the number of bytes this encoding occupies on the
// wire: 2 bytes per code plus 16 per non-blank pixel, matching the
// paper's Eq. (6)/(8) terms 2·R_code + 16·A_opaque.
func (e *Encoding) WireBytes() int {
	return len(e.Codes)*CodeBytes + len(e.NonBlank)*frame.PixelBytes
}

// Encode run-length encodes pixels by blank/non-blank state. The first
// code always describes a (possibly empty) blank run so the decoder needs
// no out-of-band phase bit. Runs longer than 65535 are split by inserting
// a zero-length run of the opposite state.
func Encode(pixels []frame.Pixel) Encoding {
	e := Encoding{Total: len(pixels)}
	emit := func(n int) {
		for n > maxRun {
			e.Codes = append(e.Codes, maxRun, 0)
			n -= maxRun
		}
		e.Codes = append(e.Codes, uint16(n))
	}
	i := 0
	blankPhase := true
	for i < len(pixels) {
		j := i
		if blankPhase {
			for j < len(pixels) && pixels[j].Blank() {
				j++
			}
		} else {
			for j < len(pixels) && !pixels[j].Blank() {
				j++
			}
			e.NonBlank = append(e.NonBlank, pixels[i:j]...)
		}
		emit(j - i)
		blankPhase = !blankPhase
		i = j
	}
	// A trailing blank run is implicit: decoders pad with blanks up to
	// Total. Trim it to save codes, but keep the mandatory leading code.
	for len(e.Codes) > 1 && e.Codes[len(e.Codes)-1] == 0 {
		e.Codes = e.Codes[:len(e.Codes)-1]
	}
	if len(e.Codes) > 1 && len(e.Codes)%2 == 1 && e.Codes[len(e.Codes)-1] != 0 {
		// Codes end on a blank run; it is implicit.
		e.Codes = e.Codes[:len(e.Codes)-1]
	}
	return e
}

// Decode reconstructs the dense pixel sequence, blanks included.
func (e *Encoding) Decode() []frame.Pixel {
	out := make([]frame.Pixel, e.Total)
	err := e.Walk(func(seq int, p frame.Pixel) {
		out[seq] = p
	})
	if err != nil {
		panic(err) // Walk over a locally built encoding cannot fail.
	}
	return out
}

// Walk calls fn once per non-blank pixel with its position in the encoded
// sequence, in order, without materializing blanks. It validates the
// encoding and returns an error on inconsistency (truncated payload or
// runs overrunning Total), which a receiver must treat as a corrupt
// message.
func (e *Encoding) Walk(fn func(seq int, p frame.Pixel)) error {
	pos, payload := 0, 0
	blankPhase := true
	for _, c := range e.Codes {
		n := int(c)
		if pos+n > e.Total {
			return fmt.Errorf("rle: runs overrun sequence length %d", e.Total)
		}
		if !blankPhase {
			if payload+n > len(e.NonBlank) {
				return fmt.Errorf("rle: %d non-blank pixels referenced, %d present",
					payload+n, len(e.NonBlank))
			}
			for k := 0; k < n; k++ {
				fn(pos+k, e.NonBlank[payload+k])
			}
			payload += n
		}
		pos += n
		blankPhase = !blankPhase
	}
	if payload != len(e.NonBlank) {
		return fmt.Errorf("rle: %d trailing non-blank pixels not covered by codes",
			len(e.NonBlank)-payload)
	}
	return nil
}

// Pack serializes the encoding: a 4-byte sequence length, a 4-byte code
// count, the codes, then the non-blank pixels. The framing fields are
// bookkeeping of this implementation; WireBytes (what the cost model
// charges) counts only codes and pixels, as the paper does.
func (e *Encoding) Pack(buf []byte) []byte {
	buf = appendU32(buf, uint32(e.Total))
	buf = appendU32(buf, uint32(len(e.Codes)))
	for _, c := range e.Codes {
		buf = append(buf, byte(c), byte(c>>8))
	}
	var px [frame.PixelBytes]byte
	for _, p := range e.NonBlank {
		frame.PutPixel(px[:], p)
		buf = append(buf, px[:]...)
	}
	return buf
}

// Unpack parses an encoding produced by Pack from the front of buf and
// returns the remaining bytes.
func Unpack(buf []byte) (Encoding, []byte, error) {
	var e Encoding
	total, buf, err := readU32(buf)
	if err != nil {
		return e, nil, err
	}
	nc, buf, err := readU32(buf)
	if err != nil {
		return e, nil, err
	}
	if len(buf) < int(nc)*CodeBytes {
		return e, nil, fmt.Errorf("rle: truncated codes: want %d, have %d bytes", nc, len(buf))
	}
	e.Total = int(total)
	e.Codes = make([]uint16, nc)
	for i := range e.Codes {
		e.Codes[i] = uint16(buf[2*i]) | uint16(buf[2*i+1])<<8
	}
	buf = buf[int(nc)*CodeBytes:]
	// Validate that the runs fit the declared sequence length, and count
	// non-blank pixels from the codes (every odd-indexed code).
	nb, covered := 0, 0
	for i, c := range e.Codes {
		covered += int(c)
		if i%2 == 1 {
			nb += int(c)
		}
	}
	if covered > e.Total {
		return e, nil, fmt.Errorf("rle: runs cover %d pixels, sequence declares %d",
			covered, e.Total)
	}
	if len(buf) < nb*frame.PixelBytes {
		return e, nil, fmt.Errorf("rle: truncated payload: want %d pixels, have %d bytes",
			nb, len(buf))
	}
	e.NonBlank = frame.UnpackPixels(buf, nb)
	return e, buf[nb*frame.PixelBytes:], nil
}

func appendU32(buf []byte, v uint32) []byte {
	return append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func readU32(buf []byte) (uint32, []byte, error) {
	if len(buf) < 4 {
		return 0, nil, fmt.Errorf("rle: truncated header")
	}
	v := uint32(buf[0]) | uint32(buf[1])<<8 | uint32(buf[2])<<16 | uint32(buf[3])<<24
	return v, buf[4:], nil
}
