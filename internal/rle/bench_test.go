package rle

import (
	"math/rand"
	"testing"

	"sortlast/internal/frame"
)

func benchPixels(density float64, n int) []frame.Pixel {
	r := rand.New(rand.NewSource(2))
	out := make([]frame.Pixel, n)
	for i := range out {
		if r.Float64() < density {
			a := 0.2 + 0.8*r.Float64()
			out[i] = frame.Pixel{I: a * r.Float64(), A: a}
		}
	}
	return out
}

func BenchmarkEncode(b *testing.B) {
	for _, tc := range []struct {
		name    string
		density float64
	}{{"sparse1pct", 0.01}, {"mid30pct", 0.3}, {"dense90pct", 0.9}} {
		b.Run(tc.name, func(b *testing.B) {
			pixels := benchPixels(tc.density, 384*192)
			b.SetBytes(int64(len(pixels) * frame.PixelBytes))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Encode(pixels)
			}
		})
	}
}

func BenchmarkWalk(b *testing.B) {
	pixels := benchPixels(0.3, 384*192)
	e := Encode(pixels)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		_ = e.Walk(func(int, frame.Pixel) { n++ })
	}
}

func BenchmarkEncodeValues(b *testing.B) {
	pixels := benchPixels(0.3, 384*192)
	b.SetBytes(int64(len(pixels) * frame.PixelBytes))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EncodeValues(pixels)
	}
}

func BenchmarkCompositeRuns(b *testing.B) {
	front := EncodeValues(benchPixels(0.2, 384*192))
	back := EncodeValues(benchPixels(0.2, 384*192))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CompositeRuns(front, back); err != nil {
			b.Fatal(err)
		}
	}
}
