package rle

import "sortlast/internal/frame"

// Builder constructs a background/foreground Encoding incrementally,
// letting callers emit known-blank stretches arithmetically (without
// touching pixel memory) and scan only the stretches that might contain
// foreground. This is what lets a bounding-rectangle-aware encoder skip
// the blank space outside the rectangle at zero per-pixel cost.
type Builder struct {
	e        Encoding
	blankRun int
	fgRun    int
	scanned  int // pixels examined by Pixels (the T_encode quantity)
}

// Blank appends n known-blank pixels without scanning anything.
func (b *Builder) Blank(n int) {
	if n <= 0 {
		return
	}
	if b.fgRun > 0 {
		b.flushFg()
	}
	b.blankRun += n
	b.e.Total += n
}

// Pixels scans a pixel slice, classifying each as blank or foreground.
func (b *Builder) Pixels(px []frame.Pixel) {
	b.scanned += len(px)
	for _, p := range px {
		if p.Blank() {
			if b.fgRun > 0 {
				b.flushFg()
			}
			b.blankRun++
		} else {
			if b.blankRun > 0 || len(b.e.Codes) == 0 {
				b.flushBlank()
			}
			b.e.NonBlank = append(b.e.NonBlank, p)
			b.fgRun++
		}
		b.e.Total++
	}
}

// Scanned returns how many pixels Pixels examined.
func (b *Builder) Scanned() int { return b.scanned }

// Reset returns the builder to its initial state while keeping the
// accumulated Codes/NonBlank capacity, so a long-lived builder encodes
// without per-message allocation. Any Encoding previously returned by
// Done aliases that storage and must be fully consumed (packed) first.
func (b *Builder) Reset() {
	b.e.Codes = b.e.Codes[:0]
	b.e.NonBlank = b.e.NonBlank[:0]
	b.e.Total = 0
	b.blankRun = 0
	b.fgRun = 0
	b.scanned = 0
}

// Done finalizes and returns the encoding. The builder must not be
// reused afterwards except via Reset.
func (b *Builder) Done() Encoding {
	if b.fgRun > 0 {
		b.flushFg()
	}
	// A trailing blank run is implicit (decoders pad to Total), except
	// that an entirely empty encoding still needs its leading code.
	if len(b.e.Codes) == 0 {
		b.emit(b.blankRun)
		b.blankRun = 0
	}
	return b.e
}

// flushBlank emits the pending blank run (possibly zero-length, as the
// mandatory leading code or as a separator between foreground runs).
func (b *Builder) flushBlank() {
	b.emit(b.blankRun)
	b.blankRun = 0
}

func (b *Builder) flushFg() {
	if b.blankRun > 0 {
		// Should not happen: blanks are flushed before foreground grows.
		panic("rle: interleaved run state")
	}
	b.emit(b.fgRun)
	b.fgRun = 0
}

// emit appends a run length, splitting values beyond the 2-byte range
// with zero-length runs of the opposite phase.
func (b *Builder) emit(n int) {
	for n > maxRun {
		b.e.Codes = append(b.e.Codes, maxRun, 0)
		n -= maxRun
	}
	b.e.Codes = append(b.e.Codes, uint16(n))
}
