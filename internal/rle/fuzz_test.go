package rle

import (
	"testing"

	"sortlast/internal/frame"
)

// FuzzUnpack feeds arbitrary bytes to the bg/fg-encoding parser: it must
// never panic, and anything it accepts must be internally consistent
// (walkable without error).
func FuzzUnpack(f *testing.F) {
	e := Encode([]frame.Pixel{{}, {I: 0.5, A: 1}, {}, {I: 0.25, A: 0.5}})
	f.Add(e.Pack(nil))
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0})
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		enc, _, err := Unpack(data)
		if err != nil {
			return
		}
		// Accepted encodings must walk cleanly and in bounds.
		walkErr := enc.Walk(func(seq int, p frame.Pixel) {
			if seq < 0 || seq >= enc.Total {
				t.Fatalf("walk position %d outside [0,%d)", seq, enc.Total)
			}
		})
		if walkErr != nil {
			t.Fatalf("accepted encoding fails to walk: %v", walkErr)
		}
	})
}

// FuzzUnpackRuns does the same for the value-run parser.
func FuzzUnpackRuns(f *testing.F) {
	runs := EncodeValues([]frame.Pixel{{}, {}, {I: 1, A: 1}})
	f.Add(PackRuns(runs, nil))
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{9})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, _, err := UnpackRuns(data)
		if err != nil {
			return
		}
		if RunsLen(got) < 0 {
			t.Fatal("negative run length")
		}
		DecodeValues(got) // must not panic
	})
}

// FuzzEncodeRoundTrip checks the encoder against arbitrary blank masks.
func FuzzEncodeRoundTrip(f *testing.F) {
	f.Add([]byte{0, 1, 1, 0, 1})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, mask []byte) {
		px := make([]frame.Pixel, len(mask))
		for i, m := range mask {
			if m%2 == 1 {
				px[i] = frame.Pixel{I: float64(m) / 255, A: 1}
			}
		}
		e := Encode(px)
		dec := e.Decode()
		if len(dec) != len(px) {
			t.Fatalf("decode length %d != %d", len(dec), len(px))
		}
		for i := range px {
			if dec[i] != px[i] {
				t.Fatalf("pixel %d mismatch", i)
			}
		}
	})
}
