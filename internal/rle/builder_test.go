package rle

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"sortlast/internal/frame"
)

// A builder fed an arbitrary segmentation of a sequence (mixing Blank
// stretches for the actually-blank parts and Pixels scans) must produce
// an encoding that decodes to the same sequence as Encode over the whole
// thing.
func TestBuilderMatchesEncode(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300, Values: func(vals []reflect.Value, r *rand.Rand) {
		vals[0] = reflect.ValueOf(randSparsePixels(r, r.Intn(800), r.Float64()))
		vals[1] = reflect.ValueOf(r.Int63())
	}}
	err := quick.Check(func(seq []frame.Pixel, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var b Builder
		i := 0
		for i < len(seq) {
			n := 1 + r.Intn(50)
			if i+n > len(seq) {
				n = len(seq) - i
			}
			chunk := seq[i : i+n]
			allBlank := true
			for _, p := range chunk {
				if !p.Blank() {
					allBlank = false
					break
				}
			}
			if allBlank && r.Intn(2) == 0 {
				b.Blank(n) // arithmetic emission for known-blank parts
			} else {
				b.Pixels(chunk)
			}
			i += n
		}
		got := b.Done()
		dec := got.Decode()
		if len(dec) != len(seq) {
			return false
		}
		for j := range seq {
			if dec[j] != seq[j] {
				return false
			}
		}
		// The builder must also be wire-valid.
		_, _, err := Unpack(got.Pack(nil))
		return err == nil
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestBuilderMatchesEncodeExactly(t *testing.T) {
	// When every pixel goes through Pixels, codes must equal Encode's.
	r := rand.New(rand.NewSource(12))
	for trial := 0; trial < 50; trial++ {
		seq := randSparsePixels(r, r.Intn(400), 0.4)
		var b Builder
		b.Pixels(seq)
		got := b.Done()
		want := Encode(seq)
		if got.Total != want.Total || !reflect.DeepEqual(got.Codes, want.Codes) ||
			!reflect.DeepEqual(got.NonBlank, want.NonBlank) {
			t.Fatalf("trial %d: builder %v/%v, encode %v/%v",
				trial, got.Codes, len(got.NonBlank), want.Codes, len(want.NonBlank))
		}
	}
}

func TestBuilderBlankOnly(t *testing.T) {
	var b Builder
	b.Blank(100)
	e := b.Done()
	if e.Total != 100 || len(e.NonBlank) != 0 {
		t.Fatalf("blank-only encoding: %+v", e)
	}
	dec := e.Decode()
	for _, p := range dec {
		if !p.Blank() {
			t.Fatal("blank-only must decode blank")
		}
	}
}

func TestBuilderEmpty(t *testing.T) {
	var b Builder
	e := b.Done()
	if e.Total != 0 {
		t.Fatalf("empty builder total = %d", e.Total)
	}
	if len(e.Decode()) != 0 {
		t.Fatal("empty decode")
	}
}

func TestBuilderScannedCountsOnlyPixels(t *testing.T) {
	var b Builder
	b.Blank(1000)
	b.Pixels(make([]frame.Pixel, 7))
	b.Blank(5)
	if b.Scanned() != 7 {
		t.Errorf("scanned = %d, want 7", b.Scanned())
	}
}

func TestBuilderLongRuns(t *testing.T) {
	var b Builder
	b.Blank(3*maxRun + 11)
	px := make([]frame.Pixel, maxRun+5)
	for i := range px {
		px[i] = frame.Pixel{I: 0.5, A: 0.5}
	}
	b.Pixels(px)
	e := b.Done()
	dec := e.Decode()
	if len(dec) != 3*maxRun+11+maxRun+5 {
		t.Fatalf("decoded %d pixels", len(dec))
	}
	if !dec[0].Blank() || dec[len(dec)-1].Blank() {
		t.Fatal("run boundaries wrong")
	}
}
