package rle

import (
	"fmt"

	"sortlast/internal/frame"
)

// This file holds the zero-copy side of the background/foreground codec:
// SeqEncoder/EncodeRect build an Encoding straight from image rows (or
// any pixel stream) into caller-owned slices with no intermediate
// []Pixel sequence, and Wire is a validated view over packed bytes that
// walks foreground pixels without allocating Codes or NonBlank slices.
// Both are bit-identical to the allocating Encode/Unpack pair, which
// remains the tested reference.

// SeqEncoder incrementally encodes a pixel sequence with exactly the
// semantics of Encode — the same maximal-run state machine and the same
// trailing-run trimming — so fused callers produce bit-identical codes
// to Encode over the materialized sequence. It differs from Builder,
// whose Done always leaves trailing blank runs implicit; the two match
// their respective seed call sites and are not interchangeable.
// Known-blank stretches are added arithmetically via Blank, at zero
// per-pixel cost.
type SeqEncoder struct {
	e          *Encoding
	run        int
	blankPhase bool
}

// Start attaches the encoder to e, truncating e's slices in place so
// their capacity is reused across messages.
func (se *SeqEncoder) Start(e *Encoding) {
	e.Codes = e.Codes[:0]
	e.NonBlank = e.NonBlank[:0]
	e.Total = 0
	se.e = e
	se.run = 0
	se.blankPhase = true
}

// Blank appends n known-blank pixels without scanning anything.
func (se *SeqEncoder) Blank(n int) {
	if n <= 0 {
		return
	}
	if !se.blankPhase {
		se.emit(se.run)
		se.run = 0
		se.blankPhase = true
	}
	se.run += n
	se.e.Total += n
}

// Pixels scans a pixel slice, classifying each as blank or foreground.
func (se *SeqEncoder) Pixels(px []frame.Pixel) {
	for _, p := range px {
		if p.Blank() {
			if !se.blankPhase {
				se.emit(se.run)
				se.run = 0
				se.blankPhase = true
			}
			se.run++
		} else {
			if se.blankPhase {
				se.emit(se.run)
				se.run = 0
				se.blankPhase = false
			}
			se.e.NonBlank = append(se.e.NonBlank, p)
			se.run++
		}
	}
	se.e.Total += len(px)
}

// Finish completes the encoding attached by Start, applying Encode's
// trailing-run trimming rules.
func (se *SeqEncoder) Finish() {
	e := se.e
	if e.Total == 0 {
		return // Encode of an empty sequence emits no codes at all.
	}
	se.emit(se.run)
	se.run = 0
	for len(e.Codes) > 1 && e.Codes[len(e.Codes)-1] == 0 {
		e.Codes = e.Codes[:len(e.Codes)-1]
	}
	if len(e.Codes) > 1 && len(e.Codes)%2 == 1 && e.Codes[len(e.Codes)-1] != 0 {
		e.Codes = e.Codes[:len(e.Codes)-1]
	}
}

// emit appends a run length, splitting values beyond the 2-byte range
// with zero-length runs of the opposite phase, exactly as Encode does.
func (se *SeqEncoder) emit(n int) {
	for n > maxRun {
		se.e.Codes = append(se.e.Codes, maxRun, 0)
		n -= maxRun
	}
	se.e.Codes = append(se.e.Codes, uint16(n))
}

// EncodeRect encodes the pixels of region (clipped to the image's full
// frame) row-major into e, reusing e's Codes and NonBlank storage. It
// produces exactly the same encoding as Encode(img.PackRegion(region))
// while deriving blank flanks outside the image bounds arithmetically
// instead of scanning materialized blank pixels.
func EncodeRect(img *frame.Image, region frame.Rect, e *Encoding) {
	region = region.Intersect(img.Full())
	var se SeqEncoder
	se.Start(e)
	bounds := img.Bounds()
	w := region.Dx()
	for y := region.Y0; y < region.Y1; y++ {
		row := img.Row(y, region.X0, region.X1)
		if row == nil {
			se.Blank(w)
			continue
		}
		left := 0
		if bounds.X0 > region.X0 {
			left = bounds.X0 - region.X0
		}
		se.Blank(left)
		se.Pixels(row)
		se.Blank(w - left - len(row))
	}
	se.Finish()
}

// Wire is a validated zero-copy view over a Pack-serialized encoding:
// it keeps the raw code and pixel bytes of the message buffer instead of
// decoding them into slices. A Wire is only valid while the underlying
// buffer is; receivers walk it before reusing their scratch.
type Wire struct {
	total int
	codes []byte // NumCodes 2-byte little-endian run lengths
	px    []byte // NumNonBlank packed pixels
}

// ParseWire parses a Pack-serialized encoding from the front of buf,
// validating it exactly as Unpack does, and returns the view plus the
// remaining bytes. No pixel or code data is copied.
func ParseWire(buf []byte) (Wire, []byte, error) {
	var w Wire
	total, buf, err := readU32(buf)
	if err != nil {
		return w, nil, err
	}
	nc, buf, err := readU32(buf)
	if err != nil {
		return w, nil, err
	}
	if len(buf) < int(nc)*CodeBytes {
		return w, nil, fmt.Errorf("rle: truncated codes: want %d, have %d bytes", nc, len(buf))
	}
	w.total = int(total)
	w.codes = buf[:int(nc)*CodeBytes]
	buf = buf[int(nc)*CodeBytes:]
	nb, covered := 0, 0
	for i := 0; i < int(nc); i++ {
		c := w.code(i)
		covered += c
		if i%2 == 1 {
			nb += c
		}
	}
	if covered > w.total {
		return w, nil, fmt.Errorf("rle: runs cover %d pixels, sequence declares %d",
			covered, w.total)
	}
	if len(buf) < nb*frame.PixelBytes {
		return w, nil, fmt.Errorf("rle: truncated payload: want %d pixels, have %d bytes",
			nb, len(buf))
	}
	w.px = buf[:nb*frame.PixelBytes]
	return w, buf[nb*frame.PixelBytes:], nil
}

// Total returns the length of the encoded sequence in pixels.
func (w Wire) Total() int { return w.total }

// NumCodes returns the number of run-length codes in the message.
func (w Wire) NumCodes() int { return len(w.codes) / CodeBytes }

// NumNonBlank returns the number of foreground pixels in the message.
func (w Wire) NumNonBlank() int { return len(w.px) / frame.PixelBytes }

func (w Wire) code(i int) int {
	return int(w.codes[2*i]) | int(w.codes[2*i+1])<<8
}

// Walk calls fn once per foreground pixel with its position in the
// encoded sequence, in order, decoding pixels on the fly from the wire
// bytes. The view was validated at parse time, so Walk cannot fail.
func (w Wire) Walk(fn func(seq int, p frame.Pixel)) {
	pos, payload := 0, 0
	blankPhase := true
	for i, n := 0, w.NumCodes(); i < n; i++ {
		c := w.code(i)
		if !blankPhase {
			for k := 0; k < c; k++ {
				fn(pos+k, frame.GetPixel(w.px[(payload+k)*frame.PixelBytes:]))
			}
			payload += c
		}
		pos += c
		blankPhase = !blankPhase
	}
}
