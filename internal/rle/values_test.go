package rle

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"sortlast/internal/frame"
)

func TestEncodeValuesRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Values: func(vals []reflect.Value, r *rand.Rand) {
		n := r.Intn(1000)
		pixels := make([]frame.Pixel, n)
		// Quantized values so runs actually form.
		for i := range pixels {
			v := float64(r.Intn(4)) / 4
			pixels[i] = frame.Pixel{I: v * v, A: v}
		}
		vals[0] = reflect.ValueOf(pixels)
	}}
	err := quick.Check(func(in []frame.Pixel) bool {
		runs := EncodeValues(in)
		out := DecodeValues(runs)
		if len(out) != len(in) {
			return false
		}
		for i := range in {
			if out[i] != in[i] {
				return false
			}
		}
		return RunsLen(runs) == len(in)
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestEncodeValuesCoalesces(t *testing.T) {
	in := make([]frame.Pixel, 1000)
	runs := EncodeValues(in)
	if len(runs) != 1 {
		t.Errorf("1000 equal pixels -> %d runs, want 1", len(runs))
	}
	if runs[0].Count != 1000 {
		t.Errorf("run count = %d", runs[0].Count)
	}
}

func TestEncodeValuesDegeneratesOnFloats(t *testing.T) {
	// The paper's §3.3 argument: float-valued volume pixels rarely repeat,
	// so value-RLE yields one run per pixel.
	r := rand.New(rand.NewSource(9))
	in := make([]frame.Pixel, 500)
	for i := range in {
		a := 0.1 + 0.9*r.Float64()
		in[i] = frame.Pixel{I: r.Float64() * a, A: a}
	}
	runs := EncodeValues(in)
	if len(runs) != len(in) {
		t.Errorf("distinct float pixels -> %d runs, want %d", len(runs), len(in))
	}
}

func TestCompositeRunsMatchesDenseOver(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		n := 1 + r.Intn(400)
		front := quantizedPixels(r, n)
		back := quantizedPixels(r, n)
		fr, br := EncodeValues(front), EncodeValues(back)
		got, err := CompositeRuns(fr, br)
		if err != nil {
			t.Fatal(err)
		}
		dense := DecodeValues(got)
		if len(dense) != n {
			t.Fatalf("trial %d: composited length %d, want %d", trial, len(dense), n)
		}
		for i := 0; i < n; i++ {
			want := frame.Over(front[i], back[i])
			if front[i].Blank() {
				want = back[i]
			} else if back[i].Blank() || front[i].Opaque() {
				want = front[i]
			}
			if !dense[i].NearlyEqual(want, 1e-12) {
				t.Fatalf("trial %d pixel %d: got %v want %v", trial, i, dense[i], want)
			}
		}
	}
}

func quantizedPixels(r *rand.Rand, n int) []frame.Pixel {
	out := make([]frame.Pixel, n)
	for i := range out {
		switch r.Intn(4) {
		case 0: // blank
		case 1:
			out[i] = frame.Pixel{I: 0.25, A: 0.5}
		case 2:
			out[i] = frame.Pixel{I: 0.5, A: 1}
		case 3:
			out[i] = frame.Pixel{I: 0.75, A: 0.75}
		}
	}
	return out
}

func TestCompositeRunsLengthMismatch(t *testing.T) {
	a := EncodeValues(make([]frame.Pixel, 5))
	b := EncodeValues(make([]frame.Pixel, 6))
	if _, err := CompositeRuns(a, b); err == nil {
		t.Error("length mismatch must be rejected")
	}
}

func TestCompositeRunsPreservesCompression(t *testing.T) {
	// Blank front over a long constant back run must pass the run through
	// without fragmenting it.
	front := EncodeValues(make([]frame.Pixel, 1000))
	backPixels := make([]frame.Pixel, 1000)
	for i := range backPixels {
		backPixels[i] = frame.Pixel{I: 0.5, A: 1}
	}
	back := EncodeValues(backPixels)
	out, err := CompositeRuns(front, back)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Errorf("composite fragmented into %d runs, want 1", len(out))
	}
}

func TestPackUnpackRuns(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	runs := EncodeValues(quantizedPixels(r, 300))
	buf := PackRuns(runs, nil)
	if len(buf) != 4+len(runs)*RunBytes {
		t.Fatalf("packed %d bytes", len(buf))
	}
	got, rest, err := UnpackRuns(append(buf, 0xFF))
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 1 {
		t.Fatalf("rest = %d", len(rest))
	}
	if !reflect.DeepEqual(got, runs) {
		t.Error("run round trip mismatch")
	}
	if _, _, err := UnpackRuns(buf[:len(buf)-3]); err == nil {
		t.Error("truncated runs must be rejected")
	}
}

func TestRunsWireBytes(t *testing.T) {
	runs := []Run{{Count: 3}, {Value: frame.Pixel{I: 1, A: 1}, Count: 2}}
	if RunsWireBytes(runs) != 2*RunBytes {
		t.Errorf("RunsWireBytes = %d", RunsWireBytes(runs))
	}
}
