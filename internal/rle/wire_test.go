package rle

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"sortlast/internal/frame"
)

// sparseImage builds a deterministic random image with the given logical
// bounds inside a w x h frame; roughly half the bounded pixels are
// non-blank.
func sparseImage(seed int64, w, h int, bounds frame.Rect) *frame.Image {
	im := frame.NewImageBounds(w, h, bounds)
	r := rand.New(rand.NewSource(seed))
	for y := bounds.Y0; y < bounds.Y1; y++ {
		for x := bounds.X0; x < bounds.X1; x++ {
			if r.Intn(2) == 0 {
				im.Set(x, y, px(r.Float64(), r.Float64()))
			}
		}
	}
	return im
}

func rectCases() []struct {
	name   string
	bounds frame.Rect
	region frame.Rect
} {
	return []struct {
		name   string
		bounds frame.Rect
		region frame.Rect
	}{
		{"contained", frame.XYWH(4, 4, 16, 16), frame.XYWH(6, 6, 8, 8)},
		{"exact", frame.XYWH(4, 4, 16, 16), frame.XYWH(4, 4, 16, 16)},
		{"clip-left-top", frame.XYWH(8, 8, 12, 12), frame.XYWH(2, 2, 10, 10)},
		{"clip-right-bottom", frame.XYWH(4, 4, 12, 12), frame.XYWH(10, 10, 14, 14)},
		{"straddles-bounds", frame.XYWH(10, 10, 6, 6), frame.XYWH(0, 0, 32, 32)},
		{"disjoint", frame.XYWH(2, 2, 4, 4), frame.XYWH(20, 20, 8, 8)},
		{"empty-region", frame.XYWH(4, 4, 8, 8), frame.Rect{}},
		{"empty-bounds", frame.Rect{}, frame.XYWH(4, 4, 8, 8)},
		{"outside-full", frame.XYWH(20, 20, 12, 12), frame.XYWH(24, 24, 16, 16)},
	}
}

func TestEncodeRectMatchesEncode(t *testing.T) {
	for _, tc := range rectCases() {
		t.Run(tc.name, func(t *testing.T) {
			im := sparseImage(1, 32, 32, tc.bounds)
			want := Encode(im.PackRegion(tc.region))
			var got Encoding
			EncodeRect(im, tc.region, &got)
			if got.Total != want.Total ||
				!reflect.DeepEqual(append([]uint16{}, got.Codes...), append([]uint16{}, want.Codes...)) ||
				!reflect.DeepEqual(append([]frame.Pixel{}, got.NonBlank...), append([]frame.Pixel{}, want.NonBlank...)) {
				t.Fatalf("EncodeRect = %+v, want %+v", got, want)
			}
		})
	}
}

func TestEncodeRectLongTrailingBlank(t *testing.T) {
	// A single foreground pixel followed by >65535 trailing blanks
	// exercises Encode's trimming residue (a maxRun,0 pair survives the
	// trim); the fused encoder must reproduce it code for code.
	im := frame.NewImage(300, 300)
	im.Set(0, 0, px(0.5, 0.5))
	region := frame.XYWH(0, 0, 300, 300)
	want := Encode(im.PackRegion(region))
	var got Encoding
	EncodeRect(im, region, &got)
	if got.Total != want.Total || !reflect.DeepEqual(got.Codes, want.Codes) {
		t.Fatalf("codes = %v (total %d), want %v (total %d)",
			got.Codes, got.Total, want.Codes, want.Total)
	}
}

// TestSeqEncoderQuick feeds the same random sequence to Encode and to a
// SeqEncoder chopped into arbitrary Blank/Pixels chunks; the encodings
// must be identical regardless of how the stream was sliced.
func TestSeqEncoderQuick(t *testing.T) {
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var seq []frame.Pixel
		var se SeqEncoder
		var e Encoding
		se.Start(&e)
		for chunk, n := 0, r.Intn(8); chunk < n; chunk++ {
			if r.Intn(2) == 0 {
				k := r.Intn(40)
				seq = append(seq, make([]frame.Pixel, k)...)
				se.Blank(k)
			} else {
				pxs := randSparsePixels(r, r.Intn(40), 0.5)
				seq = append(seq, pxs...)
				se.Pixels(pxs)
			}
		}
		se.Finish()
		want := Encode(seq)
		return e.Total == want.Total &&
			reflect.DeepEqual(append([]uint16{}, e.Codes...), append([]uint16{}, want.Codes...)) &&
			reflect.DeepEqual(append([]frame.Pixel{}, e.NonBlank...), append([]frame.Pixel{}, want.NonBlank...))
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSeqEncoderReuse(t *testing.T) {
	// Start must truncate the attached encoding so one Encoding can carry
	// successive messages without leaking codes between them.
	var se SeqEncoder
	var e Encoding
	se.Start(&e)
	se.Pixels(randSparsePixels(rand.New(rand.NewSource(1)), 50, 0.5))
	se.Finish()

	in := randSparsePixels(rand.New(rand.NewSource(2)), 30, 0.3)
	se.Start(&e)
	se.Pixels(in)
	se.Finish()
	want := Encode(in)
	if e.Total != want.Total || !reflect.DeepEqual(e.Codes, want.Codes) {
		t.Fatalf("reused encoding = %+v, want %+v", e, want)
	}
}

func TestParseWireMatchesUnpack(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		in := randSparsePixels(r, r.Intn(200), 0.3)
		e := Encode(in)
		buf := e.Pack(nil)
		buf = append(buf, 0xEE, 0xEE) // trailing bytes both parsers must return

		ue, rest1, err1 := Unpack(buf)
		w, rest2, err2 := ParseWire(buf)
		if err1 != nil || err2 != nil {
			t.Fatalf("trial %d: unpack err %v, parse err %v", trial, err1, err2)
		}
		if len(rest1) != 2 || len(rest2) != 2 {
			t.Fatalf("trial %d: rest %d/%d bytes, want 2", trial, len(rest1), len(rest2))
		}
		if w.Total() != ue.Total || w.NumCodes() != len(ue.Codes) || w.NumNonBlank() != len(ue.NonBlank) {
			t.Fatalf("trial %d: view (%d,%d,%d) vs encoding (%d,%d,%d)", trial,
				w.Total(), w.NumCodes(), w.NumNonBlank(),
				ue.Total, len(ue.Codes), len(ue.NonBlank))
		}
		dec := make([]frame.Pixel, w.Total())
		w.Walk(func(seq int, p frame.Pixel) { dec[seq] = p })
		if !reflect.DeepEqual(dec, ue.Decode()) {
			t.Fatalf("trial %d: Walk decodes differently from Decode", trial)
		}
	}
}

func TestParseWireRejectsCorrupt(t *testing.T) {
	e := Encode([]frame.Pixel{{}, px(1, 1), px(0.5, 0.5), {}, {}})
	good := e.Pack(nil)
	cases := []struct {
		name string
		buf  []byte
	}{
		{"empty", nil},
		{"short-header", good[:6]},
		{"truncated-codes", good[:8+1]},
		{"truncated-payload", good[:len(good)-1]},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := Unpack(tc.buf); err == nil {
				t.Fatal("Unpack accepted corrupt input")
			}
			if _, _, err := ParseWire(tc.buf); err == nil {
				t.Fatal("ParseWire accepted corrupt input")
			}
		})
	}
	// Runs covering more pixels than the declared total.
	bad := append([]byte{}, good...)
	bad[0], bad[1] = 1, 0 // total = 1, runs cover 5
	if _, _, err := ParseWire(bad); err == nil {
		t.Fatal("ParseWire accepted over-covering runs")
	}
	if _, _, err := Unpack(bad); err == nil {
		t.Fatal("Unpack accepted over-covering runs")
	}
}

func TestBuilderReset(t *testing.T) {
	var b Builder
	b.Blank(3)
	b.Pixels(randSparsePixels(rand.New(rand.NewSource(4)), 20, 0.7))
	b.Done()

	b.Reset()
	in := randSparsePixels(rand.New(rand.NewSource(5)), 15, 0.4)
	b.Blank(2)
	b.Pixels(in)
	got := b.Done()

	var fresh Builder
	fresh.Blank(2)
	fresh.Pixels(in)
	want := fresh.Done()
	if got.Total != want.Total ||
		!reflect.DeepEqual(append([]uint16{}, got.Codes...), append([]uint16{}, want.Codes...)) ||
		!reflect.DeepEqual(append([]frame.Pixel{}, got.NonBlank...), append([]frame.Pixel{}, want.NonBlank...)) {
		t.Fatalf("after Reset: %+v, want %+v", got, want)
	}
	if b.Scanned() != fresh.Scanned() {
		t.Fatalf("scanned = %d, want %d", b.Scanned(), fresh.Scanned())
	}
}

func TestEncodeValuesRectMatchesEncodeValues(t *testing.T) {
	for _, tc := range rectCases() {
		t.Run(tc.name, func(t *testing.T) {
			im := sparseImage(6, 32, 32, tc.bounds)
			want := EncodeValues(im.PackRegion(tc.region))
			got := EncodeValuesRect(im, tc.region, nil)
			if !reflect.DeepEqual(append([]Run{}, got...), append([]Run{}, want...)) {
				t.Fatalf("EncodeValuesRect = %v, want %v", got, want)
			}
		})
	}
	// Blank run longer than 65535 pixels must split at the same points.
	im := frame.NewImage(300, 300)
	im.Set(150, 150, px(0.5, 0.5))
	region := frame.XYWH(0, 0, 300, 300)
	want := EncodeValues(im.PackRegion(region))
	got := EncodeValuesRect(im, region, nil)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("long-run split: %d runs, want %d", len(got), len(want))
	}
}
