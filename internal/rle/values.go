package rle

import (
	"fmt"

	"sortlast/internal/frame"
)

// Run is one run of the value-based encoding of Ahrens and Painter: Count
// consecutive pixels all equal to Value. On the wire a run costs a pixel
// plus a 2-byte count.
type Run struct {
	Value frame.Pixel
	Count uint16
}

// RunBytes is the wire size of one value-encoded run.
const RunBytes = frame.PixelBytes + CodeBytes

// EncodeValues run-length encodes pixels by exact value equality. For
// synthetic integer-valued images this compresses well; for
// floating-point volume-rendered pixels adjacent values almost never
// repeat, so the encoding approaches one run per pixel — the degeneration
// the paper's §3.3 points out.
func EncodeValues(pixels []frame.Pixel) []Run {
	var runs []Run
	i := 0
	for i < len(pixels) {
		j := i + 1
		for j < len(pixels) && pixels[j] == pixels[i] && j-i < maxRun {
			j++
		}
		runs = append(runs, Run{Value: pixels[i], Count: uint16(j - i)})
		i = j
	}
	return runs
}

// EncodeValuesRect value-encodes the pixels of region (clipped to the
// image's full frame) row-major into runs, reusing its storage, and
// returns the extended slice. It produces exactly the same run sequence
// as EncodeValues(img.PackRegion(region)): stretches outside the image
// bounds are blank-valued pixels and merge with stored blanks, and runs
// split at the same 65535-pixel boundaries.
func EncodeValuesRect(img *frame.Image, region frame.Rect, runs []Run) []Run {
	region = region.Intersect(img.Full())
	runs = runs[:0]
	var cur Run
	add := func(p frame.Pixel, n int) {
		if n <= 0 {
			return
		}
		if cur.Count > 0 && cur.Value == p {
			take := maxRun - int(cur.Count)
			if take > n {
				take = n
			}
			cur.Count += uint16(take)
			n -= take
		}
		for n > 0 {
			if cur.Count > 0 {
				runs = append(runs, cur)
			}
			c := n
			if c > maxRun {
				c = maxRun
			}
			cur = Run{Value: p, Count: uint16(c)}
			n -= c
		}
	}
	bounds := img.Bounds()
	w := region.Dx()
	for y := region.Y0; y < region.Y1; y++ {
		row := img.Row(y, region.X0, region.X1)
		if row == nil {
			add(frame.Pixel{}, w)
			continue
		}
		left := 0
		if bounds.X0 > region.X0 {
			left = bounds.X0 - region.X0
		}
		add(frame.Pixel{}, left)
		for _, p := range row {
			add(p, 1)
		}
		add(frame.Pixel{}, w-left-len(row))
	}
	if cur.Count > 0 {
		runs = append(runs, cur)
	}
	return runs
}

// DecodeValues expands runs back into a dense pixel sequence.
func DecodeValues(runs []Run) []frame.Pixel {
	n := 0
	for _, r := range runs {
		n += int(r.Count)
	}
	out := make([]frame.Pixel, 0, n)
	for _, r := range runs {
		for k := 0; k < int(r.Count); k++ {
			out = append(out, r.Value)
		}
	}
	return out
}

// RunsLen returns the total pixel count described by runs.
func RunsLen(runs []Run) int {
	n := 0
	for _, r := range runs {
		n += int(r.Count)
	}
	return n
}

// RunsWireBytes returns the wire size of a run sequence.
func RunsWireBytes(runs []Run) int { return len(runs) * RunBytes }

// CompositeRuns composites two value-encoded images of the same length
// without decoding, front over back, following Ahrens and Painter: at
// each step the smaller of the two head counts determines how many pixels
// can be composited at once; blank-over-x and x-over-blank pass runs
// through unchanged, preserving compression. The result is re-coalesced
// where adjacent output runs happen to be equal.
func CompositeRuns(front, back []Run) ([]Run, error) {
	if RunsLen(front) != RunsLen(back) {
		return nil, fmt.Errorf("rle: composite length mismatch: front %d, back %d",
			RunsLen(front), RunsLen(back))
	}
	var out []Run
	emit := func(v frame.Pixel, n int) {
		for n > 0 {
			c := n
			if c > maxRun {
				c = maxRun
			}
			if len(out) > 0 && out[len(out)-1].Value == v &&
				int(out[len(out)-1].Count)+c <= maxRun {
				out[len(out)-1].Count += uint16(c)
			} else {
				out = append(out, Run{Value: v, Count: uint16(c)})
			}
			n -= c
		}
	}
	fi, bi := 0, 0
	fLeft, bLeft := 0, 0
	if len(front) > 0 {
		fLeft = int(front[0].Count)
	}
	if len(back) > 0 {
		bLeft = int(back[0].Count)
	}
	for fi < len(front) && bi < len(back) {
		n := fLeft
		if bLeft < n {
			n = bLeft
		}
		fv, bv := front[fi].Value, back[bi].Value
		switch {
		case fv.Blank():
			emit(bv, n)
		case bv.Blank() || fv.Opaque():
			emit(fv, n)
		default:
			emit(frame.Over(fv, bv), n)
		}
		fLeft -= n
		bLeft -= n
		if fLeft == 0 {
			fi++
			if fi < len(front) {
				fLeft = int(front[fi].Count)
			}
		}
		if bLeft == 0 {
			bi++
			if bi < len(back) {
				bLeft = int(back[bi].Count)
			}
		}
	}
	return out, nil
}

// PackRuns serializes runs: a 4-byte run count then each run as pixel +
// 2-byte count.
func PackRuns(runs []Run, buf []byte) []byte {
	buf = appendU32(buf, uint32(len(runs)))
	var px [frame.PixelBytes]byte
	for _, r := range runs {
		frame.PutPixel(px[:], r.Value)
		buf = append(buf, px[:]...)
		buf = append(buf, byte(r.Count), byte(r.Count>>8))
	}
	return buf
}

// UnpackRuns parses a run sequence produced by PackRuns from the front of
// buf and returns the remaining bytes.
func UnpackRuns(buf []byte) ([]Run, []byte, error) {
	n, buf, err := readU32(buf)
	if err != nil {
		return nil, nil, err
	}
	if len(buf) < int(n)*RunBytes {
		return nil, nil, fmt.Errorf("rle: truncated runs: want %d, have %d bytes",
			n, len(buf))
	}
	runs := make([]Run, n)
	for i := range runs {
		off := i * RunBytes
		runs[i].Value = frame.GetPixel(buf[off:])
		runs[i].Count = uint16(buf[off+frame.PixelBytes]) |
			uint16(buf[off+frame.PixelBytes+1])<<8
	}
	return runs, buf[int(n)*RunBytes:], nil
}
