package core

import (
	"sortlast/internal/frame"
	"sortlast/internal/partition"
)

// CompositeSequentialLayout composites the per-rank subimages on a
// single processor by walking the layout's depth order front-to-back —
// the reference every parallel compositor must match. It is used by the
// validation mode of the harness and by tests; it does not touch the
// input images.
func CompositeSequentialLayout(imgs []*frame.Image, lay partition.Layout,
	viewDir [3]float64) *frame.Image {
	if len(imgs) == 0 {
		return nil
	}
	full := imgs[0].Full()
	out := frame.NewImage(full.Dx(), full.Dy())
	for _, r := range lay.DepthOrder(viewDir) {
		img := imgs[r]
		b := img.Bounds()
		if b.Empty() {
			continue
		}
		// out holds everything nearer the viewer, so the next rank's
		// pixels go behind it.
		out.CompositeImage(img, b, false)
	}
	return out
}

// CompositeSequential is the sequential reference over a power-of-two
// decomposition.
func CompositeSequential(imgs []*frame.Image, dec *partition.Decomposition,
	viewDir [3]float64) *frame.Image {
	return CompositeSequentialLayout(imgs, dec, viewDir)
}

// CompositeSequentialFold is the sequential reference for a fold plan
// (arbitrary rank counts).
func CompositeSequentialFold(imgs []*frame.Image, plan *partition.FoldPlan,
	viewDir [3]float64) *frame.Image {
	return CompositeSequentialLayout(imgs, plan, viewDir)
}
