package core

import (
	"math/rand"
	"testing"

	"sortlast/internal/frame"
	"sortlast/internal/rle"
)

func sparseImage(seed int64, w, h int, density float64) *frame.Image {
	r := rand.New(rand.NewSource(seed))
	im := frame.NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if r.Float64() < density {
				a := 0.2 + 0.8*r.Float64()
				im.Set(x, y, frame.Pixel{I: a * r.Float64(), A: a})
			}
		}
	}
	return im
}

func TestPartialPairRoundTrip(t *testing.T) {
	front := sparseImage(1, 32, 32, 0.2)
	back := sparseImage(2, 32, 32, 0.4)
	buf := packPartialPair(front, back, nil)

	gotF := frame.NewImage(32, 32)
	gotB := frame.NewImage(32, 32)
	if err := unpackPartialPair(buf, gotF, gotB); err != nil {
		t.Fatal(err)
	}
	if d := front.MaxAbsDiff(gotF, front.Full()); d != 0 {
		t.Errorf("front differs by %g", d)
	}
	if d := back.MaxAbsDiff(gotB, back.Full()); d != 0 {
		t.Errorf("back differs by %g", d)
	}
}

func TestPartialPairEmptyImages(t *testing.T) {
	empty := frame.NewImage(16, 16)
	buf := packPartialPair(empty, empty, nil)
	if len(buf) != 2*frame.RectBytes {
		t.Errorf("two empty partials pack to %d bytes, want %d", len(buf), 2*frame.RectBytes)
	}
	gotF := frame.NewImage(16, 16)
	gotB := frame.NewImage(16, 16)
	if err := unpackPartialPair(buf, gotF, gotB); err != nil {
		t.Fatal(err)
	}
	if gotF.CountNonBlank(gotF.Full()) != 0 {
		t.Error("empty partial must stay empty")
	}
}

func TestUnpackPartialPairRejectsCorruption(t *testing.T) {
	front := sparseImage(3, 16, 16, 0.5)
	buf := packPartialPair(front, front, nil)
	for _, cut := range []int{0, 4, frame.RectBytes + 3, len(buf) - 5} {
		f := frame.NewImage(16, 16)
		bk := frame.NewImage(16, 16)
		if err := unpackPartialPair(buf[:cut], f, bk); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// Trailing garbage must be rejected too.
	f := frame.NewImage(16, 16)
	bk := frame.NewImage(16, 16)
	if err := unpackPartialPair(append(append([]byte(nil), buf...), 1, 2, 3), f, bk); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestEncodeImageRunsMatchesDensePack(t *testing.T) {
	im := sparseImage(4, 40, 25, 0.3)
	runs := encodeImageRuns(im)
	want := rle.EncodeValues(im.PackRegion(im.Full()))
	got := rle.DecodeValues(runs)
	wantDense := rle.DecodeValues(want)
	if len(got) != len(wantDense) {
		t.Fatalf("lengths differ: %d vs %d", len(got), len(wantDense))
	}
	for i := range got {
		if got[i] != wantDense[i] {
			t.Fatalf("pixel %d: %v vs %v", i, got[i], wantDense[i])
		}
	}
}

func TestEncodeImageRunsCoalescesBlankRows(t *testing.T) {
	im := frame.NewImage(100, 100)
	im.Set(50, 50, frame.Pixel{I: 1, A: 1})
	runs := encodeImageRuns(im)
	// blank run, the pixel, blank run — exactly 3 runs.
	if len(runs) != 3 {
		t.Errorf("got %d runs, want 3: %v", len(runs), runs)
	}
	if rle.RunsLen(runs) != 100*100 {
		t.Errorf("runs cover %d pixels", rle.RunsLen(runs))
	}
}
