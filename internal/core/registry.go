package core

import "fmt"

// Caps are a compositing method's capability flags. Admission (which
// rank counts a method serves), the autotune selector (which methods the
// model can rank), and the benches all read the same flags, so adding a
// method means one Register call instead of editing parallel lists.
type Caps struct {
	// Paper marks one of the four methods of the paper's evaluation.
	Paper bool
	// Foldable marks a power-of-two binary-swap method that extends to
	// any rank count through the core.Folded pre-stage.
	Foldable bool
	// NativeAnyP marks a method that runs at any rank count without the
	// fold (the tile-routed family).
	NativeAnyP bool
	// ModelBacked marks a method autotune.Predict has a closed form for;
	// these are the "auto" candidates.
	ModelBacked bool
	// WireEncoded marks a method whose messages carry sparse encoded
	// payloads rather than dense pixel blocks.
	WireEncoded bool
}

// ServesAnyP reports whether the method runs at non-power-of-two rank
// counts (natively or through the fold).
func (c Caps) ServesAnyP() bool { return c.NativeAnyP || c.Foldable }

// Spec is one registered compositing method.
type Spec struct {
	Name string
	Make func() Compositor
	Caps Caps
}

var (
	registry []Spec
	regIndex = map[string]int{}
)

// Register adds a method to the registry. It must be called from package
// init (this package registers the built-ins; internal/tilecomp adds the
// tile-routed methods), so lookups never race with registration.
func Register(s Spec) {
	if s.Name == "" || s.Make == nil {
		panic("core: Register needs a name and a constructor")
	}
	if _, dup := regIndex[s.Name]; dup {
		panic(fmt.Sprintf("core: duplicate compositor %q", s.Name))
	}
	regIndex[s.Name] = len(registry)
	registry = append(registry, s)
}

// Lookup returns the named method's spec.
func Lookup(name string) (Spec, bool) {
	i, ok := regIndex[name]
	if !ok {
		return Spec{}, false
	}
	return registry[i], true
}

// Specs returns the registered methods in registration order: the
// paper's four, the baselines, the encoding variants, then any
// subsystem-registered methods.
func Specs() []Spec {
	out := make([]Spec, len(registry))
	copy(out, registry)
	return out
}

// New returns the named compositor; Names lists the recognized names.
func New(name string) (Compositor, error) {
	s, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("core: unknown compositor %q", name)
	}
	return s.Make(), nil
}

// Known reports whether name is a registered compositor, so admission
// layers can validate a method name without constructing the compositor
// or parsing New's error.
func Known(name string) bool {
	_, ok := regIndex[name]
	return ok
}

// Names lists the compositors in registration order.
func Names() []string {
	out := make([]string, len(registry))
	for i, s := range registry {
		out[i] = s.Name
	}
	return out
}

// PaperMethods lists the four methods of the paper's evaluation.
func PaperMethods() []string { return namesWhere(func(c Caps) bool { return c.Paper }) }

// ModelBacked lists the methods the cost model has closed forms for —
// the candidate set of autotune's per-frame argmin.
func ModelBacked() []string { return namesWhere(func(c Caps) bool { return c.ModelBacked }) }

// ServesAnyP reports whether the named method runs at non-power-of-two
// rank counts; false for unknown names.
func ServesAnyP(name string) bool {
	s, ok := Lookup(name)
	return ok && s.Caps.ServesAnyP()
}

// Pow2OnlyMethods lists the registered methods restricted to
// power-of-two rank counts, for admission errors that name them.
func Pow2OnlyMethods() []string { return namesWhere(func(c Caps) bool { return !c.ServesAnyP() }) }

// AnyPMethods lists the registered methods serving any rank count.
func AnyPMethods() []string { return namesWhere(Caps.ServesAnyP) }

func namesWhere(pred func(Caps) bool) []string {
	var out []string
	for _, s := range registry {
		if pred(s.Caps) {
			out = append(out, s.Name)
		}
	}
	return out
}

// The built-in methods, in the order the paper discusses them: the four
// evaluated methods, the related-work baselines, then the related-work
// encodings as binary-swap variants (§2/§3.3 ablations).
func init() {
	for _, s := range []Spec{
		{Name: "bs", Make: func() Compositor { return BS{} },
			Caps: Caps{Paper: true, Foldable: true, ModelBacked: true}},
		{Name: "bsbr", Make: func() Compositor { return BSBR{} },
			Caps: Caps{Paper: true, Foldable: true, ModelBacked: true}},
		{Name: "bslc", Make: func() Compositor { return BSLC{} },
			Caps: Caps{Paper: true, Foldable: true, ModelBacked: true, WireEncoded: true}},
		{Name: "bsbrc", Make: func() Compositor { return BSBRC{} },
			Caps: Caps{Paper: true, Foldable: true, ModelBacked: true, WireEncoded: true}},
		{Name: "direct", Make: func() Compositor { return DirectSend{} }},
		{Name: "pipeline", Make: func() Compositor { return Pipeline{} }},
		{Name: "bintree", Make: func() Compositor { return BinaryTree{} },
			Caps: Caps{WireEncoded: true}},
		{Name: "bsdpf", Make: func() Compositor { return BSDPF{} },
			Caps: Caps{Foldable: true}},
		{Name: "bsvc", Make: func() Compositor { return BSVC{} },
			Caps: Caps{Foldable: true, WireEncoded: true}},
		{Name: "bsbrlc", Make: func() Compositor { return BSBRLC{} },
			Caps: Caps{Foldable: true, ModelBacked: true, WireEncoded: true}},
	} {
		Register(s)
	}
}
