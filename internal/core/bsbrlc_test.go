package core

import (
	"math/rand"
	"reflect"
	"testing"

	"sortlast/internal/frame"
	"sortlast/internal/partition"
	"sortlast/internal/rle"
	"sortlast/internal/stats"
	"sortlast/internal/transfer"
	"sortlast/internal/volume"
)

// encodeIntervalsWithRect must produce exactly the encoding of the dense
// sequence, while scanning only the in-rectangle parts.
func TestEncodeIntervalsWithRectMatchesDense(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 60; trial++ {
		w, h := 24, 20
		img := frame.NewImage(w, h)
		br := frame.XYWH(3+r.Intn(5), 2+r.Intn(5), 1+r.Intn(12), 1+r.Intn(10)).
			Intersect(img.Full())
		// Non-blank pixels only inside the rectangle (the invariant the
		// caller maintains).
		for i := 0; i < 30; i++ {
			x := br.X0 + r.Intn(br.Dx())
			y := br.Y0 + r.Intn(br.Dy())
			img.Set(x, y, frame.Pixel{I: r.Float64(), A: 0.5 + r.Float64()/2})
		}
		var iv []Interval
		pos := 0
		for pos < w*h {
			skip := r.Intn(30)
			n := 1 + r.Intn(60)
			if pos+skip+n > w*h {
				break
			}
			iv = append(iv, Interval{Lo: pos + skip, Hi: pos + skip + n})
			pos += skip + n
		}
		enc, scanned := encodeIntervalsWithRect(img, w, iv, br, new(rle.Builder))
		want := rle.Encode(packIntervals(img, w, iv))
		if enc.Total != want.Total || !reflect.DeepEqual(enc.Codes, want.Codes) ||
			!reflect.DeepEqual(enc.NonBlank, want.NonBlank) {
			t.Fatalf("trial %d: rect-accelerated encoding differs from dense\n got %v\nwant %v",
				trial, enc.Codes, want.Codes)
		}
		if scanned > intervalsLen(iv) {
			t.Fatalf("scanned %d > set size %d", scanned, intervalsLen(iv))
		}
	}
}

// The rectangle must slash the encoder's scan volume on sparse scenes
// while leaving the balanced message sizes of BSLC intact — the design
// goal of the combined method.
func TestBSBRLCScansLessThanBSLC(t *testing.T) {
	sc := makeScene(t, volume.EngineBlock(48, 48, 20), transfer.EngineHigh(), 96, 96, 20, 30)
	const p = 8
	dec, err := partition.Decompose(sc.vol.Bounds(), p)
	if err != nil {
		t.Fatal(err)
	}
	scanOf := func(rs []*stats.Rank) int {
		n := 0
		for _, r := range rs {
			for _, s := range r.Stages {
				n += s.Encoded
			}
		}
		return n
	}
	_, bslc := runComposite(t, sc, BSLC{}, dec, p)
	_, combined := runComposite(t, sc, BSBRLC{}, dec, p)
	if s, c := scanOf(bslc), scanOf(combined); c*4 > s {
		t.Errorf("BSBRLC scans %d px, BSLC %d — expected at least 4x reduction on a sparse scene", c, s)
	}
	mmaxB := stats.MaxMessageBytes(bslc)
	mmaxC := stats.MaxMessageBytes(combined)
	// Same interleave, same pixels: M_max should match up to the 8-byte
	// rectangle header per stage.
	slack := frame.RectBytes * dec.Stages()
	if mmaxC > mmaxB+slack || mmaxB > mmaxC+slack {
		t.Errorf("M_max diverged: BSLC %d, BSBRLC %d", mmaxB, mmaxC)
	}
}
