package core

import (
	"fmt"
	"testing"
	"time"

	"sortlast/internal/frame"
	"sortlast/internal/mp"
	"sortlast/internal/partition"
	"sortlast/internal/render"
	"sortlast/internal/stats"
	"sortlast/internal/transfer"
	"sortlast/internal/volume"
)

func testOpts() mp.Options { return mp.Options{RecvTimeout: 20 * time.Second} }

// scene bundles everything a compositing test needs.
type scene struct {
	vol    *volume.Volume
	tf     *transfer.Func
	cam    *render.Camera
	serial *frame.Image
}

func makeScene(t *testing.T, vol *volume.Volume, tf *transfer.Func, w, h int, rotX, rotY float64) *scene {
	t.Helper()
	cam := render.NewCamera(w, h, vol.Bounds(), rotX, rotY)
	serial := render.Raycast(vol, vol.Bounds(), cam, tf, render.Options{EarlyTermination: -1})
	return &scene{vol: vol, tf: tf, cam: cam, serial: serial}
}

// runComposite renders per-rank subimages and runs the compositor,
// returning the gathered final image and the per-rank stats.
func runComposite(t *testing.T, sc *scene, comp Compositor, dec *partition.Decomposition,
	p int) (*frame.Image, []*stats.Rank) {
	t.Helper()
	ranksStats := make([]*stats.Rank, p)
	var final *frame.Image
	err := mp.Run(p, testOpts(), func(c mp.Comm) error {
		img := render.Raycast(sc.vol, dec.Box(c.Rank()), sc.cam, sc.tf,
			render.Options{EarlyTermination: -1})
		res, err := comp.Composite(c, dec, sc.cam.Dir, img)
		if err != nil {
			return err
		}
		ranksStats[c.Rank()] = res.Stats
		out, err := GatherImage(c, 0, res)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			final = out
		}
		return nil
	})
	if err != nil {
		t.Fatalf("%s P=%d: %v", comp.Name(), p, err)
	}
	if final == nil {
		t.Fatalf("%s P=%d: no final image at root", comp.Name(), p)
	}
	return final, ranksStats
}

// Every compositor must reproduce the serial rendering (the master
// integration property), across datasets, rank counts, and rotations.
func TestAllMethodsMatchSerial(t *testing.T) {
	scenes := map[string]*scene{
		"engine_low":  makeScene(t, volume.EngineBlock(32, 32, 14), transfer.EngineLow(), 48, 48, 0, 0),
		"engine_high": makeScene(t, volume.EngineBlock(32, 32, 14), transfer.EngineHigh(), 48, 48, 25, 40),
		"head":        makeScene(t, volume.HeadPhantom(32, 32, 15), transfer.Head(), 48, 48, 10, -30),
		"cube":        makeScene(t, volume.SolidCube(32, 32, 14), transfer.Cube(), 48, 48, 45, 45),
	}
	for name, sc := range scenes {
		for _, p := range []int{1, 2, 4, 8} {
			dec, err := partition.Decompose(sc.vol.Bounds(), p)
			if err != nil {
				t.Fatal(err)
			}
			for _, methodName := range Names() {
				comp, err := New(methodName)
				if err != nil {
					t.Fatal(err)
				}
				final, _ := runComposite(t, sc, comp, dec, p)
				if d := sc.serial.MaxAbsDiff(final, sc.serial.Full()); d > 1e-9 {
					t.Errorf("%s %s P=%d: final image differs from serial by %g",
						name, methodName, p, d)
				}
			}
		}
	}
}

// The four paper methods are communication optimizations of the same
// compositing tree, so their outputs must be bit-identical, not merely
// close.
func TestPaperMethodsBitIdentical(t *testing.T) {
	sc := makeScene(t, volume.HeadPhantom(32, 32, 15), transfer.Head(), 64, 64, 30, 60)
	const p = 8
	dec, err := partition.Decompose(sc.vol.Bounds(), p)
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := runComposite(t, sc, BS{}, dec, p)
	for _, m := range []Compositor{BSBR{}, BSLC{}, BSBRC{}} {
		got, _ := runComposite(t, sc, m, dec, p)
		for y := 0; y < 64; y++ {
			for x := 0; x < 64; x++ {
				if got.At(x, y) != ref.At(x, y) {
					t.Fatalf("%s differs from BS at (%d,%d): %v vs %v",
						m.Name(), x, y, got.At(x, y), ref.At(x, y))
				}
			}
		}
	}
}

// Eq. 9's robust part: M_max(BS) >= M_max(BSBR) >= M_max(BSBRC) and
// M_max(BS) >= M_max(BSLC), modulo per-message framing bytes (the
// paper's "in general"). These hold on any scene because a bounding
// rectangle never exceeds its half and an encoding never exceeds its
// rectangle.
func TestMaxMessageInequality(t *testing.T) {
	scenes := map[string]*scene{
		"engine_low":  makeScene(t, volume.EngineBlock(48, 48, 20), transfer.EngineLow(), 96, 96, 0, 0),
		"engine_high": makeScene(t, volume.EngineBlock(48, 48, 20), transfer.EngineHigh(), 96, 96, 0, 0),
		"cube":        makeScene(t, volume.SolidCube(48, 48, 20), transfer.Cube(), 96, 96, 20, 30),
	}
	for name, sc := range scenes {
		for _, p := range []int{4, 8, 16} {
			dec, err := partition.Decompose(sc.vol.Bounds(), p)
			if err != nil {
				t.Fatal(err)
			}
			mmax := map[string]int{}
			for _, m := range PaperMethods() {
				comp, _ := New(m)
				_, rs := runComposite(t, sc, comp, dec, p)
				mmax[m] = stats.MaxMessageBytes(rs)
			}
			slack := 64 * dec.Stages() // per-message framing allowance
			if mmax["bs"]+slack < mmax["bsbr"] {
				t.Errorf("%s P=%d: M_max BS %d < BSBR %d", name, p, mmax["bs"], mmax["bsbr"])
			}
			if mmax["bsbr"]+slack < mmax["bsbrc"] {
				t.Errorf("%s P=%d: M_max BSBR %d < BSBRC %d", name, p, mmax["bsbr"], mmax["bsbrc"])
			}
			if mmax["bs"]+slack < mmax["bslc"] {
				t.Errorf("%s P=%d: M_max BS %d < BSLC %d", name, p, mmax["bs"], mmax["bslc"])
			}
		}
	}
}

// Eq. 9's load-balancing part: M_max(BSBRC) >= M_max(BSLC) appears when
// stage split planes lie along the view axis, so paired footprints
// overlap in screen space and the bounding-rectangle methods must ship a
// partner's whole content while BSLC ships an interleaved half. A
// depth-major volume viewed head-on makes stage 1 exactly that case —
// the geometry the paper's 256x256x110 volumes hit at larger P.
func TestMaxMessageBSLCWinsOnOverlap(t *testing.T) {
	vol := volume.EngineBlock(32, 32, 96) // z is the largest extent
	sc := makeScene(t, vol, transfer.EngineLow(), 96, 96, 0, 0)
	for _, p := range []int{2, 4, 8} {
		dec, err := partition.Decompose(sc.vol.Bounds(), p)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Axes[0] != 2 {
			t.Fatalf("test premise broken: level-0 axis = %d, want z", dec.Axes[0])
		}
		mmax := map[string]int{}
		for _, m := range PaperMethods() {
			comp, _ := New(m)
			_, rs := runComposite(t, sc, comp, dec, p)
			mmax[m] = stats.MaxMessageBytes(rs)
		}
		slack := 64 * dec.Stages()
		if mmax["bsbrc"]+slack < mmax["bslc"] {
			t.Errorf("P=%d: M_max BSBRC %d < BSLC %d on overlapping footprints",
				p, mmax["bsbrc"], mmax["bslc"])
		}
		if mmax["bsbr"]+slack < mmax["bslc"] {
			t.Errorf("P=%d: M_max BSBR %d < BSLC %d on overlapping footprints",
				p, mmax["bsbr"], mmax["bslc"])
		}
	}
}

// The non-power-of-two fold must also reproduce the serial image, for
// every inner method and odd rank counts.
func TestFoldedMatchesSerial(t *testing.T) {
	sc := makeScene(t, volume.EngineBlock(32, 32, 16), transfer.EngineLow(), 48, 48, 15, 25)
	for _, p := range []int{2, 3, 5, 6, 7, 11, 12} {
		plan, err := partition.PlanFold(sc.vol.Bounds(), p)
		if err != nil {
			t.Fatal(err)
		}
		for _, inner := range []Compositor{BS{}, BSBR{}, BSLC{}, BSBRC{}} {
			comp := &Folded{Plan: plan, Inner: inner}
			var final *frame.Image
			err := mp.Run(p, testOpts(), func(c mp.Comm) error {
				img := render.Raycast(sc.vol, plan.Box(c.Rank()), sc.cam, sc.tf,
					render.Options{EarlyTermination: -1})
				res, err := comp.Composite(c, plan.Dec, sc.cam.Dir, img)
				if err != nil {
					return err
				}
				out, err := GatherImage(c, 0, res)
				if err != nil {
					return err
				}
				if c.Rank() == 0 {
					final = out
				}
				return nil
			})
			if err != nil {
				t.Fatalf("%s P=%d: %v", comp.Name(), p, err)
			}
			if d := sc.serial.MaxAbsDiff(final, sc.serial.Full()); d > 1e-9 {
				t.Errorf("%s P=%d: differs from serial by %g", comp.Name(), p, d)
			}
		}
	}
}

// BSBR/BSBRC must not ship blank-only messages as pixels: on the cube
// (tiny footprint) most stage messages must be empty rectangles, and the
// empty-rectangle counter must see them.
func TestBoundingRectSkipsEmptyHalves(t *testing.T) {
	sc := makeScene(t, volume.SolidCube(48, 48, 20), transfer.Cube(), 96, 96, 0, 0)
	const p = 16
	dec, err := partition.Decompose(sc.vol.Bounds(), p)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Compositor{BSBR{}, BSBRC{}} {
		_, rs := runComposite(t, sc, m, dec, p)
		empties := 0
		for _, r := range rs {
			empties += r.EmptyRecvRects()
		}
		if empties == 0 {
			t.Errorf("%s: no empty receiving rectangles on the cube at P=%d", m.Name(), p)
		}
		// Empty-rect messages must cost only the header.
		for _, r := range rs {
			for _, s := range r.Stages {
				if s.RecvRectEmpty && s.BytesRecv != frame.RectBytes {
					t.Errorf("%s: empty rect stage received %d bytes, want %d",
						m.Name(), s.BytesRecv, frame.RectBytes)
				}
			}
		}
	}
}

// BSLC's interleaving balances received bytes: the spread of per-rank
// received bytes must be smaller under BSLC than under BSBRC on a scene
// with very uneven non-blank distribution.
func TestBSLCBalancesLoad(t *testing.T) {
	// An off-center object makes block halves very uneven.
	vol := volume.New(48, 48, 24)
	vol.Fill(volume.Box{Lo: [3]int{2, 2, 2}, Hi: [3]int{18, 18, 20}}, 130)
	sc := makeScene(t, vol, transfer.Cube(), 96, 96, 0, 0)
	const p = 8
	dec, err := partition.Decompose(sc.vol.Bounds(), p)
	if err != nil {
		t.Fatal(err)
	}
	spread := func(rs []*stats.Rank) float64 {
		min, max := 1<<62, 0
		for _, r := range rs {
			b := r.BytesReceived()
			if b < min {
				min = b
			}
			if b > max {
				max = b
			}
		}
		if max == 0 {
			return 0
		}
		return float64(max-min) / float64(max)
	}
	_, bslc := runComposite(t, sc, BSLC{}, dec, p)
	_, bsbrc := runComposite(t, sc, BSBRC{}, dec, p)
	if spread(bslc) > spread(bsbrc) {
		t.Errorf("BSLC spread %.3f not tighter than BSBRC %.3f",
			spread(bslc), spread(bsbrc))
	}
}

// Counters must be internally consistent with the message log totals.
func TestStatsMatchMessageLog(t *testing.T) {
	sc := makeScene(t, volume.HeadPhantom(32, 32, 15), transfer.Head(), 48, 48, 0, 0)
	const p = 8
	dec, err := partition.Decompose(sc.vol.Bounds(), p)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range PaperMethods() {
		comp, _ := New(name)
		err := mp.Run(p, testOpts(), func(c mp.Comm) error {
			img := render.Raycast(sc.vol, dec.Box(c.Rank()), sc.cam, sc.tf,
				render.Options{EarlyTermination: -1})
			res, err := comp.Composite(c, dec, sc.cam.Dir, img)
			if err != nil {
				return err
			}
			if got, want := res.Stats.BytesReceived(), c.Log().BytesReceived(""); got != want {
				return fmt.Errorf("%s rank %d: stats recv %d, log %d", name, c.Rank(), got, want)
			}
			if got, want := res.Stats.BytesSent(), c.Log().BytesSent(""); got != want {
				return fmt.Errorf("%s rank %d: stats sent %d, log %d", name, c.Rank(), got, want)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestRegistry(t *testing.T) {
	for _, n := range Names() {
		c, err := New(n)
		if err != nil {
			t.Errorf("New(%q): %v", n, err)
		}
		if c.Name() == "" {
			t.Errorf("%q has empty display name", n)
		}
	}
	if _, err := New("nope"); err == nil {
		t.Error("unknown compositor must error")
	}
	if len(PaperMethods()) != 4 {
		t.Error("the paper evaluates four methods")
	}
}

func TestCheckWorldMismatch(t *testing.T) {
	dec, err := partition.Decompose(volume.Box{Hi: [3]int{16, 16, 16}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	err = mp.Run(2, testOpts(), func(c mp.Comm) error {
		img := frame.NewImage(8, 8)
		_, err := BS{}.Composite(c, dec, [3]float64{0, 0, 1}, img)
		if err == nil {
			return fmt.Errorf("size mismatch must be rejected")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Stage ownership replay: after log P stages the rank regions of the
// swap family tile the full frame exactly.
func TestFinalRegionsTileFrame(t *testing.T) {
	sc := makeScene(t, volume.SolidCube(32, 32, 16), transfer.Cube(), 48, 48, 0, 0)
	const p = 16
	dec, err := partition.Decompose(sc.vol.Bounds(), p)
	if err != nil {
		t.Fatal(err)
	}
	owns := make([]Ownership, p)
	err = mp.Run(p, testOpts(), func(c mp.Comm) error {
		img := render.Raycast(sc.vol, dec.Box(c.Rank()), sc.cam, sc.tf, render.Options{})
		res, err := BSBRC{}.Composite(c, dec, sc.cam.Dir, img)
		if err != nil {
			return err
		}
		owns[c.Rank()] = res.Own
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, o := range owns {
		total += o.Area()
	}
	if total != 48*48 {
		t.Errorf("owned areas sum to %d, want %d", total, 48*48)
	}
	// Pairwise disjoint.
	for i := 0; i < p; i++ {
		ri := owns[i].(RectOwn).R
		for j := i + 1; j < p; j++ {
			if ri.Overlaps(owns[j].(RectOwn).R) {
				t.Errorf("regions %d and %d overlap: %v %v", i, j, ri, owns[j].(RectOwn).R)
			}
		}
	}
}
