package core

import (
	"encoding/binary"
	"fmt"

	"sortlast/internal/frame"
	"sortlast/internal/mp"
)

// Ownership describes which pixels of the full frame a rank holds after
// compositing, and how to move them. Rect ownership comes out of the
// block-split methods (BS, BSBR, BSBRC, direct-send, pipeline, tree);
// interval ownership comes out of BSLC's interleaved split.
type Ownership interface {
	// Area returns the number of owned pixels.
	Area() int
	// Pack collects the owned pixels from img in canonical order.
	Pack(img *frame.Image) []frame.Pixel
	// Unpack stores packed pixels into img in the same order.
	Unpack(img *frame.Image, px []frame.Pixel) error
	// AppendPixels appends the owned pixels' wire bytes in the same
	// canonical order as Pack, without materializing a pixel slice.
	AppendPixels(img *frame.Image, buf []byte) []byte
	// StoreWire writes Area()*frame.PixelBytes wire bytes into img in
	// the same order, the fused equivalent of Unpack(UnpackPixels(...)).
	StoreWire(img *frame.Image, wire []byte) error
	// AppendWire serializes the descriptor (self-describing, for the
	// final gather).
	AppendWire(buf []byte) []byte
	// Validate checks the descriptor against the full frame it claims
	// to describe; the gather rejects descriptors that do not fit
	// before touching pixel storage.
	Validate(full frame.Rect) error
}

const (
	ownKindRect     = 0
	ownKindInterval = 1
	ownKindRectSet  = 2
)

// RectOwn is rectangular ownership.
type RectOwn struct {
	R frame.Rect
}

// Area implements Ownership.
func (o RectOwn) Area() int { return o.R.Area() }

// Pack implements Ownership.
func (o RectOwn) Pack(img *frame.Image) []frame.Pixel { return img.PackRegion(o.R) }

// Unpack implements Ownership.
func (o RectOwn) Unpack(img *frame.Image, px []frame.Pixel) error {
	if len(px) != o.R.Area() {
		return fmt.Errorf("core: %d pixels for rect %v (want %d)", len(px), o.R, o.R.Area())
	}
	img.StoreRegion(o.R, px)
	return nil
}

// AppendPixels implements Ownership.
func (o RectOwn) AppendPixels(img *frame.Image, buf []byte) []byte {
	return frame.EncodeRegion(img, o.R, buf)
}

// StoreWire implements Ownership.
func (o RectOwn) StoreWire(img *frame.Image, wire []byte) error {
	if len(wire) != o.R.Area()*frame.PixelBytes {
		return fmt.Errorf("core: %d wire bytes for rect %v (want %d)",
			len(wire), o.R, o.R.Area()*frame.PixelBytes)
	}
	img.StoreWire(o.R, wire)
	return nil
}

// AppendWire implements Ownership.
func (o RectOwn) AppendWire(buf []byte) []byte {
	buf = append(buf, ownKindRect)
	var rb [frame.RectBytes]byte
	frame.PutRect(rb[:], o.R)
	return append(buf, rb[:]...)
}

// Validate implements Ownership.
func (o RectOwn) Validate(full frame.Rect) error {
	if !full.ContainsRect(o.R) {
		return fmt.Errorf("core: owned rect %v outside frame %v", o.R, full)
	}
	return nil
}

// RectSetOwn is ownership of an ordered list of disjoint non-empty
// rectangles — the tile set a tile-routed compositor owns. An empty list
// is valid: with more ranks than tiles, some ranks own nothing. Pixels
// travel in list order, row-major within each rectangle.
type RectSetOwn struct {
	Rs []frame.Rect
}

// Area implements Ownership.
func (o RectSetOwn) Area() int {
	n := 0
	for _, r := range o.Rs {
		n += r.Area()
	}
	return n
}

// Pack implements Ownership.
func (o RectSetOwn) Pack(img *frame.Image) []frame.Pixel {
	out := make([]frame.Pixel, 0, o.Area())
	for _, r := range o.Rs {
		out = append(out, img.PackRegion(r)...)
	}
	return out
}

// Unpack implements Ownership.
func (o RectSetOwn) Unpack(img *frame.Image, px []frame.Pixel) error {
	if len(px) != o.Area() {
		return fmt.Errorf("core: %d pixels for rect set of %d", len(px), o.Area())
	}
	for _, r := range o.Rs {
		img.StoreRegion(r, px[:r.Area()])
		px = px[r.Area():]
	}
	return nil
}

// AppendPixels implements Ownership.
func (o RectSetOwn) AppendPixels(img *frame.Image, buf []byte) []byte {
	for _, r := range o.Rs {
		buf = frame.EncodeRegion(img, r, buf)
	}
	return buf
}

// StoreWire implements Ownership.
func (o RectSetOwn) StoreWire(img *frame.Image, wire []byte) error {
	if len(wire) != o.Area()*frame.PixelBytes {
		return fmt.Errorf("core: %d wire bytes for rect set of %d pixels",
			len(wire), o.Area())
	}
	for _, r := range o.Rs {
		n := r.Area() * frame.PixelBytes
		img.StoreWire(r, wire[:n])
		wire = wire[n:]
	}
	return nil
}

// AppendWire implements Ownership.
func (o RectSetOwn) AppendWire(buf []byte) []byte {
	buf = append(buf, ownKindRectSet)
	buf = appendU32(buf, uint32(len(o.Rs)))
	for _, r := range o.Rs {
		var rb [frame.RectBytes]byte
		frame.PutRect(rb[:], r)
		buf = append(buf, rb[:]...)
	}
	return buf
}

// Validate implements Ownership.
func (o RectSetOwn) Validate(full frame.Rect) error {
	for _, r := range o.Rs {
		if r.Empty() {
			return fmt.Errorf("core: empty rect %v in rect-set ownership", r)
		}
		if !full.ContainsRect(r) {
			return fmt.Errorf("core: owned rect %v outside frame %v", r, full)
		}
	}
	return nil
}

// Interval is a half-open range of row-major linear pixel indices.
type Interval struct {
	Lo, Hi int
}

// Len returns the interval length.
func (iv Interval) Len() int { return iv.Hi - iv.Lo }

// IntervalOwn is ownership of a set of linear-index intervals over a
// frame of width W.
type IntervalOwn struct {
	W  int
	Iv []Interval
}

// Area implements Ownership.
func (o IntervalOwn) Area() int {
	n := 0
	for _, iv := range o.Iv {
		n += iv.Len()
	}
	return n
}

// Pack implements Ownership.
func (o IntervalOwn) Pack(img *frame.Image) []frame.Pixel {
	out := make([]frame.Pixel, 0, o.Area())
	for _, iv := range o.Iv {
		for i := iv.Lo; i < iv.Hi; i++ {
			out = append(out, img.At(i%o.W, i/o.W))
		}
	}
	return out
}

// Unpack implements Ownership.
func (o IntervalOwn) Unpack(img *frame.Image, px []frame.Pixel) error {
	if len(px) != o.Area() {
		return fmt.Errorf("core: %d pixels for interval set of %d", len(px), o.Area())
	}
	k := 0
	for _, iv := range o.Iv {
		for i := iv.Lo; i < iv.Hi; i++ {
			if !px[k].Blank() {
				img.Set(i%o.W, i/o.W, px[k])
			}
			k++
		}
	}
	return nil
}

// AppendPixels implements Ownership.
func (o IntervalOwn) AppendPixels(img *frame.Image, buf []byte) []byte {
	var px [frame.PixelBytes]byte
	for _, iv := range o.Iv {
		for i := iv.Lo; i < iv.Hi; i++ {
			frame.PutPixel(px[:], img.At(i%o.W, i/o.W))
			buf = append(buf, px[:]...)
		}
	}
	return buf
}

// StoreWire implements Ownership.
func (o IntervalOwn) StoreWire(img *frame.Image, wire []byte) error {
	if len(wire) != o.Area()*frame.PixelBytes {
		return fmt.Errorf("core: %d wire bytes for interval set of %d pixels",
			len(wire), o.Area())
	}
	k := 0
	for _, iv := range o.Iv {
		for i := iv.Lo; i < iv.Hi; i++ {
			if p := frame.GetPixel(wire[k*frame.PixelBytes:]); !p.Blank() {
				img.Set(i%o.W, i/o.W, p)
			}
			k++
		}
	}
	return nil
}

// AppendWire implements Ownership.
func (o IntervalOwn) AppendWire(buf []byte) []byte {
	buf = append(buf, ownKindInterval)
	buf = appendU32(buf, uint32(o.W))
	buf = appendU32(buf, uint32(len(o.Iv)))
	for _, iv := range o.Iv {
		buf = appendU32(buf, uint32(iv.Lo))
		buf = appendU32(buf, uint32(iv.Hi))
	}
	return buf
}

// Validate implements Ownership.
func (o IntervalOwn) Validate(full frame.Rect) error {
	if o.W != full.Dx() {
		return fmt.Errorf("core: interval ownership width %d, frame width %d", o.W, full.Dx())
	}
	limit := full.Area()
	for _, iv := range o.Iv {
		if iv.Lo < 0 || iv.Hi > limit {
			return fmt.Errorf("core: interval %+v outside frame of %d pixels", iv, limit)
		}
	}
	return nil
}

// ParseOwnership decodes an ownership descriptor from the front of buf
// and returns the remaining bytes.
func ParseOwnership(buf []byte) (Ownership, []byte, error) {
	if len(buf) < 1 {
		return nil, nil, fmt.Errorf("core: empty ownership descriptor")
	}
	kind := buf[0]
	buf = buf[1:]
	switch kind {
	case ownKindRect:
		if len(buf) < frame.RectBytes {
			return nil, nil, fmt.Errorf("core: truncated rect ownership")
		}
		return RectOwn{R: frame.GetRect(buf)}, buf[frame.RectBytes:], nil
	case ownKindInterval:
		w, buf, err := readU32(buf)
		if err != nil {
			return nil, nil, err
		}
		n, buf, err := readU32(buf)
		if err != nil {
			return nil, nil, err
		}
		if len(buf) < int(n)*8 {
			return nil, nil, fmt.Errorf("core: truncated interval ownership")
		}
		o := IntervalOwn{W: int(w), Iv: make([]Interval, n)}
		for i := range o.Iv {
			o.Iv[i].Lo = int(binary.LittleEndian.Uint32(buf[i*8:]))
			o.Iv[i].Hi = int(binary.LittleEndian.Uint32(buf[i*8+4:]))
			if o.Iv[i].Hi < o.Iv[i].Lo {
				return nil, nil, fmt.Errorf("core: inverted interval %+v", o.Iv[i])
			}
		}
		return o, buf[int(n)*8:], nil
	case ownKindRectSet:
		n, buf, err := readU32(buf)
		if err != nil {
			return nil, nil, err
		}
		if len(buf) < int(n)*frame.RectBytes {
			return nil, nil, fmt.Errorf("core: truncated rect-set ownership")
		}
		o := RectSetOwn{Rs: make([]frame.Rect, n)}
		for i := range o.Rs {
			o.Rs[i] = frame.GetRect(buf[i*frame.RectBytes:])
		}
		return o, buf[int(n)*frame.RectBytes:], nil
	default:
		return nil, nil, fmt.Errorf("core: unknown ownership kind %d", kind)
	}
}

// GatherImage assembles the distributed final image at root from every
// rank's composited result. Non-root ranks receive nil. The payload is
// self-describing (ownership descriptor + packed pixels), so the root
// needs no knowledge of the compositor that produced the distribution.
func GatherImage(c mp.Comm, root int, res *Result) (*frame.Image, error) {
	payload := res.Own.AppendWire(nil)
	payload = res.Own.AppendPixels(res.Image, payload)
	parts, err := c.Gather(root, payload)
	if err != nil {
		return nil, err
	}
	if c.Rank() != root {
		return nil, nil
	}
	final := frame.NewImage(res.Image.Full().Dx(), res.Image.Full().Dy())
	for r, part := range parts {
		own, rest, err := ParseOwnership(part)
		if err != nil {
			return nil, fmt.Errorf("core: gather from rank %d: %w", r, err)
		}
		if err := own.Validate(res.Image.Full()); err != nil {
			return nil, fmt.Errorf("core: gather from rank %d: %w", r, err)
		}
		if len(rest) != own.Area()*frame.PixelBytes {
			return nil, fmt.Errorf("core: gather from rank %d: %d payload bytes for %d pixels",
				r, len(rest), own.Area())
		}
		if err := own.StoreWire(final, rest); err != nil {
			return nil, fmt.Errorf("core: gather from rank %d: %w", r, err)
		}
	}
	return final, nil
}

func appendU32(buf []byte, v uint32) []byte {
	return append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func readU32(buf []byte) (uint32, []byte, error) {
	if len(buf) < 4 {
		return 0, nil, fmt.Errorf("core: truncated u32")
	}
	return binary.LittleEndian.Uint32(buf), buf[4:], nil
}
