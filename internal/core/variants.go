package core

import (
	"encoding/binary"
	"fmt"

	"sortlast/internal/frame"
	"sortlast/internal/mp"
	"sortlast/internal/partition"
	"sortlast/internal/rle"
	"sortlast/internal/stats"
)

// This file implements the two related-work sparse encodings the paper
// discusses and argues against, as binary-swap variants, so the claims
// are measurable:
//
//   - BSDPF: direct pixel forwarding (Lee, §2) — each non-blank pixel
//     travels with explicit x and y coordinates, 20 bytes per pixel.
//     The paper prefers run-length codes because they carry less
//     position information (§3.3: "run-length encoding is better than
//     explicit x and y coordinates").
//
//   - BSVC: value-coding (Ahrens and Painter, §2) — runs of identical
//     pixels carry a count field. For float-valued volume pixels
//     adjacent values almost never repeat, so the encoding degenerates
//     to one 18-byte run per pixel (§3.3), which is why BSLC/BSBRC
//     encode blank/non-blank state instead.

// BSDPF is binary-swap with direct pixel forwarding.
type BSDPF struct{}

// Name implements Compositor.
func (BSDPF) Name() string { return "BSDPF" }

// dpfPixelBytes is the wire cost of one forwarded pixel: two uint16
// coordinates plus the pixel payload.
const dpfPixelBytes = 4 + frame.PixelBytes

// Composite implements Compositor.
func (BSDPF) Composite(c mp.Comm, dec *partition.Decomposition, viewDir [3]float64,
	img *frame.Image) (*Result, error) {
	if err := checkWorld(c, dec); err != nil {
		return nil, err
	}
	st := &stats.Rank{RankID: c.Rank(), Method: "BSDPF"}
	var timer stats.Timer
	ar := getArena()
	defer putArena(ar)
	region := img.Full()

	for stage := 1; stage <= dec.Stages(); stage++ {
		c.SetStage(stageLabel(stage))
		keep, send := stageHalves(dec, c.Rank(), stage, region)
		partner := dec.Partner(c.Rank(), stage)

		timer.Start()
		payload := packForwarded(img, send, ar.codec.Grab(4+256))
		timer.Stop()

		recv, err := c.Sendrecv(partner, tagSwap, payload)
		if err != nil {
			return nil, fmt.Errorf("bsdpf: stage %d: %w", stage, err)
		}
		ar.codec.Retain(payload)

		timer.Start()
		composited, err := compositeForwarded(img, keep, recv,
			partnerInFront(dec, c.Rank(), stage, viewDir))
		timer.Stop()
		if err != nil {
			return nil, fmt.Errorf("bsdpf: stage %d: %w", stage, err)
		}

		s := st.StageAt(stage)
		s.RecvPixels = keep.Area()
		s.Composited = composited
		s.Encoded = send.Area() // the scan for non-blank pixels
		s.SentPixels = (len(payload) - 4) / dpfPixelBytes
		s.BytesSent = len(payload)
		s.BytesRecv = len(recv)
		s.MsgsSent, s.MsgsRecv = 1, 1
		region = keep
	}
	st.CompWall = timer.Total()
	return &Result{Image: img, Own: RectOwn{R: region}, Stats: st}, nil
}

// packForwarded scans region and emits count + (x, y, pixel) tuples for
// every non-blank pixel, building the message in buf's storage.
func packForwarded(img *frame.Image, region frame.Rect, buf []byte) []byte {
	buf = append(buf, 0, 0, 0, 0)
	n := 0
	scan := region.Intersect(img.Bounds())
	var px [frame.PixelBytes]byte
	for y := scan.Y0; y < scan.Y1; y++ {
		row := img.Row(y, scan.X0, scan.X1)
		for i, p := range row {
			if p.Blank() {
				continue
			}
			x := scan.X0 + i
			buf = append(buf, byte(x), byte(x>>8), byte(y), byte(y>>8))
			frame.PutPixel(px[:], p)
			buf = append(buf, px[:]...)
			n++
		}
	}
	binary.LittleEndian.PutUint32(buf[:4], uint32(n))
	return buf
}

// compositeForwarded applies forwarded pixels, validating that each
// lands inside the kept half.
func compositeForwarded(img *frame.Image, keep frame.Rect, buf []byte, front bool) (int, error) {
	if len(buf) < 4 {
		return 0, fmt.Errorf("core: truncated forward header")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	if len(buf) != n*dpfPixelBytes {
		return 0, fmt.Errorf("core: %d bytes for %d forwarded pixels", len(buf), n)
	}
	for i := 0; i < n; i++ {
		off := i * dpfPixelBytes
		x := int(binary.LittleEndian.Uint16(buf[off:]))
		y := int(binary.LittleEndian.Uint16(buf[off+2:]))
		if !keep.Contains(x, y) {
			return 0, fmt.Errorf("core: forwarded pixel (%d,%d) outside kept half %v", x, y, keep)
		}
		img.CompositePixel(x, y, frame.GetPixel(buf[off+4:]), front)
	}
	return n, nil
}

// compositeRunsRect composites value-encoded runs covering region (in
// row-major order) directly into img, skipping blank runs arithmetically
// — the fused equivalent of CompositeRegion(region, DecodeValues(runs),
// front). It returns the number of over operations.
func compositeRunsRect(img *frame.Image, region frame.Rect, runs []rle.Run, front bool) int {
	img.Grow(region)
	w := region.Dx()
	ops := 0
	idx := 0
	rowY := -1
	var row []frame.Pixel
	for _, r := range runs {
		n := int(r.Count)
		if r.Value.Blank() {
			idx += n
			continue
		}
		for k := 0; k < n; k++ {
			i := idx + k
			if y := region.Y0 + i/w; y != rowY {
				rowY = y
				row = img.Row(y, region.X0, region.X1)
			}
			if front {
				frame.OverInto(r.Value, &row[i%w])
			} else {
				row[i%w] = frame.Over(row[i%w], r.Value)
			}
			ops++
		}
		idx += n
	}
	return ops
}

// BSVC is binary-swap with Ahrens–Painter value-coding.
type BSVC struct{}

// Name implements Compositor.
func (BSVC) Name() string { return "BSVC" }

// Composite implements Compositor.
func (BSVC) Composite(c mp.Comm, dec *partition.Decomposition, viewDir [3]float64,
	img *frame.Image) (*Result, error) {
	if err := checkWorld(c, dec); err != nil {
		return nil, err
	}
	st := &stats.Rank{RankID: c.Rank(), Method: "BSVC"}
	var timer stats.Timer
	ar := getArena()
	defer putArena(ar)
	region := img.Full()

	for stage := 1; stage <= dec.Stages(); stage++ {
		c.SetStage(stageLabel(stage))
		keep, send := stageHalves(dec, c.Rank(), stage, region)
		partner := dec.Partner(c.Rank(), stage)

		timer.Start()
		ar.runs = rle.EncodeValuesRect(img, send, ar.runs)
		runs := ar.runs
		payload := rle.PackRuns(runs, ar.codec.Grab(4+len(runs)*rle.RunBytes))
		timer.Stop()

		recv, err := c.Sendrecv(partner, tagSwap, payload)
		if err != nil {
			return nil, fmt.Errorf("bsvc: stage %d: %w", stage, err)
		}
		ar.codec.Retain(payload)

		timer.Start()
		theirs, rest, err := rle.UnpackRuns(recv)
		if err != nil {
			return nil, fmt.Errorf("bsvc: stage %d: %w", stage, err)
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("bsvc: stage %d: trailing bytes", stage)
		}
		if rle.RunsLen(theirs) != keep.Area() {
			return nil, fmt.Errorf("bsvc: stage %d: runs cover %d pixels, kept half has %d",
				stage, rle.RunsLen(theirs), keep.Area())
		}
		front := partnerInFront(dec, c.Rank(), stage, viewDir)
		composited := compositeRunsRect(img, keep, theirs, front)
		timer.Stop()

		s := st.StageAt(stage)
		s.RecvPixels = keep.Area()
		s.Composited = composited
		s.Encoded = send.Area()
		s.Codes = len(runs)
		s.BytesSent = len(payload)
		s.BytesRecv = len(recv)
		s.MsgsSent, s.MsgsRecv = 1, 1
		region = keep
	}
	st.CompWall = timer.Total()
	return &Result{Image: img, Own: RectOwn{R: region}, Stats: st}, nil
}
