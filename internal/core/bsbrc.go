package core

import (
	"fmt"

	"sortlast/internal/frame"
	"sortlast/internal/mp"
	"sortlast/internal/partition"
	"sortlast/internal/rle"
	"sortlast/internal/stats"
	"sortlast/internal/trace"
)

// BSBRC is binary-swap with bounding rectangle and run-length encoding
// (§3.4), the paper's best method: the encoder scans only the pixels of
// the sending bounding rectangle (A_send^k instead of A/2^k), and the
// message carries the rectangle (8 bytes), the run-length codes, and the
// non-blank pixels — avoiding both BSLC's full-half encoding scans and
// BSBR's blank-pixel traffic inside sparse rectangles.
type BSBRC struct{}

// Name implements Compositor.
func (BSBRC) Name() string { return "BSBRC" }

// Composite implements Compositor.
func (BSBRC) Composite(c mp.Comm, dec *partition.Decomposition, viewDir [3]float64,
	img *frame.Image) (*Result, error) {
	if err := checkWorld(c, dec); err != nil {
		return nil, err
	}
	st := &stats.Rank{RankID: c.Rank(), Method: "BSBRC"}
	var timer stats.Timer
	tr := c.Tracer()
	ar := getArena()
	defer putArena(ar)
	region := img.Full()

	// Algorithm step 3-4: find the local bounding rectangle once.
	bm := tr.Begin()
	timer.Start()
	localBR, scanned := img.BoundingRect(region)
	timer.Stop()
	tr.End(bm, trace.SpanBound, "")
	st.BoundScan = scanned

	for stage := 1; stage <= dec.Stages(); stage++ {
		lbl := stageLabel(stage)
		c.SetStage(lbl)
		sm := tr.Begin()
		keep, send := stageHalves(dec, c.Rank(), stage, region)
		partner := dec.Partner(c.Rank(), stage)

		// Steps 6-13: split the bounding rectangle at the centerline,
		// encode the sending part, pack rectangle + codes + pixels.
		em := tr.Begin()
		timer.Start()
		sendBR := localBR.Intersect(send)
		keepBR := localBR.Intersect(keep)
		payload := ar.rect(sendBR, 64)
		s := st.StageAt(stage)
		if !sendBR.Empty() {
			rle.EncodeRect(img, sendBR, &ar.enc)
			payload = ar.enc.Pack(payload)
			s.Encoded = sendBR.Area() // every pixel of the rectangle is scanned
			s.Codes = len(ar.enc.Codes)
			s.SentPixels = len(ar.enc.NonBlank)
		}
		timer.Stop()
		tr.End(em, trace.SpanEncode, lbl)

		// Steps 13-14: exchange with the paired processor.
		recv, err := c.Sendrecv(partner, tagSwap, payload)
		if err != nil {
			return nil, fmt.Errorf("bsbrc: stage %d: %w", stage, err)
		}
		ar.codec.Retain(payload)
		if len(recv) < frame.RectBytes {
			return nil, fmt.Errorf("bsbrc: stage %d: short message (%d bytes)", stage, len(recv))
		}
		recvBR := frame.GetRect(recv)
		if recvBR.Empty() && len(recv) != frame.RectBytes {
			return nil, fmt.Errorf("bsbrc: stage %d: %d trailing bytes with an empty rectangle",
				stage, len(recv)-frame.RectBytes)
		}

		s.SendRectEmpty = sendBR.Empty()
		s.RecvRectEmpty = recvBR.Empty()
		s.RecvPixels = recvBR.Area()
		s.BytesSent = len(payload)
		s.BytesRecv = len(recv)
		s.MsgsSent, s.MsgsRecv = 1, 1

		// Steps 16-20: decode and composite only the non-blank pixels.
		if !recvBR.Empty() {
			if !keep.ContainsRect(recvBR) {
				return nil, fmt.Errorf("bsbrc: stage %d: received rect %v outside kept half %v",
					stage, recvBR, keep)
			}
			cm := tr.Begin()
			timer.Start()
			e, rest, err := rle.ParseWire(recv[frame.RectBytes:])
			if err != nil {
				return nil, fmt.Errorf("bsbrc: stage %d: %w", stage, err)
			}
			if len(rest) != 0 {
				return nil, fmt.Errorf("bsbrc: stage %d: %d trailing bytes", stage, len(rest))
			}
			if e.Total() != recvBR.Area() {
				return nil, fmt.Errorf("bsbrc: stage %d: encoding covers %d pixels, rect %v has %d",
					stage, e.Total(), recvBR, recvBR.Area())
			}
			front := partnerInFront(dec, c.Rank(), stage, viewDir)
			img.Grow(recvBR)
			rw := recvBR.Dx()
			composited := 0
			// Positions arrive in row-major order; fetch each scanline
			// segment once.
			rowY := -1
			var row []frame.Pixel
			e.Walk(func(seq int, p frame.Pixel) {
				if y := recvBR.Y0 + seq/rw; y != rowY {
					rowY = y
					row = img.Row(y, recvBR.X0, recvBR.X1)
				}
				if front {
					frame.OverInto(p, &row[seq%rw])
				} else {
					row[seq%rw] = frame.Over(row[seq%rw], p)
				}
				composited++
			})
			timer.Stop()
			tr.End(cm, trace.SpanComposite, lbl)
			s.Composited = composited
		}

		tr.End(sm, lbl, lbl)
		// Step 21: the new local bounding rectangle is the O(1) union.
		localBR = keepBR.Union(recvBR)
		region = keep
	}
	st.CompWall = timer.Total()
	return &Result{Image: img, Own: RectOwn{R: region}, Stats: st}, nil
}
