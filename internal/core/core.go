// Package core implements the paper's contribution: the compositing
// phase of the sort-last-sparse pipeline. It provides the binary-swap
// family — BS (plain), BSBR (bounding rectangle), BSLC (run-length
// encoding over an interleaved, statically load-balanced split), and
// BSBRC (bounding rectangle + run-length encoding) — plus the related
// baselines from §2 (direct-send, parallel-pipeline, binary-tree with
// value compression) and the §5 future-work extension to non-power-of-two
// processor counts.
//
// All compositors are communication optimizations, not approximations:
// on the same subimages they produce bit-identical final images, because
// skipping a blank pixel is exact under the over operator.
package core

import (
	"fmt"

	"sortlast/internal/frame"
	"sortlast/internal/mp"
	"sortlast/internal/partition"
	"sortlast/internal/stats"
)

// Message tags used by the compositing algorithms.
const (
	tagSwap = 1 + iota
	tagFold
	tagDirect
	tagPipe
	tagTree
)

// Compositor merges the per-rank subimages into a distributed final
// image. Composite runs on every rank; on return, the rank's portion of
// the final image is described by Result.Own and stored in Result.Image.
type Compositor interface {
	Name() string
	Composite(c mp.Comm, dec *partition.Decomposition, viewDir [3]float64,
		img *frame.Image) (*Result, error)
}

// Result is one rank's outcome of the compositing phase.
type Result struct {
	// Image holds the composited pixels over the owned portion. It may
	// alias the input subimage.
	Image *frame.Image
	// Own describes which pixels of the full frame this rank owns.
	Own Ownership
	// Stats carries the counted quantities of the paper's cost model.
	Stats *stats.Rank
}

// stageLabel names a compositing stage in the message log. Labels for
// the stage counts any practical world produces (up to 2^32 ranks) are
// precomputed: the label is set once per stage per rank per frame, and
// formatting it was the hottest allocation site in the composite loop.
func stageLabel(k int) string {
	if k >= 1 && k <= len(stageLabels) {
		return stageLabels[k-1]
	}
	return fmt.Sprintf("stage%d", k)
}

var stageLabels = [32]string{
	"stage1", "stage2", "stage3", "stage4", "stage5", "stage6", "stage7", "stage8",
	"stage9", "stage10", "stage11", "stage12", "stage13", "stage14", "stage15", "stage16",
	"stage17", "stage18", "stage19", "stage20", "stage21", "stage22", "stage23", "stage24",
	"stage25", "stage26", "stage27", "stage28", "stage29", "stage30", "stage31", "stage32",
}

// stageHalves splits the region owned at the start of a stage along the
// stage's alternating centerline (horizontal first) and returns the half
// this rank keeps and the half it sends. The rank on side 0 of the
// stage's kd level keeps the low half, so partners always make
// complementary choices.
func stageHalves(dec *partition.Decomposition, rank, stage int, region frame.Rect) (keep, send frame.Rect) {
	low, high := region.Split(stage - 1)
	if dec.Side(rank, dec.StageLevel(stage)) == 0 {
		return low, high
	}
	return high, low
}

// partnerInFront reports whether the stage partner's contribution lies in
// front of this rank's accumulated pixels.
func partnerInFront(dec *partition.Decomposition, rank, stage int, viewDir [3]float64) bool {
	return dec.RankInFront(dec.Partner(rank, stage), stage, viewDir)
}

// checkWorld validates the comm/decomposition pairing shared by the
// power-of-two compositors.
func checkWorld(c mp.Comm, dec *partition.Decomposition) error {
	if c.Size() != dec.Size() {
		return fmt.Errorf("core: world has %d ranks but decomposition expects %d",
			c.Size(), dec.Size())
	}
	if c.Rank() < 0 || c.Rank() >= dec.Size() {
		return fmt.Errorf("core: rank %d out of range", c.Rank())
	}
	return nil
}

// New, Known, Names, PaperMethods and the capability queries live in
// registry.go: every method — built-in or subsystem-registered — enters
// through one Register call carrying its capability flags.
