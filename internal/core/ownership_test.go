package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"sortlast/internal/frame"
)

func TestRectOwnPackUnpack(t *testing.T) {
	img := frame.NewImage(16, 16)
	img.Set(5, 5, frame.Pixel{I: 0.5, A: 1})
	img.Set(6, 7, frame.Pixel{I: 0.25, A: 0.5})
	own := RectOwn{R: frame.XYWH(4, 4, 8, 8)}
	px := own.Pack(img)
	if len(px) != own.Area() {
		t.Fatalf("packed %d, want %d", len(px), own.Area())
	}
	dst := frame.NewImage(16, 16)
	if err := own.Unpack(dst, px); err != nil {
		t.Fatal(err)
	}
	if dst.At(5, 5) != img.At(5, 5) || dst.At(6, 7) != img.At(6, 7) {
		t.Error("pixels lost in pack/unpack")
	}
	if err := own.Unpack(dst, px[:3]); err == nil {
		t.Error("size mismatch must error")
	}
}

func TestIntervalOwnPackUnpack(t *testing.T) {
	img := frame.NewImage(8, 8)
	img.Set(3, 0, frame.Pixel{I: 1, A: 1})   // linear 3
	img.Set(1, 2, frame.Pixel{I: 0.5, A: 1}) // linear 17
	own := IntervalOwn{W: 8, Iv: []Interval{{0, 5}, {16, 20}}}
	if own.Area() != 9 {
		t.Fatalf("area = %d", own.Area())
	}
	px := own.Pack(img)
	if !px[3].Blank() == false {
		t.Error("linear index 3 must be packed at position 3")
	}
	dst := frame.NewImage(8, 8)
	if err := own.Unpack(dst, px); err != nil {
		t.Fatal(err)
	}
	if dst.At(3, 0) != img.At(3, 0) || dst.At(1, 2) != img.At(1, 2) {
		t.Error("interval pixels lost")
	}
}

func TestOwnershipWireRoundTrip(t *testing.T) {
	owns := []Ownership{
		RectOwn{},
		RectOwn{R: frame.XYWH(3, 4, 100, 200)},
		IntervalOwn{W: 384, Iv: nil},
		IntervalOwn{W: 768, Iv: []Interval{{0, 10}, {20, 25}, {1000, 5000}}},
	}
	for _, o := range owns {
		buf := o.AppendWire(nil)
		buf = append(buf, 0x99)
		got, rest, err := ParseOwnership(buf)
		if err != nil {
			t.Fatalf("%v: %v", o, err)
		}
		if len(rest) != 1 {
			t.Fatalf("rest = %d", len(rest))
		}
		switch want := o.(type) {
		case RectOwn:
			if got.(RectOwn).R != want.R.Canon() {
				t.Errorf("rect round trip %v -> %v", want, got)
			}
		case IntervalOwn:
			g := got.(IntervalOwn)
			if g.W != want.W || !reflect.DeepEqual(g.Iv, want.Iv) && !(len(g.Iv) == 0 && len(want.Iv) == 0) {
				t.Errorf("interval round trip %+v -> %+v", want, g)
			}
		}
	}
}

func TestParseOwnershipRejectsGarbage(t *testing.T) {
	bad := [][]byte{
		nil,
		{99},                 // unknown kind
		{ownKindRect, 1, 2},  // truncated rect
		{ownKindInterval, 1}, // truncated header
		(IntervalOwn{W: 4, Iv: []Interval{{5, 2}}}).AppendWire(nil), // inverted
	}
	for i, b := range bad {
		if _, _, err := ParseOwnership(b); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

// splitInterleaved partitions the sequence exactly, with sections
// alternating at granularity g.
func TestSplitInterleavedProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500, Values: func(vals []reflect.Value, r *rand.Rand) {
		// Random non-overlapping intervals.
		var iv []Interval
		pos := 0
		for n := r.Intn(6); n >= 0; n-- {
			pos += r.Intn(10)
			end := pos + 1 + r.Intn(50)
			iv = append(iv, Interval{pos, end})
			pos = end
		}
		vals[0] = reflect.ValueOf(iv)
		vals[1] = reflect.ValueOf(1 + r.Intn(20))
	}}
	err := quick.Check(func(iv []Interval, g int) bool {
		evens, odds := splitInterleaved(iv, g)
		if intervalsLen(evens)+intervalsLen(odds) != intervalsLen(iv) {
			return false
		}
		// Rebuild membership and compare with a direct simulation.
		member := map[int]int{} // index -> 0 (evens) or 1 (odds)
		for _, v := range evens {
			for i := v.Lo; i < v.Hi; i++ {
				member[i] = 0
			}
		}
		for _, v := range odds {
			for i := v.Lo; i < v.Hi; i++ {
				if _, dup := member[i]; dup {
					return false // overlap
				}
				member[i] = 1
			}
		}
		pos := 0
		for _, v := range iv {
			for i := v.Lo; i < v.Hi; i++ {
				want := (pos / g) % 2
				got, okFound := member[i]
				if !okFound || got != want {
					return false
				}
				pos++
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestSplitInterleavedMergesAdjacent(t *testing.T) {
	// A single long interval with g=2 must produce coalesced sections,
	// not per-pixel fragments beyond the alternation.
	evens, odds := splitInterleaved([]Interval{{0, 10}}, 2)
	if !reflect.DeepEqual(evens, []Interval{{0, 2}, {4, 6}, {8, 10}}) {
		t.Errorf("evens = %v", evens)
	}
	if !reflect.DeepEqual(odds, []Interval{{2, 4}, {6, 8}}) {
		t.Errorf("odds = %v", odds)
	}
	// Sections spanning interval gaps continue counting by sequence
	// position, not absolute index.
	// Positions 0-3 form section 0 (indices 0,1,2 and 100); positions
	// 4-5 fall in section 1 (indices 101,102).
	evens, odds = splitInterleaved([]Interval{{0, 3}, {100, 103}}, 4)
	if !reflect.DeepEqual(evens, []Interval{{0, 3}, {100, 101}}) {
		t.Errorf("gap case evens = %v", evens)
	}
	if !reflect.DeepEqual(odds, []Interval{{101, 103}}) {
		t.Errorf("gap case odds = %v", odds)
	}
}

func TestIntervalCursor(t *testing.T) {
	iv := []Interval{{10, 13}, {20, 22}, {30, 35}}
	cur := newIntervalCursor(iv)
	want := []int{10, 11, 12, 20, 21, 30, 31, 32, 33, 34}
	for seq, w := range want {
		if got := cur.index(seq); got != w {
			t.Fatalf("seq %d -> %d, want %d", seq, got, w)
		}
	}
}

func TestStripRectCoversFrame(t *testing.T) {
	full := frame.XYWH(0, 0, 100, 97)
	for _, p := range []int{1, 2, 3, 7, 97, 100, 150} {
		total := 0
		for r := 0; r < p; r++ {
			s := stripRect(full, r, p)
			total += s.Area()
			if !full.ContainsRect(s) {
				t.Fatalf("p=%d strip %d = %v escapes frame", p, r, s)
			}
		}
		if total != full.Area() {
			t.Errorf("p=%d strips cover %d, want %d", p, total, full.Area())
		}
	}
}
