package core

import (
	"fmt"

	"sortlast/internal/frame"
	"sortlast/internal/mp"
	"sortlast/internal/partition"
	"sortlast/internal/stats"
	"sortlast/internal/trace"
)

// BSBR is binary-swap with bounding rectangle (§3.2): each rank tracks
// the bounding rectangle of its non-blank pixels; at every stage the
// message carries the sending bounding rectangle (four short integers, 8
// bytes) followed by the raw pixels inside it. An empty rectangle costs
// only the 8-byte header. After compositing, the new local bounding
// rectangle is the O(1) union of the kept and received rectangles —
// the initial O(A) scan happens once, before stage 1.
type BSBR struct{}

// Name implements Compositor.
func (BSBR) Name() string { return "BSBR" }

// Composite implements Compositor.
func (BSBR) Composite(c mp.Comm, dec *partition.Decomposition, viewDir [3]float64,
	img *frame.Image) (*Result, error) {
	if err := checkWorld(c, dec); err != nil {
		return nil, err
	}
	st := &stats.Rank{RankID: c.Rank(), Method: "BSBR"}
	var timer stats.Timer
	tr := c.Tracer()
	ar := getArena()
	defer putArena(ar)
	region := img.Full()

	bm := tr.Begin()
	timer.Start()
	localBR, scanned := img.BoundingRect(region)
	timer.Stop()
	tr.End(bm, trace.SpanBound, "")
	st.BoundScan = scanned

	for stage := 1; stage <= dec.Stages(); stage++ {
		lbl := stageLabel(stage)
		c.SetStage(lbl)
		sm := tr.Begin()
		keep, send := stageHalves(dec, c.Rank(), stage, region)
		partner := dec.Partner(c.Rank(), stage)

		em := tr.Begin()
		timer.Start()
		sendBR := localBR.Intersect(send)
		keepBR := localBR.Intersect(keep)
		payload := ar.rect(sendBR, sendBR.Area()*frame.PixelBytes)
		if !sendBR.Empty() {
			payload = frame.EncodeRegion(img, sendBR, payload)
		}
		timer.Stop()
		tr.End(em, trace.SpanEncode, lbl)

		recv, err := c.Sendrecv(partner, tagSwap, payload)
		if err != nil {
			return nil, fmt.Errorf("bsbr: stage %d: %w", stage, err)
		}
		ar.codec.Retain(payload)
		if len(recv) < frame.RectBytes {
			return nil, fmt.Errorf("bsbr: stage %d: short message (%d bytes)", stage, len(recv))
		}
		recvBR := frame.GetRect(recv)
		body := recv[frame.RectBytes:]
		if recvBR.Empty() && len(body) != 0 {
			return nil, fmt.Errorf("bsbr: stage %d: %d body bytes with an empty rectangle",
				stage, len(body))
		}

		s := st.StageAt(stage)
		s.SentPixels = sendBR.Area()
		s.SendRectEmpty = sendBR.Empty()
		s.BytesSent = len(payload)
		s.BytesRecv = len(recv)
		s.MsgsSent, s.MsgsRecv = 1, 1
		s.RecvRectEmpty = recvBR.Empty()
		s.RecvPixels = recvBR.Area()

		if !recvBR.Empty() {
			if !keep.ContainsRect(recvBR) {
				return nil, fmt.Errorf("bsbr: stage %d: received rect %v outside kept half %v",
					stage, recvBR, keep)
			}
			if len(body) != recvBR.Area()*frame.PixelBytes {
				return nil, fmt.Errorf("bsbr: stage %d: %d body bytes for rect %v",
					stage, len(body), recvBR)
			}
			cm := tr.Begin()
			timer.Start()
			s.Composited = img.CompositeWire(recvBR, body,
				partnerInFront(dec, c.Rank(), stage, viewDir))
			timer.Stop()
			tr.End(cm, trace.SpanComposite, lbl)
		}

		tr.End(sm, lbl, lbl)
		localBR = keepBR.Union(recvBR)
		region = keep
	}
	st.CompWall = timer.Total()
	return &Result{Image: img, Own: RectOwn{R: region}, Stats: st}, nil
}
