package core

import (
	"reflect"
	"testing"

	"sortlast/internal/frame"
)

func TestRectSetOwnPackUnpack(t *testing.T) {
	img := frame.NewImage(32, 32)
	img.Set(2, 2, frame.Pixel{I: 0.5, A: 1})
	img.Set(17, 3, frame.Pixel{I: 0.25, A: 0.5})
	img.Set(5, 20, frame.Pixel{I: 1, A: 0.75})
	own := RectSetOwn{Rs: []frame.Rect{
		frame.XYWH(0, 0, 16, 16),
		frame.XYWH(16, 0, 16, 16),
		frame.XYWH(0, 16, 16, 16),
	}}
	if own.Area() != 3*256 {
		t.Fatalf("area = %d", own.Area())
	}
	px := own.Pack(img)
	if len(px) != own.Area() {
		t.Fatalf("packed %d, want %d", len(px), own.Area())
	}
	dst := frame.NewImage(32, 32)
	if err := own.Unpack(dst, px); err != nil {
		t.Fatal(err)
	}
	for _, at := range [][2]int{{2, 2}, {17, 3}, {5, 20}} {
		if dst.At(at[0], at[1]) != img.At(at[0], at[1]) {
			t.Errorf("pixel %v lost in pack/unpack", at)
		}
	}
	if err := own.Unpack(dst, px[:10]); err == nil {
		t.Error("size mismatch must error")
	}
	// Wire-pixel path must agree with the pixel path.
	wire := own.AppendPixels(img, nil)
	if len(wire) != own.Area()*frame.PixelBytes {
		t.Fatalf("wire %d bytes, want %d", len(wire), own.Area()*frame.PixelBytes)
	}
	dst2 := frame.NewImage(32, 32)
	if err := own.StoreWire(dst2, wire); err != nil {
		t.Fatal(err)
	}
	if dst2.At(17, 3) != img.At(17, 3) {
		t.Error("wire round trip lost a pixel")
	}
	if err := own.StoreWire(dst2, wire[:10]); err == nil {
		t.Error("short wire must error")
	}
}

func TestRectSetOwnWireRoundTrip(t *testing.T) {
	for _, own := range []RectSetOwn{
		{},
		{Rs: []frame.Rect{frame.XYWH(3, 4, 10, 10)}},
		{Rs: []frame.Rect{frame.XYWH(0, 0, 64, 64), frame.XYWH(128, 0, 64, 64), frame.XYWH(0, 64, 64, 64)}},
	} {
		buf := own.AppendWire(nil)
		buf = append(buf, 0x7f)
		got, rest, err := ParseOwnership(buf)
		if err != nil {
			t.Fatalf("%+v: %v", own, err)
		}
		if len(rest) != 1 {
			t.Fatalf("rest = %d", len(rest))
		}
		g, ok := got.(RectSetOwn)
		if !ok {
			t.Fatalf("parsed %T", got)
		}
		if len(g.Rs) != len(own.Rs) {
			t.Fatalf("round trip %+v -> %+v", own, g)
		}
		if len(own.Rs) > 0 && !reflect.DeepEqual(g.Rs, own.Rs) {
			t.Errorf("round trip %+v -> %+v", own, g)
		}
	}
}

func TestRectSetOwnValidate(t *testing.T) {
	full := frame.XYWH(0, 0, 64, 64)
	if err := (RectSetOwn{}).Validate(full); err != nil {
		t.Errorf("empty set must validate: %v", err)
	}
	if err := (RectSetOwn{Rs: []frame.Rect{frame.XYWH(0, 0, 8, 8)}}).Validate(full); err != nil {
		t.Errorf("in-frame set must validate: %v", err)
	}
	if err := (RectSetOwn{Rs: []frame.Rect{{}}}).Validate(full); err == nil {
		t.Error("empty rect accepted")
	}
	if err := (RectSetOwn{Rs: []frame.Rect{frame.XYWH(60, 60, 8, 8)}}).Validate(full); err == nil {
		t.Error("out-of-frame rect accepted")
	}
}
