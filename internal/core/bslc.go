package core

import (
	"fmt"

	"sortlast/internal/frame"
	"sortlast/internal/mp"
	"sortlast/internal/partition"
	"sortlast/internal/rle"
	"sortlast/internal/stats"
	"sortlast/internal/trace"
)

// BSLC is binary-swap with run-length encoding and static load balancing
// (§3.3): the half exchanged at each stage is an interleaved set of
// sections rather than a contiguous block, balancing non-blank pixels
// between partners, and the pixels travel as background/foreground
// run-length codes (2 bytes each) plus the non-blank payload. The
// encoder must scan every pixel of the sending half — the A/2^k term
// that dominates T_comp(BSLC) in Eq. (5).
type BSLC struct {
	// Granularity is the interleave section size in pixels; 0 means one
	// scanline of the full frame (the paper's Figure 6 arrangement).
	Granularity int
}

// Name implements Compositor.
func (BSLC) Name() string { return "BSLC" }

// Composite implements Compositor.
func (m BSLC) Composite(c mp.Comm, dec *partition.Decomposition, viewDir [3]float64,
	img *frame.Image) (*Result, error) {
	if err := checkWorld(c, dec); err != nil {
		return nil, err
	}
	st := &stats.Rank{RankID: c.Rank(), Method: "BSLC"}
	var timer stats.Timer
	tr := c.Tracer()
	ar := getArena()
	defer putArena(ar)
	w := img.Full().Dx()
	g := m.Granularity
	if g <= 0 {
		g = w
	}
	own0 := [1]Interval{{Lo: 0, Hi: img.Full().Area()}}
	own := own0[:]

	for stage := 1; stage <= dec.Stages(); stage++ {
		lbl := stageLabel(stage)
		c.SetStage(lbl)
		sm := tr.Begin()
		partner := dec.Partner(c.Rank(), stage)

		em := tr.Begin()
		timer.Start()
		pair := (stage % 2) * 2
		evens, odds := splitInterleavedInto(own, g, ar.iv[pair][:0], ar.iv[pair+1][:0])
		ar.iv[pair], ar.iv[pair+1] = evens, odds
		var keep, send []Interval
		if dec.Side(c.Rank(), dec.StageLevel(stage)) == 0 {
			keep, send = evens, odds
		} else {
			keep, send = odds, evens
		}
		encodeIntervals(img, w, send, &ar.enc)
		payload := ar.enc.Pack(ar.codec.Grab(8 + ar.enc.WireBytes()))
		timer.Stop()
		tr.End(em, trace.SpanEncode, lbl)

		recv, err := c.Sendrecv(partner, tagSwap, payload)
		if err != nil {
			return nil, fmt.Errorf("bslc: stage %d: %w", stage, err)
		}
		ar.codec.Retain(payload)

		cm := tr.Begin()
		timer.Start()
		e, rest, err := rle.ParseWire(recv)
		if err != nil {
			return nil, fmt.Errorf("bslc: stage %d: %w", stage, err)
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("bslc: stage %d: %d trailing bytes", stage, len(rest))
		}
		keepLen := intervalsLen(keep)
		if e.Total() != keepLen {
			return nil, fmt.Errorf("bslc: stage %d: encoding covers %d pixels, kept set has %d",
				stage, e.Total(), keepLen)
		}
		front := partnerInFront(dec, c.Rank(), stage, viewDir)
		growToIntervals(img, w, keep)
		composited := 0
		cur := intervalCursor{iv: keep}
		// The walk visits ascending positions; grab each scanline once
		// (growToIntervals guaranteed full-width storage for every
		// touched row).
		rowY := -1
		var row []frame.Pixel
		e.Walk(func(seq int, p frame.Pixel) {
			idx := cur.index(seq)
			if y := idx / w; y != rowY {
				rowY = y
				row = img.Row(y, 0, w)
			}
			if front {
				frame.OverInto(p, &row[idx%w])
			} else {
				row[idx%w] = frame.Over(row[idx%w], p)
			}
			composited++
		})
		timer.Stop()
		tr.End(cm, trace.SpanComposite, lbl)

		s := st.StageAt(stage)
		s.RecvPixels = keepLen
		s.Composited = composited
		s.Encoded = intervalsLen(send) // every pixel of the sent set is scanned
		s.Codes = len(ar.enc.Codes)
		s.SentPixels = len(ar.enc.NonBlank)
		s.BytesSent = len(payload)
		s.BytesRecv = len(recv)
		s.MsgsSent, s.MsgsRecv = 1, 1

		tr.End(sm, lbl, lbl)
		own = keep
	}
	st.CompWall = timer.Total()
	// own aliases pooled arena scratch; the Result outlives the arena.
	return &Result{Image: img, Own: IntervalOwn{W: w, Iv: append([]Interval(nil), own...)}, Stats: st}, nil
}

// splitInterleaved walks the concatenated pixel sequence described by
// intervals and deals alternating sections of g pixels to the two
// outputs: sections 0, 2, 4, … to evens, sections 1, 3, 5, … to odds.
// Both partners hold identical interval lists at the start of a stage, so
// they derive complementary halves without communicating.
func splitInterleaved(iv []Interval, g int) (evens, odds []Interval) {
	return splitInterleavedInto(iv, g, nil, nil)
}

// splitInterleavedInto is splitInterleaved appending into caller-owned
// scratch. The destinations must not alias iv: the split reads iv while
// writing them.
func splitInterleavedInto(iv []Interval, g int, evens, odds []Interval) ([]Interval, []Interval) {
	appendMerged := func(dst []Interval, lo, hi int) []Interval {
		if n := len(dst); n > 0 && dst[n-1].Hi == lo {
			dst[n-1].Hi = hi
			return dst
		}
		return append(dst, Interval{Lo: lo, Hi: hi})
	}
	pos := 0 // position in the concatenated sequence
	for _, v := range iv {
		lo := v.Lo
		for lo < v.Hi {
			// Remaining room in the current section.
			room := g - pos%g
			n := v.Hi - lo
			if n > room {
				n = room
			}
			if (pos/g)%2 == 0 {
				evens = appendMerged(evens, lo, lo+n)
			} else {
				odds = appendMerged(odds, lo, lo+n)
			}
			lo += n
			pos += n
		}
	}
	return evens, odds
}

func intervalsLen(iv []Interval) int {
	n := 0
	for _, v := range iv {
		n += v.Len()
	}
	return n
}

// packIntervals collects the pixels of the interval set in sequence
// order, copying whole row segments where the image has storage and
// leaving blanks elsewhere.
func packIntervals(img *frame.Image, w int, iv []Interval) []frame.Pixel {
	out := make([]frame.Pixel, intervalsLen(iv))
	pos := 0
	for _, v := range iv {
		for i := v.Lo; i < v.Hi; {
			y := i / w
			x0 := i % w
			x1 := w // end of this row segment, clipped to the interval
			if rowEnd := v.Hi - y*w; rowEnd < x1 {
				x1 = rowEnd
			}
			seg := x1 - x0
			bounds := img.Bounds()
			if y >= bounds.Y0 && y < bounds.Y1 {
				// Copy the stored middle of the segment; the flanks
				// outside the bounds stay blank.
				cx0, cx1 := x0, x1
				if cx0 < bounds.X0 {
					cx0 = bounds.X0
				}
				if cx1 > bounds.X1 {
					cx1 = bounds.X1
				}
				if cx0 < cx1 {
					copy(out[pos+(cx0-x0):], img.Row(y, cx0, cx1))
				}
			}
			pos += seg
			i += seg
		}
	}
	return out
}

// encodeIntervals encodes the pixels of the interval set in sequence
// order into e, reusing its storage — the fused equivalent of
// rle.Encode(packIntervals(img, w, iv)), bit-identical by construction:
// stretches without storage become arithmetic blank runs instead of
// materialized blank pixels.
func encodeIntervals(img *frame.Image, w int, iv []Interval, e *rle.Encoding) {
	var se rle.SeqEncoder
	se.Start(e)
	bounds := img.Bounds()
	for _, v := range iv {
		for i := v.Lo; i < v.Hi; {
			y := i / w
			x0 := i % w
			x1 := w // end of this row segment, clipped to the interval
			if rowEnd := v.Hi - y*w; rowEnd < x1 {
				x1 = rowEnd
			}
			seg := x1 - x0
			// Clip the segment to the stored bounds; flanks are blank.
			cx0, cx1 := x0, x1
			if cx0 < bounds.X0 {
				cx0 = bounds.X0
			}
			if cx1 > bounds.X1 {
				cx1 = bounds.X1
			}
			if y < bounds.Y0 || y >= bounds.Y1 || cx0 >= cx1 {
				se.Blank(seg)
			} else {
				se.Blank(cx0 - x0)
				se.Pixels(img.Row(y, cx0, cx1))
				se.Blank(x1 - cx1)
			}
			i += seg
		}
	}
	se.Finish()
}

// growToIntervals pre-grows the image to the bounding box of the interval
// set so per-pixel compositing does not repeatedly reallocate.
func growToIntervals(img *frame.Image, w int, iv []Interval) {
	if len(iv) == 0 {
		return
	}
	r := frame.ZR
	for _, v := range iv {
		y0, y1 := v.Lo/w, (v.Hi-1)/w
		r = r.Union(frame.Rect{X0: 0, Y0: y0, X1: w, Y1: y1 + 1})
	}
	img.Grow(r)
}

// intervalCursor maps sequence positions to linear indices for
// monotonically non-decreasing queries (the order rle.Walk produces).
type intervalCursor struct {
	iv   []Interval
	i    int // current interval
	base int // sequence position of iv[i].Lo
}

func newIntervalCursor(iv []Interval) *intervalCursor {
	return &intervalCursor{iv: iv}
}

func (c *intervalCursor) index(seq int) int {
	for seq >= c.base+c.iv[c.i].Len() {
		c.base += c.iv[c.i].Len()
		c.i++
	}
	return c.iv[c.i].Lo + (seq - c.base)
}
