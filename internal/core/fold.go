package core

import (
	"fmt"

	"sortlast/internal/frame"
	"sortlast/internal/mp"
	"sortlast/internal/partition"
	"sortlast/internal/rle"
	"sortlast/internal/stats"
)

// Folded lifts a binary-swap-family compositor to arbitrary rank counts,
// implementing the first future-work item of the paper's §5 ("the number
// of processors must be a power of two"). Extra ranks render the high
// half of a once-more-split core subvolume and, in a fold pre-stage, ship
// their whole subimage (bounding rectangle + run-length encoding, the
// BSBRC message format) to their core partner, which pre-composites it.
// The power-of-two core then runs the inner method unchanged; folded
// ranks own nothing and rejoin only for the final gather.
type Folded struct {
	Plan  *partition.FoldPlan
	Inner Compositor
}

// Name implements Compositor.
func (f *Folded) Name() string { return f.Inner.Name() + "+fold" }

// restrictedComm presents the power-of-two core of a larger world to the
// inner compositor. Only point-to-point traffic among core ranks flows
// through it, so overriding Size is sufficient.
type restrictedComm struct {
	mp.Comm
	size int
}

func (r restrictedComm) Size() int { return r.size }

// Composite implements Compositor. The dec argument must be the plan's
// core decomposition (pass Plan.Dec).
func (f *Folded) Composite(c mp.Comm, dec *partition.Decomposition, viewDir [3]float64,
	img *frame.Image) (*Result, error) {
	if dec != f.Plan.Dec {
		return nil, fmt.Errorf("core: folded compositor needs its plan's decomposition")
	}
	if c.Size() != f.Plan.Size() {
		return nil, fmt.Errorf("core: world has %d ranks, fold plan expects %d",
			c.Size(), f.Plan.Size())
	}
	me := c.Rank()
	c.SetStage("fold")
	full := img.Full()

	if f.Plan.IsExtra(me) {
		st := &stats.Rank{RankID: me, Method: f.Name()}
		var timer stats.Timer
		ar := getArena()
		defer putArena(ar)
		timer.Start()
		br, scanned := img.BoundingRect(full)
		payload := ar.rect(br, 64)
		if !br.Empty() {
			rle.EncodeRect(img, br, &ar.enc)
			payload = ar.enc.Pack(payload)
			st.Fold.Encoded = br.Area()
			st.Fold.Codes = len(ar.enc.Codes)
			st.Fold.SentPixels = len(ar.enc.NonBlank)
		}
		timer.Stop()
		st.BoundScan = scanned
		if err := c.Send(f.Plan.FoldPartner(me), tagFold, payload); err != nil {
			return nil, fmt.Errorf("fold: send: %w", err)
		}
		st.Fold.MsgsSent = 1
		st.Fold.BytesSent = len(payload)
		st.Fold.SendRectEmpty = br.Empty()
		st.CompWall = timer.Total()
		// Folded ranks own nothing; they still join the final gather.
		return &Result{Image: img, Own: RectOwn{}, Stats: st}, nil
	}

	var fold stats.Stage
	var foldTimer stats.Timer
	if e := f.Plan.FoldPartner(me); e >= 0 {
		recv, err := c.Recv(e, tagFold)
		if err != nil {
			return nil, fmt.Errorf("fold: recv from %d: %w", e, err)
		}
		if len(recv) < frame.RectBytes {
			return nil, fmt.Errorf("fold: short message from %d", e)
		}
		br := frame.GetRect(recv)
		fold.MsgsRecv = 1
		fold.BytesRecv = len(recv)
		fold.RecvRectEmpty = br.Empty()
		fold.RecvPixels = br.Area()
		if !br.Empty() {
			foldTimer.Start()
			enc, rest, err := rle.ParseWire(recv[frame.RectBytes:])
			if err != nil {
				return nil, fmt.Errorf("fold: from %d: %w", e, err)
			}
			if len(rest) != 0 || enc.Total() != br.Area() {
				return nil, fmt.Errorf("fold: malformed payload from %d", e)
			}
			front := f.Plan.ExtraInFront(me, viewDir)
			img.Grow(br)
			w := br.Dx()
			// Positions arrive in row-major order; fetch each scanline
			// segment once.
			rowY := -1
			var row []frame.Pixel
			enc.Walk(func(seq int, p frame.Pixel) {
				if y := br.Y0 + seq/w; y != rowY {
					rowY = y
					row = img.Row(y, br.X0, br.X1)
				}
				if front {
					frame.OverInto(p, &row[seq%w])
				} else {
					row[seq%w] = frame.Over(row[seq%w], p)
				}
				fold.Composited++
			})
			foldTimer.Stop()
		}
	}

	res, err := f.Inner.Composite(restrictedComm{Comm: c, size: f.Plan.Core}, dec, viewDir, img)
	if err != nil {
		return nil, err
	}
	res.Stats.Method = f.Name()
	res.Stats.Fold = fold
	res.Stats.CompWall += foldTimer.Total()
	return res, nil
}
