package core

import (
	"fmt"

	"sortlast/internal/frame"
	"sortlast/internal/mp"
	"sortlast/internal/partition"
	"sortlast/internal/stats"
	"sortlast/internal/trace"
)

// BS is the plain binary-swap compositing method of Ma et al. (§3.1): at
// stage k paired processors exchange complementary halves of their
// current region as raw pixels — 16 bytes each, blanks included — and
// composite the received half over/under their own.
type BS struct{}

// Name implements Compositor.
func (BS) Name() string { return "BS" }

// Composite implements Compositor.
func (BS) Composite(c mp.Comm, dec *partition.Decomposition, viewDir [3]float64,
	img *frame.Image) (*Result, error) {
	if err := checkWorld(c, dec); err != nil {
		return nil, err
	}
	st := &stats.Rank{RankID: c.Rank(), Method: "BS"}
	var timer stats.Timer
	tr := c.Tracer()
	ar := getArena()
	defer putArena(ar)
	region := img.Full()

	for stage := 1; stage <= dec.Stages(); stage++ {
		lbl := stageLabel(stage)
		c.SetStage(lbl)
		sm := tr.Begin()
		keep, send := stageHalves(dec, c.Rank(), stage, region)
		partner := dec.Partner(c.Rank(), stage)

		em := tr.Begin()
		timer.Start()
		payload := frame.EncodeRegion(img, send, ar.codec.Grab(send.Area()*frame.PixelBytes))
		timer.Stop()
		tr.End(em, trace.SpanEncode, lbl)

		recv, err := c.Sendrecv(partner, tagSwap, payload)
		if err != nil {
			return nil, fmt.Errorf("bs: stage %d: %w", stage, err)
		}
		ar.codec.Retain(payload)
		if len(recv) != keep.Area()*frame.PixelBytes {
			return nil, fmt.Errorf("bs: stage %d: got %d bytes for %d pixels",
				stage, len(recv), keep.Area())
		}

		cm := tr.Begin()
		timer.Start()
		ops := img.CompositeWire(keep, recv, partnerInFront(dec, c.Rank(), stage, viewDir))
		timer.Stop()
		tr.End(cm, trace.SpanComposite, lbl)

		s := st.StageAt(stage)
		s.RecvPixels = keep.Area()
		s.Composited = ops
		s.SentPixels = send.Area()
		s.BytesSent = len(payload)
		s.BytesRecv = len(recv)
		s.MsgsSent, s.MsgsRecv = 1, 1

		tr.End(sm, lbl, lbl)
		region = keep
	}
	st.CompWall = timer.Total()
	return &Result{Image: img, Own: RectOwn{R: region}, Stats: st}, nil
}
