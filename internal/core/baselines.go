package core

import (
	"fmt"

	"sortlast/internal/frame"
	"sortlast/internal/mp"
	"sortlast/internal/partition"
	"sortlast/internal/rle"
	"sortlast/internal/stats"
)

// DirectSend is the "buffered case" baseline of §2 (Hsu; Neumann): the
// final image is divided into P horizontal strips, each rank owns one,
// and every rank sends each owner the intersection of its bounding
// rectangle with that owner's strip in a single round. Owners composite
// the P-1 received blocks plus their own pixels in depth order.
type DirectSend struct{}

// Name implements Compositor.
func (DirectSend) Name() string { return "DirectSend" }

// stripRect returns strip r of p over the full frame.
func stripRect(full frame.Rect, r, p int) frame.Rect {
	h := full.Dy()
	return frame.Rect{
		X0: full.X0, Y0: full.Y0 + r*h/p,
		X1: full.X1, Y1: full.Y0 + (r+1)*h/p,
	}.Canon()
}

// Composite implements Compositor.
func (DirectSend) Composite(c mp.Comm, dec *partition.Decomposition, viewDir [3]float64,
	img *frame.Image) (*Result, error) {
	if err := checkWorld(c, dec); err != nil {
		return nil, err
	}
	st := &stats.Rank{RankID: c.Rank(), Method: "DirectSend"}
	var timer stats.Timer
	ar := getArena()
	defer putArena(ar)
	p := c.Size()
	me := c.Rank()
	full := img.Full()
	c.SetStage(stageLabel(1))

	timer.Start()
	localBR, scanned := img.BoundingRect(full)
	timer.Stop()
	st.BoundScan = scanned
	s := st.StageAt(1)

	// Send each owner the overlap of our bounding rectangle with its
	// strip. Sends are buffered, so all sends complete before receives.
	for dst := 0; dst < p; dst++ {
		if dst == me {
			continue
		}
		sr := localBR.Intersect(stripRect(full, dst, p))
		payload := ar.rect(sr, sr.Area()*frame.PixelBytes)
		if !sr.Empty() {
			timer.Start()
			payload = frame.EncodeRegion(img, sr, payload)
			timer.Stop()
		}
		if err := c.Send(dst, tagDirect, payload); err != nil {
			return nil, fmt.Errorf("direct: send to %d: %w", dst, err)
		}
		ar.codec.Retain(payload)
		s.MsgsSent++
		s.BytesSent += len(payload)
		s.SentPixels += sr.Area()
	}

	// Composite contributions for our strip front-to-back.
	myStrip := stripRect(full, me, p)
	out := frame.NewImage(full.Dx(), full.Dy())
	for _, src := range dec.DepthOrder(viewDir) {
		// out accumulates front contributions first: new blocks are
		// behind what is already composited.
		if src == me {
			r := localBR.Intersect(myStrip)
			if !r.Empty() {
				timer.Start()
				s.Composited += out.CompositeImage(img, r, false)
				timer.Stop()
			}
			continue
		}
		recv, err := c.Recv(src, tagDirect)
		if err != nil {
			return nil, fmt.Errorf("direct: recv from %d: %w", src, err)
		}
		if len(recv) < frame.RectBytes {
			return nil, fmt.Errorf("direct: short message from %d", src)
		}
		r := frame.GetRect(recv)
		s.MsgsRecv++
		s.BytesRecv += len(recv)
		s.RecvPixels += r.Area()
		if !r.Empty() {
			if !myStrip.ContainsRect(r) {
				return nil, fmt.Errorf("direct: rect %v from %d outside strip %v", r, src, myStrip)
			}
			if len(recv) != frame.RectBytes+r.Area()*frame.PixelBytes {
				return nil, fmt.Errorf("direct: bad payload size from %d", src)
			}
			timer.Start()
			s.Composited += out.CompositeWire(r, recv[frame.RectBytes:], false)
			timer.Stop()
		}
	}
	st.CompWall = timer.Total()
	return &Result{Image: out, Own: RectOwn{R: myStrip}, Stats: st}, nil
}

// Pipeline is the parallel-pipeline baseline of §2 (Lee et al.), adapted
// to volume rendering's non-commutative over operator: ranks are arranged
// on a ring in depth order; the partial for the strip owned by ring
// position i is created at position i+1 and travels the ring once,
// accumulating every rank's contribution. Because a cyclic traversal
// visits the front segment (positions 0..i) and back segment (positions
// i+1..P-1) as two runs, the message carries two partials — one per
// segment — and the owner combines them with a single over at the end.
type Pipeline struct{}

// Name implements Compositor.
func (Pipeline) Name() string { return "Pipeline" }

// pipePartial is one strip's in-flight state.
type pipePartial struct {
	front *frame.Image // accumulated front-segment contributions
	back  *frame.Image // accumulated back-segment contributions
}

// Composite implements Compositor.
func (Pipeline) Composite(c mp.Comm, dec *partition.Decomposition, viewDir [3]float64,
	img *frame.Image) (*Result, error) {
	if err := checkWorld(c, dec); err != nil {
		return nil, err
	}
	st := &stats.Rank{RankID: c.Rank(), Method: "Pipeline"}
	var timer stats.Timer
	ar := getArena()
	defer putArena(ar)
	p := c.Size()
	full := img.Full()

	order := dec.DepthOrder(viewDir)
	posOf := make([]int, p)
	for i, r := range order {
		posOf[r] = i
	}
	me := posOf[c.Rank()]     // my ring position (0 = frontmost)
	next := order[(me+1)%p]   // rank at the next ring position
	prev := order[(me-1+p)%p] // rank at the previous ring position
	w, h := full.Dx(), full.Dy()

	if p == 1 {
		return &Result{Image: img, Own: RectOwn{R: full}, Stats: st}, nil
	}

	var result *frame.Image
	var myStrip frame.Rect
	for s := 0; s < p; s++ {
		c.SetStage(stageLabel(s + 1))
		ownerPos := (me - s - 1 + p) % p
		strip := stripRect(full, ownerPos, p)
		pp := pipePartial{
			front: frame.NewImage(w, h),
			back:  frame.NewImage(w, h),
		}
		stg := st.StageAt(s + 1)
		if s > 0 {
			// Receive the in-flight partial for this strip.
			recv, err := c.Recv(prev, tagPipe)
			if err != nil {
				return nil, fmt.Errorf("pipeline: step %d: %w", s, err)
			}
			timer.Start()
			if err := unpackPartialPair(recv, pp.front, pp.back); err != nil {
				return nil, fmt.Errorf("pipeline: step %d: %w", s, err)
			}
			timer.Stop()
			stg.MsgsRecv++
			stg.BytesRecv += len(recv)
		}
		// Add our own contribution: we are in the front segment iff our
		// position does not exceed the owner's.
		timer.Start()
		br, _ := img.BoundingRect(strip)
		if !br.Empty() {
			dst := pp.back
			if me <= ownerPos {
				dst = pp.front
			}
			stg.Composited += dst.CompositeImage(img, br, false)
		}
		timer.Stop()

		if ownerPos == me {
			// Final step: combine segments. Everything in front came
			// from positions 0..me, everything behind from me+1..P-1.
			timer.Start()
			result = pp.back
			fb := pp.front.Bounds()
			if !fb.Empty() {
				result.CompositeImage(pp.front, fb, true)
			}
			timer.Stop()
			myStrip = strip
			continue
		}
		payload := packPartialPair(pp.front, pp.back, ar.codec.Grab(2*frame.RectBytes))
		if err := c.Send(next, tagPipe, payload); err != nil {
			return nil, fmt.Errorf("pipeline: step %d: %w", s, err)
		}
		ar.codec.Retain(payload)
		stg.MsgsSent++
		stg.BytesSent += len(payload)
	}
	st.CompWall = timer.Total()
	return &Result{Image: result, Own: RectOwn{R: myStrip}, Stats: st}, nil
}

// packPartialPair serializes two sparse partial images as bounding-rect
// blocks, appending to buf.
func packPartialPair(front, back *frame.Image, buf []byte) []byte {
	for _, im := range []*frame.Image{front, back} {
		br, _ := im.BoundingRect(im.Full())
		var rb [frame.RectBytes]byte
		frame.PutRect(rb[:], br)
		buf = append(buf, rb[:]...)
		if !br.Empty() {
			buf = frame.EncodeRegion(im, br, buf)
		}
	}
	return buf
}

// unpackPartialPair parses the two partials into the provided images.
func unpackPartialPair(buf []byte, front, back *frame.Image) error {
	for _, im := range []*frame.Image{front, back} {
		if len(buf) < frame.RectBytes {
			return fmt.Errorf("core: truncated partial pair")
		}
		r := frame.GetRect(buf)
		buf = buf[frame.RectBytes:]
		if r.Empty() {
			continue
		}
		need := r.Area() * frame.PixelBytes
		if len(buf) < need {
			return fmt.Errorf("core: truncated partial body")
		}
		im.StoreWire(r, buf[:need])
		buf = buf[need:]
	}
	if len(buf) != 0 {
		return fmt.Errorf("core: %d trailing bytes in partial pair", len(buf))
	}
	return nil
}

// BinaryTree is the compression-based binary-tree baseline of §2 (Ahrens
// and Painter): a tree reduction in which senders ship their entire
// current image as value-run-length-encoded runs and receivers merge run
// streams directly in the encoded domain. After log P stages rank 0 holds
// the full image. The value encoding is the one §3.3 argues degenerates
// for float-valued volume pixels — measured by the RLE-kind ablation.
type BinaryTree struct{}

// Name implements Compositor.
func (BinaryTree) Name() string { return "BinaryTree" }

// Composite implements Compositor.
func (BinaryTree) Composite(c mp.Comm, dec *partition.Decomposition, viewDir [3]float64,
	img *frame.Image) (*Result, error) {
	if err := checkWorld(c, dec); err != nil {
		return nil, err
	}
	st := &stats.Rank{RankID: c.Rank(), Method: "BinaryTree"}
	var timer stats.Timer
	ar := getArena()
	defer putArena(ar)
	full := img.Full()
	me := c.Rank()

	timer.Start()
	runs := encodeImageRuns(img)
	timer.Stop()

	for stage := 1; stage <= dec.Stages(); stage++ {
		if me&((1<<(stage-1))-1) != 0 {
			break // this rank already sent its data away
		}
		c.SetStage(stageLabel(stage))
		partner := dec.Partner(me, stage)
		if me&(1<<(stage-1)) != 0 {
			payload := rle.PackRuns(runs, ar.codec.Grab(4+len(runs)*rle.RunBytes))
			if err := c.Send(partner, tagTree, payload); err != nil {
				return nil, fmt.Errorf("bintree: stage %d: %w", stage, err)
			}
			s := st.StageAt(stage)
			s.MsgsSent, s.BytesSent = 1, len(payload)
			s.Codes = len(runs)
			runs = nil
			break
		}
		recv, err := c.Recv(partner, tagTree)
		if err != nil {
			return nil, fmt.Errorf("bintree: stage %d: %w", stage, err)
		}
		timer.Start()
		theirs, rest, err := rle.UnpackRuns(recv)
		if err != nil {
			return nil, fmt.Errorf("bintree: stage %d: %w", stage, err)
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("bintree: stage %d: trailing bytes", stage)
		}
		var merged []rle.Run
		if dec.RankInFront(partner, stage, viewDir) {
			merged, err = rle.CompositeRuns(theirs, runs)
		} else {
			merged, err = rle.CompositeRuns(runs, theirs)
		}
		timer.Stop()
		if err != nil {
			return nil, fmt.Errorf("bintree: stage %d: %w", stage, err)
		}
		s := st.StageAt(stage)
		s.MsgsRecv, s.BytesRecv = 1, len(recv)
		s.Codes = len(theirs)
		s.RecvPixels = full.Area()
		for _, r := range theirs {
			if !r.Value.Blank() {
				s.Composited += int(r.Count)
			}
		}
		runs = merged
	}

	if me != 0 {
		st.CompWall = timer.Total()
		return &Result{Image: frame.NewImage(full.Dx(), full.Dy()), Own: RectOwn{}, Stats: st}, nil
	}
	timer.Start()
	out := frame.NewImage(full.Dx(), full.Dy())
	idx := 0
	w := full.Dx()
	for _, r := range runs {
		if !r.Value.Blank() {
			for k := 0; k < int(r.Count); k++ {
				out.Set((idx+k)%w, (idx+k)/w, r.Value)
			}
		}
		idx += int(r.Count)
	}
	timer.Stop()
	st.CompWall = timer.Total()
	return &Result{Image: out, Own: RectOwn{R: full}, Stats: st}, nil
}

// encodeImageRuns value-encodes the full frame row-major without
// materializing a dense pixel buffer.
func encodeImageRuns(img *frame.Image) []rle.Run {
	full := img.Full()
	var runs []rle.Run
	var cur rle.Run
	flush := func() {
		if cur.Count > 0 {
			runs = append(runs, cur)
		}
	}
	for y := full.Y0; y < full.Y1; y++ {
		for x := full.X0; x < full.X1; x++ {
			p := img.At(x, y)
			if cur.Count > 0 && cur.Value == p && cur.Count < 0xFFFF {
				cur.Count++
				continue
			}
			flush()
			cur = rle.Run{Value: p, Count: 1}
		}
	}
	flush()
	return runs
}
