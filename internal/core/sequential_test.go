package core

import (
	"math/rand"
	"testing"
	"time"

	"sortlast/internal/frame"
	"sortlast/internal/mp"
	"sortlast/internal/partition"
	"sortlast/internal/volume"
)

// Random sparse subimages (not rendered ones — arbitrary content): every
// compositor must match the sequential depth-order reference. This
// catches ordering bugs that structured scenes can mask.
func TestAllMethodsMatchSequentialOnRandomImages(t *testing.T) {
	root := volume.Box{Hi: [3]int{64, 64, 64}}
	r := rand.New(rand.NewSource(99))
	for _, p := range []int{2, 4, 8} {
		dec, err := partition.Decompose(root, p)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 3; trial++ {
			viewDir := [3]float64{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
			imgs := make([]*frame.Image, p)
			for i := range imgs {
				imgs[i] = sparseImage(int64(trial*100+i), 48, 48, 0.15+0.5*r.Float64())
			}
			ref := CompositeSequential(imgs, dec, viewDir)

			for _, name := range Names() {
				comp, err := New(name)
				if err != nil {
					t.Fatal(err)
				}
				var final *frame.Image
				err = mp.Run(p, mp.Options{RecvTimeout: 20 * time.Second}, func(c mp.Comm) error {
					res, err := comp.Composite(c, dec, viewDir, imgs[c.Rank()].Clone())
					if err != nil {
						return err
					}
					out, err := GatherImage(c, 0, res)
					if err != nil {
						return err
					}
					if c.Rank() == 0 {
						final = out
					}
					return nil
				})
				if err != nil {
					t.Fatalf("%s P=%d trial %d: %v", name, p, trial, err)
				}
				if d := ref.MaxAbsDiff(final, ref.Full()); d > 1e-11 {
					t.Errorf("%s P=%d trial %d: differs from sequential by %g",
						name, p, trial, d)
				}
			}
		}
	}
}

func TestSequentialFoldMatchesFoldedCompositor(t *testing.T) {
	root := volume.Box{Hi: [3]int{64, 64, 64}}
	const p = 5
	plan, err := partition.PlanFold(root, p)
	if err != nil {
		t.Fatal(err)
	}
	viewDir := [3]float64{0.3, -0.5, 0.8}
	imgs := make([]*frame.Image, p)
	for i := range imgs {
		imgs[i] = sparseImage(int64(i+1), 40, 40, 0.3)
	}
	ref := CompositeSequentialFold(imgs, plan, viewDir)
	comp := &Folded{Plan: plan, Inner: BSBRC{}}
	var final *frame.Image
	err = mp.Run(p, mp.Options{RecvTimeout: 20 * time.Second}, func(c mp.Comm) error {
		res, err := comp.Composite(c, plan.Dec, viewDir, imgs[c.Rank()].Clone())
		if err != nil {
			return err
		}
		out, err := GatherImage(c, 0, res)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			final = out
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := ref.MaxAbsDiff(final, ref.Full()); d > 1e-11 {
		t.Errorf("folded differs from sequential by %g", d)
	}
}

func TestCompositeSequentialEmptyInput(t *testing.T) {
	if CompositeSequential(nil, nil, [3]float64{}) != nil {
		t.Error("empty input must return nil")
	}
}
