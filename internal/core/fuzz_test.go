package core

import (
	"testing"

	"sortlast/internal/frame"
)

// FuzzParseOwnership feeds arbitrary bytes to the ownership parser used
// by the final gather: no panic, and accepted descriptors must have a
// coherent area and survive a pack/unpack cycle.
func FuzzParseOwnership(f *testing.F) {
	f.Add(RectOwn{R: frame.XYWH(1, 2, 3, 4)}.AppendWire(nil))
	f.Add(IntervalOwn{W: 8, Iv: []Interval{{0, 5}, {9, 12}}}.AppendWire(nil))
	f.Add(RectSetOwn{Rs: []frame.Rect{frame.XYWH(0, 0, 4, 4), frame.XYWH(8, 8, 4, 4)}}.AppendWire(nil))
	f.Add([]byte{})
	f.Add([]byte{ownKindInterval, 1, 0, 0, 0})
	f.Add([]byte{ownKindRectSet, 2, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		own, _, err := ParseOwnership(data)
		if err != nil {
			return
		}
		area := own.Area()
		if area < 0 {
			t.Fatalf("negative area %d", area)
		}
		// A descriptor is only touched after it validates against the
		// receiving frame, exactly as GatherImage does.
		img := frame.NewImage(256, 256)
		if own.Validate(img.Full()) != nil {
			return
		}
		px := own.Pack(img)
		if len(px) != area {
			t.Fatalf("packed %d pixels for area %d", len(px), area)
		}
	})
}

// FuzzCompositeForwarded feeds arbitrary bytes to the BSDPF message
// parser.
func FuzzCompositeForwarded(f *testing.F) {
	img := frame.NewImage(16, 16)
	img.Set(2, 3, frame.Pixel{I: 1, A: 1})
	f.Add(packForwarded(img, img.Full(), nil))
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{1, 0, 0, 0, 5, 0, 5, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		dst := frame.NewImage(16, 16)
		n, err := compositeForwarded(dst, dst.Full(), data, true)
		if err == nil && n < 0 {
			t.Fatal("negative composite count")
		}
	})
}
