package core

import (
	"sync"

	"sortlast/internal/frame"
	"sortlast/internal/rle"
)

// arena bundles the per-rank scratch a compositor reuses across stages:
// a wire-buffer codec, a reusable background/foreground encoding with
// its SeqEncoder and Builder front ends, and a value-run slice. Stage
// exchange regions shrink monotonically, so the storage sized by stage 1
// serves every later stage without reallocating; mp.Comm.Send copies
// payloads, which makes handing the same buffer to consecutive sends
// safe. Each Composite call checks an arena out of a shared pool for its
// exclusive use — concurrent ranks never share scratch, and successive
// composites over a standing communicator reuse warm buffers instead of
// allocating fresh ones per frame.
type arena struct {
	codec frame.Codec
	enc   rle.Encoding
	b     rle.Builder
	runs  []rle.Run
	// iv double-buffers interval scratch for the load-balanced methods:
	// each stage splits the previous stage's kept set, which aliases one
	// of these slices, so the split alternates between the two pairs —
	// stage k writes pair (k%2)*2 while reading from the other pair.
	iv [4][]Interval
}

var arenaPool = sync.Pool{New: func() any { return new(arena) }}

func getArena() *arena  { return arenaPool.Get().(*arena) }
func putArena(a *arena) { arenaPool.Put(a) }

// rect starts a payload with an 8-byte rectangle header in codec
// scratch, reserving room for extra more bytes of appended body.
func (a *arena) rect(r frame.Rect, extra int) []byte {
	payload := a.codec.Grab(frame.RectBytes + extra)[:frame.RectBytes]
	frame.PutRect(payload, r)
	return payload
}

// Scratch hands the pooled arena to compositing subsystems outside this
// package (internal/tilecomp), so their per-frame encode/send loops
// reuse the same warm codec buffers and encodings the binary-swap
// family does. Check one out per Composite call and Release it when the
// call returns; a Scratch is for one goroutine's exclusive use.
type Scratch struct{ a *arena }

// GetScratch checks an arena out of the shared pool.
func GetScratch() Scratch { return Scratch{a: getArena()} }

// Release returns the arena to the pool.
func (s Scratch) Release() { putArena(s.a) }

// Grab returns an n-capacity wire buffer from the codec's storage.
func (s Scratch) Grab(n int) []byte { return s.a.codec.Grab(n) }

// Retain gives a sent payload's storage back to the codec for reuse
// (mp.Comm.Send copies, so the buffer is free as soon as Send returns).
func (s Scratch) Retain(buf []byte) { s.a.codec.Retain(buf) }

// Rect starts a payload with an 8-byte rectangle header, reserving room
// for extra more bytes of appended body.
func (s Scratch) Rect(r frame.Rect, extra int) []byte { return s.a.rect(r, extra) }

// Enc returns the reusable run-length encoding.
func (s Scratch) Enc() *rle.Encoding { return &s.a.enc }
