package core

import "testing"

// The registry serves every list the system previously hardcoded; the
// built-ins must be present with coherent capability flags.
func TestRegistryLists(t *testing.T) {
	if len(PaperMethods()) != 4 {
		t.Fatalf("paper methods: %v", PaperMethods())
	}
	for _, name := range []string{"bs", "bsbr", "bslc", "bsbrc", "direct", "pipeline", "bintree", "bsdpf", "bsvc", "bsbrlc"} {
		if !Known(name) {
			t.Errorf("built-in %q not registered", name)
		}
	}
	names := map[string]bool{}
	for _, s := range Specs() {
		if names[s.Name] {
			t.Errorf("duplicate spec %q", s.Name)
		}
		names[s.Name] = true
		if s.Caps.Paper && !s.Caps.ModelBacked {
			t.Errorf("%q: paper methods must be model-backed", s.Name)
		}
		if s.Caps.Foldable && s.Caps.NativeAnyP {
			t.Errorf("%q: foldable and natively any-P are exclusive", s.Name)
		}
		c, err := New(s.Name)
		if err != nil {
			t.Fatalf("New(%q): %v", s.Name, err)
		}
		if c.Name() == "" {
			t.Errorf("New(%q) has no display name", s.Name)
		}
	}
	// Pow2-only and any-P partition the registry.
	if len(Pow2OnlyMethods())+len(AnyPMethods()) != len(Names()) {
		t.Errorf("pow2-only %v + any-P %v != all %v",
			Pow2OnlyMethods(), AnyPMethods(), Names())
	}
	for _, name := range Pow2OnlyMethods() {
		if ServesAnyP(name) {
			t.Errorf("%q both pow2-only and any-P", name)
		}
	}
}

func TestRegistryUnknown(t *testing.T) {
	if Known("nope") || ServesAnyP("nope") {
		t.Error("unknown name recognized")
	}
	if _, err := New("nope"); err == nil {
		t.Error("New must reject unknown names")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup must reject unknown names")
	}
}

func TestRegisterRejectsBadSpecs(t *testing.T) {
	mustPanic := func(label string, s Spec) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", label)
			}
		}()
		Register(s)
	}
	mustPanic("empty name", Spec{Make: func() Compositor { return BS{} }})
	mustPanic("nil make", Spec{Name: "x"})
	mustPanic("duplicate", Spec{Name: "bs", Make: func() Compositor { return BS{} }})
}
