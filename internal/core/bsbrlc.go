package core

import (
	"fmt"

	"sortlast/internal/frame"
	"sortlast/internal/mp"
	"sortlast/internal/partition"
	"sortlast/internal/rle"
	"sortlast/internal/stats"
	"sortlast/internal/trace"
)

// BSBRLC combines all three of the paper's techniques, in the spirit of
// §5's "more efficient encoding schemes": the exchange is BSLC's
// statically load-balanced interleaved split of the shared owned set,
// while the encoder uses the bounding rectangle to skip blank space
// arithmetically — stretches outside the rectangle become run-length
// codes without a single pixel being scanned, so the paper's
// T_encode x A/2^k term shrinks toward BSBRC's T_encode x A_send while
// keeping BSLC's balanced M_max. Messages carry the local bounding
// rectangle (for the O(1) rectangle update) plus codes and non-blank
// pixels.
type BSBRLC struct {
	// Granularity is the interleave section size in pixels; 0 means one
	// scanline of the full frame.
	Granularity int
}

// Name implements Compositor.
func (BSBRLC) Name() string { return "BSBRLC" }

// Composite implements Compositor.
func (m BSBRLC) Composite(c mp.Comm, dec *partition.Decomposition, viewDir [3]float64,
	img *frame.Image) (*Result, error) {
	if err := checkWorld(c, dec); err != nil {
		return nil, err
	}
	st := &stats.Rank{RankID: c.Rank(), Method: "BSBRLC"}
	var timer stats.Timer
	tr := c.Tracer()
	ar := getArena()
	defer putArena(ar)
	w := img.Full().Dx()
	g := m.Granularity
	if g <= 0 {
		g = w
	}
	own0 := [1]Interval{{Lo: 0, Hi: img.Full().Area()}}
	own := own0[:]

	bm := tr.Begin()
	timer.Start()
	localBR, scanned := img.BoundingRect(img.Full())
	timer.Stop()
	tr.End(bm, trace.SpanBound, "")
	st.BoundScan = scanned

	for stage := 1; stage <= dec.Stages(); stage++ {
		lbl := stageLabel(stage)
		c.SetStage(lbl)
		sm := tr.Begin()
		partner := dec.Partner(c.Rank(), stage)

		em := tr.Begin()
		timer.Start()
		pair := (stage % 2) * 2
		evens, odds := splitInterleavedInto(own, g, ar.iv[pair][:0], ar.iv[pair+1][:0])
		ar.iv[pair], ar.iv[pair+1] = evens, odds
		var keep, send []Interval
		if dec.Side(c.Rank(), dec.StageLevel(stage)) == 0 {
			keep, send = evens, odds
		} else {
			keep, send = odds, evens
		}
		enc, encScanned := encodeIntervalsWithRect(img, w, send, localBR, &ar.b)
		payload := ar.rect(localBR, enc.WireBytes()+16)
		payload = enc.Pack(payload)
		timer.Stop()
		tr.End(em, trace.SpanEncode, lbl)

		recv, err := c.Sendrecv(partner, tagSwap, payload)
		if err != nil {
			return nil, fmt.Errorf("bsbrlc: stage %d: %w", stage, err)
		}
		ar.codec.Retain(payload)
		if len(recv) < frame.RectBytes {
			return nil, fmt.Errorf("bsbrlc: stage %d: short message (%d bytes)", stage, len(recv))
		}
		recvBR := frame.GetRect(recv)

		cm := tr.Begin()
		timer.Start()
		e, rest, err := rle.ParseWire(recv[frame.RectBytes:])
		if err != nil {
			return nil, fmt.Errorf("bsbrlc: stage %d: %w", stage, err)
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("bsbrlc: stage %d: %d trailing bytes", stage, len(rest))
		}
		keepLen := intervalsLen(keep)
		if e.Total() != keepLen {
			return nil, fmt.Errorf("bsbrlc: stage %d: encoding covers %d pixels, kept set has %d",
				stage, e.Total(), keepLen)
		}
		front := partnerInFront(dec, c.Rank(), stage, viewDir)
		growToIntervals(img, w, keep)
		composited := 0
		cur := intervalCursor{iv: keep}
		rowY := -1
		var row []frame.Pixel
		e.Walk(func(seq int, p frame.Pixel) {
			idx := cur.index(seq)
			if y := idx / w; y != rowY {
				rowY = y
				row = img.Row(y, 0, w)
			}
			if front {
				frame.OverInto(p, &row[idx%w])
			} else {
				row[idx%w] = frame.Over(row[idx%w], p)
			}
			composited++
		})
		timer.Stop()
		tr.End(cm, trace.SpanComposite, lbl)

		s := st.StageAt(stage)
		s.RecvPixels = keepLen
		s.Composited = composited
		s.Encoded = encScanned // only in-rectangle pixels were touched
		s.Codes = len(enc.Codes)
		s.SentPixels = len(enc.NonBlank)
		s.BytesSent = len(payload)
		s.BytesRecv = len(recv)
		s.MsgsSent, s.MsgsRecv = 1, 1
		s.RecvRectEmpty = recvBR.Empty()
		s.SendRectEmpty = localBR.Empty()

		tr.End(sm, lbl, lbl)
		// The kept pixels stay inside localBR; received non-blanks lie
		// inside the partner's rectangle. O(1) update, as in BSBR.
		localBR = localBR.Union(recvBR)
		own = keep
	}
	st.CompWall = timer.Total()
	// own aliases pooled arena scratch; the Result outlives the arena.
	return &Result{Image: img, Own: IntervalOwn{W: w, Iv: append([]Interval(nil), own...)}, Stats: st}, nil
}

// encodeIntervalsWithRect encodes the pixels of the interval set in
// sequence order, scanning only the parts inside the bounding rectangle
// and emitting everything outside as arithmetic blank runs. It returns
// the encoding and the number of pixels actually scanned. The builder is
// caller-owned scratch; the returned encoding aliases its storage and
// must be packed before the builder's next Reset.
func encodeIntervalsWithRect(img *frame.Image, w int, iv []Interval,
	br frame.Rect, b *rle.Builder) (rle.Encoding, int) {
	b.Reset()
	for _, v := range iv {
		for i := v.Lo; i < v.Hi; {
			y := i / w
			x0 := i % w
			x1 := w
			if rowEnd := v.Hi - y*w; rowEnd < x1 {
				x1 = rowEnd
			}
			seg := x1 - x0
			if y < br.Y0 || y >= br.Y1 || x1 <= br.X0 || x0 >= br.X1 {
				b.Blank(seg) // whole segment outside the rectangle
				i += seg
				continue
			}
			// Clip the segment to the rectangle; flanks are blank.
			cx0, cx1 := x0, x1
			if cx0 < br.X0 {
				cx0 = br.X0
			}
			if cx1 > br.X1 {
				cx1 = br.X1
			}
			b.Blank(cx0 - x0)
			b.Pixels(rowSlice(img, y, cx0, cx1))
			b.Blank(x1 - cx1)
			i += seg
		}
	}
	return b.Done(), b.Scanned()
}

// rowSlice returns the pixels of scanline y over [x0, x1), materializing
// blanks where the image has no storage.
func rowSlice(img *frame.Image, y, x0, x1 int) []frame.Pixel {
	row := img.Row(y, x0, x1)
	if len(row) == x1-x0 {
		return row
	}
	// Partially stored: fall back to a padded copy.
	out := make([]frame.Pixel, x1-x0)
	b := img.Bounds()
	if y >= b.Y0 && y < b.Y1 {
		cx0 := x0
		if b.X0 > cx0 {
			cx0 = b.X0
		}
		copy(out[cx0-x0:], img.Row(y, cx0, x1))
	}
	return out
}
