package core

import (
	"encoding/binary"
	"testing"

	"sortlast/internal/frame"
	"sortlast/internal/partition"
	"sortlast/internal/stats"
	"sortlast/internal/transfer"
	"sortlast/internal/volume"
)

func TestPackForwardedRoundTrip(t *testing.T) {
	img := frame.NewImage(16, 16)
	img.Set(3, 4, frame.Pixel{I: 0.5, A: 1})
	img.Set(10, 12, frame.Pixel{I: 0.25, A: 0.5})
	img.Set(0, 0, frame.Pixel{I: 1, A: 1})
	region := frame.XYWH(0, 0, 16, 16)
	buf := packForwarded(img, region, nil)
	if n := binary.LittleEndian.Uint32(buf); n != 3 {
		t.Fatalf("forwarded %d pixels, want 3", n)
	}
	dst := frame.NewImage(16, 16)
	composited, err := compositeForwarded(dst, region, buf, false)
	if err != nil {
		t.Fatal(err)
	}
	if composited != 3 {
		t.Errorf("composited = %d", composited)
	}
	for _, q := range [][2]int{{3, 4}, {10, 12}, {0, 0}} {
		if dst.At(q[0], q[1]) != img.At(q[0], q[1]) {
			t.Errorf("pixel %v lost", q)
		}
	}
}

func TestPackForwardedSkipsBlanksAndClips(t *testing.T) {
	img := frame.NewImage(16, 16)
	img.Set(2, 2, frame.Pixel{I: 1, A: 1})
	img.Set(9, 9, frame.Pixel{I: 1, A: 1})
	// Region covering only the first pixel.
	buf := packForwarded(img, frame.XYWH(0, 0, 8, 8), nil)
	if n := binary.LittleEndian.Uint32(buf); n != 1 {
		t.Errorf("forwarded %d pixels, want 1", n)
	}
}

func TestCompositeForwardedRejectsCorruption(t *testing.T) {
	img := frame.NewImage(8, 8)
	keep := frame.XYWH(0, 0, 8, 8)
	if _, err := compositeForwarded(img, keep, []byte{1, 2}, true); err == nil {
		t.Error("truncated header accepted")
	}
	// Count says 2 but only one tuple present.
	src := frame.NewImage(8, 8)
	src.Set(1, 1, frame.Pixel{I: 1, A: 1})
	buf := packForwarded(src, keep, nil)
	binary.LittleEndian.PutUint32(buf[:4], 2)
	if _, err := compositeForwarded(img, keep, buf, true); err == nil {
		t.Error("count/body mismatch accepted")
	}
	// A pixel outside the kept half must be rejected.
	binary.LittleEndian.PutUint32(buf[:4], 1)
	if _, err := compositeForwarded(img, frame.XYWH(4, 4, 4, 4), buf, true); err == nil {
		t.Error("out-of-half pixel accepted")
	}
}

// The DPF wire cost is 20 bytes per non-blank pixel, the number the
// paper's §3.3 compares against 2-byte run codes.
func TestForwardedWireCost(t *testing.T) {
	img := frame.NewImage(32, 32)
	for i := 0; i < 10; i++ {
		img.Set(i, i, frame.Pixel{I: 1, A: 1})
	}
	buf := packForwarded(img, img.Full(), nil)
	if len(buf) != 4+10*dpfPixelBytes {
		t.Errorf("wire size %d, want %d", len(buf), 4+10*dpfPixelBytes)
	}
	if dpfPixelBytes != 20 {
		t.Errorf("dpf pixel bytes = %d, want 20", dpfPixelBytes)
	}
}

// On a sparse scene the paper's ordering of encodings must show up in
// M_max: value-coding (18 B/run, degenerate) > direct forwarding (20 B
// per non-blank, but only non-blanks) comparable, and both above BSBRC's
// rect + 2-byte codes.
func TestVariantEncodingCostOrdering(t *testing.T) {
	sc := makeScene(t, volume.EngineBlock(48, 48, 96), transfer.EngineLow(), 96, 96, 20, 30)
	const p = 8
	dec, err := partition.Decompose(sc.vol.Bounds(), p)
	if err != nil {
		t.Fatal(err)
	}
	mmax := map[string]int{}
	for _, name := range []string{"bsbrc", "bsdpf", "bsvc", "bs"} {
		comp, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		_, rs := runComposite(t, sc, comp, dec, p)
		mmax[name] = stats.MaxMessageBytes(rs)
	}
	if mmax["bsbrc"] >= mmax["bsdpf"] {
		t.Errorf("BSBRC M_max %d not below BSDPF %d", mmax["bsbrc"], mmax["bsdpf"])
	}
	if mmax["bsvc"] >= mmax["bs"] {
		t.Errorf("BSVC M_max %d not below raw BS %d (value runs still skip blanks)",
			mmax["bsvc"], mmax["bs"])
	}
	if mmax["bsdpf"] >= mmax["bs"] {
		t.Errorf("BSDPF M_max %d not below raw BS %d", mmax["bsdpf"], mmax["bs"])
	}
}
