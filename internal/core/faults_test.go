package core

import (
	"strings"
	"sync"
	"testing"
	"time"

	"sortlast/internal/frame"
	"sortlast/internal/mp"
	"sortlast/internal/partition"
	"sortlast/internal/volume"
)

// corruptingTransport wraps the in-process transport and mangles the
// payload of the Nth algorithm message (tags below mp.TagLimit), so we
// can verify compositors fail cleanly — with an error, never a panic or
// a silent wrong image — on malformed input.
type corruptingTransport struct {
	mp.Transport
	mu     *sync.Mutex
	count  *int
	target int
	mutate func([]byte) []byte
}

func (t *corruptingTransport) Send(to, tag int, payload []byte) error {
	if tag < mp.TagLimit {
		t.mu.Lock()
		*t.count++
		hit := *t.count == t.target
		t.mu.Unlock()
		if hit {
			payload = t.mutate(append([]byte(nil), payload...))
		}
	}
	return t.Transport.Send(to, tag, payload)
}

// runWithCorruption runs the compositor on p ranks with message number
// `target` mutated, and returns the error the world produced.
func runWithCorruption(t *testing.T, comp Compositor, p, target int,
	mutate func([]byte) []byte) error {
	t.Helper()
	root := volume.Box{Hi: [3]int{32, 32, 32}}
	dec, err := partition.Decompose(root, p)
	if err != nil {
		t.Fatal(err)
	}
	w, err := mp.NewWorld(p, mp.Options{RecvTimeout: 1500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	count := 0
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		tr := &corruptingTransport{
			Transport: w.Transport(r),
			mu:        &mu, count: &count, target: target,
			mutate: mutate,
		}
		c, err := mp.FromTransport(r, p, tr, mp.Options{RecvTimeout: 1500 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(r int, c mp.Comm) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					t.Errorf("rank %d panicked on corrupt input: %v", r, v)
				}
			}()
			img := sparseImage(int64(r), 32, 32, 0.3)
			_, errs[r] = comp.Composite(c, dec, [3]float64{0, 0, 1}, img)
		}(r, c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func TestCompositorsRejectCorruptMessages(t *testing.T) {
	mutations := map[string]func([]byte) []byte{
		"truncate": func(b []byte) []byte {
			if len(b) > 3 {
				return b[:len(b)-3]
			}
			return nil
		},
		"garbage-header": func(b []byte) []byte {
			for i := 0; i < len(b) && i < 12; i++ {
				b[i] ^= 0xFF
			}
			return b
		},
	}
	for _, name := range []string{"bs", "bsbr", "bslc", "bsbrc", "bsdpf", "bsvc"} {
		comp, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		for mname, mutate := range mutations {
			if name == "bs" && mname == "garbage-header" {
				// BS ships raw pixels with no structure: any byte string
				// of the right length is valid data, so header garbage
				// is undetectable by design. Truncation is still caught.
				continue
			}
			err := runWithCorruption(t, comp, 4, 3, mutate)
			if err == nil {
				t.Errorf("%s/%s: corrupt message accepted silently", name, mname)
				continue
			}
			if strings.Contains(err.Error(), "panic") {
				t.Errorf("%s/%s: %v", name, mname, err)
			}
		}
	}
}

// A zero-length corrupt frame must also surface as an error, not hang.
func TestCompositorsRejectEmptyMessages(t *testing.T) {
	for _, name := range []string{"bsbr", "bsbrc", "bslc"} {
		comp, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		err = runWithCorruption(t, comp, 2, 1, func([]byte) []byte { return nil })
		if err == nil {
			t.Errorf("%s: empty message accepted", name)
		}
	}
}

// Sanity: without corruption the same scaffolding completes cleanly.
func TestCorruptionHarnessCleanRun(t *testing.T) {
	comp := BSBRC{}
	if err := runWithCorruption(t, comp, 4, 1<<30, func(b []byte) []byte { return b }); err != nil {
		t.Fatal(err)
	}
	_ = frame.Pixel{}
}
