// Package transfer maps volume scalars to optical properties. A Func is
// a pair of 256-entry lookup tables (opacity and intensity); the presets
// reproduce the paper's four workloads: the same engine volume under a
// low threshold (Engine_low — dense images) and a high threshold
// (Engine_high — sparse images), a head setting that keeps skin
// semi-transparent over bright bone, and an opaque setting for the cube.
package transfer

import "fmt"

// Func maps an 8-bit scalar to opacity and intensity, both in [0, 1].
// Opacity is per unit sample step (one voxel); the renderer corrects for
// other step sizes.
type Func struct {
	Name      string
	Opacity   [256]float64
	Intensity [256]float64
}

// Classify returns opacity and intensity for a normalized sample value in
// [0, 1], with linear interpolation between table entries.
func (f *Func) Classify(v float64) (opacity, intensity float64) {
	if v <= 0 {
		return f.Opacity[0], f.Intensity[0]
	}
	if v >= 1 {
		return f.Opacity[255], f.Intensity[255]
	}
	x := v * 255
	i := int(x)
	t := x - float64(i)
	return f.Opacity[i] + t*(f.Opacity[i+1]-f.Opacity[i]),
		f.Intensity[i] + t*(f.Intensity[i+1]-f.Intensity[i])
}

// Ramp builds a transfer function that is fully transparent below lo,
// ramps opacity linearly up to maxOpacity at hi, and keeps it there.
// Intensity follows the scalar value, so denser material renders
// brighter.
func Ramp(name string, lo, hi int, maxOpacity float64) *Func {
	if lo < 0 || hi > 255 || lo >= hi {
		panic(fmt.Sprintf("transfer: invalid ramp [%d,%d]", lo, hi))
	}
	f := &Func{Name: name}
	for v := 0; v < 256; v++ {
		switch {
		case v <= lo:
			f.Opacity[v] = 0
		case v >= hi:
			f.Opacity[v] = maxOpacity
		default:
			f.Opacity[v] = maxOpacity * float64(v-lo) / float64(hi-lo)
		}
		f.Intensity[v] = float64(v) / 255
	}
	return f
}

// Iso builds a band-pass transfer function: opaque only within
// [center-width, center+width], emphasizing one material.
func Iso(name string, center, width int, opacity float64) *Func {
	f := &Func{Name: name}
	for v := 0; v < 256; v++ {
		d := v - center
		if d < 0 {
			d = -d
		}
		if d <= width {
			f.Opacity[v] = opacity * (1 - float64(d)/float64(width+1))
			f.Intensity[v] = float64(v) / 255
		}
	}
	return f
}

// EngineLow is the paper's Engine_low setting: a low threshold that picks
// up the whole casting, producing dense subimages.
func EngineLow() *Func { return Ramp("engine_low", 40, 110, 0.08) }

// EngineHigh is the paper's Engine_high setting: a high threshold that
// keeps only the steel liners and bosses, producing sparse subimages.
func EngineHigh() *Func { return Ramp("engine_high", 170, 230, 0.12) }

// Head renders skin faintly and bone strongly, the classic CT-head look.
func Head() *Func {
	f := Ramp("head", 45, 235, 0.25)
	// Suppress soft tissue slightly so the skull dominates.
	for v := 60; v < 170; v++ {
		f.Opacity[v] *= 0.25
	}
	return f
}

// Cube renders the synthetic cube fully opaque at first touch.
func Cube() *Func { return Ramp("cube", 100, 140, 1.0) }

// Preset returns the transfer function for one of the paper's four test
// images.
func Preset(name string) (*Func, error) {
	switch name {
	case "engine_low":
		return EngineLow(), nil
	case "engine_high":
		return EngineHigh(), nil
	case "head":
		return Head(), nil
	case "cube":
		return Cube(), nil
	default:
		return nil, fmt.Errorf("transfer: unknown preset %q", name)
	}
}
