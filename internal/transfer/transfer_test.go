package transfer

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestRampShape(t *testing.T) {
	f := Ramp("test", 50, 150, 0.8)
	if op, _ := f.Classify(0.1); op != 0 {
		t.Errorf("below threshold opacity = %v, want 0", op)
	}
	if op, _ := f.Classify(0.9); op != 0.8 {
		t.Errorf("above hi opacity = %v, want 0.8", op)
	}
	opMid, _ := f.Classify(100.0 / 255)
	if opMid <= 0 || opMid >= 0.8 {
		t.Errorf("mid-ramp opacity = %v, want strictly between 0 and 0.8", opMid)
	}
}

func TestRampPanicsOnBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Ramp("bad", 100, 50, 1)
}

func TestClassifyBoundsProperty(t *testing.T) {
	funcs := []*Func{EngineLow(), EngineHigh(), Head(), Cube(), Iso("iso", 128, 30, 0.5)}
	cfg := &quick.Config{MaxCount: 2000, Values: func(vals []reflect.Value, r *rand.Rand) {
		vals[0] = reflect.ValueOf(r.Float64()*1.4 - 0.2) // include out-of-range
	}}
	for _, f := range funcs {
		err := quick.Check(func(v float64) bool {
			op, in := f.Classify(v)
			return op >= 0 && op <= 1 && in >= 0 && in <= 1
		}, cfg)
		if err != nil {
			t.Errorf("%s: %v", f.Name, err)
		}
	}
}

func TestClassifyInterpolatesContinuously(t *testing.T) {
	f := EngineLow()
	// Small input changes must give small opacity changes.
	for v := 0.0; v < 0.999; v += 0.001 {
		a, _ := f.Classify(v)
		b, _ := f.Classify(v + 0.001)
		if d := b - a; d > 0.01 || d < -0.01 {
			t.Fatalf("opacity jump %v at v=%v", d, v)
		}
	}
}

func TestEngineThresholds(t *testing.T) {
	low, high := EngineLow(), EngineHigh()
	// A casting-density value (~95/255) is visible under low, invisible
	// under high.
	v := 95.0 / 255
	if op, _ := low.Classify(v); op <= 0 {
		t.Error("casting must be visible under engine_low")
	}
	if op, _ := high.Classify(v); op != 0 {
		t.Error("casting must be invisible under engine_high")
	}
	// Liner density (~210/255) is visible under both.
	v = 210.0 / 255
	if op, _ := low.Classify(v); op <= 0 {
		t.Error("liner must be visible under engine_low")
	}
	if op, _ := high.Classify(v); op <= 0 {
		t.Error("liner must be visible under engine_high")
	}
}

func TestCubeOpaque(t *testing.T) {
	f := Cube()
	if op, _ := f.Classify(1); op != 1 {
		t.Errorf("cube material opacity = %v, want 1", op)
	}
	if op, _ := f.Classify(0); op != 0 {
		t.Error("empty space must stay transparent")
	}
}

func TestIsoBandPass(t *testing.T) {
	f := Iso("band", 128, 20, 0.6)
	if op, _ := f.Classify(128.0 / 255); op <= 0 {
		t.Error("center must be visible")
	}
	if op, _ := f.Classify(0.2); op != 0 {
		t.Error("out-of-band must be invisible")
	}
	if op, _ := f.Classify(0.95); op != 0 {
		t.Error("out-of-band high must be invisible")
	}
}

func TestPreset(t *testing.T) {
	for _, name := range []string{"engine_low", "engine_high", "head", "cube"} {
		f, err := Preset(name)
		if err != nil || f.Name != name {
			t.Errorf("Preset(%q) = %v, %v", name, f, err)
		}
	}
	if _, err := Preset("bogus"); err == nil {
		t.Error("unknown preset must error")
	}
}

func TestHeadSuppressesSoftTissue(t *testing.T) {
	f := Head()
	softOp, _ := f.Classify(110.0 / 255) // brain
	boneOp, _ := f.Classify(215.0 / 255) // skull
	if softOp >= boneOp {
		t.Errorf("soft tissue opacity %v must be below bone %v", softOp, boneOp)
	}
}
