package volume

// Macro-cell constants: the volume is summarized at 8³-voxel
// granularity. 8 balances skip resolution against summary size (a
// 256×256×110 volume folds into ~14k cells = 28 KB) and makes the
// grid's world-space cell boundaries exact powers of two, so the ray
// caster's DDA boundary arithmetic stays exact.
const (
	// MacroShift is the log2 edge length of a macro cell in voxels.
	MacroShift = 3
	// MacroCell is the macro-cell edge length in voxels.
	MacroCell = 1 << MacroShift
)

// MacroGrid is a min/max summary of a volume at macro-cell granularity,
// the classic empty-space-skipping structure: a ray caster can classify
// a whole cell against the transfer function's zero-opacity spans and
// skip all samples inside it. Cell (cx, cy, cz) covers voxels
// [cx·8, cx·8+8) × … — but its Min/Max are computed over that range
// EXPANDED BY ONE VOXEL on every side, because a trilinear sample taken
// anywhere inside the cell's world extent interpolates corner voxels up
// to one index outside it (Volume.Sample is cell-centered: position p
// reads voxels floor(p−0.5) and floor(p−0.5)+1). With the expansion,
// every sample whose position lies inside the cell is bounded by
// [Min, Max] — the property the skip-safety proof in DESIGN.md §11
// rests on. Voxels outside the volume read as 0 (Volume.At
// zero-extends) and count toward Min.
type MacroGrid struct {
	CX, CY, CZ int // cell counts per axis (ceil of dimension / 8)
	Min, Max   []uint8
}

// Range returns cell (cx, cy, cz)'s value bounds; ok is false outside
// the grid, which callers must treat as "cannot skip".
func (g *MacroGrid) Range(cx, cy, cz int) (mn, mx uint8, ok bool) {
	if cx < 0 || cy < 0 || cz < 0 || cx >= g.CX || cy >= g.CY || cz >= g.CZ {
		return 0, 0, false
	}
	i := (cz*g.CY+cy)*g.CX + cx
	return g.Min[i], g.Max[i], true
}

// Cells returns the total cell count.
func (g *MacroGrid) Cells() int { return g.CX * g.CY * g.CZ }

// MacroCells returns the volume's macro-cell grid, building it on first
// use and caching it for the volume's lifetime (the build is a single
// pass over the voxels, ~10 ms for the paper-sized datasets). Safe for
// concurrent callers; the volume must not be mutated after the first
// call, which holds for the procedural datasets (generated once, then
// immutable and shared through the harness dataset cache).
func (v *Volume) MacroCells() *MacroGrid {
	v.macroOnce.Do(func() { v.macro = buildMacroGrid(v) })
	return v.macro
}

// MacroCells returns the grid of the subvolume's backing storage (box
// plus ghost layers), in the local coordinates exposed by Inner.
func (s *Subvolume) MacroCells() *MacroGrid { return s.grid.MacroCells() }

// Inner exposes the subvolume's backing storage for the accelerated
// render path: the stored grid, the owned box's low corner, and the
// ghost width. A global position maps to grid-local coordinates as
// (x − lo) + ghost per axis — two floating-point operations in that
// order, which callers needing bit-identity with Sample must replicate.
func (s *Subvolume) Inner() (grid *Volume, lo [3]int, ghost int) {
	return s.grid, s.Box.Lo, s.Ghost
}

func buildMacroGrid(v *Volume) *MacroGrid {
	g := &MacroGrid{
		CX: (v.NX + MacroCell - 1) >> MacroShift,
		CY: (v.NY + MacroCell - 1) >> MacroShift,
		CZ: (v.NZ + MacroCell - 1) >> MacroShift,
	}
	n := g.Cells()
	g.Min = make([]uint8, n)
	g.Max = make([]uint8, n)
	i := 0
	for cz := 0; cz < g.CZ; cz++ {
		for cy := 0; cy < g.CY; cy++ {
			for cx := 0; cx < g.CX; cx++ {
				g.Min[i], g.Max[i] = cellRange(v, cx, cy, cz)
				i++
			}
		}
	}
	return g
}

// cellRange scans the cell's voxel range expanded by one on every side.
// Where the expanded range leaves the volume, the out-of-range voxels
// are the zeros Volume.At reports, folded in without touching memory.
func cellRange(v *Volume, cx, cy, cz int) (mn, mx uint8) {
	x0, x1 := cx*MacroCell-1, cx*MacroCell+MacroCell // inclusive
	y0, y1 := cy*MacroCell-1, cy*MacroCell+MacroCell
	z0, z1 := cz*MacroCell-1, cz*MacroCell+MacroCell
	mn = 255
	if x0 < 0 || y0 < 0 || z0 < 0 || x1 >= v.NX || y1 >= v.NY || z1 >= v.NZ {
		mn = 0 // zero-extended border voxels participate
		x0, y0, z0 = max(x0, 0), max(y0, 0), max(z0, 0)
		x1, y1, z1 = min(x1, v.NX-1), min(y1, v.NY-1), min(z1, v.NZ-1)
	}
	for z := z0; z <= z1; z++ {
		for y := y0; y <= y1; y++ {
			base := (z*v.NY + y) * v.NX
			for _, s := range v.Data[base+x0 : base+x1+1] {
				if s < mn {
					mn = s
				}
				if s > mx {
					mx = s
				}
			}
		}
	}
	return mn, mx
}
