package volume

// VoxelWork estimates rendering cost from voxel occupancy: every voxel
// costs Base (traversal, sampling) and voxels above Threshold cost
// Opaque more (classification, shading, compositing). It backs the
// load-balanced rendering decomposition (paper §5 future work).
type VoxelWork struct {
	Vol       *Volume
	Threshold uint8
	Base      uint64 // per-voxel cost; 0 means 1
	Opaque    uint64 // extra cost per above-threshold voxel; 0 means 8
}

func (w VoxelWork) base() uint64 {
	if w.Base == 0 {
		return 1
	}
	return w.Base
}

func (w VoxelWork) opaque() uint64 {
	if w.Opaque == 0 {
		return 8
	}
	return w.Opaque
}

// SliceWeights implements the partition package's WorkEstimator: the
// estimated work of b restricted to each unit slice along axis.
func (w VoxelWork) SliceWeights(b Box, axis int) []uint64 {
	b = b.Intersect(w.Vol.Bounds())
	out := make([]uint64, b.Extent(axis))
	base, opaque := w.base(), w.opaque()
	for z := b.Lo[2]; z < b.Hi[2]; z++ {
		for y := b.Lo[1]; y < b.Hi[1]; y++ {
			row := w.Vol.Data[w.Vol.Index(b.Lo[0], y, z):w.Vol.Index(b.Hi[0], y, z)]
			switch axis {
			case 0:
				for x, v := range row {
					work := base
					if v > w.Threshold {
						work += opaque
					}
					out[x] += work
				}
			case 1:
				work := base * uint64(len(row))
				for _, v := range row {
					if v > w.Threshold {
						work += opaque
					}
				}
				out[y-b.Lo[1]] += work
			default:
				work := base * uint64(len(row))
				for _, v := range row {
					if v > w.Threshold {
						work += opaque
					}
				}
				out[z-b.Lo[2]] += work
			}
		}
	}
	return out
}

// BoxWork returns the total estimated work of a box (the sum of its
// slice weights), used by tests and the balance report.
func (w VoxelWork) BoxWork(b Box) uint64 {
	var total uint64
	for _, s := range w.SliceWeights(b, 0) {
		total += s
	}
	return total
}
