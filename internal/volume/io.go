package volume

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Raw-file I/O. Two formats are supported:
//
//   - The native format: a 16-byte header ("SLSV" magic, then NX, NY, NZ
//     as little-endian uint32) followed by the x-fastest uint8 samples.
//   - Headerless raw dumps (as CT datasets are traditionally shipped),
//     read with externally supplied dimensions via ReadRawDims.

const magic = "SLSV"

// Write serializes v in the native format.
func (v *Volume) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	var dims [12]byte
	binary.LittleEndian.PutUint32(dims[0:4], uint32(v.NX))
	binary.LittleEndian.PutUint32(dims[4:8], uint32(v.NY))
	binary.LittleEndian.PutUint32(dims[8:12], uint32(v.NZ))
	if _, err := bw.Write(dims[:]); err != nil {
		return err
	}
	if _, err := bw.Write(v.Data); err != nil {
		return err
	}
	return bw.Flush()
}

// Read parses a volume in the native format.
func Read(r io.Reader) (*Volume, error) {
	br := bufio.NewReader(r)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("volume: reading header: %w", err)
	}
	if string(hdr[:4]) != magic {
		return nil, fmt.Errorf("volume: bad magic %q (want %q)", hdr[:4], magic)
	}
	nx := int(binary.LittleEndian.Uint32(hdr[4:8]))
	ny := int(binary.LittleEndian.Uint32(hdr[8:12]))
	nz := int(binary.LittleEndian.Uint32(hdr[12:16]))
	const maxVoxels = 1 << 31
	if nx <= 0 || ny <= 0 || nz <= 0 || int64(nx)*int64(ny)*int64(nz) > maxVoxels {
		return nil, fmt.Errorf("volume: implausible dimensions %dx%dx%d", nx, ny, nz)
	}
	v := New(nx, ny, nz)
	if _, err := io.ReadFull(br, v.Data); err != nil {
		return nil, fmt.Errorf("volume: reading %d samples: %w", len(v.Data), err)
	}
	return v, nil
}

// WriteFile writes v to path in the native format.
func (v *Volume) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := v.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads a native-format volume from path.
func ReadFile(path string) (*Volume, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// ReadRawDims reads a headerless raw dump of nx*ny*nz uint8 samples,
// x-fastest — the conventional distribution format of CT volumes like the
// paper's Engine and Head scans.
func ReadRawDims(r io.Reader, nx, ny, nz int) (*Volume, error) {
	v := New(nx, ny, nz)
	if _, err := io.ReadFull(bufio.NewReader(r), v.Data); err != nil {
		return nil, fmt.Errorf("volume: reading raw %dx%dx%d: %w", nx, ny, nz, err)
	}
	return v, nil
}
