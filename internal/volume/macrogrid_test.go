package volume

import (
	"sync"
	"testing"
)

// bruteCellRange recomputes a cell's bounds the slow way, via At (which
// zero-extends), over the support-expanded voxel range.
func bruteCellRange(v *Volume, cx, cy, cz int) (mn, mx uint8) {
	mn = 255
	for z := cz*MacroCell - 1; z <= cz*MacroCell+MacroCell; z++ {
		for y := cy*MacroCell - 1; y <= cy*MacroCell+MacroCell; y++ {
			for x := cx*MacroCell - 1; x <= cx*MacroCell+MacroCell; x++ {
				s := v.At(x, y, z)
				if s < mn {
					mn = s
				}
				if s > mx {
					mx = s
				}
			}
		}
	}
	return mn, mx
}

func TestMacroGridMatchesBruteForce(t *testing.T) {
	// Dimensions deliberately not multiples of the cell size, so the
	// last cell row is partial on every axis.
	v := EngineBlock(45, 38, 21)
	g := v.MacroCells()
	wantCX, wantCY, wantCZ := 6, 5, 3
	if g.CX != wantCX || g.CY != wantCY || g.CZ != wantCZ {
		t.Fatalf("cell counts %dx%dx%d, want %dx%dx%d", g.CX, g.CY, g.CZ, wantCX, wantCY, wantCZ)
	}
	for cz := 0; cz < g.CZ; cz++ {
		for cy := 0; cy < g.CY; cy++ {
			for cx := 0; cx < g.CX; cx++ {
				mn, mx, ok := g.Range(cx, cy, cz)
				if !ok {
					t.Fatalf("cell (%d,%d,%d) reported out of range", cx, cy, cz)
				}
				wantMn, wantMx := bruteCellRange(v, cx, cy, cz)
				if mn != wantMn || mx != wantMx {
					t.Fatalf("cell (%d,%d,%d) = [%d,%d], want [%d,%d]",
						cx, cy, cz, mn, mx, wantMn, wantMx)
				}
			}
		}
	}
}

// TestMacroGridBorderIncludesZero pins the zero-extension rule: any cell
// whose expanded support leaves the volume must report Min 0, because
// samples near the border interpolate against implicit zeros.
func TestMacroGridBorderIncludesZero(t *testing.T) {
	v := New(16, 16, 16)
	for i := range v.Data {
		v.Data[i] = 200 // uniformly dense: interior cells must NOT see 0
	}
	g := v.MacroCells()
	for cz := 0; cz < g.CZ; cz++ {
		for cy := 0; cy < g.CY; cy++ {
			for cx := 0; cx < g.CX; cx++ {
				mn, mx, _ := g.Range(cx, cy, cz)
				if mn != 0 {
					t.Errorf("border cell (%d,%d,%d) Min = %d, want 0", cx, cy, cz, mn)
				}
				if mx != 200 {
					t.Errorf("cell (%d,%d,%d) Max = %d, want 200", cx, cy, cz, mx)
				}
			}
		}
	}
	// A 32³ volume has true interior cells (cell (1,1,1) spans voxels
	// [8,16) expanded to [7,16], all inside): those must keep Min 200.
	v2 := New(32, 32, 32)
	for i := range v2.Data {
		v2.Data[i] = 200
	}
	mn, _, _ := v2.MacroCells().Range(1, 1, 1)
	if mn != 200 {
		t.Errorf("interior cell Min = %d, want 200", mn)
	}
}

func TestMacroGridRangeOutOfBounds(t *testing.T) {
	g := New(8, 8, 8).MacroCells()
	for _, c := range [][3]int{{-1, 0, 0}, {0, -1, 0}, {0, 0, -1}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}} {
		if _, _, ok := g.Range(c[0], c[1], c[2]); ok {
			t.Errorf("Range(%v) ok, want out-of-range", c)
		}
	}
}

// TestMacroCellsCached asserts the grid is built once and shared, even
// under concurrent first use (the serving tier's rank goroutines hit the
// volume simultaneously on frame 1).
func TestMacroCellsCached(t *testing.T) {
	v := Sphere(24, 24, 24, 0.8, 180)
	grids := make([]*MacroGrid, 8)
	var wg sync.WaitGroup
	for i := range grids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			grids[i] = v.MacroCells()
		}(i)
	}
	wg.Wait()
	for i, g := range grids {
		if g != grids[0] {
			t.Fatalf("goroutine %d got a different grid pointer", i)
		}
	}
}

func TestSubvolumeInner(t *testing.T) {
	v := EngineBlock(32, 32, 16)
	box := Box{Lo: [3]int{8, 4, 2}, Hi: [3]int{24, 20, 14}}
	sub, err := Extract(v, box, 2)
	if err != nil {
		t.Fatal(err)
	}
	grid, lo, ghost := sub.Inner()
	if lo != box.Lo || ghost != 2 {
		t.Fatalf("Inner lo=%v ghost=%d, want %v ghost=2", lo, ghost, box.Lo)
	}
	if grid.NX != box.Dx()+4 || grid.NY != box.Dy()+4 || grid.NZ != box.Dz()+4 {
		t.Fatalf("inner grid %dx%dx%d does not match box %v ghost 2", grid.NX, grid.NY, grid.NZ, box)
	}
	// The documented mapping (x − lo) + ghost must reproduce Sample.
	x, y, z := 12.3, 7.9, 5.5
	got := grid.Sample(x-float64(lo[0])+2, y-float64(lo[1])+2, z-float64(lo[2])+2)
	if want := sub.Sample(x, y, z); got != want {
		t.Fatalf("mapped Sample = %v, want %v", got, want)
	}
	if sub.MacroCells() != grid.MacroCells() {
		t.Fatal("Subvolume.MacroCells is not the inner grid's cache")
	}
}
