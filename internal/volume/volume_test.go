package volume

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestAtSetAndOutOfRange(t *testing.T) {
	v := New(4, 5, 6)
	v.Set(1, 2, 3, 42)
	if v.At(1, 2, 3) != 42 {
		t.Error("Set/At round trip failed")
	}
	if v.At(-1, 0, 0) != 0 || v.At(4, 0, 0) != 0 || v.At(0, 5, 0) != 0 || v.At(0, 0, 6) != 0 {
		t.Error("out-of-range reads must be 0")
	}
	v.Set(-1, 0, 0, 9) // must not panic or write
	v.Set(4, 5, 6, 9)
	if v.CountAbove(0) != 1 {
		t.Error("out-of-range writes must be ignored")
	}
}

func TestIndexLayoutXFastest(t *testing.T) {
	v := New(3, 4, 5)
	if v.Index(1, 0, 0) != 1 {
		t.Error("x must be fastest")
	}
	if v.Index(0, 1, 0) != 3 {
		t.Error("y stride must be NX")
	}
	if v.Index(0, 0, 1) != 12 {
		t.Error("z stride must be NX*NY")
	}
}

func TestSampleAtVoxelCenters(t *testing.T) {
	v := New(8, 8, 8)
	v.Set(3, 4, 5, 200)
	got := v.Sample(3.5, 4.5, 5.5)
	want := 200.0 / 255
	if got != want {
		t.Errorf("center sample = %v, want %v", got, want)
	}
	if v.Sample(0.5, 0.5, 0.5) != 0 {
		t.Error("empty voxel center must sample 0")
	}
}

func TestSampleInterpolatesLinearly(t *testing.T) {
	v := New(4, 4, 4)
	v.Set(1, 1, 1, 100)
	v.Set(2, 1, 1, 200)
	// Halfway between the two centers along x.
	got := v.Sample(2.0, 1.5, 1.5)
	want := 150.0 / 255
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("midpoint sample = %v, want %v", got, want)
	}
}

func TestSampleBoundedProperty(t *testing.T) {
	v := New(8, 8, 8)
	r := rand.New(rand.NewSource(1))
	for i := range v.Data {
		v.Data[i] = uint8(r.Intn(256))
	}
	cfg := &quick.Config{MaxCount: 2000, Values: func(vals []reflect.Value, r *rand.Rand) {
		for i := range vals {
			vals[i] = reflect.ValueOf(r.Float64()*12 - 2)
		}
	}}
	err := quick.Check(func(x, y, z float64) bool {
		s := v.Sample(x, y, z)
		return s >= 0 && s <= 1
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestFillClipsToGrid(t *testing.T) {
	v := New(4, 4, 4)
	v.Fill(Box{Lo: [3]int{-2, -2, -2}, Hi: [3]int{2, 2, 2}}, 7)
	if v.CountAbove(0) != 8 {
		t.Errorf("filled %d voxels, want 8", v.CountAbove(0))
	}
}

func TestBoxOperations(t *testing.T) {
	b := Box{Lo: [3]int{0, 0, 0}, Hi: [3]int{10, 20, 30}}
	if b.Dx() != 10 || b.Dy() != 20 || b.Dz() != 30 || b.Volume() != 6000 {
		t.Error("extent math wrong")
	}
	if b.LargestAxis() != 2 {
		t.Error("largest axis must be z")
	}
	lo, hi := b.Split(1, 5)
	if lo.Hi[1] != 5 || hi.Lo[1] != 5 || lo.Volume()+hi.Volume() != b.Volume() {
		t.Error("split must partition the box")
	}
	if !b.Contains(0, 0, 0) || b.Contains(10, 0, 0) {
		t.Error("half-open containment wrong")
	}
	if !b.ContainsVoxel(9, 19, 29) || b.ContainsVoxel(10, 0, 0) {
		t.Error("voxel containment wrong")
	}
	in := b.Intersect(Box{Lo: [3]int{5, 5, 5}, Hi: [3]int{15, 15, 15}})
	if in != (Box{Lo: [3]int{5, 5, 5}, Hi: [3]int{10, 15, 15}}) {
		t.Errorf("intersect = %v", in)
	}
	if !(Box{}).Empty() || b.Empty() {
		t.Error("emptiness wrong")
	}
	disjoint := b.Intersect(Box{Lo: [3]int{50, 0, 0}, Hi: [3]int{60, 1, 1}})
	if !disjoint.Empty() {
		t.Error("disjoint intersect must be empty")
	}
	c := b.Center()
	if c != [3]float64{5, 10, 15} {
		t.Errorf("center = %v", c)
	}
	if len(b.Corners()) != 8 {
		t.Error("corners")
	}
	if b.String() == "" {
		t.Error("String must be non-empty")
	}
}

func TestGenerateDatasets(t *testing.T) {
	for _, name := range []string{DatasetEngine, DatasetHead, DatasetCube} {
		v, err := Generate(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if v.NX != 256 || v.NY != 256 {
			t.Errorf("%s: dims %dx%dx%d", name, v.NX, v.NY, v.NZ)
		}
		if v.CountAbove(0) == 0 {
			t.Errorf("%s: generated an empty volume", name)
		}
	}
	if _, err := Generate("nope"); err == nil {
		t.Error("unknown dataset must error")
	}
}

func TestDatasetDensitySpectrum(t *testing.T) {
	// The phantoms must span the sparsity spectrum the paper relies on:
	// at a high threshold the engine keeps only its liners, the head only
	// its skull, and the cube everything (it is small but solid).
	eng := EngineBlock(128, 128, 55)
	head := HeadPhantom(128, 128, 56)
	cube := SolidCube(128, 128, 55)

	total := 128 * 128 * 55
	engLow := float64(eng.CountAbove(50)) / float64(total)
	engHigh := float64(eng.CountAbove(180)) / float64(total)
	if engHigh >= engLow/2 {
		t.Errorf("engine high-threshold density %.3f not much sparser than low %.3f", engHigh, engLow)
	}
	headBone := float64(head.CountAbove(180)) / float64(total)
	headAll := float64(head.CountAbove(30)) / float64(total)
	if headBone >= headAll/2 {
		t.Errorf("head bone density %.3f not sparser than full %.3f", headBone, headAll)
	}
	cubeFrac := float64(cube.CountAbove(0)) / float64(total)
	if cubeFrac > 0.05 || cubeFrac == 0 {
		t.Errorf("cube density %.4f out of expected small range", cubeFrac)
	}
}

func TestCubeIsCenteredAndSolid(t *testing.T) {
	v := SolidCube(64, 64, 64)
	if v.At(32, 32, 32) != 255 {
		t.Error("cube center must be solid")
	}
	if v.At(1, 1, 1) != 0 || v.At(62, 62, 62) != 0 {
		t.Error("corners must be empty")
	}
}

func TestRampAndChecker(t *testing.T) {
	rmp := Ramp(8, 4, 4, 0)
	if rmp.At(0, 0, 0) >= rmp.At(7, 0, 0) {
		t.Error("ramp must grow along its axis")
	}
	if rmp.CountAbove(0) != 8*4*4 {
		t.Error("ramp must be fully dense")
	}
	chk := Checker(8, 8, 8, 2, 100)
	n := chk.CountAbove(0)
	if n != 8*8*8/2 {
		t.Errorf("checker filled %d voxels, want half", n)
	}
}

func TestSphere(t *testing.T) {
	v := Sphere(32, 32, 32, 0.5, 200)
	if v.At(16, 16, 16) != 200 {
		t.Error("sphere center solid")
	}
	if v.At(0, 0, 0) != 0 {
		t.Error("sphere corner empty")
	}
}

func TestIORoundTrip(t *testing.T) {
	v := EngineBlock(32, 32, 14)
	var buf bytes.Buffer
	if err := v.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NX != v.NX || got.NY != v.NY || got.NZ != v.NZ {
		t.Fatal("dims mismatch")
	}
	if !bytes.Equal(got.Data, v.Data) {
		t.Error("data mismatch after round trip")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a volume at all"))); err == nil {
		t.Error("bad magic must be rejected")
	}
	var buf bytes.Buffer
	v := New(4, 4, 4)
	if err := v.Write(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:20]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated body must be rejected")
	}
}

func TestReadRawDims(t *testing.T) {
	data := make([]byte, 2*3*4)
	for i := range data {
		data[i] = byte(i)
	}
	v, err := ReadRawDims(bytes.NewReader(data), 2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v.At(1, 2, 3) != byte(v.Index(1, 2, 3)) {
		t.Error("raw layout mismatch")
	}
	if _, err := ReadRawDims(bytes.NewReader(data[:5]), 2, 3, 4); err == nil {
		t.Error("short raw input must be rejected")
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := t.TempDir() + "/vol.slsv"
	v := SolidCube(16, 16, 16)
	if err := v.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, v.Data) {
		t.Error("file round trip mismatch")
	}
}

func TestGradientPointsOutward(t *testing.T) {
	v := Sphere(32, 32, 32, 0.8, 255)
	// Just inside the +x surface the gradient must point in -x (value
	// decreases outward → central difference negative along +x).
	g := v.Gradient(28, 16, 16)
	if g[0] >= 0 {
		t.Errorf("gradient x = %v, want negative at +x boundary", g[0])
	}
}
