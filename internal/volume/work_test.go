package volume

import (
	"math/rand"
	"testing"
)

func TestSliceWeightsMatchBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	v := New(12, 10, 8)
	for i := range v.Data {
		v.Data[i] = uint8(r.Intn(256))
	}
	w := VoxelWork{Vol: v, Threshold: 100, Base: 2, Opaque: 7}
	b := Box{Lo: [3]int{2, 1, 3}, Hi: [3]int{10, 9, 7}}
	for axis := 0; axis < 3; axis++ {
		got := w.SliceWeights(b, axis)
		if len(got) != b.Extent(axis) {
			t.Fatalf("axis %d: %d weights for extent %d", axis, len(got), b.Extent(axis))
		}
		for s := 0; s < b.Extent(axis); s++ {
			slice := b
			slice.Lo[axis] = b.Lo[axis] + s
			slice.Hi[axis] = b.Lo[axis] + s + 1
			var want uint64
			for z := slice.Lo[2]; z < slice.Hi[2]; z++ {
				for y := slice.Lo[1]; y < slice.Hi[1]; y++ {
					for x := slice.Lo[0]; x < slice.Hi[0]; x++ {
						want += 2
						if v.At(x, y, z) > 100 {
							want += 7
						}
					}
				}
			}
			if got[s] != want {
				t.Fatalf("axis %d slice %d: got %d want %d", axis, s, got[s], want)
			}
		}
	}
}

func TestVoxelWorkDefaults(t *testing.T) {
	v := New(4, 4, 4)
	v.Set(1, 1, 1, 200)
	w := VoxelWork{Vol: v, Threshold: 100} // Base and Opaque default
	total := w.BoxWork(v.Bounds())
	// 64 voxels at base 1 plus one opaque at +8.
	if total != 64+8 {
		t.Errorf("default work = %d, want 72", total)
	}
}

func TestBoxWorkEqualsSliceSum(t *testing.T) {
	v := EngineBlock(16, 16, 8)
	w := VoxelWork{Vol: v, Threshold: 50}
	b := Box{Lo: [3]int{2, 2, 1}, Hi: [3]int{14, 14, 7}}
	var sum uint64
	for _, s := range w.SliceWeights(b, 1) {
		sum += s
	}
	if got := w.BoxWork(b); got != sum {
		t.Errorf("BoxWork %d != slice sum %d", got, sum)
	}
}

func TestSliceWeightsClipsToGrid(t *testing.T) {
	v := New(4, 4, 4)
	w := VoxelWork{Vol: v, Threshold: 0, Base: 1, Opaque: 0}
	over := Box{Lo: [3]int{-2, 0, 0}, Hi: [3]int{6, 4, 4}}
	got := w.SliceWeights(over, 0)
	if len(got) != 4 { // clipped to the grid's 4 slices
		t.Fatalf("%d weights after clipping", len(got))
	}
	for _, g := range got {
		if g != 16 {
			t.Fatalf("slice weight %d, want 16", g)
		}
	}
}
