package volume

import (
	"fmt"
	"math"
)

// The paper evaluates on four CT samples: Engine_low and Engine_high
// (256x256x110 — the well-known GE engine-block scan under two transfer
// functions), Head (256x256x113 CT head), and Cube (256x256x110 synthetic
// cube). The original scans are not redistributable, so this file builds
// procedural phantoms of identical dimensions whose screen-space
// sparsity structure spans the same spectrum: a dense blocky solid with
// internal structure (engine), a layered shell object (head), and a
// small compact solid (cube). The compositing methods only observe the
// blank/non-blank structure of the rendered subimages, which these
// phantoms reproduce.

// Dataset names accepted by Generate.
const (
	DatasetEngine = "engine"
	DatasetHead   = "head"
	DatasetCube   = "cube"
)

// textureNoise perturbs non-empty material values like CT acquisition
// noise does (deterministically, so every process generates an identical
// volume). Real scans almost never have exactly repeating sample values,
// which is the premise of the paper's §3.3 argument against value-based
// run-length encoding; noiseless phantoms would hide it.
func textureNoise(v *Volume, amplitude int) {
	for z := 0; z < v.NZ; z++ {
		for y := 0; y < v.NY; y++ {
			for x := 0; x < v.NX; x++ {
				s := v.At(x, y, z)
				if s == 0 {
					continue
				}
				h := uint32(x)*2654435761 ^ uint32(y)*2246822519 ^ uint32(z)*3266489917
				h ^= h >> 13
				h *= 1274126177
				h ^= h >> 16
				d := int(h%uint32(2*amplitude+1)) - amplitude
				n := int(s) + d
				if n < 1 {
					n = 1
				}
				if n > 255 {
					n = 255
				}
				v.Set(x, y, z, uint8(n))
			}
		}
	}
}

// Generate builds the named dataset at the paper's native dimensions.
func Generate(name string) (*Volume, error) {
	switch name {
	case DatasetEngine:
		return EngineBlock(256, 256, 110), nil
	case DatasetHead:
		return HeadPhantom(256, 256, 113), nil
	case DatasetCube:
		return SolidCube(256, 256, 110), nil
	default:
		return nil, fmt.Errorf("volume: unknown dataset %q (want %s, %s or %s)",
			name, DatasetEngine, DatasetHead, DatasetCube)
	}
}

// EngineBlock builds an engine-block-like phantom: a rectangular casting
// of medium density with four high-density cylinder liners, hollow bores,
// a head slab, and bolt bosses. Low-threshold transfer functions see the
// whole casting (dense images); high-threshold ones see only the liners
// and bosses (sparse images), mirroring Engine_low vs Engine_high.
func EngineBlock(nx, ny, nz int) *Volume {
	v := New(nx, ny, nz)
	fx, fy, fz := float64(nx), float64(ny), float64(nz)

	const (
		casting = 95  // aluminium block
		liner   = 210 // steel cylinder walls
		boss    = 235 // bolts / bosses
	)

	// Main casting: a box occupying the middle of the grid.
	block := Box{
		Lo: [3]int{int(0.14 * fx), int(0.22 * fy), int(0.12 * fz)},
		Hi: [3]int{int(0.86 * fx), int(0.78 * fy), int(0.72 * fz)},
	}
	v.Fill(block, casting)

	// Head slab on top, slightly wider.
	slab := Box{
		Lo: [3]int{int(0.10 * fx), int(0.18 * fy), int(0.72 * fz)},
		Hi: [3]int{int(0.90 * fx), int(0.82 * fy), int(0.84 * fz)},
	}
	v.Fill(slab, casting)

	// Four cylinders along z: steel liner with hollow bore.
	rOuter := 0.085 * fx
	rInner := 0.060 * fx
	zLo, zHi := int(0.16*fz), int(0.84*fz)
	centers := [][2]float64{
		{0.30 * fx, 0.38 * fy}, {0.70 * fx, 0.38 * fy},
		{0.30 * fx, 0.62 * fy}, {0.70 * fx, 0.62 * fy},
	}
	for z := zLo; z < zHi; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				px, py := float64(x)+0.5, float64(y)+0.5
				for _, c := range centers {
					d := math.Hypot(px-c[0], py-c[1])
					switch {
					case d < rInner:
						v.Set(x, y, z, 0) // bore: hollow
					case d < rOuter:
						v.Set(x, y, z, liner)
					}
				}
			}
		}
	}

	// Bolt bosses: small dense spheres at the corners of the head slab.
	rBoss := 0.035 * fx
	for _, cx := range []float64{0.18 * fx, 0.82 * fx} {
		for _, cy := range []float64{0.26 * fy, 0.74 * fy} {
			fillSphere(v, cx, cy, 0.78*fz, rBoss, boss)
		}
	}
	textureNoise(v, 6)
	return v
}

// HeadPhantom builds a layered head-like phantom: skin, a high-density
// skull shell, brain tissue, and two low-density ventricles, all
// ellipsoids. A skin-level threshold yields a dense blob; a bone-level
// threshold yields a sparse shell.
func HeadPhantom(nx, ny, nz int) *Volume {
	v := New(nx, ny, nz)
	cx, cy, cz := float64(nx)/2, float64(ny)/2, float64(nz)/2
	// Semi-axes: the head is taller (y) than wide and fills most of z.
	ax, ay, az := 0.34*float64(nx), 0.44*float64(ny), 0.46*float64(nz)

	const (
		skin  = 55
		skull = 215
		brain = 110
		csf   = 35
	)

	ell := func(x, y, z, sx, sy, sz float64) float64 {
		dx, dy, dz := (x-cx)/sx, (y-cy)/sy, (z-cz)/sz
		return dx*dx + dy*dy + dz*dz
	}
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				px, py, pz := float64(x)+0.5, float64(y)+0.5, float64(z)+0.5
				r := ell(px, py, pz, ax, ay, az)
				switch {
				case r > 1:
					// outside the head: air
				case r > 0.90:
					v.Set(x, y, z, skin)
				case r > 0.74:
					v.Set(x, y, z, skull)
				default:
					v.Set(x, y, z, brain)
				}
			}
		}
	}
	// Ventricles: two small low-density ellipsoids inside the brain.
	for _, side := range []float64{-1, 1} {
		vcx := cx + side*0.10*float64(nx)
		fillEllipsoid(v, vcx, cy, cz+0.05*float64(nz),
			0.05*float64(nx), 0.14*float64(ny), 0.10*float64(nz), csf)
	}
	textureNoise(v, 6)
	return v
}

// SolidCube builds the paper's synthetic Cube sample: a single solid,
// fully opaque cube centered in the grid, covering roughly a quarter of
// each dimension — a small compact object whose subimages are extremely
// sparse, the best case for bounding rectangles and RLE.
func SolidCube(nx, ny, nz int) *Volume {
	v := New(nx, ny, nz)
	side := min3(nx, ny, nz) / 4
	c := Box{
		Lo: [3]int{(nx - side) / 2, (ny - side) / 2, (nz - side) / 2},
	}
	c.Hi = [3]int{c.Lo[0] + side, c.Lo[1] + side, c.Lo[2] + side}
	v.Fill(c, 255)
	return v
}

// Sphere builds a solid sphere phantom (test helper and fifth workload).
func Sphere(nx, ny, nz int, radiusFrac float64, value uint8) *Volume {
	v := New(nx, ny, nz)
	r := radiusFrac * float64(min3(nx, ny, nz)) / 2
	fillSphere(v, float64(nx)/2, float64(ny)/2, float64(nz)/2, r, value)
	return v
}

// Ramp builds a volume whose value grows linearly along the chosen axis —
// a fully dense, smoothly varying field useful for worst-case (dense)
// compositing studies and renderer tests.
func Ramp(nx, ny, nz, axis int) *Volume {
	v := New(nx, ny, nz)
	n := [3]int{nx, ny, nz}[axis]
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				pos := [3]int{x, y, z}[axis]
				v.Set(x, y, z, uint8(1+pos*254/max(1, n-1)))
			}
		}
	}
	return v
}

// Checker builds an alternating blank/solid block pattern — the
// adversarial case for run-length encoding (many short runs).
func Checker(nx, ny, nz, cell int, value uint8) *Volume {
	v := New(nx, ny, nz)
	if cell < 1 {
		cell = 1
	}
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				if (x/cell+y/cell+z/cell)%2 == 0 {
					v.Set(x, y, z, value)
				}
			}
		}
	}
	return v
}

func fillSphere(v *Volume, cx, cy, cz, r float64, value uint8) {
	fillEllipsoid(v, cx, cy, cz, r, r, r, value)
}

func fillEllipsoid(v *Volume, cx, cy, cz, rx, ry, rz float64, value uint8) {
	x0, x1 := int(cx-rx)-1, int(cx+rx)+1
	y0, y1 := int(cy-ry)-1, int(cy+ry)+1
	z0, z1 := int(cz-rz)-1, int(cz+rz)+1
	for z := z0; z <= z1; z++ {
		for y := y0; y <= y1; y++ {
			for x := x0; x <= x1; x++ {
				dx := (float64(x) + 0.5 - cx) / rx
				dy := (float64(y) + 0.5 - cy) / ry
				dz := (float64(z) + 0.5 - cz) / rz
				if dx*dx+dy*dy+dz*dz <= 1 {
					v.Set(x, y, z, value)
				}
			}
		}
	}
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
