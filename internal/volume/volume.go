// Package volume provides the volumetric data substrate: a uint8 scalar
// grid with trilinear sampling, voxel-space boxes, raw-file I/O, and
// procedural generators reproducing the screen-space character of the
// paper's four CT test samples (Engine_low, Engine_high, Head, Cube).
package volume

import (
	"fmt"
	"math"
	"sync"
)

// Volume is a regular scalar grid of 8-bit samples, x-fastest layout.
// Voxel (x, y, z) sits at index (z*NY+y)*NX+x. World coordinates coincide
// with voxel coordinates: the volume occupies [0,NX)x[0,NY)x[0,NZ).
type Volume struct {
	NX, NY, NZ int
	Data       []uint8

	// Lazily built macro-cell min/max summary (see MacroCells). Lives
	// on the volume so every renderer sharing the immutable dataset —
	// the harness cache, the serving tier's resident worlds — shares
	// one build.
	macroOnce sync.Once
	macro     *MacroGrid
}

// New allocates a zeroed volume of the given dimensions.
func New(nx, ny, nz int) *Volume {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		panic(fmt.Sprintf("volume: invalid dimensions %dx%dx%d", nx, ny, nz))
	}
	return &Volume{NX: nx, NY: ny, NZ: nz, Data: make([]uint8, nx*ny*nz)}
}

// Index returns the linear index of voxel (x, y, z), which must be in
// range.
func (v *Volume) Index(x, y, z int) int { return (z*v.NY+y)*v.NX + x }

// At returns the sample at (x, y, z); coordinates outside the grid read
// as 0 (empty space), which keeps sampling loops free of bounds branches.
func (v *Volume) At(x, y, z int) uint8 {
	if x < 0 || y < 0 || z < 0 || x >= v.NX || y >= v.NY || z >= v.NZ {
		return 0
	}
	return v.Data[v.Index(x, y, z)]
}

// Set stores value at (x, y, z); out-of-range coordinates are ignored,
// letting generators draw shapes that overlap the boundary.
func (v *Volume) Set(x, y, z int, value uint8) {
	if x < 0 || y < 0 || z < 0 || x >= v.NX || y >= v.NY || z >= v.NZ {
		return
	}
	v.Data[v.Index(x, y, z)] = value
}

// Bounds returns the voxel-space box covering the whole volume.
func (v *Volume) Bounds() Box {
	return Box{Hi: [3]int{v.NX, v.NY, v.NZ}}
}

// Sample returns the trilinearly interpolated scalar at the continuous
// position (x, y, z), normalized to [0, 1]. Sample positions are
// cell-centered: voxel (i,j,k) is centered at (i+0.5, j+0.5, k+0.5).
// Positions outside the grid interpolate against zero.
func (v *Volume) Sample(x, y, z float64) float64 {
	x -= 0.5
	y -= 0.5
	z -= 0.5
	x0, y0, z0 := int(math.Floor(x)), int(math.Floor(y)), int(math.Floor(z))
	fx, fy, fz := x-float64(x0), y-float64(y0), z-float64(z0)

	c000 := float64(v.At(x0, y0, z0))
	c100 := float64(v.At(x0+1, y0, z0))
	c010 := float64(v.At(x0, y0+1, z0))
	c110 := float64(v.At(x0+1, y0+1, z0))
	c001 := float64(v.At(x0, y0, z0+1))
	c101 := float64(v.At(x0+1, y0, z0+1))
	c011 := float64(v.At(x0, y0+1, z0+1))
	c111 := float64(v.At(x0+1, y0+1, z0+1))

	c00 := c000 + fx*(c100-c000)
	c10 := c010 + fx*(c110-c010)
	c01 := c001 + fx*(c101-c001)
	c11 := c011 + fx*(c111-c011)
	c0 := c00 + fy*(c10-c00)
	c1 := c01 + fy*(c11-c01)
	return (c0 + fz*(c1-c0)) / 255
}

// Gradient returns the central-difference gradient of the normalized
// scalar field at a continuous position, used for optional shading.
func (v *Volume) Gradient(x, y, z float64) [3]float64 {
	const h = 1.0
	return [3]float64{
		(v.Sample(x+h, y, z) - v.Sample(x-h, y, z)) / (2 * h),
		(v.Sample(x, y+h, z) - v.Sample(x, y-h, z)) / (2 * h),
		(v.Sample(x, y, z+h) - v.Sample(x, y, z-h)) / (2 * h),
	}
}

// Fill sets every voxel inside box (clipped to the grid) to value.
func (v *Volume) Fill(b Box, value uint8) {
	b = b.Intersect(v.Bounds())
	for z := b.Lo[2]; z < b.Hi[2]; z++ {
		for y := b.Lo[1]; y < b.Hi[1]; y++ {
			base := v.Index(b.Lo[0], y, z)
			for i := 0; i < b.Dx(); i++ {
				v.Data[base+i] = value
			}
		}
	}
}

// CountAbove returns the number of voxels with value strictly above
// threshold — a quick density probe used by tests and dataset docs.
func (v *Volume) CountAbove(threshold uint8) int {
	n := 0
	for _, s := range v.Data {
		if s > threshold {
			n++
		}
	}
	return n
}

// Box is a half-open axis-aligned box in voxel space.
type Box struct {
	Lo, Hi [3]int
}

// Dx, Dy, Dz return the box extents.
func (b Box) Dx() int { return b.Hi[0] - b.Lo[0] }
func (b Box) Dy() int { return b.Hi[1] - b.Lo[1] }
func (b Box) Dz() int { return b.Hi[2] - b.Lo[2] }

// Extent returns the size along axis.
func (b Box) Extent(axis int) int { return b.Hi[axis] - b.Lo[axis] }

// Volume returns the number of voxels in the box, zero when empty.
func (b Box) Volume() int {
	if b.Empty() {
		return 0
	}
	return b.Dx() * b.Dy() * b.Dz()
}

// Empty reports whether the box contains no voxels.
func (b Box) Empty() bool {
	return b.Hi[0] <= b.Lo[0] || b.Hi[1] <= b.Lo[1] || b.Hi[2] <= b.Lo[2]
}

// Contains reports whether the continuous point (x, y, z) lies inside the
// half-open box. Half-openness assigns every point to exactly one box of
// a partition, which is what makes partitioned rendering exact.
func (b Box) Contains(x, y, z float64) bool {
	return x >= float64(b.Lo[0]) && x < float64(b.Hi[0]) &&
		y >= float64(b.Lo[1]) && y < float64(b.Hi[1]) &&
		z >= float64(b.Lo[2]) && z < float64(b.Hi[2])
}

// ContainsVoxel reports whether the voxel (x, y, z) lies inside the box.
func (b Box) ContainsVoxel(x, y, z int) bool {
	return x >= b.Lo[0] && x < b.Hi[0] &&
		y >= b.Lo[1] && y < b.Hi[1] &&
		z >= b.Lo[2] && z < b.Hi[2]
}

// Intersect returns the overlap of two boxes.
func (b Box) Intersect(o Box) Box {
	for a := 0; a < 3; a++ {
		if o.Lo[a] > b.Lo[a] {
			b.Lo[a] = o.Lo[a]
		}
		if o.Hi[a] < b.Hi[a] {
			b.Hi[a] = o.Hi[a]
		}
	}
	if b.Empty() {
		return Box{}
	}
	return b
}

// Split cuts the box at pos along axis into the low part [Lo, pos) and
// the high part [pos, Hi).
func (b Box) Split(axis, pos int) (lo, hi Box) {
	lo, hi = b, b
	lo.Hi[axis] = pos
	hi.Lo[axis] = pos
	return lo, hi
}

// LargestAxis returns the axis with the greatest extent (ties broken
// toward x, then y).
func (b Box) LargestAxis() int {
	best := 0
	for a := 1; a < 3; a++ {
		if b.Extent(a) > b.Extent(best) {
			best = a
		}
	}
	return best
}

// Center returns the box center in continuous coordinates.
func (b Box) Center() [3]float64 {
	return [3]float64{
		float64(b.Lo[0]+b.Hi[0]) / 2,
		float64(b.Lo[1]+b.Hi[1]) / 2,
		float64(b.Lo[2]+b.Hi[2]) / 2,
	}
}

// Corners returns the eight corner points of the box.
func (b Box) Corners() [8][3]float64 {
	var out [8][3]float64
	for i := 0; i < 8; i++ {
		for a := 0; a < 3; a++ {
			if i>>a&1 == 0 {
				out[i][a] = float64(b.Lo[a])
			} else {
				out[i][a] = float64(b.Hi[a])
			}
		}
	}
	return out
}

// String implements fmt.Stringer.
func (b Box) String() string {
	return fmt.Sprintf("[%d,%d)x[%d,%d)x[%d,%d)",
		b.Lo[0], b.Hi[0], b.Lo[1], b.Hi[1], b.Lo[2], b.Hi[2])
}
