package volume

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestExtractValidation(t *testing.T) {
	v := New(8, 8, 8)
	if _, err := Extract(v, Box{}, 1); err == nil {
		t.Error("empty box must be rejected")
	}
	if _, err := Extract(v, v.Bounds(), -1); err == nil {
		t.Error("negative ghost must be rejected")
	}
}

func TestSubvolumeAtMatchesParent(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	v := New(16, 16, 16)
	for i := range v.Data {
		v.Data[i] = uint8(r.Intn(256))
	}
	box := Box{Lo: [3]int{4, 6, 2}, Hi: [3]int{12, 14, 10}}
	sub, err := Extract(v, box, 1)
	if err != nil {
		t.Fatal(err)
	}
	for z := box.Lo[2] - 1; z <= box.Hi[2]; z++ {
		for y := box.Lo[1] - 1; y <= box.Hi[1]; y++ {
			for x := box.Lo[0] - 1; x <= box.Hi[0]; x++ {
				if sub.At(x, y, z) != v.At(x, y, z) {
					t.Fatalf("voxel (%d,%d,%d): sub %d, parent %d",
						x, y, z, sub.At(x, y, z), v.At(x, y, z))
				}
			}
		}
	}
	// Outside the stored region (beyond ghost) reads zero.
	if sub.At(0, 0, 0) != 0 {
		t.Error("far outside must read 0")
	}
}

// With ghost >= 1, sampling inside the box matches the parent volume to
// within an ulp (the coordinate translation is float arithmetic) — the
// property partitioned rendering relies on.
func TestSubvolumeSampleExact(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	v := New(16, 16, 16)
	for i := range v.Data {
		v.Data[i] = uint8(r.Intn(256))
	}
	box := Box{Lo: [3]int{3, 5, 7}, Hi: [3]int{11, 13, 15}}
	sub, err := Extract(v, box, 1)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3000; trial++ {
		x := float64(box.Lo[0]) + r.Float64()*float64(box.Dx())
		y := float64(box.Lo[1]) + r.Float64()*float64(box.Dy())
		z := float64(box.Lo[2]) + r.Float64()*float64(box.Dz())
		got, want := sub.Sample(x, y, z), v.Sample(x, y, z)
		if diff := got - want; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("sample (%v,%v,%v): sub %v, parent %v", x, y, z, got, want)
		}
	}
}

// With ghost >= 2, gradients inside the box match the parent's to within
// an ulp.
func TestSubvolumeGradientExact(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	v := New(16, 16, 16)
	for i := range v.Data {
		v.Data[i] = uint8(r.Intn(256))
	}
	box := Box{Lo: [3]int{4, 4, 4}, Hi: [3]int{12, 12, 12}}
	sub, err := Extract(v, box, 2)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 500; trial++ {
		x := float64(box.Lo[0]) + r.Float64()*float64(box.Dx())
		y := float64(box.Lo[1]) + r.Float64()*float64(box.Dy())
		z := float64(box.Lo[2]) + r.Float64()*float64(box.Dz())
		got, want := sub.Gradient(x, y, z), v.Gradient(x, y, z)
		for a := 0; a < 3; a++ {
			if diff := got[a] - want[a]; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("gradient (%v,%v,%v): sub %v, parent %v", x, y, z, got, want)
			}
		}
	}
}

func TestSubvolumeSerializeRoundTrip(t *testing.T) {
	v := EngineBlock(24, 24, 12)
	box := Box{Lo: [3]int{6, 6, 3}, Hi: [3]int{18, 18, 9}}
	sub, err := Extract(v, box, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sub.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSubvolume(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Box != sub.Box || got.Ghost != sub.Ghost {
		t.Fatalf("header mismatch: %+v vs %+v", got.Box, sub.Box)
	}
	for z := box.Lo[2]; z < box.Hi[2]; z++ {
		for y := box.Lo[1]; y < box.Hi[1]; y++ {
			for x := box.Lo[0]; x < box.Hi[0]; x++ {
				if got.At(x, y, z) != sub.At(x, y, z) {
					t.Fatalf("voxel (%d,%d,%d) lost in round trip", x, y, z)
				}
			}
		}
	}
}

func TestReadSubvolumeRejectsCorruption(t *testing.T) {
	v := SolidCube(16, 16, 16)
	sub, err := Extract(v, Box{Lo: [3]int{4, 4, 4}, Hi: [3]int{12, 12, 12}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sub.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Truncations anywhere must be detected.
	for _, cut := range []int{0, 5, 27, 30, len(good) / 2} {
		if _, err := ReadSubvolume(bytes.NewReader(good[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// An inverted box must be rejected.
	bad := append([]byte(nil), good...)
	bad[0], bad[12] = bad[12], bad[0] // swap Lo[0] and Hi[0]
	if _, err := ReadSubvolume(bytes.NewReader(bad)); err == nil {
		t.Error("inverted box accepted")
	}
	// A grid whose dimensions disagree with the box must be rejected.
	bad2 := append([]byte(nil), good...)
	bad2[24] = 0 // ghost = 0 while the grid was built with ghost 1
	if _, err := ReadSubvolume(bytes.NewReader(bad2)); err == nil {
		t.Error("ghost/grid mismatch accepted")
	}
}

func TestExtractClipsGhostAtVolumeEdge(t *testing.T) {
	v := New(8, 8, 8)
	v.Fill(v.Bounds(), 7)
	sub, err := Extract(v, Box{Hi: [3]int{4, 4, 4}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Ghost cells beyond the volume read zero, inside read the fill.
	if sub.At(-1, 0, 0) != 0 {
		t.Error("ghost outside the parent volume must be 0")
	}
	if sub.At(4, 0, 0) != 7 {
		t.Error("ghost inside the parent volume must carry its value")
	}
}
