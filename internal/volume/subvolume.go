package volume

import (
	"fmt"
	"io"
)

// Subvolume is the unit of the partitioning phase: the voxels of one
// rank's box plus a layer of ghost voxels, so the rank can trilinearly
// interpolate (ghost >= 1) or shade (ghost >= 2) near its boundary
// without touching remote data. Sampling positions are in the original
// volume's global coordinates.
type Subvolume struct {
	Box   Box // the owned region, in global voxel coordinates
	Ghost int
	grid  *Volume // extent of Box plus Ghost on every side
}

// Extract copies box (plus ghost cells, clipped at the volume boundary
// where out-of-range voxels are zero anyway) out of v.
func Extract(v *Volume, box Box, ghost int) (*Subvolume, error) {
	if box.Empty() {
		return nil, fmt.Errorf("volume: extracting empty box %v", box)
	}
	if ghost < 0 {
		return nil, fmt.Errorf("volume: negative ghost width %d", ghost)
	}
	s := &Subvolume{
		Box:   box,
		Ghost: ghost,
		grid:  New(box.Dx()+2*ghost, box.Dy()+2*ghost, box.Dz()+2*ghost),
	}
	for z := 0; z < s.grid.NZ; z++ {
		gz := box.Lo[2] - ghost + z
		for y := 0; y < s.grid.NY; y++ {
			gy := box.Lo[1] - ghost + y
			for x := 0; x < s.grid.NX; x++ {
				s.grid.Set(x, y, z, v.At(box.Lo[0]-ghost+x, gy, gz))
			}
		}
	}
	return s, nil
}

// At returns the voxel at global coordinates, zero outside the stored
// region.
func (s *Subvolume) At(x, y, z int) uint8 {
	return s.grid.At(x-s.Box.Lo[0]+s.Ghost, y-s.Box.Lo[1]+s.Ghost, z-s.Box.Lo[2]+s.Ghost)
}

// Sample trilinearly interpolates at a global continuous position. For
// positions within Box the result is bit-identical to sampling the
// original volume as long as Ghost >= 1.
func (s *Subvolume) Sample(x, y, z float64) float64 {
	g := float64(s.Ghost)
	return s.grid.Sample(
		x-float64(s.Box.Lo[0])+g,
		y-float64(s.Box.Lo[1])+g,
		z-float64(s.Box.Lo[2])+g)
}

// Gradient returns the central-difference gradient at a global position;
// it matches the full volume's gradient inside Box when Ghost >= 2.
func (s *Subvolume) Gradient(x, y, z float64) [3]float64 {
	g := float64(s.Ghost)
	return s.grid.Gradient(
		x-float64(s.Box.Lo[0])+g,
		y-float64(s.Box.Lo[1])+g,
		z-float64(s.Box.Lo[2])+g)
}

// Serialize writes the subvolume (box, ghost, grid) for the scatter
// step of the partitioning phase.
func (s *Subvolume) Serialize(w io.Writer) error {
	hdr := make([]byte, 0, 7*4)
	for _, v := range []int{
		s.Box.Lo[0], s.Box.Lo[1], s.Box.Lo[2],
		s.Box.Hi[0], s.Box.Hi[1], s.Box.Hi[2], s.Ghost,
	} {
		hdr = append(hdr, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	return s.grid.Write(w)
}

// ReadSubvolume parses a subvolume written with Serialize.
func ReadSubvolume(r io.Reader) (*Subvolume, error) {
	hdr := make([]byte, 7*4)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("volume: reading subvolume header: %w", err)
	}
	vals := make([]int, 7)
	for i := range vals {
		off := i * 4
		vals[i] = int(int32(uint32(hdr[off]) | uint32(hdr[off+1])<<8 |
			uint32(hdr[off+2])<<16 | uint32(hdr[off+3])<<24))
	}
	s := &Subvolume{
		Box:   Box{Lo: [3]int{vals[0], vals[1], vals[2]}, Hi: [3]int{vals[3], vals[4], vals[5]}},
		Ghost: vals[6],
	}
	if s.Box.Empty() || s.Ghost < 0 {
		return nil, fmt.Errorf("volume: corrupt subvolume header: box %v ghost %d", s.Box, s.Ghost)
	}
	grid, err := Read(r)
	if err != nil {
		return nil, err
	}
	want := [3]int{s.Box.Dx() + 2*s.Ghost, s.Box.Dy() + 2*s.Ghost, s.Box.Dz() + 2*s.Ghost}
	if grid.NX != want[0] || grid.NY != want[1] || grid.NZ != want[2] {
		return nil, fmt.Errorf("volume: subvolume grid %dx%dx%d does not match box %v ghost %d",
			grid.NX, grid.NY, grid.NZ, s.Box, s.Ghost)
	}
	s.grid = grid
	return s, nil
}
