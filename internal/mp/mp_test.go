package mp

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

func testOpts() Options { return Options{RecvTimeout: 10 * time.Second} }

func TestSendRecvBasic(t *testing.T) {
	err := Run(2, testOpts(), func(c Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 7, []byte("hello"))
		}
		msg, err := c.Recv(0, 7)
		if err != nil {
			return err
		}
		if string(msg) != "hello" {
			return fmt.Errorf("got %q", msg)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	err := Run(2, testOpts(), func(c Comm) error {
		if c.Rank() == 0 {
			buf := []byte("original")
			if err := c.Send(1, 0, buf); err != nil {
				return err
			}
			copy(buf, "CLOBBER!") // sender reuses its buffer immediately
			return c.Barrier()
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		msg, err := c.Recv(0, 0)
		if err != nil {
			return err
		}
		if string(msg) != "original" {
			return fmt.Errorf("message aliased sender buffer: %q", msg)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFIFOPerChannel(t *testing.T) {
	const n = 100
	err := Run(2, testOpts(), func(c Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				if err := c.Send(1, 3, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < n; i++ {
			msg, err := c.Recv(0, 3)
			if err != nil {
				return err
			}
			if len(msg) != 1 || msg[0] != byte(i) {
				return fmt.Errorf("message %d out of order: %v", i, msg)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagsSeparateChannels(t *testing.T) {
	err := Run(2, testOpts(), func(c Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 1, []byte("tag1")); err != nil {
				return err
			}
			return c.Send(1, 2, []byte("tag2"))
		}
		// Receive in the opposite order of sending.
		m2, err := c.Recv(0, 2)
		if err != nil {
			return err
		}
		m1, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		if string(m1) != "tag1" || string(m2) != "tag2" {
			return fmt.Errorf("tag mixup: %q %q", m1, m2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvPairwiseExchange(t *testing.T) {
	for _, p := range []int{2, 4, 8} {
		err := Run(p, testOpts(), func(c Comm) error {
			peer := c.Rank() ^ 1
			out := []byte(fmt.Sprintf("from %d", c.Rank()))
			in, err := c.Sendrecv(peer, 5, out)
			if err != nil {
				return err
			}
			want := fmt.Sprintf("from %d", peer)
			if string(in) != want {
				return fmt.Errorf("got %q want %q", in, want)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
	}
}

func TestRecvTimeoutDetectsDeadlock(t *testing.T) {
	start := time.Now()
	err := Run(2, Options{RecvTimeout: 100 * time.Millisecond}, func(c Comm) error {
		if c.Rank() == 0 {
			_, err := c.Recv(1, 9) // never sent
			return err
		}
		return nil
	})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("timeout took far too long")
	}
}

func TestInvalidPeerAndTag(t *testing.T) {
	err := Run(2, testOpts(), func(c Comm) error {
		if err := c.Send(5, 0, nil); err == nil {
			return errors.New("send to invalid rank must fail")
		}
		if err := c.Send(0, -1, nil); err == nil {
			return errors.New("negative tag must fail")
		}
		if err := c.Send(0, TagLimit, nil); err == nil {
			return errors.New("tag at limit must fail")
		}
		if _, err := c.Recv(-1, 0); err == nil {
			return errors.New("recv from invalid rank must fail")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8, 16} {
		var before, after atomic.Int32
		err := Run(p, testOpts(), func(c Comm) error {
			before.Add(1)
			if err := c.Barrier(); err != nil {
				return err
			}
			if got := before.Load(); got != int32(p) {
				return fmt.Errorf("rank %d passed barrier with only %d/%d arrived", c.Rank(), got, p)
			}
			after.Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if after.Load() != int32(p) {
			t.Fatalf("P=%d: %d ranks passed", p, after.Load())
		}
	}
}

func TestBcastAllRootsAllSizes(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7, 8, 16} {
		for root := 0; root < p; root++ {
			payload := []byte(fmt.Sprintf("root=%d data", root))
			err := Run(p, testOpts(), func(c Comm) error {
				var in []byte
				if c.Rank() == root {
					in = payload
				}
				out, err := c.Bcast(root, in)
				if err != nil {
					return err
				}
				if !bytes.Equal(out, payload) {
					return fmt.Errorf("rank %d got %q", c.Rank(), out)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("P=%d root=%d: %v", p, root, err)
			}
		}
	}
}

func TestGatherOrdersByRank(t *testing.T) {
	for _, p := range []int{1, 2, 5, 8} {
		for root := 0; root < p; root += 3 {
			err := Run(p, testOpts(), func(c Comm) error {
				payload := []byte{byte(c.Rank()), byte(c.Rank() * 2)}
				got, err := c.Gather(root, payload)
				if err != nil {
					return err
				}
				if c.Rank() != root {
					if got != nil {
						return errors.New("non-root must receive nil")
					}
					return nil
				}
				for r := 0; r < p; r++ {
					want := []byte{byte(r), byte(r * 2)}
					if !bytes.Equal(got[r], want) {
						return fmt.Errorf("slot %d = %v, want %v", r, got[r], want)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("P=%d root=%d: %v", p, root, err)
			}
		}
	}
}

func TestScatterDistributes(t *testing.T) {
	const p = 6
	root := 2
	err := Run(p, testOpts(), func(c Comm) error {
		var in [][]byte
		if c.Rank() == root {
			in = make([][]byte, p)
			for i := range in {
				in[i] = []byte{byte(i * 10)}
			}
		}
		out, err := c.Scatter(root, in)
		if err != nil {
			return err
		}
		if len(out) != 1 || out[0] != byte(c.Rank()*10) {
			return fmt.Errorf("rank %d got %v", c.Rank(), out)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceOps(t *testing.T) {
	cases := []struct {
		op   ReduceOp
		want func(p int) float64
	}{
		{OpSum, func(p int) float64 { return float64(p*(p-1)) / 2 }},
		{OpMax, func(p int) float64 { return float64(p - 1) }},
		{OpMin, func(p int) float64 { return 0 }},
	}
	for _, p := range []int{1, 2, 3, 8, 13} {
		for _, tc := range cases {
			err := Run(p, testOpts(), func(c Comm) error {
				got, err := c.Reduce(0, float64(c.Rank()), tc.op)
				if err != nil {
					return err
				}
				if c.Rank() == 0 && got != tc.want(p) {
					return fmt.Errorf("%v over %d ranks = %v, want %v", tc.op, p, got, tc.want(p))
				}
				return nil
			})
			if err != nil {
				t.Fatalf("P=%d op=%v: %v", p, tc.op, err)
			}
		}
	}
}

func TestAllReduceEverywhere(t *testing.T) {
	for _, p := range []int{1, 2, 5, 16} {
		err := Run(p, testOpts(), func(c Comm) error {
			got, err := c.AllReduce(float64(c.Rank()+1), OpMax)
			if err != nil {
				return err
			}
			if got != float64(p) {
				return fmt.Errorf("rank %d got %v, want %v", c.Rank(), got, float64(p))
			}
			return nil
		})
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
	}
}

func TestRunCollect(t *testing.T) {
	vals, err := RunCollect(4, testOpts(), func(c Comm) (int, error) {
		return c.Rank() * c.Rank(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, v := range vals {
		if v != r*r {
			t.Errorf("slot %d = %d", r, v)
		}
	}
}

func TestRunPropagatesError(t *testing.T) {
	sentinel := errors.New("rank failure")
	err := Run(3, testOpts(), func(c Comm) error {
		if c.Rank() == 1 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunRepanicsOnRankPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected re-panic from rank panic")
		}
	}()
	_ = Run(3, testOpts(), func(c Comm) error {
		if c.Rank() == 2 {
			panic("boom")
		}
		// Other ranks block; the panicking rank must release them.
		_, err := c.Recv((c.Rank()+1)%3, 0)
		return err
	})
}

func TestMessageLogCountsAlgorithmTrafficOnly(t *testing.T) {
	logsBytes := make([]int, 2)
	logsMsgs := make([]int, 2)
	err := Run(2, testOpts(), func(c Comm) error {
		c.SetStage("stage1")
		if _, err := c.Sendrecv(c.Rank()^1, 0, make([]byte, 100)); err != nil {
			return err
		}
		// Collectives must not pollute the log.
		if err := c.Barrier(); err != nil {
			return err
		}
		if _, err := c.AllReduce(1, OpSum); err != nil {
			return err
		}
		c.SetStage("stage2")
		if _, err := c.Sendrecv(c.Rank()^1, 0, make([]byte, 40)); err != nil {
			return err
		}
		logsBytes[c.Rank()] = c.Log().BytesReceived("")
		logsMsgs[c.Rank()] = c.Log().MsgsReceived("")
		if got := c.Log().BytesReceived("stage2"); got != 40 {
			return fmt.Errorf("stage2 bytes = %d, want 40", got)
		}
		if got := c.Log().BytesSent("stage1"); got != 100 {
			return fmt.Errorf("stage1 sent = %d, want 100", got)
		}
		stages := c.Log().Stages()
		if len(stages) != 2 || stages[0] != "stage1" || stages[1] != "stage2" {
			return fmt.Errorf("stages = %v", stages)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2; r++ {
		if logsBytes[r] != 140 {
			t.Errorf("rank %d logged %d bytes, want 140", r, logsBytes[r])
		}
		if logsMsgs[r] != 2 {
			t.Errorf("rank %d logged %d msgs, want 2", r, logsMsgs[r])
		}
	}
}

// Conservation: across all ranks, bytes sent equals bytes received when
// every message is consumed.
func TestLogConservationProperty(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	const p = 8
	// Precompute a random traffic matrix.
	var plan [p][p]int
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			if i != j {
				plan[i][j] = r.Intn(500)
			}
		}
	}
	sent := make([]int, p)
	recvd := make([]int, p)
	err := Run(p, testOpts(), func(c Comm) error {
		me := c.Rank()
		for dst := 0; dst < p; dst++ {
			if dst == me {
				continue
			}
			if err := c.Send(dst, 1, make([]byte, plan[me][dst])); err != nil {
				return err
			}
		}
		for src := 0; src < p; src++ {
			if src == me {
				continue
			}
			msg, err := c.Recv(src, 1)
			if err != nil {
				return err
			}
			if len(msg) != plan[src][me] {
				return fmt.Errorf("from %d: %d bytes, want %d", src, len(msg), plan[src][me])
			}
		}
		sent[me] = c.Log().BytesSent("")
		recvd[me] = c.Log().BytesReceived("")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	totalSent, totalRecvd := 0, 0
	for i := 0; i < p; i++ {
		totalSent += sent[i]
		totalRecvd += recvd[i]
	}
	if totalSent != totalRecvd {
		t.Errorf("sent %d != received %d", totalSent, totalRecvd)
	}
}

func TestWorldSizeValidation(t *testing.T) {
	if _, err := NewWorld(0, Options{}); err == nil {
		t.Error("zero-size world must fail")
	}
	if _, err := NewWorld(-3, Options{}); err == nil {
		t.Error("negative world must fail")
	}
	w, err := NewWorld(2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Comm(2); err == nil {
		t.Error("out-of-range comm must fail")
	}
}

func TestReduceOpString(t *testing.T) {
	for _, op := range []ReduceOp{OpSum, OpMax, OpMin} {
		if op.String() == "" {
			t.Error("empty op name")
		}
	}
}
