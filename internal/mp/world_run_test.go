package mp

import (
	"errors"
	"testing"
	"time"
)

// A comm builder that fails mid-loop must not leak the already-spawned
// ranks: runRanks closes the world so ranks blocked in Recv drain, waits
// for them, and returns the build error.
func TestRunRanksCommFailureClosesWorldAndWaits(t *testing.T) {
	const p = 4
	w, err := NewWorld(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	buildErr := errors.New("injected comm failure")
	comm := func(r int) (Comm, error) {
		if r == 2 {
			return nil, buildErr
		}
		return w.Comm(r)
	}
	exited := make(chan int, p)
	done := make(chan error, 1)
	go func() {
		done <- runRanks(p, comm, w.closeAll, func(c Comm) error {
			defer func() { exited <- c.Rank() }()
			// Block on a message that never comes; only the world close
			// can release this rank.
			_, err := c.Recv((c.Rank()+1)%p, 5)
			return err
		})
	}()
	select {
	case err := <-done:
		if !errors.Is(err, buildErr) {
			t.Errorf("runRanks = %v, want the injected build error", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("runRanks hung after a mid-loop comm failure")
	}
	// Both spawned ranks (0 and 1) must have exited before runRanks
	// returned; their exit notes are already buffered.
	for i := 0; i < 2; i++ {
		select {
		case <-exited:
		default:
			t.Fatalf("only %d spawned ranks exited before runRanks returned", i)
		}
	}
}
