package mp

import (
	"testing"
	"time"
)

// A standing world must be cancellable: a rank blocked in Recv (e.g. a
// resident server pipeline during teardown) has to fail promptly when
// the world is shut down, not wait out its receive timeout.
func TestWorldShutdownUnblocksRecv(t *testing.T) {
	w, err := NewWorld(2, Options{RecvTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	c, err := w.Comm(1)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.Recv(0, 7) // nothing will ever arrive
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the Recv block
	w.Shutdown()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Recv returned nil error after Shutdown")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv still blocked after Shutdown")
	}
	w.Shutdown() // idempotent
}
