// Package mp is a from-scratch message-passing runtime standing in for
// the MPI library the paper used on the SP2 (the reproduction notes flag
// "no standard MPI; must hand-roll message passing").
//
// A Comm gives a rank tagged point-to-point messaging plus the handful of
// collectives the sort-last pipeline needs (barrier, broadcast, gather,
// scatter, reduce). The in-process transport (World) runs each rank as a
// goroutine with strictly private memory: the only way data moves between
// ranks is by value through messages, which preserves the
// distributed-memory character of the algorithms. A TCP transport with
// identical semantics lives in internal/mpnet.
//
// Sends are buffered (they never block), receives match on (source, tag)
// and are FIFO per channel — the same ordering guarantees MPI gives for a
// single communicator, and what the deterministic collective algorithms
// rely on.
package mp

import (
	"errors"
	"fmt"
	"time"

	"sortlast/internal/trace"
)

// Comm is one rank's endpoint of a communicator.
type Comm interface {
	// Rank returns this process's rank in [0, Size).
	Rank() int
	// Size returns the number of ranks in the communicator.
	Size() int

	// Send delivers payload to rank `to` under `tag`. It copies the
	// payload (the caller may immediately reuse the buffer) and never
	// blocks. Tags must be non-negative and below TagLimit.
	Send(to, tag int, payload []byte) error
	// Recv blocks until a message from rank `from` under `tag` arrives
	// and returns its payload. Messages from the same (source, tag)
	// channel arrive in send order.
	Recv(from, tag int) ([]byte, error)
	// Sendrecv exchanges messages with a peer: it sends payload under
	// tag and returns the message received from the same peer under the
	// same tag. Safe for symmetric pairwise exchange (sends are
	// buffered).
	Sendrecv(peer, tag int, payload []byte) ([]byte, error)

	// Barrier blocks until every rank has entered the barrier.
	Barrier() error
	// Bcast distributes root's payload to every rank and returns it.
	// Non-root callers pass nil.
	Bcast(root int, payload []byte) ([]byte, error)
	// Gather collects every rank's payload at root, indexed by rank.
	// Non-root callers receive nil.
	Gather(root int, payload []byte) ([][]byte, error)
	// Scatter distributes payloads[i] to rank i from root and returns
	// this rank's slice. Non-root callers pass nil.
	Scatter(root int, payloads [][]byte) ([]byte, error)
	// Reduce combines one float64 per rank with op at root; other ranks
	// receive 0. AllReduce returns the combined value everywhere.
	Reduce(root int, value float64, op ReduceOp) (float64, error)
	AllReduce(value float64, op ReduceOp) (float64, error)

	// SetStage labels subsequent message-log entries; the experiment
	// harness uses it to attribute traffic to compositing stages.
	SetStage(stage string)
	// Log returns this rank's message log for cost accounting.
	Log() *MsgLog

	// SetTracer attaches a span recorder: subsequent Send/Recv calls
	// (including those inside collectives) record send-wait/recv-wait
	// spans tagged with the current stage. nil detaches (the default).
	SetTracer(tr *trace.Rank)
	// Tracer returns the attached span recorder, nil when detached.
	// Instrumented code above the comm layer (compositors, gather)
	// records its own spans through this.
	Tracer() *trace.Rank
}

// TagLimit bounds user-visible tags; larger tags are reserved for the
// collective implementations.
const TagLimit = 1 << 20

// Reserved internal tag bases, spaced so that distinct collectives can
// never match each other's messages. FIFO ordering per (source, tag)
// channel keeps successive collectives of the same kind correctly paired.
const (
	tagBarrier = TagLimit + (1+iota)<<20
	tagBcast
	tagGather
	tagScatter
	tagReduce
	tagAllReduce
)

// ReduceOp combines two float64 values in a Reduce/AllReduce.
type ReduceOp int

// Supported reduction operators.
const (
	OpSum ReduceOp = iota
	OpMax
	OpMin
)

// Apply combines a and b under op.
func (op ReduceOp) Apply(a, b float64) float64 {
	switch op {
	case OpSum:
		return a + b
	case OpMax:
		if a > b {
			return a
		}
		return b
	case OpMin:
		if a < b {
			return a
		}
		return b
	default:
		panic(fmt.Sprintf("mp: unknown reduce op %d", op))
	}
}

// String implements fmt.Stringer.
func (op ReduceOp) String() string {
	switch op {
	case OpSum:
		return "sum"
	case OpMax:
		return "max"
	case OpMin:
		return "min"
	default:
		return fmt.Sprintf("ReduceOp(%d)", int(op))
	}
}

// ErrTimeout is returned by Recv when no matching message arrives within
// the world's receive timeout — in a correct program this means deadlock,
// so surfacing it beats hanging the test suite.
var ErrTimeout = errors.New("mp: receive timed out (likely deadlock)")

// Options configure a World.
type Options struct {
	// RecvTimeout bounds how long a Recv may block. Zero means the
	// default of 60 seconds; negative means no timeout.
	RecvTimeout time.Duration
}

func (o Options) recvTimeout() time.Duration {
	switch {
	case o.RecvTimeout == 0:
		return 60 * time.Second
	case o.RecvTimeout < 0:
		return 0
	default:
		return o.RecvTimeout
	}
}

func checkPeer(rank, size int) error {
	if rank < 0 || rank >= size {
		return fmt.Errorf("mp: rank %d out of range [0,%d)", rank, size)
	}
	return nil
}

func checkTag(tag int) error {
	if tag < 0 || tag >= TagLimit {
		return fmt.Errorf("mp: tag %d out of range [0,%d)", tag, TagLimit)
	}
	return nil
}
