package mp

import (
	"encoding/binary"
	"fmt"
	"math"
)

// The collective algorithms below are written against rawComm so the
// in-process and TCP transports share them. Collective traffic is marked
// internal in the message log: the paper's cost model charges only the
// compositing algorithm's own messages.

// barrier is a dissemination barrier: ceil(log2 P) rounds, in round k each
// rank signals (rank + 2^k) mod P and waits for (rank - 2^k) mod P. It
// works for any P, not just powers of two.
func barrier(c rawComm) error {
	p := c.Size()
	if p == 1 {
		return nil
	}
	c.Log().beginInternal()
	defer c.Log().endInternal()
	for k, off := 0, 1; off < p; k, off = k+1, off*2 {
		to := (c.Rank() + off) % p
		from := (c.Rank() - off + p) % p
		if err := c.sendRaw(to, tagBarrier+k, nil); err != nil {
			return err
		}
		if _, err := c.recvRaw(from, tagBarrier+k); err != nil {
			return fmt.Errorf("barrier round %d: %w", k, err)
		}
	}
	return nil
}

// bcast is a binomial-tree broadcast rooted at root.
func bcast(c rawComm, root int, payload []byte) ([]byte, error) {
	p := c.Size()
	if err := checkPeer(root, p); err != nil {
		return nil, err
	}
	if p == 1 {
		return payload, nil
	}
	c.Log().beginInternal()
	defer c.Log().endInternal()

	rel := (c.Rank() - root + p) % p
	mask := 1
	for mask < p {
		if rel&mask != 0 {
			src := (rel - mask + root) % p
			msg, err := c.recvRaw(src, tagBcast)
			if err != nil {
				return nil, fmt.Errorf("bcast recv: %w", err)
			}
			payload = msg
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < p {
			dst := (rel + mask + root) % p
			if err := c.sendRaw(dst, tagBcast, payload); err != nil {
				return nil, err
			}
		}
		mask >>= 1
	}
	return payload, nil
}

// gather collects every rank's payload at root (flat algorithm; worlds in
// this system are at most a few hundred ranks).
func gather(c rawComm, root int, payload []byte) ([][]byte, error) {
	p := c.Size()
	if err := checkPeer(root, p); err != nil {
		return nil, err
	}
	c.Log().beginInternal()
	defer c.Log().endInternal()
	if c.Rank() != root {
		return nil, c.sendRaw(root, tagGather, payload)
	}
	out := make([][]byte, p)
	out[root] = append([]byte(nil), payload...)
	for r := 0; r < p; r++ {
		if r == root {
			continue
		}
		msg, err := c.recvRaw(r, tagGather)
		if err != nil {
			return nil, fmt.Errorf("gather from %d: %w", r, err)
		}
		out[r] = msg
	}
	return out, nil
}

// scatter distributes payloads[i] to rank i from root.
func scatter(c rawComm, root int, payloads [][]byte) ([]byte, error) {
	p := c.Size()
	if err := checkPeer(root, p); err != nil {
		return nil, err
	}
	c.Log().beginInternal()
	defer c.Log().endInternal()
	if c.Rank() != root {
		return c.recvRaw(root, tagScatter)
	}
	if len(payloads) != p {
		return nil, fmt.Errorf("mp: scatter needs %d payloads, got %d", p, len(payloads))
	}
	for r := 0; r < p; r++ {
		if r == root {
			continue
		}
		if err := c.sendRaw(r, tagScatter, payloads[r]); err != nil {
			return nil, err
		}
	}
	return append([]byte(nil), payloads[root]...), nil
}

// reduce combines one float64 per rank at root using a binomial tree (the
// combine order is deterministic: higher virtual ranks fold into lower).
func reduce(c rawComm, root int, value float64, op ReduceOp) (float64, error) {
	p := c.Size()
	if err := checkPeer(root, p); err != nil {
		return 0, err
	}
	if p == 1 {
		return value, nil
	}
	c.Log().beginInternal()
	defer c.Log().endInternal()

	rel := (c.Rank() - root + p) % p
	acc := value
	for mask := 1; mask < p; mask <<= 1 {
		if rel&mask != 0 {
			dst := (rel - mask + root) % p
			if err := c.sendRaw(dst, tagReduce, encodeF64(acc)); err != nil {
				return 0, err
			}
			return 0, nil
		}
		if rel+mask < p {
			src := (rel + mask + root) % p
			msg, err := c.recvRaw(src, tagReduce)
			if err != nil {
				return 0, fmt.Errorf("reduce recv: %w", err)
			}
			v, err := decodeF64(msg)
			if err != nil {
				return 0, err
			}
			acc = op.Apply(acc, v)
		}
	}
	if c.Rank() == root {
		return acc, nil
	}
	return 0, nil
}

// allReduce is reduce-to-zero followed by broadcast.
func allReduce(c rawComm, value float64, op ReduceOp) (float64, error) {
	v, err := reduce(c, 0, value, op)
	if err != nil {
		return 0, err
	}
	c.Log().beginInternal()
	var buf []byte
	if c.Rank() == 0 {
		buf = encodeF64(v)
	}
	buf, err = bcast(c, 0, buf)
	c.Log().endInternal()
	if err != nil {
		return 0, err
	}
	return decodeF64(buf)
}

func encodeF64(v float64) []byte {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	return buf[:]
}

func decodeF64(buf []byte) (float64, error) {
	if len(buf) != 8 {
		return 0, fmt.Errorf("mp: float64 message has %d bytes, want 8", len(buf))
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf)), nil
}
