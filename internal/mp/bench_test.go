package mp

import (
	"testing"
)

func BenchmarkSendrecvPairs(b *testing.B) {
	for _, size := range []int{1024, 128 * 1024} {
		name := "1KB"
		if size > 1024 {
			name = "128KB"
		}
		b.Run(name, func(b *testing.B) {
			payload := make([]byte, size)
			b.SetBytes(int64(size))
			b.ResetTimer()
			err := Run(2, testOpts(), func(c Comm) error {
				for i := 0; i < b.N; i++ {
					if _, err := c.Sendrecv(c.Rank()^1, 1, payload); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkBarrier(b *testing.B) {
	for _, p := range []int{4, 16} {
		b.Run(map[int]string{4: "P4", 16: "P16"}[p], func(b *testing.B) {
			err := Run(p, testOpts(), func(c Comm) error {
				for i := 0; i < b.N; i++ {
					if err := c.Barrier(); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkGather(b *testing.B) {
	const p = 8
	payload := make([]byte, 4096)
	err := Run(p, testOpts(), func(c Comm) error {
		for i := 0; i < b.N; i++ {
			if _, err := c.Gather(0, payload); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkWorldSetup measures the fixed allocation cost of building and
// joining an 8-rank world with no traffic.
func BenchmarkWorldSetup(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Run(8, testOpts(), func(c Comm) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSendrecvAllocs measures the per-message allocation cost of the
// binary-swap exchange pattern over a persistent world: the required
// payload copy plus queue/log bookkeeping, with mailbox storage and the
// deadline watchdog reused across rounds.
func BenchmarkSendrecvAllocs(b *testing.B) {
	const p = 8
	payload := make([]byte, 1<<16)
	b.ReportAllocs()
	err := Run(p, testOpts(), func(c Comm) error {
		for i := 0; i < b.N; i++ {
			for s := 0; s < 3; s++ {
				if _, err := c.Sendrecv(c.Rank()^(1<<s), 7, payload); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}
