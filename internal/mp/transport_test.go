package mp

import (
	"errors"
	"testing"
	"time"
)

func TestFromTransportValidation(t *testing.T) {
	w, err := NewWorld(2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr := &chanTransport{world: w, rank: 0}
	if _, err := FromTransport(0, 0, tr, Options{}); err == nil {
		t.Error("zero size must be rejected")
	}
	if _, err := FromTransport(2, 2, tr, Options{}); err == nil {
		t.Error("out-of-range rank must be rejected")
	}
	if _, err := FromTransport(-1, 2, tr, Options{}); err == nil {
		t.Error("negative rank must be rejected")
	}
	c, err := FromTransport(0, 2, tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Rank() != 0 || c.Size() != 2 {
		t.Error("echo wrong")
	}
}

func TestMailboxFailSource(t *testing.T) {
	b := NewMailbox()
	b.Put(1, 0, []byte("queued before failure"))
	b.FailSource(1)
	// Already-delivered messages stay readable.
	msg, err := b.Get(1, 0, time.Second)
	if err != nil || string(msg) != "queued before failure" {
		t.Fatalf("drain after FailSource: %v %q", err, msg)
	}
	// Further blocking gets fail fast.
	start := time.Now()
	if _, err := b.Get(1, 0, 10*time.Second); err == nil {
		t.Error("get from failed source must error")
	}
	if time.Since(start) > 2*time.Second {
		t.Error("failure must be prompt, not a timeout")
	}
	// Other sources are unaffected.
	b.Put(2, 0, []byte("ok"))
	if msg, err := b.Get(2, 0, time.Second); err != nil || string(msg) != "ok" {
		t.Errorf("other source affected: %v %q", err, msg)
	}
}

func TestMailboxCloseDrains(t *testing.T) {
	b := NewMailbox()
	b.Put(0, 7, []byte("x"))
	b.Close()
	if msg, err := b.Get(0, 7, time.Second); err != nil || string(msg) != "x" {
		t.Fatalf("close must not drop queued messages: %v %q", err, msg)
	}
	if _, err := b.Get(0, 7, time.Second); err == nil {
		t.Error("get on closed empty mailbox must fail")
	}
}

func TestMailboxGetTimesOut(t *testing.T) {
	b := NewMailbox()
	start := time.Now()
	_, err := b.Get(0, 0, 50*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v", err)
	}
	if e := time.Since(start); e > 3*time.Second {
		t.Errorf("timeout took %v", e)
	}
}

func TestMailboxConcurrentProducers(t *testing.T) {
	b := NewMailbox()
	const msgs = 200
	for src := 0; src < 4; src++ {
		go func(src int) {
			for i := 0; i < msgs; i++ {
				b.Put(src, 0, []byte{byte(src), byte(i)})
			}
		}(src)
	}
	for src := 0; src < 4; src++ {
		for i := 0; i < msgs; i++ {
			msg, err := b.Get(src, 0, 10*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			if msg[0] != byte(src) || msg[1] != byte(i) {
				t.Fatalf("src %d message %d out of order: %v", src, i, msg)
			}
		}
	}
}
