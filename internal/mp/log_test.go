package mp

import "testing"

func TestLogAccessors(t *testing.T) {
	l := &MsgLog{}
	l.record(DirSend, 1, 0, 100, "a")
	l.record(DirRecv, 2, 0, 40, "a")
	l.record(DirSend, 1, 1, 60, "b")
	if l.MsgsSent("") != 2 || l.MsgsSent("a") != 1 {
		t.Errorf("MsgsSent = %d/%d", l.MsgsSent(""), l.MsgsSent("a"))
	}
	if l.MsgsReceived("") != 1 {
		t.Errorf("MsgsReceived = %d", l.MsgsReceived(""))
	}
	if l.BytesSent("b") != 60 {
		t.Errorf("BytesSent(b) = %d", l.BytesSent("b"))
	}
	l.Reset()
	if len(l.Entries) != 0 || l.BytesReceived("") != 0 {
		t.Error("Reset must drop entries")
	}
	// Nil logs are inert.
	var nilLog *MsgLog
	nilLog.record(DirSend, 0, 0, 1, "")
	nilLog.Reset()
	if nilLog.BytesSent("") != 0 {
		t.Error("nil log must sum to zero")
	}
}

func TestDirString(t *testing.T) {
	if DirSend.String() != "send" || DirRecv.String() != "recv" {
		t.Error("Dir strings wrong")
	}
}

func TestLogInternalSuppression(t *testing.T) {
	l := &MsgLog{}
	l.beginInternal()
	l.record(DirSend, 0, 0, 100, "")
	l.endInternal()
	l.record(DirSend, 0, 0, 7, "")
	if l.BytesSent("") != 7 {
		t.Errorf("internal traffic leaked into the log: %d", l.BytesSent(""))
	}
}
