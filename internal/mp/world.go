package mp

import (
	"fmt"
	"sync"
	"time"
)

// World is the in-process transport: P ranks running as goroutines,
// communicating only through copied message payloads.
type World struct {
	size  int
	opts  Options
	boxes []*Mailbox
}

func errSize(p int) error {
	return fmt.Errorf("mp: world size %d must be positive", p)
}

// NewWorld creates a world of p ranks.
func NewWorld(p int, opts Options) (*World, error) {
	if p <= 0 {
		return nil, errSize(p)
	}
	w := &World{size: p, opts: opts, boxes: make([]*Mailbox, p)}
	for i := range w.boxes {
		w.boxes[i] = NewMailbox()
	}
	return w, nil
}

// Comm returns rank r's endpoint. Each endpoint must be used by a single
// goroutine.
func (w *World) Comm(r int) (Comm, error) {
	return FromTransport(r, w.size, w.Transport(r), w.opts)
}

// Transport returns rank r's raw transport, for callers that wrap it
// (e.g. fault-injection tests) before building a Comm with
// FromTransport.
func (w *World) Transport(r int) Transport {
	return &chanTransport{world: w, rank: r}
}

// chanTransport is the in-process Transport: Send drops a copied payload
// into the receiver's mailbox.
type chanTransport struct {
	world *World
	rank  int
}

// Send implements Transport.
func (t *chanTransport) Send(to, tag int, payload []byte) error {
	t.world.boxes[to].Put(t.rank, tag, payload)
	return nil
}

// Recv implements Transport.
func (t *chanTransport) Recv(from, tag int, timeout time.Duration) ([]byte, error) {
	return t.world.boxes[t.rank].Get(from, tag, timeout)
}

// Run spawns fn on every rank of a fresh world and waits for all ranks to
// finish. It returns the first non-nil error (by rank order). Panics in a
// rank are re-panicked in the caller after all other ranks are released,
// so a crashing test fails loudly instead of deadlocking.
func Run(p int, opts Options, fn func(c Comm) error) error {
	w, err := NewWorld(p, opts)
	if err != nil {
		return err
	}
	errs := make([]error, p)
	panics := make([]any, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		c, err := w.Comm(r)
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(r int, c Comm) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					panics[r] = v
					w.closeAll() // release ranks blocked in Recv
				}
			}()
			errs[r] = fn(c)
		}(r, c)
	}
	wg.Wait()
	for r, v := range panics {
		if v != nil {
			panic(fmt.Sprintf("mp: rank %d panicked: %v", r, v))
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RunCollect is Run plus a per-rank result slot: fn's return value for
// rank r lands in the returned slice at index r.
func RunCollect[T any](p int, opts Options, fn func(c Comm) (T, error)) ([]T, error) {
	out := make([]T, p)
	err := Run(p, opts, func(c Comm) error {
		v, err := fn(c)
		out[c.Rank()] = v
		return err
	})
	return out, err
}

func (w *World) closeAll() {
	for _, b := range w.boxes {
		b.Close()
	}
}

type msgKey struct {
	src, tag int
}

// Mailbox is a rank's incoming-message store: FIFO queues keyed by
// (source, tag). It is exported so alternative transports (e.g. the TCP
// transport in internal/mpnet) can reuse the matching semantics.
type Mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queues  map[msgKey][][]byte
	closed  bool
	deadSrc map[int]bool
}

// NewMailbox returns an empty mailbox.
func NewMailbox() *Mailbox {
	b := &Mailbox{queues: make(map[msgKey][][]byte), deadSrc: make(map[int]bool)}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// FailSource marks one sender as gone: already-delivered messages remain
// readable, but a Get that would otherwise block on that source fails
// immediately. Transports call this when a peer connection drops so a
// receiver does not hang for the full timeout.
func (b *Mailbox) FailSource(src int) {
	b.mu.Lock()
	b.deadSrc[src] = true
	b.mu.Unlock()
	b.cond.Broadcast()
}

// Put copies payload and enqueues it on the (src, tag) channel.
func (b *Mailbox) Put(src, tag int, payload []byte) {
	cp := make([]byte, len(payload))
	copy(cp, payload)
	b.mu.Lock()
	k := msgKey{src, tag}
	b.queues[k] = append(b.queues[k], cp)
	b.mu.Unlock()
	b.cond.Broadcast()
}

// Get dequeues the next (src, tag) message, blocking up to timeout
// (zero: forever). It fails once the mailbox is closed and drained.
func (b *Mailbox) Get(src, tag int, timeout time.Duration) ([]byte, error) {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
		// Wake sleepers periodically so the deadline is observed even
		// without traffic.
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			ticker := time.NewTicker(timeout / 10)
			defer ticker.Stop()
			for {
				select {
				case <-stop:
					return
				case <-ticker.C:
					b.cond.Broadcast()
				}
			}
		}()
	}
	k := msgKey{src, tag}
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if q := b.queues[k]; len(q) > 0 {
			msg := q[0]
			if len(q) == 1 {
				delete(b.queues, k)
			} else {
				b.queues[k] = q[1:]
			}
			return msg, nil
		}
		if b.closed {
			return nil, fmt.Errorf("mp: world closed while waiting for (src=%d, tag=%d)", src, tag)
		}
		if b.deadSrc[src] {
			return nil, fmt.Errorf("mp: peer %d disconnected while waiting for tag %d", src, tag)
		}
		if timeout > 0 && time.Now().After(deadline) {
			return nil, fmt.Errorf("%w: rank waiting for (src=%d, tag=%d)", ErrTimeout, src, tag)
		}
		b.cond.Wait()
	}
}

// Close wakes all waiters; subsequent Gets on empty channels fail.
func (b *Mailbox) Close() {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	b.cond.Broadcast()
}
