package mp

import (
	"fmt"
	"sync"
	"time"
)

// World is the in-process transport: P ranks running as goroutines,
// communicating only through copied message payloads.
type World struct {
	size  int
	opts  Options
	boxes []Mailbox
	trs   []chanTransport
}

func errSize(p int) error {
	return fmt.Errorf("mp: world size %d must be positive", p)
}

// NewWorld creates a world of p ranks.
func NewWorld(p int, opts Options) (*World, error) {
	if p <= 0 {
		return nil, errSize(p)
	}
	w := &World{size: p, opts: opts, boxes: make([]Mailbox, p), trs: make([]chanTransport, p)}
	for i := range w.boxes {
		w.boxes[i].init()
		w.trs[i] = chanTransport{world: w, rank: i}
	}
	return w, nil
}

// Comm returns rank r's endpoint. Each endpoint must be used by a single
// goroutine.
func (w *World) Comm(r int) (Comm, error) {
	if err := checkPeer(r, w.size); err != nil {
		return nil, err
	}
	return FromTransport(r, w.size, w.Transport(r), w.opts)
}

// Transport returns rank r's raw transport, for callers that wrap it
// (e.g. fault-injection tests) before building a Comm with
// FromTransport.
func (w *World) Transport(r int) Transport {
	return &w.trs[r]
}

// chanTransport is the in-process Transport: Send drops a copied payload
// into the receiver's mailbox.
type chanTransport struct {
	world *World
	rank  int
}

// Send implements Transport.
func (t *chanTransport) Send(to, tag int, payload []byte) error {
	t.world.boxes[to].Put(t.rank, tag, payload)
	return nil
}

// Recv implements Transport.
func (t *chanTransport) Recv(from, tag int, timeout time.Duration) ([]byte, error) {
	return t.world.boxes[t.rank].Get(from, tag, timeout)
}

func (w *World) closeAll() {
	for i := range w.boxes {
		w.boxes[i].Close()
	}
}

// Size returns the number of ranks in the world.
func (w *World) Size() int { return w.size }

// Shutdown closes every rank's mailbox: receives that are blocked (or
// would block) fail promptly instead of waiting out their timeout.
// Long-running services built on a standing world use it to cancel the
// whole rank pool during teardown; it is safe to call more than once and
// concurrently with rank goroutines.
func (w *World) Shutdown() { w.closeAll() }

// Run spawns fn on every rank of a fresh world and waits for all ranks to
// finish. It returns the first non-nil error (by rank order). Panics in a
// rank are re-panicked in the caller after all other ranks are released,
// so a crashing test fails loudly instead of deadlocking.
func Run(p int, opts Options, fn func(c Comm) error) error {
	w, err := NewWorld(p, opts)
	if err != nil {
		return err
	}
	return runRanks(p, w.Comm, w.closeAll, fn)
}

// runRanks spawns fn on ranks built by comm. If building a rank's
// endpoint fails mid-loop, the world is closed (releasing already-spawned
// ranks blocked in Recv) and the spawned ranks are waited for before the
// error is returned — an early return here would leak those goroutines
// and leave the world open forever. Split from Run so the build-failure
// path is testable with an injected comm builder.
func runRanks(p int, comm func(int) (Comm, error), closeAll func(), fn func(c Comm) error) error {
	errs := make([]error, p)
	panics := make([]any, p)
	var commErr error
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		c, err := comm(r)
		if err != nil {
			commErr = err
			closeAll() // release already-spawned ranks blocked in Recv
			break
		}
		wg.Add(1)
		go func(r int, c Comm) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					panics[r] = v
					closeAll()
				}
			}()
			errs[r] = fn(c)
		}(r, c)
	}
	wg.Wait()
	for r, v := range panics {
		if v != nil {
			panic(fmt.Sprintf("mp: rank %d panicked: %v", r, v))
		}
	}
	if commErr != nil {
		return commErr
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RunCollect is Run plus a per-rank result slot: fn's return value for
// rank r lands in the returned slice at index r.
func RunCollect[T any](p int, opts Options, fn func(c Comm) (T, error)) ([]T, error) {
	out := make([]T, p)
	err := Run(p, opts, func(c Comm) error {
		v, err := fn(c)
		out[c.Rank()] = v
		return err
	})
	return out, err
}

type msgKey struct {
	src, tag int
}

// Mailbox is a rank's incoming-message store: FIFO queues keyed by
// (source, tag). It is exported so alternative transports (e.g. the TCP
// transport in internal/mpnet) can reuse the matching semantics.
type Mailbox struct {
	mu      sync.Mutex
	cond    sync.Cond
	queues  map[msgKey]*msgQueue
	closed  bool
	deadSrc map[int]bool

	// Deadline watchdog, created once and re-armed per blocking Get (the
	// mailbox has a single consumer, so at most one Get blocks at a time).
	// gen invalidates late fires from a previous arming: the callback only
	// flags expiry when its arming is still the current one.
	timer   *time.Timer
	gen     int
	armGen  int
	expired bool
}

// msgQueue is one (source, tag) FIFO channel. head indexes the next
// undelivered message; the slice is compacted and reused once drained, so
// a steady send/receive exchange allocates no queue storage.
type msgQueue struct {
	msgs [][]byte
	head int
}

// NewMailbox returns an empty mailbox.
func NewMailbox() *Mailbox {
	b := &Mailbox{}
	b.init()
	return b
}

func (b *Mailbox) init() {
	b.queues = make(map[msgKey]*msgQueue)
	b.cond.L = &b.mu
}

// FailSource marks one sender as gone: already-delivered messages remain
// readable, but a Get that would otherwise block on that source fails
// immediately. Transports call this when a peer connection drops so a
// receiver does not hang for the full timeout.
func (b *Mailbox) FailSource(src int) {
	b.mu.Lock()
	if b.deadSrc == nil {
		b.deadSrc = make(map[int]bool)
	}
	b.deadSrc[src] = true
	b.mu.Unlock()
	b.cond.Broadcast()
}

// Put copies payload and enqueues it on the (src, tag) channel.
func (b *Mailbox) Put(src, tag int, payload []byte) {
	cp := make([]byte, len(payload))
	copy(cp, payload)
	b.mu.Lock()
	k := msgKey{src, tag}
	q := b.queues[k]
	if q == nil {
		q = &msgQueue{}
		b.queues[k] = q
	}
	if q.head == len(q.msgs) {
		q.msgs = q.msgs[:0]
		q.head = 0
	}
	q.msgs = append(q.msgs, cp)
	b.mu.Unlock()
	b.cond.Broadcast()
}

// Get dequeues the next (src, tag) message, blocking up to timeout
// (zero: forever). It fails once the mailbox is closed and drained.
func (b *Mailbox) Get(src, tag int, timeout time.Duration) ([]byte, error) {
	k := msgKey{src, tag}
	b.mu.Lock()
	defer b.mu.Unlock()
	armed := false
	defer func() {
		if armed {
			b.disarm()
		}
	}()
	for {
		if q := b.queues[k]; q != nil && q.head < len(q.msgs) {
			msg := q.msgs[q.head]
			q.msgs[q.head] = nil
			q.head++
			return msg, nil
		}
		if b.closed {
			return nil, fmt.Errorf("mp: world closed while waiting for (src=%d, tag=%d)", src, tag)
		}
		if b.deadSrc[src] {
			return nil, fmt.Errorf("mp: peer %d disconnected while waiting for tag %d", src, tag)
		}
		if armed && b.expired {
			return nil, fmt.Errorf("%w: rank waiting for (src=%d, tag=%d)", ErrTimeout, src, tag)
		}
		if timeout > 0 && !armed {
			// Arm the watchdog lazily, only when the receive actually has
			// to block: the already-delivered case costs no timer work.
			armed = true
			b.arm(timeout)
		}
		b.cond.Wait()
	}
}

// arm schedules the deadline watchdog; caller holds b.mu.
func (b *Mailbox) arm(timeout time.Duration) {
	b.gen++
	b.armGen = b.gen
	b.expired = false
	if b.timer == nil {
		b.timer = time.AfterFunc(timeout, func() {
			b.mu.Lock()
			if b.armGen == b.gen {
				b.expired = true
			}
			b.mu.Unlock()
			b.cond.Broadcast()
		})
	} else {
		b.timer.Reset(timeout)
	}
}

// disarm cancels the watchdog; caller holds b.mu. A fire that already
// slipped past Stop sees a stale generation and is ignored.
func (b *Mailbox) disarm() {
	b.gen++
	b.expired = false
	b.timer.Stop()
}

// Close wakes all waiters; subsequent Gets on empty channels fail.
func (b *Mailbox) Close() {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	b.cond.Broadcast()
}
