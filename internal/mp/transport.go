package mp

import (
	"time"

	"sortlast/internal/trace"
)

// Transport moves raw tagged messages between ranks. The in-process
// channel transport lives in this package; a TCP transport lives in
// internal/mpnet. FromTransport wraps any Transport with the Comm
// semantics (logging, collectives, validation), so transports stay dumb
// byte movers.
//
// Contract: Send never blocks indefinitely (buffered or async), copies or
// takes ownership of payload before returning, and messages between one
// (sender, receiver, tag) triple arrive in send order.
type Transport interface {
	// Send delivers payload to rank `to` under an internal tag (which
	// may exceed TagLimit).
	Send(to, tag int, payload []byte) error
	// Recv blocks for a message from `from` under `tag`; a zero timeout
	// means block forever.
	Recv(from, tag int, timeout time.Duration) ([]byte, error)
}

// FromTransport builds a Comm for one rank of a size-rank world on top of
// an arbitrary transport. Each returned Comm must be used by a single
// goroutine.
func FromTransport(rank, size int, tr Transport, opts Options) (Comm, error) {
	if size <= 0 {
		return nil, errSize(size)
	}
	if err := checkPeer(rank, size); err != nil {
		return nil, err
	}
	return &comm{rank: rank, size: size, tr: tr, opts: opts}, nil
}

// rawComm is the narrow surface the collective algorithms need; raw
// sends and receives bypass user-tag validation and are marked internal
// in the log by the collectives themselves.
type rawComm interface {
	Rank() int
	Size() int
	Log() *MsgLog
	sendRaw(to, tag int, payload []byte) error
	recvRaw(from, tag int) ([]byte, error)
}

// comm implements Comm over a Transport.
type comm struct {
	rank   int
	size   int
	tr     Transport
	opts   Options
	stage  string
	log    MsgLog
	tracer *trace.Rank
}

func (c *comm) Rank() int                { return c.rank }
func (c *comm) Size() int                { return c.size }
func (c *comm) SetStage(stage string)    { c.stage = stage }
func (c *comm) Log() *MsgLog             { return &c.log }
func (c *comm) SetTracer(tr *trace.Rank) { c.tracer = tr }
func (c *comm) Tracer() *trace.Rank      { return c.tracer }

func (c *comm) Send(to, tag int, payload []byte) error {
	if err := checkPeer(to, c.size); err != nil {
		return err
	}
	if err := checkTag(tag); err != nil {
		return err
	}
	return c.sendRaw(to, tag, payload)
}

func (c *comm) sendRaw(to, tag int, payload []byte) error {
	c.log.record(DirSend, to, tag, len(payload), c.stage)
	m := c.tracer.Begin()
	err := c.tr.Send(to, tag, payload)
	c.tracer.End(m, trace.SpanSendWait, c.stage)
	return err
}

func (c *comm) Recv(from, tag int) ([]byte, error) {
	if err := checkPeer(from, c.size); err != nil {
		return nil, err
	}
	if err := checkTag(tag); err != nil {
		return nil, err
	}
	return c.recvRaw(from, tag)
}

func (c *comm) recvRaw(from, tag int) ([]byte, error) {
	m := c.tracer.Begin()
	msg, err := c.tr.Recv(from, tag, c.opts.recvTimeout())
	c.tracer.End(m, trace.SpanRecvWait, c.stage)
	if err != nil {
		return nil, err
	}
	c.log.record(DirRecv, from, tag, len(msg), c.stage)
	return msg, nil
}

func (c *comm) Sendrecv(peer, tag int, payload []byte) ([]byte, error) {
	if err := c.Send(peer, tag, payload); err != nil {
		return nil, err
	}
	return c.Recv(peer, tag)
}

func (c *comm) Barrier() error { return barrier(c) }
func (c *comm) Bcast(root int, payload []byte) ([]byte, error) {
	return bcast(c, root, payload)
}
func (c *comm) Gather(root int, payload []byte) ([][]byte, error) {
	return gather(c, root, payload)
}
func (c *comm) Scatter(root int, payloads [][]byte) ([]byte, error) {
	return scatter(c, root, payloads)
}
func (c *comm) Reduce(root int, value float64, op ReduceOp) (float64, error) {
	return reduce(c, root, value, op)
}
func (c *comm) AllReduce(value float64, op ReduceOp) (float64, error) {
	return allReduce(c, value, op)
}
