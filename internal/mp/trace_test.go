package mp

import (
	"testing"

	"sortlast/internal/trace"
)

func TestCommRecordsWaitSpans(t *testing.T) {
	rec := trace.NewRecorder(2)
	err := Run(2, Options{}, func(c Comm) error {
		c.SetTracer(rec.Rank(c.Rank()))
		if tr := c.Tracer(); tr == nil || tr.ID() != c.Rank() {
			t.Errorf("rank %d: Tracer() = %v", c.Rank(), c.Tracer())
		}
		c.SetStage("stage1")
		_, err := c.Sendrecv(1-c.Rank(), 7, []byte("ping"))
		c.SetStage("")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2; r++ {
		spans := rec.Rank(r).Spans()
		var sends, recvs int
		for _, s := range spans {
			if s.Stage != "stage1" {
				t.Errorf("rank %d: span %q stage = %q, want stage1", r, s.Name, s.Stage)
			}
			switch s.Name {
			case trace.SpanSendWait:
				sends++
			case trace.SpanRecvWait:
				recvs++
			default:
				t.Errorf("rank %d: unexpected span %q", r, s.Name)
			}
		}
		if sends != 1 || recvs != 1 {
			t.Fatalf("rank %d: got %d send-wait, %d recv-wait spans, want 1 each", r, sends, recvs)
		}
	}
}

func TestCollectivesRecordWaitSpans(t *testing.T) {
	rec := trace.NewRecorder(4)
	err := Run(4, Options{}, func(c Comm) error {
		c.SetTracer(rec.Rank(c.Rank()))
		if err := c.Barrier(); err != nil {
			return err
		}
		_, err := c.Gather(0, []byte{byte(c.Rank())})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every rank blocks at least once across barrier + gather; rank 0
	// receives from all three others in the gather.
	for r := 0; r < 4; r++ {
		if rec.Rank(r).Total(trace.SpanRecvWait) == 0 && rec.Rank(r).Total(trace.SpanSendWait) == 0 {
			t.Errorf("rank %d: no comm spans recorded in collectives", r)
		}
	}
}

func TestUntracedCommRecordsNothing(t *testing.T) {
	err := Run(2, Options{}, func(c Comm) error {
		if c.Tracer() != nil {
			t.Errorf("rank %d: fresh comm has tracer attached", c.Rank())
		}
		_, err := c.Sendrecv(1-c.Rank(), 3, []byte("x"))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}
