package mp

// Dir distinguishes sent from received messages in the log.
type Dir int

// Message directions.
const (
	DirSend Dir = iota
	DirRecv
)

// String implements fmt.Stringer.
func (d Dir) String() string {
	if d == DirSend {
		return "send"
	}
	return "recv"
}

// LogEntry records one message for cost accounting. Bytes is the payload
// size; the cost model adds protocol overheads itself so the log stays
// transport-independent.
type LogEntry struct {
	Dir   Dir
	Peer  int
	Tag   int
	Bytes int
	Stage string
}

// MsgLog accumulates one rank's message history. It is owned by a single
// rank goroutine and needs no locking; the harness reads it only after
// the world has been joined.
type MsgLog struct {
	Entries []LogEntry

	// Internal traffic (collectives) is counted separately so the cost
	// model can charge only algorithm messages, as the paper does.
	internalDepth int
}

func (l *MsgLog) record(dir Dir, peer, tag, bytes int, stage string) {
	if l == nil || l.internalDepth > 0 {
		return
	}
	if l.Entries == nil {
		// One rank typically logs a few entries per compositing stage;
		// start with room for a whole run instead of growing 1-2-4-8.
		l.Entries = make([]LogEntry, 0, 16)
	}
	l.Entries = append(l.Entries, LogEntry{Dir: dir, Peer: peer, Tag: tag, Bytes: bytes, Stage: stage})
}

// beginInternal suppresses logging for collective plumbing.
func (l *MsgLog) beginInternal() {
	if l != nil {
		l.internalDepth++
	}
}

func (l *MsgLog) endInternal() {
	if l != nil {
		l.internalDepth--
	}
}

// Reset drops all recorded entries.
func (l *MsgLog) Reset() {
	if l != nil {
		l.Entries = l.Entries[:0]
	}
}

// BytesReceived sums received payload bytes, optionally filtered by
// stage ("" matches every stage).
func (l *MsgLog) BytesReceived(stage string) int {
	return l.sum(DirRecv, stage, func(e LogEntry) int { return e.Bytes })
}

// BytesSent sums sent payload bytes, optionally filtered by stage.
func (l *MsgLog) BytesSent(stage string) int {
	return l.sum(DirSend, stage, func(e LogEntry) int { return e.Bytes })
}

// MsgsReceived counts received messages, optionally filtered by stage.
func (l *MsgLog) MsgsReceived(stage string) int {
	return l.sum(DirRecv, stage, func(LogEntry) int { return 1 })
}

// MsgsSent counts sent messages, optionally filtered by stage.
func (l *MsgLog) MsgsSent(stage string) int {
	return l.sum(DirSend, stage, func(LogEntry) int { return 1 })
}

// Stages returns the distinct stage labels in first-appearance order.
func (l *MsgLog) Stages() []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range l.Entries {
		if !seen[e.Stage] {
			seen[e.Stage] = true
			out = append(out, e.Stage)
		}
	}
	return out
}

func (l *MsgLog) sum(dir Dir, stage string, f func(LogEntry) int) int {
	if l == nil {
		return 0
	}
	n := 0
	for _, e := range l.Entries {
		if e.Dir == dir && (stage == "" || e.Stage == stage) {
			n += f(e)
		}
	}
	return n
}
