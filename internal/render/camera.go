// Package render turns subvolumes into sparse subimages — the rendering
// phase of the sort-last pipeline. The primary renderer is an
// orthographic ray caster whose sample positions are globally aligned:
// every rank samples the same world-space points along a ray regardless
// of which box it owns, so compositing the per-box segment images in
// depth order reproduces the serial rendering of the whole volume. A
// splatting renderer (the paper's §5 future work) is provided as an
// alternative back end.
package render

import (
	"math"

	"sortlast/internal/frame"
	"sortlast/internal/volume"
)

// Camera is an orthographic camera looking along Dir with the image plane
// spanned by U and V through Center. World coordinates are voxel
// coordinates of the rendered volume.
type Camera struct {
	W, H   int        // image size in pixels
	U, V   [3]float64 // image-plane basis (unit, orthogonal)
	Dir    [3]float64 // ray direction (unit)
	Center [3]float64 // look-at point, projected to the image center
	Scale  float64    // world units per pixel
}

// NewCamera builds a camera framing the given volume bounds into a w x h
// image, viewed along +z after rotating the view by rotX degrees about
// the x axis and then rotY degrees about the y axis — the "rotation of a
// viewing point" the paper studies. The volume diagonal fits the smaller
// image dimension with a small margin under any rotation.
func NewCamera(w, h int, bounds volume.Box, rotX, rotY float64) *Camera {
	cam := &Camera{
		W: w, H: h,
		U:      [3]float64{1, 0, 0},
		V:      [3]float64{0, 1, 0},
		Dir:    [3]float64{0, 0, 1},
		Center: bounds.Center(),
	}
	rx := rotX * math.Pi / 180
	ry := rotY * math.Pi / 180
	cam.U = rotY3(rotX3(cam.U, rx), ry)
	cam.V = rotY3(rotX3(cam.V, rx), ry)
	cam.Dir = rotY3(rotX3(cam.Dir, rx), ry)

	diag := math.Sqrt(float64(bounds.Dx()*bounds.Dx() +
		bounds.Dy()*bounds.Dy() + bounds.Dz()*bounds.Dz()))
	minDim := w
	if h < minDim {
		minDim = h
	}
	cam.Scale = diag / (0.92 * float64(minDim))
	return cam
}

// PlanePoint returns the world-space point of pixel (px, py) on the image
// plane through Center (ray parameter t = 0).
func (c *Camera) PlanePoint(px, py int) [3]float64 {
	du := (float64(px) + 0.5 - float64(c.W)/2) * c.Scale
	dv := (float64(py) + 0.5 - float64(c.H)/2) * c.Scale
	return [3]float64{
		c.Center[0] + du*c.U[0] + dv*c.V[0],
		c.Center[1] + du*c.U[1] + dv*c.V[1],
		c.Center[2] + du*c.U[2] + dv*c.V[2],
	}
}

// Project returns the continuous pixel coordinates of a world point.
func (c *Camera) Project(p [3]float64) (fx, fy float64) {
	q := [3]float64{p[0] - c.Center[0], p[1] - c.Center[1], p[2] - c.Center[2]}
	fx = dot(q, c.U)/c.Scale + float64(c.W)/2
	fy = dot(q, c.V)/c.Scale + float64(c.H)/2
	return fx, fy
}

// Footprint returns the image-space rectangle covering the projection of
// a voxel box, padded by one pixel and clipped to the frame. Ranks
// allocate their subimages over this rectangle.
func (c *Camera) Footprint(b volume.Box) frame.Rect {
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, corner := range b.Corners() {
		fx, fy := c.Project(corner)
		minX, maxX = math.Min(minX, fx), math.Max(maxX, fx)
		minY, maxY = math.Min(minY, fy), math.Max(maxY, fy)
	}
	r := frame.Rect{
		X0: int(math.Floor(minX)) - 1, Y0: int(math.Floor(minY)) - 1,
		X1: int(math.Ceil(maxX)) + 1, Y1: int(math.Ceil(maxY)) + 1,
	}
	return r.Intersect(frame.Rect{X1: c.W, Y1: c.H})
}

// rayBox intersects the ray plane + t*Dir with a box using the slab
// method and returns the parameter interval; ok is false when the ray
// misses. The interval is widened by a half step of slack at the call
// site, with exact membership re-checked per sample.
func (c *Camera) rayBox(origin [3]float64, b volume.Box) (tMin, tMax float64, ok bool) {
	tMin, tMax = math.Inf(-1), math.Inf(1)
	for a := 0; a < 3; a++ {
		lo, hi := float64(b.Lo[a]), float64(b.Hi[a])
		d := c.Dir[a]
		if d == 0 {
			if origin[a] < lo || origin[a] >= hi {
				return 0, 0, false
			}
			continue
		}
		t0 := (lo - origin[a]) / d
		t1 := (hi - origin[a]) / d
		if t0 > t1 {
			t0, t1 = t1, t0
		}
		if t0 > tMin {
			tMin = t0
		}
		if t1 < tMax {
			tMax = t1
		}
	}
	return tMin, tMax, tMin <= tMax
}

func rotX3(p [3]float64, a float64) [3]float64 {
	s, c := math.Sin(a), math.Cos(a)
	return [3]float64{p[0], c*p[1] - s*p[2], s*p[1] + c*p[2]}
}

func rotY3(p [3]float64, a float64) [3]float64 {
	s, c := math.Sin(a), math.Cos(a)
	return [3]float64{c*p[0] + s*p[2], p[1], -s*p[0] + c*p[2]}
}

func dot(a, b [3]float64) float64 { return a[0]*b[0] + a[1]*b[1] + a[2]*b[2] }
