package render

import (
	"testing"

	"sortlast/internal/frame"
	"sortlast/internal/mesh"
	"sortlast/internal/partition"
	"sortlast/internal/volume"
)

func sphereMesh(t *testing.T) (*volume.Volume, *mesh.Mesh) {
	t.Helper()
	v := volume.Sphere(32, 32, 32, 0.7, 200)
	m := mesh.Extract(v, mesh.CellsFor(v.Bounds(), v.Bounds()), 100)
	if m.Len() == 0 {
		t.Fatal("empty sphere mesh")
	}
	return v, m
}

func TestRasterizeSphereSilhouette(t *testing.T) {
	v, m := sphereMesh(t)
	cam := NewCamera(64, 64, v.Bounds(), 0, 0)
	img := Rasterize(m, cam, RasterOptions{})
	center := img.At(32, 32)
	if center.A != 1 {
		t.Errorf("center pixel = %v, want opaque surface", center)
	}
	if center.I <= 0 || center.I > 1 {
		t.Errorf("center shade = %v", center.I)
	}
	if !img.At(1, 1).Blank() {
		t.Error("corner must be blank")
	}
	// The silhouette is a disc of radius ~11.2 voxels; the camera maps
	// the 55.4-voxel diagonal onto 0.92*64 px, i.e. ~0.94 voxels per
	// pixel, giving a ~11.9 px radius and ~445 px of area.
	n := img.CountNonBlank(img.Full())
	if n < 320 || n > 620 {
		t.Errorf("silhouette covers %d pixels, want ~445", n)
	}
}

func TestRasterizeEmptyMesh(t *testing.T) {
	cam := NewCamera(32, 32, volume.Box{Hi: [3]int{8, 8, 8}}, 0, 0)
	img := Rasterize(&mesh.Mesh{}, cam, RasterOptions{})
	if img.CountNonBlank(img.Full()) != 0 {
		t.Error("empty mesh must render blank")
	}
}

func TestRasterizeZBufferPicksNearest(t *testing.T) {
	// Two parallel squares; the nearer (smaller z along +z view) must
	// win. Build triangles directly.
	quad := func(z float64, shadeBias float64) []mesh.Triangle {
		a := [3]float64{2, 2, z}
		b := [3]float64{14, 2, z}
		c := [3]float64{14, 14, z}
		d := [3]float64{2, 14, z}
		n := [3]float64{0, 0, 1 + shadeBias} // same direction, distinct length
		return []mesh.Triangle{
			{V: [3][3]float64{a, b, c}, Normal: n},
			{V: [3][3]float64{a, c, d}, Normal: n},
		}
	}
	m := &mesh.Mesh{}
	m.Tris = append(m.Tris, quad(10, 0)...) // far
	m.Tris = append(m.Tris, quad(4, 0)...)  // near
	cam := NewCamera(32, 32, volume.Box{Hi: [3]int{16, 16, 16}}, 0, 0)
	// Give the near quad a distinguishable shade via light choice: use a
	// tilted light so both quads shade identically (same normals), then
	// check depth by drawing order instead: overwrite far with near.
	img := Rasterize(m, cam, RasterOptions{})
	if img.At(16, 16).A != 1 {
		t.Fatal("quad must cover the center")
	}
	// Reverse order: near first, far second — z-buffer must keep near.
	m2 := &mesh.Mesh{}
	m2.Tris = append(m2.Tris, quad(4, 0)...)
	m2.Tris = append(m2.Tris, quad(10, 0)...)
	img2 := Rasterize(m2, cam, RasterOptions{})
	if d := img.MaxAbsDiff(img2, img.Full()); d != 0 {
		t.Errorf("draw order changed the image by %g — z-buffer broken", d)
	}
}

func TestFlatShadingQuantizes(t *testing.T) {
	v, m := sphereMesh(t)
	cam := NewCamera(64, 64, v.Bounds(), 20, 30)
	img := Rasterize(m, cam, RasterOptions{Flat: true, Levels: 8})
	distinct := map[float64]bool{}
	full := img.Full()
	for y := full.Y0; y < full.Y1; y++ {
		for x := full.X0; x < full.X1; x++ {
			if p := img.At(x, y); !p.Blank() {
				distinct[p.I] = true
			}
		}
	}
	if len(distinct) == 0 || len(distinct) > 8 {
		t.Errorf("flat shading produced %d distinct shades, want <= 8", len(distinct))
	}
}

// The master surface property: per-rank extraction + rasterization +
// depth-order over-compositing equals serial surface rendering. Opaque
// alpha-1 pixels make over pick the front rank's surface, and the kd
// planes guarantee that is the nearer one.
func TestPartitionedSurfaceMatchesSerial(t *testing.T) {
	vols := map[string]*volume.Volume{
		"head":   volume.HeadPhantom(32, 32, 16),
		"engine": volume.EngineBlock(32, 32, 16),
	}
	for name, v := range vols {
		serialMesh := mesh.Extract(v, mesh.CellsFor(v.Bounds(), v.Bounds()), 150)
		for _, rot := range [][2]float64{{0, 0}, {25, 40}} {
			cam := NewCamera(64, 64, v.Bounds(), rot[0], rot[1])
			serial := Rasterize(serialMesh, cam, RasterOptions{})
			for _, p := range []int{2, 4, 8} {
				dec, err := partition.Decompose(v.Bounds(), p)
				if err != nil {
					t.Fatal(err)
				}
				composed := frame.NewImage(64, 64)
				for _, r := range dec.DepthOrder(cam.Dir) {
					sub := mesh.Extract(v, mesh.CellsFor(dec.Box(r), v.Bounds()), 150)
					img := Rasterize(sub, cam, RasterOptions{})
					b := img.Bounds()
					if b.Empty() {
						continue
					}
					composed.CompositeRegion(b, img.PackRegion(b), false)
				}
				if d := serial.MaxAbsDiff(composed, serial.Full()); d > 1e-12 {
					t.Errorf("%s rot=%v P=%d: surface differs from serial by %g",
						name, rot, p, d)
				}
			}
		}
	}
}
