package render

import (
	"testing"

	"sortlast/internal/transfer"
	"sortlast/internal/volume"
)

func BenchmarkRaycastSerial(b *testing.B) {
	vol := volume.EngineBlock(128, 128, 55)
	tf := transfer.EngineLow()
	cam := NewCamera(192, 192, vol.Bounds(), 20, 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Raycast(vol, vol.Bounds(), cam, tf, Options{})
	}
}

func BenchmarkRaycastSubvolume(b *testing.B) {
	vol := volume.EngineBlock(128, 128, 55)
	tf := transfer.EngineLow()
	cam := NewCamera(192, 192, vol.Bounds(), 20, 30)
	box := volume.Box{Lo: [3]int{0, 0, 0}, Hi: [3]int{64, 64, 28}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Raycast(vol, box, cam, tf, Options{})
	}
}

func BenchmarkRaycastShaded(b *testing.B) {
	vol := volume.HeadPhantom(96, 96, 48)
	tf := transfer.Head()
	cam := NewCamera(128, 128, vol.Bounds(), 15, 25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Raycast(vol, vol.Bounds(), cam, tf, Options{Shaded: true})
	}
}

// raycastScenario is one kernel benchmark configuration; run times both
// the accelerated kernel and the reference, reporting ns/ray and a
// pinned allocation count per call.
type raycastScenario struct {
	vol *volume.Volume
	tf  *transfer.Func
	cam *Camera
	opt Options
}

func denseScenario() raycastScenario {
	vol := volume.EngineBlock(128, 128, 55)
	return raycastScenario{vol: vol, tf: transfer.EngineLow(),
		cam: NewCamera(192, 192, vol.Bounds(), 20, 30)}
}

func sparseScenario() raycastScenario {
	vol := volume.SolidCube(128, 128, 55)
	return raycastScenario{vol: vol, tf: transfer.Cube(),
		cam: NewCamera(192, 192, vol.Bounds(), 20, 30)}
}

func shadedScenario() raycastScenario {
	vol := volume.HeadPhantom(96, 96, 48)
	return raycastScenario{vol: vol, tf: transfer.Head(),
		cam: NewCamera(128, 128, vol.Bounds(), 15, 25), opt: Options{Shaded: true}}
}

func (s raycastScenario) run(b *testing.B, reference bool) {
	b.Helper()
	s.vol.MacroCells() // amortized once per dataset; keep it out of the pin
	var rs Stats
	opt := s.opt
	opt.Stats = &rs
	Raycast(s.vol, s.vol.Bounds(), s.cam, s.tf, opt)
	rays := rs.Snapshot().Rays
	if rays == 0 {
		b.Fatal("scenario casts no rays")
	}
	render := func() {
		if reference {
			RaycastReference(s.vol, s.vol.Bounds(), s.cam, s.tf, s.opt)
		} else {
			Raycast(s.vol, s.vol.Bounds(), s.cam, s.tf, s.opt)
		}
	}
	// Pinned with AllocsPerRun rather than -benchmem so the count is
	// exact and prints unconditionally ("allocs/op" would be hidden
	// behind the -benchmem flag). Measured before the timed loop,
	// reported after it: ResetTimer deletes user metrics.
	allocs := testing.AllocsPerRun(1, render)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		render()
	}
	b.ReportMetric(allocs, "allocs/frame")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(rays), "ns/ray")
}

func BenchmarkRaycastDense(b *testing.B)  { denseScenario().run(b, false) }
func BenchmarkRaycastSparse(b *testing.B) { sparseScenario().run(b, false) }
func BenchmarkRaycastShadedHead(b *testing.B) {
	shadedScenario().run(b, false)
}
func BenchmarkRaycastDenseReference(b *testing.B)  { denseScenario().run(b, true) }
func BenchmarkRaycastSparseReference(b *testing.B) { sparseScenario().run(b, true) }
func BenchmarkRaycastShadedHeadReference(b *testing.B) {
	shadedScenario().run(b, true)
}

func BenchmarkSplatSerial(b *testing.B) {
	vol := volume.EngineBlock(128, 128, 55)
	tf := transfer.EngineHigh()
	cam := NewCamera(192, 192, vol.Bounds(), 20, 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Splat(vol, vol.Bounds(), cam, tf, Options{})
	}
}
