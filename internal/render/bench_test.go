package render

import (
	"testing"

	"sortlast/internal/transfer"
	"sortlast/internal/volume"
)

func BenchmarkRaycastSerial(b *testing.B) {
	vol := volume.EngineBlock(128, 128, 55)
	tf := transfer.EngineLow()
	cam := NewCamera(192, 192, vol.Bounds(), 20, 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Raycast(vol, vol.Bounds(), cam, tf, Options{})
	}
}

func BenchmarkRaycastSubvolume(b *testing.B) {
	vol := volume.EngineBlock(128, 128, 55)
	tf := transfer.EngineLow()
	cam := NewCamera(192, 192, vol.Bounds(), 20, 30)
	box := volume.Box{Lo: [3]int{0, 0, 0}, Hi: [3]int{64, 64, 28}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Raycast(vol, box, cam, tf, Options{})
	}
}

func BenchmarkRaycastShaded(b *testing.B) {
	vol := volume.HeadPhantom(96, 96, 48)
	tf := transfer.Head()
	cam := NewCamera(128, 128, vol.Bounds(), 15, 25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Raycast(vol, vol.Bounds(), cam, tf, Options{Shaded: true})
	}
}

func BenchmarkSplatSerial(b *testing.B) {
	vol := volume.EngineBlock(128, 128, 55)
	tf := transfer.EngineHigh()
	cam := NewCamera(192, 192, vol.Bounds(), 20, 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Splat(vol, vol.Bounds(), cam, tf, Options{})
	}
}
