package render

import "sync/atomic"

// Stats accumulates the ray caster's work and empty-space-skipping
// counters across however many Raycast calls share one instance. The
// fields are atomics so concurrent tile workers — and the serving
// tier's long-lived per-server instance — can share it; workers
// accumulate into a plain-integer tileStats and flush once on exit, so
// the atomics stay cold.
type Stats struct {
	Rays           atomic.Int64 // rays whose sample interval intersected the box
	Samples        atomic.Int64 // sample points evaluated (sampled + classified)
	SamplesSkipped atomic.Int64 // sample points skipped by macro-cell classification
	CellsVisited   atomic.Int64 // macro cells stepped over by the 3D-DDA
	CellsSkipped   atomic.Int64 // visited cells whose value range classified to zero opacity
}

// Snapshot returns a plain-value copy of the counters.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Rays:           s.Rays.Load(),
		Samples:        s.Samples.Load(),
		SamplesSkipped: s.SamplesSkipped.Load(),
		CellsVisited:   s.CellsVisited.Load(),
		CellsSkipped:   s.CellsSkipped.Load(),
	}
}

// StatsSnapshot is a point-in-time copy of Stats.
type StatsSnapshot struct {
	Rays, Samples, SamplesSkipped, CellsVisited, CellsSkipped int64
}

// SkipFraction returns the share of candidate samples the macro-cell
// grid skipped — the renderer-side sparsity signal autotune's Features
// carry.
func (s StatsSnapshot) SkipFraction() float64 {
	total := s.Samples + s.SamplesSkipped
	if total == 0 {
		return 0
	}
	return float64(s.SamplesSkipped) / float64(total)
}

// tileStats is the per-worker, uncontended accumulator behind Stats.
type tileStats struct {
	rays, samples, samplesSkipped, cellsVisited, cellsSkipped int64
}

func (t *tileStats) flush(s *Stats) {
	if s == nil || *t == (tileStats{}) {
		return
	}
	s.Rays.Add(t.rays)
	s.Samples.Add(t.samples)
	s.SamplesSkipped.Add(t.samplesSkipped)
	s.CellsVisited.Add(t.cellsVisited)
	s.CellsSkipped.Add(t.cellsSkipped)
	*t = tileStats{}
}
