package render

import (
	"math"

	"sortlast/internal/frame"
	"sortlast/internal/transfer"
	"sortlast/internal/volume"
)

// RaycastReference is the pre-acceleration ray caster, kept verbatim as
// the determinism oracle: a serial loop over every candidate sample
// index with a per-sample box.Contains check, interface-dispatched
// sampling and per-sample math.Pow opacity correction. The accelerated
// Raycast must produce byte-identical images — asserted by the identity
// tests in this package and by cmd/renderbench on every run; DESIGN.md
// §11 gives the argument for why macro-cell skipping cannot change a
// bit. Workers, Trace and Stats options are ignored: the oracle is the
// mathematical definition of a frame, not a production path.
func RaycastReference(s Sampler, box volume.Box, cam *Camera, tf *transfer.Func, opt Options) *frame.Image {
	img := frame.NewImage(cam.W, cam.H)
	foot := cam.Footprint(box)
	if foot.Empty() {
		return img
	}
	img.Grow(foot)

	dt := opt.step()
	cutoff := opt.cutoff()
	light := opt.Light
	if light == ([3]float64{}) {
		light = [3]float64{-cam.Dir[0], -cam.Dir[1], -cam.Dir[2]}
	}
	ambient := opt.ambient()

	for py := foot.Y0; py < foot.Y1; py++ {
		row := img.Row(py, foot.X0, foot.X1)
		for px := foot.X0; px < foot.X1; px++ {
			origin := cam.PlanePoint(px, py)
			tMin, tMax, ok := cam.rayBox(origin, box)
			if !ok {
				continue
			}
			// Global sample indices overlapping [tMin, tMax], widened by
			// one step of slack; exact membership is re-checked so that
			// boundary samples are claimed by exactly one box.
			kLo := int(math.Floor(tMin/dt - 0.5))
			kHi := int(math.Ceil(tMax/dt - 0.5))
			var acc frame.Pixel
			for k := kLo; k <= kHi; k++ {
				t := (float64(k) + 0.5) * dt
				x := origin[0] + t*cam.Dir[0]
				y := origin[1] + t*cam.Dir[1]
				z := origin[2] + t*cam.Dir[2]
				if !box.Contains(x, y, z) {
					continue
				}
				v := s.Sample(x, y, z)
				op, in := tf.Classify(v)
				if op <= 0 {
					continue
				}
				if opt.Shaded {
					in *= shade(s, x, y, z, light, ambient)
				}
				// Opacity correction for the step size: op is calibrated
				// for unit steps.
				a := 1 - math.Pow(1-op, dt)
				w := (1 - acc.A) * a
				acc.I += w * in
				acc.A += w
				if acc.A >= cutoff {
					break
				}
			}
			if !acc.Blank() {
				row[px-foot.X0] = acc
			}
		}
	}
	return img
}
