package render

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"sortlast/internal/frame"
	"sortlast/internal/partition"
	"sortlast/internal/transfer"
	"sortlast/internal/volume"
)

// requireIdentical asserts two images agree bit for bit over the whole
// frame (bounds and every pixel's raw float64 fields).
func requireIdentical(t *testing.T, label string, got, want *frame.Image) {
	t.Helper()
	if got.Bounds() != want.Bounds() {
		t.Fatalf("%s: bounds %v, want %v", label, got.Bounds(), want.Bounds())
	}
	full := want.Full()
	for y := full.Y0; y < full.Y1; y++ {
		for x := full.X0; x < full.X1; x++ {
			g, w := got.At(x, y), want.At(x, y)
			if g != w {
				t.Fatalf("%s: pixel (%d,%d) = %v, want %v (dI=%g dA=%g)",
					label, x, y, g, w, g.I-w.I, g.A-w.A)
			}
		}
	}
}

// TestRaycastMatchesReference is the acceptance gate of the accelerated
// kernel: byte-identical output to the pre-acceleration kernel across
// the paper's workload spectrum × shading × worker counts × partitioned
// boxes × the subvolume (ghosted) path.
func TestRaycastMatchesReference(t *testing.T) {
	cases := []struct {
		name string
		vol  *volume.Volume
		tf   *transfer.Func
	}{
		{"engine_low", volume.EngineBlock(48, 48, 20), transfer.EngineLow()},
		{"engine_high", volume.EngineBlock(48, 48, 20), transfer.EngineHigh()},
		{"head", volume.HeadPhantom(48, 48, 24), transfer.Head()},
		{"cube", volume.SolidCube(48, 48, 20), transfer.Cube()},
		// A flat slab: the footprint has very few rows, the regime
		// where the old scanline queue starved its workers.
		{"slab", volume.Ramp(64, 6, 32, 0), transfer.EngineLow()},
	}
	for _, tc := range cases {
		for _, shaded := range []bool{false, true} {
			opt := Options{Shaded: shaded}
			cam := NewCamera(64, 64, tc.vol.Bounds(), 20, 35)
			want := RaycastReference(tc.vol, tc.vol.Bounds(), cam, tc.tf, opt)
			for _, w := range []int{1, 4, 0} {
				opt.Workers = w
				got := Raycast(tc.vol, tc.vol.Bounds(), cam, tc.tf, opt)
				requireIdentical(t, fmt.Sprintf("%s shaded=%v workers=%d", tc.name, shaded, w), got, want)
			}
		}
	}

	// Partitioned boxes and the subvolume path, as the harness drives
	// them (shared volume per box; extracted subvolume with ghost).
	v := volume.EngineBlock(48, 48, 20)
	tf := transfer.EngineLow()
	cam := NewCamera(64, 64, v.Bounds(), 20, 35)
	dec, err := partition.Decompose(v.Bounds(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, shaded := range []bool{false, true} {
		ghost := 1
		if shaded {
			ghost = 2
		}
		for r := 0; r < 4; r++ {
			box := dec.Box(r)
			opt := Options{Shaded: shaded, Workers: 4}
			want := RaycastReference(v, box, cam, tf, opt)
			got := Raycast(v, box, cam, tf, opt)
			requireIdentical(t, fmt.Sprintf("rank %d shaded=%v shared", r, shaded), got, want)

			// The subvolume path compares against the reference kernel
			// over the SAME sampler: Subvolume.Sample can differ from
			// Volume.Sample in the last ulp (a pre-existing property of
			// the extraction), and the acceleration must not add to it.
			sub, err := volume.Extract(v, box, ghost)
			if err != nil {
				t.Fatal(err)
			}
			wantSub := RaycastReference(sub, box, cam, tf, opt)
			gotSub := Raycast(sub, box, cam, tf, opt)
			requireIdentical(t, fmt.Sprintf("rank %d shaded=%v subvolume", r, shaded), gotSub, wantSub)
		}
	}

	// Non-default step sizes (the opacity-correction table's hard case:
	// corr only applies on flat table spans, Pow elsewhere) and disabled
	// early termination.
	for _, opt := range []Options{
		{Step: 0.5},
		{Step: 2.0, Shaded: true},
		{EarlyTermination: -1},
		{Step: 0.75, EarlyTermination: -1},
	} {
		want := RaycastReference(v, v.Bounds(), cam, tf, opt)
		got := Raycast(v, v.Bounds(), cam, tf, opt)
		requireIdentical(t, fmt.Sprintf("opts %+v", opt), got, want)
	}
}

// axisCamera builds a camera directly (bypassing NewCamera) so tests
// can pin exact ray geometry: Scale 1 and an integer/half-integer
// center put rays and samples exactly on voxel and macro-cell
// boundaries.
func axisCamera(w, h int, u, v, dir, center [3]float64) *Camera {
	return &Camera{W: w, H: h, U: u, V: v, Dir: dir, Center: center, Scale: 1}
}

// TestRaycastDDABoundaryGolden drives the DDA through exact boundary
// and corner incidences: rays grazing macro-cell faces (integer x/y
// positions at multiples of 8), sample positions landing exactly on
// cell boundaries (half-integer plane center makes z = integer at every
// sample), and negative/diagonal directions crossing cell corners. The
// volume is a checkerboard with blocks equal to the macro-cell size, so
// every cell boundary separates a skippable cell from a full one —
// the worst case for an off-by-one in the skip window.
func TestRaycastDDABoundaryGolden(t *testing.T) {
	if volume.MacroCell != 8 {
		t.Skip("golden geometry assumes 8-voxel macro cells")
	}
	check := volume.Checker(64, 64, 64, 8, 200)
	sphere := volume.Sphere(64, 64, 64, 0.7, 180)
	tf := transfer.Ramp("gold", 60, 160, 0.4)

	// PlanePoint(px, py) = Center + (px+0.5-W/2)·U + (py+0.5-H/2)·V
	// with Scale 1 and W=H=33: offsets are px-16 ∈ {-16..16}, so with
	// Center (32,32,c) rays pass through INTEGER x,y — every ray with
	// px ≡ 0 (mod 8)+16 grazes a cell face exactly; the half-open
	// Contains decides ownership, and skipping must not disturb it.
	cams := map[string]*Camera{
		"+z axis, rays on faces": axisCamera(33, 33,
			[3]float64{1, 0, 0}, [3]float64{0, 1, 0}, [3]float64{0, 0, 1},
			[3]float64{32, 32, 32}),
		// Center z = 32.5: sample k sits at z = 32.5+(k+0.5)·dt; with
		// dt=1 that is an integer — every sample exactly ON a voxel
		// boundary, every 8th exactly on a cell boundary.
		"+z axis, samples on boundaries": axisCamera(33, 33,
			[3]float64{1, 0, 0}, [3]float64{0, 1, 0}, [3]float64{0, 0, 1},
			[3]float64{32, 32, 32.5}),
		"-z axis": axisCamera(33, 33,
			[3]float64{1, 0, 0}, [3]float64{0, -1, 0}, [3]float64{0, 0, -1},
			[3]float64{32, 32, 32.5}),
		// Diagonal through cell corners: direction (1,1,1)/√3 with the
		// ray through (32,32,32) passes exactly through macro-cell
		// corner lattice points (40,40,40), (48,48,48), …
		"diagonal corners": axisCamera(33, 33,
			[3]float64{1 / math.Sqrt2, -1 / math.Sqrt2, 0},
			[3]float64{1 / math.Sqrt(6), 1 / math.Sqrt(6), -2 / math.Sqrt(6)},
			[3]float64{1 / math.Sqrt(3), 1 / math.Sqrt(3), 1 / math.Sqrt(3)},
			[3]float64{32, 32, 32}),
	}
	for _, vol := range []*volume.Volume{check, sphere} {
		for name, cam := range cams {
			for _, step := range []float64{1, 0.5, 2} {
				for _, shaded := range []bool{false, true} {
					opt := Options{Step: step, Shaded: shaded}
					want := RaycastReference(vol, vol.Bounds(), cam, tf, opt)
					got := Raycast(vol, vol.Bounds(), cam, tf, opt)
					requireIdentical(t,
						fmt.Sprintf("%s step=%g shaded=%v", name, step, shaded), got, want)
				}
			}
		}
	}
}

// randomVolume builds a volume with empty space, dense blobs and noise —
// enough structure that macro-cell skipping, boundary processing and
// dense evaluation all fire.
func randomVolume(rng *rand.Rand) *volume.Volume {
	nx := 16 + rng.Intn(40)
	ny := 16 + rng.Intn(40)
	nz := 16 + rng.Intn(32)
	v := volume.New(nx, ny, nz)
	for i := 0; i < 1+rng.Intn(3); i++ {
		lo := [3]int{rng.Intn(nx), rng.Intn(ny), rng.Intn(nz)}
		v.Fill(volume.Box{
			Lo: lo,
			Hi: [3]int{lo[0] + 1 + rng.Intn(nx), lo[1] + 1 + rng.Intn(ny), lo[2] + 1 + rng.Intn(nz)},
		}, uint8(50+rng.Intn(200)))
	}
	// Sprinkle voxels so some cells have wide value ranges.
	for i := 0; i < 200; i++ {
		v.Set(rng.Intn(nx), rng.Intn(ny), rng.Intn(nz), uint8(rng.Intn(256)))
	}
	return v
}

// TestRaycastRandomizedIdentity fuzzes the accelerated kernel against
// the reference over random volumes, transfer functions, cameras,
// boxes, step sizes and option combinations. Deterministic seed: a
// failure reproduces.
func TestRaycastRandomizedIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	iters := 40
	if testing.Short() {
		iters = 10
	}
	for i := 0; i < iters; i++ {
		v := randomVolume(rng)
		lo := rng.Intn(120)
		tf := transfer.Ramp("fuzz", lo, lo+1+rng.Intn(255-lo-1), 0.05+rng.Float64()*0.9)
		size := 40 + rng.Intn(41)
		cam := NewCamera(size, size, v.Bounds(), rng.Float64()*360, rng.Float64()*360)
		box := v.Bounds()
		if rng.Intn(2) == 0 { // random sub-box, as a partitioned rank sees
			var blo, bhi [3]int
			dims := [3]int{v.NX, v.NY, v.NZ}
			for a := 0; a < 3; a++ {
				blo[a] = rng.Intn(dims[a] - 1)
				bhi[a] = blo[a] + 1 + rng.Intn(dims[a]-blo[a]-1)
			}
			box = volume.Box{Lo: blo, Hi: bhi}
		}
		opt := Options{
			Step:   []float64{1, 1, 0.5, 1.7}[rng.Intn(4)],
			Shaded: rng.Intn(2) == 0,
		}
		if rng.Intn(4) == 0 {
			opt.EarlyTermination = -1
		}
		var s Sampler = v
		srcName := "volume"
		if rng.Intn(2) == 0 {
			sub, err := volume.Extract(v, box, 2)
			if err != nil {
				t.Fatal(err)
			}
			s = sub
			srcName = "subvolume"
		}
		label := fmt.Sprintf("iter %d (%s box=%v opts=%+v)", i, srcName, box, opt)
		want := RaycastReference(s, box, cam, tf, opt)
		got := Raycast(s, box, cam, tf, opt)
		requireIdentical(t, label, got, want)
		opt.Workers = 3
		requireIdentical(t, label+" workers=3", Raycast(s, box, cam, tf, opt), want)
	}
}

// TestAmbientSentinel pins the Options.Ambient semantics: 0 means the
// default 0.3, negative means a true zero ambient (previously
// inexpressible), positive passes through.
func TestAmbientSentinel(t *testing.T) {
	for _, tc := range []struct {
		in, want float64
	}{
		{0, 0.3}, {-1, 0}, {-0.001, 0}, {0.5, 0.5}, {0.3, 0.3}, {1, 1},
	} {
		if got := (Options{Ambient: tc.in}).ambient(); got != tc.want {
			t.Errorf("Options{Ambient: %g}.ambient() = %g, want %g", tc.in, got, tc.want)
		}
	}
	for _, tc := range []struct {
		in, want float64
	}{
		{0, 0.25}, {-1, 0}, {0.5, 0.5},
	} {
		if got := (RasterOptions{Ambient: tc.in}).ambient(); got != tc.want {
			t.Errorf("RasterOptions{Ambient: %g}.ambient() = %g, want %g", tc.in, got, tc.want)
		}
	}

	// Behavioral regression: with zero ambient, a shaded back face gets
	// darker than under the default ambient floor, and Ambient: -1
	// renders exactly like an explicit tiny-but-zero term should —
	// identical to the reference kernel under the same option.
	v := volume.Sphere(32, 32, 32, 0.8, 200)
	tf := transfer.Cube()
	cam := NewCamera(48, 48, v.Bounds(), 30, 40)
	def := Raycast(v, v.Bounds(), cam, tf, Options{Shaded: true})
	noAmb := Raycast(v, v.Bounds(), cam, tf, Options{Shaded: true, Ambient: -1})
	requireIdentical(t, "ambient=-1 vs reference", noAmb,
		RaycastReference(v, v.Bounds(), cam, tf, Options{Shaded: true, Ambient: -1}))
	darker := false
	full := def.Full()
	for y := full.Y0; y < full.Y1 && !darker; y++ {
		for x := full.X0; x < full.X1; x++ {
			if noAmb.At(x, y).I < def.At(x, y).I {
				darker = true
				break
			}
		}
	}
	if !darker {
		t.Fatal("Ambient: -1 produced no pixel darker than the 0.3 default — sentinel not applied")
	}
}

// TestRaycastStats sanity-checks the skip counters: the mostly-empty
// cube dataset must skip a large majority of its candidate samples, and
// the counters must add up between serial and parallel runs.
func TestRaycastStats(t *testing.T) {
	v := volume.SolidCube(64, 64, 28)
	tf := transfer.Cube()
	cam := NewCamera(96, 96, v.Bounds(), 20, 30)

	var serial Stats
	Raycast(v, v.Bounds(), cam, tf, Options{Workers: 1, Stats: &serial})
	s := serial.Snapshot()
	if s.Rays == 0 || s.Samples == 0 {
		t.Fatalf("no work recorded: %+v", s)
	}
	if s.SkipFraction() < 0.5 {
		t.Errorf("cube skip fraction = %.2f, want > 0.5 (samples=%d skipped=%d)",
			s.SkipFraction(), s.Samples, s.SamplesSkipped)
	}
	if s.CellsSkipped == 0 || s.CellsSkipped > s.CellsVisited {
		t.Errorf("cell counters inconsistent: %+v", s)
	}

	var par Stats
	Raycast(v, v.Bounds(), cam, tf, Options{Workers: 4, Stats: &par})
	if p := par.Snapshot(); p != s {
		t.Errorf("parallel counters %+v differ from serial %+v", p, s)
	}
}

// TestRaycastAllocsPinned pins the serial hot path's allocations: after
// the volume's macro grid is built, a Raycast performs only the image
// allocations plus the kernel — regressions (an escaping closure, a
// per-ray slice) show up here.
func TestRaycastAllocsPinned(t *testing.T) {
	v := volume.EngineBlock(32, 32, 16)
	tf := transfer.EngineLow()
	cam := NewCamera(48, 48, v.Bounds(), 20, 30)
	v.MacroCells() // amortized once per dataset, not part of the pin
	allocs := testing.AllocsPerRun(10, func() {
		Raycast(v, v.Bounds(), cam, tf, Options{Workers: 1})
	})
	// NewImage + Grow storage + rows + kernel + tile closure ≈ single
	// digits; 12 leaves slack for runtime jitter without letting a
	// per-ray or per-sample allocation (thousands) through.
	if allocs > 12 {
		t.Fatalf("Raycast serial allocations = %v, want <= 12", allocs)
	}
}
