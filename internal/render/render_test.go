package render

import (
	"math"
	"testing"

	"sortlast/internal/frame"
	"sortlast/internal/partition"
	"sortlast/internal/transfer"
	"sortlast/internal/volume"
)

func box64() volume.Box { return volume.Box{Hi: [3]int{64, 64, 32}} }

func TestCameraBasisOrthonormal(t *testing.T) {
	angles := [][2]float64{{0, 0}, {30, 0}, {0, 45}, {27, 63}, {-40, 110}, {90, 90}}
	for _, a := range angles {
		cam := NewCamera(128, 128, box64(), a[0], a[1])
		vecs := [][3]float64{cam.U, cam.V, cam.Dir}
		for i, v := range vecs {
			if d := math.Abs(dot(v, v) - 1); d > 1e-12 {
				t.Errorf("rot %v: basis %d not unit (|v|^2-1 = %g)", a, i, d)
			}
			for j := i + 1; j < 3; j++ {
				if d := math.Abs(dot(v, vecs[j])); d > 1e-12 {
					t.Errorf("rot %v: basis %d,%d not orthogonal (%g)", a, i, j, d)
				}
			}
		}
	}
}

func TestProjectInvertsPlanePoint(t *testing.T) {
	cam := NewCamera(200, 150, box64(), 25, -40)
	for _, px := range []int{0, 7, 100, 199} {
		for _, py := range []int{0, 3, 74, 149} {
			p := cam.PlanePoint(px, py)
			fx, fy := cam.Project(p)
			if math.Abs(fx-(float64(px)+0.5)) > 1e-9 || math.Abs(fy-(float64(py)+0.5)) > 1e-9 {
				t.Fatalf("pixel (%d,%d) round-tripped to (%v,%v)", px, py, fx, fy)
			}
		}
	}
}

func TestFootprintCoversProjection(t *testing.T) {
	cam := NewCamera(128, 128, box64(), 30, 50)
	b := volume.Box{Lo: [3]int{10, 20, 5}, Hi: [3]int{30, 40, 25}}
	foot := cam.Footprint(b)
	for _, corner := range b.Corners() {
		fx, fy := cam.Project(corner)
		x, y := int(fx), int(fy)
		if x >= 0 && x < cam.W && y >= 0 && y < cam.H && !foot.Contains(x, y) {
			t.Errorf("corner projects to (%d,%d) outside footprint %v", x, y, foot)
		}
	}
}

func TestCameraFitsVolumeAtAnyRotation(t *testing.T) {
	// The whole volume footprint must stay inside the frame regardless of
	// rotation (the 0.92 margin guarantees it).
	b := volume.Box{Hi: [3]int{256, 256, 110}}
	for rx := 0.0; rx < 360; rx += 30 {
		for ry := 0.0; ry < 360; ry += 30 {
			cam := NewCamera(384, 384, b, rx, ry)
			for _, corner := range b.Corners() {
				fx, fy := cam.Project(corner)
				if fx < 0 || fx > 384 || fy < 0 || fy > 384 {
					t.Fatalf("rot (%v,%v): corner projects outside frame (%v,%v)", rx, ry, fx, fy)
				}
			}
		}
	}
}

func TestRaycastEmptyVolumeIsBlank(t *testing.T) {
	v := volume.New(16, 16, 16)
	cam := NewCamera(32, 32, v.Bounds(), 0, 0)
	img := Raycast(v, v.Bounds(), cam, transfer.Cube(), Options{})
	if n := img.CountNonBlank(img.Full()); n != 0 {
		t.Errorf("empty volume rendered %d non-blank pixels", n)
	}
}

func TestRaycastOpaqueCubeCoversCenter(t *testing.T) {
	v := volume.SolidCube(32, 32, 32)
	cam := NewCamera(64, 64, v.Bounds(), 0, 0)
	img := Raycast(v, v.Bounds(), cam, transfer.Cube(), Options{})
	center := img.At(32, 32)
	if center.A < 0.99 {
		t.Errorf("center pixel alpha = %v, want ~1 for an opaque cube", center.A)
	}
	if corner := img.At(1, 1); !corner.Blank() {
		t.Errorf("corner pixel = %v, want blank", corner)
	}
	// The cube must occupy a small fraction of the frame.
	frac := float64(img.CountNonBlank(img.Full())) / float64(64*64)
	if frac < 0.01 || frac > 0.2 {
		t.Errorf("cube covers %.3f of the frame, expected a small compact footprint", frac)
	}
}

func TestRaycastIntensityMatchesMaterial(t *testing.T) {
	// A fully opaque material of value 255 under the cube transfer
	// function must produce intensity ~1 on its silhouette.
	v := volume.SolidCube(32, 32, 32)
	cam := NewCamera(64, 64, v.Bounds(), 0, 0)
	img := Raycast(v, v.Bounds(), cam, transfer.Cube(), Options{})
	p := img.At(32, 32)
	if p.I < 0.95 || p.I > 1.001 {
		t.Errorf("center intensity = %v, want ~1", p.I)
	}
}

// The master property: rendering each partition box separately and
// over-compositing the subimages in depth order equals rendering the
// whole volume at once. Early termination is disabled so the equality is
// near-exact (regrouping error only).
func TestPartitionedRenderMatchesSerial(t *testing.T) {
	vols := map[string]*volume.Volume{
		"engine": volume.EngineBlock(48, 48, 20),
		"head":   volume.HeadPhantom(48, 48, 22),
		"cube":   volume.SolidCube(48, 48, 20),
	}
	tfs := map[string]*transfer.Func{
		"engine": transfer.EngineLow(),
		"head":   transfer.Head(),
		"cube":   transfer.Cube(),
	}
	opt := Options{EarlyTermination: -1}
	for name, v := range vols {
		for _, p := range []int{2, 4, 8} {
			for _, rot := range [][2]float64{{0, 0}, {30, 45}} {
				cam := NewCamera(64, 64, v.Bounds(), rot[0], rot[1])
				serial := Raycast(v, v.Bounds(), cam, tfs[name], opt)

				dec, err := partition.Decompose(v.Bounds(), p)
				if err != nil {
					t.Fatal(err)
				}
				composed := frame.NewImage(64, 64)
				for _, r := range dec.DepthOrder(cam.Dir) {
					sub := Raycast(v, dec.Box(r), cam, tfs[name], opt)
					// composed (front so far) over sub (behind).
					b := sub.Bounds()
					if b.Empty() {
						continue
					}
					pixels := sub.PackRegion(b)
					composed.CompositeRegion(b, pixels, false)
				}
				if d := serial.MaxAbsDiff(composed, serial.Full()); d > 1e-9 {
					t.Errorf("%s P=%d rot=%v: composed differs from serial by %g", name, p, rot, d)
				}
			}
		}
	}
}

// Partitioned rendering through extracted subvolumes (ghost cells, as the
// real partitioning phase ships them) must also match the serial image.
func TestSubvolumeRenderMatchesSerial(t *testing.T) {
	v := volume.EngineBlock(40, 40, 18)
	tf := transfer.EngineHigh()
	opt := Options{EarlyTermination: -1}
	cam := NewCamera(64, 64, v.Bounds(), 20, 30)
	serial := Raycast(v, v.Bounds(), cam, tf, opt)

	dec, err := partition.Decompose(v.Bounds(), 8)
	if err != nil {
		t.Fatal(err)
	}
	composed := frame.NewImage(64, 64)
	for _, r := range dec.DepthOrder(cam.Dir) {
		sub, err := volume.Extract(v, dec.Box(r), 1)
		if err != nil {
			t.Fatal(err)
		}
		img := Raycast(sub, dec.Box(r), cam, tf, opt)
		b := img.Bounds()
		if b.Empty() {
			continue
		}
		composed.CompositeRegion(b, img.PackRegion(b), false)
	}
	if d := serial.MaxAbsDiff(composed, serial.Full()); d > 1e-9 {
		t.Errorf("subvolume-rendered composition differs from serial by %g", d)
	}
}

func TestEarlyTerminationCloseToExact(t *testing.T) {
	v := volume.HeadPhantom(40, 40, 20)
	cam := NewCamera(64, 64, v.Bounds(), 10, 20)
	exact := Raycast(v, v.Bounds(), cam, transfer.Head(), Options{EarlyTermination: -1})
	fast := Raycast(v, v.Bounds(), cam, transfer.Head(), Options{})
	if d := exact.MaxAbsDiff(fast, exact.Full()); d > 2e-3 {
		t.Errorf("early termination changes the image by %g", d)
	}
}

func TestShadedRenderDiffersButBounded(t *testing.T) {
	v := volume.Sphere(32, 32, 32, 0.8, 200)
	tf := transfer.Ramp("t", 100, 150, 0.9)
	cam := NewCamera(48, 48, v.Bounds(), 0, 0)
	flat := Raycast(v, v.Bounds(), cam, tf, Options{})
	shaded := Raycast(v, v.Bounds(), cam, tf, Options{Shaded: true})
	if flat.MaxAbsDiff(shaded, flat.Full()) == 0 {
		t.Error("shading must change the image")
	}
	for y := 0; y < 48; y++ {
		for x := 0; x < 48; x++ {
			p := shaded.At(x, y)
			if p.I < 0 || p.I > 1.0001 || p.A < 0 || p.A > 1.0001 {
				t.Fatalf("shaded pixel (%d,%d) out of range: %v", x, y, p)
			}
		}
	}
}

func TestSmallerStepRefines(t *testing.T) {
	v := volume.Sphere(24, 24, 24, 0.7, 255)
	tf := transfer.Ramp("t", 50, 200, 0.3)
	cam := NewCamera(32, 32, v.Bounds(), 15, 25)
	coarse := Raycast(v, v.Bounds(), cam, tf, Options{Step: 2, EarlyTermination: -1})
	fine := Raycast(v, v.Bounds(), cam, tf, Options{Step: 0.5, EarlyTermination: -1})
	// Both must show the object in the same place; opacity-corrected
	// integration keeps values comparable.
	d := coarse.MaxAbsDiff(fine, coarse.Full())
	if d > 0.25 {
		t.Errorf("step refinement changes image by %g — opacity correction broken?", d)
	}
	if fine.CountNonBlank(fine.Full()) == 0 {
		t.Error("fine image empty")
	}
}

func TestSplatRendersCompactObject(t *testing.T) {
	v := volume.SolidCube(32, 32, 32)
	cam := NewCamera(64, 64, v.Bounds(), 0, 0)
	img := Splat(v, v.Bounds(), cam, transfer.Cube(), Options{})
	if img.At(32, 32).A < 0.9 {
		t.Errorf("splat center alpha = %v", img.At(32, 32).A)
	}
	if !img.At(2, 2).Blank() {
		t.Error("splat corner must be blank")
	}
}

func TestSplatRoughlyAgreesWithRaycast(t *testing.T) {
	v := volume.SolidCube(32, 32, 32)
	cam := NewCamera(64, 64, v.Bounds(), 0, 0)
	rc := Raycast(v, v.Bounds(), cam, transfer.Cube(), Options{})
	sp := Splat(v, v.Bounds(), cam, transfer.Cube(), Options{})
	// Compare coverage. Splatting's bilinear footprint dilates the
	// silhouette by up to one pixel on each side, so for a w x w square
	// silhouette expect between w^2 and (w+2)^2 lit pixels.
	a := rc.CountNonBlank(rc.Full())
	b := sp.CountNonBlank(sp.Full())
	w := math.Sqrt(float64(a))
	if float64(b) < float64(a) || float64(b) > (w+2)*(w+2)+1 {
		t.Errorf("splat lit %d pixels, raycast %d — outside dilation bound", b, a)
	}
}

func TestSplatRotatedDominantAxis(t *testing.T) {
	// Rotate so the dominant axis changes; the renderer must still
	// produce a sane image (exercises all three sheet orientations).
	v := volume.Sphere(24, 24, 24, 0.8, 255)
	tf := transfer.Cube()
	for _, rot := range [][2]float64{{0, 0}, {0, 90}, {90, 0}, {45, 45}, {0, 180}} {
		cam := NewCamera(48, 48, v.Bounds(), rot[0], rot[1])
		img := Splat(v, v.Bounds(), cam, tf, Options{})
		if img.CountNonBlank(img.Full()) == 0 {
			t.Errorf("rot %v: splat image empty", rot)
		}
	}
}

func TestRaycastSubvolumeFootprintOnly(t *testing.T) {
	// A rank's image must have bounds no larger than its box footprint.
	v := volume.EngineBlock(48, 48, 20)
	cam := NewCamera(96, 96, v.Bounds(), 0, 0)
	dec, err := partition.Decompose(v.Bounds(), 8)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 8; r++ {
		img := Raycast(v, dec.Box(r), cam, transfer.EngineLow(), Options{})
		foot := cam.Footprint(dec.Box(r))
		if !foot.ContainsRect(img.Bounds()) {
			t.Errorf("rank %d: bounds %v exceed footprint %v", r, img.Bounds(), foot)
		}
	}
}
