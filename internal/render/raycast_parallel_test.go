package render

import (
	"testing"

	"sortlast/internal/partition"
	"sortlast/internal/transfer"
	"sortlast/internal/volume"
)

// TestRaycastParallelMatchesSerial renders with various worker counts and
// demands bit-identical output to the serial path: scanlines are
// independent, so scheduling must not influence a single pixel value.
func TestRaycastParallelMatchesSerial(t *testing.T) {
	vols := map[string]*volume.Volume{
		"engine": volume.EngineBlock(40, 40, 18),
		"head":   volume.HeadPhantom(40, 40, 20),
	}
	tfs := map[string]*transfer.Func{
		"engine": transfer.EngineHigh(),
		"head":   transfer.Head(),
	}
	for name, v := range vols {
		for _, shaded := range []bool{false, true} {
			cam := NewCamera(64, 64, v.Bounds(), 20, 35)
			serial := Raycast(v, v.Bounds(), cam, tfs[name], Options{Workers: 1, Shaded: shaded})
			// 0 = GOMAXPROCS; 97 exceeds the row count and must be capped.
			for _, w := range []int{0, 2, 4, 97} {
				par := Raycast(v, v.Bounds(), cam, tfs[name], Options{Workers: w, Shaded: shaded})
				if par.Bounds() != serial.Bounds() {
					t.Fatalf("%s shaded=%v workers=%d: bounds %v, want %v",
						name, shaded, w, par.Bounds(), serial.Bounds())
				}
				for y := 0; y < 64; y++ {
					for x := 0; x < 64; x++ {
						if par.At(x, y) != serial.At(x, y) {
							t.Fatalf("%s shaded=%v workers=%d: pixel (%d,%d) = %v, want %v",
								name, shaded, w, x, y, par.At(x, y), serial.At(x, y))
						}
					}
				}
			}
		}
	}
}

// TestRaycastParallelSubvolumes runs the per-rank configuration — extracted
// subvolumes with ghost cells, one image per box — under parallel workers,
// matching how the harness invokes the renderer.
func TestRaycastParallelSubvolumes(t *testing.T) {
	v := volume.EngineBlock(40, 40, 18)
	tf := transfer.EngineLow()
	cam := NewCamera(64, 64, v.Bounds(), 10, 25)
	dec, err := partition.Decompose(v.Bounds(), 8)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 8; r++ {
		sub, err := volume.Extract(v, dec.Box(r), 1)
		if err != nil {
			t.Fatal(err)
		}
		serial := Raycast(sub, dec.Box(r), cam, tf, Options{Workers: 1})
		par := Raycast(sub, dec.Box(r), cam, tf, Options{Workers: 4})
		if par.Bounds() != serial.Bounds() {
			t.Fatalf("rank %d: bounds %v, want %v", r, par.Bounds(), serial.Bounds())
		}
		for y := 0; y < 64; y++ {
			for x := 0; x < 64; x++ {
				if par.At(x, y) != serial.At(x, y) {
					t.Fatalf("rank %d: pixel (%d,%d) differs", r, x, y)
				}
			}
		}
	}
}
