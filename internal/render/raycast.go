package render

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"sortlast/internal/frame"
	"sortlast/internal/trace"
	"sortlast/internal/transfer"
	"sortlast/internal/volume"
)

// Sampler supplies scalar samples and gradients in global coordinates.
// Both *volume.Volume and *volume.Subvolume satisfy it. Those two
// concrete types additionally get the accelerated kernel (macro-cell
// empty-space skipping, direct trilinear loads); other implementations
// render through the interface with the same output semantics.
type Sampler interface {
	Sample(x, y, z float64) float64
	Gradient(x, y, z float64) [3]float64
}

// Options tune the ray caster.
type Options struct {
	// Step is the sample spacing along rays in voxel units. Zero means 1.
	Step float64
	// EarlyTermination stops a ray once accumulated opacity exceeds this
	// value. Zero means the default 0.999; negative disables termination
	// (needed when an exact match with segment-composited rendering is
	// required).
	EarlyTermination float64
	// Shaded enables Lambertian shading from the scalar gradient. The
	// sampler then needs ghost >= 2 at box boundaries.
	Shaded bool
	// Light is the direction toward the light source for shading;
	// zero means head-on lighting (the view direction).
	Light [3]float64
	// Ambient is the ambient term used with shading. Zero means the
	// default 0.3; negative means a true zero ambient term — the same
	// negative-disables sentinel as EarlyTermination, making "no
	// ambient" expressible (a plain 0 was indistinguishable from unset).
	Ambient float64
	// Workers bounds the worker pool rendering tiles concurrently.
	// Zero or negative means GOMAXPROCS; 1 renders serially on the
	// calling goroutine. Tiles are disjoint regions of pre-grown
	// storage and every pixel depends only on its own ray, so the
	// output is bit-identical for any worker count.
	Workers int
	// Trace, when set, records a "raycast" span covering the tile loop
	// (with a nested "grid-build" span for kernel + macro-grid setup)
	// on this rank's track. nil (the default) records nothing.
	Trace *trace.Rank
	// Stats, when set, accumulates ray/sample/macro-cell counters —
	// including how much work empty-space skipping removed — into the
	// given collector. Shared collectors are safe (atomics); nil (the
	// default) skips collection.
	Stats *Stats
	// Demote, when set, is polled as each tile starts: once it reads
	// true, remaining tiles terminate rays at ApproxCutoff instead of
	// the configured cutoff, salvaging a frame that is blowing its
	// budget mid-render (the serving tier's frame watchdog flips it).
	// nil — the default — renders every tile at the configured cutoff
	// and stays byte-identical.
	Demote *atomic.Bool
}

func (o Options) step() float64 {
	if o.Step <= 0 {
		return 1
	}
	return o.Step
}

func (o Options) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// ApproxCutoff is the early-termination opacity threshold the "approx"
// quality contract renders with: well below the 0.999 full-quality
// default, so rays give up as soon as the view is nearly opaque. The
// residual (1 - ApproxCutoff) bounds the per-ray accumulation error.
const ApproxCutoff = 0.98

// Cutoff resolves the EarlyTermination sentinels (zero → 0.999 default,
// negative → disabled) to the threshold the kernel actually uses, so
// layers reporting error bounds see the effective value.
func (o Options) Cutoff() float64 { return o.cutoff() }

func (o Options) cutoff() float64 {
	switch {
	case o.EarlyTermination == 0:
		return 0.999
	case o.EarlyTermination < 0:
		return math.Inf(1)
	default:
		return o.EarlyTermination
	}
}

func (o Options) ambient() float64 {
	switch {
	case o.Ambient == 0:
		return 0.3
	case o.Ambient < 0:
		return 0
	default:
		return o.Ambient
	}
}

// Tile geometry of the work queue. A tile row is 64 pixels = 1 KiB of
// pixel storage = 16 cache lines, so neighboring tiles contend for at
// most one line per row; 4 rows per tile keeps a tile coarse enough
// that the atomic claim is noise yet fine enough that a footprint with
// very few rows still splits across workers (the scanline queue this
// replaced went serial whenever the footprint was shorter than the
// worker count).
const (
	tileW = 64
	tileH = 4
)

// Raycast renders the portion of the scene inside box, as seen by cam,
// into a sparse subimage. Sample positions are globally aligned: sample k
// of any ray sits at parameter (k+0.5)*step measured from the camera's
// image plane, and a sample is accumulated exactly when its world
// position lies inside the half-open box. Disjoint boxes therefore
// partition every ray's samples, and over-compositing the per-box images
// front-to-back reproduces the full-volume rendering.
//
// The implementation is the accelerated kernel — macro-cell empty-space
// skipping over a min/max grid, a contiguous in-box sample interval in
// place of per-sample containment checks, precomputed opacity
// correction — but its output is bit-identical to RaycastReference for
// every method, shading and worker-count combination (DESIGN.md §11
// explains why; the identity tests enforce it).
func Raycast(s Sampler, box volume.Box, cam *Camera, tf *transfer.Func, opt Options) *frame.Image {
	img := frame.NewImage(cam.W, cam.H)
	foot := cam.Footprint(box)
	if foot.Empty() {
		return img
	}
	img.Grow(foot)
	tm := opt.Trace.Begin()
	defer opt.Trace.End(tm, trace.SpanRaycast, "")

	// Kernel setup includes the once-per-volume macro-cell grid build
	// (amortized by the cache on the volume); it gets its own span
	// because the first frame of a dataset pays it.
	gm := opt.Trace.Begin()
	k := newKernel(s, box, cam, tf, opt)
	opt.Trace.End(gm, trace.SpanGridBuild, "")

	tilesX := (foot.Dx() + tileW - 1) / tileW
	tilesY := (foot.Dy() + tileH - 1) / tileH
	tiles := tilesX * tilesY

	// A demoted frame's remaining tiles render through a second kernel
	// that differs only in cutoff, built lazily on the first demoted
	// tile. Per-tile granularity keeps the fast path untouched: pixels
	// rendered before the flip flipped are already full quality, and a
	// tile never mixes cutoffs.
	var (
		demoteOnce   sync.Once
		demoteKernel *kernel
	)
	demoted := func() *kernel {
		demoteOnce.Do(func() {
			o := opt
			o.EarlyTermination = ApproxCutoff
			demoteKernel = newKernel(s, box, cam, tf, o)
		})
		return demoteKernel
	}

	renderTile := func(idx int, st *tileStats) {
		kt := k
		if opt.Demote != nil && k.cutoff > ApproxCutoff && opt.Demote.Load() {
			kt = demoted()
		}
		x0 := foot.X0 + (idx%tilesX)*tileW
		y0 := foot.Y0 + (idx/tilesX)*tileH
		x1 := min(x0+tileW, foot.X1)
		y1 := min(y0+tileH, foot.Y1)
		for py := y0; py < y1; py++ {
			row := img.Row(py, x0, x1)
			for px := x0; px < x1; px++ {
				if acc := kt.castRay(px, py, st); !acc.Blank() {
					row[px-x0] = acc
				}
			}
		}
	}

	workers := opt.workers()
	if workers > tiles {
		workers = tiles
	}
	if workers <= 1 {
		var st tileStats
		for idx := 0; idx < tiles; idx++ {
			renderTile(idx, &st)
		}
		st.flush(opt.Stats)
		return img
	}
	// Tiles are claimed off one atomic counter; workers share nothing
	// else (per-worker stats flush once at exit). Pixels depend only on
	// the ray through them, so scheduling cannot change the output.
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var st tileStats
			for {
				idx := int(next.Add(1)) - 1
				if idx >= tiles {
					st.flush(opt.Stats)
					return
				}
				renderTile(idx, &st)
			}
		}()
	}
	wg.Wait()
	return img
}

// shade returns a Lambertian brightness factor from the local gradient.
func shade(s Sampler, x, y, z float64, light [3]float64, ambient float64) float64 {
	g := s.Gradient(x, y, z)
	n := math.Sqrt(g[0]*g[0] + g[1]*g[1] + g[2]*g[2])
	if n < 1e-9 {
		return 1 // flat region: unshaded
	}
	// The gradient points toward increasing density; the surface normal
	// faces outward (toward decreasing density).
	d := -(g[0]*light[0] + g[1]*light[1] + g[2]*light[2]) / n
	if d < 0 {
		d = 0
	}
	return ambient + (1-ambient)*d
}
