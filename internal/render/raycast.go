package render

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"sortlast/internal/frame"
	"sortlast/internal/trace"
	"sortlast/internal/transfer"
	"sortlast/internal/volume"
)

// Sampler supplies scalar samples and gradients in global coordinates.
// Both *volume.Volume and *volume.Subvolume satisfy it.
type Sampler interface {
	Sample(x, y, z float64) float64
	Gradient(x, y, z float64) [3]float64
}

// Options tune the ray caster.
type Options struct {
	// Step is the sample spacing along rays in voxel units. Zero means 1.
	Step float64
	// EarlyTermination stops a ray once accumulated opacity exceeds this
	// value. Zero means the default 0.999; negative disables termination
	// (needed when an exact match with segment-composited rendering is
	// required).
	EarlyTermination float64
	// Shaded enables Lambertian shading from the scalar gradient. The
	// sampler then needs ghost >= 2 at box boundaries.
	Shaded bool
	// Light is the direction toward the light source for shading;
	// zero means head-on lighting (the view direction).
	Light [3]float64
	// Ambient is the ambient term used with shading, default 0.3.
	Ambient float64
	// Workers bounds the worker pool rendering scanlines concurrently.
	// Zero or negative means GOMAXPROCS; 1 renders serially on the
	// calling goroutine. Scanlines are disjoint Row slices and every
	// pixel is independent, so the output is bit-identical for any
	// worker count.
	Workers int
	// Trace, when set, records a "raycast" span covering the scanline
	// loop on this rank's track. nil (the default) records nothing.
	Trace *trace.Rank
}

func (o Options) step() float64 {
	if o.Step <= 0 {
		return 1
	}
	return o.Step
}

func (o Options) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

func (o Options) cutoff() float64 {
	switch {
	case o.EarlyTermination == 0:
		return 0.999
	case o.EarlyTermination < 0:
		return math.Inf(1)
	default:
		return o.EarlyTermination
	}
}

// Raycast renders the portion of the scene inside box, as seen by cam,
// into a sparse subimage. Sample positions are globally aligned: sample k
// of any ray sits at parameter (k+0.5)*step measured from the camera's
// image plane, and a sample is accumulated exactly when its world
// position lies inside the half-open box. Disjoint boxes therefore
// partition every ray's samples, and over-compositing the per-box images
// front-to-back reproduces the full-volume rendering.
func Raycast(s Sampler, box volume.Box, cam *Camera, tf *transfer.Func, opt Options) *frame.Image {
	img := frame.NewImage(cam.W, cam.H)
	foot := cam.Footprint(box)
	if foot.Empty() {
		return img
	}
	img.Grow(foot)
	tm := opt.Trace.Begin()
	defer opt.Trace.End(tm, trace.SpanRaycast, "")

	dt := opt.step()
	cutoff := opt.cutoff()
	light := opt.Light
	if light == ([3]float64{}) {
		light = [3]float64{-cam.Dir[0], -cam.Dir[1], -cam.Dir[2]}
	}
	ambient := opt.Ambient
	if ambient == 0 {
		ambient = 0.3
	}

	renderRow := func(py int) {
		row := img.Row(py, foot.X0, foot.X1)
		for px := foot.X0; px < foot.X1; px++ {
			origin := cam.PlanePoint(px, py)
			tMin, tMax, ok := cam.rayBox(origin, box)
			if !ok {
				continue
			}
			// Global sample indices overlapping [tMin, tMax], widened by
			// one step of slack; exact membership is re-checked so that
			// boundary samples are claimed by exactly one box.
			kLo := int(math.Floor(tMin/dt - 0.5))
			kHi := int(math.Ceil(tMax/dt - 0.5))
			var acc frame.Pixel
			for k := kLo; k <= kHi; k++ {
				t := (float64(k) + 0.5) * dt
				x := origin[0] + t*cam.Dir[0]
				y := origin[1] + t*cam.Dir[1]
				z := origin[2] + t*cam.Dir[2]
				if !box.Contains(x, y, z) {
					continue
				}
				v := s.Sample(x, y, z)
				op, in := tf.Classify(v)
				if op <= 0 {
					continue
				}
				if opt.Shaded {
					in *= shade(s, x, y, z, light, ambient)
				}
				// Opacity correction for the step size: op is calibrated
				// for unit steps.
				a := 1 - math.Pow(1-op, dt)
				w := (1 - acc.A) * a
				acc.I += w * in
				acc.A += w
				if acc.A >= cutoff {
					break
				}
			}
			if !acc.Blank() {
				row[px-foot.X0] = acc
			}
		}
	}

	rows := foot.Dy()
	workers := opt.workers()
	if workers > rows {
		workers = rows
	}
	if workers <= 1 {
		for py := foot.Y0; py < foot.Y1; py++ {
			renderRow(py)
		}
		return img
	}
	// Scanlines are disjoint slices of pre-grown storage, so workers
	// share nothing but the atomic row counter; pixels depend only on
	// the ray through them, so scheduling cannot change the output.
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				py := foot.Y0 + int(next.Add(1)) - 1
				if py >= foot.Y1 {
					return
				}
				renderRow(py)
			}
		}()
	}
	wg.Wait()
	return img
}

// shade returns a Lambertian brightness factor from the local gradient.
func shade(s Sampler, x, y, z float64, light [3]float64, ambient float64) float64 {
	g := s.Gradient(x, y, z)
	n := math.Sqrt(g[0]*g[0] + g[1]*g[1] + g[2]*g[2])
	if n < 1e-9 {
		return 1 // flat region: unshaded
	}
	// The gradient points toward increasing density; the surface normal
	// faces outward (toward decreasing density).
	d := -(g[0]*light[0] + g[1]*light[1] + g[2]*light[2]) / n
	if d < 0 {
		d = 0
	}
	return ambient + (1-ambient)*d
}
