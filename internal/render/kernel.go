package render

import (
	"math"

	"sortlast/internal/frame"
	"sortlast/internal/transfer"
	"sortlast/internal/volume"
)

// skipSafety is the margin, in world units (voxels), by which a sample
// must clear a macro-cell boundary before the cell's classification may
// skip it. Samples inside the margin are evaluated normally —
// evaluating extra samples is always sound, only skipping needs proof —
// so the margin only has to dominate the ~1e-9 accumulated float error
// of the DDA's boundary parameters, which a quarter voxel does with
// eight orders of magnitude to spare.
const skipSafety = 0.25

// kernel is one Raycast invocation's precomputed state: transfer tables
// and their derived skip/correction tables, the concrete-type sampling
// fast path, and the volume's macro-cell grid. Building it costs
// microseconds (plus the once-per-volume grid build, amortized by the
// cache on the volume) and removes the reference kernel's per-sample
// math.Pow, interface dispatch and box.Contains. Every shortcut is
// bit-exact — the identity argument lives in DESIGN.md §11 and is
// enforced against RaycastReference by tests and cmd/renderbench.
type kernel struct {
	box volume.Box
	cam *Camera
	s   Sampler
	tf  *transfer.Func

	dt      float64
	dtIsOne bool
	cutoff  float64
	shaded  bool
	light   [3]float64
	ambient float64

	// Concrete fast path; vol == nil falls back to the Sampler interface.
	vol        *volume.Volume
	data       []uint8
	nx, ny, nz int
	sub        bool       // s is a *volume.Subvolume
	subLo      [3]float64 // float64(Subvolume.Box.Lo[a])
	subGhost   float64    // float64(Subvolume.Ghost)

	grid    *volume.MacroGrid
	gridOrg [3]float64 // world position of the backing grid's voxel (0,0,0)

	opac, inten *[256]float64
	corr        [256]float64 // 1 − (1−Opacity[j])^dt; exact where the table is flat
	flat        [256]bool    // Opacity[j] == Opacity[j+1]
	nzBelow     [257]int32   // count of non-zero Opacity entries with index < j
}

func newKernel(s Sampler, box volume.Box, cam *Camera, tf *transfer.Func, opt Options) *kernel {
	k := &kernel{
		box: box, cam: cam, s: s, tf: tf,
		dt:      opt.step(),
		cutoff:  opt.cutoff(),
		shaded:  opt.Shaded,
		light:   opt.Light,
		ambient: opt.ambient(),
		opac:    &tf.Opacity,
		inten:   &tf.Intensity,
	}
	k.dtIsOne = k.dt == 1
	if k.light == ([3]float64{}) {
		k.light = [3]float64{-cam.Dir[0], -cam.Dir[1], -cam.Dir[2]}
	}
	switch src := s.(type) {
	case *volume.Volume:
		k.vol = src
		k.grid = src.MacroCells()
		// gridOrg stays (0,0,0): world == voxel coordinates.
	case *volume.Subvolume:
		inner, lo, ghost := src.Inner()
		k.vol = inner
		k.sub = true
		k.subLo = [3]float64{float64(lo[0]), float64(lo[1]), float64(lo[2])}
		k.subGhost = float64(ghost)
		k.grid = src.MacroCells()
		k.gridOrg = [3]float64{
			float64(lo[0] - ghost), float64(lo[1] - ghost), float64(lo[2] - ghost),
		}
	}
	if k.vol != nil {
		k.data = k.vol.Data
		k.nx, k.ny, k.nz = k.vol.NX, k.vol.NY, k.vol.NZ
	}
	var nz int32
	for j := 0; j < 256; j++ {
		k.nzBelow[j] = nz
		if tf.Opacity[j] != 0 {
			nz++
		}
		if k.dtIsOne {
			// math.Pow(x, 1) returns x exactly, so the correction
			// reduces to 1−(1−op) — which is NOT op in floats.
			k.corr[j] = 1 - (1 - tf.Opacity[j])
		} else {
			k.corr[j] = 1 - math.Pow(1-tf.Opacity[j], k.dt)
		}
		if j < 255 {
			k.flat[j] = tf.Opacity[j] == tf.Opacity[j+1]
		}
	}
	k.nzBelow[256] = nz
	return k
}

// cellEmpty reports whether every sample inside macro cell (cx, cy, cz)
// provably classifies to zero opacity. Trilinear values over the cell's
// support lie in [Min, Max]/255 (the grid expanded the support by one
// voxel per side); the classification's table index can stray one entry
// past that range through last-ulp rounding of v*255, so the zero test
// covers [Min−1, Max+1].
func (k *kernel) cellEmpty(cx, cy, cz int) bool {
	mn, mx, ok := k.grid.Range(cx, cy, cz)
	if !ok {
		return false // outside the summary: never skip
	}
	lo, hi := int(mn)-1, int(mx)+1
	if lo < 0 {
		lo = 0
	}
	if hi > 255 {
		hi = 255
	}
	return k.nzBelow[hi+1] == k.nzBelow[lo]
}

// contains tests sample index kk's world position against the box,
// with arithmetic identical to the reference kernel's.
func (k *kernel) contains(origin [3]float64, kk int) bool {
	t := (float64(kk) + 0.5) * k.dt
	return k.box.Contains(
		origin[0]+t*k.cam.Dir[0],
		origin[1]+t*k.cam.Dir[1],
		origin[2]+t*k.cam.Dir[2])
}

// castRay casts the ray through pixel (px, py) and returns the
// accumulated pixel, bit-identical to the reference kernel's.
func (k *kernel) castRay(px, py int, st *tileStats) frame.Pixel {
	var acc frame.Pixel
	origin := k.cam.PlanePoint(px, py)
	tMin, tMax, ok := k.cam.rayBox(origin, k.box)
	if !ok {
		return acc
	}
	kLo := int(math.Floor(tMin/k.dt - 0.5))
	kHi := int(math.Ceil(tMax/k.dt - 0.5))

	// The per-axis sample position origin[a] + t·Dir[a] is monotone in
	// the sample index (IEEE rounding preserves order, each axis's
	// direction sign is fixed), so per axis the in-slab indices form an
	// interval and their three-way intersection — the in-box indices —
	// is one contiguous interval [kA, kB]. Membership is decided by
	// scanning in from the ends; the interior never pays the reference
	// kernel's per-sample box.Contains.
	kA := kLo
	for ; kA <= kHi; kA++ {
		if k.contains(origin, kA) {
			break
		}
	}
	if kA > kHi {
		return acc
	}
	kB := kHi
	for ; kB > kA; kB-- {
		if k.contains(origin, kB) {
			break
		}
	}
	st.rays++

	if k.grid == nil {
		k.processRun(origin, kA, kB, &acc, st)
		return acc
	}
	k.traverse(origin, kA, kB, &acc, st)
	return acc
}

// traverse walks the macro-cell grid along the ray with a 3D-DDA over
// the sample interval [kA, kB]. Cells that classify to zero opacity
// have their interior samples skipped wholesale; samples within
// skipSafety of a cell boundary, and every sample of a non-empty cell,
// are evaluated exactly as the reference kernel would. The kNext cursor
// is monotone, so no sample is evaluated twice.
func (k *kernel) traverse(origin [3]float64, kA, kB int, acc *frame.Pixel, st *tileStats) {
	d := k.cam.Dir
	tA := (float64(kA) + 0.5) * k.dt
	tB := (float64(kB) + 0.5) * k.dt

	// Cell holding the first sample, and per-axis DDA state: tNext[a]
	// is the ray parameter of the next cell boundary crossing on axis
	// a, tDelta[a] the parameter distance between crossings.
	var c [3]int
	var tNext, tDelta [3]float64
	var step [3]int
	for a := 0; a < 3; a++ {
		p := origin[a] + tA*d[a]
		c[a] = int(math.Floor((p - k.gridOrg[a]) / volume.MacroCell))
		switch {
		case d[a] > 0:
			step[a] = 1
			tDelta[a] = volume.MacroCell / d[a]
			bound := k.gridOrg[a] + float64((c[a]+1)*volume.MacroCell)
			tNext[a] = tA + (bound-p)/d[a]
		case d[a] < 0:
			step[a] = -1
			tDelta[a] = -volume.MacroCell / d[a]
			bound := k.gridOrg[a] + float64(c[a]*volume.MacroCell)
			tNext[a] = tA + (bound-p)/d[a]
		default:
			tNext[a] = math.Inf(1)
			tDelta[a] = math.Inf(1)
		}
	}

	kNext := kA  // first sample neither evaluated nor skipped yet
	tEnter := tA // parameter at which the DDA entered the current cell
	for kNext <= kB {
		tExit := tNext[0]
		if tNext[1] < tExit {
			tExit = tNext[1]
		}
		if tNext[2] < tExit {
			tExit = tNext[2]
		}
		if tExit >= tB {
			// Final cell the interval reaches: evaluate the remainder
			// (conservative for an empty final cell, but it bounds the
			// loop and at most one cell's samples are evaluated).
			st.cellsVisited++
			k.processRun(origin, kNext, kB, acc, st)
			return
		}
		st.cellsVisited++
		if k.cellEmpty(c[0], c[1], c[2]) {
			st.cellsSkipped++
			// Indices whose parameters clear both boundaries by the
			// safety margin are provably transparent; stragglers below
			// the window (this cell's entry zone plus any boundary
			// samples earlier cells left behind) are evaluated.
			kSkipLo := int(math.Ceil((tEnter+skipSafety)/k.dt - 0.5))
			kSkipHi := int(math.Floor((tExit-skipSafety)/k.dt - 0.5))
			if kSkipHi > kB {
				kSkipHi = kB
			}
			if kSkipLo > kNext {
				hi := kSkipLo - 1
				if hi > kB {
					hi = kB
				}
				if k.processRun(origin, kNext, hi, acc, st) {
					return
				}
				kNext = hi + 1
			}
			if kSkipHi >= kNext {
				st.samplesSkipped += int64(kSkipHi - kNext + 1)
				kNext = kSkipHi + 1
			}
		} else {
			kCellHi := int(math.Floor(tExit/k.dt - 0.5))
			if kCellHi > kB {
				kCellHi = kB
			}
			if kCellHi >= kNext {
				if k.processRun(origin, kNext, kCellHi, acc, st) {
					return
				}
				kNext = kCellHi + 1
			}
		}
		// Step across the nearest boundary into the neighboring cell.
		ax := 0
		if tNext[1] < tNext[ax] {
			ax = 1
		}
		if tNext[2] < tNext[ax] {
			ax = 2
		}
		tEnter = tNext[ax]
		c[ax] += step[ax]
		tNext[ax] += tDelta[ax]
	}
}

// processRun evaluates sample indices k0..k1 exactly as the reference
// kernel does and reports whether the ray hit the early-termination
// cutoff. Positions stay closed-form ((k+0.5)·dt from the plane point,
// never incrementally accumulated) so they are bit-identical to the
// reference kernel's.
func (k *kernel) processRun(origin [3]float64, k0, k1 int, acc *frame.Pixel, st *tileStats) bool {
	d := k.cam.Dir
	fast := k.vol != nil
	for kk := k0; kk <= k1; kk++ {
		t := (float64(kk) + 0.5) * k.dt
		x := origin[0] + t*d[0]
		y := origin[1] + t*d[1]
		z := origin[2] + t*d[2]
		st.samples++
		var done bool
		if fast {
			done = k.accumulateFast(x, y, z, acc)
		} else {
			done = k.accumulateGeneric(x, y, z, acc)
		}
		if done {
			return true
		}
	}
	return false
}

// accumulateFast classifies, shades and composites one sample through
// the concrete-type path. Each shortcut reproduces the reference
// arithmetic bit for bit:
//
//   - the transfer lookup inlines transfer.Func.Classify;
//   - where the opacity table is flat across the interpolation span,
//     the lerp returns the table entry exactly, so the precomputed
//     correction corr[i] applies; for dt == 1, math.Pow(x, 1) == x
//     collapses the correction to 1−(1−op); only a varying table entry
//     under dt ≠ 1 still pays math.Pow;
//   - subvolume coordinates map with the same two rounded operations,
//     in the same order, as Subvolume.Sample.
func (k *kernel) accumulateFast(x, y, z float64, acc *frame.Pixel) bool {
	lx, ly, lz := x, y, z
	if k.sub {
		lx = x - k.subLo[0] + k.subGhost
		ly = y - k.subLo[1] + k.subGhost
		lz = z - k.subLo[2] + k.subGhost
	}
	v := k.sampleLocal(lx, ly, lz)

	var op, in, a float64
	switch {
	case v <= 0:
		op, in, a = k.opac[0], k.inten[0], k.corr[0]
	case v >= 1:
		op, in, a = k.opac[255], k.inten[255], k.corr[255]
	default:
		xf := v * 255
		i := int(xf)
		t := xf - float64(i)
		o0 := k.opac[i]
		op = o0 + t*(k.opac[i+1]-o0)
		if op <= 0 {
			return false
		}
		in0 := k.inten[i]
		in = in0 + t*(k.inten[i+1]-in0)
		switch {
		case k.flat[i]:
			a = k.corr[i]
		case k.dtIsOne:
			a = 1 - (1 - op)
		default:
			a = 1 - math.Pow(1-op, k.dt)
		}
	}
	if op <= 0 {
		return false
	}
	if k.shaded {
		in *= k.shadeLocal(lx, ly, lz)
	}
	w := (1 - acc.A) * a
	acc.I += w * in
	acc.A += w
	return acc.A >= k.cutoff
}

// accumulateGeneric is the Sampler-interface fallback for custom
// sampler implementations; same structure, no table shortcuts beyond
// the dt == 1 Pow elision (which is sampler-independent).
func (k *kernel) accumulateGeneric(x, y, z float64, acc *frame.Pixel) bool {
	v := k.s.Sample(x, y, z)
	op, in := k.tf.Classify(v)
	if op <= 0 {
		return false
	}
	if k.shaded {
		in *= shade(k.s, x, y, z, k.light, k.ambient)
	}
	var a float64
	if k.dtIsOne {
		a = 1 - (1 - op)
	} else {
		a = 1 - math.Pow(1-op, k.dt)
	}
	w := (1 - acc.A) * a
	acc.I += w * in
	acc.A += w
	return acc.A >= k.cutoff
}

// sampleLocal reproduces volume.Volume.Sample bit for bit: direct
// strided loads in the interior, an At-based fallback at the boundary
// (where the reference zero-extends), and the identical lerp chain.
func (k *kernel) sampleLocal(x, y, z float64) float64 {
	x -= 0.5
	y -= 0.5
	z -= 0.5
	x0, y0, z0 := int(math.Floor(x)), int(math.Floor(y)), int(math.Floor(z))
	fx, fy, fz := x-float64(x0), y-float64(y0), z-float64(z0)

	var c000, c100, c010, c110, c001, c101, c011, c111 float64
	if x0 >= 0 && y0 >= 0 && z0 >= 0 && x0+1 < k.nx && y0+1 < k.ny && z0+1 < k.nz {
		d := k.data
		nx, nxy := k.nx, k.nx*k.ny
		base := (z0*k.ny+y0)*k.nx + x0
		c000 = float64(d[base])
		c100 = float64(d[base+1])
		c010 = float64(d[base+nx])
		c110 = float64(d[base+nx+1])
		c001 = float64(d[base+nxy])
		c101 = float64(d[base+nxy+1])
		c011 = float64(d[base+nxy+nx])
		c111 = float64(d[base+nxy+nx+1])
	} else {
		v := k.vol
		c000 = float64(v.At(x0, y0, z0))
		c100 = float64(v.At(x0+1, y0, z0))
		c010 = float64(v.At(x0, y0+1, z0))
		c110 = float64(v.At(x0+1, y0+1, z0))
		c001 = float64(v.At(x0, y0, z0+1))
		c101 = float64(v.At(x0+1, y0, z0+1))
		c011 = float64(v.At(x0, y0+1, z0+1))
		c111 = float64(v.At(x0+1, y0+1, z0+1))
	}
	c00 := c000 + fx*(c100-c000)
	c10 := c010 + fx*(c110-c010)
	c01 := c001 + fx*(c101-c001)
	c11 := c011 + fx*(c111-c011)
	c0 := c00 + fy*(c10-c00)
	c1 := c01 + fy*(c11-c01)
	return (c0 + fz*(c1-c0)) / 255
}

// shadeLocal reproduces shade() over the concrete path. The gradient is
// taken in already-mapped local coordinates — matching Subvolume.
// Gradient, which maps the position once and then offsets by ±h locally
// (mapping each offset position separately would round differently).
func (k *kernel) shadeLocal(lx, ly, lz float64) float64 {
	const h = 1.0
	gx := (k.sampleLocal(lx+h, ly, lz) - k.sampleLocal(lx-h, ly, lz)) / (2 * h)
	gy := (k.sampleLocal(lx, ly+h, lz) - k.sampleLocal(lx, ly-h, lz)) / (2 * h)
	gz := (k.sampleLocal(lx, ly, lz+h) - k.sampleLocal(lx, ly, lz-h)) / (2 * h)
	n := math.Sqrt(gx*gx + gy*gy + gz*gz)
	if n < 1e-9 {
		return 1 // flat region: unshaded
	}
	d := -(gx*k.light[0] + gy*k.light[1] + gz*k.light[2]) / n
	if d < 0 {
		d = 0
	}
	return k.ambient + (1-k.ambient)*d
}
