package render

import (
	"math"

	"sortlast/internal/frame"
	"sortlast/internal/mesh"
	"sortlast/internal/volume"
)

// RasterOptions tune surface rasterization.
type RasterOptions struct {
	// Light is the direction toward the light; zero means head-on.
	Light [3]float64
	// Ambient is the ambient shading term. Zero means the default
	// 0.25; negative means a true zero ambient term (the same
	// negative-disables sentinel as render.Options.Ambient).
	Ambient float64
	// Flat quantizes shading to per-face values (no interpolation);
	// surface images then contain long equal-valued runs, the regime
	// value-based RLE was designed for (Ahrens–Painter, paper §2).
	Flat bool
	// Levels quantizes shading to this many gray levels when Flat is
	// set; 0 means 32.
	Levels int
}

func (o RasterOptions) ambient() float64 {
	switch {
	case o.Ambient == 0:
		return 0.25
	case o.Ambient < 0:
		return 0
	default:
		return o.Ambient
	}
}

func (o RasterOptions) levels() int {
	if o.Levels <= 0 {
		return 32
	}
	return o.Levels
}

// Rasterize renders a surface mesh with a z-buffer under the
// orthographic camera, producing an opaque sparse subimage (alpha 1 on
// covered pixels): the surface-rendering path of the sort-last system.
// Depth is the ray parameter (distance along cam.Dir), so nearer
// triangles win within the rank, and across ranks the kd split planes
// order whole subimages exactly as for volume rendering.
func Rasterize(m *mesh.Mesh, cam *Camera, opt RasterOptions) *frame.Image {
	img := frame.NewImage(cam.W, cam.H)
	if m.Len() == 0 {
		return img
	}
	// Allocate the footprint window and a matching z-buffer.
	lo, hi, _ := m.Bounds()
	foot := cam.Footprint(boxAround(lo, hi))
	if foot.Empty() {
		return img
	}
	img.Grow(foot)
	zbuf := make([]float64, foot.Area())
	for i := range zbuf {
		zbuf[i] = math.Inf(1)
	}

	light := opt.Light
	if light == ([3]float64{}) {
		light = [3]float64{-cam.Dir[0], -cam.Dir[1], -cam.Dir[2]}
	}
	light = normalize(light)

	for _, tri := range m.Tris {
		shade := shadeFace(tri.Normal, light, opt)
		rasterTriangle(img, zbuf, foot, cam, &tri, shade)
	}
	return img
}

// shadeFace computes two-sided Lambertian shading for a face normal.
func shadeFace(n, light [3]float64, opt RasterOptions) float64 {
	nn := normalize(n)
	d := math.Abs(nn[0]*light[0] + nn[1]*light[1] + nn[2]*light[2])
	s := opt.ambient() + (1-opt.ambient())*d
	if opt.Flat {
		l := float64(opt.levels() - 1)
		s = math.Round(s*l) / l
	}
	if s > 1 {
		s = 1
	}
	return s
}

func rasterTriangle(img *frame.Image, zbuf []float64, foot frame.Rect,
	cam *Camera, tri *mesh.Triangle, shade float64) {
	// Project vertices to continuous pixel coordinates plus depth along
	// the view direction.
	var px, py, pz [3]float64
	for i, v := range tri.V {
		px[i], py[i] = cam.Project(v)
		q := [3]float64{v[0] - cam.Center[0], v[1] - cam.Center[1], v[2] - cam.Center[2]}
		pz[i] = q[0]*cam.Dir[0] + q[1]*cam.Dir[1] + q[2]*cam.Dir[2]
	}
	minX := int(math.Floor(min3f(px[0], px[1], px[2])))
	maxX := int(math.Ceil(max3f(px[0], px[1], px[2])))
	minY := int(math.Floor(min3f(py[0], py[1], py[2])))
	maxY := int(math.Ceil(max3f(py[0], py[1], py[2])))
	r := frame.Rect{X0: minX, Y0: minY, X1: maxX + 1, Y1: maxY + 1}.Intersect(foot)
	if r.Empty() {
		return
	}
	// Edge functions (twice the signed area).
	area := (px[1]-px[0])*(py[2]-py[0]) - (py[1]-py[0])*(px[2]-px[0])
	if area == 0 {
		return
	}
	inv := 1 / area
	w := foot.Dx()
	for y := r.Y0; y < r.Y1; y++ {
		cy := float64(y) + 0.5
		for x := r.X0; x < r.X1; x++ {
			cx := float64(x) + 0.5
			// Barycentric coordinates of the pixel center.
			w0 := ((px[1]-cx)*(py[2]-cy) - (py[1]-cy)*(px[2]-cx)) * inv
			w1 := ((px[2]-cx)*(py[0]-cy) - (py[2]-cy)*(px[0]-cx)) * inv
			w2 := 1 - w0 - w1
			if w0 < 0 || w1 < 0 || w2 < 0 {
				continue
			}
			z := w0*pz[0] + w1*pz[1] + w2*pz[2]
			zi := (y-foot.Y0)*w + (x - foot.X0)
			if z >= zbuf[zi] {
				continue
			}
			zbuf[zi] = z
			img.Set(x, y, frame.Pixel{I: shade, A: 1})
		}
	}
}

func boxAround(lo, hi [3]float64) (b volume.Box) {
	for a := 0; a < 3; a++ {
		b.Lo[a] = int(math.Floor(lo[a]))
		b.Hi[a] = int(math.Ceil(hi[a])) + 1
	}
	return b
}

func normalize(v [3]float64) [3]float64 {
	n := math.Sqrt(v[0]*v[0] + v[1]*v[1] + v[2]*v[2])
	if n == 0 {
		return v
	}
	return [3]float64{v[0] / n, v[1] / n, v[2] / n}
}

func min3f(a, b, c float64) float64 { return math.Min(a, math.Min(b, c)) }
func max3f(a, b, c float64) float64 { return math.Max(a, math.Max(b, c)) }
