package render

import (
	"math"

	"sortlast/internal/frame"
	"sortlast/internal/transfer"
	"sortlast/internal/volume"
)

// VoxelSource supplies raw voxels in global coordinates; *volume.Volume
// and *volume.Subvolume satisfy it.
type VoxelSource interface {
	At(x, y, z int) uint8
}

// Splat renders box with sheet-buffered splatting (Westover), the
// feed-forward volume renderer the paper lists as future work (§5):
// voxels are traversed in front-to-back sheets perpendicular to the
// dominant view axis; each voxel's classified color is distributed over
// a bilinear 2x2 footprint into a sheet buffer, and each completed sheet
// is over-composited onto the output.
//
// Splatting is an approximation: unlike the ray caster it does not sample
// between voxels, so its output matches Raycast only in the limit of
// small footprints. It plugs into the compositing phase unchanged —
// compositors only see sparse subimages.
func Splat(src VoxelSource, box volume.Box, cam *Camera, tf *transfer.Func, opt Options) *frame.Image {
	img := frame.NewImage(cam.W, cam.H)
	foot := cam.Footprint(box)
	if foot.Empty() {
		return img
	}
	img.Grow(foot)

	// Dominant traversal axis and direction: sheets are planes of
	// constant coordinate along the axis the view direction is most
	// aligned with.
	axis := 0
	for a := 1; a < 3; a++ {
		if math.Abs(cam.Dir[a]) > math.Abs(cam.Dir[axis]) {
			axis = a
		}
	}
	first, last, step := box.Lo[axis], box.Hi[axis]-1, 1
	if cam.Dir[axis] < 0 {
		first, last, step = last, first, -1
	}

	sheet := frame.NewImageBounds(cam.W, cam.H, foot)
	var iter [3]int
	lo, hi := box.Lo, box.Hi
	for s := first; s != last+step; s += step {
		sheet.Clear()
		sheetHasContent := false
		iter[axis] = s
		// The two in-sheet axes.
		a1, a2 := (axis+1)%3, (axis+2)%3
		for i1 := lo[a1]; i1 < hi[a1]; i1++ {
			iter[a1] = i1
			for i2 := lo[a2]; i2 < hi[a2]; i2++ {
				iter[a2] = i2
				v := src.At(iter[0], iter[1], iter[2])
				if v == 0 {
					continue
				}
				op, in := tf.Classify(float64(v) / 255)
				if op <= 0 {
					continue
				}
				center := [3]float64{
					float64(iter[0]) + 0.5, float64(iter[1]) + 0.5, float64(iter[2]) + 0.5}
				fx, fy := cam.Project(center)
				splatBilinear(sheet, fx, fy, op, in)
				sheetHasContent = true
			}
		}
		if !sheetHasContent {
			continue
		}
		// Composite the finished sheet behind the image accumulated so
		// far (front-to-back traversal: image is in front).
		compositeSheet(img, sheet, foot)
	}
	return img
}

// splatBilinear distributes an (opacity, intensity) contribution over the
// four pixels nearest the continuous position with bilinear weights,
// accumulating opacity with the over rule inside the sheet.
func splatBilinear(sheet *frame.Image, fx, fy, op, in float64) {
	x0 := int(math.Floor(fx - 0.5))
	y0 := int(math.Floor(fy - 0.5))
	wx := fx - 0.5 - float64(x0)
	wy := fy - 0.5 - float64(y0)
	for dy := 0; dy <= 1; dy++ {
		for dx := 0; dx <= 1; dx++ {
			w := (1 - math.Abs(float64(dx)-wx)) * (1 - math.Abs(float64(dy)-wy))
			if w <= 0 {
				continue
			}
			x, y := x0+dx, y0+dy
			if !sheet.Bounds().Contains(x, y) {
				continue
			}
			p := sheet.At(x, y)
			a := op * w
			p.I += (1 - p.A) * a * in
			p.A += (1 - p.A) * a
			sheet.Set(x, y, p)
		}
	}
}

func compositeSheet(img, sheet *frame.Image, region frame.Rect) {
	for y := region.Y0; y < region.Y1; y++ {
		dst := img.Row(y, region.X0, region.X1)
		src := sheet.Row(y, region.X0, region.X1)
		for i := range src {
			if src[i].Blank() {
				continue
			}
			// img is in front of the new sheet.
			dst[i] = frame.Over(dst[i], src[i])
		}
	}
}
