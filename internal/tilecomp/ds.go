package tilecomp

import (
	"fmt"

	"sortlast/internal/core"
	"sortlast/internal/frame"
	"sortlast/internal/mp"
	"sortlast/internal/partition"
	"sortlast/internal/rle"
	"sortlast/internal/stats"
	"sortlast/internal/trace"
)

// DS is sparse direct-send: one route round ships each strip owner the
// run-length-encoded intersection of the sender's bounding rectangle
// with the owner's strip (the BSBRC message format — rectangle header +
// codes + non-blank pixels), then every owner composites the P-1
// received regions plus its own pixels in depth order. Communication is
// P-1 messages per rank regardless of topology, so any rank count works.
type DS struct {
	// Lay fixes the rank geometry when the world is not described by the
	// decomposition passed to Composite (the non-power-of-two case);
	// nil uses that decomposition.
	Lay partition.Layout
}

// Name implements core.Compositor.
func (DS) Name() string { return "DS" }

// Layout returns the configured geometry (nil when the decomposition
// argument is used).
func (d DS) Layout() partition.Layout { return d.Lay }

// Composite implements core.Compositor.
func (d DS) Composite(c mp.Comm, dec *partition.Decomposition, viewDir [3]float64,
	img *frame.Image) (*core.Result, error) {
	lay, err := resolveLayout(d.Lay, dec, c)
	if err != nil {
		return nil, err
	}
	p, me := c.Size(), c.Rank()
	st := &stats.Rank{RankID: me, Method: "DS"}
	var timer stats.Timer
	tr := c.Tracer()
	sc := core.GetScratch()
	defer sc.Release()
	full := img.Full()
	// Stage 1 carries the route round (encode + sends), stage 2 the merge
	// pass (receives + composites), mirroring the two cost terms of
	// costmodel.DirectSendCost so report.MeasuredVsModeled gets a real
	// per-stage breakdown instead of one degenerate stage.
	route, merge := st.StageAt(1), st.StageAt(2)

	c.SetStage(trace.StageRoute)
	bm := tr.Begin()
	timer.Start()
	localBR, scanned := img.BoundingRect(full)
	timer.Stop()
	tr.End(bm, trace.SpanBound, "")
	st.BoundScan = scanned

	// Route: one encoded region per strip owner. Sends are buffered, so
	// the fan-out never blocks on slow receivers.
	em := tr.Begin()
	for dst := 0; dst < p; dst++ {
		if dst == me {
			continue
		}
		sr := localBR.Intersect(StripRect(full, dst, p))
		timer.Start()
		payload := sc.Rect(sr, 64)
		if !sr.Empty() {
			rle.EncodeRect(img, sr, sc.Enc())
			payload = sc.Enc().Pack(payload)
			route.Encoded += sr.Area()
			route.Codes += len(sc.Enc().Codes)
			route.SentPixels += len(sc.Enc().NonBlank)
		} else {
			route.SendRectEmpty = true
		}
		timer.Stop()
		if err := c.Send(dst, tagDS, payload); err != nil {
			return nil, fmt.Errorf("ds: send to %d: %w", dst, err)
		}
		sc.Retain(payload)
		route.MsgsSent++
		route.BytesSent += len(payload)
	}
	tr.End(em, trace.SpanEncode, trace.StageRoute)
	// Umbrella span (Name == Stage), the per-stage measured total the
	// reports sum — the binary-swap family's stageK spans' counterpart.
	tr.End(em, trace.StageRoute, trace.StageRoute)

	// Merge: composite my strip's contributions front-to-back. The
	// layout's global depth order is a valid per-pixel order, so walking
	// it and putting each new region behind the accumulation is exact.
	myStrip := StripRect(full, me, p)
	out := frame.NewImage(full.Dx(), full.Dy())
	c.SetStage(trace.StageMerge)
	cm := tr.Begin()
	for _, src := range lay.DepthOrder(viewDir) {
		if src == me {
			if r := localBR.Intersect(myStrip); !r.Empty() {
				timer.Start()
				merge.Composited += out.CompositeImage(img, r, false)
				timer.Stop()
			}
			continue
		}
		recv, err := c.Recv(src, tagDS)
		if err != nil {
			return nil, fmt.Errorf("ds: recv from %d: %w", src, err)
		}
		if len(recv) < frame.RectBytes {
			return nil, fmt.Errorf("ds: short message from %d", src)
		}
		r := frame.GetRect(recv)
		merge.MsgsRecv++
		merge.BytesRecv += len(recv)
		if r.Empty() {
			if len(recv) != frame.RectBytes {
				return nil, fmt.Errorf("ds: %d trailing bytes with an empty rectangle from %d",
					len(recv)-frame.RectBytes, src)
			}
			merge.RecvRectEmpty = true
			continue
		}
		if !myStrip.ContainsRect(r) {
			return nil, fmt.Errorf("ds: rect %v from %d outside strip %v", r, src, myStrip)
		}
		merge.RecvPixels += r.Area()
		e, rest, err := parseRegion(r, recv[frame.RectBytes:])
		if err != nil {
			return nil, fmt.Errorf("ds: from %d: %w", src, err)
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("ds: %d trailing bytes from %d", len(rest), src)
		}
		timer.Start()
		merge.Composited += compositeWireBehind(out, r, e)
		timer.Stop()
	}
	tr.End(cm, trace.SpanComposite, trace.StageMerge)
	tr.End(cm, trace.StageMerge, trace.StageMerge)
	c.SetStage("")
	st.CompWall = timer.Total()
	return &core.Result{Image: out, Own: core.RectOwn{R: myStrip}, Stats: st}, nil
}
