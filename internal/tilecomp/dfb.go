package tilecomp

import (
	"encoding/binary"
	"fmt"

	"sortlast/internal/core"
	"sortlast/internal/frame"
	"sortlast/internal/mp"
	"sortlast/internal/partition"
	"sortlast/internal/rle"
	"sortlast/internal/stats"
	"sortlast/internal/trace"
)

// DFB is Distributed-FrameBuffer-style tile-routed reduction: the image
// decomposes into fixed square tiles owned round-robin by tile index
// (partition.Tiling), each rank clips its bounding rectangle against
// every tile, encodes the tiles that actually carry foreground, and
// batches all tiles bound for one owner into a single message. Owners
// composite contributions in the layout's depth order and the final
// gather reassembles the frame from each owner's tile set.
//
// Exactly P-1 messages leave every rank (an owner with no content still
// gets an empty batch), so receives are deterministic without barriers.
// Tile ownership depends only on the tile grid and P — not on the volume
// decomposition — so any rank count works and sparse frames ship only
// the tiles they touch.
type DFB struct {
	// Lay fixes the rank geometry when the world is not described by the
	// decomposition passed to Composite (the non-power-of-two case);
	// nil uses that decomposition.
	Lay partition.Layout
	// Tile is the tile edge in pixels; 0 means DefaultTile.
	Tile int
}

// Name implements core.Compositor.
func (DFB) Name() string { return "DFB" }

// Layout returns the configured geometry (nil when the decomposition
// argument is used).
func (d DFB) Layout() partition.Layout { return d.Lay }

// Batch entry layout: u32 tile index, rect header, RLE pack. A batch is
// a u32 entry count followed by that many entries.
const entryHeaderBytes = 4 + frame.RectBytes

// Composite implements core.Compositor.
func (d DFB) Composite(c mp.Comm, dec *partition.Decomposition, viewDir [3]float64,
	img *frame.Image) (*core.Result, error) {
	lay, err := resolveLayout(d.Lay, dec, c)
	if err != nil {
		return nil, err
	}
	p, me := c.Size(), c.Rank()
	tile := d.Tile
	if tile <= 0 {
		tile = DefaultTile
	}
	full := img.Full()
	til, err := partition.NewTiling(full, tile, p)
	if err != nil {
		return nil, fmt.Errorf("dfb: %w", err)
	}
	st := &stats.Rank{RankID: me, Method: "DFB"}
	var timer stats.Timer
	tr := c.Tracer()
	sc := core.GetScratch()
	defer sc.Release()
	// Stage 1 carries the route round (encode + sends), stage 2 the merge
	// pass (receives + composites), mirroring the two cost terms of
	// costmodel.TileRoutedCost so report.MeasuredVsModeled gets a real
	// per-stage breakdown instead of one degenerate stage.
	route, merge := st.StageAt(1), st.StageAt(2)

	c.SetStage(trace.StageRoute)
	bm := tr.Begin()
	timer.Start()
	localBR, scanned := img.BoundingRect(full)
	timer.Stop()
	tr.End(bm, trace.SpanBound, "")
	st.BoundScan = scanned

	// Route: for each owner, encode the tiles of theirs my bounding
	// rectangle touches and batch them into one message. Tiles whose
	// clipped region holds no foreground are scanned but not shipped.
	em := tr.Begin()
	for dst := 0; dst < p; dst++ {
		if dst == me {
			continue
		}
		timer.Start()
		payload := sc.Grab(4)[:4]
		count := 0
		for _, t := range til.OwnedBy(dst) {
			sr := til.Rect(t).Intersect(localBR)
			if sr.Empty() {
				continue
			}
			rle.EncodeRect(img, sr, sc.Enc())
			route.Encoded += sr.Area()
			if len(sc.Enc().NonBlank) == 0 {
				continue
			}
			payload = appendU32(payload, uint32(t))
			var rb [frame.RectBytes]byte
			frame.PutRect(rb[:], sr)
			payload = append(payload, rb[:]...)
			payload = sc.Enc().Pack(payload)
			route.Codes += len(sc.Enc().Codes)
			route.SentPixels += len(sc.Enc().NonBlank)
			count++
		}
		binary.LittleEndian.PutUint32(payload[:4], uint32(count))
		if count == 0 {
			route.SendRectEmpty = true
		}
		timer.Stop()
		if err := c.Send(dst, tagDFB, payload); err != nil {
			return nil, fmt.Errorf("dfb: send to %d: %w", dst, err)
		}
		sc.Retain(payload)
		route.MsgsSent++
		route.BytesSent += len(payload)
	}
	tr.End(em, trace.SpanEncode, trace.StageRoute)
	// Umbrella span (Name == Stage), the per-stage measured total the
	// reports sum — the binary-swap family's stageK spans' counterpart.
	tr.End(em, trace.StageRoute, trace.StageRoute)

	// Merge: composite contributions to my tiles front-to-back. Walking
	// the global depth order and putting each source's tiles behind the
	// accumulation is a valid per-pixel order (the rank boxes form a BSP
	// of the volume), the same argument the direct-send merge rests on.
	mine := til.OwnedBy(me)
	out := frame.NewImage(full.Dx(), full.Dy())
	c.SetStage(trace.StageMerge)
	cm := tr.Begin()
	for _, src := range lay.DepthOrder(viewDir) {
		if src == me {
			timer.Start()
			for _, t := range mine {
				if r := til.Rect(t).Intersect(localBR); !r.Empty() {
					merge.Composited += out.CompositeImage(img, r, false)
				}
			}
			timer.Stop()
			continue
		}
		recv, err := c.Recv(src, tagDFB)
		if err != nil {
			return nil, fmt.Errorf("dfb: recv from %d: %w", src, err)
		}
		merge.MsgsRecv++
		merge.BytesRecv += len(recv)
		count, rest, err := readU32(recv)
		if err != nil {
			return nil, fmt.Errorf("dfb: from %d: %w", src, err)
		}
		if count == 0 {
			if len(rest) != 0 {
				return nil, fmt.Errorf("dfb: %d trailing bytes in empty batch from %d",
					len(rest), src)
			}
			merge.RecvRectEmpty = true
			continue
		}
		for i := 0; i < int(count); i++ {
			if len(rest) < entryHeaderBytes {
				return nil, fmt.Errorf("dfb: truncated batch entry %d from %d", i, src)
			}
			t := int(binary.LittleEndian.Uint32(rest))
			r := frame.GetRect(rest[4:])
			rest = rest[entryHeaderBytes:]
			if !til.Valid(t) || til.Owner(t) != me {
				return nil, fmt.Errorf("dfb: tile %d from %d is not mine", t, src)
			}
			if r.Empty() || !til.Rect(t).ContainsRect(r) {
				return nil, fmt.Errorf("dfb: rect %v from %d outside tile %d (%v)",
					r, src, t, til.Rect(t))
			}
			merge.RecvPixels += r.Area()
			e, after, err := parseRegion(r, rest)
			if err != nil {
				return nil, fmt.Errorf("dfb: tile %d from %d: %w", t, src, err)
			}
			rest = after
			timer.Start()
			merge.Composited += compositeWireBehind(out, r, e)
			timer.Stop()
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("dfb: %d trailing bytes from %d", len(rest), src)
		}
	}
	tr.End(cm, trace.SpanComposite, trace.StageMerge)
	tr.End(cm, trace.StageMerge, trace.StageMerge)
	c.SetStage("")
	st.CompWall = timer.Total()

	rs := make([]frame.Rect, 0, len(mine))
	for _, t := range mine {
		rs = append(rs, til.Rect(t))
	}
	return &core.Result{Image: out, Own: core.RectSetOwn{Rs: rs}, Stats: st}, nil
}
