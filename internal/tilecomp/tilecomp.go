// Package tilecomp is the tile-routed compositing subsystem: compositing
// methods that route encoded image regions directly to static owners in
// one communication round, instead of riding binary-swap's log-P
// lockstep exchange.
//
// Two methods register with the core registry:
//
//   - ds   — sparse direct-send: the final image splits into P horizontal
//     strips, one per rank, and every rank sends each owner the
//     run-length-encoded intersection of its bounding rectangle with that
//     owner's strip. Unlike the unencoded DirectSend baseline in
//     internal/core, only non-blank pixels travel.
//   - dfb  — Distributed-FrameBuffer-style tile routing (Usher et al.):
//     the image decomposes into fixed square tiles with a deterministic
//     round-robin owner assignment, each rank batches the non-empty
//     encoded tiles bound for each owner into one message, and owners
//     composite contributions in depth order.
//
// Both methods need only per-rank geometry (partition.Layout) — never
// stage pairing — so they run natively at any rank count: image
// decomposition is decoupled from the rank topology. Correctness rests
// on one argument: each rank's subimage is composited into its owner's
// accumulation in the layout's global front-to-back depth order. The
// per-rank boxes form a BSP of the volume, so the global order is a
// valid per-pixel order for every pixel, and sends are buffered
// (mp.Comm.Send never blocks), so the route fan-out completes before any
// rank starts the merge — no cyclic waits at any P.
//
// On the same subimages both methods produce bit-identical images to the
// sequential depth-order reference, because skipping a blank pixel is
// exact under the over operator.
package tilecomp

import (
	"encoding/binary"
	"fmt"

	"sortlast/internal/core"
	"sortlast/internal/frame"
	"sortlast/internal/mp"
	"sortlast/internal/partition"
	"sortlast/internal/rle"
)

// Message tags, distinct from core's binary-swap tags (1..5) sharing the
// same communicator.
const (
	tagDS  = 11
	tagDFB = 12
)

// DefaultTile is the dfb tile edge when DFB.Tile is unset: big enough
// that per-tile framing stays small against pixel payloads, small enough
// that a compact foreground still spreads across owners.
const DefaultTile = 64

func init() {
	core.Register(core.Spec{
		Name: "ds",
		Make: func() core.Compositor { return DS{} },
		Caps: core.Caps{NativeAnyP: true, ModelBacked: true, WireEncoded: true},
	})
	core.Register(core.Spec{
		Name: "dfb",
		Make: func() core.Compositor { return DFB{} },
		Caps: core.Caps{NativeAnyP: true, ModelBacked: true, WireEncoded: true},
	})
}

// StripRect returns strip r of p over the full frame — the ds ownership
// map. Strips are horizontal bands of near-equal height; with p > height
// the trailing strips are empty, which is valid (their owners receive
// nothing and own nothing).
func StripRect(full frame.Rect, r, p int) frame.Rect {
	h := full.Dy()
	return frame.Rect{
		X0: full.X0, Y0: full.Y0 + r*h/p,
		X1: full.X1, Y1: full.Y0 + (r+1)*h/p,
	}.Canon()
}

// resolveLayout picks the rank geometry for a composite call: the
// explicitly configured layout when set (the harness passes a fold plan
// at non-power-of-two P), else the decomposition argument every
// Compositor receives.
func resolveLayout(lay partition.Layout, dec *partition.Decomposition, c mp.Comm) (partition.Layout, error) {
	if lay == nil {
		if dec == nil {
			return nil, fmt.Errorf("tilecomp: no layout and no decomposition")
		}
		lay = dec
	}
	if c.Size() != lay.Size() {
		return nil, fmt.Errorf("tilecomp: world has %d ranks but layout expects %d",
			c.Size(), lay.Size())
	}
	if c.Rank() < 0 || c.Rank() >= lay.Size() {
		return nil, fmt.Errorf("tilecomp: rank %d out of range", c.Rank())
	}
	return lay, nil
}

// compositeWireBehind composites a parsed run-length wire over rect r
// into out, behind the pixels already accumulated (out holds everything
// nearer the viewer). Returns the number of over operations.
func compositeWireBehind(out *frame.Image, r frame.Rect, e rle.Wire) int {
	out.Grow(r)
	w := r.Dx()
	n := 0
	// Positions arrive in row-major order; fetch each scanline segment
	// once.
	rowY := -1
	var row []frame.Pixel
	e.Walk(func(seq int, p frame.Pixel) {
		if y := r.Y0 + seq/w; y != rowY {
			rowY = y
			row = out.Row(y, r.X0, r.X1)
		}
		row[seq%w] = frame.Over(row[seq%w], p)
		n++
	})
	return n
}

// parseRegion validates and parses one rect-framed RLE payload body.
func parseRegion(r frame.Rect, body []byte) (rle.Wire, []byte, error) {
	e, rest, err := rle.ParseWire(body)
	if err != nil {
		return rle.Wire{}, nil, err
	}
	if e.Total() != r.Area() {
		return rle.Wire{}, nil, fmt.Errorf("encoding covers %d pixels, rect %v has %d",
			e.Total(), r, r.Area())
	}
	return e, rest, nil
}

func appendU32(buf []byte, v uint32) []byte {
	return append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func readU32(buf []byte) (uint32, []byte, error) {
	if len(buf) < 4 {
		return 0, nil, fmt.Errorf("truncated u32")
	}
	return binary.LittleEndian.Uint32(buf), buf[4:], nil
}
