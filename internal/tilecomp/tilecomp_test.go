package tilecomp

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"sortlast/internal/core"
	"sortlast/internal/frame"
	"sortlast/internal/mp"
	"sortlast/internal/partition"
	"sortlast/internal/render"
	"sortlast/internal/rle"
	"sortlast/internal/stats"
	"sortlast/internal/transfer"
	"sortlast/internal/volume"
)

func testOpts() mp.Options { return mp.Options{RecvTimeout: 20 * time.Second} }

func testRoot() volume.Box { return volume.Box{Hi: [3]int{64, 64, 64}} }

// randImage fills a w x h frame at the given foreground density: a few
// random blobs at low density (a meaningful bounding rectangle), near
// full coverage at density 1.
func randImage(rng *rand.Rand, w, h int, density float64) *frame.Image {
	img := frame.NewImage(w, h)
	if density >= 1 {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				img.Set(x, y, frame.Pixel{I: rng.Float64(), A: 0.2 + 0.8*rng.Float64()})
			}
		}
		return img
	}
	// Blobs totaling ~density of the frame.
	target := int(density * float64(w*h))
	for placed := 0; placed < target; {
		bw, bh := 1+rng.Intn(w/2), 1+rng.Intn(h/2)
		x0, y0 := rng.Intn(w), rng.Intn(h)
		for y := y0; y < y0+bh && y < h; y++ {
			for x := x0; x < x0+bw && x < w; x++ {
				if rng.Float64() < 0.7 {
					img.Set(x, y, frame.Pixel{I: rng.Float64(), A: rng.Float64()})
					placed++
				}
			}
		}
	}
	return img
}

// runLayout runs comp over a p-rank in-process world with the given
// per-rank subimages and returns the image gathered at rank 0. The
// decomposition argument is nil on purpose: the compositor must resolve
// its configured layout.
func runLayout(t *testing.T, comp core.Compositor, p int, viewDir [3]float64,
	imgs []*frame.Image) *frame.Image {
	t.Helper()
	var final *frame.Image
	err := mp.Run(p, testOpts(), func(c mp.Comm) error {
		res, err := comp.Composite(c, nil, viewDir, imgs[c.Rank()])
		if err != nil {
			return err
		}
		out, err := core.GatherImage(c, 0, res)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			final = out
		}
		return nil
	})
	if err != nil {
		t.Fatalf("%s P=%d: %v", comp.Name(), p, err)
	}
	if final == nil {
		t.Fatalf("%s P=%d: no final image at root", comp.Name(), p)
	}
	return final
}

// requireIdentical asserts got equals want byte for byte — the identity
// bar for the tile-routed methods, not an epsilon.
func requireIdentical(t *testing.T, label string, got, want *frame.Image) {
	t.Helper()
	full := want.Full()
	if got.Full() != full {
		t.Fatalf("%s: frame %v, want %v", label, got.Full(), full)
	}
	for y := full.Y0; y < full.Y1; y++ {
		for x := full.X0; x < full.X1; x++ {
			if got.At(x, y) != want.At(x, y) {
				t.Fatalf("%s: pixel (%d,%d) = %v, want %v",
					label, x, y, got.At(x, y), want.At(x, y))
			}
		}
	}
}

// Both methods must reproduce the sequential depth-order reference
// byte for byte, at power-of-two and non-power-of-two rank counts, on
// dense and sparse frames.
func TestTileRoutedMatchesSequential(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 6, 8, 16} {
		plan, err := partition.PlanFold(testRoot(), p)
		if err != nil {
			t.Fatal(err)
		}
		for name, density := range map[string]float64{"dense": 1, "sparse": 0.08} {
			rng := rand.New(rand.NewSource(int64(97*p) + int64(density*10)))
			imgs := make([]*frame.Image, p)
			for r := range imgs {
				imgs[r] = randImage(rng, 48, 48, density)
			}
			viewDir := [3]float64{0.3, -0.5, 0.81}
			ref := core.CompositeSequentialLayout(imgs, plan, viewDir)
			for _, comp := range []core.Compositor{DS{Lay: plan}, DFB{Lay: plan, Tile: 16}} {
				got := runLayout(t, comp, p, viewDir, imgs)
				requireIdentical(t, comp.Name()+" P="+name, got, ref)
			}
		}
	}
}

// The tile edge must not affect the result: degenerate single-pixel
// tiles, tiles that do not divide the frame, and tiles larger than the
// frame all reduce to the same image.
func TestDFBTileSizes(t *testing.T) {
	const p = 5
	plan, err := partition.PlanFold(testRoot(), p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	imgs := make([]*frame.Image, p)
	for r := range imgs {
		imgs[r] = randImage(rng, 50, 38, 0.2)
	}
	viewDir := [3]float64{-0.2, 0.4, 0.89}
	ref := core.CompositeSequentialLayout(imgs, plan, viewDir)
	for _, tile := range []int{1, 3, 16, 33, 64, 1000} {
		got := runLayout(t, DFB{Lay: plan, Tile: tile}, p, viewDir, imgs)
		requireIdentical(t, "DFB tile="+itoa(tile), got, ref)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for ; n > 0; n /= 10 {
		b = append([]byte{byte('0' + n%10)}, b...)
	}
	return string(b)
}

// Randomized identity sweep: random rank counts, frame geometries,
// densities, tile sizes and view directions.
func TestTileRoutedRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	iters := 20
	if testing.Short() {
		iters = 5
	}
	for iter := 0; iter < iters; iter++ {
		p := 1 + rng.Intn(9)
		w, h := 8+rng.Intn(56), 8+rng.Intn(56)
		tile := 1 + rng.Intn(80)
		viewDir := [3]float64{rng.Float64()*2 - 1, rng.Float64()*2 - 1, 0.1 + rng.Float64()}
		density := rng.Float64()
		plan, err := partition.PlanFold(testRoot(), p)
		if err != nil {
			t.Fatal(err)
		}
		imgs := make([]*frame.Image, p)
		for r := range imgs {
			imgs[r] = randImage(rng, w, h, density)
		}
		ref := core.CompositeSequentialLayout(imgs, plan, viewDir)
		for _, comp := range []core.Compositor{DS{Lay: plan}, DFB{Lay: plan, Tile: tile}} {
			got := runLayout(t, comp, p, viewDir, imgs)
			requireIdentical(t, comp.Name(), got, ref)
		}
	}
}

// A rendered scene at non-power-of-two rank counts must match the
// serial raycast, with subimages rendered from the fold plan's boxes —
// the same end-to-end property the core methods pin at powers of two.
func TestRenderedSceneAnyP(t *testing.T) {
	vol := volume.HeadPhantom(32, 32, 15)
	tf := transfer.Head()
	cam := render.NewCamera(48, 48, vol.Bounds(), 10, -30)
	serial := render.Raycast(vol, vol.Bounds(), cam, tf, render.Options{EarlyTermination: -1})
	for _, p := range []int{3, 6} {
		plan, err := partition.PlanFold(vol.Bounds(), p)
		if err != nil {
			t.Fatal(err)
		}
		imgs := make([]*frame.Image, p)
		for r := range imgs {
			imgs[r] = render.Raycast(vol, plan.Box(r), cam, tf,
				render.Options{EarlyTermination: -1})
		}
		for _, comp := range []core.Compositor{DS{Lay: plan}, DFB{Lay: plan}} {
			got := runLayout(t, comp, p, cam.Dir, imgs)
			if d := serial.MaxAbsDiff(got, serial.Full()); d > 1e-9 {
				t.Errorf("%s P=%d: differs from serial by %g", comp.Name(), p, d)
			}
		}
	}
}

// Strip ownership must partition the frame exactly for any rank count,
// including more ranks than scanlines.
func TestStripRectPartitionsFrame(t *testing.T) {
	full := frame.XYWH(3, 5, 41, 23)
	for _, p := range []int{1, 2, 3, 7, 23, 64} {
		covered := 0
		prevY1 := full.Y0
		for r := 0; r < p; r++ {
			s := StripRect(full, r, p)
			if s.Empty() {
				continue
			}
			if s.Y0 != prevY1 {
				t.Fatalf("p=%d: strip %d starts at %d, want %d", p, r, s.Y0, prevY1)
			}
			prevY1 = s.Y1
			covered += s.Area()
		}
		if covered != full.Area() || prevY1 != full.Y1 {
			t.Fatalf("p=%d: strips cover %d of %d", p, covered, full.Area())
		}
	}
}

// A compositor configured for one world size must refuse another.
func TestLayoutSizeMismatch(t *testing.T) {
	plan, err := partition.PlanFold(testRoot(), 4)
	if err != nil {
		t.Fatal(err)
	}
	imgs := []*frame.Image{frame.NewImage(16, 16), frame.NewImage(16, 16)}
	err = mp.Run(2, testOpts(), func(c mp.Comm) error {
		_, err := DS{Lay: plan}.Composite(c, nil, [3]float64{0, 0, 1}, imgs[c.Rank()])
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "layout expects") {
		t.Fatalf("world/layout mismatch not rejected: %v", err)
	}
	err = mp.Run(2, testOpts(), func(c mp.Comm) error {
		_, err := DS{}.Composite(c, nil, [3]float64{0, 0, 1}, imgs[c.Rank()])
		return err
	})
	if err == nil {
		t.Fatal("nil layout and nil decomposition not rejected")
	}
}

// parseRegion must reject an encoding whose pixel count disagrees with
// its rectangle.
func TestParseRegionRejectsMismatch(t *testing.T) {
	img := frame.NewImage(8, 8)
	img.Set(2, 2, frame.Pixel{I: 1, A: 1})
	var e rle.Encoding
	r := frame.XYWH(0, 0, 4, 4)
	rle.EncodeRect(img, r, &e)
	body := e.Pack(nil)
	if _, _, err := parseRegion(r, body); err != nil {
		t.Fatalf("valid region rejected: %v", err)
	}
	wrong := frame.XYWH(0, 0, 5, 5)
	if _, _, err := parseRegion(wrong, body); err == nil {
		t.Fatal("area mismatch accepted")
	}
	if _, _, err := parseRegion(r, body[:len(body)-2]); err == nil {
		t.Fatal("truncated body accepted")
	}
}

// The route round's traffic (encode + sends) and the merge pass's
// (receives + composites) must land in separate stage entries mirroring
// the two terms of the cost models, so measured-vs-modeled reports can
// attribute time per stage. A stage that mixes directions — sends in
// the merge entry, composites in the route entry — breaks the split.
func TestTileRoutedStageSplit(t *testing.T) {
	const p = 3
	plan, err := partition.PlanFold(testRoot(), p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	imgs := make([]*frame.Image, p)
	for r := range imgs {
		imgs[r] = randImage(rng, 48, 48, 1)
	}
	viewDir := [3]float64{0.3, -0.5, 0.81}
	for _, comp := range []core.Compositor{DS{Lay: plan}, DFB{Lay: plan, Tile: 16}} {
		perRank := make([]*stats.Rank, p)
		err := mp.Run(p, testOpts(), func(c mp.Comm) error {
			res, err := comp.Composite(c, nil, viewDir, imgs[c.Rank()])
			if err != nil {
				return err
			}
			perRank[c.Rank()] = res.Stats
			_, err = core.GatherImage(c, 0, res)
			return err
		})
		if err != nil {
			t.Fatalf("%s: %v", comp.Name(), err)
		}
		for r, st := range perRank {
			if len(st.Stages) != 2 {
				t.Fatalf("%s rank %d: %d stages, want route + merge", comp.Name(), r, len(st.Stages))
			}
			route, merge := st.Stages[0], st.Stages[1]
			if route.MsgsSent != p-1 || route.BytesSent == 0 {
				t.Errorf("%s rank %d route: sent %d msgs / %d bytes, want %d msgs",
					comp.Name(), r, route.MsgsSent, route.BytesSent, p-1)
			}
			if route.MsgsRecv != 0 || route.Composited != 0 || route.RecvPixels != 0 {
				t.Errorf("%s rank %d: merge-side counters leaked into the route stage: %+v",
					comp.Name(), r, route)
			}
			if merge.MsgsRecv != p-1 || merge.Composited == 0 {
				t.Errorf("%s rank %d merge: recv %d msgs / composited %d, want %d msgs",
					comp.Name(), r, merge.MsgsRecv, merge.Composited, p-1)
			}
			if merge.MsgsSent != 0 || merge.Encoded != 0 || merge.SentPixels != 0 {
				t.Errorf("%s rank %d: route-side counters leaked into the merge stage: %+v",
					comp.Name(), r, merge)
			}
		}
	}
}
