package costmodel

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestParamsJSONRoundTrip(t *testing.T) {
	in := SP2()
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var out Params
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("unmarshal %s: %v", b, err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
	// The wire form is human-readable duration strings.
	if !strings.Contains(string(b), `"ts":"60µs"`) {
		t.Errorf("marshal = %s, want duration strings", b)
	}
}

func TestParamsJSONNumericNanoseconds(t *testing.T) {
	var p Params
	src := `{"ts":60000,"tc":25,"to":4000,"tencode":500,"tbound":150}`
	if err := json.Unmarshal([]byte(src), &p); err != nil {
		t.Fatalf("unmarshal numeric: %v", err)
	}
	if p.Ts != 60*time.Microsecond || p.Tc != 25*time.Nanosecond {
		t.Fatalf("numeric decode: got %+v", p)
	}
}

func TestParamsJSONRejectsNonPositive(t *testing.T) {
	cases := []string{
		`{"ts":"0s","tc":"25ns","to":"4µs","tencode":"500ns","tbound":"150ns"}`,
		`{"ts":"60µs","tc":"-1ns","to":"4µs","tencode":"500ns","tbound":"150ns"}`,
		`{"ts":"60µs","tc":"25ns","to":"4µs","tencode":"500ns"}`, // missing Tbound
	}
	for _, src := range cases {
		var p Params
		if err := json.Unmarshal([]byte(src), &p); err == nil {
			t.Errorf("unmarshal %s: want validation error, got %+v", src, p)
		}
	}
}

func TestParamsValidate(t *testing.T) {
	if err := SP2().Validate(); err != nil {
		t.Fatalf("SP2 must validate: %v", err)
	}
	bad := SP2()
	bad.To = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero To must fail validation")
	}
}
