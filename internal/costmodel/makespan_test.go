package costmodel

import (
	"testing"
	"time"

	"sortlast/internal/stats"
)

func swapRank(id int, encodedPerStage, bytesPerStage, compositedPerStage int, stages int) *stats.Rank {
	r := &stats.Rank{RankID: id, Method: "BSBRC"}
	for k := 1; k <= stages; k++ {
		s := r.StageAt(k)
		s.Encoded = encodedPerStage
		s.BytesSent = bytesPerStage
		s.BytesRecv = bytesPerStage
		s.Composited = compositedPerStage
		s.MsgsSent, s.MsgsRecv = 1, 1
	}
	return r
}

func TestMakespanSymmetricWorld(t *testing.T) {
	p := params()
	ranks := []*stats.Rank{
		swapRank(0, 100, 1600, 50, 1),
		swapRank(1, 100, 1600, 50, 1),
	}
	got := p.Makespan(ranks)
	// Both ranks identical: makespan = encode + (Ts + bytes) + composite.
	want := 100*p.Tencode + p.Ts + 1600*p.Tc + 50*p.To
	if got != want {
		t.Errorf("makespan = %v, want %v", got, want)
	}
}

func TestMakespanStalledBySlowPartner(t *testing.T) {
	p := params()
	fast := swapRank(0, 10, 160, 5, 1)
	slow := swapRank(1, 10000, 160, 5, 1) // huge encode phase
	got := p.Makespan([]*stats.Rank{fast, slow})
	// The fast rank waits for the slow one's message; completion is
	// bounded below by the slow encode.
	lower := 10000 * p.Tencode
	if got <= lower {
		t.Errorf("makespan %v must exceed the slow partner's encode %v", got, lower)
	}
	// And the naive per-rank sum under-reports the fast rank's wait.
	naive := p.Rank(fast)
	if naive.Total() >= got {
		t.Errorf("naive fast-rank total %v should be below the coupled makespan %v",
			naive.Total(), got)
	}
}

func TestMakespanMultiStagePropagatesDelay(t *testing.T) {
	p := params()
	// Four ranks, two stages. Rank 3 is slow in stage 1; by stage 2 the
	// delay must have propagated to its stage-2 partner's pair as well.
	ranks := []*stats.Rank{
		swapRank(0, 10, 160, 5, 2),
		swapRank(1, 10, 160, 5, 2),
		swapRank(2, 10, 160, 5, 2),
		swapRank(3, 10, 160, 5, 2),
	}
	base := p.Makespan(ranks)
	ranks[3].Stages[0].Encoded = 20000
	delayed := p.Makespan(ranks)
	if delayed <= base {
		t.Errorf("delay did not propagate: %v vs %v", delayed, base)
	}
	// Rank 3's stage-1 partner is 2; at stage 2 rank 2 pairs with 0, so
	// everyone completes late.
	if delayed < 20000*p.Tencode {
		t.Errorf("makespan %v below the slow encode", delayed)
	}
}

func TestMakespanAtLeastPerRankComm(t *testing.T) {
	// The makespan can never be below any rank's own serialized cost.
	p := params()
	ranks := make([]*stats.Rank, 8) // 8 ranks <=> 3 swap stages
	for i := range ranks {
		ranks[i] = swapRank(i, 200+100*i, 6000+1000*i, 100+50*i, 3)
	}
	mk := p.Makespan(ranks)
	for _, r := range ranks {
		if c := p.Rank(r); mk < c.Comp {
			t.Errorf("makespan %v below rank %d's compute %v", mk, r.RankID, c.Comp)
		}
	}
}

func TestMakespanEmpty(t *testing.T) {
	if d := params().Makespan(nil); d != 0 {
		t.Errorf("empty makespan = %v", d)
	}
	if d := params().Makespan([]*stats.Rank{nil, nil}); d != 0 {
		t.Errorf("nil ranks makespan = %v", d)
	}
}

func TestMakespanBoundScanIncluded(t *testing.T) {
	p := params()
	r := &stats.Rank{RankID: 0, Method: "BSBR", BoundScan: 10000}
	if d := p.Makespan([]*stats.Rank{r}); d != 10000*p.Tbound {
		t.Errorf("makespan = %v, want bound scan only", d)
	}
	_ = time.Duration(0)
}
