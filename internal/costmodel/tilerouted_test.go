package costmodel

import (
	"testing"
	"time"
)

func testSparsity(p int) Sparsity {
	return Sparsity{Area: 384 * 384, Alpha: 0.05, Beta: 0.2, FrameCodes: 2 * 4 * 384, P: p}
}

// The tile-routed forms share the binary-swap gloss, so their scale must
// be comparable: same bounding/encode/over terms, differing in startup
// count and framing.
func TestTileRoutedFormsAreSane(t *testing.T) {
	p := SP2()
	for _, ranks := range []int{2, 3, 8, 16, 64} {
		f := testSparsity(ranks)
		ds := p.DirectSendCost(f)
		dfb := p.TileRoutedCost(f, 64)
		for label, c := range map[string]Cost{"ds": ds, "dfb": dfb} {
			if c.Comp <= 0 || c.Comm <= 0 {
				t.Fatalf("%s P=%d: non-positive cost %+v", label, ranks, c)
			}
		}
		// Identical computation: both scan, encode and composite the same
		// modeled pixel volumes.
		if ds.Comp != dfb.Comp {
			t.Errorf("P=%d: comp ds %v != dfb %v", ranks, ds.Comp, dfb.Comp)
		}
		// dfb pays extra framing (tile entries, batch counts, boundary
		// codes) over the same pixels, so its comm is strictly higher.
		if dfb.Comm <= ds.Comm {
			t.Errorf("P=%d: dfb comm %v not above ds comm %v", ranks, dfb.Comm, ds.Comm)
		}
	}
}

// More startup messages at higher P: the ds comm cost must grow with P
// through the Ts·(P-1) term.
func TestDirectSendStartupGrowsWithP(t *testing.T) {
	p := Params{Ts: time.Millisecond} // isolate the startup term
	c2 := p.DirectSendCost(testSparsity(2))
	c8 := p.DirectSendCost(testSparsity(8))
	if c8.Comm != 7*c2.Comm {
		t.Fatalf("startup not linear in P-1: P=2 %v, P=8 %v", c2.Comm, c8.Comm)
	}
}

// Smaller tiles mean more framing: dfb comm must be monotonically
// non-increasing in tile edge.
func TestTileRoutedFramingShrinksWithTile(t *testing.T) {
	p := SP2()
	f := testSparsity(8)
	prev := time.Duration(1 << 62)
	for _, tile := range []int{4, 16, 64, 256} {
		c := p.TileRoutedCost(f, tile)
		if c.Comm > prev {
			t.Fatalf("tile=%d: comm %v grew from %v", tile, c.Comm, prev)
		}
		prev = c.Comm
	}
	if got := p.TileRoutedCost(f, 0); got != (Cost{}) {
		t.Fatalf("non-positive tile must cost zero, got %+v", got)
	}
}

// Degenerate and out-of-range sparsity inputs must clamp, not blow up.
func TestSparsityClamping(t *testing.T) {
	p := SP2()
	wild := Sparsity{Area: 1000, Alpha: 7, Beta: -2, FrameCodes: -5, P: 0}
	c := p.DirectSendCost(wild)
	if c.Comp < 0 || c.Comm < 0 {
		t.Fatalf("negative cost from clamped inputs: %+v", c)
	}
	// Beta rises to alpha: a rectangle can never be smaller than its
	// content.
	a, b, pf := clampSparsity(Sparsity{Alpha: 0.5, Beta: 0.1, P: 4})
	if a != 0.5 || b != 0.5 || pf != 4 {
		t.Fatalf("clampSparsity = %v %v %v", a, b, pf)
	}
}
