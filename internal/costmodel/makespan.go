package costmodel

import (
	"time"

	"sortlast/internal/stats"
)

// Makespan evaluates the binary-swap schedule as a dependency graph
// instead of summing per-rank costs: at stage k a rank can composite
// only after its own encode/pack work is done AND its partner's stage-k
// message has arrived, so a slow partner stalls the pair. The paper's
// per-processor sums (Eq. 1–8, what Rank/World compute) ignore this
// coupling; Makespan reports the resulting completion time, which is
// what a wall clock would show on a real machine. Only the swap-family
// stage structure is modeled; ranks whose counters lack swap stages are
// folded in by their fold pre-stage when present.
func (p Params) Makespan(ranks []*stats.Rank) time.Duration {
	n := len(ranks)
	if n == 0 {
		return 0
	}
	// ready[r] is rank r's virtual time.
	ready := make([]time.Duration, n)
	for r, rk := range ranks {
		if rk == nil {
			continue
		}
		ready[r] = time.Duration(rk.BoundScan) * p.Tbound
	}

	// Fold pre-stage: extras send, cores composite. Pair r <-> core via
	// the Fold counters (senders have MsgsSent, receivers MsgsRecv); the
	// pairing is rank-symmetric in the plan, so match by bytes.
	for r, rk := range ranks {
		if rk == nil || rk.Fold.MsgsRecv == 0 {
			continue
		}
		// Arrival from the extra rank: the plan pairs core i with extra
		// i + core; scan for the sender whose byte count matches.
		arrive := ready[r]
		for s, sk := range ranks {
			if s == r || sk == nil || sk.Fold.MsgsSent == 0 {
				continue
			}
			if sk.Fold.BytesSent == rk.Fold.BytesRecv {
				t := ready[s] + time.Duration(sk.Fold.Encoded)*p.Tencode +
					p.Ts + time.Duration(sk.Fold.BytesSent)*p.Tc
				if t > arrive {
					arrive = t
				}
				break
			}
		}
		ready[r] = arrive + time.Duration(rk.Fold.Composited)*p.To
	}

	stages := 0
	for _, rk := range ranks {
		if rk != nil && len(rk.Stages) > stages {
			stages = len(rk.Stages)
		}
	}
	for k := 0; k < stages; k++ {
		next := make([]time.Duration, n)
		copy(next, ready)
		for r, rk := range ranks {
			if rk == nil || k >= len(rk.Stages) {
				continue
			}
			partner := r ^ (1 << k)
			if partner >= n || ranks[partner] == nil || k >= len(ranks[partner].Stages) {
				continue
			}
			mine := &rk.Stages[k]
			theirs := &ranks[partner].Stages[k]
			sendDone := ready[r] + time.Duration(mine.Encoded)*p.Tencode
			arrival := ready[partner] + time.Duration(theirs.Encoded)*p.Tencode +
				p.Ts + time.Duration(theirs.BytesSent)*p.Tc
			t := sendDone
			if arrival > t {
				t = arrival
			}
			// Compositing cost: the paper charges dense delivery for the
			// rectangle methods; reuse the per-method stage formula.
			next[r] = t + p.stageComp(rk.Method, mine) -
				time.Duration(mine.Encoded)*p.Tencode
		}
		ready = next
	}
	var max time.Duration
	for _, t := range ready {
		if t > max {
			max = t
		}
	}
	return max
}
