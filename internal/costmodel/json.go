package costmodel

import (
	"encoding/json"
	"fmt"
	"time"
)

// paramsJSON is the wire form of Params: human-readable duration strings
// ("60µs", "25ns"), one field per machine constant of the paper's model.
// Numbers are also accepted on decode and read as nanoseconds, so
// profiles may be written by tools that only know integers.
type paramsJSON struct {
	Ts      jsonDuration `json:"ts"`
	Tc      jsonDuration `json:"tc"`
	To      jsonDuration `json:"to"`
	Tencode jsonDuration `json:"tencode"`
	Tbound  jsonDuration `json:"tbound"`
}

type jsonDuration time.Duration

func (d jsonDuration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

func (d *jsonDuration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("costmodel: bad duration %q: %w", s, err)
		}
		*d = jsonDuration(v)
		return nil
	}
	var ns float64
	if err := json.Unmarshal(b, &ns); err != nil {
		return fmt.Errorf("costmodel: duration must be a string or nanoseconds: %s", b)
	}
	*d = jsonDuration(time.Duration(ns))
	return nil
}

// Validate checks that every machine constant is positive. A zero or
// negative constant makes the cost equations meaningless (the model
// would predict free or negative work), so loaders reject it up front.
func (p Params) Validate() error {
	check := func(name string, v time.Duration) error {
		if v <= 0 {
			return fmt.Errorf("costmodel: %s = %v must be positive", name, v)
		}
		return nil
	}
	for _, c := range []struct {
		name string
		v    time.Duration
	}{
		{"Ts", p.Ts}, {"Tc", p.Tc}, {"To", p.To},
		{"Tencode", p.Tencode}, {"Tbound", p.Tbound},
	} {
		if err := check(c.name, c.v); err != nil {
			return err
		}
	}
	return nil
}

// MarshalJSON implements json.Marshaler, emitting duration strings.
func (p Params) MarshalJSON() ([]byte, error) {
	return json.Marshal(paramsJSON{
		Ts: jsonDuration(p.Ts), Tc: jsonDuration(p.Tc), To: jsonDuration(p.To),
		Tencode: jsonDuration(p.Tencode), Tbound: jsonDuration(p.Tbound),
	})
}

// UnmarshalJSON implements json.Unmarshaler. The decoded parameters are
// validated: every constant must be present and positive.
func (p *Params) UnmarshalJSON(b []byte) error {
	var pj paramsJSON
	if err := json.Unmarshal(b, &pj); err != nil {
		return err
	}
	dec := Params{
		Ts: time.Duration(pj.Ts), Tc: time.Duration(pj.Tc), To: time.Duration(pj.To),
		Tencode: time.Duration(pj.Tencode), Tbound: time.Duration(pj.Tbound),
	}
	if err := dec.Validate(); err != nil {
		return err
	}
	*p = dec
	return nil
}
