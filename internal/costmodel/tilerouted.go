package costmodel

import "time"

// Closed forms for the tile-routed compositors (internal/tilecomp),
// under the same first-order gloss as the paper's Eq. 1–8: the frame's
// non-blank density α and bounding-rectangle coverage β describe every
// rank's subimage too, so the predictions are comparable inputs to the
// same argmin. Under that gloss each owner receives the same α·A(1-1/P)
// non-blank pixels binary swap delivers per rank — one round instead of
// log P — so the forms separate from BSBRC only in startup count
// (P-1 messages against log P stages) and per-message framing. The real
// single-round advantage (no stage lockstep, shorter waits) is not a
// T_comp/T_comm work term; it reaches the argmin through the autotune
// selector's measured EWMA factors, exactly as BSBRLC's interleave win
// does.

// Sparsity is the scalar frame description the closed forms consume:
// the frame area A, the non-blank fraction α, the bounding-rectangle
// fraction β, the total run-length code count over the frame, and the
// rank count.
type Sparsity struct {
	Area       float64
	Alpha      float64
	Beta       float64
	FrameCodes float64
	P          int
}

// Wire constants mirrored from internal/frame and internal/rle; kept as
// local numbers so the model stays dependency-free.
const (
	pixelBytes   = 16
	rectBytes    = 8
	rleCodeBytes = 2
	rlePackBytes = 8 // u32 total + u32 code count framing per pack
)

// DirectSendCost models the ds method.
//
// Computation: one O(A) bounding scan; the encoder scans the sender's
// bounding rectangle minus its own strip (≈ β·A·(P-1)/P); the owner
// composites the non-blank content of the P-1 received regions,
// ≈ α·A·(P-1)/P — the binary-swap delivery total, arriving in one round.
// Communication: P-1 received messages, each with a rectangle header and
// RLE pack framing; strips hold whole scanlines, so splitting a sender's
// rectangle across strips adds no codes and the owner's share of the
// frame's code count is (P-1)/P of it.
func (p Params) DirectSendCost(f Sparsity) Cost {
	alpha, beta, pf := clampSparsity(f)
	msgs := pf - 1
	sumOthers := f.Area * msgs / pf // = A(1-1/P), binary swap's sumHalves
	comp := scale(p.Tbound, f.Area) +
		scale(p.Tencode, beta*sumOthers) +
		scale(p.To, alpha*sumOthers)
	comm := scale(p.Ts, msgs) + scale(p.Tc,
		pixelBytes*alpha*sumOthers+
			rleCodeBytes*f.FrameCodes*msgs/pf+
			(rectBytes+rlePackBytes)*msgs)
	return Cost{Comp: comp, Comm: comm}
}

// TileRoutedCost models the dfb method with the given tile edge.
//
// The scans and delivered pixels match ds, but the framing differs:
// splitting scanlines at vertical tile boundaries adds about one code
// pair per occupied row segment (β·A/tile of them), each non-empty tile
// (≈ β·A/tile² per sender) costs an entry header plus RLE pack framing,
// and each of the P-1 batch messages carries a 4-byte count.
func (p Params) TileRoutedCost(f Sparsity, tile int) Cost {
	if tile <= 0 {
		return Cost{}
	}
	alpha, beta, pf := clampSparsity(f)
	msgs := pf - 1
	sumOthers := f.Area * msgs / pf
	t := float64(tile)
	tileCodes := f.FrameCodes + 2*beta*f.Area/t
	tiles := beta * f.Area / (t * t)
	comp := scale(p.Tbound, f.Area) +
		scale(p.Tencode, beta*sumOthers) +
		scale(p.To, alpha*sumOthers)
	comm := scale(p.Ts, msgs) + scale(p.Tc,
		pixelBytes*alpha*sumOthers+
			rleCodeBytes*tileCodes*msgs/pf+
			(4+rectBytes+rlePackBytes)*tiles*msgs/pf+
			4*msgs)
	return Cost{Comp: comp, Comm: comm}
}

func clampSparsity(f Sparsity) (alpha, beta, pf float64) {
	alpha = clamp01(f.Alpha)
	beta = clamp01(f.Beta)
	if beta < alpha {
		beta = alpha // a rectangle can never be smaller than its content
	}
	pf = float64(f.P)
	if pf < 1 {
		pf = 1
	}
	return alpha, beta, pf
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func scale(per time.Duration, n float64) time.Duration {
	return time.Duration(float64(per) * n)
}
