// Package costmodel evaluates the paper's cost equations (1)–(8) over
// the exactly counted quantities of a run. Absolute times on a 2026 CPU
// cannot reproduce a 66.7 MHz POWER2 with an HPS interconnect, so the
// tables are regenerated the way the paper models them: per-message
// start-up Ts, per-byte transfer Tc, per-pixel over To, per-pixel encode
// T_encode, and per-pixel bounding scan T_bound, with the SP2 preset
// fitted to Table 1. Counters are exact (pixels, codes, bytes, stages),
// so the shape of the results — who wins, by what factor, where
// crossovers fall — comes from the algorithms, not the host machine.
package costmodel

import (
	"fmt"
	"time"

	"sortlast/internal/stats"
)

// Params are the machine constants of the paper's model.
type Params struct {
	Ts      time.Duration // start-up time per message
	Tc      time.Duration // transmission time per byte
	To      time.Duration // "over" operation per pixel
	Tencode time.Duration // run-length encoding per pixel
	Tbound  time.Duration // bounding-rectangle scan per pixel
}

// SP2 returns parameters fitted to the paper's IBM SP2 measurements
// (Table 1): ~40 MB/s HPS bandwidth, tens of microseconds of message
// latency, and a ~4 µs per-pixel over on the 66.7 MHz POWER2.
func SP2() Params {
	return Params{
		Ts:      60 * time.Microsecond,
		Tc:      25 * time.Nanosecond,
		To:      4 * time.Microsecond,
		Tencode: 500 * time.Nanosecond,
		Tbound:  150 * time.Nanosecond,
	}
}

// Cost is a modeled compositing cost, split as the paper splits it.
type Cost struct {
	Comp time.Duration
	Comm time.Duration
}

// Total returns T_total = T_comp + T_comm.
func (c Cost) Total() time.Duration { return c.Comp + c.Comm }

// Rank evaluates the model for one rank's counters. The computation
// formula follows the rank's method:
//
//	BS    (Eq. 1): To·Σ A/2^k                 — every received pixel
//	BSBR  (Eq. 3): T_bound·A + To·Σ A_rec^k   — received-rectangle pixels
//	BSLC  (Eq. 5): Σ (T_enc·A/2^k + To·A_op)  — encode scans + non-blanks
//	BSBRC (Eq. 7): T_bound·A + Σ (T_enc·A_send + To·A_op)
//
// Baselines use the generic form T_bound·scan + T_enc·encoded +
// To·composited. Communication (Eq. 2/4/6/8) is Σ (Ts + bytes·Tc) over
// received messages, the fold pre-stage included.
func (p Params) Rank(r *stats.Rank) Cost {
	var c Cost
	c.Comp += time.Duration(r.BoundScan) * p.Tbound
	c.Comp += p.stageComp(r.Method, &r.Fold)
	c.Comm += p.stageComm(&r.Fold)
	for i := range r.Stages {
		c.Comp += p.stageComp(r.Method, &r.Stages[i])
		c.Comm += p.stageComm(&r.Stages[i])
	}
	return c
}

// Stage evaluates the model for a single stage's counters — the
// per-stage resolution of Rank, for reports that place modeled stage
// costs beside measured span times.
func (p Params) Stage(method string, s *stats.Stage) Cost {
	return Cost{Comp: p.stageComp(method, s), Comm: p.stageComm(s)}
}

func (p Params) stageComp(method string, s *stats.Stage) time.Duration {
	var d time.Duration
	d += time.Duration(s.Encoded) * p.Tencode
	switch method {
	case "BS", "BSBR":
		// The paper charges the over cost for every delivered pixel,
		// blanks included (the receiving half or rectangle is dense).
		d += time.Duration(s.RecvPixels) * p.To
	default:
		d += time.Duration(s.Composited) * p.To
	}
	return d
}

func (p Params) stageComm(s *stats.Stage) time.Duration {
	var d time.Duration
	if s.MsgsRecv > 0 {
		d += time.Duration(s.MsgsRecv) * p.Ts
		d += time.Duration(s.BytesRecv) * p.Tc
	}
	return d
}

// World evaluates the model across all ranks and returns the paper's
// per-table quantities: the slowest rank's T_comp, T_comm (the completion
// bound), and their sum.
func (p Params) World(ranks []*stats.Rank) Cost {
	var w Cost
	for _, r := range ranks {
		if r == nil {
			continue
		}
		c := p.Rank(r)
		if c.Comp > w.Comp {
			w.Comp = c.Comp
		}
		if c.Comm > w.Comm {
			w.Comm = c.Comm
		}
	}
	return w
}

// String implements fmt.Stringer.
func (c Cost) String() string {
	return fmt.Sprintf("comp=%.2fms comm=%.2fms total=%.2fms",
		float64(c.Comp)/1e6, float64(c.Comm)/1e6, float64(c.Total())/1e6)
}
