package costmodel

import (
	"testing"
	"time"

	"sortlast/internal/stats"
)

func params() Params {
	return Params{
		Ts:      100 * time.Microsecond,
		Tc:      10 * time.Nanosecond,
		To:      1 * time.Microsecond,
		Tencode: 100 * time.Nanosecond,
		Tbound:  10 * time.Nanosecond,
	}
}

func TestBSFormula(t *testing.T) {
	r := &stats.Rank{Method: "BS"}
	s := r.StageAt(1)
	s.RecvPixels = 1000
	s.Composited = 400 // must be ignored for BS
	s.BytesRecv = 16000
	s.MsgsRecv = 1
	c := params().Rank(r)
	wantComp := 1000 * time.Microsecond
	if c.Comp != wantComp {
		t.Errorf("BS comp = %v, want %v (To x RecvPixels)", c.Comp, wantComp)
	}
	wantComm := 100*time.Microsecond + 16000*10*time.Nanosecond
	if c.Comm != wantComm {
		t.Errorf("BS comm = %v, want %v", c.Comm, wantComm)
	}
}

func TestBSLCFormula(t *testing.T) {
	r := &stats.Rank{Method: "BSLC"}
	s := r.StageAt(1)
	s.Encoded = 2000
	s.Composited = 300
	s.RecvPixels = 2000 // ignored for BSLC
	c := params().Rank(r)
	want := 2000*100*time.Nanosecond + 300*time.Microsecond
	if c.Comp != want {
		t.Errorf("BSLC comp = %v, want %v", c.Comp, want)
	}
}

func TestBSBRCFormulaIncludesBoundScan(t *testing.T) {
	r := &stats.Rank{Method: "BSBRC", BoundScan: 10000}
	s := r.StageAt(1)
	s.Encoded = 500
	s.Composited = 200
	c := params().Rank(r)
	want := 10000*10*time.Nanosecond + 500*100*time.Nanosecond + 200*time.Microsecond
	if c.Comp != want {
		t.Errorf("BSBRC comp = %v, want %v", c.Comp, want)
	}
}

func TestCommSkipsSilentStages(t *testing.T) {
	r := &stats.Rank{Method: "BSBR"}
	r.StageAt(1).MsgsRecv = 0 // no message, no Ts
	r.StageAt(2).MsgsRecv = 1
	c := params().Rank(r)
	if c.Comm != 100*time.Microsecond {
		t.Errorf("comm = %v, want one Ts", c.Comm)
	}
}

func TestFoldStageCounted(t *testing.T) {
	r := &stats.Rank{Method: "BSBRC"}
	r.Fold.MsgsRecv = 1
	r.Fold.BytesRecv = 100
	r.Fold.Composited = 10
	c := params().Rank(r)
	if c.Comm == 0 || c.Comp == 0 {
		t.Error("fold stage must contribute to both comp and comm")
	}
}

func TestWorldTakesMaxima(t *testing.T) {
	a := &stats.Rank{Method: "BS"}
	a.StageAt(1).RecvPixels = 100
	a.StageAt(1).MsgsRecv = 1
	a.StageAt(1).BytesRecv = 1
	b := &stats.Rank{Method: "BS"}
	b.StageAt(1).RecvPixels = 10
	b.StageAt(1).MsgsRecv = 1
	b.StageAt(1).BytesRecv = 100000
	p := params()
	w := p.World([]*stats.Rank{a, b, nil})
	if w.Comp != p.Rank(a).Comp {
		t.Error("world comp must be the slower rank's")
	}
	if w.Comm != p.Rank(b).Comm {
		t.Error("world comm must be the slower rank's")
	}
	if w.Total() != w.Comp+w.Comm {
		t.Error("total must be comp+comm")
	}
}

func TestSP2PresetMagnitudes(t *testing.T) {
	p := SP2()
	// Sanity-check the calibration against Table 1's BS row at P=2,
	// 384x384: one stage, A/2 = 73728 pixels, 16 bytes each.
	r := &stats.Rank{Method: "BS"}
	s := r.StageAt(1)
	s.RecvPixels = 73728
	s.BytesRecv = 73728 * 16
	s.MsgsRecv = 1
	c := p.Rank(r)
	compMS := float64(c.Comp) / 1e6
	commMS := float64(c.Comm) / 1e6
	// Paper: T_comp ~= 297.85 ms, T_comm ~= 29.25 ms.
	if compMS < 200 || compMS > 400 {
		t.Errorf("SP2 BS P=2 comp = %.1f ms, paper shows ~298 ms", compMS)
	}
	if commMS < 15 || commMS > 45 {
		t.Errorf("SP2 BS P=2 comm = %.1f ms, paper shows ~29 ms", commMS)
	}
}

func TestCostString(t *testing.T) {
	c := Cost{Comp: time.Millisecond, Comm: 2 * time.Millisecond}
	if c.String() == "" {
		t.Error("String must be non-empty")
	}
}
