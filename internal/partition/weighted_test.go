package partition

import (
	"testing"

	"sortlast/internal/volume"
)

// skewedVolume puts nearly all work in one octant.
func skewedVolume() *volume.Volume {
	v := volume.New(64, 64, 32)
	v.Fill(volume.Box{Lo: [3]int{0, 0, 0}, Hi: [3]int{16, 16, 8}}, 200)
	return v
}

func TestDecomposeWeightedStillPartitions(t *testing.T) {
	v := skewedVolume()
	est := volume.VoxelWork{Vol: v, Threshold: 10}
	for _, p := range []int{2, 4, 8, 16} {
		d, err := DecomposeWeighted(v.Bounds(), p, est)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		total := 0
		for _, b := range d.Boxes {
			total += b.Volume()
		}
		if total != v.Bounds().Volume() {
			t.Errorf("P=%d: boxes cover %d voxels, want %d", p, total, v.Bounds().Volume())
		}
		for i := 0; i < p; i++ {
			for j := i + 1; j < p; j++ {
				if !d.Boxes[i].Intersect(d.Boxes[j]).Empty() {
					t.Errorf("P=%d: boxes %d,%d overlap", p, i, j)
				}
			}
		}
		// The level machinery must be intact: siblings differ along the
		// level axis with side 0 on the lower side.
		for stage := 1; stage <= d.Stages(); stage++ {
			axis := d.StageAxis(stage)
			for r := 0; r < p; r++ {
				pr := d.Partner(r, stage)
				rb, pb := d.Box(r), d.Box(pr)
				lvl := d.StageLevel(stage)
				// Partner boxes must be strictly separated along the
				// level axis, with side 0 entirely on the low side (they
				// need not be adjacent: deeper cuts differ per subtree).
				if d.Side(r, lvl) == 0 {
					if rb.Hi[axis] > pb.Lo[axis] {
						t.Errorf("P=%d stage %d: side-0 rank %d box %v not below partner %v on axis %d",
							p, stage, r, rb, pb, axis)
					}
				} else if pb.Hi[axis] > rb.Lo[axis] {
					t.Errorf("P=%d stage %d: side-1 rank %d box %v not above partner %v on axis %d",
						p, stage, r, rb, pb, axis)
				}
			}
		}
	}
}

func TestDecomposeWeightedBalancesWork(t *testing.T) {
	v := skewedVolume()
	est := volume.VoxelWork{Vol: v, Threshold: 10, Base: 1, Opaque: 50}
	const p = 8

	spread := func(d *Decomposition) float64 {
		min, max := ^uint64(0), uint64(0)
		for _, b := range d.Boxes {
			w := est.BoxWork(b)
			if w < min {
				min = w
			}
			if w > max {
				max = w
			}
		}
		return float64(max-min) / float64(max)
	}

	uniform, err := Decompose(v.Bounds(), p)
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := DecomposeWeighted(v.Bounds(), p, est)
	if err != nil {
		t.Fatal(err)
	}
	su, sw := spread(uniform), spread(weighted)
	if sw >= su {
		t.Errorf("weighted spread %.3f not better than uniform %.3f", sw, su)
	}
	// On an extremely skewed volume the weighted split must be much
	// tighter — within 60% while uniform leaves some ranks nearly idle.
	if sw > 0.6 {
		t.Errorf("weighted spread %.3f still very unbalanced", sw)
	}
}

func TestDecomposeWeightedNilEstimatorFallsBack(t *testing.T) {
	root := volume.Box{Hi: [3]int{32, 32, 32}}
	d, err := DecomposeWeighted(root, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	u, err := Decompose(root, 4)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		if d.Box(r) != u.Box(r) {
			t.Errorf("rank %d: %v vs %v", r, d.Box(r), u.Box(r))
		}
	}
}

func TestDecomposeWeightedValidation(t *testing.T) {
	v := skewedVolume()
	est := volume.VoxelWork{Vol: v}
	if _, err := DecomposeWeighted(v.Bounds(), 3, est); err == nil {
		t.Error("non-power-of-two must be rejected")
	}
	if _, err := DecomposeWeighted(volume.Box{}, 2, est); err == nil {
		t.Error("empty root must be rejected")
	}
	thin := volume.Box{Hi: [3]int{1, 1, 1}}
	if _, err := DecomposeWeighted(thin, 2, est); err == nil {
		t.Error("unsplittable box must be rejected")
	}
}

func TestMedianCutDegenerateWeights(t *testing.T) {
	// All-zero weights must still produce a legal cut.
	v := volume.New(8, 8, 8) // empty volume: zero opaque work everywhere
	est := volume.VoxelWork{Vol: v, Threshold: 0, Base: 1, Opaque: 1}
	d, err := DecomposeWeighted(v.Bounds(), 8, est)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range d.Boxes {
		if b.Empty() {
			t.Errorf("degenerate weights produced empty box %v", b)
		}
	}
}
