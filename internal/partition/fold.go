package partition

import (
	"fmt"
	"math/bits"

	"sortlast/internal/volume"
)

// FoldPlan extends the binary-swap family to arbitrary rank counts — the
// extension the paper's §5 lists as future work ("the number of
// processors must be a power of two").
//
// The largest power of two Core ≤ P ranks form the swap core. For each
// extra rank e = Core+i (i < P-Core), core rank i's subvolume is split
// once more along its largest axis: core rank i keeps the low half and
// rank e renders the high half. Before the first swap stage, each extra
// rank sends its whole subimage to its core partner (the fold), which
// composites it in depth order; the core then runs the standard
// power-of-two schedule. The fold merges the deepest split in the tree,
// so performing it first preserves compositing order.
type FoldPlan struct {
	P    int // total ranks
	Core int // power-of-two swap core size
	Dec  *Decomposition

	coreBoxes  []volume.Box // adjusted boxes of core ranks
	extraBoxes []volume.Box // boxes of ranks Core..P-1
	foldAxes   []int        // split axis of fold i
}

// PlanFold builds a fold plan for any p >= 1. For a power-of-two p the
// plan degenerates to the plain decomposition with no folds.
func PlanFold(root volume.Box, p int) (*FoldPlan, error) {
	if p <= 0 {
		return nil, fmt.Errorf("partition: rank count %d must be positive", p)
	}
	core := 1 << (bits.Len(uint(p)) - 1) // largest power of two <= p
	dec, err := Decompose(root, core)
	if err != nil {
		return nil, err
	}
	f := &FoldPlan{P: p, Core: core, Dec: dec}
	f.coreBoxes = append(f.coreBoxes, dec.Boxes...)
	extra := p - core
	for i := 0; i < extra; i++ {
		b := f.coreBoxes[i]
		axis := b.LargestAxis()
		if b.Extent(axis) < 2 {
			return nil, fmt.Errorf("partition: core box %v too thin to fold", b)
		}
		mid := b.Lo[axis] + b.Extent(axis)/2
		lo, hi := b.Split(axis, mid)
		f.coreBoxes[i] = lo
		f.extraBoxes = append(f.extraBoxes, hi)
		f.foldAxes = append(f.foldAxes, axis)
	}
	return f, nil
}

// Size returns the total rank count P.
func (f *FoldPlan) Size() int { return f.P }

// Extras returns the number of folded ranks.
func (f *FoldPlan) Extras() int { return f.P - f.Core }

// Box returns rank r's subvolume under the plan.
func (f *FoldPlan) Box(r int) volume.Box {
	if r < f.Core {
		return f.coreBoxes[r]
	}
	return f.extraBoxes[r-f.Core]
}

// IsExtra reports whether rank r folds out before the swap stages.
func (f *FoldPlan) IsExtra(r int) bool { return r >= f.Core }

// FoldPartner returns the pairing of the fold pre-stage: for an extra
// rank, the core rank it sends to; for a core rank with a fold, the extra
// rank it receives from; and -1 for core ranks without a fold.
func (f *FoldPlan) FoldPartner(r int) int {
	if r >= f.Core {
		return r - f.Core
	}
	if r < f.Extras() {
		return f.Core + r
	}
	return -1
}

// ExtraInFront reports whether extra rank Core+i's subimage is in front
// of its core partner's for the given view direction. The extra box is
// the high side of the fold split.
func (f *FoldPlan) ExtraInFront(i int, viewDir [3]float64) bool {
	return viewDir[f.foldAxes[i]] < 0
}

// DepthOrder returns all P ranks front-to-back: the core depth order with
// each folded rank inserted adjacent to its partner on the correct side.
func (f *FoldPlan) DepthOrder(viewDir [3]float64) []int {
	coreOrder := f.Dec.DepthOrder(viewDir)
	out := make([]int, 0, f.P)
	for _, r := range coreOrder {
		e := f.FoldPartner(r)
		if e < f.Core { // no fold on this core rank
			out = append(out, r)
			continue
		}
		if f.ExtraInFront(r, viewDir) {
			out = append(out, e, r)
		} else {
			out = append(out, r, e)
		}
	}
	return out
}
