package partition

import (
	"fmt"
	"math/bits"

	"sortlast/internal/volume"
)

// The paper's §5 lists "an efficient load-balancing scheme in the
// rendering phase" as future work: with uneven opaque-voxel
// distributions, equal-volume subvolumes give very unequal rendering
// work. DecomposeWeighted splits each kd node at the work median instead
// of the spatial midpoint, keeping every invariant the compositing
// machinery relies on (one split axis per level, side 0 = lower
// coordinates, separating planes between subtrees) while equalizing the
// estimated per-rank rendering cost.

// WorkEstimator estimates rendering work inside a box, resolved to unit
// slices along an axis so the decomposition can binary-search cut
// positions. volume.VoxelWork is the standard implementation.
type WorkEstimator interface {
	// SliceWeights returns, for each slice s in [b.Lo[axis], b.Hi[axis]),
	// the estimated work of b restricted to that slice.
	SliceWeights(b volume.Box, axis int) []uint64
}

// DecomposeWeighted builds a kd decomposition for a power-of-two p whose
// nodes split at the estimated-work median. The split axis is chosen per
// level (the expected remaining extent, as in Decompose), so stage
// pairing and front-to-back ordering work exactly as for the uniform
// decomposition.
func DecomposeWeighted(root volume.Box, p int, est WorkEstimator) (*Decomposition, error) {
	if p <= 0 || p&(p-1) != 0 {
		return nil, &PowerOfTwoError{P: p}
	}
	if root.Empty() {
		return nil, fmt.Errorf("partition: empty root box %v", root)
	}
	if est == nil {
		return Decompose(root, p)
	}
	depth := bits.TrailingZeros(uint(p))
	d := &Decomposition{
		Root:  root,
		Depth: depth,
		Axes:  make([]int, depth),
		Boxes: []volume.Box{root},
	}
	// Expected per-axis extent after the splits so far; halved on the
	// level's axis each time, mirroring the uniform decomposition's
	// axis-selection behavior independent of the actual cut positions.
	extent := [3]int{root.Dx(), root.Dy(), root.Dz()}
	for l := 0; l < depth; l++ {
		axis := 0
		for a := 1; a < 3; a++ {
			if extent[a] > extent[axis] {
				axis = a
			}
		}
		if extent[axis] < 2 {
			return nil, fmt.Errorf("partition: volume too thin to split %d more times", depth-l)
		}
		d.Axes[l] = axis
		extent[axis] /= 2
		next := make([]volume.Box, 0, len(d.Boxes)*2)
		for _, b := range d.Boxes {
			pos, err := medianCut(b, axis, est)
			if err != nil {
				return nil, err
			}
			lo, hi := b.Split(axis, pos)
			next = append(next, lo, hi)
		}
		d.Boxes = next
	}
	return d, nil
}

// medianCut finds the slice boundary along axis that best halves the
// estimated work of b, constrained to leave at least one slice on each
// side.
func medianCut(b volume.Box, axis int, est WorkEstimator) (int, error) {
	if b.Extent(axis) < 2 {
		return 0, fmt.Errorf("partition: box %v too thin along axis %d", b, axis)
	}
	weights := est.SliceWeights(b, axis)
	if len(weights) != b.Extent(axis) {
		return 0, fmt.Errorf("partition: estimator returned %d weights for extent %d",
			len(weights), b.Extent(axis))
	}
	var total uint64
	for _, w := range weights {
		total += w
	}
	// Walk the prefix sum; choose the boundary whose halves differ least.
	bestPos, bestDiff := b.Lo[axis]+1, uint64(1)<<63
	var prefix uint64
	for i := 0; i < len(weights)-1; i++ {
		prefix += weights[i]
		var diff uint64
		if 2*prefix > total {
			diff = 2*prefix - total
		} else {
			diff = total - 2*prefix
		}
		if diff < bestDiff {
			bestDiff = diff
			bestPos = b.Lo[axis] + i + 1
		}
	}
	return bestPos, nil
}
