package partition

import (
	"fmt"

	"sortlast/internal/frame"
)

// Tiling is the image decomposition of the tile-routed compositors: the
// frame splits into a fixed grid of square tiles (edge tiles clipped to
// the frame) and every tile has exactly one owning rank, assigned
// round-robin by tile index. The assignment depends only on the tile
// grid and P — never on the volume decomposition — which is what frees
// the tile-routed methods from the power-of-two rank restriction: any
// rank can own any tile, and a rank owning zero tiles (P > tile count)
// is valid.
type Tiling struct {
	Full frame.Rect
	Tile int // tile edge in pixels
	P    int // owning rank count

	nx, ny int // tiles per row / column
}

// NewTiling builds the tile grid over full for p owning ranks.
func NewTiling(full frame.Rect, tile, p int) (*Tiling, error) {
	if tile <= 0 {
		return nil, fmt.Errorf("partition: tile edge %d must be positive", tile)
	}
	if p <= 0 {
		return nil, fmt.Errorf("partition: tiling rank count %d must be positive", p)
	}
	if full.Empty() {
		return nil, fmt.Errorf("partition: tiling over empty frame %v", full)
	}
	return &Tiling{
		Full: full, Tile: tile, P: p,
		nx: (full.Dx() + tile - 1) / tile,
		ny: (full.Dy() + tile - 1) / tile,
	}, nil
}

// NumTiles returns the tile count.
func (t *Tiling) NumTiles() int { return t.nx * t.ny }

// Rect returns tile i's pixel rectangle, clipped to the frame. Tiles are
// indexed row-major over the grid.
func (t *Tiling) Rect(i int) frame.Rect {
	tx, ty := i%t.nx, i/t.nx
	r := frame.Rect{
		X0: t.Full.X0 + tx*t.Tile,
		Y0: t.Full.Y0 + ty*t.Tile,
		X1: t.Full.X0 + (tx+1)*t.Tile,
		Y1: t.Full.Y0 + (ty+1)*t.Tile,
	}
	return r.Intersect(t.Full)
}

// Valid reports whether i is a tile index.
func (t *Tiling) Valid(i int) bool { return i >= 0 && i < t.NumTiles() }

// Owner returns the rank that composites and owns tile i. Round-robin by
// index interleaves neighboring tiles across ranks, so a compact
// foreground region spreads its compositing work instead of landing on
// one owner.
func (t *Tiling) Owner(i int) int { return i % t.P }

// OwnedBy returns the tiles rank r owns, in ascending index order.
func (t *Tiling) OwnedBy(r int) []int {
	if r < 0 || r >= t.P {
		return nil
	}
	n := t.NumTiles()
	out := make([]int, 0, (n-r+t.P-1)/t.P)
	for i := r; i < n; i += t.P {
		out = append(out, i)
	}
	return out
}

// Overlapping calls fn for every tile whose rectangle intersects r, in
// ascending index order.
func (t *Tiling) Overlapping(r frame.Rect, fn func(i int)) {
	r = r.Intersect(t.Full)
	if r.Empty() {
		return
	}
	tx0 := (r.X0 - t.Full.X0) / t.Tile
	ty0 := (r.Y0 - t.Full.Y0) / t.Tile
	tx1 := (r.X1 - 1 - t.Full.X0) / t.Tile
	ty1 := (r.Y1 - 1 - t.Full.Y0) / t.Tile
	for ty := ty0; ty <= ty1; ty++ {
		for tx := tx0; tx <= tx1; tx++ {
			fn(ty*t.nx + tx)
		}
	}
}
