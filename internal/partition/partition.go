// Package partition decomposes a volume into per-rank subvolumes and
// answers the ordering questions binary-swap compositing asks: who is my
// partner at stage k, and is my half-space in front of theirs for the
// current view direction?
//
// The decomposition is a kd-tree of depth d = log2 P. All boxes at one
// level share the same split axis (chosen as the largest remaining extent
// of the root), so a level is fully described by its axis. Rank bits map
// to tree paths with the most significant bit at the root: bit (d-1-l) of
// a rank selects the low (0) or high (1) side of the level-l split.
//
// Binary-swap merges the tree bottom-up: stage k (1-based) pairs ranks
// differing in bit (k-1), i.e. it merges across the level-(d-k) split
// planes — the deepest splits first, exactly the schedule of Ma et al.
// Compositing order across a split plane depends only on the view
// direction's sign along the split axis, which is what FrontSide encodes.
package partition

import (
	"fmt"
	"math/bits"

	"sortlast/internal/volume"
)

// Layout is the geometric contract a compositor needs from a partition:
// how many ranks there are, which subvolume each renders, and a
// view-dependent front-to-back rank order. Both *Decomposition (power of
// two) and *FoldPlan (any rank count) satisfy it, so compositors that
// never use binary-swap pairing — the tile-routed family — run at any P
// against either geometry.
type Layout interface {
	Size() int
	Box(r int) volume.Box
	// DepthOrder returns all ranks sorted front-to-back for the view
	// direction: sequential compositing in this order reproduces any
	// correct parallel schedule.
	DepthOrder(viewDir [3]float64) []int
}

// PowerOfTwoError reports a rank count the kd decomposition cannot
// serve. Admission layers unwrap it to tell the client *which* methods
// need a power-of-two P instead of surfacing a generic failure.
type PowerOfTwoError struct {
	P int
}

func (e *PowerOfTwoError) Error() string {
	return fmt.Sprintf("partition: rank count %d is not a positive power of two", e.P)
}

// Decomposition is a kd-tree partition of a root box over P = 2^Depth
// ranks.
type Decomposition struct {
	Root  volume.Box
	Depth int          // log2 of the rank count
	Axes  []int        // split axis per level, len == Depth
	Boxes []volume.Box // per-rank subvolume, len == 1<<Depth
}

// Decompose splits root into p congruent-ish boxes for a power-of-two p.
// Each level halves every box along the axis with the largest remaining
// extent (ties broken x, y, z), so subvolumes stay as cubical as
// possible — the shape that keeps screen footprints compact.
func Decompose(root volume.Box, p int) (*Decomposition, error) {
	if p <= 0 || p&(p-1) != 0 {
		return nil, &PowerOfTwoError{P: p}
	}
	if root.Empty() {
		return nil, fmt.Errorf("partition: empty root box %v", root)
	}
	depth := bits.TrailingZeros(uint(p))
	d := &Decomposition{
		Root:  root,
		Depth: depth,
		Axes:  make([]int, depth),
		Boxes: []volume.Box{root},
	}
	// Track a representative extent to choose each level's axis: all
	// boxes at a level are split the same way, so the first box stands
	// for all of them.
	for l := 0; l < depth; l++ {
		axis := d.Boxes[0].LargestAxis()
		if d.Boxes[0].Extent(axis) < 2 {
			return nil, fmt.Errorf("partition: box %v too thin to split %d more times",
				d.Boxes[0], depth-l)
		}
		d.Axes[l] = axis
		next := make([]volume.Box, 0, len(d.Boxes)*2)
		for _, b := range d.Boxes {
			mid := b.Lo[axis] + b.Extent(axis)/2
			lo, hi := b.Split(axis, mid)
			next = append(next, lo, hi)
		}
		d.Boxes = next
	}
	// The split loop above appends children in (low, high) order, which
	// makes the level-l choice land at bit (depth-1-l) automatically:
	// index = path from root, MSB first.
	return d, nil
}

// Size returns the rank count.
func (d *Decomposition) Size() int { return 1 << d.Depth }

// Box returns rank r's subvolume.
func (d *Decomposition) Box(r int) volume.Box { return d.Boxes[r] }

// Side returns which side (0 = low, 1 = high) of the level-l split rank r
// sits on.
func (d *Decomposition) Side(r, level int) int {
	return r >> (d.Depth - 1 - level) & 1
}

// Stages returns the number of binary-swap stages, log2 P.
func (d *Decomposition) Stages() int { return d.Depth }

// Partner returns the rank paired with r at 1-based stage k: the rank
// differing in bit k-1 (the level depth-k split).
func (d *Decomposition) Partner(r, stage int) int {
	return r ^ (1 << (stage - 1))
}

// StageLevel maps a 1-based compositing stage to the kd level whose split
// plane it merges across.
func (d *Decomposition) StageLevel(stage int) int { return d.Depth - stage }

// StageAxis returns the split axis merged at the given 1-based stage.
func (d *Decomposition) StageAxis(stage int) int {
	return d.Axes[d.StageLevel(stage)]
}

// FrontSide reports which side (0 = low coordinates, 1 = high) of the
// stage's split plane is nearer the viewer for rays travelling along
// viewDir. Rays with positive direction along the axis enter the low
// side first. A direction perpendicular to the axis never crosses the
// plane, so each ray sees only one side and either answer composites
// correctly; 0 is returned.
func (d *Decomposition) FrontSide(stage int, viewDir [3]float64) int {
	if viewDir[d.StageAxis(stage)] >= 0 {
		return 0
	}
	return 1
}

// RankInFront reports whether rank r's half is in front of its stage-k
// partner's half for the given view direction.
func (d *Decomposition) RankInFront(r, stage int, viewDir [3]float64) bool {
	return d.Side(r, d.StageLevel(stage)) == d.FrontSide(stage, viewDir)
}

// DepthOrder returns all ranks sorted front-to-back for the given view
// direction: the rank whose subvolume rays enter first comes first. Ranks
// on the front side of a higher-level (coarser) split strictly precede
// ranks behind it; the order is the lexicographic order of rank bits with
// each level's bit flipped when the high side is in front. Sequential
// compositing in this order reproduces the parallel result.
func (d *Decomposition) DepthOrder(viewDir [3]float64) []int {
	out := make([]int, d.Size())
	for i := range out {
		r := 0
		for l := 0; l < d.Depth; l++ {
			bit := i >> (d.Depth - 1 - l) & 1
			if viewDir[d.Axes[l]] < 0 {
				bit ^= 1
			}
			r |= bit << (d.Depth - 1 - l)
		}
		out[i] = r
	}
	return out
}
