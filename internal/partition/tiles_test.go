package partition

import (
	"errors"
	"math/rand"
	"testing"

	"sortlast/internal/frame"
	"sortlast/internal/volume"
)

// The tile grid must partition the frame exactly: every pixel in exactly
// one tile, every tile owned by exactly one in-range rank.
func TestTilingPartitionsFrame(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 50; iter++ {
		full := frame.XYWH(rng.Intn(10), rng.Intn(10), 1+rng.Intn(90), 1+rng.Intn(90))
		tile := 1 + rng.Intn(40)
		p := 1 + rng.Intn(12)
		til, err := NewTiling(full, tile, p)
		if err != nil {
			t.Fatal(err)
		}
		area := 0
		for i := 0; i < til.NumTiles(); i++ {
			r := til.Rect(i)
			if r.Empty() {
				t.Fatalf("tile %d of %v/%d empty", i, full, tile)
			}
			area += r.Area()
			if o := til.Owner(i); o < 0 || o >= p {
				t.Fatalf("tile %d owner %d out of range %d", i, o, p)
			}
		}
		if area != full.Area() {
			t.Fatalf("tiles cover %d of %d (%v tile=%d)", area, full.Area(), full, tile)
		}
		// OwnedBy lists exactly the tiles Owner assigns, disjointly.
		seen := map[int]int{}
		for r := 0; r < p; r++ {
			for _, i := range til.OwnedBy(r) {
				if til.Owner(i) != r {
					t.Fatalf("OwnedBy(%d) lists tile %d owned by %d", r, i, til.Owner(i))
				}
				seen[i]++
			}
		}
		if len(seen) != til.NumTiles() {
			t.Fatalf("OwnedBy covers %d of %d tiles", len(seen), til.NumTiles())
		}
		for i, n := range seen {
			if n != 1 {
				t.Fatalf("tile %d listed %d times", i, n)
			}
		}
	}
}

func TestTilingOverlapping(t *testing.T) {
	full := frame.XYWH(0, 0, 100, 60)
	til, err := NewTiling(full, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	probe := frame.XYWH(15, 15, 20, 3) // crosses tile boundaries at x=16,32 and y=16
	var hit []int
	til.Overlapping(probe, func(i int) { hit = append(hit, i) })
	want := map[int]bool{}
	for i := 0; i < til.NumTiles(); i++ {
		if !til.Rect(i).Intersect(probe).Empty() {
			want[i] = true
		}
	}
	if len(hit) != len(want) {
		t.Fatalf("Overlapping hit %v, want %d tiles", hit, len(want))
	}
	for _, i := range hit {
		if !want[i] {
			t.Fatalf("Overlapping hit non-intersecting tile %d", i)
		}
	}
	// A probe outside the frame hits nothing.
	til.Overlapping(frame.XYWH(200, 200, 5, 5), func(i int) {
		t.Fatalf("tile %d hit by out-of-frame probe", i)
	})
}

func TestTilingRejectsBadInputs(t *testing.T) {
	full := frame.XYWH(0, 0, 10, 10)
	if _, err := NewTiling(full, 0, 2); err == nil {
		t.Error("zero tile accepted")
	}
	if _, err := NewTiling(full, 8, 0); err == nil {
		t.Error("zero ranks accepted")
	}
	if _, err := NewTiling(frame.Rect{}, 8, 2); err == nil {
		t.Error("empty frame accepted")
	}
}

// More ranks than tiles is valid: trailing ranks own nothing.
func TestTilingMoreRanksThanTiles(t *testing.T) {
	til, err := NewTiling(frame.XYWH(0, 0, 8, 8), 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if til.NumTiles() != 1 {
		t.Fatalf("tiles = %d", til.NumTiles())
	}
	if got := til.OwnedBy(0); len(got) != 1 {
		t.Fatalf("rank 0 owns %v", got)
	}
	for r := 1; r < 5; r++ {
		if got := til.OwnedBy(r); len(got) != 0 {
			t.Fatalf("rank %d owns %v, want nothing", r, got)
		}
	}
}

// The power-of-two rejection must be a typed error so admission layers
// can answer it with the any-P alternatives.
func TestDecomposeTypedPow2Error(t *testing.T) {
	root := volume.Box{Hi: [3]int{64, 64, 64}}
	for _, p := range []int{3, 6, 12} {
		_, err := Decompose(root, p)
		var pe *PowerOfTwoError
		if !errors.As(err, &pe) || pe.P != p {
			t.Fatalf("Decompose(%d) error %v, want *PowerOfTwoError", p, err)
		}
		_, err = DecomposeWeighted(root, p, nil)
		if !errors.As(err, &pe) {
			t.Fatalf("DecomposeWeighted(%d) error %v, want *PowerOfTwoError", p, err)
		}
	}
}
