package partition

import (
	"math/rand"
	"testing"

	"sortlast/internal/volume"
)

func root256() volume.Box {
	return volume.Box{Hi: [3]int{256, 256, 110}}
}

func TestDecomposeRejectsBadInput(t *testing.T) {
	if _, err := Decompose(root256(), 3); err == nil {
		t.Error("non-power-of-two must be rejected")
	}
	if _, err := Decompose(root256(), 0); err == nil {
		t.Error("zero ranks must be rejected")
	}
	if _, err := Decompose(volume.Box{}, 2); err == nil {
		t.Error("empty root must be rejected")
	}
	if _, err := Decompose(volume.Box{Hi: [3]int{1, 1, 1}}, 8); err == nil {
		t.Error("unsplittable box must be rejected")
	}
}

// The decomposition is exact: boxes are pairwise disjoint and cover the
// root voxel-for-voxel, for every power-of-two rank count.
func TestDecomposePartitionsExactly(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		d, err := Decompose(root256(), p)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if d.Size() != p || len(d.Boxes) != p {
			t.Fatalf("P=%d: size %d boxes %d", p, d.Size(), len(d.Boxes))
		}
		total := 0
		for _, b := range d.Boxes {
			total += b.Volume()
		}
		if total != root256().Volume() {
			t.Errorf("P=%d: boxes cover %d voxels, root has %d", p, total, root256().Volume())
		}
		for i := 0; i < p; i++ {
			for j := i + 1; j < p; j++ {
				if !d.Boxes[i].Intersect(d.Boxes[j]).Empty() {
					t.Errorf("P=%d: boxes %d and %d overlap", p, i, j)
				}
			}
		}
	}
}

// Every continuous point belongs to exactly one box (half-openness).
func TestDecomposePointMembershipUnique(t *testing.T) {
	d, err := Decompose(root256(), 16)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 2000; trial++ {
		x := r.Float64() * 256
		y := r.Float64() * 256
		z := r.Float64() * 110
		owners := 0
		for _, b := range d.Boxes {
			if b.Contains(x, y, z) {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("point (%v,%v,%v) has %d owners", x, y, z, owners)
		}
	}
}

func TestSideMatchesBoxPosition(t *testing.T) {
	d, err := Decompose(root256(), 8)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 8; r++ {
		for l := 0; l < d.Depth; l++ {
			axis := d.Axes[l]
			side := d.Side(r, l)
			// Find the sibling rank across level l and compare positions.
			sib := r ^ (1 << (d.Depth - 1 - l))
			rb, sb := d.Box(r), d.Box(sib)
			if side == 0 && rb.Lo[axis] > sb.Lo[axis] {
				t.Errorf("rank %d level %d: side 0 but box %v not low of %v on axis %d",
					r, l, rb, sb, axis)
			}
			if side == 1 && rb.Lo[axis] < sb.Lo[axis] {
				t.Errorf("rank %d level %d: side 1 but box %v not high of %v on axis %d",
					r, l, rb, sb, axis)
			}
		}
	}
}

func TestPartnerSymmetricAndStageMapping(t *testing.T) {
	d, err := Decompose(root256(), 32)
	if err != nil {
		t.Fatal(err)
	}
	for stage := 1; stage <= d.Stages(); stage++ {
		for r := 0; r < d.Size(); r++ {
			p := d.Partner(r, stage)
			if p == r || d.Partner(p, stage) != r {
				t.Fatalf("partner not a pairing: rank %d stage %d -> %d", r, stage, p)
			}
			// Partners at stage k differ exactly at the stage's level.
			lvl := d.StageLevel(stage)
			if d.Side(r, lvl) == d.Side(p, lvl) {
				t.Fatalf("partners on same side of level %d", lvl)
			}
			for l := 0; l < d.Depth; l++ {
				if l != lvl && d.Side(r, l) != d.Side(p, l) {
					t.Fatalf("partners differ at unrelated level %d", l)
				}
			}
		}
	}
	// Stage 1 merges the deepest level.
	if d.StageLevel(1) != d.Depth-1 || d.StageLevel(d.Stages()) != 0 {
		t.Error("stage-to-level mapping reversed")
	}
}

func TestFrontSideFollowsViewDirection(t *testing.T) {
	d, err := Decompose(root256(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for stage := 1; stage <= 2; stage++ {
		axis := d.StageAxis(stage)
		var pos, neg [3]float64
		pos[axis] = 1
		neg[axis] = -1
		if d.FrontSide(stage, pos) != 0 {
			t.Errorf("stage %d: rays along +axis must see the low side first", stage)
		}
		if d.FrontSide(stage, neg) != 1 {
			t.Errorf("stage %d: rays along -axis must see the high side first", stage)
		}
	}
}

// RankInFront is antisymmetric between partners: exactly one of a pair is
// in front for any view direction.
func TestRankInFrontAntisymmetric(t *testing.T) {
	d, err := Decompose(root256(), 16)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		dir := [3]float64{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
		for stage := 1; stage <= d.Stages(); stage++ {
			for rank := 0; rank < d.Size(); rank++ {
				p := d.Partner(rank, stage)
				if d.RankInFront(rank, stage, dir) == d.RankInFront(p, stage, dir) {
					t.Fatalf("both or neither of %d,%d in front at stage %d dir %v",
						rank, p, stage, dir)
				}
			}
		}
	}
}

// DepthOrder really is front-to-back: two ranks are separated by the
// split plane of the first kd level where their paths diverge, and the
// rank on the viewer's side of that plane must come first. (Global
// monotonicity of box coordinates is NOT required — ranks whose rays can
// never overlap may appear in any relative order.)
func TestDepthOrderSeparatingPlaneInvariant(t *testing.T) {
	d, err := Decompose(root256(), 8)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(11))
	dirs := [][3]float64{{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}}
	for trial := 0; trial < 50; trial++ {
		dirs = append(dirs, [3]float64{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()})
	}
	for _, dir := range dirs {
		order := d.DepthOrder(dir)
		seen := map[int]bool{}
		for _, x := range order {
			seen[x] = true
		}
		if len(seen) != 8 {
			t.Fatalf("order %v is not a permutation", order)
		}
		for i := 0; i < len(order); i++ {
			for j := i + 1; j < len(order); j++ {
				a, b := order[i], order[j]
				// First level where the paths diverge.
				lvl := -1
				for l := 0; l < d.Depth; l++ {
					if d.Side(a, l) != d.Side(b, l) {
						lvl = l
						break
					}
				}
				if lvl < 0 {
					t.Fatalf("duplicate ranks %d in order", a)
				}
				axis := d.Axes[lvl]
				if dir[axis] == 0 {
					continue // plane parallel to rays: order irrelevant
				}
				front := 0
				if dir[axis] < 0 {
					front = 1
				}
				if d.Side(a, lvl) != front {
					t.Fatalf("dir %v: rank %d precedes %d but is behind the level-%d plane",
						dir, a, b, lvl)
				}
			}
		}
	}
}

func TestPlanFoldPowerOfTwoDegenerates(t *testing.T) {
	f, err := PlanFold(root256(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if f.Core != 8 || f.Extras() != 0 {
		t.Fatalf("core=%d extras=%d", f.Core, f.Extras())
	}
	for r := 0; r < 8; r++ {
		if f.IsExtra(r) {
			t.Error("no rank may be extra")
		}
		if f.Box(r) != f.Dec.Box(r) {
			t.Error("boxes must match the plain decomposition")
		}
	}
	if f.FoldPartner(3) != -1 {
		t.Error("unfolded core rank must have no partner")
	}
}

func TestPlanFoldArbitraryP(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 6, 7, 9, 12, 24, 48, 63} {
		f, err := PlanFold(root256(), p)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if f.Size() != p {
			t.Fatalf("P=%d: size %d", p, f.Size())
		}
		total := 0
		for r := 0; r < p; r++ {
			total += f.Box(r).Volume()
		}
		if total != root256().Volume() {
			t.Errorf("P=%d: covers %d voxels, want %d", p, total, root256().Volume())
		}
		for i := 0; i < p; i++ {
			for j := i + 1; j < p; j++ {
				if !f.Box(i).Intersect(f.Box(j)).Empty() {
					t.Errorf("P=%d: boxes %d,%d overlap", p, i, j)
				}
			}
		}
		// Fold partners are mutual.
		for e := f.Core; e < p; e++ {
			c := f.FoldPartner(e)
			if c < 0 || c >= f.Core || f.FoldPartner(c) != e {
				t.Errorf("P=%d: fold pairing broken at extra %d", p, e)
			}
		}
	}
}

func TestFoldDepthOrderIsPermutation(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, p := range []int{3, 5, 7, 11, 24} {
		f, err := PlanFold(root256(), p)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 20; trial++ {
			dir := [3]float64{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
			order := f.DepthOrder(dir)
			if len(order) != p {
				t.Fatalf("P=%d: order length %d", p, len(order))
			}
			seen := map[int]bool{}
			for _, x := range order {
				seen[x] = true
			}
			if len(seen) != p {
				t.Fatalf("P=%d: order %v not a permutation", p, order)
			}
			// Each extra rank must be adjacent to its fold partner.
			posOf := make(map[int]int, p)
			for i, x := range order {
				posOf[x] = i
			}
			for e := f.Core; e < p; e++ {
				c := f.FoldPartner(e)
				if diff := posOf[e] - posOf[c]; diff != 1 && diff != -1 {
					t.Fatalf("P=%d: extra %d not adjacent to partner %d in %v", p, e, c, order)
				}
			}
		}
	}
}

func TestPlanFoldRejectsBadInput(t *testing.T) {
	if _, err := PlanFold(root256(), 0); err == nil {
		t.Error("zero ranks must be rejected")
	}
	if _, err := PlanFold(volume.Box{Hi: [3]int{1, 1, 1}}, 3); err == nil {
		t.Error("unfoldable box must be rejected")
	}
}
