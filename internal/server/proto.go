package server

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"sortlast/internal/harness"
	"sortlast/internal/trace"
)

// Wire protocol of the frame service: length-prefixed frames over one
// TCP connection, requests answered in order.
//
//	client → server:  [u32 LE n][n bytes: JSON Request]
//	server → client:  [u32 LE n][n bytes: JSON Response]
//	                  then, iff Response.OK:
//	                  [u32 LE m][m bytes: 8-bit gray pixels, row-major]
//
// The JSON header keeps the protocol trivially debuggable and
// extensible; the pixel payload stays raw because it dominates the
// bytes. A connection carries any number of requests sequentially;
// clients wanting concurrency open several connections.

// Frame size limits. Requests are small JSON documents; replies are
// bounded by the largest image the server will render.
const (
	MaxRequestFrame = 1 << 16
	MaxReplyFrame   = 1 << 28
)

// DefaultMethod is the compositing method used when a request leaves
// Method empty. Layers that key on the resolved method (the fleet
// gateway's frame cache) normalize against it.
const DefaultMethod = "bsbrc"

// Quality contract names accepted in Request.Quality, re-exported from
// the harness so the wire protocol and the execution layer can never
// disagree on the ladder. See harness/quality.go for the semantics.
const (
	QualityFull    = harness.QualityFull
	QualityApprox  = harness.QualityApprox
	QualityPreview = harness.QualityPreview
)

// NormalizeQuality and QualityRank re-export the harness quality
// helpers at the protocol layer, so gateways that key caches by
// contract need not import the execution harness.
func NormalizeQuality(q string) (string, error) { return harness.NormalizeQuality(q) }

// QualityRank orders contracts by fidelity (full > approx > preview);
// see harness.QualityRank.
func QualityRank(q string) int { return harness.QualityRank(q) }

// Request asks for one frame.
type Request struct {
	// Dataset is a built-in workload name (engine_low, engine_high,
	// head, cube).
	Dataset string `json:"dataset"`
	// Method is the compositing method (see sortlast.Methods). Empty
	// means bsbrc.
	Method string `json:"method,omitempty"`
	// Width and Height set the image size.
	Width  int `json:"width"`
	Height int `json:"height"`
	// RotX and RotY rotate the viewpoint in degrees.
	RotX float64 `json:"rotx,omitempty"`
	RotY float64 `json:"roty,omitempty"`
	// Shaded enables gradient-based Lambertian shading.
	Shaded bool `json:"shaded,omitempty"`
	// DeadlineMS bounds queue wait plus execution on the server side; a
	// request that cannot be dispatched before its deadline is answered
	// with CodeDeadline instead of rendering. Zero means the server
	// default.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`

	// Quality is the request's quality contract: "" or "full" (exact,
	// byte-identical to an unconstrained render), "approx" (raised
	// early-termination cutoff, sub-threshold regions dropped before
	// encode, worst-case error reported in Stats.ErrorBound), or
	// "preview" (quarter-resolution render; the reply carries the
	// reduced dimensions and the client library upscales). Unknown
	// names are rejected with CodeBadRequest.
	Quality string `json:"quality,omitempty"`
	// DegradeOK opts into degraded delivery instead of failure: when
	// the admission queue is saturated the server steps the contract
	// down the full→approx→preview ladder rather than answering
	// CodeOverloaded, and the frame watchdog demotes a slow frame to
	// approx on its first trip instead of failing the world. The
	// delivered contract is reported in Stats.Quality.
	DegradeOK bool `json:"degrade_ok,omitempty"`

	// Trace is the distributed trace context: the caller's trace ID,
	// parent span, and sampling decision. Nil means untraced (the server
	// still records locally for its own flight recorder). When Sampled,
	// the reply carries the server's span tree in Response.Trace so the
	// caller can assemble one merged cross-process trace.
	Trace *trace.Context `json:"trace,omitempty"`
}

// Typed error codes carried in Response.Code. The client library maps
// them to sentinel errors.
const (
	CodeOverloaded = "overloaded"  // admission queue full — retry later
	CodeBadRequest = "bad_request" // request invalid; do not retry
	CodeDeadline   = "deadline_exceeded"
	CodeShutdown   = "shutting_down"
	CodeInternal   = "internal"
	// CodeWorldFailed means the resident rank world died or wedged while
	// the request was in flight; the world is being rebuilt and the
	// request may be retried (the supervision layer restarts the pool,
	// so a later attempt lands on a fresh world).
	CodeWorldFailed = "world_failed"
)

// Response is the header of one reply.
type Response struct {
	OK    bool   `json:"ok"`
	Code  string `json:"code,omitempty"`
	Error string `json:"error,omitempty"`

	// Width and Height echo the rendered size; the pixel payload that
	// follows holds Width*Height gray bytes.
	Width  int `json:"width,omitempty"`
	Height int `json:"height,omitempty"`

	Stats FrameStats `json:"stats,omitempty"`

	// Trace is the server's span tree for this request, present only
	// when the request's trace context asked for sampling. Span-capped
	// (trace.MaxWireSpans) so the reply header stays inside
	// MaxRequestFrame.
	Trace *trace.Wire `json:"trace,omitempty"`
}

// FrameStats reports how the frame moved through the serving pipeline.
type FrameStats struct {
	// QueueMS is the time from admission to dispatch into the rank pool.
	QueueMS float64 `json:"queue_ms"`
	// RenderMS is rank 0's ray-casting wall time.
	RenderMS float64 `json:"render_ms"`
	// TotalMS is the server-side wall time from admission to reply.
	TotalMS float64 `json:"total_ms"`
	// WireBytes counts compositing bytes received across all ranks for
	// this frame (ranks that finish after the reply was sent may be
	// missing; the /metrics total is exact).
	WireBytes int64 `json:"wire_bytes"`

	// Replica is the 1-based index of the fleet replica that rendered
	// this frame; 0 when the frame was served by a standalone renderd or
	// from the gateway's frame cache. Set only by the fleet gateway.
	Replica int `json:"replica,omitempty"`
	// Hedged reports that the fleet gateway issued a hedged dispatch to
	// a second replica for this request.
	Hedged bool `json:"hedged,omitempty"`
	// Cached reports that the reply bytes came from the gateway's
	// camera-quantized frame cache without touching a world.
	Cached bool `json:"cached,omitempty"`

	// Quality is the delivered quality contract (full, approx,
	// preview) — what was actually rendered, which DegradeOK requests
	// may find below what they asked for. Degraded flags exactly that
	// case. ErrorBound is the worst-case per-pixel 8-bit gray error of
	// a non-full delivery against the full render (0 for preview:
	// resolution degrades, pixel values do not — and 0 for full).
	Quality    string  `json:"quality,omitempty"`
	Degraded   bool    `json:"degraded,omitempty"`
	ErrorBound float64 `json:"error_bound,omitempty"`

	// TraceID names the distributed trace this frame belongs to (hex),
	// even when the request was unsampled: it keys the server's
	// /debug/flight entries and the exemplars on the latency histograms.
	TraceID string `json:"trace_id,omitempty"`
}

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame of at most max bytes.
func ReadFrame(r io.Reader, max int) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if int64(n) > int64(max) {
		return nil, fmt.Errorf("server: frame of %d bytes exceeds limit %d", n, max)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// WriteJSON marshals v into one frame.
func WriteJSON(w io.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return WriteFrame(w, b)
}

// ReadJSON reads one frame of at most max bytes and unmarshals it into v.
func ReadJSON(r io.Reader, max int, v any) error {
	b, err := ReadFrame(r, max)
	if err != nil {
		return err
	}
	return json.Unmarshal(b, v)
}
