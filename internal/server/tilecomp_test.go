package server_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"sortlast/internal/client"
	"sortlast/internal/harness"
	"sortlast/internal/render"
	"sortlast/internal/server"
)

// sequentialGray runs the request through the harness with validation
// on, so the returned image is asserted byte-identical to the
// sequential compositing oracle before it becomes the reference.
func sequentialGray(t *testing.T, req server.Request, p int) []byte {
	t.Helper()
	row, img, err := harness.RunWithImage(harness.Config{
		Dataset: req.Dataset, Method: req.Method,
		Width: req.Width, Height: req.Height,
		P:        p,
		RotX:     req.RotX, RotY: req.RotY,
		Validate: true,
		RenderOpts: render.Options{Shaded: req.Shaded},
	})
	if err != nil {
		t.Fatalf("oracle run %+v: %v", req, err)
	}
	if row.ValidateDiff != 0 {
		t.Fatalf("oracle run %+v: parallel differs from sequential by %g", req, row.ValidateDiff)
	}
	return img.AppendGray(nil)
}

// A renderd world with a non-power-of-two rank count serves the
// tile-routed methods natively, byte-identical to the sequential
// oracle.
func TestServeTileRoutedNonPow2(t *testing.T) {
	for _, p := range []int{3, 6} {
		_, cl := startServer(t, server.Config{P: p, DefaultDeadline: time.Minute})
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		for _, m := range []string{"ds", "dfb"} {
			req := server.Request{Dataset: "cube", Method: m, Width: 48, Height: 48, RotY: 20}
			want := sequentialGray(t, req, p)
			f, err := cl.Render(ctx, req)
			if err != nil {
				t.Fatalf("P=%d %s: %v", p, m, err)
			}
			if !bytes.Equal(f.Gray, want) {
				t.Errorf("P=%d %s: served image differs from sequential oracle", p, m)
			}
		}
		cancel()
	}
}

// Admission at a non-power-of-two world must reject pow-2-only methods
// with a bad-request error that names the any-P alternatives, so a
// client knows what to ask for instead.
func TestServeNonPow2AdmissionNamesAlternatives(t *testing.T) {
	_, cl := startServer(t, server.Config{P: 6, DefaultDeadline: time.Minute})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	_, err := cl.Render(ctx, server.Request{Dataset: "cube", Method: "direct", Width: 32, Height: 32})
	if !errors.Is(err, client.ErrBadRequest) {
		t.Fatalf("pow-2-only method at P=6: got %v, want ErrBadRequest", err)
	}
	for _, alt := range []string{"ds", "dfb"} {
		if !strings.Contains(err.Error(), alt) {
			t.Errorf("rejection %q does not name any-P alternative %q", err, alt)
		}
	}
	// The same world still serves binary swap (folded) and the
	// tile-routed pair.
	for _, m := range []string{"bsbrc", "ds"} {
		if _, err := cl.Render(ctx, server.Request{Dataset: "cube", Method: m, Width: 32, Height: 32}); err != nil {
			t.Errorf("method %s after rejection: %v", m, err)
		}
	}
}
