package server

import (
	"bufio"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"sortlast/internal/render"
)

func scrape(t *testing.T, m *metrics) string {
	t.Helper()
	var sb strings.Builder
	m.WriteProm(&sb)
	return sb.String()
}

// metricName extracts the family name of a sample line, stripping the
// label set and the _bucket/_sum/_count histogram suffixes.
func metricName(line string) string {
	name := line
	if i := strings.IndexAny(name, "{ "); i >= 0 {
		name = name[:i]
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		name = strings.TrimSuffix(name, suf)
	}
	return name
}

// TestWritePromExpositionValid asserts structural validity of the text
// exposition: every sample belongs to a family announced by HELP and
// TYPE lines (in that order, before any sample), and every sample value
// parses as a float.
func TestWritePromExpositionValid(t *testing.T) {
	m := newMetrics(func() int { return 3 })
	m.frameDone("bsbrc", 42*time.Millisecond, 0)
	m.frameDone("bs", 3*time.Second, 0)
	m.requestFailed(CodeOverloaded)
	m.phaseDone("render", 10*time.Millisecond, 0)
	m.phaseDone("composite", 2*time.Millisecond, 0)
	m.phaseDone("gather", 500*time.Microsecond, 0)
	out := scrape(t, m)

	help := map[string]bool{}
	typed := map[string]bool{}
	samples := 0
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, _, found := strings.Cut(rest, " ")
			if !found {
				t.Errorf("HELP line without text: %q", line)
			}
			help[name] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, kind, _ := strings.Cut(rest, " ")
			if !help[name] {
				t.Errorf("TYPE before HELP for %q", name)
			}
			switch kind {
			case "counter", "gauge", "histogram":
			default:
				t.Errorf("unknown metric type %q in %q", kind, line)
			}
			typed[name] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Errorf("unexpected comment line %q", line)
			continue
		}
		samples++
		name := metricName(line)
		if !help[name] || !typed[name] {
			t.Errorf("sample %q for unannounced family %q", line, name)
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("sample without value: %q", line)
		}
		if _, err := strconv.ParseFloat(line[i+1:], 64); err != nil {
			t.Errorf("unparsable value in %q: %v", line, err)
		}
	}
	if samples == 0 {
		t.Fatal("no samples in exposition")
	}
}

// TestWritePromRenderStats asserts the ray-caster counters appear when a
// sampler is attached (with HELP/TYPE, passing the structural test
// above) and are absent otherwise.
func TestWritePromRenderStats(t *testing.T) {
	m := newMetrics(func() int { return 0 })
	if out := scrape(t, m); strings.Contains(out, "renderd_render_") {
		t.Error("render counters exposed without a sampler attached")
	}
	var rs render.Stats
	rs.Rays.Store(10)
	rs.Samples.Store(400)
	rs.SamplesSkipped.Store(600)
	rs.CellsVisited.Store(50)
	rs.CellsSkipped.Store(30)
	m.renderStats = rs.Snapshot
	out := scrape(t, m)
	for _, want := range []string{
		"renderd_render_rays_total 10",
		`renderd_render_samples_total{outcome="evaluated"} 400`,
		`renderd_render_samples_total{outcome="skipped"} 600`,
		`renderd_render_macrocells_total{outcome="evaluated"} 20`,
		`renderd_render_macrocells_total{outcome="skipped"} 30`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// histSeries collects one labeled histogram's cumulative bucket values
// plus its count, keyed off the exposition text.
func histSeries(t *testing.T, out, name, labels string) (buckets []float64, count float64) {
	t.Helper()
	prefix := name + "_bucket{" + labels
	countLine := name + "_count"
	if labels != "" {
		countLine += "{" + strings.TrimSuffix(labels, ",") + "}"
	}
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, prefix) {
			i := strings.LastIndexByte(line, ' ')
			v, err := strconv.ParseFloat(line[i+1:], 64)
			if err != nil {
				t.Fatalf("bad bucket line %q: %v", line, err)
			}
			buckets = append(buckets, v)
		}
		if strings.HasPrefix(line, countLine+" ") {
			i := strings.LastIndexByte(line, ' ')
			count, _ = strconv.ParseFloat(line[i+1:], 64)
		}
	}
	if len(buckets) == 0 {
		t.Fatalf("no buckets found for %s{%s}", name, labels)
	}
	return buckets, count
}

// TestWritePromHistogramMonotone asserts the histogram contract: bucket
// values are cumulative (non-decreasing in le order), the +Inf bucket
// equals _count, and per-phase series are independent.
func TestWritePromHistogramMonotone(t *testing.T) {
	m := newMetrics(func() int { return 0 })
	for _, lat := range []time.Duration{time.Millisecond, 40 * time.Millisecond, 3 * time.Second, time.Minute} {
		m.frameDone("bsbrc", lat, 0)
	}
	m.phaseDone("render", 20*time.Millisecond, 0)
	m.phaseDone("render", 80*time.Millisecond, 0)
	out := scrape(t, m)

	check := func(name, labels string, wantCount float64) {
		buckets, count := histSeries(t, out, name, labels)
		for i := 1; i < len(buckets); i++ {
			if buckets[i] < buckets[i-1] {
				t.Errorf("%s{%s}: bucket %d value %g < previous %g", name, labels, i, buckets[i], buckets[i-1])
			}
		}
		if last := buckets[len(buckets)-1]; last != count {
			t.Errorf("%s{%s}: +Inf bucket %g != count %g", name, labels, last, count)
		}
		if count != wantCount {
			t.Errorf("%s{%s}: count = %g, want %g", name, labels, count, wantCount)
		}
	}
	check("renderd_frame_latency_seconds", "", 4)
	check("renderd_phase_latency_seconds", fmt.Sprintf("phase=%q,", "render"), 2)
	check("renderd_phase_latency_seconds", fmt.Sprintf("phase=%q,", "composite"), 0)
	check("renderd_phase_latency_seconds", fmt.Sprintf("phase=%q,", "gather"), 0)
}

// TestPhaseBucketCoverage pins the PR 6 re-tune: phases of the fast
// kernel land at ~1–20ms, and the bucket ladder must actually resolve
// that range instead of lumping it into the bottom two bins.
func TestPhaseBucketCoverage(t *testing.T) {
	// At least 6 boundaries strictly below 10ms so a sub-10ms
	// distribution has shape.
	below := 0
	for _, ub := range phaseBuckets {
		if ub < .01 {
			below++
		}
	}
	if below < 6 {
		t.Fatalf("phase buckets have %d boundaries below 10ms, want >= 6: %v", below, phaseBuckets)
	}
	if !sort.Float64sAreSorted(phaseBuckets) {
		t.Fatalf("phase buckets not ascending: %v", phaseBuckets)
	}

	// A typical fast-kernel spread must scatter across distinct buckets.
	m := newMetrics(func() int { return 0 })
	spread := []time.Duration{
		800 * time.Microsecond, 1500 * time.Microsecond, 3 * time.Millisecond,
		5 * time.Millisecond, 7 * time.Millisecond, 9 * time.Millisecond,
		12 * time.Millisecond, 20 * time.Millisecond,
	}
	for _, d := range spread {
		m.phaseDone("render", d, 0)
	}
	h := m.phases["render"]
	h.mu.Lock()
	occupied := 0
	for _, c := range h.counts {
		if c > 0 {
			occupied++
		}
	}
	h.mu.Unlock()
	if occupied < 6 {
		t.Fatalf("8-point sub-25ms spread occupies %d buckets, want >= 6 (buckets %v)", occupied, phaseBuckets)
	}
}

// TestExemplars asserts traced observations surface as OpenMetrics
// exemplars on the owning bucket's sample line — but only on the
// OpenMetrics exposition. The classic format allows nothing after the
// sample value but an optional timestamp, so a stock Prometheus scrape
// must stay exemplar-free even when every request is traced.
func TestExemplars(t *testing.T) {
	m := newMetrics(func() int { return 0 })
	m.frameDone("bsbrc", 42*time.Millisecond, 0xabcd)

	// Classic scrape: no exemplars, ever.
	if out := scrape(t, m); strings.Contains(out, "trace_id") {
		t.Fatalf("classic exposition carries an exemplar:\n%s", out)
	}

	// OpenMetrics scrape: the owning bucket carries it, plus # EOF.
	var sb strings.Builder
	m.WriteOpenMetrics(&sb)
	out := sb.String()
	want := `le="0.05"} 1 # {trace_id="000000000000abcd"} 0.042`
	if !strings.Contains(out, want) {
		t.Fatalf("OpenMetrics exposition missing exemplar %q in:\n%s", want, out)
	}
	// Exactly one bucket line carries it (the owning bucket, not the
	// cumulative tail).
	if n := strings.Count(out, "trace_id"); n != 1 {
		t.Fatalf("exemplar appears on %d lines, want 1", n)
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Fatal("OpenMetrics exposition missing # EOF trailer")
	}
}

// TestNegotiatesOpenMetrics pins the Accept-header negotiation that
// decides which exposition (and whether exemplars) a scrape gets.
func TestNegotiatesOpenMetrics(t *testing.T) {
	for _, tc := range []struct {
		accept string
		want   bool
	}{
		{"", false},
		{"text/plain;version=0.0.4", false},
		{"*/*", false},
		{"application/openmetrics-text", true},
		{"application/openmetrics-text;version=1.0.0", true},
		// Prometheus's real header: OpenMetrics preferred, classic fallback.
		{"application/openmetrics-text;version=1.0.0,text/plain;version=0.0.4;q=0.5,*/*;q=0.1", true},
		{"text/plain;version=0.0.4, application/openmetrics-text; version=1.0.0; q=0.8", true},
		{"application/openmetrics-text;q=0", false},
	} {
		if got := NegotiatesOpenMetrics(tc.accept); got != tc.want {
			t.Errorf("NegotiatesOpenMetrics(%q) = %v, want %v", tc.accept, got, tc.want)
		}
	}
}
