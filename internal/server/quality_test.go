package server_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"sortlast/internal/client"
	"sortlast/internal/harness"
	"sortlast/internal/server"
)

// upscaleRef applies the client's nearest-neighbor preview upscale to a
// reference gray image, so preview replies can be checked byte-exactly.
func upscaleRef(gray []byte, sw, sh, w, h int) []byte {
	out := make([]byte, w*h)
	for y := 0; y < h; y++ {
		src := gray[(y*sh/h)*sw:]
		dst := out[y*w : (y+1)*w]
		for x := range dst {
			dst[x] = src[x*sw/w]
		}
	}
	return out
}

// TestQualityContract pins the quality ladder end to end against one
// resident world: full is byte-identical to the seed behavior (with and
// without the explicit name, and with DegradeOK set under no
// contention), approx reports a positive error bound that its pixels
// respect, preview renders quarter resolution and the client upscales
// it to the requested geometry, and an unknown name is a bad request.
func TestQualityContract(t *testing.T) {
	const p, w, h = 4, 64, 64
	srv, err := server.Start(server.Config{
		Addr: "127.0.0.1:0", P: p,
		QueueDepth: 8, MaxInFlight: 2, DefaultDeadline: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	cl := client.New(srv.Addr().String())
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	base := server.Request{Dataset: "cube", Method: "bsbrc", Width: w, Height: h, RotY: 30}
	ref := referenceGray(t, base, p, 0)

	// Full contract: "" and "full" and DegradeOK-without-contention all
	// return the exact seed bytes and report full quality, no bound.
	for _, req := range []server.Request{
		base,
		{Dataset: "cube", Method: "bsbrc", Width: w, Height: h, RotY: 30, Quality: "full"},
		{Dataset: "cube", Method: "bsbrc", Width: w, Height: h, RotY: 30, DegradeOK: true},
	} {
		f, err := cl.Render(ctx, req)
		if err != nil {
			t.Fatalf("render %+v: %v", req, err)
		}
		if !bytes.Equal(f.Gray, ref) {
			t.Errorf("quality=%q degrade_ok=%v: image differs from the seed render", req.Quality, req.DegradeOK)
		}
		if f.Stats.Quality != server.QualityFull || f.Stats.Degraded || f.Stats.ErrorBound != 0 {
			t.Errorf("full contract reported quality=%q degraded=%v bound=%g",
				f.Stats.Quality, f.Stats.Degraded, f.Stats.ErrorBound)
		}
	}

	// Approx: delivered as asked, positive bound, pixels within it.
	approx := base
	approx.Quality = server.QualityApprox
	fa, err := cl.Render(ctx, approx)
	if err != nil {
		t.Fatalf("approx render: %v", err)
	}
	if fa.Stats.Quality != server.QualityApprox || fa.Stats.Degraded {
		t.Errorf("approx reply reported quality=%q degraded=%v", fa.Stats.Quality, fa.Stats.Degraded)
	}
	if fa.Stats.ErrorBound <= 0 {
		t.Fatalf("approx error bound = %g, want > 0", fa.Stats.ErrorBound)
	}
	worst := 0
	for i := range ref {
		d := int(fa.Gray[i]) - int(ref[i])
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	if float64(worst) > fa.Stats.ErrorBound+1 { // +1 for 8-bit rounding
		t.Errorf("approx pixel error %d exceeds the reported bound %g", worst, fa.Stats.ErrorBound)
	}

	// Preview: the server renders the quarter-resolution geometry and the
	// client upscales, so the reply equals the upscaled small reference.
	pw, ph := harness.PreviewDims(w, h)
	small := referenceGray(t, server.Request{Dataset: "cube", Method: "bsbrc", Width: pw, Height: ph, RotY: 30}, p, 0)
	prev := base
	prev.Quality = server.QualityPreview
	fp, err := cl.Render(ctx, prev)
	if err != nil {
		t.Fatalf("preview render: %v", err)
	}
	if fp.Width != w || fp.Height != h {
		t.Fatalf("preview reply is %dx%d after upscale, want %dx%d", fp.Width, fp.Height, w, h)
	}
	if fp.Stats.Quality != server.QualityPreview || fp.Stats.ErrorBound != 0 {
		t.Errorf("preview reply reported quality=%q bound=%g", fp.Stats.Quality, fp.Stats.ErrorBound)
	}
	if !bytes.Equal(fp.Gray, upscaleRef(small, pw, ph, w, h)) {
		t.Error("preview reply differs from the upscaled quarter-resolution reference")
	}

	// Unknown names fail validation instead of silently rendering full.
	bad := base
	bad.Quality = "ultra"
	if _, err := cl.Render(ctx, bad); !errors.Is(err, client.ErrBadRequest) {
		t.Errorf("quality=ultra: %v, want ErrBadRequest", err)
	}
}

// TestDegradeUnderOverload saturates a capacity-2 server (1 in flight,
// 1 queued) with concurrent DegradeOK requests: every request must be
// answered with a frame — degraded down the ladder, never rejected with
// overloaded — with the delivered quality populated, and the admission
// degrade path must show up in /metrics.
func TestDegradeUnderOverload(t *testing.T) {
	srv, err := server.Start(server.Config{
		Addr: "127.0.0.1:0", HTTPAddr: "127.0.0.1:0", P: 2,
		QueueDepth: 1, MaxInFlight: 1, DefaultDeadline: 2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	cl := client.New(srv.Addr().String())
	defer cl.Close()

	const n = 10
	req := server.Request{Dataset: "cube", Method: "bsbrc", Width: 96, Height: 96, DegradeOK: true}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		degraded int
		quals    = map[string]int{}
	)
	errCh := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			f, err := cl.Render(ctx, req)
			if err != nil {
				errCh <- err
				return
			}
			mu.Lock()
			defer mu.Unlock()
			quals[f.Stats.Quality]++
			if f.Stats.Degraded {
				degraded++
				if server.QualityRank(f.Stats.Quality) >= server.QualityRank(server.QualityFull) {
					errCh <- fmt.Errorf("degraded reply still claims quality %q", f.Stats.Quality)
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if errors.Is(err, client.ErrOverloaded) {
			t.Errorf("DegradeOK request was rejected with overloaded: %v", err)
			continue
		}
		t.Errorf("burst request failed: %v", err)
	}
	if degraded == 0 {
		t.Errorf("no request degraded under a %d-deep burst against capacity 2 (qualities: %v)", n, quals)
	}
	if quals[""] > 0 {
		t.Errorf("%d replies left the delivered quality empty", quals[""])
	}

	resp, err := http.Get("http://" + srv.HTTPAddr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(body, []byte(`renderd_degraded_total{path="admission"`)) {
		t.Error("metrics missing the admission degrade counter family")
	}
	if bytes.Contains(body, []byte(`renderd_degraded_total{path="admission",to="approx"} 0`)) &&
		bytes.Contains(body, []byte(`renderd_degraded_total{path="admission",to="preview"} 0`)) {
		t.Error("admission degrade counters all zero after a degrading burst")
	}
	if !bytes.Contains(body, []byte(`renderd_quality_delivered_total{quality="full"}`)) {
		t.Error("metrics missing the delivered-quality counter family")
	}
}

// TestWatchdogDemotesSlowFrame pins the watchdog's first-trip behavior
// for DegradeOK work: a frame that overruns the watchdog deadline is
// demoted to approx — remaining tiles re-rendered under the raised
// early-termination cutoff — and completes inside a doubled window,
// instead of tearing the world down. The frame must come back OK,
// reporting approx quality with a positive bound, and the world must
// never restart. Timing is calibrated from a measured full render and
// retried across watchdog scales, since the demotion only engages when
// the deadline lands mid-render.
func TestWatchdogDemotesSlowFrame(t *testing.T) {
	const p = 2
	req := server.Request{Dataset: "cube", Method: "bsbrc", Width: 320, Height: 320, DegradeOK: true}

	start := time.Now()
	referenceGray(t, server.Request{Dataset: req.Dataset, Method: req.Method, Width: req.Width, Height: req.Height}, p, 0)
	full := time.Since(start)

	for _, scale := range []float64{0.5, 0.25, 0.75} {
		timeout := time.Duration(float64(full) * scale)
		if timeout < 10*time.Millisecond {
			timeout = 10 * time.Millisecond
		}
		srv, err := server.Start(server.Config{
			Addr: "127.0.0.1:0", P: p,
			QueueDepth: 2, MaxInFlight: 1,
			DefaultDeadline: 2 * time.Minute, FrameTimeout: timeout,
		})
		if err != nil {
			t.Fatal(err)
		}
		cl := client.New(srv.Addr().String())
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		f, err := cl.Render(ctx, req)
		cancel()
		restarts := srv.WorldRestarts()
		cl.Close()
		srv.Shutdown(context.Background())
		if err != nil {
			t.Logf("scale %.2f (timeout %v): %v; retrying at the next scale", scale, timeout, err)
			continue
		}
		if f.Stats.Quality != server.QualityApprox {
			t.Logf("scale %.2f (timeout %v): frame finished at quality %q without tripping; retrying",
				scale, timeout, f.Stats.Quality)
			continue
		}
		// Demoted: the contract must say so, with a bound, and the world
		// must have survived.
		if !f.Stats.Degraded {
			t.Error("watchdog-demoted frame does not report degraded")
		}
		if f.Stats.ErrorBound <= 0 {
			t.Errorf("watchdog-demoted frame reports bound %g, want > 0", f.Stats.ErrorBound)
		}
		if restarts != 0 {
			t.Errorf("world restarted %d times; the first trip should demote, not fail", restarts)
		}
		return
	}
	t.Skip("no watchdog scale landed mid-render on this host; demotion not exercised")
}

// TestDegradeDisabledIgnoresOptIn pins the operator override (renderd
// -no-degrade): with DegradeDisabled set, DegradeOK requests behave as
// if the flag were never sent — a saturated queue answers overloaded
// and nothing is degraded.
func TestDegradeDisabledIgnoresOptIn(t *testing.T) {
	srv, err := server.Start(server.Config{
		Addr: "127.0.0.1:0", P: 2,
		QueueDepth: 1, MaxInFlight: 1, DefaultDeadline: 2 * time.Minute,
		DegradeDisabled: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	cl := client.New(srv.Addr().String())
	defer cl.Close()

	const n = 12
	req := server.Request{Dataset: "cube", Method: "bsbrc", Width: 128, Height: 128, DegradeOK: true}
	var (
		wg         sync.WaitGroup
		overloaded int
		mu         sync.Mutex
	)
	errCh := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			f, err := cl.Render(ctx, req)
			if errors.Is(err, client.ErrOverloaded) {
				mu.Lock()
				overloaded++
				mu.Unlock()
				return
			}
			if err != nil {
				errCh <- err
				return
			}
			if f.Stats.Degraded || f.Stats.Quality != server.QualityFull {
				errCh <- fmt.Errorf("degrade-disabled server delivered quality=%q degraded=%v",
					f.Stats.Quality, f.Stats.Degraded)
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if overloaded == 0 {
		t.Errorf("no overload rejections from a %d-deep burst against capacity 2 with degrade disabled", n)
	}
}
