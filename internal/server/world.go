package server

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"sortlast/internal/faultinject"
	"sortlast/internal/mp"
	"sortlast/internal/mpnet"
)

// resident is the standing rank pool the server owns for the lifetime of
// one world incarnation: one Comm endpoint per rank (each used by
// exactly one composite-stage goroutine), a graceful quiesce-then-close
// teardown, and a force stop that fails blocked receives when teardown
// must not wait. The supervisor builds a fresh resident after a failure.
type resident interface {
	comms() []mp.Comm
	// shutdown quiesces and tears the world down; bounded by ctx.
	shutdown(ctx context.Context) error
	// forceStop fails all blocked receives immediately (and releases any
	// injected stalls). Used when the pipeline must be cancelled without
	// waiting for quiescence.
	forceStop()
}

// newResident builds the rank pool named by kind: "mp" (in-process
// goroutine world) or "mpnet" (TCP world; every rank a node over real
// sockets, on addrs or loopback ephemeral ports when addrs is empty).
// A non-nil injector wraps every rank's transport with fault injection;
// each call starts a fresh injector incarnation, so faults armed against
// a previous world do not carry over to its replacement.
func newResident(kind string, p int, addrs []string, opts mp.Options, inj *faultinject.Injector) (resident, error) {
	switch kind {
	case "", "mp":
		return newProcResident(p, opts, inj)
	case "mpnet":
		return newNetResident(p, addrs, opts, inj)
	default:
		return nil, fmt.Errorf("server: unknown world kind %q (want mp or mpnet)", kind)
	}
}

// procResident is the in-process world.
type procResident struct {
	w   *mp.World
	cs  []mp.Comm
	inj *faultinject.Injector
}

func newProcResident(p int, opts mp.Options, inj *faultinject.Injector) (*procResident, error) {
	w, err := mp.NewWorld(p, opts)
	if err != nil {
		return nil, err
	}
	trs := make([]mp.Transport, p)
	for r := range trs {
		trs[r] = w.Transport(r)
	}
	if inj != nil {
		trs = inj.WrapWorld(trs)
	}
	cs := make([]mp.Comm, p)
	for r := range cs {
		if cs[r], err = mp.FromTransport(r, p, trs[r], opts); err != nil {
			return nil, err
		}
	}
	return &procResident{w: w, cs: cs, inj: inj}, nil
}

func (p *procResident) comms() []mp.Comm { return p.cs }
func (p *procResident) forceStop() {
	p.w.Shutdown()
	if p.inj != nil {
		p.inj.EndWorld() // release injected stalls so teardown never sleeps them out
	}
}
func (p *procResident) shutdown(context.Context) error {
	p.forceStop()
	return nil
}

// netResident runs every rank as an mpnet node over TCP. With an empty
// address list the nodes bind loopback ephemeral ports, which keeps the
// serving pipeline honest about byte movement without configuration.
type netResident struct {
	nodes []*mpnet.Node
	cs    []mp.Comm
	inj   *faultinject.Injector
}

func newNetResident(p int, addrs []string, opts mp.Options, inj *faultinject.Injector) (*netResident, error) {
	if len(addrs) == 0 {
		addrs = make([]string, p)
		for i := range addrs {
			addrs[i] = "127.0.0.1:0"
		}
	}
	if len(addrs) != p {
		return nil, fmt.Errorf("server: %d mpnet addresses for %d ranks", len(addrs), p)
	}
	// Bind all listeners first so every rank knows its peers' real
	// (possibly ephemeral) addresses before anyone dials.
	listeners := make([]net.Listener, p)
	real := make([]string, p)
	for i, addr := range addrs {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			for _, l := range listeners[:i] {
				l.Close()
			}
			return nil, fmt.Errorf("server: mpnet rank %d listen: %w", i, err)
		}
		listeners[i] = ln
		real[i] = ln.Addr().String()
	}
	if inj != nil {
		inj.BeginWorld()
	}
	nodes := make([]*mpnet.Node, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var wrap func(mp.Transport) mp.Transport
			if inj != nil {
				wrap = func(tr mp.Transport) mp.Transport { return inj.Wrap(r, tr) }
			}
			nodes[r], errs[r] = mpnet.Connect(mpnet.Config{
				Rank: r, Addrs: real, Listener: listeners[r],
				DialTimeout:   30 * time.Second,
				WrapTransport: wrap,
				Opts:          opts,
			})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			for _, n := range nodes {
				if n != nil {
					n.Close()
				}
			}
			return nil, fmt.Errorf("server: mpnet rank %d: %w", r, err)
		}
	}
	cs := make([]mp.Comm, p)
	for r, n := range nodes {
		cs[r] = n.Comm()
	}
	return &netResident{nodes: nodes, cs: cs, inj: inj}, nil
}

func (n *netResident) comms() []mp.Comm { return n.cs }

func (n *netResident) forceStop() {
	for _, node := range n.nodes {
		node.Close()
	}
	if n.inj != nil {
		n.inj.EndWorld()
	}
}

func (n *netResident) shutdown(ctx context.Context) error {
	if n.inj != nil {
		n.inj.EndWorld()
	}
	// Every node barriers, so the quiesce completes exactly when all
	// ranks are idle; a wedged rank trips the ctx deadline and the
	// remaining nodes close anyway.
	errs := make([]error, len(n.nodes))
	var wg sync.WaitGroup
	for r, node := range n.nodes {
		wg.Add(1)
		go func(r int, node *mpnet.Node) {
			defer wg.Done()
			errs[r] = node.Shutdown(ctx)
		}(r, node)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
