package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"sortlast/internal/autotune"
	"sortlast/internal/client"
	"sortlast/internal/server"
)

func TestValidateMethod(t *testing.T) {
	for _, m := range server.KnownMethods() {
		if err := server.ValidateMethod(m); err != nil {
			t.Errorf("ValidateMethod(%q) = %v, want nil", m, err)
		}
	}
	if err := server.ValidateMethod(""); err != nil {
		t.Errorf("empty method must be valid (server default): %v", err)
	}
	err := server.ValidateMethod("bsbrq")
	if err == nil {
		t.Fatal("unknown method must be rejected")
	}
	var typed *server.UnknownMethodError
	if !errors.As(err, &typed) {
		t.Fatalf("want *UnknownMethodError, got %T: %v", err, err)
	}
	if typed.Method != "bsbrq" || len(typed.Known) == 0 {
		t.Errorf("error carries %q / %d known methods", typed.Method, len(typed.Known))
	}
}

// An unknown method must be rejected at admission with the typed
// bad-request code, before any rank does work.
func TestUnknownMethodRejectedAtAdmission(t *testing.T) {
	srv, err := server.Start(server.Config{Addr: "127.0.0.1:0", P: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, srv)

	cl := client.New(srv.Addr().String())
	_, err = cl.Render(context.Background(),
		server.Request{Dataset: "cube", Method: "bsqrc", Width: 32, Height: 32})
	if !errors.Is(err, client.ErrBadRequest) {
		t.Fatalf("want ErrBadRequest, got %v", err)
	}
	if !strings.Contains(err.Error(), "unknown method") {
		t.Errorf("error %q should name the problem", err)
	}
}

// Method "auto" serves frames byte-identical to the selected fixed
// method, counts selections on /metrics, and exposes its state on
// /debug/autotune.
func TestServeAuto(t *testing.T) {
	const p = 4
	srv, err := server.Start(server.Config{
		Addr: "127.0.0.1:0", HTTPAddr: "127.0.0.1:0",
		P: p, DefaultDeadline: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, srv)

	cl := client.New(srv.Addr().String())
	req := server.Request{Dataset: "engine_low", Method: "auto", Width: 96, Height: 96, RotY: 25}
	var frames []*client.Frame
	for i := 0; i < 3; i++ {
		f, err := cl.Render(context.Background(), req)
		if err != nil {
			t.Fatalf("auto frame %d: %v", i, err)
		}
		frames = append(frames, f)
	}

	// /debug/autotune reports the decision state.
	base := "http://" + srv.HTTPAddr().String()
	var snap autotune.Snapshot
	getJSON(t, base+"/debug/autotune", &snap)
	if snap.LastChoice == nil {
		t.Fatal("snapshot has no last choice after auto frames")
	}
	if snap.Features == nil {
		t.Fatal("snapshot has no features after auto frames")
	}
	if snap.Observed < 1 {
		t.Errorf("observed = %d, want >= 1 (EWMA fed from measured frames)", snap.Observed)
	}
	chosen := snap.LastChoice.Method
	if len(snap.LastChoice.Predictions) != len(autotune.Candidates()) {
		t.Errorf("ranking covers %d methods, want %d",
			len(snap.LastChoice.Predictions), len(autotune.Candidates()))
	}

	// The latest auto frame must be byte-identical to a fixed run of the
	// method the selector last chose (auto is routing, not rendering).
	fixedReq := req
	fixedReq.Method = chosen
	fixed, err := cl.Render(context.Background(), fixedReq)
	if err != nil {
		t.Fatalf("fixed %s: %v", chosen, err)
	}
	if !bytes.Equal(fixed.Gray, frames[2].Gray) {
		t.Errorf("auto (via %s) and fixed %s frames differ", chosen, chosen)
	}

	// /metrics counts every auto frame under the method it resolved to
	// (the selector may legitimately switch between frames as measured
	// features replace the pre-scan, so assert the total).
	mb := getBody(t, base+"/metrics")
	if got := sumMetric(t, mb, "renderd_method_selected_total"); got != 3 {
		t.Errorf("method_selected_total sums to %d, want 3:\n%s",
			got, keepLines(mb, "method_selected"))
	}
	if !strings.Contains(mb, "renderd_frames_total{method="+fmt.Sprintf("%q", chosen)) {
		t.Errorf("frames_total missing method %q", chosen)
	}
}

// A nil Profile must fall back to the SP2 preset; a calibrated profile
// missing the server's transport must fail Start.
func TestStartProfileTransportMismatch(t *testing.T) {
	prof := autotune.DefaultProfile()
	delete(prof.Transports, autotune.TransportMP)
	_, err := server.Start(server.Config{Addr: "127.0.0.1:0", P: 2, Profile: prof})
	if err == nil {
		t.Fatal("profile without the world's transport must fail Start")
	}
}

func shutdown(t *testing.T, srv *server.Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, b)
	}
	return string(b)
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	if err := json.Unmarshal([]byte(getBody(t, url)), v); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

// sumMetric totals every sample line of one counter family.
func sumMetric(t *testing.T, body, name string) int {
	t.Helper()
	total := 0
	for _, ln := range strings.Split(body, "\n") {
		if !strings.HasPrefix(ln, name+"{") {
			continue
		}
		var v int
		if _, err := fmt.Sscanf(ln[strings.LastIndex(ln, " ")+1:], "%d", &v); err != nil {
			t.Fatalf("bad metric line %q: %v", ln, err)
		}
		total += v
	}
	return total
}

func keepLines(s, substr string) string {
	var out []string
	for _, ln := range strings.Split(s, "\n") {
		if strings.Contains(ln, substr) {
			out = append(out, ln)
		}
	}
	return strings.Join(out, "\n")
}
