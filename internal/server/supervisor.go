package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"sortlast/internal/mp"
)

// World supervision: the resident rank pool is one *incarnation* of the
// world, not the server. A pipeline error (a rank's composite failed, a
// connection reset) or a watchdog wedge (a frame stuck past
// Config.FrameTimeout — the paper's failure mode of one slow SP2 rank
// stalling the whole binary-swap exchange) fails the incarnation: every
// in-flight job is answered with the typed, retryable CodeWorldFailed,
// the world is torn down through the existing forceStop/shutdown hooks,
// and the supervisor rebuilds a fresh rank pool under capped exponential
// backoff. Requests admitted while the world is down simply wait in the
// admission queue (or bounce with CodeOverloaded when it fills), so the
// server degrades instead of hanging forever.

// Restart backoff bounds: quick first retry (most failures are one bad
// frame or an injected fault), capped so a persistently failing world
// does not busy-rebuild.
const (
	restartBackoffMin = 50 * time.Millisecond
	restartBackoffMax = 5 * time.Second
)

// errWedged is the watchdog's failure reason.
var errWedged = errors.New("server: frame watchdog expired (rank world wedged)")

// worldRun is one incarnation of the resident world: the rank pool, its
// pipeline goroutines, the per-frame watchdog, and the set of jobs
// currently inside the pipeline. Exactly one incarnation is live at a
// time; the supervisor replaces it after a failure.
type worldRun struct {
	res       resident
	renderChs []chan *job
	pipeWG    sync.WaitGroup // render+composite loops + watchdog

	failed   chan struct{} // closed on the first failure
	failOnce sync.Once
	failErr  error

	mu       sync.Mutex
	inflight map[*job]time.Time // job → watchdog deadline

	watchStop chan struct{}
	watchOnce sync.Once
}

// newWorldRun builds a fresh resident world and spawns its per-rank
// pipeline loops and the watchdog.
func (s *Server) newWorldRun() (*worldRun, error) {
	res, err := newResident(s.cfg.World, s.cfg.P, s.cfg.WorldAddrs,
		s.worldOpts(), s.cfg.Chaos)
	if err != nil {
		return nil, err
	}
	run := &worldRun{
		res:       res,
		renderChs: make([]chan *job, s.cfg.P),
		failed:    make(chan struct{}),
		inflight:  make(map[*job]time.Time),
		watchStop: make(chan struct{}),
	}
	comms := res.comms()
	for r := 0; r < s.cfg.P; r++ {
		renderCh := make(chan *job, s.cfg.MaxInFlight)
		compCh := make(chan rendered, s.cfg.MaxInFlight)
		run.renderChs[r] = renderCh
		run.pipeWG.Add(2)
		go s.renderLoop(r, run, renderCh, compCh)
		go s.compositeLoop(r, run, comms[r], compCh)
	}
	run.pipeWG.Add(1)
	go s.watchdog(run)
	return run, nil
}

// fail marks the incarnation dead: the reason is recorded, blocked
// receives are failed (and injected stalls released) so every pipeline
// loop drains promptly, and the failed channel wakes the supervisor.
// Idempotent; the first reason wins.
func (run *worldRun) fail(s *Server, err error) {
	run.failOnce.Do(func() {
		run.failErr = err
		e := err
		s.lastWorldErr.Store(&e)
		run.res.forceStop()
		close(run.failed)
	})
}

func (run *worldRun) stopWatchdog() {
	run.watchOnce.Do(func() { close(run.watchStop) })
}

// track registers a dispatched job with its watchdog deadline. Exactly
// one token is held per tracked job; whoever untracks it releases the
// token.
func (run *worldRun) track(j *job, deadline time.Time) {
	run.mu.Lock()
	run.inflight[j] = deadline
	run.mu.Unlock()
}

// untrack removes a job, reporting whether this caller owned the
// removal (and with it the job's token).
func (run *worldRun) untrack(j *job) bool {
	run.mu.Lock()
	defer run.mu.Unlock()
	if _, ok := run.inflight[j]; !ok {
		return false
	}
	delete(run.inflight, j)
	return true
}

// takeInflight removes and returns every tracked job; teardown answers
// them.
func (run *worldRun) takeInflight() []*job {
	run.mu.Lock()
	defer run.mu.Unlock()
	jobs := make([]*job, 0, len(run.inflight))
	for j := range run.inflight {
		jobs = append(jobs, j)
	}
	run.inflight = make(map[*job]time.Time)
	return jobs
}

// expired scans the in-flight jobs against now. A DegradeOK job blowing
// its watchdog deadline for the first time is demoted instead of
// counted: its Demote flag flips — switching the in-flight render's
// remaining tiles to the approx cutoff — and its watchdog clock
// restarts with a doubled window (the frame was already slow and only
// what remains gets cheaper). Returns the number of jobs demoted this
// tick and the worst overrun among non-demotable expirations; worst > 0
// means the incarnation is wedged and must fail.
func (run *worldRun) expired(now time.Time, frameTimeout time.Duration) (demoted int, worst time.Duration) {
	run.mu.Lock()
	defer run.mu.Unlock()
	for j, dl := range run.inflight {
		over := now.Sub(dl)
		if over <= 0 {
			continue
		}
		if j.demote != nil && j.demote.CompareAndSwap(false, true) {
			run.inflight[j] = now.Add(2 * frameTimeout)
			demoted++
			continue
		}
		if over > worst {
			worst = over
		}
	}
	return demoted, worst
}

// watchdog fails the incarnation when an in-flight frame makes no
// progress past its per-frame deadline — the wedged-world case (a
// stalled rank, a lost message) where no rank ever returns an error.
func (s *Server) watchdog(run *worldRun) {
	defer run.pipeWG.Done()
	interval := s.frameTimeout() / 8
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	if interval > time.Second {
		interval = time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-run.watchStop:
			return
		case <-run.failed:
			return
		case now := <-ticker.C:
			demoted, over := run.expired(now, s.frameTimeout())
			if demoted > 0 {
				s.met.degraded("watchdog", QualityApprox, int64(demoted))
			}
			if over > 0 {
				run.fail(s, fmt.Errorf("%w: frame %v past its %v deadline",
					errWedged, over+s.frameTimeout(), s.frameTimeout()))
				return
			}
		}
	}
}

// supervise owns the world lifecycle: dispatch against the current
// incarnation until the server stops or the incarnation fails; on
// failure, tear down, answer the casualties, and rebuild under capped
// exponential backoff. Runs as one goroutine for the server's lifetime.
func (s *Server) supervise(run *worldRun) {
	defer close(s.supDone)
	backoff := restartBackoffMin
	for {
		if stopped := s.dispatch(run); stopped {
			// Graceful stop: leave the incarnation for Shutdown to drain
			// (in-flight frames finish and are delivered).
			for _, ch := range run.renderChs {
				close(ch)
			}
			run.stopWatchdog()
			return
		}

		// The incarnation failed: count the restart, go degraded, tear
		// down, answer every in-flight job with the retryable code.
		s.met.worldRestarts.Add(1)
		s.restarts.Add(1)
		s.degraded.Store(true)
		s.teardownFailed(run)

		// Rebuild under capped exponential backoff. Admission stays open
		// the whole time: requests queue (bounded) and dispatch resumes
		// on the fresh world.
		for {
			select {
			case <-s.stop:
				s.failQueued()
				return
			case <-time.After(backoff):
			}
			next, err := s.newWorldRun()
			if err != nil {
				e := fmt.Errorf("server: world rebuild: %w", err)
				s.lastWorldErr.Store(&e)
				if backoff *= 2; backoff > restartBackoffMax {
					backoff = restartBackoffMax
				}
				continue
			}
			run = next
			break
		}
		backoff = restartBackoffMin
		s.setCur(run)
		s.degraded.Store(false)
	}
}

// dispatch moves admitted jobs from the queue into the incarnation's
// rank pool, bounded by the in-flight tokens. It owns deadline
// cancellation for queued jobs and returns true on server stop, false
// on world failure.
func (s *Server) dispatch(run *worldRun) (stopped bool) {
	for {
		select {
		case <-s.stop:
			s.failQueued()
			return true
		case <-run.failed:
			return false
		case j := <-s.queue:
			if time.Now().After(j.deadline) {
				s.met.requestFailed(CodeDeadline)
				j.finish(reply{code: CodeDeadline, err: errors.New("deadline expired while queued")})
				continue
			}
			select {
			case s.tokens <- struct{}{}:
			case <-s.stop:
				s.met.requestFailed(CodeShutdown)
				j.finish(reply{code: CodeShutdown, err: errors.New("server shutting down")})
				s.failQueued()
				return true
			case <-run.failed:
				// Admitted, but the world died before a pipeline slot
				// freed; answer retryable so the client can try again
				// against the rebuilt world.
				s.met.requestFailed(CodeWorldFailed)
				j.finish(reply{code: CodeWorldFailed, err: fmt.Errorf("rank world failed: %w", run.failErr)})
				return false
			}
			s.met.inflight.Add(1)
			j.dispatched = time.Now()
			run.track(j, j.dispatched.Add(s.frameTimeout()))
			for _, ch := range run.renderChs {
				ch <- j // never blocks: token bound ≥ channel backlog
			}
		}
	}
}

// teardownFailed disposes a failed incarnation: pipeline loops drain
// (fail already force-stopped the world, so nothing blocks), every job
// still inside the pipeline is answered with CodeWorldFailed and its
// token released, and the world's listeners are closed.
func (s *Server) teardownFailed(run *worldRun) {
	s.setCur(nil)
	for _, ch := range run.renderChs {
		close(ch)
	}
	run.stopWatchdog()
	run.pipeWG.Wait()
	for _, j := range run.takeInflight() {
		<-s.tokens
		s.met.inflight.Add(-1)
		s.met.requestFailed(CodeWorldFailed)
		j.finish(reply{code: CodeWorldFailed, err: fmt.Errorf("rank world failed: %w", run.failErr)})
	}
	// Bounded close of sockets/listeners; the world is already
	// force-stopped, so this never waits for a quiesce.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	run.res.shutdown(ctx)
}

func (s *Server) setCur(run *worldRun) {
	s.curMu.Lock()
	s.cur = run
	s.curMu.Unlock()
}

func (s *Server) takeCur() *worldRun {
	s.curMu.Lock()
	defer s.curMu.Unlock()
	run := s.cur
	s.cur = nil
	return run
}

func (s *Server) frameTimeout() time.Duration {
	if s.cfg.FrameTimeout > 0 {
		return s.cfg.FrameTimeout
	}
	return 60 * time.Second
}

func (s *Server) worldOpts() mp.Options {
	return mp.Options{RecvTimeout: s.cfg.RecvTimeout}
}
