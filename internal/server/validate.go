package server

import (
	"fmt"
	"strings"

	"sortlast/internal/autotune"
	"sortlast/internal/core"
)

// UnknownMethodError reports a request naming a compositing method the
// server does not serve. submit maps it to CodeBadRequest, so a client
// typo is rejected at admission instead of surfacing as a plan error
// deeper in the pipeline.
type UnknownMethodError struct {
	Method string
	Known  []string
}

func (e *UnknownMethodError) Error() string {
	return fmt.Sprintf("server: unknown method %q (have %s)",
		e.Method, strings.Join(e.Known, ", "))
}

// KnownMethods lists the method names the server accepts: the core
// compositor registry plus "auto" (adaptive per-frame selection).
func KnownMethods() []string {
	return append(core.Names(), autotune.MethodAuto)
}

// ValidateMethod checks a request's method name. Empty is valid (the
// server default applies); anything else must be a registered compositor
// or "auto". The error, when non-nil, is an *UnknownMethodError.
func ValidateMethod(method string) error {
	if method == "" || autotune.IsAuto(method) || core.Known(method) {
		return nil
	}
	return &UnknownMethodError{Method: method, Known: KnownMethods()}
}
