package server_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sortlast/internal/client"
	"sortlast/internal/harness"
	"sortlast/internal/render"
	"sortlast/internal/server"
)

// referenceGray renders the same configuration through the one-shot
// harness path and returns the row-major 8-bit gray image.
func referenceGray(t *testing.T, req server.Request, p, workers int) []byte {
	t.Helper()
	_, img, err := harness.RunWithImage(harness.Config{
		Dataset: req.Dataset, Method: req.Method,
		Width: req.Width, Height: req.Height,
		P:    p,
		RotX: req.RotX, RotY: req.RotY,
		RenderOpts: render.Options{Shaded: req.Shaded, Workers: workers},
	})
	if err != nil {
		t.Fatalf("reference run %+v: %v", req, err)
	}
	return img.AppendGray(nil)
}

// waitNoLeaks polls until the goroutine count returns to the baseline.
func waitNoLeaks(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Errorf("goroutines leaked: %d before, %d after\n%s", before, runtime.NumGoroutine(), buf[:n])
}

// TestServeEndToEnd is the acceptance test of the serving tier: a
// resident 4-rank world serves 16 concurrent requests across four
// compositing methods, every image byte-identical to a one-shot harness
// run; an over-capacity burst is rejected with typed overload errors
// rather than hanging; /metrics reports the traffic; shutdown leaks no
// goroutines.
func TestServeEndToEnd(t *testing.T) {
	before := runtime.NumGoroutine()

	const p = 4
	srv, err := server.Start(server.Config{
		Addr: "127.0.0.1:0", HTTPAddr: "127.0.0.1:0",
		P: p, QueueDepth: 16, MaxInFlight: 2,
		DefaultDeadline: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := client.New(srv.Addr().String())

	// 16 concurrent requests: 4 methods x 2 viewpoints x 2 repeats.
	methods := []string{"bsbrc", "bs", "bsbr", "bslc"}
	var reqs []server.Request
	for _, m := range methods {
		for _, rot := range []float64{0, 30} {
			r := server.Request{Dataset: "cube", Method: m, Width: 64, Height: 64, RotY: rot}
			reqs = append(reqs, r, r)
		}
	}
	refs := make([][]byte, len(reqs))
	for i, r := range reqs {
		refs[i] = referenceGray(t, r, p, 0)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, len(reqs))
	for i, r := range reqs {
		wg.Add(1)
		go func(i int, r server.Request) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			f, err := cl.Render(ctx, r)
			if err != nil {
				errCh <- fmt.Errorf("request %d (%+v): %w", i, r, err)
				return
			}
			if f.Width != r.Width || f.Height != r.Height {
				errCh <- fmt.Errorf("request %d: got %dx%d frame", i, f.Width, f.Height)
				return
			}
			if !bytes.Equal(f.Gray, refs[i]) {
				errCh <- fmt.Errorf("request %d (%+v): image differs from one-shot harness run", i, r)
			}
		}(i, r)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if t.Failed() {
		t.Fatal("concurrent serving produced wrong frames")
	}

	// Over-capacity burst: with 2 in flight + 16 queued, 40 concurrent
	// heavy frames must produce typed overload rejections — and every
	// request must be answered (no hangs).
	var overloaded, served atomic.Int64
	burst := server.Request{Dataset: "cube", Method: "bsbrc", Width: 384, Height: 384}
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			_, err := cl.Render(ctx, burst)
			switch {
			case err == nil:
				served.Add(1)
			case errors.Is(err, client.ErrOverloaded):
				overloaded.Add(1)
			default:
				t.Errorf("burst request: unexpected error %v", err)
			}
		}()
	}
	wg.Wait()
	if overloaded.Load() == 0 {
		t.Errorf("burst of 40 against capacity 18 produced no overload errors (served=%d)", served.Load())
	}
	if served.Load() == 0 {
		t.Error("burst produced no successful frames")
	}

	// Observability surface: /healthz is OK and /metrics shows traffic.
	httpBase := "http://" + srv.HTTPAddr().String()
	hresp, err := http.Get(httpBase + "/healthz")
	if err != nil || hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v status %v", err, hresp)
	}
	hresp.Body.Close()
	mresp, err := http.Get(httpBase + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	// Each method served its 4 correctness frames; bsbrc additionally
	// served the admitted part of the burst.
	for _, m := range methods {
		var n int
		pattern := fmt.Sprintf("renderd_frames_total{method=%q} ", m)
		i := bytes.Index(body, []byte(pattern))
		if i < 0 {
			t.Errorf("metrics missing %q", pattern)
			continue
		}
		fmt.Sscanf(string(body[i+len(pattern):]), "%d", &n)
		if n < 4 {
			t.Errorf("renderd_frames_total{method=%q} = %d, want >= 4", m, n)
		}
	}
	for _, substr := range []string{
		"renderd_request_errors_total{code=\"overloaded\"}",
		"renderd_wire_bytes_total",
		"renderd_frame_latency_seconds_bucket{le=\"+Inf\"}",
	} {
		if !bytes.Contains(body, []byte(substr)) {
			t.Errorf("metrics missing %q", substr)
		}
	}
	if bytes.Contains(body, []byte("renderd_wire_bytes_total 0\n")) {
		t.Error("wire byte counter stayed zero after serving frames")
	}

	// Drain and verify nothing leaks.
	cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
	waitNoLeaks(t, before)
}
