package server_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"testing"
	"time"

	"sortlast/internal/client"
	"sortlast/internal/faultinject"
	"sortlast/internal/server"
)

// chaosServer starts a renderd with a fault injector wired into the
// rank world and returns the injector alongside the usual pair.
func chaosServer(t *testing.T, cfg server.Config, fi faultinject.Config) (*server.Server, *client.Client, *faultinject.Injector) {
	t.Helper()
	inj := faultinject.New(fi)
	cfg.Chaos = inj
	srv, cl := startServer(t, cfg)
	return srv, cl, inj
}

func renderOnce(t *testing.T, cl *client.Client, req server.Request) (*client.Frame, error) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	return cl.Render(ctx, req)
}

// TestWorldCrashRecovery is the acceptance test of the supervision
// layer: a rank crash mid-frame fails the in-flight request with the
// typed retryable code, the supervisor rebuilds the world, and the next
// frame is byte-identical to a fault-free run — all without leaking a
// goroutine under the race detector.
func TestWorldCrashRecovery(t *testing.T) {
	before := runtime.NumGoroutine()

	const p = 4
	srv, cl, inj := chaosServer(t, server.Config{
		HTTPAddr: "127.0.0.1:0",
		P:        p, QueueDepth: 8, MaxInFlight: 2,
		DefaultDeadline: time.Minute,
	}, faultinject.Config{Seed: 42})

	req := server.Request{Dataset: "cube", Method: "bsbrc", Width: 64, Height: 64, RotY: 30}
	ref := referenceGray(t, req, p, 0)

	f, err := renderOnce(t, cl, req)
	if err != nil {
		t.Fatalf("healthy frame: %v", err)
	}
	if !bytes.Equal(f.Gray, ref) {
		t.Fatal("healthy frame differs from one-shot harness run")
	}

	// Kill rank 1: every transport operation on it now fails, so the
	// next frame dies inside the compositing exchange.
	inj.Crash(1)
	if _, err := renderOnce(t, cl, req); !errors.Is(err, client.ErrWorldFailed) {
		t.Fatalf("frame against crashed rank: err = %v, want ErrWorldFailed", err)
	}

	// Admission stays open while the supervisor rebuilds: this request
	// queues until the fresh world dispatches it, and the rebuilt world
	// (whose injector incarnation starts healthy) must produce a frame
	// byte-identical to the fault-free reference.
	f, err = renderOnce(t, cl, req)
	if err != nil {
		t.Fatalf("frame after world restart: %v", err)
	}
	if !bytes.Equal(f.Gray, ref) {
		t.Error("frame after world restart differs from fault-free reference")
	}
	if n := srv.WorldRestarts(); n < 1 {
		t.Errorf("WorldRestarts() = %d, want >= 1", n)
	}
	if srv.Degraded() {
		t.Error("server still degraded after a successful frame")
	}

	// The restart is on the metrics surface and health is green again.
	httpBase := "http://" + srv.HTTPAddr().String()
	mresp, err := http.Get(httpBase + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	var restarts int
	pattern := "\nrenderd_world_restarts_total "
	if i := bytes.Index(body, []byte(pattern)); i < 0 {
		t.Errorf("metrics missing %q", pattern)
	} else if fmt.Sscanf(string(body[i+len(pattern):]), "%d", &restarts); restarts < 1 {
		t.Errorf("renderd_world_restarts_total = %d, want >= 1", restarts)
	}
	if !bytes.Contains(body, []byte(`renderd_request_errors_total{code="world_failed"}`)) {
		t.Error(`metrics missing renderd_request_errors_total{code="world_failed"}`)
	}
	hresp, err := http.Get(httpBase + "/healthz")
	if err != nil || hresp.StatusCode != http.StatusOK {
		t.Errorf("healthz after recovery: %v status %v", err, hresp.Status)
	}
	hresp.Body.Close()

	cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
	waitNoLeaks(t, before)
}

// TestWatchdogUnwedgesStalledRank covers the failure mode where no rank
// ever returns an error: one rank stalls (the paper's slow-SP2-node
// case, here 30s against a 300ms frame budget), the per-frame watchdog
// declares the world wedged, the stalled sleep is released by teardown
// instead of being slept out, and service resumes on a fresh world.
func TestWatchdogUnwedgesStalledRank(t *testing.T) {
	before := runtime.NumGoroutine()

	const p = 4
	srv, cl, inj := chaosServer(t, server.Config{
		P: p, QueueDepth: 8, MaxInFlight: 2,
		DefaultDeadline: time.Minute,
		FrameTimeout:    300 * time.Millisecond,
	}, faultinject.Config{Seed: 1})

	req := server.Request{Dataset: "cube", Method: "bs", Width: 48, Height: 48}
	ref := referenceGray(t, req, p, 0)

	inj.Stall(1, 30*time.Second)
	start := time.Now()
	if _, err := renderOnce(t, cl, req); !errors.Is(err, client.ErrWorldFailed) {
		t.Fatalf("frame against stalled rank: err = %v, want ErrWorldFailed", err)
	}
	// The watchdog, not the 30s stall (nor any client deadline), must be
	// what fails the frame.
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("wedged frame took %v to fail; watchdog should fire near 300ms", elapsed)
	}

	f, err := renderOnce(t, cl, req)
	if err != nil {
		t.Fatalf("frame after watchdog restart: %v", err)
	}
	if !bytes.Equal(f.Gray, ref) {
		t.Error("frame after watchdog restart differs from fault-free reference")
	}
	if n := srv.WorldRestarts(); n < 1 {
		t.Errorf("WorldRestarts() = %d, want >= 1", n)
	}

	cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
	waitNoLeaks(t, before)
}

// TestChaosSoakWithRetries drives sequential frames through a world
// with probabilistic connection resets while the client retries
// retryable failures. Every frame must eventually land byte-identical
// to the fault-free reference, whatever mix of resets and world
// restarts the seed produces.
func TestChaosSoakWithRetries(t *testing.T) {
	before := runtime.NumGoroutine()

	const p = 4
	srv, cl, _ := chaosServer(t, server.Config{
		P: p, QueueDepth: 16, MaxInFlight: 2,
		DefaultDeadline: time.Minute,
		FrameTimeout:    10 * time.Second,
	}, faultinject.Config{Seed: 7, ResetProb: 0.01})
	cl.SetRetryPolicy(client.RetryPolicy{
		MaxAttempts: 10,
		BaseBackoff: 5 * time.Millisecond,
		MaxBackoff:  100 * time.Millisecond,
	})

	req := server.Request{Dataset: "cube", Method: "bsbr", Width: 48, Height: 48, RotY: 15}
	ref := referenceGray(t, req, p, 0)

	for i := 0; i < 12; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		f, err := cl.Render(ctx, req)
		cancel()
		if err != nil {
			t.Fatalf("frame %d exhausted its retry budget: %v", i, err)
		}
		if !bytes.Equal(f.Gray, ref) {
			t.Fatalf("frame %d differs from fault-free reference", i)
		}
	}
	t.Logf("soak survived %d world restarts", srv.WorldRestarts())

	cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
	waitNoLeaks(t, before)
}
