package server

import (
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
)

// The degraded window between a world failure and its rebuild is tens
// of milliseconds, so the e2e chaos tests cannot reliably observe it
// over HTTP; pin the handler's two states directly instead.
func TestHealthzReportsDegradedWorld(t *testing.T) {
	s := &Server{}
	err := errors.New("rank 1: connection reset")
	s.degraded.Store(true)
	s.lastWorldErr.Store(&err)
	s.restarts.Store(3)

	rec := httptest.NewRecorder()
	s.handleHealthz(rec, nil)
	if rec.Code != 503 {
		t.Errorf("degraded healthz status = %d, want 503", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{"degraded", "rank 1: connection reset", "restarts: 3"} {
		if !strings.Contains(body, want) {
			t.Errorf("degraded healthz body %q missing %q", body, want)
		}
	}

	s.degraded.Store(false)
	rec = httptest.NewRecorder()
	s.handleHealthz(rec, nil)
	if rec.Code != 200 {
		t.Errorf("healthy healthz status = %d, want 200", rec.Code)
	}
}
