package server_test

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"sortlast/internal/client"
	"sortlast/internal/server"
)

func startServer(t *testing.T, cfg server.Config) (*server.Server, *client.Client) {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	srv, err := server.Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl := client.New(srv.Addr().String())
	t.Cleanup(func() {
		cl.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return srv, cl
}

func TestBadRequestsAreTyped(t *testing.T) {
	_, cl := startServer(t, server.Config{P: 2})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	cases := []server.Request{
		{Dataset: "nope", Method: "bsbrc", Width: 32, Height: 32},
		{Dataset: "cube", Method: "nope", Width: 32, Height: 32},
		{Dataset: "cube", Method: "bsbrc", Width: 0, Height: 32},
		{Dataset: "cube", Method: "bsbrc", Width: 32, Height: -3},
	}
	for _, req := range cases {
		if _, err := cl.Render(ctx, req); !errors.Is(err, client.ErrBadRequest) {
			t.Errorf("request %+v: got %v, want ErrBadRequest", req, err)
		}
	}
	// The connection stays usable after typed errors.
	if _, err := cl.Render(ctx, server.Request{Dataset: "cube", Width: 32, Height: 32}); err != nil {
		t.Errorf("valid request after typed errors: %v", err)
	}
}

// A queued request whose deadline expires before dispatch is cancelled
// at the scheduler, never entering the rank pool.
func TestQueuedDeadlineCancels(t *testing.T) {
	_, cl := startServer(t, server.Config{P: 2, MaxInFlight: 1, QueueDepth: 8})
	// The occupying frames must outlast the short deadline below: a
	// dense dataset, shaded (macro-cell skipping removes little work on
	// head, and shading triples the per-sample cost), at high resolution.
	heavy := server.Request{Dataset: "head", Method: "bsbrc", Width: 768, Height: 768, Shaded: true}
	// Warm the dataset cache first: admission builds the plan (including
	// first-use dataset generation) before enqueueing, and the heavy
	// frames must be IN the queue, not in admission, when the
	// short-deadline request arrives.
	{
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		warm := heavy
		warm.Width, warm.Height = 32, 32
		if _, err := cl.Render(ctx, warm); err != nil {
			t.Fatalf("warm-up frame: %v", err)
		}
		cancel()
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ { // one in flight, one queued ahead
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			if _, err := cl.Render(ctx, heavy); err != nil {
				t.Errorf("heavy frame: %v", err)
			}
		}()
	}
	time.Sleep(50 * time.Millisecond) // let the heavy frames occupy the pipeline
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	_, err := cl.Render(ctx, server.Request{
		Dataset: "head", Method: "bsbrc", Width: 32, Height: 32, DeadlineMS: 1,
	})
	if !errors.Is(err, client.ErrDeadline) {
		t.Errorf("short-deadline queued request: got %v, want ErrDeadline", err)
	}
	wg.Wait()
}

// The mpnet resident world serves frames identical to the in-process
// world and tears down cleanly.
func TestServeOverMPNetWorld(t *testing.T) {
	before := runtime.NumGoroutine()
	srv, err := server.Start(server.Config{
		Addr: "127.0.0.1:0", World: "mpnet", P: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := client.New(srv.Addr().String())
	req := server.Request{Dataset: "cube", Method: "bsbr", Width: 48, Height: 48, RotY: 20}
	ref := referenceGray(t, req, 2, 0)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	f, err := cl.Render(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f.Gray, ref) {
		t.Error("mpnet-served frame differs from one-shot harness run")
	}
	cl.Close()
	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
	waitNoLeaks(t, before)
}

func TestUnknownWorldKind(t *testing.T) {
	if _, err := server.Start(server.Config{World: "smoke", Addr: "127.0.0.1:0"}); err == nil {
		t.Fatal("unknown world kind must fail Start")
	}
}
