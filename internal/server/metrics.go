package server

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sortlast/internal/autotune"
	"sortlast/internal/core"
	"sortlast/internal/render"
)

// histogram is a Prometheus-style cumulative histogram: fixed upper
// bounds, one mutex-guarded bump per observation. Bucket bounds are
// shared by reference across instances (they are never mutated).
// Observations may attach a trace ID; the latest per bucket is kept and
// emitted as an OpenMetrics exemplar, so a spike in a latency bucket
// links straight to a /debug/flight trace. Exemplars only appear when
// the scrape negotiated OpenMetrics: the classic text format
// (text/plain; version=0.0.4) allows nothing but an optional timestamp
// after the value, so an exemplar suffix would fail the whole scrape
// for a stock Prometheus client.
type histogram struct {
	buckets []float64 // upper bounds, seconds, ascending; +Inf implicit

	mu        sync.Mutex
	counts    []int64 // len(buckets)+1
	sum       float64
	count     int64
	exemplars []exemplar // len(buckets)+1, zero id = none
}

// exemplar is the last traced observation that landed in one bucket.
type exemplar struct {
	id  uint64 // trace ID, zero = no exemplar
	val float64
}

func newHistogram(buckets []float64) *histogram {
	return &histogram{
		buckets:   buckets,
		counts:    make([]int64, len(buckets)+1),
		exemplars: make([]exemplar, len(buckets)+1),
	}
}

func (h *histogram) observe(s float64) { h.observeTraced(s, 0) }

// observeTraced records an observation carrying a trace ID (zero for
// untraced; only the bucket count moves then).
func (h *histogram) observeTraced(s float64, traceID uint64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.buckets, s)
	h.counts[i]++
	h.sum += s
	h.count++
	if traceID != 0 {
		h.exemplars[i] = exemplar{id: traceID, val: s}
	}
	h.mu.Unlock()
}

// write renders the histogram's sample lines (no HELP/TYPE header, so
// several labeled instances can share one metric family). labels is
// either empty or a `key="value"` list without braces. withExemplars
// appends each bucket's exemplar in OpenMetrics form; pass it only for
// an OpenMetrics-negotiated scrape — the classic text parser rejects
// any trailing annotation, failing the entire scrape.
func (h *histogram) write(w io.Writer, name, labels string, withExemplars bool) {
	h.mu.Lock()
	counts := append([]int64(nil), h.counts...)
	exemplars := append([]exemplar(nil), h.exemplars...)
	sum, count := h.sum, h.count
	h.mu.Unlock()
	sep := ""
	if labels != "" {
		sep = ","
	}
	// exemplarSuffix renders bucket i's exemplar appended to the sample
	// line ("... 12 # {trace_id="ab..."} 0.021"), empty on a classic
	// scrape or for a bucket that never saw a traced observation.
	exemplarSuffix := func(i int) string {
		if !withExemplars || exemplars[i].id == 0 {
			return ""
		}
		return fmt.Sprintf(" # {trace_id=\"%016x\"} %g", exemplars[i].id, exemplars[i].val)
	}
	cum := int64(0)
	for i, ub := range h.buckets {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d%s\n", name, labels, sep, trimFloat(ub), cum, exemplarSuffix(i))
	}
	cum += counts[len(h.buckets)]
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d%s\n", name, labels, sep, cum, exemplarSuffix(len(h.buckets)))
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n", name, sum)
		fmt.Fprintf(w, "%s_count %d\n", name, count)
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, sum)
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, count)
	}
}

// phases of a frame with per-phase latency histograms, in export order.
var phaseNames = []string{"render", "composite", "gather"}

// errorCodes pre-registers the typed reply codes, in export order.
var errorCodes = []string{CodeOverloaded, CodeBadRequest, CodeDeadline, CodeShutdown, CodeInternal, CodeWorldFailed}

// qualityNames pre-registers the delivered-quality labels, in export
// order (highest fidelity first).
var qualityNames = []string{QualityFull, QualityApprox, QualityPreview}

// degradePaths pre-registers every (degrade path, landed-on contract)
// pair that can occur: admission walks the ladder one rung at a time,
// the watchdog only ever demotes to approx.
var degradePaths = []struct{ path, to string }{
	{"admission", QualityApprox},
	{"admission", QualityPreview},
	{"watchdog", QualityApprox},
}

// metrics is renderd's observability surface, exposed as Prometheus
// text format on the HTTP sidecar. Counters are lock-free atomics keyed
// by pre-registered label values (methods from the core registry, the
// protocol's error codes), so the hot path never allocates or locks; the
// latency histograms take a mutex only to bump one bucket.
type metrics struct {
	frames        map[string]*atomic.Int64 // completed frames per method
	selected      map[string]*atomic.Int64 // auto-selected frames per chosen method
	errors        map[string]*atomic.Int64 // rejected/failed requests per code
	quality       map[string]*atomic.Int64 // served frames per delivered quality
	degrades      map[string]*atomic.Int64 // degrade events per "path|to" pair
	inflight      atomic.Int64             // frames dispatched, not yet replied
	wire          atomic.Int64             // compositing bytes received, all ranks
	worldRestarts atomic.Int64             // rank worlds torn down and rebuilt

	queueDepth func() int // sampled at scrape time

	// flightLen samples the flight recorder's retained-entry count at
	// scrape time; nil when the recorder is disabled.
	flightLen func() int

	// renderStats samples the server's cumulative ray-caster counters
	// (rays, samples, macro-cell skips) at scrape time; nil when the
	// server exposes none.
	renderStats func() render.StatsSnapshot

	latency *histogram            // admission-to-reply, whole request
	phases  map[string]*histogram // per-phase (slowest rank), from spans
}

// latencyBuckets covers whole-request latency from cache-hit-fast to
// deadline-slow.
var latencyBuckets = []float64{.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// phaseBuckets resolve per-phase wall times. The fast-kernel work (PR 6)
// pulled typical frames to ~20ms and phases well under 10ms, which the
// old bottom bucket boundaries (1ms/2.5ms/5ms/10ms) lumped into two
// bins; the sub-10ms ladder keeps render/composite/gather distributions
// visible, while the upper decades still catch degraded worlds.
var phaseBuckets = []float64{.0005, .001, .002, .004, .006, .008, .01, .015, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

func newMetrics(queueDepth func() int) *metrics {
	m := &metrics{
		frames:     make(map[string]*atomic.Int64),
		selected:   make(map[string]*atomic.Int64),
		errors:     make(map[string]*atomic.Int64),
		quality:    make(map[string]*atomic.Int64),
		degrades:   make(map[string]*atomic.Int64),
		queueDepth: queueDepth,
		latency:    newHistogram(latencyBuckets),
		phases:     make(map[string]*histogram),
	}
	for _, name := range core.Names() {
		m.frames[name] = new(atomic.Int64)
	}
	for _, name := range autotune.Candidates() {
		m.selected[name] = new(atomic.Int64)
	}
	for _, code := range errorCodes {
		m.errors[code] = new(atomic.Int64)
	}
	for _, p := range phaseNames {
		m.phases[p] = newHistogram(phaseBuckets)
	}
	for _, q := range qualityNames {
		m.quality[q] = new(atomic.Int64)
	}
	for _, d := range degradePaths {
		m.degrades[d.path+"|"+d.to] = new(atomic.Int64)
	}
	return m
}

// qualityDelivered counts one served frame under its delivered quality
// contract.
func (m *metrics) qualityDelivered(q string) {
	if c := m.quality[q]; c != nil {
		c.Add(1)
	}
}

// degraded counts n degrade decisions: path is where the ladder was
// walked ("admission" under queue saturation, "watchdog" on a slow
// frame's first trip), to is the contract landed on.
func (m *metrics) degraded(path, to string, n int64) {
	if c := m.degrades[path+"|"+to]; c != nil {
		c.Add(n)
	}
}

// frameDone records one served frame; traceID (zero if untraced) links
// the latency observation to its trace as an exemplar.
func (m *metrics) frameDone(method string, latency time.Duration, traceID uint64) {
	if c := m.frames[method]; c != nil {
		c.Add(1)
	}
	m.latency.observeTraced(latency.Seconds(), traceID)
}

// methodSelected counts one Method "auto" frame resolved to method.
func (m *metrics) methodSelected(method string) {
	if c := m.selected[method]; c != nil {
		c.Add(1)
	}
}

// phaseDone records one phase's completion time (the slowest rank's
// span total for that phase), with an optional exemplar trace ID.
func (m *metrics) phaseDone(phase string, d time.Duration, traceID uint64) {
	if h := m.phases[phase]; h != nil {
		h.observeTraced(d.Seconds(), traceID)
	}
}

func (m *metrics) requestFailed(code string) {
	if c := m.errors[code]; c != nil {
		c.Add(1)
	}
}

// ContentTypeProm and ContentTypeOpenMetrics are the Content-Type
// values of the two exposition formats /metrics can serve.
const (
	ContentTypeProm        = "text/plain; version=0.0.4"
	ContentTypeOpenMetrics = "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

// NegotiatesOpenMetrics reports whether an Accept header asks for the
// OpenMetrics text format. Only OpenMetrics scrapes get exemplars: the
// classic text parser allows nothing after the sample value but an
// optional timestamp, so exemplar suffixes would fail the whole scrape.
// A q=0 weight explicitly refuses the type.
func NegotiatesOpenMetrics(accept string) bool {
	for _, clause := range strings.Split(accept, ",") {
		mediaType, params, _ := strings.Cut(strings.TrimSpace(clause), ";")
		if strings.TrimSpace(mediaType) != "application/openmetrics-text" {
			continue
		}
		for _, p := range strings.Split(params, ";") {
			if k, v, ok := strings.Cut(strings.TrimSpace(p), "="); ok &&
				strings.TrimSpace(k) == "q" && strings.TrimSpace(v) == "0" {
				return false
			}
		}
		return true
	}
	return false
}

// WriteProm renders the metrics in the classic Prometheus text
// exposition format — no exemplars, byte-identical whether or not
// requests carried trace IDs.
func (m *metrics) WriteProm(w io.Writer) { m.write(w, false) }

// WriteOpenMetrics renders the metrics as OpenMetrics text: the same
// families plus per-bucket trace-ID exemplars and the mandatory # EOF
// trailer.
func (m *metrics) WriteOpenMetrics(w io.Writer) {
	m.write(w, true)
	fmt.Fprintf(w, "# EOF\n")
}

func (m *metrics) write(w io.Writer, exemplars bool) {
	fmt.Fprintf(w, "# HELP renderd_frames_total Frames served, by compositing method.\n")
	fmt.Fprintf(w, "# TYPE renderd_frames_total counter\n")
	for _, name := range core.Names() {
		fmt.Fprintf(w, "renderd_frames_total{method=%q} %d\n", name, m.frames[name].Load())
	}
	fmt.Fprintf(w, "# HELP renderd_method_selected_total Method-auto frames, by the method the selector chose.\n")
	fmt.Fprintf(w, "# TYPE renderd_method_selected_total counter\n")
	for _, name := range autotune.Candidates() {
		fmt.Fprintf(w, "renderd_method_selected_total{method=%q} %d\n", name, m.selected[name].Load())
	}
	fmt.Fprintf(w, "# HELP renderd_request_errors_total Requests answered with a typed error, by code.\n")
	fmt.Fprintf(w, "# TYPE renderd_request_errors_total counter\n")
	for _, code := range errorCodes {
		fmt.Fprintf(w, "renderd_request_errors_total{code=%q} %d\n", code, m.errors[code].Load())
	}
	fmt.Fprintf(w, "# HELP renderd_quality_delivered_total Frames served, by delivered quality contract.\n")
	fmt.Fprintf(w, "# TYPE renderd_quality_delivered_total counter\n")
	for _, q := range qualityNames {
		fmt.Fprintf(w, "renderd_quality_delivered_total{quality=%q} %d\n", q, m.quality[q].Load())
	}
	fmt.Fprintf(w, "# HELP renderd_degraded_total Requests stepped below their asked quality contract, by degrade path and the contract landed on.\n")
	fmt.Fprintf(w, "# TYPE renderd_degraded_total counter\n")
	for _, d := range degradePaths {
		fmt.Fprintf(w, "renderd_degraded_total{path=%q,to=%q} %d\n", d.path, d.to, m.degrades[d.path+"|"+d.to].Load())
	}
	fmt.Fprintf(w, "# HELP renderd_world_restarts_total Rank worlds torn down and rebuilt after a pipeline failure or watchdog wedge.\n")
	fmt.Fprintf(w, "# TYPE renderd_world_restarts_total counter\n")
	fmt.Fprintf(w, "renderd_world_restarts_total %d\n", m.worldRestarts.Load())
	fmt.Fprintf(w, "# HELP renderd_queue_depth Requests admitted and waiting for dispatch.\n")
	fmt.Fprintf(w, "# TYPE renderd_queue_depth gauge\n")
	fmt.Fprintf(w, "renderd_queue_depth %d\n", m.queueDepth())
	fmt.Fprintf(w, "# HELP renderd_inflight_frames Frames dispatched into the rank pool and not yet replied.\n")
	fmt.Fprintf(w, "# TYPE renderd_inflight_frames gauge\n")
	fmt.Fprintf(w, "renderd_inflight_frames %d\n", m.inflight.Load())
	fmt.Fprintf(w, "# HELP renderd_wire_bytes_total Compositing payload bytes received across all ranks (mp message log).\n")
	fmt.Fprintf(w, "# TYPE renderd_wire_bytes_total counter\n")
	fmt.Fprintf(w, "renderd_wire_bytes_total %d\n", m.wire.Load())
	if m.flightLen != nil {
		fmt.Fprintf(w, "# HELP renderd_flight_entries Frames retained by the flight recorder (tail-sampled: errors, hedges, >= p99).\n")
		fmt.Fprintf(w, "# TYPE renderd_flight_entries gauge\n")
		fmt.Fprintf(w, "renderd_flight_entries %d\n", m.flightLen())
	}

	if m.renderStats != nil {
		rs := m.renderStats()
		fmt.Fprintf(w, "# HELP renderd_render_rays_total Rays cast whose sample interval intersected a rank's box.\n")
		fmt.Fprintf(w, "# TYPE renderd_render_rays_total counter\n")
		fmt.Fprintf(w, "renderd_render_rays_total %d\n", rs.Rays)
		fmt.Fprintf(w, "# HELP renderd_render_samples_total Ray sample points, by whether macro-cell empty-space skipping removed them.\n")
		fmt.Fprintf(w, "# TYPE renderd_render_samples_total counter\n")
		fmt.Fprintf(w, "renderd_render_samples_total{outcome=\"evaluated\"} %d\n", rs.Samples)
		fmt.Fprintf(w, "renderd_render_samples_total{outcome=\"skipped\"} %d\n", rs.SamplesSkipped)
		fmt.Fprintf(w, "# HELP renderd_render_macrocells_total Macro cells stepped over by the ray caster's DDA, by classification outcome.\n")
		fmt.Fprintf(w, "# TYPE renderd_render_macrocells_total counter\n")
		fmt.Fprintf(w, "renderd_render_macrocells_total{outcome=\"evaluated\"} %d\n", rs.CellsVisited-rs.CellsSkipped)
		fmt.Fprintf(w, "renderd_render_macrocells_total{outcome=\"skipped\"} %d\n", rs.CellsSkipped)
	}

	fmt.Fprintf(w, "# HELP renderd_frame_latency_seconds Admission-to-reply latency of served frames.\n")
	fmt.Fprintf(w, "# TYPE renderd_frame_latency_seconds histogram\n")
	m.latency.write(w, "renderd_frame_latency_seconds", "", exemplars)

	fmt.Fprintf(w, "# HELP renderd_phase_latency_seconds Slowest-rank wall time per frame phase, from trace spans.\n")
	fmt.Fprintf(w, "# TYPE renderd_phase_latency_seconds histogram\n")
	for _, p := range phaseNames {
		m.phases[p].write(w, "renderd_phase_latency_seconds", fmt.Sprintf("phase=%q", p), exemplars)
	}
}

func trimFloat(v float64) string { return fmt.Sprintf("%g", v) }
