package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sortlast/internal/core"
)

// metrics is renderd's observability surface, exposed as Prometheus
// text format on the HTTP sidecar. Counters are lock-free atomics keyed
// by pre-registered label values (methods from the core registry, the
// protocol's error codes), so the hot path never allocates or locks; the
// latency histogram takes a mutex only to bump one bucket.
type metrics struct {
	frames   map[string]*atomic.Int64 // completed frames per method
	errors   map[string]*atomic.Int64 // rejected/failed requests per code
	inflight atomic.Int64             // frames dispatched, not yet replied
	wire     atomic.Int64             // compositing bytes received, all ranks

	queueDepth func() int // sampled at scrape time

	mu      sync.Mutex
	buckets []float64 // upper bounds, seconds, ascending; +Inf implicit
	counts  []int64   // len(buckets)+1
	sum     float64
	count   int64
}

func newMetrics(queueDepth func() int) *metrics {
	m := &metrics{
		frames:     make(map[string]*atomic.Int64),
		errors:     make(map[string]*atomic.Int64),
		queueDepth: queueDepth,
		buckets:    []float64{.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10},
	}
	m.counts = make([]int64, len(m.buckets)+1)
	for _, name := range core.Names() {
		m.frames[name] = new(atomic.Int64)
	}
	for _, code := range []string{CodeOverloaded, CodeBadRequest, CodeDeadline, CodeShutdown, CodeInternal} {
		m.errors[code] = new(atomic.Int64)
	}
	return m
}

func (m *metrics) frameDone(method string, latency time.Duration) {
	if c := m.frames[method]; c != nil {
		c.Add(1)
	}
	s := latency.Seconds()
	m.mu.Lock()
	i := sort.SearchFloat64s(m.buckets, s)
	m.counts[i]++
	m.sum += s
	m.count++
	m.mu.Unlock()
}

func (m *metrics) requestFailed(code string) {
	if c := m.errors[code]; c != nil {
		c.Add(1)
	}
}

// WriteProm renders the metrics in Prometheus text exposition format.
func (m *metrics) WriteProm(w io.Writer) {
	fmt.Fprintf(w, "# HELP renderd_frames_total Frames served, by compositing method.\n")
	fmt.Fprintf(w, "# TYPE renderd_frames_total counter\n")
	for _, name := range core.Names() {
		fmt.Fprintf(w, "renderd_frames_total{method=%q} %d\n", name, m.frames[name].Load())
	}
	fmt.Fprintf(w, "# HELP renderd_request_errors_total Requests answered with a typed error, by code.\n")
	fmt.Fprintf(w, "# TYPE renderd_request_errors_total counter\n")
	for _, code := range []string{CodeOverloaded, CodeBadRequest, CodeDeadline, CodeShutdown, CodeInternal} {
		fmt.Fprintf(w, "renderd_request_errors_total{code=%q} %d\n", code, m.errors[code].Load())
	}
	fmt.Fprintf(w, "# HELP renderd_queue_depth Requests admitted and waiting for dispatch.\n")
	fmt.Fprintf(w, "# TYPE renderd_queue_depth gauge\n")
	fmt.Fprintf(w, "renderd_queue_depth %d\n", m.queueDepth())
	fmt.Fprintf(w, "# HELP renderd_inflight_frames Frames dispatched into the rank pool and not yet replied.\n")
	fmt.Fprintf(w, "# TYPE renderd_inflight_frames gauge\n")
	fmt.Fprintf(w, "renderd_inflight_frames %d\n", m.inflight.Load())
	fmt.Fprintf(w, "# HELP renderd_wire_bytes_total Compositing payload bytes received across all ranks (mp message log).\n")
	fmt.Fprintf(w, "# TYPE renderd_wire_bytes_total counter\n")
	fmt.Fprintf(w, "renderd_wire_bytes_total %d\n", m.wire.Load())

	m.mu.Lock()
	counts := append([]int64(nil), m.counts...)
	sum, count := m.sum, m.count
	m.mu.Unlock()
	fmt.Fprintf(w, "# HELP renderd_frame_latency_seconds Admission-to-reply latency of served frames.\n")
	fmt.Fprintf(w, "# TYPE renderd_frame_latency_seconds histogram\n")
	cum := int64(0)
	for i, ub := range m.buckets {
		cum += counts[i]
		fmt.Fprintf(w, "renderd_frame_latency_seconds_bucket{le=%q} %d\n", trimFloat(ub), cum)
	}
	cum += counts[len(m.buckets)]
	fmt.Fprintf(w, "renderd_frame_latency_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "renderd_frame_latency_seconds_sum %g\n", sum)
	fmt.Fprintf(w, "renderd_frame_latency_seconds_count %d\n", count)
}

func trimFloat(v float64) string { return fmt.Sprintf("%g", v) }
