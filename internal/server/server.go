// Package server implements renderd, the persistent frame-serving tier
// of the sort-last system: a resident rank pool (in-process mp world or
// TCP mpnet world) that keeps volumes, transfer functions and the
// per-rank compositing scratch warm across requests and serves frames
// over a length-prefixed TCP protocol.
//
// The serving skeleton is: connection handlers validate and admit
// requests into a bounded queue (admission control — a full queue is a
// typed "overloaded" reply, never unbounded buffering); a scheduler
// dispatches queued jobs into the rank pool, bounded by a MaxInFlight
// token so up to K frames pipeline through the two per-rank stages
// (render, then composite+gather); rank 0's composite stage delivers the
// final image back to the waiting handler. Per-request deadlines cancel
// queued work at dispatch time — once a frame enters the rank pool it
// runs to completion, because cancelling half a binary-swap would
// desynchronize the world. An HTTP sidecar exposes /healthz and
// Prometheus /metrics.
//
// Frames dispatched back to back stay correctly paired without barriers:
// every rank processes frames in the same dispatch order, and the mp
// layer guarantees FIFO delivery per (source, tag) channel — the same
// property consecutive collectives rely on.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"sortlast/internal/autotune"
	"sortlast/internal/faultinject"
	"sortlast/internal/frame"
	"sortlast/internal/harness"
	"sortlast/internal/mp"
	"sortlast/internal/render"
	"sortlast/internal/trace"
)

// Config describes one renderd instance.
type Config struct {
	// Addr is the frame-protocol listen address. Default 127.0.0.1:7171.
	Addr string
	// HTTPAddr is the observability sidecar listen address (/healthz,
	// /metrics). Empty disables the sidecar.
	HTTPAddr string

	// World picks the resident rank pool: "mp" (in-process, default) or
	// "mpnet" (one TCP node per rank; WorldAddrs or loopback ephemeral).
	World      string
	WorldAddrs []string
	// P is the number of resident ranks. Default 4.
	P int

	// QueueDepth bounds the admission queue; a request arriving with the
	// queue full is rejected with CodeOverloaded. Default 64.
	QueueDepth int
	// MaxInFlight bounds how many frames may be in the render→composite
	// pipeline at once. Default 2 (one rendering while one composites).
	MaxInFlight int
	// DefaultDeadline applies to requests that do not set DeadlineMS.
	// Default 30s.
	DefaultDeadline time.Duration
	// Workers bounds each rank's ray-casting worker pool (0: GOMAXPROCS).
	// Rendering is bit-identical for any value.
	Workers int
	// RecvTimeout is the rank pool's receive timeout (0: the mp default).
	RecvTimeout time.Duration
	// FrameTimeout is the per-frame watchdog deadline: a dispatched frame
	// that has not replied within it declares the rank world wedged, which
	// fails every in-flight job with CodeWorldFailed and rebuilds the
	// world. Default 60s.
	FrameTimeout time.Duration

	// DegradeDisabled makes the server ignore Request.DegradeOK: a
	// saturated queue rejects with CodeOverloaded and a slow frame fails
	// the world, exactly as if the caller had not opted in. Operator
	// knob for pinning full fidelity fleet-wide (renderd -no-degrade)
	// without changing clients.
	DegradeDisabled bool

	// Chaos, when set, wraps every rank's transport with fault injection
	// (drops, delays, resets, rank crashes, stalls) for chaos testing;
	// see internal/faultinject. Nil (the default) injects nothing.
	Chaos *faultinject.Injector

	// Profile supplies calibrated cost-model constants for Method "auto"
	// requests (see cmd/calibrate). It must cover the World transport.
	// Nil falls back to the paper's SP2 preset.
	Profile *autotune.Profile

	// DisableTracing turns off the per-frame span recorder. By default
	// every frame records per-rank spans (a few hundred appends per
	// frame), feeding the /debug/trace/last endpoint, the per-phase
	// latency histograms on /metrics, the flight recorder, and the span
	// trees returned to sampled requests.
	DisableTracing bool

	// FlightSize bounds the frame flight recorder: the last N
	// interesting frames (errors, hedged, at-or-over-p99 latency) kept
	// with their full span trees, served at /debug/flight. Zero means
	// trace.DefaultFlightSize; tracing disabled disables it too.
	FlightSize int
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:7171"
	}
	if c.P == 0 {
		c.P = 4
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 2
	}
	if c.DefaultDeadline == 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	return c
}

// job is one admitted request moving through the pipeline.
type job struct {
	plan     *harness.Plan
	method   string
	admitted time.Time
	deadline time.Time

	// quality is the contract the job was admitted at (what the plan
	// renders); requested is what the caller asked for — they differ
	// when admission degraded the request down the ladder. demote is
	// non-nil for DegradeOK jobs: the frame watchdog flips it to switch
	// the in-flight render to the approx cutoff instead of failing the
	// world (the same flag rides in the plan's render options).
	quality   string
	requested string
	demote    *atomic.Bool

	// id is the distributed trace identity (from the request's trace
	// context, or minted locally so flight entries and exemplars always
	// have a key); sampled means the reply must carry the span tree.
	id      trace.ID
	sampled bool

	// rec is this frame's span recorder (nil when tracing is disabled).
	// Pipelined frames overlap in the rank pool, so the recorder is
	// per-job: each frame's spans land on its own set of rank tracks.
	rec *trace.Recorder

	dispatched time.Time    // set by the scheduler
	renderNS   atomic.Int64 // rank 0 render wall
	wireBytes  atomic.Int64 // composite bytes received, all ranks

	once sync.Once
	done chan reply // buffered; exactly one reply per admitted job
}

type reply struct {
	img  *frame.Image
	code string // "" on success
	err  error
}

func (j *job) finish(r reply) { j.once.Do(func() { j.done <- r }) }

// delivered resolves what the job actually produced: the admitted
// contract, demoted to approx when the watchdog tripped mid-render, and
// the matching worst-case error bound. A demoted frame's bound carries
// only the cutoff residual — its encode was never thinned.
func (j *job) delivered() (quality string, bound float64) {
	quality, bound = j.quality, j.plan.ErrorBound()
	if j.demote != nil && j.demote.Load() &&
		harness.QualityRank(quality) > harness.QualityRank(QualityApprox) {
		quality = QualityApprox
		bound = harness.ApproxErrorBound(j.plan.Cfg.P, render.ApproxCutoff, 0)
	}
	return quality, bound
}

// rendered is the handoff between a rank's render and composite stages.
type rendered struct {
	job *job
	img *frame.Image
}

// Server is a running renderd instance.
type Server struct {
	cfg Config
	met *metrics

	// sel is the shared autotune selector serving Method "auto"
	// requests: one per server so EWMA corrections and frame-derived
	// features accumulate across requests and connections.
	sel *autotune.Selector

	queue  chan *job
	tokens chan struct{} // in-flight bound
	stop   chan struct{}

	// cur is the live world incarnation (nil while the supervisor is
	// rebuilding after a failure). The supervisor replaces it; Shutdown
	// takes the final one to drain.
	curMu sync.Mutex
	cur   *worldRun

	// degraded is set while the rank world is down and being rebuilt;
	// /healthz reports 503 until a fresh world is serving again.
	degraded     atomic.Bool
	restarts     atomic.Int64
	lastWorldErr atomic.Pointer[error]

	// renderStats accumulates the ray caster's work counters across all
	// frames and ranks this server has rendered; /metrics exposes them.
	renderStats render.Stats

	ln      net.Listener
	httpLn  net.Listener
	httpSrv *http.Server

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	supDone chan struct{}  // supervisor exited
	connWG  sync.WaitGroup // connection handlers + accept loop

	// lastTrace is the most recently completed frame's span recorder,
	// served by /debug/trace/last.
	lastTrace atomic.Pointer[trace.Recorder]

	// flight retains the span trees of the last N interesting frames
	// (tail-sampled), served at /debug/flight. Nil when tracing is
	// disabled.
	flight *trace.Flight

	stopOnce sync.Once
}

// WorldRestarts reports how many times the resident rank world has been
// torn down and rebuilt after a failure.
func (s *Server) WorldRestarts() int64 { return s.restarts.Load() }

// Degraded reports whether the rank world is currently down and being
// rebuilt (requests queue until it returns).
func (s *Server) Degraded() bool { return s.degraded.Load() }

// Stats is a point-in-time snapshot of one server's serving state, for
// layers that embed renderd instances (the fleet gateway's per-replica
// gauges) rather than scraping /metrics over HTTP.
type Stats struct {
	// QueueLen is the number of admitted requests waiting for dispatch.
	QueueLen int
	// Inflight is the number of frames inside the render→composite
	// pipeline.
	Inflight int64
	// WorldRestarts counts rank worlds torn down and rebuilt.
	WorldRestarts int64
	// Degraded reports the rank world is down and being rebuilt.
	Degraded bool
}

// Stats returns a snapshot of the server's serving state.
func (s *Server) Stats() Stats {
	return Stats{
		QueueLen:      len(s.queue),
		Inflight:      s.met.inflight.Load(),
		WorldRestarts: s.restarts.Load(),
		Degraded:      s.degraded.Load(),
	}
}

// Start builds the resident world, spawns the rank pipelines and begins
// serving on cfg.Addr (and cfg.HTTPAddr when set).
func Start(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.MaxInFlight < 1 || cfg.QueueDepth < 1 {
		return nil, fmt.Errorf("server: MaxInFlight and QueueDepth must be positive")
	}
	prof := cfg.Profile
	if prof == nil {
		prof = autotune.DefaultProfile()
	}
	transport := cfg.World
	if transport == "" {
		transport = autotune.TransportMP
	}
	params, err := prof.Params(transport)
	if err != nil {
		return nil, err
	}
	s := &Server{
		sel:     autotune.NewSelector(params, transport),
		cfg:     cfg,
		queue:   make(chan *job, cfg.QueueDepth),
		tokens:  make(chan struct{}, cfg.MaxInFlight),
		stop:    make(chan struct{}),
		conns:   make(map[net.Conn]struct{}),
		supDone: make(chan struct{}),
	}
	s.met = newMetrics(func() int { return len(s.queue) })
	s.met.renderStats = s.renderStats.Snapshot
	if !cfg.DisableTracing {
		s.flight = trace.NewFlight(cfg.FlightSize)
		s.met.flightLen = s.flight.Len
	}

	// The first world builds synchronously so configuration errors
	// (unknown world kind, bad address list) fail Start; later failures
	// are the supervisor's to absorb.
	run, err := s.newWorldRun()
	if err != nil {
		return nil, err
	}
	s.setCur(run)
	go s.supervise(run)

	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		s.teardownEarly()
		return nil, err
	}
	s.ln = ln
	if cfg.HTTPAddr != "" {
		httpLn, err := net.Listen("tcp", cfg.HTTPAddr)
		if err != nil {
			ln.Close()
			s.teardownEarly()
			return nil, err
		}
		s.httpLn = httpLn
		mux := http.NewServeMux()
		mux.HandleFunc("/healthz", s.handleHealthz)
		mux.HandleFunc("/metrics", s.handleMetrics)
		mux.HandleFunc("/debug/trace/last", s.handleTraceLast)
		mux.Handle("/debug/flight", s.flight) // nil-safe: answers 404 when disabled
		mux.HandleFunc("/debug/autotune", s.handleAutotune)
		// Explicit pprof routes: the sidecar uses its own mux, so the
		// net/http/pprof init() registrations on DefaultServeMux don't
		// apply.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		s.httpSrv = &http.Server{Handler: mux}
		go s.httpSrv.Serve(httpLn)
	}
	s.connWG.Add(1)
	go s.acceptLoop()
	return s, nil
}

// teardownEarly unwinds a half-started server (listen failed).
func (s *Server) teardownEarly() {
	close(s.stop)
	<-s.supDone
	if run := s.takeCur(); run != nil {
		run.res.forceStop()
		run.pipeWG.Wait()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		run.res.shutdown(ctx)
	}
}

// Addr returns the frame-protocol listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// HTTPAddr returns the sidecar listen address, nil when disabled.
func (s *Server) HTTPAddr() net.Addr {
	if s.httpLn == nil {
		return nil
	}
	return s.httpLn.Addr()
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.degraded.Load() {
		msg := "degraded: rank world down, rebuilding"
		if p := s.lastWorldErr.Load(); p != nil {
			msg = fmt.Sprintf("%s: %v", msg, *p)
		}
		http.Error(w, fmt.Sprintf("%s (restarts: %d)", msg, s.restarts.Load()),
			http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if NegotiatesOpenMetrics(r.Header.Get("Accept")) {
		w.Header().Set("Content-Type", ContentTypeOpenMetrics)
		s.met.WriteOpenMetrics(w)
		return
	}
	w.Header().Set("Content-Type", ContentTypeProm)
	s.met.WriteProm(w)
}

// handleAutotune serves the autotune selector's introspection snapshot:
// the cost-model parameters, the standing feature vector, the latest
// full prediction ranking, the per-method EWMA correction factors and
// selection counts.
func (s *Server) handleAutotune(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.sel.Snapshot())
}

// handleTraceLast serves the most recently completed frame's span trace
// as Chrome/Perfetto trace-event JSON (load in ui.perfetto.dev or
// chrome://tracing).
func (s *Server) handleTraceLast(w http.ResponseWriter, _ *http.Request) {
	rec := s.lastTrace.Load()
	if rec == nil {
		http.Error(w, "no frame traced yet", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	trace.WritePerfetto(w, rec)
}

// ---- pipeline ----

func (s *Server) failQueued() {
	for {
		select {
		case j := <-s.queue:
			s.met.requestFailed(CodeShutdown)
			j.finish(reply{code: CodeShutdown, err: errors.New("server shutting down")})
		default:
			return
		}
	}
}

func (s *Server) renderLoop(me int, run *worldRun, in <-chan *job, out chan<- rendered) {
	defer run.pipeWG.Done()
	defer close(out)
	for j := range in {
		start := time.Now()
		img := j.plan.RenderRankObserved(me, j.rec.Rank(me), &s.renderStats)
		if me == 0 {
			j.renderNS.Store(int64(time.Since(start)))
		}
		out <- rendered{job: j, img: img}
	}
}

func (s *Server) compositeLoop(me int, run *worldRun, c mp.Comm, in <-chan rendered) {
	defer run.pipeWG.Done()
	for rj := range in {
		j := rj.job
		var img *frame.Image
		// The comm is long-lived but jobs come and go, so the tracer is
		// attached per frame; the nil store afterwards keeps a finished
		// job's recorder from collecting a later frame's spans.
		c.SetTracer(j.rec.Rank(me))
		cstart := time.Now()
		res, err := j.plan.CompositeRank(c, rj.img)
		compositeWall := time.Since(cstart)
		if err == nil {
			img, err = j.plan.GatherRank(c, res)
		}
		c.SetTracer(nil)
		// Bytes-on-wire for this frame, from the rank's message log; the
		// log is reset per frame so a long-lived comm does not accumulate
		// entries without bound.
		recv := int64(c.Log().BytesReceived(""))
		c.Log().Reset()
		s.met.wire.Add(recv)
		j.wireBytes.Add(recv)

		if err != nil {
			// Any pipeline error kills this world incarnation: half a
			// binary swap cannot be resumed, so the supervisor tears the
			// world down and rebuilds it. The job is answered with the
			// retryable code; teardown answers the other in-flight jobs.
			run.fail(s, fmt.Errorf("rank %d: %w", me, err))
			if me == 0 && run.untrack(j) {
				<-s.tokens
				s.met.inflight.Add(-1)
				s.met.requestFailed(CodeWorldFailed)
				j.finish(reply{code: CodeWorldFailed, err: fmt.Errorf("rank world failed: %w", err)})
			}
			return
		}
		if me == 0 && run.untrack(j) {
			<-s.tokens
			s.met.inflight.Add(-1)
			if j.rec != nil {
				s.met.phaseDone("render", j.rec.MaxTotal(trace.SpanRender), uint64(j.id))
				s.met.phaseDone("composite", j.rec.MaxTotal(trace.SpanCompositing), uint64(j.id))
				s.met.phaseDone("gather", j.rec.MaxTotal(trace.SpanGather), uint64(j.id))
				s.lastTrace.Store(j.rec)
			}
			j.finish(reply{img: img})
			if j.plan.Choice != nil {
				// Feedback after the reply is on its way, so it never
				// adds to request latency: the measured composite wall
				// (slowest rank when traced, rank 0 otherwise — binary
				// swap synchronizes, so rank 0's wall includes waits)
				// corrects the chosen method's EWMA factor, and the
				// gathered frame's exact sparsity becomes the feature
				// vector the next "auto" request predicts from.
				measured := compositeWall
				if j.rec != nil {
					measured = j.rec.MaxTotal(trace.SpanCompositing)
				}
				j.plan.Selector.Observe(j.plan.Choice.Method, j.plan.Choice.Features, measured)
				j.plan.Selector.Seed(autotune.ScanFeatures(img, j.plan.Cfg.P))
			}
		}
	}
}

// ---- admission and connections ----

// submit validates, admits and waits for one request; it always returns
// a response (the typed-error path never hangs the caller). A degraded
// server (rank world down, rebuilding) still admits: the job waits in
// the queue until the supervisor brings a fresh world up, bounded by the
// queue depth and the request deadline.
func (s *Server) submit(req Request) (*Response, *frame.Image) {
	if err := ValidateMethod(req.Method); err != nil {
		s.met.requestFailed(CodeBadRequest)
		return &Response{Code: CodeBadRequest, Error: err.Error()}, nil
	}
	requested, err := NormalizeQuality(req.Quality)
	if err != nil {
		s.met.requestFailed(CodeBadRequest)
		return &Response{Code: CodeBadRequest, Error: err.Error()}, nil
	}
	if s.cfg.DegradeDisabled {
		// req is a copy, so clearing the flag here blinds every
		// downstream consumer (watchdog demotion in buildJob, the
		// admission ladder below) in one place.
		req.DegradeOK = false
	}
	deadline := s.cfg.DefaultDeadline
	if req.DeadlineMS > 0 {
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	deadlineAt := time.Now().Add(deadline)

	j, resp := s.buildJob(req, requested, requested, deadlineAt)
	if resp != nil {
		return resp, nil
	}

	// The closed check and the enqueue are one critical section: Shutdown
	// sets closed under the same lock before the scheduler drains the
	// queue, so a job admitted here is guaranteed to be seen (and thus
	// answered) by the scheduler — no request can fall between admission
	// and drain and hang its handler.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.met.requestFailed(CodeShutdown)
		s.observeFlight(j, CodeShutdown, jobDetail(j, req))
		return &Response{Code: CodeShutdown, Error: "server shutting down"}, nil
	}
	select {
	case s.queue <- j:
		s.mu.Unlock()
	default:
		s.mu.Unlock()
		if !req.DegradeOK {
			// Admission control: reject now rather than queue unboundedly.
			s.met.requestFailed(CodeOverloaded)
			s.observeFlight(j, CodeOverloaded, jobDetail(j, req))
			return &Response{Code: CodeOverloaded,
				Error: fmt.Sprintf("admission queue full (%d deep)", cap(s.queue))}, nil
		}
		// The request opted into degraded delivery: walk the quality
		// ladder down instead of bouncing.
		if j, resp = s.admitDegraded(req, requested, deadlineAt); resp != nil {
			return resp, nil
		}
	}

	rep := <-j.done
	total := time.Since(j.admitted)
	detail := jobDetail(j, req)
	if rep.code != "" {
		s.observeFlight(j, rep.code, detail)
		return &Response{
			Code: rep.code, Error: rep.err.Error(),
			Stats: FrameStats{TraceID: j.id.String(), TotalMS: float64(total) / 1e6},
		}, nil
	}
	delivered, bound := j.delivered()
	degraded := harness.QualityRank(delivered) < harness.QualityRank(j.requested)
	s.met.frameDone(j.method, total, uint64(j.id))
	s.met.qualityDelivered(delivered)
	s.observeFlight(j, "ok", detail)
	resp = &Response{
		OK: true,
		// The plan's geometry, not the request's: a preview delivery
		// carries its reduced dimensions, and the payload that follows
		// holds exactly Width*Height bytes either way.
		Width: j.plan.Cfg.Width, Height: j.plan.Cfg.Height,
		Stats: FrameStats{
			QueueMS:    float64(j.dispatched.Sub(j.admitted)) / 1e6,
			RenderMS:   float64(j.renderNS.Load()) / 1e6,
			TotalMS:    float64(total) / 1e6,
			WireBytes:  j.wireBytes.Load(),
			Quality:    delivered,
			Degraded:   degraded,
			ErrorBound: bound,
			TraceID:    j.id.String(),
		},
	}
	if j.sampled {
		resp.Trace = s.frameWire(j, total)
	}
	return resp, rep.img
}

// buildJob resolves one request at one quality contract into a
// ready-to-enqueue job. Preview contracts render at harness.PreviewDims
// — a quarter of the rays — and carry the reduced geometry in the
// reply; DegradeOK jobs get the demote flag the frame watchdog flips.
// The returned *Response is the typed-error reply (nil on success).
func (s *Server) buildJob(req Request, quality, requested string, deadlineAt time.Time) (*job, *Response) {
	w, h := req.Width, req.Height
	if quality == QualityPreview {
		w, h = harness.PreviewDims(w, h)
	}
	cfg := harness.Config{
		Dataset: req.Dataset,
		Width:   w, Height: h,
		P:      s.cfg.P,
		Method: req.Method,
		RotX:   req.RotX, RotY: req.RotY,
		Quality:    quality,
		RenderOpts: render.Options{Shaded: req.Shaded, Workers: s.cfg.Workers},
	}
	if cfg.Method == "" {
		cfg.Method = DefaultMethod
	}
	if autotune.IsAuto(cfg.Method) {
		// The server-wide selector resolves "auto" at plan time (inside
		// NewPlan), so all ranks of this frame run the same compositor
		// and corrections accumulate across requests.
		cfg.Selector = s.sel
	}
	var demote *atomic.Bool
	if req.DegradeOK {
		demote = new(atomic.Bool)
		cfg.RenderOpts.Demote = demote
	}
	if err := cfg.Check(); err != nil {
		s.met.requestFailed(CodeBadRequest)
		return nil, &Response{Code: CodeBadRequest, Error: err.Error()}
	}
	plan, err := harness.NewPlan(cfg)
	if err != nil {
		s.met.requestFailed(CodeBadRequest)
		return nil, &Response{Code: CodeBadRequest, Error: err.Error()}
	}
	if plan.Choice != nil {
		// Method "auto": cfg still says "auto" but the plan resolved it;
		// count what the selector picked.
		s.met.methodSelected(plan.Cfg.Method)
	}
	// Trace identity: adopt the caller's context, or mint a local ID so
	// flight entries and exemplars stay correlatable even for untraced
	// requests. Sampling (returning the span tree in the reply) is only
	// ever caller-requested.
	id := req.Trace.Trace()
	sampled := req.Trace != nil && req.Trace.Sampled && !s.cfg.DisableTracing
	if id == 0 && !s.cfg.DisableTracing {
		id = trace.NewID()
	}
	j := &job{
		plan:      plan,
		method:    plan.Cfg.Method,
		quality:   quality,
		requested: requested,
		demote:    demote,
		admitted:  time.Now(),
		deadline:  deadlineAt,
		id:        id,
		sampled:   sampled,
		done:      make(chan reply, 1),
	}
	if !s.cfg.DisableTracing {
		j.rec = trace.NewRecorder(s.cfg.P)
		j.rec.SetTraceID(id)
	}
	return j, nil
}

func jobDetail(j *job, req Request) string {
	d := fmt.Sprintf("%s %dx%d %s", j.method, j.plan.Cfg.Width, j.plan.Cfg.Height, req.Dataset)
	if j.quality != QualityFull {
		d += " " + j.quality
	}
	return d
}

// degradePoll paces the degraded-admission retry loop: long enough for
// the dispatcher to drain a queue slot between attempts, negligible next
// to any real frame time.
const degradePoll = 2 * time.Millisecond

// admitDegraded admits a DegradeOK request that found the queue full.
// Each attempt steps the contract one rung down the full→approx→preview
// ladder (rebuilding the job cheaper) and retries the non-blocking
// enqueue; at the preview floor it keeps polling. The only exits are a
// queue slot (success — the caller waits on the returned job), the
// request deadline, shutdown, or a build error; never CodeOverloaded.
// Every enqueue stays inside the closed-check critical section,
// preserving the shutdown-drain invariant of the fast path.
func (s *Server) admitDegraded(req Request, requested string, deadlineAt time.Time) (*job, *Response) {
	quality := requested
	var j *job
	for {
		if next, ok := harness.DegradeQuality(quality); ok {
			quality = next
			s.met.degraded("admission", quality, 1)
			j = nil // rebuild at the cheaper contract
		}
		if j == nil {
			var resp *Response
			if j, resp = s.buildJob(req, quality, requested, deadlineAt); resp != nil {
				return nil, resp
			}
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			s.met.requestFailed(CodeShutdown)
			s.observeFlight(j, CodeShutdown, jobDetail(j, req))
			return nil, &Response{Code: CodeShutdown, Error: "server shutting down"}
		}
		select {
		case s.queue <- j:
			s.mu.Unlock()
			return j, nil
		default:
			s.mu.Unlock()
		}
		select {
		case <-s.stop:
			s.met.requestFailed(CodeShutdown)
			s.observeFlight(j, CodeShutdown, jobDetail(j, req))
			return nil, &Response{Code: CodeShutdown, Error: "server shutting down"}
		case <-time.After(degradePoll):
			if time.Now().After(j.deadline) {
				s.met.requestFailed(CodeDeadline)
				s.observeFlight(j, CodeDeadline, jobDetail(j, req))
				return nil, &Response{Code: CodeDeadline,
					Error: "deadline expired before a degraded slot freed",
					Stats: FrameStats{TraceID: j.id.String()}}
			}
		}
	}
}

// frameWire assembles the server's span tree for one finished job: a
// process-level track splitting the request into queue wait and
// pipeline time (derived from the admission timestamps, so it exists
// even for frames that failed before recording anything), plus the
// per-rank recorder tracks.
func (s *Server) frameWire(j *job, total time.Duration) *trace.Wire {
	procTrack := []trace.Span{{Name: "serve", Dur: total}}
	if !j.dispatched.IsZero() {
		queue := j.dispatched.Sub(j.admitted)
		if queue < 0 {
			queue = 0
		}
		if queue > total {
			queue = total
		}
		procTrack = append(procTrack,
			trace.Span{Name: "queue", Dur: queue},
			trace.Span{Name: "pipeline", Start: queue, Dur: total - queue})
	}
	return trace.BuildWire(j.id, "renderd", total, procTrack, j.rec)
}

// observeFlight offers one finished request to the flight recorder; the
// span tree is built lazily at export time so retaining an entry costs
// a closure, not a wire build.
func (s *Server) observeFlight(j *job, outcome, detail string) {
	if s.flight == nil {
		return
	}
	total := time.Since(j.admitted)
	s.flight.Observe(trace.FlightEntry{
		TraceID: j.id.String(),
		At:      time.Now(),
		Latency: total,
		Outcome: outcome,
		Detail:  detail,
		Trace:   func() *trace.Wire { return s.frameWire(j, total) },
	})
}

func (s *Server) acceptLoop() {
	defer s.connWG.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed by Shutdown
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		go s.handleConn(conn)
	}
}

func (s *Server) handleConn(conn net.Conn) {
	defer s.connWG.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	for {
		var req Request
		if err := ReadJSON(conn, MaxRequestFrame, &req); err != nil {
			return // EOF, deadline from Shutdown, or garbage framing
		}
		resp, img := s.submit(req)
		if err := WriteJSON(conn, resp); err != nil {
			return
		}
		if resp.OK {
			if err := WriteFrame(conn, img.AppendGray(nil)); err != nil {
				return
			}
		}
	}
}

// Shutdown stops the server: admission is closed, queued jobs are
// answered with CodeShutdown, in-flight frames finish and are delivered,
// then the resident world quiesces and every listener and connection is
// closed. If ctx expires first, blocked ranks are force-stopped.
func (s *Server) Shutdown(ctx context.Context) error {
	s.stopOnce.Do(func() {
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		s.ln.Close()
		close(s.stop)
	})

	// The supervisor drains the queue and closes the rank pipelines (or,
	// if the world was mid-rebuild, exits without one).
	<-s.supDone

	// Wait for in-flight frames; on timeout, cancel through the world so
	// blocked receives fail instead of waiting out their timeout. run is
	// nil when the server stopped while the world was down.
	run := s.takeCur()
	var err error
	if run != nil {
		pipeDone := make(chan struct{})
		go func() { run.pipeWG.Wait(); close(pipeDone) }()
		select {
		case <-pipeDone:
		case <-ctx.Done():
			err = ctx.Err()
			run.res.forceStop()
			<-pipeDone
		}
		// Frames cancelled mid-flight by the forced stop were untracked
		// by their composite loop's error path; any job still tracked
		// (e.g. never picked up) is answered here so no handler hangs.
		for _, j := range run.takeInflight() {
			<-s.tokens
			s.met.inflight.Add(-1)
			s.met.requestFailed(CodeShutdown)
			j.finish(reply{code: CodeShutdown, err: errors.New("server shutting down")})
		}
	}

	// Unblock idle connection readers, then wait for handlers to finish
	// writing their last reply; force-close stragglers at the deadline.
	s.mu.Lock()
	for conn := range s.conns {
		conn.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	connDone := make(chan struct{})
	go func() { s.connWG.Wait(); close(connDone) }()
	select {
	case <-connDone:
	case <-ctx.Done():
		if err == nil {
			err = ctx.Err()
		}
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		<-connDone
	}

	if run != nil {
		if werr := run.res.shutdown(ctx); werr != nil && err == nil {
			err = werr
		}
	}
	if s.httpSrv != nil {
		if herr := s.httpSrv.Shutdown(ctx); herr != nil && err == nil {
			err = herr
		}
	}
	return err
}
