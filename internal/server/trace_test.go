package server_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"sortlast/internal/server"
	"sortlast/internal/trace"
)

func httpGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, body
}

// TestTraceSidecar covers the serving-tier observability surface: the
// /debug/trace/last endpoint 404s before any frame, serves
// Perfetto-loadable JSON with one track per rank after one, the phase
// histograms on /metrics count the frame, and the pprof index answers.
func TestTraceSidecar(t *testing.T) {
	srv, cl := startServer(t, server.Config{P: 4, HTTPAddr: "127.0.0.1:0"})
	base := "http://" + srv.HTTPAddr().String()

	if code, _ := httpGet(t, base+"/debug/trace/last"); code != http.StatusNotFound {
		t.Fatalf("trace endpoint before any frame: status %d, want 404", code)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	req := server.Request{Dataset: "cube", Method: "bsbrc", Width: 64, Height: 64, RotY: 30}
	if _, err := cl.Render(ctx, req); err != nil {
		t.Fatal(err)
	}

	code, body := httpGet(t, base+"/debug/trace/last")
	if code != http.StatusOK {
		t.Fatalf("trace endpoint after a frame: status %d", code)
	}
	var f trace.File
	if err := json.Unmarshal(body, &f); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	tids := map[int]bool{}
	for _, ev := range f.TraceEvents {
		if ev.Ph == "X" {
			tids[ev.TID] = true
		}
	}
	if len(tids) != 4 {
		t.Errorf("trace has %d rank tracks, want 4", len(tids))
	}

	_, metrics := httpGet(t, base+"/metrics")
	for _, phase := range []string{"render", "composite", "gather"} {
		want := `renderd_phase_latency_seconds_count{phase="` + phase + `"} 1`
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	if code, _ := httpGet(t, base+"/debug/pprof/"); code != http.StatusOK {
		t.Errorf("pprof index: status %d, want 200", code)
	}
}

// TestTracingDisabled pins the opt-out: frames still serve, the trace
// endpoint stays 404, and the phase histograms stay empty.
func TestTracingDisabled(t *testing.T) {
	srv, cl := startServer(t, server.Config{P: 2, HTTPAddr: "127.0.0.1:0", DisableTracing: true})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if _, err := cl.Render(ctx, server.Request{Dataset: "cube", Width: 32, Height: 32}); err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.HTTPAddr().String()
	if code, _ := httpGet(t, base+"/debug/trace/last"); code != http.StatusNotFound {
		t.Errorf("trace endpoint with tracing disabled: status %d, want 404", code)
	}
	_, metrics := httpGet(t, base+"/metrics")
	if !strings.Contains(string(metrics), `renderd_phase_latency_seconds_count{phase="render"} 0`) {
		t.Error("phase histogram counted a frame with tracing disabled")
	}
}
