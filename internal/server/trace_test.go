package server_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"sortlast/internal/server"
	"sortlast/internal/trace"
)

func httpGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, body
}

// httpGetOpenMetrics scrapes url negotiating the OpenMetrics exposition
// (the format exemplars ride on), the way Prometheus itself asks.
func httpGetOpenMetrics(t *testing.T, url string) []byte {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	req.Header.Set("Accept", "application/openmetrics-text;version=1.0.0,text/plain;version=0.0.4;q=0.5")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "openmetrics") {
		t.Fatalf("OpenMetrics scrape of %s answered Content-Type %q", url, ct)
	}
	return body
}

// TestTraceSidecar covers the serving-tier observability surface: the
// /debug/trace/last endpoint 404s before any frame, serves
// Perfetto-loadable JSON with one track per rank after one, the phase
// histograms on /metrics count the frame, and the pprof index answers.
func TestTraceSidecar(t *testing.T) {
	srv, cl := startServer(t, server.Config{P: 4, HTTPAddr: "127.0.0.1:0"})
	base := "http://" + srv.HTTPAddr().String()

	if code, _ := httpGet(t, base+"/debug/trace/last"); code != http.StatusNotFound {
		t.Fatalf("trace endpoint before any frame: status %d, want 404", code)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	req := server.Request{Dataset: "cube", Method: "bsbrc", Width: 64, Height: 64, RotY: 30}
	if _, err := cl.Render(ctx, req); err != nil {
		t.Fatal(err)
	}

	code, body := httpGet(t, base+"/debug/trace/last")
	if code != http.StatusOK {
		t.Fatalf("trace endpoint after a frame: status %d", code)
	}
	var f trace.File
	if err := json.Unmarshal(body, &f); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	tids := map[int]bool{}
	for _, ev := range f.TraceEvents {
		if ev.Ph == "X" {
			tids[ev.TID] = true
		}
	}
	if len(tids) != 4 {
		t.Errorf("trace has %d rank tracks, want 4", len(tids))
	}

	_, metrics := httpGet(t, base+"/metrics")
	for _, phase := range []string{"render", "composite", "gather"} {
		want := `renderd_phase_latency_seconds_count{phase="` + phase + `"} 1`
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	if code, _ := httpGet(t, base+"/debug/pprof/"); code != http.StatusOK {
		t.Errorf("pprof index: status %d, want 200", code)
	}
}

// TestTracingDisabled pins the opt-out: frames still serve, the trace
// endpoint stays 404, and the phase histograms stay empty.
func TestTracingDisabled(t *testing.T) {
	srv, cl := startServer(t, server.Config{P: 2, HTTPAddr: "127.0.0.1:0", DisableTracing: true})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if _, err := cl.Render(ctx, server.Request{Dataset: "cube", Width: 32, Height: 32}); err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.HTTPAddr().String()
	if code, _ := httpGet(t, base+"/debug/trace/last"); code != http.StatusNotFound {
		t.Errorf("trace endpoint with tracing disabled: status %d, want 404", code)
	}
	if code, _ := httpGet(t, base+"/debug/flight"); code != http.StatusNotFound {
		t.Errorf("flight endpoint with tracing disabled: status %d, want 404", code)
	}
	_, metrics := httpGet(t, base+"/metrics")
	if !strings.Contains(string(metrics), `renderd_phase_latency_seconds_count{phase="render"} 0`) {
		t.Error("phase histogram counted a frame with tracing disabled")
	}
	// A sampled request against a tracing-disabled server still renders,
	// just without a span tree.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Minute)
	defer cancel2()
	f, err := cl.Render(ctx2, server.Request{Dataset: "cube", Width: 32, Height: 32, Trace: trace.NewContext()})
	if err != nil {
		t.Fatal(err)
	}
	if f.Trace != nil {
		t.Error("tracing-disabled server returned a span tree")
	}
}

// TestSampledRequestReturnsTrace covers the tentpole's single-server
// leg: a request carrying a sampled trace context gets the server's
// span tree back in the reply — the renderd process with a server-level
// queue/pipeline track plus one track per rank, all under the caller's
// trace ID — and the same request is queryable on /debug/flight.
func TestSampledRequestReturnsTrace(t *testing.T) {
	srv, cl := startServer(t, server.Config{P: 4, HTTPAddr: "127.0.0.1:0"})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	tc := trace.NewContext()
	req := server.Request{Dataset: "cube", Method: "bsbrc", Width: 64, Height: 64, Trace: tc}
	f, err := cl.Render(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if f.Stats.TraceID != tc.TraceID {
		t.Errorf("Stats.TraceID = %q, want %q", f.Stats.TraceID, tc.TraceID)
	}
	w := f.Trace
	if w == nil {
		t.Fatal("sampled request returned no span tree")
	}
	if w.TraceID != tc.TraceID {
		t.Errorf("wire trace ID = %q, want %q", w.TraceID, tc.TraceID)
	}
	if len(w.Procs) != 1 || w.Procs[0].Name != "renderd" {
		t.Fatalf("procs = %+v", w.Procs)
	}
	tracks := map[string][]trace.WireSpan{}
	for _, tr := range w.Procs[0].Tracks {
		tracks[tr.Name] = tr.Spans
	}
	if len(tracks) != 5 { // server + 4 ranks
		t.Fatalf("tracks = %d (%v), want 5", len(tracks), tracks)
	}
	names := map[string]bool{}
	for _, s := range tracks["server"] {
		names[s.Name] = true
	}
	if !names["serve"] || !names["queue"] || !names["pipeline"] {
		t.Errorf("server track spans = %v, want serve+queue+pipeline", names)
	}
	rank := map[string]bool{}
	for _, s := range tracks["rank 0"] {
		rank[s.Name] = true
	}
	for _, want := range []string{trace.SpanRender, trace.SpanCompositing} {
		if !rank[want] {
			t.Errorf("rank 0 track missing %q (has %v)", want, rank)
		}
	}

	// The frame shows up on /debug/flight (first frame: kept by the p99
	// rule on an empty window) and exports as Perfetto JSON.
	base := "http://" + srv.HTTPAddr().String()
	code, body := httpGet(t, base+"/debug/flight")
	if code != http.StatusOK {
		t.Fatalf("flight list: status %d", code)
	}
	var list struct {
		Entries []struct {
			TraceID string `json:"trace_id"`
			Outcome string `json:"outcome"`
			Reason  string `json:"reason"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatalf("flight list JSON: %v", err)
	}
	found := false
	for _, e := range list.Entries {
		if e.TraceID == tc.TraceID {
			found = true
			if e.Outcome != "ok" {
				t.Errorf("flight outcome = %q", e.Outcome)
			}
		}
	}
	if !found {
		t.Fatalf("flight list %+v missing trace %s", list.Entries, tc.TraceID)
	}
	code, body = httpGet(t, base+"/debug/flight?trace="+tc.TraceID)
	if code != http.StatusOK {
		t.Fatalf("flight export: status %d", code)
	}
	var file trace.File
	if err := json.Unmarshal(body, &file); err != nil {
		t.Fatalf("flight export JSON: %v", err)
	}
	if file.TraceID != tc.TraceID || len(file.TraceEvents) == 0 {
		t.Fatalf("flight export = traceId %q, %d events", file.TraceID, len(file.TraceEvents))
	}

	// The latency histogram carries the trace ID as an exemplar — on an
	// OpenMetrics-negotiated scrape only. A classic scrape must stay
	// clean: its parser rejects any line with an exemplar suffix.
	metrics := httpGetOpenMetrics(t, base+"/metrics")
	if !strings.Contains(string(metrics), `trace_id="`+tc.TraceID+`"`) {
		t.Error("OpenMetrics scrape missing the frame's exemplar")
	}
	if !strings.HasSuffix(string(metrics), "# EOF\n") {
		t.Error("OpenMetrics scrape missing # EOF trailer")
	}
	_, classic := httpGet(t, base+"/metrics")
	if strings.Contains(string(classic), "trace_id") {
		t.Error("classic scrape carries exemplars; stock Prometheus would reject it")
	}

	// An unsampled request still gets a locally minted correlation ID
	// but no span tree on the wire.
	f2, err := cl.Render(ctx, server.Request{Dataset: "cube", Width: 32, Height: 32})
	if err != nil {
		t.Fatal(err)
	}
	if f2.Trace != nil {
		t.Error("unsampled request returned a span tree")
	}
	if f2.Stats.TraceID == "" || f2.Stats.TraceID == tc.TraceID {
		t.Errorf("unsampled Stats.TraceID = %q", f2.Stats.TraceID)
	}
}
