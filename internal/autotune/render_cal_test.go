package autotune

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sortlast/internal/stats"
	"sortlast/internal/transfer"
	"sortlast/internal/volume"
)

// TestCalibrateRender checks that calibration measures the accelerated
// kernel's per-sample constant and that the result survives an
// encode/decode round trip.
func TestCalibrateRender(t *testing.T) {
	prof, err := Calibrate(CalibrateOptions{Quick: true, Transports: []string{TransportMP}})
	if err != nil {
		t.Fatal(err)
	}
	if prof.Render == nil {
		t.Fatal("calibrated profile has no render section")
	}
	if prof.Render.TrSample <= 0 {
		t.Fatalf("TrSample = %v, want > 0", prof.Render.TrSample)
	}
	if prof.Render.TrSample > time.Millisecond {
		t.Fatalf("TrSample = %v, implausibly slow for one sample", prof.Render.TrSample)
	}

	path := filepath.Join(t.TempDir(), "profile.json")
	if err := prof.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Render == nil || got.Render.TrSample != prof.Render.TrSample {
		t.Fatalf("round trip lost render calibration: %+v, want %+v", got.Render, prof.Render)
	}
}

// TestProfileRenderValidation: a render section with a non-positive
// constant must fail validation; an absent section (pre-acceleration
// profiles) must not.
func TestProfileRenderValidation(t *testing.T) {
	prof := DefaultProfile()
	if prof.Render != nil {
		t.Fatalf("DefaultProfile unexpectedly carries render calibration")
	}
	if err := prof.Validate(); err != nil {
		t.Fatalf("profile without render section: %v", err)
	}
	prof.Render = &RenderCal{TrSample: 0}
	err := prof.Validate()
	if err == nil || !strings.Contains(err.Error(), "render") {
		t.Fatalf("zero TrSample validated: err = %v", err)
	}
	prof.Render = &RenderCal{TrSample: 40 * time.Nanosecond}
	if err := prof.Validate(); err != nil {
		t.Fatalf("positive TrSample rejected: %v", err)
	}
}

// TestPrescanSkipFeature: the probe frame must report high macro-cell
// skipping for the mostly-empty cube dataset and much lower skipping
// for a volume that is non-transparent everywhere.
func TestPrescanSkipFeature(t *testing.T) {
	sparse := Prescan(volume.SolidCube(64, 64, 64), transfer.Cube(), 256, 256, 4, 20, 30)
	if sparse.Skip < 0.5 {
		t.Errorf("cube prescan Skip = %.2f, want > 0.5", sparse.Skip)
	}
	dense := Prescan(volume.Ramp(64, 64, 64, 0), transfer.Ramp("dense", 0, 1, 0.5), 256, 256, 4, 20, 30)
	if dense.Skip > 0.2 {
		t.Errorf("dense prescan Skip = %.2f, want < 0.2", dense.Skip)
	}
	if sparse.Skip <= dense.Skip {
		t.Errorf("sparse Skip %.2f not above dense Skip %.2f", sparse.Skip, dense.Skip)
	}
}

// TestStatsFeaturesSkip: the per-rank render counters aggregate into the
// Skip feature, independent of what compositing delivered.
func TestStatsFeaturesSkip(t *testing.T) {
	ranks := []*stats.Rank{
		{Render: stats.Render{Samples: 100, SamplesSkipped: 300}},
		{Render: stats.Render{Samples: 100, SamplesSkipped: 100}},
		nil,
	}
	f := StatsFeatures(Features{}, 256, 256, 2, "bs", ranks)
	if want := 400.0 / 600.0; f.Skip != want {
		t.Errorf("Skip = %v, want %v", f.Skip, want)
	}
	// No render counters at all: Skip carries over from prev unchanged.
	f = StatsFeatures(Features{Skip: 0.42}, 256, 256, 2, "bs", []*stats.Rank{{}})
	if f.Skip != 0.42 {
		t.Errorf("Skip = %v, want carried-over 0.42", f.Skip)
	}
}

// TestCalibratedSelectorSanity: a selector running on freshly measured
// host constants must still order the methods sanely — a fully dense
// frame never pays for encoding, a sparse frame never ships dense
// halves.
func TestCalibratedSelectorSanity(t *testing.T) {
	prof, err := Calibrate(CalibrateOptions{Quick: true, Transports: []string{TransportMP}})
	if err != nil {
		t.Fatal(err)
	}
	params, err := prof.Params(TransportMP)
	if err != nil {
		t.Fatal(err)
	}
	sel := NewSelector(params, TransportMP)

	dense, err := sel.Choose(Features{Width: 384, Height: 384, P: 8, Alpha: 1, Beta: 1, Runs: 1, Skip: 0})
	if err != nil {
		t.Fatal(err)
	}
	if dense.Method == "bslc" || dense.Method == "bsbrc" || dense.Method == "bsbrlc" {
		t.Errorf("dense frame chose encoding method %q (ranking %+v)", dense.Method, dense.Predictions)
	}
	sparse, err := sel.Choose(Features{Width: 384, Height: 384, P: 8, Alpha: 0.03, Beta: 0.15, Runs: 2, Skip: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if sparse.Method == "bs" {
		t.Errorf("sparse frame chose dense binary swap (ranking %+v)", sparse.Predictions)
	}
}
