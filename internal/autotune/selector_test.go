package autotune

import (
	"testing"
	"time"

	"sortlast/internal/costmodel"
	"sortlast/internal/frame"
	"sortlast/internal/stats"
)

// Golden selections on synthetic feature vectors, SP2 parameters. These
// pin the crossover structure of the paper's figures: dense frames
// favor plain binary swap (compression buys nothing and encoding
// costs), dense-within-rectangle frames favor BSBR (clipping without
// encoding), sparse frames favor BSBRC.
func TestChooseGolden(t *testing.T) {
	sel := NewSelector(costmodel.SP2(), TransportMP)
	cases := []struct {
		name string
		f    Features
		want string
	}{
		{"dense frame", Features{Width: 384, Height: 384, P: 8, Alpha: 1, Beta: 1, Runs: 1}, "bs"},
		{"dense rectangle", Features{Width: 384, Height: 384, P: 8, Alpha: 0.5, Beta: 0.5, Runs: 1}, "bsbr"},
		{"sparse frame", Features{Width: 384, Height: 384, P: 8, Alpha: 0.03, Beta: 0.15, Runs: 4}, "bsbrc"},
		{"sparse, large P", Features{Width: 768, Height: 768, P: 64, Alpha: 0.05, Beta: 0.25, Runs: 6}, "bsbrc"},
	}
	for _, tc := range cases {
		ch, err := sel.Choose(tc.f)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if ch.Method != tc.want {
			t.Errorf("%s: chose %q, want %q (ranking %+v)", tc.name, ch.Method, tc.want, ch.Predictions)
		}
		if len(ch.Predictions) != len(Candidates()) {
			t.Errorf("%s: %d predictions, want %d", tc.name, len(ch.Predictions), len(Candidates()))
		}
		for i := 1; i < len(ch.Predictions); i++ {
			if ch.Predictions[i].Score < ch.Predictions[i-1].Score {
				t.Errorf("%s: predictions not sorted ascending", tc.name)
			}
		}
	}
}

// A selector fed alternating dense and sparse frames must switch
// methods — the adaptivity the acceptance criteria require.
func TestChooseSwitchesOnMixedAnimation(t *testing.T) {
	sel := NewSelector(costmodel.SP2(), TransportMP)
	dense := Features{Width: 384, Height: 384, P: 8, Alpha: 0.95, Beta: 1, Runs: 1}
	sparse := Features{Width: 384, Height: 384, P: 8, Alpha: 0.04, Beta: 0.2, Runs: 3}
	seen := map[string]bool{}
	for i := 0; i < 6; i++ {
		f := dense
		if i%2 == 1 {
			f = sparse
		}
		ch, err := sel.Choose(f)
		if err != nil {
			t.Fatal(err)
		}
		seen[ch.Method] = true
	}
	if len(seen) < 2 {
		t.Fatalf("selector never switched methods across mixed frames: %v", seen)
	}
}

// EWMA correction: when the chosen method measures far slower than
// modeled, its factor rises and the argmin flips to the runner-up.
func TestObserveEWMACorrection(t *testing.T) {
	sel := NewSelector(costmodel.SP2(), TransportMP)
	f := Features{Width: 384, Height: 384, P: 8, Alpha: 0.03, Beta: 0.15, Runs: 4}
	first, err := sel.Choose(f)
	if err != nil {
		t.Fatal(err)
	}
	if first.Method != "bsbrc" {
		t.Fatalf("precondition: sparse frame should choose bsbrc, got %q", first.Method)
	}
	// Feed measurements 50x over model prediction for bsbrc.
	pred, err := Predict(sel.Params(), "bsbrc", f)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		sel.Observe("bsbrc", f, time.Duration(50*float64(pred.Total())))
	}
	snap := sel.Snapshot()
	if snap.Factors["bsbrc"] <= 1 {
		t.Fatalf("factor did not rise: %v", snap.Factors)
	}
	after, err := sel.Choose(f)
	if err != nil {
		t.Fatal(err)
	}
	if after.Method == "bsbrc" {
		t.Fatalf("selection did not self-correct away from mispredicted method (factors %v)", snap.Factors)
	}
}

func TestObserveClampsAndIgnoresUnknown(t *testing.T) {
	sel := NewSelector(costmodel.SP2(), TransportMP)
	f := Features{Width: 128, Height: 128, P: 4, Alpha: 0.5, Beta: 0.6, Runs: 2}
	for i := 0; i < 100; i++ {
		sel.Observe("bs", f, time.Hour)
	}
	if got := sel.Snapshot().Factors["bs"]; got > maxFactor {
		t.Fatalf("factor %v exceeds clamp %v", got, maxFactor)
	}
	sel.Observe("direct", f, time.Second) // not a candidate: ignored
	if _, ok := sel.Snapshot().Factors["direct"]; ok {
		t.Fatal("non-candidate method grew a factor")
	}
}

func TestScanFeatures(t *testing.T) {
	img := frame.NewImage(100, 100)
	// A 20x20 solid block at (10,10): alpha 4%, beta 4%, one run on each
	// of 20 of 100 scanlines.
	for y := 10; y < 30; y++ {
		for x := 10; x < 30; x++ {
			img.Set(x, y, frame.Pixel{I: 0.5, A: 0.5})
		}
	}
	f := ScanFeatures(img, 4)
	if f.Width != 100 || f.Height != 100 || f.P != 4 {
		t.Fatalf("geometry: %+v", f)
	}
	if f.Alpha < 0.039 || f.Alpha > 0.041 {
		t.Errorf("alpha = %v, want 0.04", f.Alpha)
	}
	if f.Beta < 0.039 || f.Beta > 0.041 {
		t.Errorf("beta = %v, want 0.04", f.Beta)
	}
	if f.Runs < 0.19 || f.Runs > 0.21 {
		t.Errorf("runs = %v, want 0.2", f.Runs)
	}
}

func TestStatsFeaturesRectMethod(t *testing.T) {
	// P=2, one stage: the rank received a rectangle of 1000 pixels of
	// which 250 were non-blank, and 80 codes shipped.
	r := &stats.Rank{Method: "BSBRC"}
	s := r.StageAt(1)
	s.RecvPixels = 1000
	s.Composited = 250
	s.Codes = 80
	prev := Features{Width: 100, Height: 100, P: 2, Alpha: 0.5, Beta: 0.5, Runs: 1}
	f := StatsFeatures(prev, 100, 100, 2, "bsbrc", []*stats.Rank{r})
	// Dense delivery for P=2 is A(P-1) = 10000 pixels: beta = 0.1,
	// density inside the rect 0.25 -> alpha = 0.025.
	if f.Beta < 0.099 || f.Beta > 0.101 {
		t.Errorf("beta = %v, want 0.1", f.Beta)
	}
	if f.Alpha < 0.024 || f.Alpha > 0.026 {
		t.Errorf("alpha = %v, want 0.025", f.Alpha)
	}
	if f.Runs <= 0 {
		t.Errorf("runs = %v, want positive", f.Runs)
	}
}

func TestStatsFeaturesCarriesUnobserved(t *testing.T) {
	// BS observes no rectangle and no codes: beta and runs carry over.
	r := &stats.Rank{Method: "BS"}
	s := r.StageAt(1)
	s.RecvPixels = 5000
	s.Composited = 4000
	prev := Features{Width: 100, Height: 100, P: 2, Alpha: 0.5, Beta: 0.33, Runs: 2.5}
	f := StatsFeatures(prev, 100, 100, 2, "bs", []*stats.Rank{r})
	if f.Beta != 0.33 || f.Runs != 2.5 {
		t.Errorf("unobserved components not carried: %+v", f)
	}
	if f.Alpha != 0.8 {
		t.Errorf("alpha = %v, want 0.8", f.Alpha)
	}
}

func TestPredictRejectsInvalid(t *testing.T) {
	if _, err := Predict(costmodel.SP2(), "bs", Features{}); err == nil {
		t.Fatal("empty features must error")
	}
	f := Features{Width: 10, Height: 10, P: 2, Alpha: 0.5, Beta: 0.5}
	if _, err := Predict(costmodel.SP2(), "nope", f); err == nil {
		t.Fatal("unknown method must error")
	}
}

// Correction factors are learned per (method, quality contract): approx
// frames terminate early and drop regions, so their measured/predicted
// ratio must not contaminate the full-quality row, and vice versa. The
// full contract keeps the bare-method key so pre-quality state carries
// over.
func TestObserveKeysFactorsByQuality(t *testing.T) {
	sel := NewSelector(costmodel.SP2(), TransportMP)
	f := Features{Width: 384, Height: 384, P: 8, Alpha: 0.04, Beta: 0.2, Runs: 3}
	ch, err := sel.Choose(f)
	if err != nil {
		t.Fatal(err)
	}
	predicted := ch.Predictions[0].Score

	// An approx observation twice as fast as predicted must only move
	// the "@approx" row.
	fa := f
	fa.Quality = "approx"
	sel.Observe(ch.Method, fa, predicted/2)
	snap := sel.Snapshot()
	if v := snap.Factors[ch.Method]; v != 1 {
		t.Errorf("full-quality factor moved to %g after an approx observation", v)
	}
	if v := snap.Factors[ch.Method+"@approx"]; v >= 1 {
		t.Errorf("approx factor = %g after a fast approx observation, want < 1", v)
	}

	// A slow full observation moves the bare row and leaves approx alone.
	before := snap.Factors[ch.Method+"@approx"]
	sel.Observe(ch.Method, f, predicted*2)
	snap = sel.Snapshot()
	if v := snap.Factors[ch.Method]; v <= 1 {
		t.Errorf("full factor = %g after a slow full observation, want > 1", v)
	}
	if v := snap.Factors[ch.Method+"@approx"]; v != before {
		t.Errorf("approx factor moved from %g to %g on a full observation", before, v)
	}

	// The explicit "full" name is the bare row, not a separate one.
	ff := f
	ff.Quality = "full"
	sel.Observe(ch.Method, ff, predicted*2)
	if v := sel.Snapshot().Factors[ch.Method+"@full"]; v != 0 {
		t.Errorf("quality=full grew its own %q row", ch.Method+"@full")
	}

	// ChooseForQuality stamps the contract into the features it ranks
	// with, so the learned per-quality factor feeds back into choice.
	sel.Seed(f)
	ch2, seeded, err := sel.ChooseForQuality(384, 384, 8, "approx")
	if err != nil || !seeded {
		t.Fatalf("ChooseForQuality: seeded=%v err=%v", seeded, err)
	}
	if ch2.Method == "" {
		t.Fatal("ChooseForQuality returned no method")
	}
}
