// Package autotune closes the paper's loop between model and machine:
// it measures the five cost-model constants (T_s, T_c, T_o, T_encode,
// T_bound; the inputs of Eq. 1–8) on the actual host, stores them in a
// versioned machine profile, and uses the calibrated model to pick the
// cheapest compositing method per frame from cheap sparsity features —
// with a per-method EWMA correction, fed by measured wall time, that
// absorbs whatever the closed-form model gets wrong about the host.
//
// The package has three layers:
//
//   - Calibration (Calibrate): microbenchmarks for the compute constants
//     plus a ping-pong latency/bandwidth fit per transport ("mp"
//     in-process, "mpnet" loopback TCP — T_s and T_c differ by orders of
//     magnitude between them), producing a Profile.
//   - Selection (Selector): evaluates the Eq. 1–8 closed forms for every
//     binary-swap method over a Features vector (image area, non-blank
//     fraction, bounding-rectangle fraction, runs per scanline) and
//     returns the argmin, scaled by the method's EWMA correction factor.
//   - Feedback (Observe/UpdateFromStats): after a frame runs, the
//     measured compositing wall time corrects the chosen method's
//     factor, and the frame's exact stats counters become the feature
//     vector for the next frame — calibrate once, predict per input,
//     correct from measurement.
package autotune

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"sortlast/internal/costmodel"
)

// ProfileVersion is the current machine-profile schema version.
const ProfileVersion = 1

// Transport names a profile's parameter set: the in-process goroutine
// world or the loopback TCP world.
const (
	TransportMP    = "mp"
	TransportMPNet = "mpnet"
)

// HostInfo identifies the machine a profile was calibrated on, so a
// profile loaded on different hardware is at least visibly foreign.
type HostInfo struct {
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	NumCPU    int    `json:"num_cpu"`
	GoVersion string `json:"go_version"`
}

// CurrentHost describes the running machine.
func CurrentHost() HostInfo {
	return HostInfo{
		OS: runtime.GOOS, Arch: runtime.GOARCH,
		NumCPU: runtime.NumCPU(), GoVersion: runtime.Version(),
	}
}

// Profile is a versioned machine profile: one full costmodel.Params per
// transport. The compute constants (T_o, T_encode, T_bound) are shared
// across transports — calibration measures them once and copies them —
// but each entry is self-contained so a transport's parameters load
// straight into costmodel.Params with no assembly step.
type Profile struct {
	Version   int       `json:"version"`
	CreatedAt time.Time `json:"created_at"`
	Host      HostInfo  `json:"host"`

	// Quick records that the profile came from a shortened calibration
	// (cmd/calibrate -quick): usable, but noisier than a full run.
	Quick bool `json:"quick,omitempty"`

	Transports map[string]costmodel.Params `json:"transports"`

	// Render holds renderer-side calibration, measured against the
	// accelerated ray-cast kernel. Optional: profiles written before the
	// kernel existed load fine without it.
	Render *RenderCal `json:"render,omitempty"`
}

// RenderCal is the renderer-side counterpart of the compositing
// constants: the cost of one *evaluated* ray sample through the
// accelerated kernel (T_r per sample). Samples removed by macro-cell
// skipping cost ~nothing, so modeled render time is
// Samples·(1−Skip)·TrSample over the candidate-sample count.
type RenderCal struct {
	TrSample time.Duration `json:"tr_sample_ns"`
}

// Validate checks the schema version and that every transport's
// parameters pass costmodel validation (all constants positive).
func (p *Profile) Validate() error {
	if p.Version != ProfileVersion {
		return fmt.Errorf("autotune: profile version %d, want %d", p.Version, ProfileVersion)
	}
	if len(p.Transports) == 0 {
		return fmt.Errorf("autotune: profile has no transports")
	}
	for name, params := range p.Transports {
		if err := params.Validate(); err != nil {
			return fmt.Errorf("autotune: transport %q: %w", name, err)
		}
	}
	if p.Render != nil && p.Render.TrSample <= 0 {
		return fmt.Errorf("autotune: render calibration has non-positive T_r %v", p.Render.TrSample)
	}
	return nil
}

// Params returns the parameter set calibrated for transport. An absent
// transport is an explicit error — callers must never silently model
// TCP traffic with in-process constants or vice versa.
func (p *Profile) Params(transport string) (costmodel.Params, error) {
	params, ok := p.Transports[transport]
	if !ok {
		return costmodel.Params{}, fmt.Errorf("autotune: profile has no transport %q (have %v)",
			transport, p.transportNames())
	}
	return params, nil
}

func (p *Profile) transportNames() []string {
	names := make([]string, 0, len(p.Transports))
	for name := range p.Transports {
		names = append(names, name)
	}
	return names
}

// Encode writes the profile as indented JSON.
func (p *Profile) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// WriteFile writes the profile to path as indented JSON.
func (p *Profile) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := p.Encode(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// DecodeProfile reads and validates a profile from r.
func DecodeProfile(r io.Reader) (*Profile, error) {
	var p Profile
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("autotune: decoding profile: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// LoadProfile reads and validates a profile from a JSON file.
func LoadProfile(path string) (*Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p, err := DecodeProfile(f)
	if err != nil {
		return nil, fmt.Errorf("autotune: %s: %w", path, err)
	}
	return p, nil
}

// DefaultProfile returns a profile carrying the paper's SP2 preset for
// every transport — the fallback when no calibration has run. The
// relative ordering of methods under SP2 parameters is the paper's; the
// selector's EWMA correction then adapts the scale to the host.
func DefaultProfile() *Profile {
	return &Profile{
		Version: ProfileVersion,
		Host:    CurrentHost(),
		Transports: map[string]costmodel.Params{
			TransportMP:    costmodel.SP2(),
			TransportMPNet: costmodel.SP2(),
		},
	}
}
