package autotune

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
	"time"

	"sortlast/internal/core"
	"sortlast/internal/costmodel"
	"sortlast/internal/frame"
	"sortlast/internal/rle"
	"sortlast/internal/stats"
	"sortlast/internal/tilecomp"
)

// MethodAuto is the method name that requests adaptive per-frame
// selection, accepted wherever a concrete method name is.
const MethodAuto = "auto"

// IsAuto reports whether a method name requests adaptive selection.
func IsAuto(method string) bool { return method == MethodAuto }

// Candidates are the methods the selector chooses among: every
// registered method carrying a closed-form cost model — the paper's
// four evaluated methods, the §3.3 interleaved-compression variant, and
// the tile-routed pair (ds, dfb) from internal/tilecomp. All of them
// serve non-power-of-two worlds (the binary-swap family folds, the
// tile-routed pair runs natively at any P), so an "auto" request is
// valid wherever a fixed method request is. Importing this package
// links tilecomp, so the registry is always fully populated here.
func Candidates() []string {
	return core.ModelBacked()
}

// bsbrlcOverhead models BSBRLC's interleave bookkeeping relative to
// BSBRC: the same scans and bytes plus per-section code framing. The
// model alone cannot separate the two (they move the same pixels), so
// BSBRLC starts slightly behind and must earn selection through its
// measured EWMA factor.
const bsbrlcOverhead = 1.02

// Prediction is the modeled cost of one method for one feature vector.
type Prediction struct {
	Method string        `json:"method"`
	Comp   time.Duration `json:"comp"`
	Comm   time.Duration `json:"comm"`
	// Factor is the EWMA correction applied at ranking time.
	Factor float64 `json:"factor"`
	// Score is (Comp+Comm)·Factor — what the argmin ranks.
	Score time.Duration `json:"score"`
}

// Predict evaluates the Eq. 1–8 closed forms for one method over a
// feature vector. The per-stage sums collapse: Σ_{k=1..n} A/2^k =
// A(1-1/P), with n = log2 P swap stages (a non-power-of-two world folds
// first; the fold is charged as one extra dense exchange of the
// fractional remainder).
func Predict(p costmodel.Params, method string, f Features) (costmodel.Cost, error) {
	if !f.valid() {
		return costmodel.Cost{}, fmt.Errorf("autotune: invalid features %+v", f)
	}
	area := float64(f.Width * f.Height)
	stages := float64(bits.Len(uint(f.P - 1))) // ⌈log2 P⌉
	// Total dense pixels delivered to one rank across the swap.
	sumHalves := area * (1 - 1/float64(f.P))
	// Run-length codes covering one frame of area: a blank lead plus a
	// non-blank length per run, per occupied scanline.
	frameCodes := 2 * f.Runs * float64(f.Height)

	alpha, beta := clamp01(f.Alpha), clamp01(f.Beta)
	if beta < alpha {
		beta = alpha // a rectangle can never be smaller than its content
	}

	dur := func(per time.Duration, n float64) time.Duration {
		return time.Duration(float64(per) * n)
	}
	var comp, comm time.Duration
	startup := dur(p.Ts, stages)
	switch method {
	case "bs":
		// Eq. 1/2: every delivered pixel is composited, every half is
		// shipped dense.
		comp = dur(p.To, sumHalves)
		comm = startup + dur(p.Tc, float64(frame.PixelBytes)*sumHalves)
	case "bsbr":
		// Eq. 3/4: one O(A) bounding scan, then rectangle-clipped dense
		// exchange — β of the pixels, still composited dense.
		comp = dur(p.Tbound, area) + dur(p.To, beta*sumHalves)
		comm = startup + dur(p.Tc, float64(frame.PixelBytes)*beta*sumHalves+float64(frame.RectBytes)*stages)
	case "bslc":
		// Eq. 5/6: encode scans the full half every stage; only non-blank
		// pixels ship and composite, plus the run-length codes.
		comp = dur(p.Tencode, sumHalves) + dur(p.To, alpha*sumHalves)
		comm = startup + dur(p.Tc,
			float64(frame.PixelBytes)*alpha*sumHalves+float64(rle.CodeBytes)*frameCodes)
	case "bsbrc", "bsbrlc":
		// Eq. 7/8: one O(A) bounding scan, encode scans only the sending
		// rectangle (β of the half), non-blank pixels ship and composite.
		comp = dur(p.Tbound, area) + dur(p.Tencode, beta*sumHalves) + dur(p.To, alpha*sumHalves)
		comm = startup + dur(p.Tc,
			float64(frame.PixelBytes)*alpha*sumHalves+
				float64(rle.CodeBytes)*frameCodes+
				float64(frame.RectBytes)*stages)
		if method == "bsbrlc" {
			comp = time.Duration(float64(comp) * bsbrlcOverhead)
		}
	case "ds", "dfb":
		// Tile-routed closed forms (internal/costmodel, tilerouted.go):
		// one route round to static owners, so the delivered pixels are
		// one frame's non-blank content spread across P owners instead of
		// binary swap's A(1-1/P) per rank.
		sp := costmodel.Sparsity{
			Area: area, Alpha: alpha, Beta: beta,
			FrameCodes: frameCodes, P: f.P,
		}
		var cost costmodel.Cost
		if method == "ds" {
			cost = p.DirectSendCost(sp)
		} else {
			cost = p.TileRoutedCost(sp, tilecomp.DefaultTile)
		}
		comp, comm = cost.Comp, cost.Comm
	default:
		return costmodel.Cost{}, fmt.Errorf("autotune: no model for method %q", method)
	}
	return costmodel.Cost{Comp: comp, Comm: comm}, nil
}

// Choice is one selection decision: the winning method and the full
// ranking it was drawn from.
type Choice struct {
	Method      string       `json:"method"`
	Features    Features     `json:"features"`
	Predictions []Prediction `json:"predictions"` // ascending by Score
}

// ewmaLambda weights a new measurement against the standing correction
// factor. 0.3 converges in a handful of frames yet rides out a single
// anomalous one.
const ewmaLambda = 0.3

// Factor bounds keep one wild measurement (GC pause, cold cache) from
// exiling a method permanently.
const (
	minFactor = 0.05
	maxFactor = 20.0
)

// Selector picks a compositing method per frame from a calibrated
// model, and corrects itself from measurements. It is safe for
// concurrent use; a serving tier shares one selector across requests so
// the corrections accumulate.
type Selector struct {
	params    costmodel.Params
	transport string

	mu       sync.Mutex
	feats    Features
	hasFeats bool
	factors  map[string]float64
	selected map[string]int
	observed int
	last     *Choice
}

// NewSelector builds a selector over one transport's calibrated
// parameters. transport is recorded for introspection only.
func NewSelector(params costmodel.Params, transport string) *Selector {
	s := &Selector{params: params, transport: transport,
		factors:  make(map[string]float64, len(Candidates())),
		selected: make(map[string]int, len(Candidates())),
	}
	for _, m := range Candidates() {
		s.factors[m] = 1
	}
	return s
}

// Params returns the model parameters the selector ranks with.
func (s *Selector) Params() costmodel.Params { return s.params }

// Transport returns the transport the parameters were calibrated for.
func (s *Selector) Transport() string { return s.transport }

// Seed installs a feature vector (typically from Prescan or
// ScanFeatures) as the current frame description.
func (s *Selector) Seed(f Features) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f.valid() {
		s.feats, s.hasFeats = f, true
	}
}

// Features returns the current feature vector, false when none has been
// seeded or observed yet.
func (s *Selector) Features() (Features, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.feats, s.hasFeats
}

// Choose ranks every candidate for the given features and returns the
// argmin. It does not mutate the stored feature vector.
func (s *Selector) Choose(f Features) (Choice, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.chooseLocked(f)
}

// ChooseFor selects for a target frame geometry using the stored
// feature vector; ok is false when nothing has been seeded yet (the
// caller should Prescan and Seed first).
func (s *Selector) ChooseFor(width, height, p int) (Choice, bool, error) {
	return s.ChooseForQuality(width, height, p, "")
}

// ChooseForQuality is ChooseFor under a quality contract: predictions
// rank with that contract's correction row, so the Eq. 1–8 argmin runs
// per contract (an approx frame's thinned images earn corrections of
// their own instead of polluting the full-quality row).
func (s *Selector) ChooseForQuality(width, height, p int, quality string) (Choice, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.hasFeats {
		return Choice{}, false, nil
	}
	f := s.feats.WithTarget(width, height, p)
	f.Quality = quality
	c, err := s.chooseLocked(f)
	return c, err == nil, err
}

// factorKey buckets correction state per (method, quality contract).
// Full-quality shares the bare method key — seeding, snapshots and every
// pre-contract caller keep their meaning — while other contracts get a
// composite "method@quality" row of their own.
func factorKey(method, quality string) string {
	if quality == "" || quality == "full" {
		return method
	}
	return method + "@" + quality
}

// factorLocked returns the EWMA correction for one (method, quality)
// row; rows not yet observed start at the uncorrected 1.
func (s *Selector) factorLocked(method, quality string) float64 {
	if v, ok := s.factors[factorKey(method, quality)]; ok {
		return v
	}
	return 1
}

func (s *Selector) chooseLocked(f Features) (Choice, error) {
	preds := make([]Prediction, 0, len(Candidates()))
	for _, m := range Candidates() {
		cost, err := Predict(s.params, m, f)
		if err != nil {
			return Choice{}, err
		}
		factor := s.factorLocked(m, f.Quality)
		preds = append(preds, Prediction{
			Method: m, Comp: cost.Comp, Comm: cost.Comm,
			Factor: factor,
			Score:  time.Duration(float64(cost.Total()) * factor),
		})
	}
	sort.SliceStable(preds, func(i, j int) bool { return preds[i].Score < preds[j].Score })
	ch := Choice{Method: preds[0].Method, Features: f, Predictions: preds}
	s.selected[factorKey(ch.Method, f.Quality)]++
	s.last = &ch
	return ch, nil
}

// Observe feeds one measured compositing wall time (the slowest rank,
// communication waits included) back into the chosen method's EWMA
// correction factor. The factor is the standing ratio of measured to
// modeled time; predictions are multiplied by it at ranking time, so a
// method the model flatters loses ground until its factor says
// otherwise. Features f must be the vector the frame was selected with.
func (s *Selector) Observe(method string, f Features, measured time.Duration) {
	if measured <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.factors[method]; !ok {
		return // not a candidate (fixed-method frame); nothing to correct
	}
	cost, err := Predict(s.params, method, f)
	if err != nil || cost.Total() <= 0 {
		return
	}
	// The measurement lands in the row of the contract the frame was
	// selected under (f carries it), lazily creating non-full rows.
	key := factorKey(method, f.Quality)
	ratio := float64(measured) / float64(cost.Total())
	factor := (1-ewmaLambda)*s.factorLocked(method, f.Quality) + ewmaLambda*ratio
	s.factors[key] = math.Min(math.Max(factor, minFactor), maxFactor)
	s.observed++
}

// UpdateFromStats replaces the stored feature vector with one derived
// from a completed frame's exact counters (see StatsFeatures), so the
// next frame predicts from what actually just rendered instead of a
// stale pre-scan.
func (s *Selector) UpdateFromStats(width, height, p int, method string, ranks []*stats.Rank) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f := StatsFeatures(s.feats, width, height, p, method, ranks)
	if f.valid() {
		s.feats, s.hasFeats = f, true
	}
}

// Snapshot is the introspection surface served by /debug/autotune: the
// model parameters, the standing features, the latest full ranking, the
// EWMA factors and the per-method selection counts.
type Snapshot struct {
	Transport  string             `json:"transport"`
	Params     costmodel.Params   `json:"params"`
	Features   *Features          `json:"features,omitempty"`
	LastChoice *Choice            `json:"last_choice,omitempty"`
	Factors    map[string]float64 `json:"factors"`
	Selected   map[string]int     `json:"selected"`
	Observed   int                `json:"observed"`
}

// Snapshot returns a copy of the selector's current state.
func (s *Selector) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := Snapshot{
		Transport: s.transport,
		Params:    s.params,
		Factors:   make(map[string]float64, len(s.factors)),
		Selected:  make(map[string]int, len(s.selected)),
		Observed:  s.observed,
	}
	for m, v := range s.factors {
		snap.Factors[m] = v
	}
	for m, n := range s.selected {
		snap.Selected[m] = n
	}
	if s.hasFeats {
		f := s.feats
		snap.Features = &f
	}
	if s.last != nil {
		ch := *s.last
		snap.LastChoice = &ch
	}
	return snap
}
