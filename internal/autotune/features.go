package autotune

import (
	"sortlast/internal/frame"
	"sortlast/internal/render"
	"sortlast/internal/stats"
	"sortlast/internal/transfer"
	"sortlast/internal/volume"
)

// Features are the cheap sparsity inputs of the selection model — the
// quantities the paper's equations depend on beyond the machine
// constants. They describe one frame of one workload at one processor
// count.
type Features struct {
	// Width and Height are the full-frame dimensions (A = Width·Height).
	Width  int `json:"width"`
	Height int `json:"height"`
	// P is the processor count (sets the number of swap stages).
	P int `json:"p"`

	// Alpha is the non-blank fraction of the full frame (A_opaque/A) —
	// what run-length compression saves.
	Alpha float64 `json:"alpha"`
	// Beta is the bounding-rectangle fraction of the full frame
	// (A_rect/A) — what bounding rectangles save.
	Beta float64 `json:"beta"`
	// Runs is the average number of non-blank runs per full-frame
	// scanline — what run-length codes cost (R_code ≈ 2·Runs·Height).
	Runs float64 `json:"runs"`

	// Skip is the renderer-side sparsity: the fraction of candidate ray
	// samples macro-cell empty-space skipping removed. The compositing
	// cost model (Eq. 1–8) does not consume it — it rides along so the
	// selector's observers and reports can correlate render-side
	// sparsity with the frame sparsity Alpha/Beta capture. Zero when
	// unobserved.
	Skip float64 `json:"skip,omitempty"`

	// Quality is the frame's quality contract ("" or "full", "approx",
	// "preview"). The Eq. 1–8 closed forms never read it; it routes the
	// selection and its measurement into the selector's per-contract
	// EWMA row, so the argmin learns each contract's cost surface
	// separately (approx frames are thinner, preview frames smaller).
	Quality string `json:"quality,omitempty"`
}

// WithTarget returns f rescaled to a target frame geometry: the
// sparsity fractions (Alpha, Beta, Runs-per-line) carry over — they are
// resolution-independent for the same scene — while the absolute
// dimensions and processor count are replaced.
func (f Features) WithTarget(width, height, p int) Features {
	f.Width, f.Height, f.P = width, height, p
	return f
}

// valid reports whether the features describe an actual frame.
func (f Features) valid() bool {
	return f.Width > 0 && f.Height > 0 && f.P > 0
}

// clamp01 bounds fractions measured from noisy counters.
func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// ScanFeatures extracts the feature vector from an actual image by one
// full scan: bounding rectangle, non-blank count and per-scanline run
// count. This is the frame-1 pre-scan seed; subsequent frames derive
// their features from stats counters the run produced anyway.
func ScanFeatures(img *frame.Image, p int) Features {
	full := img.Full()
	f := Features{Width: full.Dx(), Height: full.Dy(), P: p}
	area := full.Area()
	if area == 0 {
		return f
	}
	br, _ := img.BoundingRect(full)
	f.Beta = clamp01(float64(br.Area()) / float64(area))
	nonBlank, runs := 0, 0
	for y := full.Y0; y < full.Y1; y++ {
		inRun := false
		for x := full.X0; x < full.X1; x++ {
			if img.At(x, y).Blank() {
				inRun = false
				continue
			}
			nonBlank++
			if !inRun {
				runs++
				inRun = true
			}
		}
	}
	f.Alpha = clamp01(float64(nonBlank) / float64(area))
	f.Runs = float64(runs) / float64(full.Dy())
	return f
}

// prescanSize is the probe resolution of Prescan. The sparsity
// fractions are nearly resolution-independent, so a coarse probe
// costs ~9k rays and still lands within a few percent of the full-
// resolution values.
const prescanSize = 96

// Prescan renders a low-resolution probe frame of the whole volume from
// the requested viewpoint and extracts features scaled to the target
// frame geometry. It is the frame-1 seed when no previous frame exists:
// one serial ray cast at prescanSize², orders of magnitude cheaper than
// the real frame.
func Prescan(vol *volume.Volume, tf *transfer.Func, width, height, p int, rotX, rotY float64) Features {
	cam := render.NewCamera(prescanSize, prescanSize, vol.Bounds(), rotX, rotY)
	// The probe renders through the production kernel (macro-cell
	// skipping included), so its skip counters measure exactly what the
	// real frame will see.
	var rs render.Stats
	img := render.Raycast(vol, vol.Bounds(), cam, tf, render.Options{Workers: 1, Stats: &rs})
	f := ScanFeatures(img, p)
	f.Skip = clamp01(rs.Snapshot().SkipFraction())
	// Runs per scanline grows with horizontal resolution for dithered
	// content but is flat for the smooth opacity fields volumes produce;
	// keep the probe's per-line count and let EWMA absorb the residual.
	return f.WithTarget(width, height, p)
}

// StatsFeatures derives the next frame's feature vector from the
// previous frame's exact per-rank counters, refining prev (the features
// the frame was predicted with). Different methods observe different
// quantities — BS sees no bounding rectangle, BS/BSBR count no runs —
// so unobservable components carry over from prev unchanged.
func StatsFeatures(prev Features, width, height, p int, method string, ranks []*stats.Rank) Features {
	f := prev.WithTarget(width, height, p)
	area := width * height
	if area == 0 || len(ranks) == 0 {
		return f
	}
	var recv, composited, codes int
	var evaluated, skipped int
	for _, r := range ranks {
		if r == nil {
			continue
		}
		recv += r.Fold.RecvPixels
		composited += r.Fold.Composited
		codes += r.Fold.Codes
		evaluated += r.Render.Samples
		skipped += r.Render.SamplesSkipped
		for i := range r.Stages {
			s := &r.Stages[i]
			recv += s.RecvPixels
			composited += s.Composited
			codes += s.Codes
		}
	}
	// The renderer's skip fraction is method-independent: observable
	// whenever the frame carried render counters, even if compositing
	// delivered nothing.
	if evaluated+skipped > 0 {
		f.Skip = clamp01(float64(skipped) / float64(evaluated+skipped))
	}
	if recv == 0 {
		return f
	}
	density := clamp01(float64(composited) / float64(recv))
	// Across a binary swap, each rank receives ~A/2 + A/4 + … = A(1-1/P)
	// pixels of dense delivery, so the whole world receives ~A(P-1).
	denseRecv := float64(area) * float64(max(p-1, 1))
	switch method {
	case "bsbr", "bsbrc", "bsbrlc", "BSBR", "BSBRC", "BSBRLC":
		// Delivered regions are bounding rectangles: their total area
		// over dense delivery estimates Beta, and the non-blank density
		// inside them recovers Alpha = density·Beta.
		f.Beta = clamp01(float64(recv) / denseRecv)
		f.Alpha = clamp01(density * f.Beta)
	case "ds", "dfb", "DS", "DFB":
		// Tile-routed delivery lands each encoded region on exactly one
		// owner, so world-wide the received rectangle area is about one
		// frame's bounding-rectangle content: Beta estimates against a
		// single frame of area, and the codes cover one frame, not P-1.
		f.Beta = clamp01(float64(recv) / float64(area))
		f.Alpha = clamp01(density * f.Beta)
		if codes > 0 {
			f.Runs = float64(codes) / (2 * float64(height))
		}
		return f
	default:
		// Delivered regions are dense halves (BS) or owned interleaves
		// (BSLC): density estimates Alpha directly; Beta is unobserved.
		f.Alpha = density
	}
	if codes > 0 {
		// Each frame's encoded regions sum to ~(P-1) frames of area, and
		// a run costs two codes (blank lead + non-blank length).
		f.Runs = float64(codes) / (2 * float64(height) * float64(max(p-1, 1)))
	}
	return f
}
