package autotune

import (
	"fmt"
	"net"
	"sync"
	"time"

	"sortlast/internal/costmodel"
	"sortlast/internal/frame"
	"sortlast/internal/mp"
	"sortlast/internal/mpnet"
	"sortlast/internal/render"
	"sortlast/internal/rle"
	"sortlast/internal/transfer"
	"sortlast/internal/volume"
)

// CalibrateOptions configure a calibration run.
type CalibrateOptions struct {
	// Quick shortens every microbenchmark (~10× fewer repetitions):
	// noisier constants, but finishes in well under a second — what CI
	// runs to keep the calibration path from rotting.
	Quick bool
	// Transports to calibrate; default both mp and mpnet.
	Transports []string
}

func (o CalibrateOptions) transports() []string {
	if len(o.Transports) == 0 {
		return []string{TransportMP, TransportMPNet}
	}
	return o.Transports
}

// repetition budgets: a measurement loop runs until its floor duration
// elapses, so constants come from wall time over exact work counts
// rather than a fixed iteration guess.
func (o CalibrateOptions) computeFloor() time.Duration {
	if o.Quick {
		return 5 * time.Millisecond
	}
	return 60 * time.Millisecond
}

func (o CalibrateOptions) pingpongReps(quickReps, fullReps int) int {
	if o.Quick {
		return quickReps
	}
	return fullReps
}

// Calibrate measures the five cost-model constants on this host and
// returns a versioned machine profile. The compute constants (T_o,
// T_encode, T_bound) are transport-independent and measured once; T_s
// and T_c are measured per transport by a two-point ping-pong fit.
func Calibrate(opts CalibrateOptions) (*Profile, error) {
	to := measureTo(opts)
	tenc := measureTencode(opts)
	tbound := measureTbound(opts)

	prof := &Profile{
		Version:    ProfileVersion,
		CreatedAt:  time.Now().UTC(),
		Host:       CurrentHost(),
		Quick:      opts.Quick,
		Transports: make(map[string]costmodel.Params, 2),
		Render:     &RenderCal{TrSample: measureTr(opts)},
	}
	for _, tr := range opts.transports() {
		ts, tc, err := measureTransport(tr, opts)
		if err != nil {
			return nil, fmt.Errorf("autotune: calibrating %s: %w", tr, err)
		}
		prof.Transports[tr] = costmodel.Params{
			Ts: ts, Tc: tc, To: to, Tencode: tenc, Tbound: tbound,
		}
	}
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	return prof, nil
}

// atLeast1ns keeps a constant positive: on a fast host a per-byte or
// per-pixel time can round below the nanosecond resolution of
// time.Duration, and a zero constant fails profile validation.
func atLeast1ns(d time.Duration) time.Duration {
	if d < time.Nanosecond {
		return time.Nanosecond
	}
	return d
}

// perUnit converts a measured wall time over n units into a per-unit
// duration, rounding half-up so sub-nanosecond costs stay positive.
func perUnit(total time.Duration, n int) time.Duration {
	if n <= 0 {
		return time.Nanosecond
	}
	return atLeast1ns(time.Duration((float64(total) + float64(n)/2) / float64(n)))
}

// calSize is the square benchmark region: large enough to defeat cache
// residency games, small enough to iterate quickly.
const calSize = 256

// measureTo times the over operator per delivered pixel: dense source
// pixels composited into an image region, the exact loop BS runs per
// stage (frame.CompositeRegion).
func measureTo(opts CalibrateOptions) time.Duration {
	region := frame.Rect{X0: 0, Y0: 0, X1: calSize, Y1: calSize}
	img := frame.NewImageBounds(calSize, calSize, region)
	src := make([]frame.Pixel, region.Area())
	for i := range src {
		src[i] = frame.Pixel{I: 0.25, A: 0.5}
	}
	floor := opts.computeFloor()
	pixels := 0
	start := time.Now()
	for time.Since(start) < floor {
		img.CompositeRegion(region, src, true)
		pixels += region.Area()
	}
	return perUnit(time.Since(start), pixels)
}

// measureTencode times the run-length encoder per scanned pixel over a
// representative half-sparse region (alternating runs of blank and
// non-blank), the per-stage scan BSLC/BSBRC pay.
func measureTencode(opts CalibrateOptions) time.Duration {
	region := frame.Rect{X0: 0, Y0: 0, X1: calSize, Y1: calSize}
	img := frame.NewImageBounds(calSize, calSize, region)
	for y := 0; y < calSize; y++ {
		for x := 0; x < calSize; x++ {
			if (x/17+y/11)%2 == 0 {
				img.Set(x, y, frame.Pixel{I: 0.25, A: 0.5})
			}
		}
	}
	var enc rle.Encoding
	floor := opts.computeFloor()
	pixels := 0
	start := time.Now()
	for time.Since(start) < floor {
		rle.EncodeRect(img, region, &enc)
		pixels += region.Area()
	}
	return perUnit(time.Since(start), pixels)
}

// measureTbound times the bounding-rectangle scan per examined pixel
// (frame.Image.BoundingRect), the O(A) first-stage scan of BSBR/BSBRC.
func measureTbound(opts CalibrateOptions) time.Duration {
	region := frame.Rect{X0: 0, Y0: 0, X1: calSize, Y1: calSize}
	img := frame.NewImageBounds(calSize, calSize, region)
	// A sparse diagonal band: the scan still touches every pixel, but
	// the blank fast path dominates the way it does on real frames.
	for i := 0; i < calSize; i++ {
		img.Set(i, i, frame.Pixel{I: 0.25, A: 0.5})
	}
	floor := opts.computeFloor()
	pixels := 0
	start := time.Now()
	for time.Since(start) < floor {
		_, scanned := img.BoundingRect(region)
		pixels += scanned
	}
	return perUnit(time.Since(start), pixels)
}

// measureTr times the ray caster per *evaluated* sample over a
// representative dense-ish workload, through the production kernel —
// macro-cell skipping, precomputed tables and all — so the constant
// reflects what a sample actually costs after acceleration. The
// evaluated-sample count comes from the kernel's own counters, so
// skipped samples do not dilute the estimate.
func measureTr(opts CalibrateOptions) time.Duration {
	vol := volume.EngineBlock(64, 64, 28)
	tf := transfer.EngineLow()
	cam := render.NewCamera(96, 96, vol.Bounds(), 20, 30)
	vol.MacroCells() // the grid build is amortized per dataset, not per sample
	var rs render.Stats
	floor := opts.computeFloor()
	start := time.Now()
	for time.Since(start) < floor {
		render.Raycast(vol, vol.Bounds(), cam, tf, render.Options{Workers: 1, Stats: &rs})
	}
	return perUnit(time.Since(start), int(rs.Snapshot().Samples))
}

// Ping-pong message sizes for the two-point linear fit
// t(n) = Ts + Tc·n. The small size isolates start-up latency; the
// large size amortizes it away so the slope is the per-byte cost.
const (
	pingSmall = 64
	pingLarge = 1 << 20
)

// measureTransport measures T_s and T_c for one transport by timing
// round trips at two message sizes between two ranks and solving the
// linear model. The half-round-trip at each size gives
// t(n) = Ts + Tc·n; two sizes give the slope and intercept.
func measureTransport(transport string, opts CalibrateOptions) (ts, tc time.Duration, err error) {
	var comms []mp.Comm
	var shutdown func()
	switch transport {
	case TransportMP:
		w, err := mp.NewWorld(2, mp.Options{})
		if err != nil {
			return 0, 0, err
		}
		c0, err := w.Comm(0)
		if err != nil {
			w.Shutdown()
			return 0, 0, err
		}
		c1, err := w.Comm(1)
		if err != nil {
			w.Shutdown()
			return 0, 0, err
		}
		comms = []mp.Comm{c0, c1}
		shutdown = w.Shutdown
	case TransportMPNet:
		nodes, err := loopbackPair()
		if err != nil {
			return 0, 0, err
		}
		comms = []mp.Comm{nodes[0].Comm(), nodes[1].Comm()}
		shutdown = func() {
			for _, n := range nodes {
				n.Close()
			}
		}
	default:
		return 0, 0, fmt.Errorf("unknown transport %q (want %s or %s)",
			transport, TransportMP, TransportMPNet)
	}
	defer shutdown()

	smallReps := opts.pingpongReps(50, 2000)
	largeReps := opts.pingpongReps(8, 100)
	tSmall, err := pingpong(comms, pingSmall, smallReps)
	if err != nil {
		return 0, 0, err
	}
	tLarge, err := pingpong(comms, pingLarge, largeReps)
	if err != nil {
		return 0, 0, err
	}
	// Two-point fit. The slope can only be non-positive if noise swamped
	// the large transfer, in which case the floor of 1ns stands in.
	slope := float64(tLarge-tSmall) / float64(pingLarge-pingSmall)
	tc = atLeast1ns(time.Duration(slope))
	ts = atLeast1ns(tSmall - time.Duration(slope*pingSmall))
	return ts, tc, nil
}

// pingpong measures the average half-round-trip for one payload size:
// rank 0 sends and awaits the echo, rank 1 echoes. A
// warm-up round trip runs first so connection and buffer setup is paid
// outside the measurement.
func pingpong(comms []mp.Comm, size, reps int) (time.Duration, error) {
	const tag = 7
	payload := make([]byte, size)
	errs := make([]error, 2)
	var elapsed time.Duration
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // rank 0: driver
		defer wg.Done()
		c := comms[0]
		if err := echoOnce(c, 1, tag, payload); err != nil {
			errs[0] = err
			return
		}
		start := time.Now()
		for i := 0; i < reps; i++ {
			if err := echoOnce(c, 1, tag, payload); err != nil {
				errs[0] = err
				return
			}
		}
		elapsed = time.Since(start)
	}()
	go func() { // rank 1: reflector
		defer wg.Done()
		c := comms[1]
		for i := 0; i < reps+1; i++ {
			msg, err := c.Recv(0, tag)
			if err != nil {
				errs[1] = err
				return
			}
			if err := c.Send(0, tag, msg); err != nil {
				errs[1] = err
				return
			}
		}
	}()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	// One rep is a full round trip: two messages of the same size.
	return elapsed / time.Duration(2*reps), nil
}

func echoOnce(c mp.Comm, peer, tag int, payload []byte) error {
	if err := c.Send(peer, tag, payload); err != nil {
		return err
	}
	_, err := c.Recv(peer, tag)
	return err
}

// loopbackPair builds a two-rank mpnet world over loopback ephemeral
// ports, the same way the serving tier's netResident does.
func loopbackPair() ([2]*mpnet.Node, error) {
	var nodes [2]*mpnet.Node
	listeners := make([]net.Listener, 2)
	addrs := make([]string, 2)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range listeners[:i] {
				l.Close()
			}
			return nodes, err
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			nodes[r], errs[r] = mpnet.Connect(mpnet.Config{
				Rank: r, Addrs: addrs, Listener: listeners[r],
				DialTimeout: 10 * time.Second,
			})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			for _, n := range nodes {
				if n != nil {
					n.Close()
				}
			}
			return nodes, fmt.Errorf("mpnet rank %d: %w", r, err)
		}
	}
	return nodes, nil
}
