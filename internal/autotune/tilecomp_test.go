package autotune

import (
	"testing"

	"sortlast/internal/core"
	"sortlast/internal/costmodel"
	"sortlast/internal/stats"
)

// The candidate set derives from the registry: all model-backed methods,
// including the tile-routed pair, with no hardcoded copy to drift.
func TestCandidatesFromRegistry(t *testing.T) {
	cands := Candidates()
	if len(cands) != 7 {
		t.Fatalf("candidates = %v, want 7", cands)
	}
	have := map[string]bool{}
	for _, m := range cands {
		have[m] = true
		if s, ok := core.Lookup(m); !ok || !s.Caps.ModelBacked {
			t.Errorf("candidate %q not a model-backed registry method", m)
		}
		if !core.ServesAnyP(m) {
			t.Errorf("candidate %q cannot serve non-power-of-two P; auto would break admission", m)
		}
	}
	for _, m := range []string{"bs", "bsbr", "bslc", "bsbrc", "bsbrlc", "ds", "dfb"} {
		if !have[m] {
			t.Errorf("candidate %q missing from %v", m, cands)
		}
	}
}

// Predict must rank the tile-routed methods with the shared closed
// forms: positive costs, dfb paying framing over ds, and both within an
// order of magnitude of bsbrc (same gloss, different round structure).
func TestPredictTileRouted(t *testing.T) {
	p := costmodel.SP2()
	f := Features{Width: 384, Height: 384, P: 6, Alpha: 0.05, Beta: 0.2, Runs: 4}
	ds, err := Predict(p, "ds", f)
	if err != nil {
		t.Fatal(err)
	}
	dfb, err := Predict(p, "dfb", f)
	if err != nil {
		t.Fatal(err)
	}
	bsbrc, err := Predict(p, "bsbrc", f)
	if err != nil {
		t.Fatal(err)
	}
	for label, c := range map[string]costmodel.Cost{"ds": ds, "dfb": dfb} {
		if c.Comp <= 0 || c.Comm <= 0 {
			t.Fatalf("%s: non-positive cost %+v", label, c)
		}
	}
	if dfb.Comm <= ds.Comm {
		t.Errorf("dfb comm %v not above ds comm %v", dfb.Comm, ds.Comm)
	}
	ratio := float64(ds.Total()) / float64(bsbrc.Total())
	if ratio < 0.1 || ratio > 10 {
		t.Errorf("ds/bsbrc total ratio %v: forms not comparable", ratio)
	}
}

// StatsFeatures must read tile-routed delivery correctly: world-wide
// received rectangle area is about one frame's bounding-rectangle
// content, and the codes cover one frame.
func TestStatsFeaturesTileRouted(t *testing.T) {
	// 100x100 frame, P=4: ranks received 2000 px of rect area total,
	// 500 of them non-blank, 160 codes shipped.
	ranks := make([]*stats.Rank, 4)
	for i := range ranks {
		r := &stats.Rank{Method: "DS"}
		s := r.StageAt(1)
		s.RecvPixels = 500
		s.Composited = 125
		s.Codes = 40
		ranks[i] = r
	}
	prev := Features{Width: 100, Height: 100, P: 4, Alpha: 0.5, Beta: 0.5, Runs: 1}
	f := StatsFeatures(prev, 100, 100, 4, "ds", ranks)
	// Beta = 2000/10000 = 0.2; density 0.25 -> alpha = 0.05;
	// runs = 160/(2*100) = 0.8.
	if f.Beta < 0.199 || f.Beta > 0.201 {
		t.Errorf("beta = %v, want 0.2", f.Beta)
	}
	if f.Alpha < 0.049 || f.Alpha > 0.051 {
		t.Errorf("alpha = %v, want 0.05", f.Alpha)
	}
	if f.Runs < 0.79 || f.Runs > 0.81 {
		t.Errorf("runs = %v, want 0.8", f.Runs)
	}
}

// An auto selector must be able to pick a tile-routed method once its
// measured factor says so — the adaptivity path for methods whose win
// (single round, no stage lockstep) the work model cannot express.
func TestObservePromotesTileRouted(t *testing.T) {
	sel := NewSelector(costmodel.SP2(), TransportMP)
	f := Features{Width: 384, Height: 384, P: 8, Alpha: 0.03, Beta: 0.15, Runs: 4}
	first, err := sel.Choose(f)
	if err != nil {
		t.Fatal(err)
	}
	if first.Method == "ds" || first.Method == "dfb" {
		t.Fatalf("cold-start choice %q: work model should favor fewer startups", first.Method)
	}
	// Every binary-swap family member measures 10x over model; ds
	// measures at model.
	for i := 0; i < 30; i++ {
		for _, m := range []string{"bs", "bsbr", "bslc", "bsbrc", "bsbrlc"} {
			pred, err := Predict(sel.Params(), m, f)
			if err != nil {
				t.Fatal(err)
			}
			sel.Observe(m, f, 10*pred.Total())
		}
		pred, err := Predict(sel.Params(), "ds", f)
		if err != nil {
			t.Fatal(err)
		}
		sel.Observe("ds", f, pred.Total())
	}
	after, err := sel.Choose(f)
	if err != nil {
		t.Fatal(err)
	}
	if after.Method != "ds" && after.Method != "dfb" {
		t.Fatalf("selector did not promote tile-routed methods after measurements favored them: %q (%v)",
			after.Method, sel.Snapshot().Factors)
	}
}
