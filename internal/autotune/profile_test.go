package autotune

import (
	"path/filepath"
	"strings"
	"testing"

	"sortlast/internal/costmodel"
)

func TestProfileRoundTrip(t *testing.T) {
	prof := DefaultProfile()
	path := filepath.Join(t.TempDir(), "profile.json")
	if err := prof.WriteFile(path); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := LoadProfile(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if got.Version != ProfileVersion {
		t.Fatalf("version %d, want %d", got.Version, ProfileVersion)
	}
	for _, tr := range []string{TransportMP, TransportMPNet} {
		p, err := got.Params(tr)
		if err != nil {
			t.Fatalf("params %s: %v", tr, err)
		}
		if p != costmodel.SP2() {
			t.Fatalf("%s params %+v, want SP2", tr, p)
		}
	}
}

func TestProfileValidation(t *testing.T) {
	prof := DefaultProfile()
	prof.Version = 99
	if err := prof.Validate(); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("bad version must fail: %v", err)
	}
	prof = DefaultProfile()
	prof.Transports = nil
	if err := prof.Validate(); err == nil {
		t.Fatal("empty transports must fail")
	}
	prof = DefaultProfile()
	bad := costmodel.SP2()
	bad.Tc = 0
	prof.Transports[TransportMP] = bad
	if err := prof.Validate(); err == nil {
		t.Fatal("non-positive constant must fail")
	}
}

func TestProfileMissingTransport(t *testing.T) {
	prof := DefaultProfile()
	delete(prof.Transports, TransportMPNet)
	if _, err := prof.Params(TransportMPNet); err == nil {
		t.Fatal("missing transport must error, not fall back")
	}
}
