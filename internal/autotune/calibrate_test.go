package autotune

import (
	"testing"
	"time"
)

// A quick calibration must produce a valid profile for both transports
// with every constant positive. That mpnet's T_s/T_c exceed mp's is not
// asserted (loopback TCP on a fast host can be close to in-process),
// but the compute constants must be shared, since they are measured
// once.
func TestCalibrateQuick(t *testing.T) {
	prof, err := Calibrate(CalibrateOptions{Quick: true})
	if err != nil {
		t.Fatalf("calibrate: %v", err)
	}
	if err := prof.Validate(); err != nil {
		t.Fatalf("profile invalid: %v", err)
	}
	if !prof.Quick {
		t.Error("profile must record it came from a quick calibration")
	}
	mp, err := prof.Params(TransportMP)
	if err != nil {
		t.Fatal(err)
	}
	net, err := prof.Params(TransportMPNet)
	if err != nil {
		t.Fatal(err)
	}
	if mp.To != net.To || mp.Tencode != net.Tencode || mp.Tbound != net.Tbound {
		t.Errorf("compute constants must be shared across transports: mp=%+v net=%+v", mp, net)
	}
	// Sanity bounds: per-pixel compute on any modern host lands between
	// sub-nanosecond (clamped to 1ns) and tens of microseconds.
	for name, d := range map[string]time.Duration{
		"To": mp.To, "Tencode": mp.Tencode, "Tbound": mp.Tbound,
		"Ts(mp)": mp.Ts, "Tc(mp)": mp.Tc, "Ts(mpnet)": net.Ts, "Tc(mpnet)": net.Tc,
	} {
		if d <= 0 {
			t.Errorf("%s = %v, want positive", name, d)
		}
		if d > time.Second {
			t.Errorf("%s = %v, implausibly large", name, d)
		}
	}
}

func TestCalibrateSingleTransport(t *testing.T) {
	prof, err := Calibrate(CalibrateOptions{Quick: true, Transports: []string{TransportMP}})
	if err != nil {
		t.Fatalf("calibrate: %v", err)
	}
	if _, err := prof.Params(TransportMPNet); err == nil {
		t.Fatal("uncalibrated transport must be absent")
	}
}

func TestCalibrateUnknownTransport(t *testing.T) {
	if _, err := Calibrate(CalibrateOptions{Quick: true, Transports: []string{"carrier-pigeon"}}); err == nil {
		t.Fatal("unknown transport must error")
	}
}
