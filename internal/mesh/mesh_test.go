package mesh

import (
	"math"
	"testing"

	"sortlast/internal/partition"
	"sortlast/internal/volume"
)

func TestExtractEmptyAndFullCells(t *testing.T) {
	empty := volume.New(8, 8, 8)
	m := Extract(empty, CellsFor(empty.Bounds(), empty.Bounds()), 100)
	if m.Len() != 0 {
		t.Errorf("empty volume produced %d triangles", m.Len())
	}
	full := volume.New(8, 8, 8)
	full.Fill(full.Bounds(), 200)
	// Entirely-inside cells produce no surface; only the boundary does
	// (the outermost cells see the implicit zero outside... they do not:
	// CellsFor clips to interior cells, and all corners read 200).
	m = Extract(full, CellsFor(full.Bounds(), full.Bounds()), 100)
	if m.Len() != 0 {
		t.Errorf("uniform volume produced %d triangles", m.Len())
	}
}

func TestExtractSphereProperties(t *testing.T) {
	v := volume.Sphere(32, 32, 32, 0.7, 200)
	m := Extract(v, CellsFor(v.Bounds(), v.Bounds()), 100)
	if m.Len() < 500 {
		t.Fatalf("sphere surface has only %d triangles", m.Len())
	}
	// Every vertex must lie near the sphere of radius r = 0.7*16 = 11.2
	// centered at (16,16,16): within one cell diagonal.
	const r = 11.2
	for _, tri := range m.Tris {
		for _, p := range tri.V {
			d := math.Sqrt((p[0]-16)*(p[0]-16) + (p[1]-16)*(p[1]-16) + (p[2]-16)*(p[2]-16))
			if math.Abs(d-r) > 2.0 {
				t.Fatalf("vertex %v at distance %.2f from center, want ~%.1f", p, d, r)
			}
		}
	}
	lo, hi, ok := m.Bounds()
	if !ok {
		t.Fatal("bounds must exist")
	}
	for a := 0; a < 3; a++ {
		if lo[a] < 16-r-2 || hi[a] > 16+r+2 {
			t.Errorf("bounds [%v,%v] exceed sphere", lo, hi)
		}
	}
}

// Vertices lie exactly on the iso-level of the trilinear field along
// cell edges: interpolated positions must reproduce the threshold.
func TestExtractVerticesOnIsoLevel(t *testing.T) {
	v := volume.New(8, 8, 8)
	// A linear ramp along x: value = 32*x.
	for z := 0; z < 8; z++ {
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				v.Set(x, y, z, uint8(32*x))
			}
		}
	}
	const iso = 100
	m := Extract(v, CellsFor(v.Bounds(), v.Bounds()), iso)
	if m.Len() == 0 {
		t.Fatal("ramp must cross the iso level")
	}
	// The surface is the plane where 32*x = 100, i.e. x = 3.125.
	want := 100.0 / 32.0
	for _, tri := range m.Tris {
		for _, p := range tri.V {
			if math.Abs(p[0]-want) > 1e-9 {
				t.Fatalf("vertex x = %v, want %v", p[0], want)
			}
		}
	}
}

// Per-rank extraction covers every cell exactly once: the triangle count
// over the partition equals the serial count.
func TestExtractPartitionTilesCells(t *testing.T) {
	v := volume.HeadPhantom(32, 32, 16)
	serial := Extract(v, CellsFor(v.Bounds(), v.Bounds()), 150)
	for _, p := range []int{2, 4, 8} {
		dec, err := partition.Decompose(v.Bounds(), p)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		cellsSeen := 0
		for r := 0; r < p; r++ {
			cells := CellsFor(dec.Box(r), v.Bounds())
			cellsSeen += cells.Volume()
			total += Extract(v, cells, 150).Len()
		}
		if total != serial.Len() {
			t.Errorf("P=%d: partitioned triangles %d, serial %d", p, total, serial.Len())
		}
	}
}

// Extraction from a ghosted subvolume matches extraction from the full
// volume over the same cells.
func TestExtractFromSubvolume(t *testing.T) {
	v := volume.EngineBlock(32, 32, 16)
	box := volume.Box{Lo: [3]int{8, 8, 4}, Hi: [3]int{24, 24, 12}}
	sub, err := volume.Extract(v, box, 1)
	if err != nil {
		t.Fatal(err)
	}
	cells := CellsFor(box, v.Bounds())
	a := Extract(v, cells, 150)
	b := Extract(sub, cells, 150)
	if a.Len() != b.Len() {
		t.Fatalf("triangle counts differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Tris {
		if a.Tris[i] != b.Tris[i] {
			t.Fatalf("triangle %d differs", i)
		}
	}
}

func TestCellsForClipping(t *testing.T) {
	grid := volume.Box{Hi: [3]int{16, 16, 16}}
	// A box at the far corner: cells must clip one short of the grid.
	cells := CellsFor(volume.Box{Lo: [3]int{8, 8, 8}, Hi: [3]int{16, 16, 16}}, grid)
	if cells.Hi != [3]int{15, 15, 15} {
		t.Errorf("cells = %v", cells)
	}
	// A degenerate box collapses.
	if !CellsFor(volume.Box{Lo: [3]int{15, 0, 0}, Hi: [3]int{16, 1, 1}}, grid).Empty() == false {
		t.Log("single-layer box keeps its cells")
	}
	empty := CellsFor(volume.Box{Lo: [3]int{15, 15, 15}, Hi: [3]int{16, 16, 16}}, grid)
	if !empty.Empty() {
		t.Errorf("corner sliver cells = %v, want empty", empty)
	}
}

func TestNormalsNonDegenerate(t *testing.T) {
	v := volume.Sphere(24, 24, 24, 0.6, 255)
	m := Extract(v, CellsFor(v.Bounds(), v.Bounds()), 128)
	for i, tri := range m.Tris {
		if tri.Normal == ([3]float64{}) {
			t.Fatalf("triangle %d has zero normal", i)
		}
	}
}
