// Package mesh implements isosurface extraction — the surface-rendering
// substrate the paper's §1 lists alongside ray tracing ("the March cube
// algorithm for surface rendering"). Extraction uses marching tetrahedra
// (six tetrahedra per cell), which produces a crack-free triangle mesh
// with tiny, derivable case logic instead of marching cubes' 256-entry
// tables. Each grid cell is owned by exactly one rank of a partition, so
// per-subvolume extraction tiles the full surface without duplicates.
package mesh

import (
	"fmt"

	"sortlast/internal/volume"
)

// Triangle is one oriented surface triangle in volume coordinates, with
// its (unnormalized) face normal.
type Triangle struct {
	V      [3][3]float64
	Normal [3]float64
}

// Mesh is a triangle soup in volume (world) coordinates.
type Mesh struct {
	Tris []Triangle
}

// Len returns the triangle count.
func (m *Mesh) Len() int { return len(m.Tris) }

// Bounds returns the axis-aligned bounding box of the mesh vertices,
// or false when the mesh is empty.
func (m *Mesh) Bounds() (lo, hi [3]float64, ok bool) {
	if len(m.Tris) == 0 {
		return lo, hi, false
	}
	lo = m.Tris[0].V[0]
	hi = lo
	for _, t := range m.Tris {
		for _, v := range t.V {
			for a := 0; a < 3; a++ {
				if v[a] < lo[a] {
					lo[a] = v[a]
				}
				if v[a] > hi[a] {
					hi[a] = v[a]
				}
			}
		}
	}
	return lo, hi, true
}

// Source supplies voxel values in global coordinates; *volume.Volume and
// *volume.Subvolume both qualify.
type Source interface {
	At(x, y, z int) uint8
}

// cellCorner offsets: corner j of a cell has offset (j&1, j>>1&1, j>>2&1).
var corner = [8][3]int{
	{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {1, 1, 0},
	{0, 0, 1}, {1, 0, 1}, {0, 1, 1}, {1, 1, 1},
}

// tets decomposes a cell into six tetrahedra sharing the 0-7 diagonal,
// the standard crack-free subdivision (adjacent cells agree on face
// diagonals because the decomposition is translation-invariant).
var tets = [6][4]int{
	{0, 5, 1, 7}, {0, 1, 3, 7}, {0, 3, 2, 7},
	{0, 2, 6, 7}, {0, 6, 4, 7}, {0, 4, 5, 7},
}

// Extract builds the iso-surface of the scalar field at the given
// threshold (0..255 scale) over the cells whose minimum corner lies in
// cells (half-open, in voxel coordinates). Cells reference corner values
// at +1 offsets, so a Subvolume source needs ghost >= 1. The cell range
// is clipped so corner reads stay within grid for a full volume source.
func Extract(src Source, cells volume.Box, threshold uint8) *Mesh {
	m := &Mesh{}
	iso := float64(threshold)
	var vals [8]float64
	for z := cells.Lo[2]; z < cells.Hi[2]; z++ {
		for y := cells.Lo[1]; y < cells.Hi[1]; y++ {
			for x := cells.Lo[0]; x < cells.Hi[0]; x++ {
				inside := 0
				for j, c := range corner {
					v := float64(src.At(x+c[0], y+c[1], z+c[2]))
					vals[j] = v
					if v >= iso {
						inside++
					}
				}
				if inside == 0 || inside == 8 {
					continue // cell entirely outside or inside
				}
				base := [3]float64{float64(x), float64(y), float64(z)}
				for _, tet := range tets {
					marchTet(m, base, vals, tet, iso)
				}
			}
		}
	}
	return m
}

// CellsFor returns the cell range a rank owns for its subvolume box: all
// cells whose min corner lies inside the box, clipped so that corner
// reads stay inside the full grid.
func CellsFor(box, grid volume.Box) volume.Box {
	cells := box
	for a := 0; a < 3; a++ {
		// The last cell layer of the grid is grid.Hi-1 (corners reach
		// grid.Hi, reading zeros beyond via Source semantics is fine for
		// Volume but would need ghost for Subvolume; clip instead).
		limit := grid.Hi[a] - 1
		if cells.Hi[a] > limit {
			cells.Hi[a] = limit
		}
	}
	if cells.Empty() {
		return volume.Box{}
	}
	return cells
}

// marchTet emits the triangles of one tetrahedron.
func marchTet(m *Mesh, base [3]float64, vals [8]float64, tet [4]int, iso float64) {
	var code int
	for i, ci := range tet {
		if vals[ci] >= iso {
			code |= 1 << i
		}
	}
	if code == 0 || code == 15 {
		return
	}
	// Edge interpolation between two tet corners.
	point := func(a, b int) [3]float64 {
		ca, cb := tet[a], tet[b]
		va, vb := vals[ca], vals[cb]
		t := 0.5
		if va != vb {
			t = (iso - va) / (vb - va)
		}
		var p [3]float64
		for k := 0; k < 3; k++ {
			pa := base[k] + float64(corner[ca][k])
			pb := base[k] + float64(corner[cb][k])
			p[k] = pa + t*(pb-pa)
		}
		return p
	}
	emit := func(a, b, c [3]float64) {
		n := cross(sub(b, a), sub(c, a))
		if n == ([3]float64{}) {
			return // degenerate sliver
		}
		m.Tris = append(m.Tris, Triangle{V: [3][3]float64{a, b, c}, Normal: n})
	}

	// The 14 non-trivial sign patterns reduce to: one corner inside
	// (triangle), or two corners inside (quad). Complementary patterns
	// reuse the same geometry (shading is two-sided downstream).
	single := func(i int) {
		o1, o2, o3 := (i+1)&3, (i+2)&3, (i+3)&3
		emit(point(i, o1), point(i, o2), point(i, o3))
	}
	double := func(i, j int) {
		// The two outside corners.
		var outs []int
		for k := 0; k < 4; k++ {
			if k != i && k != j {
				outs = append(outs, k)
			}
		}
		p1 := point(i, outs[0])
		p2 := point(i, outs[1])
		p3 := point(j, outs[1])
		p4 := point(j, outs[0])
		emit(p1, p2, p3)
		emit(p1, p3, p4)
	}
	switch code {
	case 1, 14:
		single(0)
	case 2, 13:
		single(1)
	case 4, 11:
		single(2)
	case 8, 7:
		single(3)
	case 3, 12:
		double(0, 1)
	case 5, 10:
		double(0, 2)
	case 9, 6:
		double(0, 3)
	default:
		panic(fmt.Sprintf("mesh: unreachable tet code %d", code))
	}
}

func sub(a, b [3]float64) [3]float64 {
	return [3]float64{a[0] - b[0], a[1] - b[1], a[2] - b[2]}
}

func cross(a, b [3]float64) [3]float64 {
	return [3]float64{
		a[1]*b[2] - a[2]*b[1],
		a[2]*b[0] - a[0]*b[2],
		a[0]*b[1] - a[1]*b[0],
	}
}
