package mpnet

import (
	"context"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"sortlast/internal/mp"
)

// connectPair brings up a 2-rank TCP world on loopback.
func connectPair(t *testing.T) [2]*Node {
	t.Helper()
	listeners := make([]net.Listener, 2)
	addrs := make([]string, 2)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	var nodes [2]*Node
	var errs [2]error
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			nodes[r], errs[r] = Connect(Config{
				Rank: r, Addrs: addrs, Listener: listeners[r],
				DialTimeout: 10 * time.Second,
				Opts:        mp.Options{RecvTimeout: time.Minute},
			})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d connect: %v", r, err)
		}
	}
	return nodes
}

// Shutdown with both ranks quiescing must complete the barrier and
// return nil on both sides.
func TestShutdownQuiesced(t *testing.T) {
	nodes := connectPair(t)
	var wg sync.WaitGroup
	var errs [2]error
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			errs[r] = nodes[r].Shutdown(ctx)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Errorf("rank %d shutdown: %v", r, err)
		}
	}
}

// The documented foot-gun: rank 1 never quiesces (it is wedged in a
// receive that can never be satisfied). Rank 0's Shutdown must give up
// at its deadline and close anyway, which in turn fails rank 1's
// blocked receive promptly — and no goroutines may leak.
func TestShutdownUnblocksWedgedPeer(t *testing.T) {
	before := runtime.NumGoroutine()

	nodes := connectPair(t)
	recvDone := make(chan error, 1)
	go func() {
		_, err := nodes[1].Comm().Recv(0, 9) // rank 0 never sends tag 9
		recvDone <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the receive block

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := nodes[0].Shutdown(ctx)
	if err == nil {
		t.Error("Shutdown against a wedged peer must report the context error")
	}
	if since := time.Since(start); since > 5*time.Second {
		t.Errorf("Shutdown took %v, want prompt give-up at the deadline", since)
	}

	select {
	case err := <-recvDone:
		if err == nil {
			t.Error("blocked receive returned nil error after peer shutdown")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked receive did not fail after peer shutdown")
	}
	nodes[1].Close()

	// All readLoop / barrier goroutines must be gone.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}
