package mpnet

import (
	"net"
	"testing"
	"time"
)

// refusedAddr returns a loopback address with no listener: dials fail
// fast with connection refused.
func refusedAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// dialRetry must give up close to the deadline: its backoff sleeps are
// clamped to the remaining budget, so the total overshoot is bounded by
// one (fast) failed dial attempt, not by a full backoff period.
func TestDialRetryHonorsDeadline(t *testing.T) {
	addr := refusedAddr(t)
	const budget = 200 * time.Millisecond
	start := time.Now()
	_, err := dialRetry(addr, start.Add(budget))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("dial to a refused port succeeded")
	}
	if elapsed > budget+150*time.Millisecond {
		t.Errorf("dialRetry took %v for a %v budget: backoff slept past the deadline", elapsed, budget)
	}
}

// A past deadline fails immediately without dialing or sleeping.
func TestDialRetryExpiredDeadline(t *testing.T) {
	start := time.Now()
	if _, err := dialRetry(refusedAddr(t), start.Add(-time.Second)); err == nil {
		t.Fatal("expired deadline must fail")
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("expired-deadline dialRetry took %v", elapsed)
	}
}
