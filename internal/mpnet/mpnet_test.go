package mpnet

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"sortlast/internal/core"
	"sortlast/internal/frame"
	"sortlast/internal/mp"
	"sortlast/internal/partition"
	"sortlast/internal/render"
	"sortlast/internal/transfer"
	"sortlast/internal/volume"
)

// launch starts p ranks in-process over real TCP loopback sockets and
// runs fn on each; it returns the first error.
func launch(t *testing.T, p int, fn func(c mp.Comm) error) error {
	t.Helper()
	listeners := make([]net.Listener, p)
	addrs := make([]string, p)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			node, err := Connect(Config{
				Rank: r, Addrs: addrs, Listener: listeners[r],
				DialTimeout: 10 * time.Second,
				Opts:        mp.Options{RecvTimeout: 15 * time.Second},
			})
			if err != nil {
				errs[r] = err
				return
			}
			defer node.Close()
			errs[r] = fn(node.Comm())
			if errs[r] == nil {
				// Quiesce before closing, as Close documents.
				errs[r] = node.Comm().Barrier()
			}
		}(r)
	}
	wg.Wait()
	var all []string
	for r, err := range errs {
		if err != nil {
			all = append(all, fmt.Sprintf("rank %d: %v", r, err))
		}
	}
	if all != nil {
		return fmt.Errorf("%s", all)
	}
	return nil
}

func TestTCPSendRecv(t *testing.T) {
	err := launch(t, 2, func(c mp.Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 4, []byte("over tcp"))
		}
		msg, err := c.Recv(0, 4)
		if err != nil {
			return err
		}
		if string(msg) != "over tcp" {
			return fmt.Errorf("got %q", msg)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTCPCollectives(t *testing.T) {
	err := launch(t, 4, func(c mp.Comm) error {
		if err := c.Barrier(); err != nil {
			return err
		}
		sum, err := c.AllReduce(float64(c.Rank()), mp.OpSum)
		if err != nil {
			return err
		}
		if sum != 6 {
			return fmt.Errorf("allreduce = %v", sum)
		}
		out, err := c.Bcast(2, []byte{9})
		if err != nil {
			return err
		}
		if c.Rank() == 2 {
			out = []byte{9}
		}
		if len(out) != 1 || out[0] != 9 {
			return fmt.Errorf("bcast = %v", out)
		}
		parts, err := c.Gather(0, []byte{byte(c.Rank())})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			for r, p := range parts {
				if len(p) != 1 || p[0] != byte(r) {
					return fmt.Errorf("gather slot %d = %v", r, p)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTCPLargeOrderedMessages(t *testing.T) {
	const n = 30
	err := launch(t, 2, func(c mp.Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				buf := make([]byte, 100*1024)
				for j := range buf {
					buf[j] = byte(i)
				}
				if err := c.Send(1, 1, buf); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < n; i++ {
			msg, err := c.Recv(0, 1)
			if err != nil {
				return err
			}
			if len(msg) != 100*1024 || msg[0] != byte(i) || msg[len(msg)-1] != byte(i) {
				return fmt.Errorf("message %d corrupt", i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// The full sort-last pipeline must work unchanged over TCP — the
// distributed-memory deployment the paper targets.
func TestTCPFullPipeline(t *testing.T) {
	vol := volume.EngineBlock(32, 32, 16)
	tf := transfer.EngineLow()
	const p = 4
	cam := render.NewCamera(48, 48, vol.Bounds(), 20, 30)
	serial := render.Raycast(vol, vol.Bounds(), cam, tf, render.Options{EarlyTermination: -1})
	dec, err := partition.Decompose(vol.Bounds(), p)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var final *frame.Image
	err = launch(t, p, func(c mp.Comm) error {
		img := render.Raycast(vol, dec.Box(c.Rank()), cam, tf,
			render.Options{EarlyTermination: -1})
		res, err := core.BSBRC{}.Composite(c, dec, cam.Dir, img)
		if err != nil {
			return err
		}
		out, err := core.GatherImage(c, 0, res)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			mu.Lock()
			final = out
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := serial.MaxAbsDiff(final, serial.Full()); d > 1e-9 {
		t.Errorf("TCP pipeline image differs from serial by %g", d)
	}
}

func TestConnectValidation(t *testing.T) {
	if _, err := Connect(Config{Rank: 0, Addrs: nil}); err == nil {
		t.Error("empty address list must fail")
	}
	if _, err := Connect(Config{Rank: 2, Addrs: []string{"a", "b"}}); err == nil {
		t.Error("out-of-range rank must fail")
	}
}

func TestSingleRankWorld(t *testing.T) {
	node, err := Connect(Config{Rank: 0, Addrs: []string{"127.0.0.1:0"}})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	c := node.Comm()
	if c.Size() != 1 {
		t.Error("size must be 1")
	}
	if err := c.Barrier(); err != nil {
		t.Error(err)
	}
}

func TestDialTimeoutFailsFast(t *testing.T) {
	// Rank 1 dials rank 0, which never listens.
	start := time.Now()
	_, err := Connect(Config{
		Rank:        1,
		Addrs:       []string{"127.0.0.1:1", "127.0.0.1:0"},
		DialTimeout: 300 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("expected dial failure")
	}
	if time.Since(start) > 5*time.Second {
		t.Error("dial failure took too long")
	}
}

func TestPeerDisconnectFailsPendingRecv(t *testing.T) {
	listeners := make([]net.Listener, 2)
	addrs := make([]string, 2)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	var wg sync.WaitGroup
	var recvErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		node, err := Connect(Config{Rank: 0, Addrs: addrs, Listener: listeners[0],
			Opts: mp.Options{RecvTimeout: 10 * time.Second}})
		if err != nil {
			recvErr = err
			return
		}
		defer node.Close()
		_, recvErr = node.Comm().Recv(1, 0) // peer will vanish
	}()
	go func() {
		defer wg.Done()
		node, err := Connect(Config{Rank: 1, Addrs: addrs, Listener: listeners[1]})
		if err != nil {
			return
		}
		time.Sleep(100 * time.Millisecond)
		node.Close()
	}()
	wg.Wait()
	if recvErr == nil {
		t.Error("pending recv must fail when the peer disconnects")
	}
}
