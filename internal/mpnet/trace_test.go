package mpnet

import (
	"testing"

	"sortlast/internal/mp"
	"sortlast/internal/trace"
)

// TestTCPTraceSpans proves the span instrumentation covers the TCP
// transport for free: mpnet builds its Comm through mp.FromTransport,
// so send-wait/recv-wait spans wrap real socket operations.
func TestTCPTraceSpans(t *testing.T) {
	rec := trace.NewRecorder(2)
	err := launch(t, 2, func(c mp.Comm) error {
		c.SetTracer(rec.Rank(c.Rank()))
		c.SetStage("stage1")
		_, err := c.Sendrecv(1-c.Rank(), 5, make([]byte, 1<<16))
		c.SetStage("")
		c.SetTracer(nil) // keep launch's quiesce barrier out of the trace
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2; r++ {
		spans := rec.Rank(r).Spans()
		var sends, recvs int
		for _, s := range spans {
			switch s.Name {
			case trace.SpanSendWait:
				sends++
			case trace.SpanRecvWait:
				recvs++
			}
			if s.Stage != "stage1" {
				t.Errorf("rank %d: span %q stage = %q, want stage1", r, s.Name, s.Stage)
			}
		}
		if sends != 1 || recvs != 1 {
			t.Fatalf("rank %d: got %d send-wait, %d recv-wait spans over TCP, want 1 each", r, sends, recvs)
		}
		if err := trace.ValidateNesting(spans); err != nil {
			t.Errorf("rank %d: %v", r, err)
		}
	}
}
