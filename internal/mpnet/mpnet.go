// Package mpnet is the TCP transport of the message-passing runtime: the
// same Comm semantics as the in-process world, but across OS processes
// and machines, so the sort-last pipeline can run as an actual
// distributed program (one process per rank, as the paper's SP2 jobs
// did).
//
// Bootstrap is static, MPI-hostfile style: every rank knows the full
// address list. Rank r listens on Addrs[r]; connections are established
// once at startup (higher ranks dial lower ranks) and carry
// length-prefixed frames: src and tag identify the channel, and per-pair
// FIFO order is inherited from TCP.
package mpnet

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"sortlast/internal/mp"
)

// Config describes one rank of a TCP world.
type Config struct {
	Rank  int
	Addrs []string // one listen address per rank

	// Listener optionally supplies a pre-bound listener for Addrs[Rank]
	// (useful for tests binding port 0).
	Listener net.Listener

	// DialTimeout bounds connection establishment per peer, retries
	// included; zero means 30 seconds.
	DialTimeout time.Duration

	// WrapTransport, when set, wraps the rank's transport before the
	// Comm is built on top of it. Fault-injection layers
	// (internal/faultinject) hook in here.
	WrapTransport func(mp.Transport) mp.Transport

	// Opts configure the Comm built on top of the transport.
	Opts mp.Options
}

func (c Config) dialTimeout() time.Duration {
	if c.DialTimeout <= 0 {
		return 30 * time.Second
	}
	return c.DialTimeout
}

// Node is one rank's endpoint of a TCP world.
type Node struct {
	comm     mp.Comm
	tr       *tcpTransport
	listener net.Listener
}

// Comm returns the rank's communicator.
func (n *Node) Comm() mp.Comm { return n.comm }

// Close tears down all connections and the listener. Blocked receives
// fail promptly. Call only when the program is quiesced — a Barrier
// before Close (MPI_Finalize-style) guarantees no peer still expects
// traffic from this rank beyond what is already in flight; Shutdown
// wraps that protocol with a deadline.
func (n *Node) Close() error {
	n.tr.close()
	if n.listener != nil {
		n.listener.Close()
	}
	return nil
}

// Shutdown quiesces the rank with a barrier (so no peer still expects
// traffic beyond what is in flight) and then closes the node. If the
// context expires first — a peer already died, or the program is wedged
// — the node is closed anyway, which fails this rank's and its peers'
// blocked receives promptly instead of letting them wait out their
// receive timeout. The node must not be in use by other goroutines
// (Comm endpoints are single-goroutine).
func (n *Node) Shutdown(ctx context.Context) error {
	quiesced := make(chan error, 1)
	go func() { quiesced <- n.comm.Barrier() }()
	select {
	case err := <-quiesced:
		n.Close()
		return err
	case <-ctx.Done():
		// Closing the transport fails the in-flight barrier, so the
		// goroutine exits promptly; wait for it so Shutdown leaks nothing.
		n.Close()
		<-quiesced
		return ctx.Err()
	}
}

const handshakeMagic = 0x534C4350 // "SLCP"

// Connect establishes the full mesh for this rank and returns its node.
// All ranks must call Connect concurrently; it returns once every peer
// connection is up.
func Connect(cfg Config) (*Node, error) {
	size := len(cfg.Addrs)
	if size <= 0 {
		return nil, fmt.Errorf("mpnet: empty address list")
	}
	if cfg.Rank < 0 || cfg.Rank >= size {
		return nil, fmt.Errorf("mpnet: rank %d out of range [0,%d)", cfg.Rank, size)
	}
	tr := &tcpTransport{
		rank:  cfg.Rank,
		size:  size,
		conns: make([]*peerConn, size),
		box:   mp.NewMailbox(),
	}

	ln := cfg.Listener
	if ln == nil && size > 1 {
		var err error
		ln, err = net.Listen("tcp", cfg.Addrs[cfg.Rank])
		if err != nil {
			return nil, fmt.Errorf("mpnet: rank %d listen: %w", cfg.Rank, err)
		}
	}

	// Accept connections from higher ranks while dialing lower ranks.
	var wg sync.WaitGroup
	var acceptErr error
	expect := size - 1 - cfg.Rank
	if expect > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < expect; i++ {
				conn, err := ln.Accept()
				if err != nil {
					acceptErr = fmt.Errorf("mpnet: rank %d accept: %w", cfg.Rank, err)
					return
				}
				peer, err := readHandshake(conn)
				if err != nil {
					conn.Close()
					acceptErr = err
					return
				}
				if peer <= cfg.Rank || peer >= size || tr.conns[peer] != nil {
					conn.Close()
					acceptErr = fmt.Errorf("mpnet: rank %d: bad handshake from rank %d", cfg.Rank, peer)
					return
				}
				tr.conns[peer] = newPeerConn(conn)
			}
		}()
	}

	deadline := time.Now().Add(cfg.dialTimeout())
	for peer := 0; peer < cfg.Rank; peer++ {
		conn, err := dialRetry(cfg.Addrs[peer], deadline)
		if err != nil {
			tr.close()
			return nil, fmt.Errorf("mpnet: rank %d dial rank %d: %w", cfg.Rank, peer, err)
		}
		if err := writeHandshake(conn, cfg.Rank); err != nil {
			conn.Close()
			tr.close()
			return nil, err
		}
		tr.conns[peer] = newPeerConn(conn)
	}
	wg.Wait()
	if acceptErr != nil {
		tr.close()
		return nil, acceptErr
	}

	// Start a demux reader per peer.
	for peer, pc := range tr.conns {
		if pc != nil {
			go tr.readLoop(peer, pc)
		}
	}

	var wrapped mp.Transport = tr
	if cfg.WrapTransport != nil {
		wrapped = cfg.WrapTransport(tr)
	}
	comm, err := mp.FromTransport(cfg.Rank, size, wrapped, cfg.Opts)
	if err != nil {
		tr.close()
		return nil, err
	}
	return &Node{comm: comm, tr: tr, listener: ln}, nil
}

// Dial retry backoff: start small (the peer's listener is usually up
// within milliseconds), double per attempt, cap so a slow peer is still
// polled a few times per second.
const (
	dialBackoffMin = 2 * time.Millisecond
	dialBackoffMax = 250 * time.Millisecond
)

func dialRetry(addr string, deadline time.Time) (net.Conn, error) {
	var lastErr error
	backoff := dialBackoffMin
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			if lastErr == nil {
				lastErr = fmt.Errorf("timeout")
			}
			return nil, lastErr
		}
		conn, err := net.DialTimeout("tcp", addr, remaining)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		// The peer's listener may not be up yet; back off exponentially,
		// capped, and never sleep past the remaining deadline (a fixed
		// sleep here could overshoot it and turn a tight dial budget into
		// a late failure).
		sleep := backoff
		if remaining = time.Until(deadline); sleep > remaining {
			sleep = remaining
		}
		if sleep > 0 {
			time.Sleep(sleep)
		}
		if backoff *= 2; backoff > dialBackoffMax {
			backoff = dialBackoffMax
		}
	}
}

func writeHandshake(conn net.Conn, rank int) error {
	var buf [8]byte
	binary.LittleEndian.PutUint32(buf[0:4], handshakeMagic)
	binary.LittleEndian.PutUint32(buf[4:8], uint32(rank))
	_, err := conn.Write(buf[:])
	return err
}

func readHandshake(conn net.Conn) (int, error) {
	var buf [8]byte
	if _, err := io.ReadFull(conn, buf[:]); err != nil {
		return 0, fmt.Errorf("mpnet: handshake read: %w", err)
	}
	if binary.LittleEndian.Uint32(buf[0:4]) != handshakeMagic {
		return 0, fmt.Errorf("mpnet: bad handshake magic")
	}
	return int(binary.LittleEndian.Uint32(buf[4:8])), nil
}

// tcpTransport implements mp.Transport over a connection mesh.
type tcpTransport struct {
	rank  int
	size  int
	conns []*peerConn
	box   *mp.Mailbox

	closeOnce sync.Once
}

// peerConn serializes frame writes on one connection.
type peerConn struct {
	mu   sync.Mutex
	conn net.Conn
}

func newPeerConn(c net.Conn) *peerConn { return &peerConn{conn: c} }

// maxFrame bounds a frame payload; generous for 768x768 full-frame
// pixel transfers (9.4 MB) with room to spare.
const maxFrame = 1 << 28

// Send implements mp.Transport: frames are [tag u32][len u32][payload].
func (t *tcpTransport) Send(to, tag int, payload []byte) error {
	if to == t.rank {
		t.box.Put(t.rank, tag, payload)
		return nil
	}
	pc := t.conns[to]
	if pc == nil {
		return fmt.Errorf("mpnet: no connection to rank %d", to)
	}
	if len(payload) > maxFrame {
		return fmt.Errorf("mpnet: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(tag))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	// Write header and payload with a single writev so each frame costs
	// one syscall instead of two (and small frames leave in one packet
	// even without Nagle).
	bufs := net.Buffers{hdr[:], payload}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if _, err := bufs.WriteTo(pc.conn); err != nil {
		return fmt.Errorf("mpnet: send to %d: %w", to, err)
	}
	return nil
}

// Recv implements mp.Transport.
func (t *tcpTransport) Recv(from, tag int, timeout time.Duration) ([]byte, error) {
	return t.box.Get(from, tag, timeout)
}

func (t *tcpTransport) readLoop(peer int, pc *peerConn) {
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(pc.conn, hdr[:]); err != nil {
			// Peer gone (or local close): already-delivered messages
			// stay readable, but receives that would block on this peer
			// fail promptly instead of timing out.
			t.box.FailSource(peer)
			return
		}
		tag := int(binary.LittleEndian.Uint32(hdr[0:4]))
		n := binary.LittleEndian.Uint32(hdr[4:8])
		if n > maxFrame {
			t.box.FailSource(peer)
			return
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(pc.conn, payload); err != nil {
			t.box.FailSource(peer)
			return
		}
		t.box.Put(peer, tag, payload)
	}
}

func (t *tcpTransport) close() {
	t.closeOnce.Do(func() {
		for _, pc := range t.conns {
			if pc != nil {
				pc.conn.Close()
			}
		}
		t.box.Close()
	})
}
