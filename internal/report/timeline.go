package report

import (
	"fmt"
	"sort"
	"strings"

	"sortlast/internal/costmodel"
	"sortlast/internal/stats"
)

// Timeline renders an ASCII per-rank view of one compositing run: for
// every rank a bar of modeled per-stage cost (computation '#' and
// communication '~'), scaled to a fixed width, plus the received-byte
// counts. It makes load imbalance and stage structure visible at a
// glance — the per-rank picture behind the tables' max-over-ranks
// numbers.
func Timeline(ranks []*stats.Rank, params costmodel.Params, width int) string {
	if width <= 0 {
		width = 60
	}
	var present []*stats.Rank
	for _, r := range ranks {
		if r != nil {
			present = append(present, r)
		}
	}
	if len(present) == 0 {
		return "timeline: no ranks\n"
	}
	sort.Slice(present, func(i, j int) bool { return present[i].RankID < present[j].RankID })

	// Scale bars to the slowest rank.
	var worst float64
	costs := make([]costmodel.Cost, len(present))
	for i, r := range present {
		costs[i] = params.Rank(r)
		if t := float64(costs[i].Total()); t > worst {
			worst = t
		}
	}
	if worst == 0 {
		worst = 1
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "compositing timeline (%s, modeled; # compute, ~ communication; bar = %.2f ms)\n",
		present[0].Method, worst/1e6)
	for i, r := range present {
		comp := int(float64(costs[i].Comp) / worst * float64(width))
		comm := int(float64(costs[i].Comm) / worst * float64(width))
		if comp+comm > width {
			comm = width - comp
		}
		fmt.Fprintf(&sb, "  rank %3d |%s%s%s| %7.2f ms  %8d B recv",
			r.RankID,
			strings.Repeat("#", comp),
			strings.Repeat("~", comm),
			strings.Repeat(" ", width-comp-comm),
			float64(costs[i].Total())/1e6,
			r.BytesReceived())
		if n := r.EmptyRecvRects(); n > 0 {
			fmt.Fprintf(&sb, "  (%d empty rects)", n)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// StageBreakdown tabulates one rank's per-stage counters — the raw
// quantities of the paper's equations for a single processor.
func StageBreakdown(r *stats.Rank) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "rank %d (%s): bound scan %d px\n", r.RankID, r.Method, r.BoundScan)
	write := func(label string, s *stats.Stage) {
		fmt.Fprintf(&sb,
			"  %-7s recv_px=%-7d composited=%-7d encoded=%-7d codes=%-6d sent=%dB recv=%dB",
			label, s.RecvPixels, s.Composited, s.Encoded, s.Codes, s.BytesSent, s.BytesRecv)
		if s.RecvRectEmpty {
			sb.WriteString("  [empty recv rect]")
		}
		sb.WriteByte('\n')
	}
	if s := r.Fold; s.MsgsRecv+s.MsgsSent > 0 {
		write("fold", &s)
	}
	for i := range r.Stages {
		write(fmt.Sprintf("stage %d", r.Stages[i].Stage), &r.Stages[i])
	}
	return sb.String()
}
