package report

import (
	"fmt"
	"strings"
	"time"

	"sortlast/internal/costmodel"
	"sortlast/internal/stats"
	"sortlast/internal/trace"
)

// divergePoints is the share difference (in percentage points of the
// rank's total) above which a stage is flagged as diverging from the
// model. Absolute times are incomparable — the model is fitted to the
// paper's SP2, the spans to this host — but the *distribution* of time
// across stages should agree when the model captures the algorithm.
const divergePoints = 15.0

// MeasuredVsModeled renders a per-rank, per-stage comparison of the
// wall-clock span times recorded by a traced run against the paper-model
// predictions (Eq. 1–8) for the same counters. For every binary-swap
// stage it shows the measured slice durations (encode, comm wait,
// composite) beside the modeled T_comp/T_comm, plus each side's share of
// the rank total, flagging stages whose shares diverge by more than 15
// points — the stages where the SP2 model and this host disagree about
// where the time goes.
func MeasuredVsModeled(rec *trace.Recorder, ranks []*stats.Rank, params costmodel.Params) string {
	if rec == nil || rec.Size() == 0 {
		return "measured-vs-modeled: no trace recorded\n"
	}
	byID := map[int]*stats.Rank{}
	method := ""
	for _, r := range ranks {
		if r != nil {
			byID[r.RankID] = r
			method = r.Method
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "measured vs modeled (%s, P=%d; absolute times are host vs SP2 — compare shares)\n",
		method, rec.Size())
	for i := 0; i < rec.Size(); i++ {
		spans := rec.Rank(i).Spans()
		sum := func(name, stage string) time.Duration {
			var d time.Duration
			for _, s := range spans {
				if s.Name == name && s.Stage == stage {
					d += s.Dur
				}
			}
			return d
		}
		fmt.Fprintf(&sb, "rank %d: render %s  compositing %s  gather %s\n",
			i, fmtMS(sum(trace.SpanRender, "")),
			fmtMS(sum(trace.SpanCompositing, "")),
			fmtMS(sum(trace.SpanGather, trace.StageGather)))
		r := byID[i]
		if r == nil {
			continue
		}

		// Totals over the binary-swap stages only, so shares compare the
		// same quantity on both sides.
		var measTotal time.Duration
		modTotal := time.Duration(r.BoundScan) * params.Tbound
		for k := range r.Stages {
			lbl := stageLabel(r.Method, r.Stages[k].Stage)
			measTotal += sum(lbl, lbl)
			modTotal += params.Stage(r.Method, &r.Stages[k]).Total()
		}
		measTotal += sum(trace.SpanBound, "")
		if measTotal == 0 || modTotal == 0 {
			continue
		}

		fmt.Fprintf(&sb, "  %-8s %10s %8s %8s %8s | %10s %10s | %6s %6s\n",
			"stage", "measured", "encode", "wait", "blend", "model_comp", "model_comm", "meas%", "model%")
		if bound := sum(trace.SpanBound, ""); bound > 0 {
			fmt.Fprintf(&sb, "  %-8s %10s %8s %8s %8s | %10s %10s | %6.1f %6.1f\n",
				"bound", fmtMS(bound), "", "", "",
				fmtMS(time.Duration(r.BoundScan)*params.Tbound), "",
				share(bound, measTotal), share(time.Duration(r.BoundScan)*params.Tbound, modTotal))
		}
		for k := range r.Stages {
			s := &r.Stages[k]
			lbl := stageLabel(r.Method, s.Stage)
			meas := sum(lbl, lbl)
			model := params.Stage(r.Method, s)
			measShare := share(meas, measTotal)
			modelShare := share(model.Total(), modTotal)
			fmt.Fprintf(&sb, "  %-8s %10s %8s %8s %8s | %10s %10s | %6.1f %6.1f",
				lbl, fmtMS(meas),
				fmtMS(sum(trace.SpanEncode, lbl)),
				fmtMS(sum(trace.SpanSendWait, lbl)+sum(trace.SpanRecvWait, lbl)),
				fmtMS(sum(trace.SpanComposite, lbl)),
				fmtMS(model.Comp), fmtMS(model.Comm),
				measShare, modelShare)
			if d := measShare - modelShare; d > divergePoints || d < -divergePoints {
				fmt.Fprintf(&sb, "  << diverges %+.0f pts", d)
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

func share(d, total time.Duration) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(d) / float64(total)
}

func fmtMS(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	return fmt.Sprintf("%.3fms", float64(d)/1e6)
}

// stageLabel names the umbrella span for stage k of a method. The
// tile-routed methods record two named rounds — route then merge,
// matching the terms of their cost models — while the binary-swap
// family keeps numbered stages.
func stageLabel(method string, k int) string {
	if method == "DS" || method == "DFB" {
		if k == 1 {
			return trace.StageRoute
		}
		return trace.StageMerge
	}
	return fmt.Sprintf("stage%d", k)
}
