// Package report renders experiment rows in the shapes the paper uses:
// Table 1/2-style blocks (T_comp / T_comm / T_total per method per
// processor count, grouped by dataset), Figure 8–11-style series
// (compositing time vs P for one dataset), the M_max comparison of §4,
// and machine-readable CSV.
package report

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"

	"sortlast/internal/harness"
)

type key struct {
	dataset string
	method  string
	p       int
}

func index(rows []harness.Row) map[key]harness.Row {
	m := make(map[key]harness.Row, len(rows))
	for _, r := range rows {
		m[key{r.Dataset, r.Method, r.P}] = r
	}
	return m
}

func datasetsOf(rows []harness.Row) []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range rows {
		if !seen[r.Dataset] {
			seen[r.Dataset] = true
			out = append(out, r.Dataset)
		}
	}
	return out
}

func psOf(rows []harness.Row) []int {
	seen := map[int]bool{}
	var out []int
	for _, r := range rows {
		if !seen[r.P] {
			seen[r.P] = true
			out = append(out, r.P)
		}
	}
	sort.Ints(out)
	return out
}

// Table renders rows as a paper-style table: one block per dataset, a
// line per processor count, and T_comp/T_comm/T_total columns per method
// (times in ms, the paper's unit).
func Table(title string, rows []harness.Row, methods []string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	idx := index(rows)
	for _, ds := range datasetsOf(rows) {
		fmt.Fprintf(&sb, "\n  %s\n", ds)
		tw := tabwriter.NewWriter(&sb, 4, 0, 2, ' ', tabwriter.AlignRight)
		fmt.Fprint(tw, "    P\t")
		for _, m := range methods {
			fmt.Fprintf(tw, "%s comp\t%s comm\t%s total\t", m, m, m)
		}
		fmt.Fprintln(tw)
		for _, p := range psOf(rows) {
			fmt.Fprintf(tw, "    %d\t", p)
			for _, m := range methods {
				r, ok := idx[key{ds, m, p}]
				if !ok {
					fmt.Fprint(tw, "-\t-\t-\t")
					continue
				}
				fmt.Fprintf(tw, "%.2f\t%.2f\t%.2f\t", r.CompMS, r.CommMS, r.TotalMS)
			}
			fmt.Fprintln(tw)
		}
		tw.Flush()
	}
	return sb.String()
}

// Figure renders the total compositing time of each method against P for
// one dataset — the series behind Figures 8–11.
func Figure(title string, rows []harness.Row, methods []string, dataset string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (%s, total compositing time, ms)\n", title, dataset)
	idx := index(rows)
	tw := tabwriter.NewWriter(&sb, 4, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprint(tw, "  P\t")
	for _, m := range methods {
		fmt.Fprintf(tw, "%s\t", m)
	}
	fmt.Fprintln(tw)
	for _, p := range psOf(rows) {
		fmt.Fprintf(tw, "  %d\t", p)
		for _, m := range methods {
			if r, ok := idx[key{dataset, m, p}]; ok {
				fmt.Fprintf(tw, "%.2f\t", r.TotalMS)
			} else {
				fmt.Fprint(tw, "-\t")
			}
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	return sb.String()
}

// MMax renders the maximum received message size per method and P for
// one dataset — the quantity ordered by the paper's Eq. 9.
func MMax(title string, rows []harness.Row, methods []string, dataset string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (%s, M_max in bytes)\n", title, dataset)
	idx := index(rows)
	tw := tabwriter.NewWriter(&sb, 4, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprint(tw, "  P\t")
	for _, m := range methods {
		fmt.Fprintf(tw, "%s\t", m)
	}
	fmt.Fprintln(tw)
	for _, p := range psOf(rows) {
		fmt.Fprintf(tw, "  %d\t", p)
		for _, m := range methods {
			if r, ok := idx[key{dataset, m, p}]; ok {
				fmt.Fprintf(tw, "%d\t", r.MMax)
			} else {
				fmt.Fprint(tw, "-\t")
			}
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	return sb.String()
}

// CSV renders every row with a header, for downstream plotting.
func CSV(rows []harness.Row) string {
	var sb strings.Builder
	sb.WriteString("dataset,method,p,width,height,comp_ms,comm_ms,total_ms," +
		"makespan_ms,measured_comp_ms,render_ms,mmax_bytes,empty_rects,nonblank\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%s,%s,%d,%d,%d,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%d,%d,%d\n",
			r.Dataset, r.Method, r.P, r.Width, r.Height,
			r.CompMS, r.CommMS, r.TotalMS, r.MakespanMS, r.MeasuredCompMS, r.RenderMS,
			r.MMax, r.EmptyRects, r.NonBlank)
	}
	return sb.String()
}
