package report

import (
	"strings"
	"testing"
	"time"

	"sortlast/internal/costmodel"
	"sortlast/internal/stats"
	"sortlast/internal/trace"
)

// TestTimelineNilAndEmptySlices pins the degenerate inputs: a nil
// slice, an empty slice, and a slice of only nil ranks must all render
// the placeholder instead of panicking.
func TestTimelineNilAndEmptySlices(t *testing.T) {
	for _, ranks := range [][]*stats.Rank{nil, {}, {nil, nil, nil}} {
		out := Timeline(ranks, costmodel.SP2(), 40)
		if !strings.Contains(out, "no ranks") {
			t.Errorf("Timeline(%v) = %q, want no-ranks placeholder", ranks, out)
		}
	}
}

func tracedSample() (*trace.Recorder, []*stats.Rank) {
	rec := trace.NewRecorder(2)
	for i := 0; i < 2; i++ {
		r := rec.Rank(i)
		record := func(name, stage string, sleep time.Duration) {
			m := r.Begin()
			time.Sleep(sleep)
			r.End(m, name, stage)
		}
		record(trace.SpanRender, "", time.Millisecond)
		sm := r.Begin()
		record(trace.SpanEncode, "stage1", 200*time.Microsecond)
		record(trace.SpanRecvWait, "stage1", 200*time.Microsecond)
		record(trace.SpanComposite, "stage1", 200*time.Microsecond)
		r.End(sm, "stage1", "stage1")
		record(trace.SpanGather, trace.StageGather, 100*time.Microsecond)
	}
	return rec, sampleRanks()
}

func TestMeasuredVsModeled(t *testing.T) {
	rec, ranks := tracedSample()
	out := MeasuredVsModeled(rec, ranks, costmodel.SP2())
	for _, want := range []string{"rank 0", "rank 1", "stage1", "render", "model_comp", "meas%"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestMeasuredVsModeledNoTrace(t *testing.T) {
	out := MeasuredVsModeled(nil, sampleRanks(), costmodel.SP2())
	if !strings.Contains(out, "no trace") {
		t.Errorf("nil-recorder report = %q", out)
	}
}

// TestMeasuredVsModeledFlagsDivergence builds a trace whose stage share
// contradicts the model: two stages with equal modeled cost but wildly
// unequal measured time must trip the divergence flag.
func TestMeasuredVsModeledFlagsDivergence(t *testing.T) {
	rec := trace.NewRecorder(1)
	r := rec.Rank(0)
	span := func(name, stage string, sleep time.Duration) {
		m := r.Begin()
		time.Sleep(sleep)
		r.End(m, name, stage)
	}
	span("stage1", "stage1", 5*time.Millisecond)
	span("stage2", "stage2", 100*time.Microsecond)

	rank := &stats.Rank{RankID: 0, Method: "BSBRC"}
	for k := 1; k <= 2; k++ {
		s := rank.StageAt(k)
		s.Composited = 1000
		s.BytesRecv = 16000
		s.MsgsRecv = 1
	}
	out := MeasuredVsModeled(rec, []*stats.Rank{rank}, costmodel.SP2())
	if !strings.Contains(out, "diverges") {
		t.Errorf("no divergence flagged:\n%s", out)
	}
}
