package report

import (
	"strings"
	"testing"

	"sortlast/internal/harness"
)

func sampleRows() []harness.Row {
	var rows []harness.Row
	for _, ds := range []string{"engine_low", "cube"} {
		for _, m := range []string{"BS", "BSBRC"} {
			for _, p := range []int{2, 4} {
				rows = append(rows, harness.Row{
					Dataset: ds, Method: m, P: p, Width: 384, Height: 384,
					CompMS: float64(p), CommMS: 0.5, TotalMS: float64(p) + 0.5,
					MMax: p * 1000,
				})
			}
		}
	}
	return rows
}

func TestTableContainsAllCells(t *testing.T) {
	out := Table("Table 1", sampleRows(), []string{"BS", "BSBRC"})
	for _, want := range []string{"Table 1", "engine_low", "cube", "BS comp", "BSBRC total", "2.50", "4.50"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestTableMarksMissingCells(t *testing.T) {
	rows := sampleRows()[:1]
	out := Table("t", rows, []string{"BS", "BSBRC"})
	if !strings.Contains(out, "-") {
		t.Error("missing cells must render as -")
	}
}

func TestFigureSeries(t *testing.T) {
	out := Figure("Figure 8", sampleRows(), []string{"BS", "BSBRC"}, "engine_low")
	if !strings.Contains(out, "Figure 8") || !strings.Contains(out, "engine_low") {
		t.Error("figure header wrong")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, column line, P=2, P=4
		t.Errorf("figure has %d lines:\n%s", len(lines), out)
	}
}

func TestMMaxTable(t *testing.T) {
	out := MMax("Eq. 9", sampleRows(), []string{"BS", "BSBRC"}, "cube")
	if !strings.Contains(out, "2000") || !strings.Contains(out, "4000") {
		t.Errorf("M_max values missing:\n%s", out)
	}
}

func TestCSV(t *testing.T) {
	out := CSV(sampleRows())
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 1+8 {
		t.Fatalf("csv has %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "dataset,method,p,") {
		t.Error("csv header wrong")
	}
	if !strings.Contains(lines[1], "engine_low,BS,2,384,384,") {
		t.Errorf("csv row wrong: %s", lines[1])
	}
}
