package report

import (
	"strings"
	"testing"

	"sortlast/internal/costmodel"
	"sortlast/internal/stats"
)

func sampleRanks() []*stats.Rank {
	a := &stats.Rank{RankID: 0, Method: "BSBRC"}
	s := a.StageAt(1)
	s.RecvPixels = 1000
	s.Composited = 800
	s.BytesRecv = 16000
	s.MsgsRecv = 1
	b := &stats.Rank{RankID: 1, Method: "BSBRC"}
	s2 := b.StageAt(1)
	s2.Composited = 100
	s2.BytesRecv = 8
	s2.MsgsRecv = 1
	s2.RecvRectEmpty = true
	return []*stats.Rank{a, b, nil}
}

func TestTimelineRendersBars(t *testing.T) {
	out := Timeline(sampleRanks(), costmodel.SP2(), 40)
	if !strings.Contains(out, "rank   0") || !strings.Contains(out, "rank   1") {
		t.Errorf("missing ranks:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Error("no compute bars")
	}
	if !strings.Contains(out, "empty rects") {
		t.Error("empty-rect annotation missing")
	}
	if !strings.Contains(out, "16000 B recv") {
		t.Errorf("byte counts missing:\n%s", out)
	}
	// The slower rank's bar must be longer.
	lines := strings.Split(out, "\n")
	if strings.Count(lines[1], "#") <= strings.Count(lines[2], "#") {
		t.Errorf("bar lengths do not reflect cost:\n%s", out)
	}
}

func TestTimelineEmpty(t *testing.T) {
	if out := Timeline(nil, costmodel.SP2(), 0); !strings.Contains(out, "no ranks") {
		t.Errorf("empty timeline = %q", out)
	}
}

func TestStageBreakdown(t *testing.T) {
	r := sampleRanks()[0]
	r.Fold.MsgsRecv = 1
	r.Fold.BytesRecv = 99
	out := StageBreakdown(r)
	for _, want := range []string{"rank 0", "stage 1", "fold", "recv_px=1000", "recv=16000B"} {
		if !strings.Contains(out, want) {
			t.Errorf("breakdown missing %q:\n%s", want, out)
		}
	}
}
