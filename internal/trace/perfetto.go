package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Event is one Chrome trace-event object. The recorder emits complete
// events (ph "X", microsecond ts/dur) plus metadata events (ph "M")
// naming the process and one thread per rank, which is exactly the
// subset ui.perfetto.dev needs to show one aligned track per rank.
type Event struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// File is the JSON-object form of the trace-event format. TraceID is
// an extension field (Perfetto ignores unknown top-level keys) naming
// the distributed trace the events belong to.
type File struct {
	TraceID         string  `json:"traceId,omitempty"`
	TraceEvents     []Event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

// writeTraceFile encodes one trace-event file as JSON.
func writeTraceFile(w io.Writer, f File) error {
	return json.NewEncoder(w).Encode(f)
}

// Events flattens the recorder into trace events, one tid per rank.
func Events(rec *Recorder) []Event {
	if rec == nil {
		return nil
	}
	events := []Event{{
		Name: "process_name", Ph: "M", PID: 0, TID: 0,
		Args: map[string]any{"name": "sortlast"},
	}}
	for i, spans := range rec.Snapshot() {
		events = append(events, Event{
			Name: "thread_name", Ph: "M", PID: 0, TID: i,
			Args: map[string]any{"name": fmt.Sprintf("rank %d", i)},
		})
		for _, s := range spans {
			ev := Event{
				Name: s.Name, Ph: "X",
				TS:  float64(s.Start) / float64(time.Microsecond),
				Dur: float64(s.Dur) / float64(time.Microsecond),
				PID: 0, TID: i,
			}
			if s.Stage != "" {
				ev.Args = map[string]any{"stage": s.Stage}
			}
			events = append(events, ev)
		}
	}
	return events
}

// WritePerfetto writes the recorder as Chrome/Perfetto trace-event
// JSON. Open the file directly in ui.perfetto.dev or chrome://tracing.
func WritePerfetto(w io.Writer, rec *Recorder) error {
	return writeTraceFile(w, File{TraceID: rec.TraceID().String(), TraceEvents: Events(rec), DisplayTimeUnit: "ms"})
}

// ValidateNesting checks that one rank's spans form a proper tree:
// any two spans either don't overlap or one contains the other.
// Perfetto renders overlapping non-nested slices on one track as
// garbage, so the instrumentation tests gate on this.
func ValidateNesting(spans []Span) error {
	sorted := append([]Span(nil), spans...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Start != sorted[j].Start {
			return sorted[i].Start < sorted[j].Start
		}
		return sorted[i].End() > sorted[j].End()
	})
	// Walk with an open-span stack: each span must either start after
	// the innermost open span ends (sibling) or end within it (child).
	var stack []Span
	for _, s := range sorted {
		for len(stack) > 0 && stack[len(stack)-1].End() <= s.Start {
			stack = stack[:len(stack)-1]
		}
		if len(stack) > 0 && s.End() > stack[len(stack)-1].End() {
			p := stack[len(stack)-1]
			return fmt.Errorf("span %q [%v,%v] overlaps %q [%v,%v] without nesting",
				s.Name, s.Start, s.End(), p.Name, p.Start, p.End())
		}
		stack = append(stack, s)
	}
	return nil
}
