package trace

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestDisabledRankIsNoop(t *testing.T) {
	var r *Rank
	m := r.Begin()
	r.End(m, SpanEncode, "stage1")
	if r.Enabled() {
		t.Fatal("nil rank reports enabled")
	}
	if got := r.Spans(); got != nil {
		t.Fatalf("nil rank recorded spans: %v", got)
	}
	if r.Total(SpanEncode) != 0 || r.ID() != -1 {
		t.Fatal("nil rank accessors not zero-valued")
	}
	var rec *Recorder
	if rec.Rank(0) != nil || rec.Size() != 0 || rec.Snapshot() != nil || rec.MaxTotal(SpanRender) != 0 {
		t.Fatal("nil recorder accessors not zero-valued")
	}
	rec.Reset()
}

func TestDisabledPathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts inflated under -race")
	}
	var r *Rank
	allocs := testing.AllocsPerRun(1000, func() {
		m := r.Begin()
		r.End(m, SpanComposite, "stage1")
	})
	if allocs != 0 {
		t.Fatalf("disabled Begin/End allocates %v per op, want 0", allocs)
	}
}

func TestEnabledSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts inflated under -race")
	}
	rec := NewRecorder(1)
	r := rec.Rank(0)
	// Warm the buffer past the preallocated capacity once, then assert
	// steady-state frames (Reset + re-record) never allocate.
	for i := 0; i < 2*spansPerRankHint; i++ {
		r.End(r.Begin(), SpanComposite, "stage1")
	}
	rec.Reset()
	allocs := testing.AllocsPerRun(100, func() {
		rec.Reset()
		for i := 0; i < spansPerRankHint; i++ {
			r.End(r.Begin(), SpanComposite, "stage1")
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state recording allocates %v per frame, want 0", allocs)
	}
}

func TestRecorderRecordsAlignedSpans(t *testing.T) {
	rec := NewRecorder(2)
	r0, r1 := rec.Rank(0), rec.Rank(1)
	m := r0.Begin()
	time.Sleep(time.Millisecond)
	r0.End(m, SpanRender, "")
	m = r1.Begin()
	r1.End(m, SpanEncode, "stage1")

	snap := rec.Snapshot()
	if len(snap) != 2 || len(snap[0]) != 1 || len(snap[1]) != 1 {
		t.Fatalf("snapshot shape = %v", snap)
	}
	if snap[0][0].Name != SpanRender || snap[0][0].Dur < time.Millisecond {
		t.Fatalf("rank0 span = %+v", snap[0][0])
	}
	if snap[1][0].Stage != "stage1" {
		t.Fatalf("rank1 span = %+v", snap[1][0])
	}
	if rec.MaxTotal(SpanRender) != r0.Total(SpanRender) {
		t.Fatal("MaxTotal disagrees with the only rank rendering")
	}
	rec.Reset()
	if got := rec.Snapshot(); len(got[0]) != 0 || len(got[1]) != 0 {
		t.Fatalf("Reset left spans: %v", got)
	}
}

func TestWritePerfettoSchema(t *testing.T) {
	rec := NewRecorder(2)
	for i := 0; i < 2; i++ {
		r := rec.Rank(i)
		m := r.Begin()
		cm := r.Begin()
		r.End(cm, SpanComposite, "stage1")
		r.End(m, "stage1", "stage1")
	}
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, rec); err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("exporter output is not valid JSON: %v", err)
	}
	tids := map[int]bool{}
	var threads, complete int
	for _, ev := range f.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				threads++
			}
		case "X":
			complete++
			tids[ev.TID] = true
			if ev.TS < 0 || ev.Dur < 0 {
				t.Fatalf("negative ts/dur: %+v", ev)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if threads != 2 {
		t.Fatalf("thread_name metadata events = %d, want 2", threads)
	}
	if complete != 4 {
		t.Fatalf("complete events = %d, want 4", complete)
	}
	if len(tids) != 2 {
		t.Fatalf("distinct rank tracks = %d, want 2", len(tids))
	}
}

func TestValidateNesting(t *testing.T) {
	ok := []Span{
		{Name: "stage1", Start: 0, Dur: 100},
		{Name: SpanEncode, Start: 10, Dur: 20},
		{Name: SpanComposite, Start: 40, Dur: 60}, // child ending exactly with parent
		{Name: "stage2", Start: 100, Dur: 50},     // sibling sharing a boundary
	}
	if err := ValidateNesting(ok); err != nil {
		t.Fatalf("valid tree rejected: %v", err)
	}
	bad := []Span{
		{Name: "stage1", Start: 0, Dur: 100},
		{Name: SpanEncode, Start: 50, Dur: 100}, // straddles stage1's end
	}
	if err := ValidateNesting(bad); err == nil {
		t.Fatal("overlapping non-nested spans accepted")
	}
	if err := ValidateNesting(nil); err != nil {
		t.Fatalf("empty span list rejected: %v", err)
	}
}

func TestEnabledZeroAllocsWithTraceID(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts inflated under -race")
	}
	rec := NewRecorder(1)
	rec.SetTraceID(NewID())
	r := rec.Rank(0)
	for i := 0; i < 2*spansPerRankHint; i++ {
		r.End(r.Begin(), SpanComposite, "stage1")
	}
	allocs := testing.AllocsPerRun(100, func() {
		rec.Reset()
		rec.SetTraceID(42) // re-tag each frame, as the server does
		for i := 0; i < spansPerRankHint; i++ {
			r.End(r.Begin(), SpanComposite, "stage1")
		}
	})
	if allocs != 0 {
		t.Fatalf("recording with a trace ID attached allocates %v per frame, want 0", allocs)
	}
	if rec.TraceID() != 42 {
		t.Fatalf("trace id = %v, want 42", rec.TraceID())
	}
	rec.Reset()
	if rec.TraceID() != 0 {
		t.Fatal("Reset kept the trace id")
	}
}

// TestConcurrentRecordersExport models hedged dispatch: two replicas
// record the same request concurrently into separate recorders, the
// gateway exports both as sibling attempt processes. Each track must
// still validate and the merged export must stay well-formed while the
// recorders are live.
func TestConcurrentRecordersExport(t *testing.T) {
	id := NewID()
	recs := []*Recorder{NewRecorder(2), NewRecorder(2)}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for _, rec := range recs {
		rec.SetTraceID(id)
		for i := 0; i < rec.Size(); i++ {
			wg.Add(1)
			go func(r *Rank) {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					m := r.Begin()
					cm := r.Begin()
					r.End(cm, SpanEncode, "stage1")
					r.End(m, "stage1", "stage1")
				}
			}(rec.Rank(i))
		}
	}
	// Export repeatedly while the ranks are still recording.
	for iter := 0; iter < 50; iter++ {
		wires := make([]*Wire, len(recs))
		for i, rec := range recs {
			wires[i] = BuildWire(id, "attempt", time.Millisecond, nil, rec)
		}
		merged := Nest("gateway", "request", "dispatch", 2*time.Millisecond, wires[0])
		for _, p := range wires[1].Procs {
			merged.Procs = append(merged.Procs, p)
		}
		var buf bytes.Buffer
		if err := merged.WritePerfetto(&buf); err != nil {
			t.Fatal(err)
		}
		var f File
		if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
			t.Fatalf("live export is not valid JSON: %v", err)
		}
	}
	close(stop)
	wg.Wait()
	// After the dust settles every rank track must be a proper tree.
	for _, rec := range recs {
		for _, spans := range rec.Snapshot() {
			if err := ValidateNesting(spans); err != nil {
				t.Fatalf("concurrent recording broke nesting: %v", err)
			}
		}
	}
}

// TestSiblingAttemptsSeparateTracks pins the hedging design rule: two
// overlapping attempts are invalid on ONE track (Perfetto renders that
// as garbage) and must be exported as separate tracks, which the wire
// format does by giving each attempt its own track.
func TestSiblingAttemptsSeparateTracks(t *testing.T) {
	primary := Span{Name: "attempt 0", Start: 0, Dur: 100 * time.Millisecond}
	hedge := Span{Name: "attempt 1", Start: 60 * time.Millisecond, Dur: 80 * time.Millisecond}
	if err := ValidateNesting([]Span{primary, hedge}); err == nil {
		t.Fatal("overlapping sibling attempts accepted on one track")
	}
	if err := ValidateNesting([]Span{primary}); err != nil {
		t.Fatal(err)
	}
	if err := ValidateNesting([]Span{hedge}); err != nil {
		t.Fatal(err)
	}
}
