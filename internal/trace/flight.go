package trace

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Flight is a frame flight recorder: a fixed-size ring retaining the
// span trees of the last N interesting requests, where interesting is
// decided by tail-based sampling — errors, hedged dispatches, and
// non-cached frames at or above the rolling p99 latency always stay;
// ordinary fast frames are dropped on arrival. Both renderd and the
// fleet gateway keep one and serve it at /debug/flight.
//
// A nil *Flight is the disabled recorder: Observe keeps nothing and the
// HTTP handler answers 404.
type Flight struct {
	mu      sync.Mutex
	cap     int
	seq     uint64
	entries []FlightEntry // ring, oldest overwritten
	next    int           // ring write position
	full    bool

	// Rolling latency window for the p99 keep threshold. Only
	// successful non-cached frames feed it: cache hits return in
	// microseconds, and fast rejections (overloaded/shutdown) are
	// near-instant — either would drag the quantile down until every
	// ordinary frame qualifies as ">= p99" and churns the ring. Errors
	// are kept unconditionally, so they need no say in the threshold.
	window [flightWindow]time.Duration
	wn     int
	wnext  int
}

// flightWindow sizes the rolling latency window behind the p99 keep
// threshold; 128 samples make the quantile stable without remembering
// ancient load patterns.
const flightWindow = 128

// DefaultFlightSize is the ring capacity used when a caller enables the
// flight recorder without choosing one.
const DefaultFlightSize = 64

// FlightEntry is one retained request.
type FlightEntry struct {
	// Seq is a monotonically increasing id, newest highest.
	Seq uint64 `json:"seq"`
	// TraceID is the request's distributed trace id (hex), "" if the
	// request was untraced.
	TraceID string `json:"trace_id,omitempty"`
	// At is the wall-clock completion time.
	At time.Time `json:"at"`
	// Latency is the request's total wall time at this process.
	Latency time.Duration `json:"-"`
	// Outcome is "ok" or the failure code ("world_failed", ...).
	Outcome string `json:"outcome"`
	// Hedged and Cached mirror the frame's FrameStats flags.
	Hedged bool `json:"hedged,omitempty"`
	Cached bool `json:"cached,omitempty"`
	// Detail is a short human label ("bsbrc 256x256 hydrogen").
	Detail string `json:"detail,omitempty"`
	// Reason says which tail-sampling rule kept the entry.
	Reason string `json:"reason,omitempty"`
	// Trace lazily builds the entry's span tree. Lazy because a hedged
	// request's losing attempt lands after the winner's reply: the
	// builder closes over the live attempt set, so a trace exported
	// later includes the reaped loser. May be nil (no spans retained).
	Trace func() *Wire `json:"-"`
}

// MarshalJSON adds the latency in milliseconds to the summary form.
func (e FlightEntry) MarshalJSON() ([]byte, error) {
	type plain FlightEntry
	return json.Marshal(struct {
		plain
		MS float64 `json:"ms"`
	}{plain(e), float64(e.Latency) / float64(time.Millisecond)})
}

// NewFlight returns a flight recorder retaining n entries; n <= 0 gets
// DefaultFlightSize.
func NewFlight(n int) *Flight {
	if n <= 0 {
		n = DefaultFlightSize
	}
	return &Flight{cap: n, entries: make([]FlightEntry, n)}
}

// p99Locked returns the window's 99th percentile, zero while empty (so
// the first frames are all "at or above p99" and get kept — the ring
// warms up with whatever arrives first and churns toward the true
// tail).
func (f *Flight) p99Locked() time.Duration {
	if f.wn == 0 {
		return 0
	}
	buf := make([]time.Duration, f.wn)
	copy(buf, f.window[:f.wn])
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	idx := (len(buf)*99 + 99) / 100 // ceil(0.99 n)
	if idx > len(buf) {
		idx = len(buf)
	}
	return buf[idx-1]
}

// Observe applies the tail-sampling rule to one finished request and
// retains it if it qualifies. Returns whether the entry was kept.
func (f *Flight) Observe(e FlightEntry) bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()

	// Decide against the window as it stood BEFORE this observation:
	// a new slowest-ever frame is ≥ the old p99 and gets kept.
	keep := true
	switch {
	case e.Outcome != "" && e.Outcome != "ok":
		e.Reason = "error"
	case e.Hedged:
		e.Reason = "hedged"
	case !e.Cached && e.Latency >= f.p99Locked():
		e.Reason = "p99"
	default:
		keep = false
	}

	if !e.Cached && (e.Outcome == "" || e.Outcome == "ok") {
		f.window[f.wnext] = e.Latency
		f.wnext = (f.wnext + 1) % flightWindow
		if f.wn < flightWindow {
			f.wn++
		}
	}
	if !keep {
		return false
	}

	f.seq++
	e.Seq = f.seq
	f.entries[f.next] = e
	f.next = (f.next + 1) % f.cap
	if f.next == 0 {
		f.full = true
	}
	return true
}

// Len returns the number of retained entries.
func (f *Flight) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.full {
		return f.cap
	}
	return f.next
}

// Entries returns the retained entries, newest first.
func (f *Flight) Entries() []FlightEntry {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.next
	if f.full {
		n = f.cap
	}
	out := make([]FlightEntry, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, f.entries[(f.next-i+f.cap)%f.cap])
	}
	return out
}

// Lookup finds a retained entry by trace id or decimal sequence number.
func (f *Flight) Lookup(key string) (FlightEntry, bool) {
	for _, e := range f.Entries() {
		if e.TraceID == key || fmt.Sprint(e.Seq) == key {
			return e, true
		}
	}
	return FlightEntry{}, false
}

// ServeHTTP serves the flight recorder:
//
//	GET /debug/flight               → {"entries": [newest first]}
//	GET /debug/flight?trace=<id>    → that entry's merged Perfetto trace
//
// trace accepts a hex trace id or an entry's seq number.
func (f *Flight) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f == nil {
		http.Error(w, "flight recorder disabled", http.StatusNotFound)
		return
	}
	if key := r.URL.Query().Get("trace"); key != "" {
		e, ok := f.Lookup(key)
		if !ok {
			http.Error(w, "no such flight entry", http.StatusNotFound)
			return
		}
		if e.Trace == nil {
			http.Error(w, "entry has no span tree", http.StatusNotFound)
			return
		}
		wire := e.Trace()
		if wire == nil {
			http.Error(w, "entry has no span tree", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = wire.WritePerfetto(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		Entries []FlightEntry `json:"entries"`
	}{f.Entries()})
}
