package trace

import (
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"time"
)

// Trace identity and the cross-process trace context.
//
// A trace is one request's journey through the fleet: client → gateway →
// replica → rank pipeline. Every process that touches the request tags
// its spans with the same 64-bit trace ID, carried in the frame
// protocol's JSON request header as a Context; the flight recorders and
// the metrics exemplars key on the same ID, so a slow histogram bucket,
// a /debug/flight entry and a Perfetto trace all name the same request.

// ID is a 64-bit trace or span identifier. The zero ID means "absent":
// an untraced request, an unset parent.
type ID uint64

var (
	idMu  sync.Mutex
	idRng = rand.New(rand.NewSource(time.Now().UnixNano()))
)

// NewID returns a random non-zero identifier. IDs need to be unique per
// flight-recorder retention window (a few hundred entries), not
// cryptographically strong, so a seeded PRNG under a mutex is enough.
func NewID() ID {
	idMu.Lock()
	defer idMu.Unlock()
	for {
		if id := ID(idRng.Uint64()); id != 0 {
			return id
		}
	}
}

// String formats the ID as 16 lowercase hex digits (the form carried on
// the wire and shown in /debug/flight). The zero (absent) ID formats as
// the empty string, so it round-trips through ParseID and disappears
// under json omitempty.
func (id ID) String() string {
	if id == 0 {
		return ""
	}
	return fmt.Sprintf("%016x", uint64(id))
}

// ParseID parses the hex form produced by String. The empty string
// parses to the zero (absent) ID without error.
func ParseID(s string) (ID, error) {
	if s == "" {
		return 0, nil
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("trace: bad id %q: %w", s, err)
	}
	return ID(v), nil
}

// Context is the trace context carried in a request header: the trace
// identity, the sending side's span, and whether the sender wants the
// span tree back in the reply. A nil *Context means the request is
// untraced (servers may still record locally for their own flight
// recorder).
type Context struct {
	// TraceID names the whole request tree, hex form of an ID.
	TraceID string `json:"trace_id"`
	// ParentID is the sender's span under which this dispatch nests
	// (informational; the merge places spans by track and time).
	ParentID string `json:"parent_id,omitempty"`
	// Sampled asks the receiver to return its span tree in the reply so
	// the caller can assemble a merged trace. Unsampled contexts still
	// propagate the ID for exemplars and flight-recorder correlation.
	Sampled bool `json:"sampled,omitempty"`
}

// NewContext returns a sampled context with a fresh trace ID — what a
// client (or a gateway fronting an untraced external caller) generates
// at the edge.
func NewContext() *Context {
	return &Context{TraceID: NewID().String(), Sampled: true}
}

// Child derives the context for a downstream dispatch issued under span.
// On a nil receiver it returns nil, so untraced requests propagate
// nothing.
func (c *Context) Child(span ID) *Context {
	if c == nil {
		return nil
	}
	return &Context{TraceID: c.TraceID, ParentID: span.String(), Sampled: c.Sampled}
}

// Trace parses the context's trace ID, zero when absent or malformed.
func (c *Context) Trace() ID {
	if c == nil {
		return 0
	}
	id, _ := ParseID(c.TraceID)
	return id
}
