package trace

import "testing"

func TestIDRoundTrip(t *testing.T) {
	for i := 0; i < 100; i++ {
		id := NewID()
		if id == 0 {
			t.Fatal("NewID returned the absent ID")
		}
		s := id.String()
		if len(s) != 16 {
			t.Fatalf("ID %v formats to %q, want 16 hex digits", uint64(id), s)
		}
		back, err := ParseID(s)
		if err != nil || back != id {
			t.Fatalf("ParseID(%q) = %v, %v, want %v", s, back, err, id)
		}
	}
	if ID(0).String() != "" {
		t.Fatalf("zero ID formats to %q, want empty", ID(0).String())
	}
	if id, err := ParseID(""); id != 0 || err != nil {
		t.Fatalf("ParseID(\"\") = %v, %v, want 0, nil", id, err)
	}
	if _, err := ParseID("not-hex"); err == nil {
		t.Fatal("ParseID accepted garbage")
	}
}

func TestContextChildPropagation(t *testing.T) {
	var nilCtx *Context
	if nilCtx.Child(NewID()) != nil {
		t.Fatal("nil context derived a child")
	}
	if nilCtx.Trace() != 0 {
		t.Fatal("nil context has a trace ID")
	}
	c := NewContext()
	if !c.Sampled || c.Trace() == 0 {
		t.Fatalf("fresh context = %+v", c)
	}
	span := NewID()
	ch := c.Child(span)
	if ch.TraceID != c.TraceID {
		t.Fatalf("child trace ID %q != parent %q", ch.TraceID, c.TraceID)
	}
	if ch.ParentID != span.String() {
		t.Fatalf("child parent ID %q, want %q", ch.ParentID, span)
	}
	if !ch.Sampled {
		t.Fatal("child dropped the sampling decision")
	}
}
