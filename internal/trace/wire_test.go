package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func recWithSpans(t *testing.T, p, perRank int) *Recorder {
	t.Helper()
	rec := NewRecorder(p)
	for i := 0; i < p; i++ {
		r := rec.Rank(i)
		for j := 0; j < perRank; j++ {
			r.End(r.Begin(), SpanComposite, "stage1")
		}
	}
	return rec
}

func TestBuildWireShape(t *testing.T) {
	id := NewID()
	rec := recWithSpans(t, 3, 2)
	procTrack := []Span{
		{Name: "serve", Start: 0, Dur: 10 * time.Millisecond},
		{Name: "queue", Start: 0, Dur: 2 * time.Millisecond},
	}
	w := BuildWire(id, "renderd", 10*time.Millisecond, procTrack, rec)
	if w.TraceID != id.String() {
		t.Fatalf("trace id %q, want %q", w.TraceID, id)
	}
	if w.Total() != 10*time.Millisecond {
		t.Fatalf("total %v", w.Total())
	}
	if len(w.Procs) != 1 || w.Procs[0].Name != "renderd" {
		t.Fatalf("procs = %+v", w.Procs)
	}
	tracks := w.Procs[0].Tracks
	if len(tracks) != 4 { // server + 3 ranks
		t.Fatalf("tracks = %d, want 4", len(tracks))
	}
	if tracks[0].Name != "server" || len(tracks[0].Spans) != 2 {
		t.Fatalf("server track = %+v", tracks[0])
	}
	if tracks[1].Name != "rank 0" || len(tracks[1].Spans) != 2 {
		t.Fatalf("rank track = %+v", tracks[1])
	}
	if w.SpanCount() != 8 {
		t.Fatalf("span count = %d, want 8", w.SpanCount())
	}
	if w.Truncated {
		t.Fatal("small wire marked truncated")
	}

	// Empty ranks are skipped; nil recorder still yields the proc track.
	w2 := BuildWire(id, "renderd", time.Millisecond, procTrack, nil)
	if len(w2.Procs[0].Tracks) != 1 {
		t.Fatalf("nil-recorder tracks = %+v", w2.Procs[0].Tracks)
	}
}

func TestWireTruncate(t *testing.T) {
	id := NewID()
	rec := recWithSpans(t, 8, 200) // 1600 spans > MaxWireSpans
	w := BuildWire(id, "renderd", time.Second, []Span{{Name: "serve", Dur: time.Second}}, rec)
	if !w.Truncated {
		t.Fatal("oversized wire not flagged truncated")
	}
	if got := w.SpanCount(); got != MaxWireSpans {
		t.Fatalf("span count after truncate = %d, want %d", got, MaxWireSpans)
	}
	// The process-level track must survive the cut (document order).
	if w.Procs[0].Tracks[0].Name != "server" {
		t.Fatalf("first surviving track = %q", w.Procs[0].Tracks[0].Name)
	}
	// Truncated wires must stay well inside the 64 KiB reply-header
	// budget shared with the rest of the response JSON.
	b, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) > 56<<10 {
		t.Fatalf("truncated wire marshals to %d bytes, want <= %d", len(b), 56<<10)
	}
}

// TestTruncateAfterNestLeavesChildIntact pins the ownership contract:
// assemblers clone retained child trees into the merged Wire, so
// truncating the merge (the reply path does) must not corrupt the
// source — a flight export rebuilds from the same child later, possibly
// concurrently with the reply's JSON marshal.
func TestTruncateAfterNestLeavesChildIntact(t *testing.T) {
	id := NewID()
	rec := recWithSpans(t, 4, 100) // 400 spans across 4 rank tracks
	child := BuildWire(id, "renderd", time.Millisecond, nil, rec)
	spans, tracks := child.SpanCount(), len(child.Procs[0].Tracks)

	first := Nest("gateway", "request", "dispatch", 2*time.Millisecond, child)
	first.Truncate(10) // cuts deep into the child's copied tracks
	if got := first.SpanCount(); got != 10 {
		t.Fatalf("merged span count after truncate = %d, want 10", got)
	}
	if child.SpanCount() != spans || len(child.Procs[0].Tracks) != tracks {
		t.Fatalf("truncating the merge mutated the child: %d spans in %d tracks, want %d in %d",
			child.SpanCount(), len(child.Procs[0].Tracks), spans, tracks)
	}
	// A second export from the same child (the flight-recorder path)
	// sees the full tree again.
	second := Nest("gateway", "request", "dispatch", 2*time.Millisecond, child)
	if got := second.SpanCount(); got != spans+1 {
		t.Fatalf("re-merged span count = %d, want %d", got, spans+1)
	}
}

func TestMidpointOffset(t *testing.T) {
	// 10ms round trip, server worked 6ms: 4ms slack, server epoch sits
	// 2ms after dispatch.
	if got := MidpointOffset(100*time.Millisecond, 10*time.Millisecond, 6*time.Millisecond); got != 102*time.Millisecond {
		t.Fatalf("offset = %v, want 102ms", got)
	}
	// Server claims more wall time than the RTT (clock skew): clamp so
	// the child never starts before its parent.
	if got := MidpointOffset(100*time.Millisecond, 10*time.Millisecond, 20*time.Millisecond); got != 100*time.Millisecond {
		t.Fatalf("clamped offset = %v, want 100ms", got)
	}
}

func TestNestMergesChild(t *testing.T) {
	id := NewID()
	rec := recWithSpans(t, 1, 1)
	child := BuildWire(id, "renderd", 6*time.Millisecond, nil, rec)
	w := Nest("client", "client", "render rtt", 10*time.Millisecond, child)
	if w.TraceID != id.String() {
		t.Fatalf("nest dropped trace id: %q", w.TraceID)
	}
	if len(w.Procs) != 2 || w.Procs[0].Name != "client" || w.Procs[1].Name != "renderd" {
		t.Fatalf("procs = %+v", w.Procs)
	}
	root := w.Procs[0].Tracks[0].Spans[0]
	if root.Name != "render rtt" || root.DurUS != 10000 {
		t.Fatalf("root span = %+v", root)
	}
	if got := w.Procs[1].OffsetUS; got != 2000 { // (10ms-6ms)/2
		t.Fatalf("child offset = %v us, want 2000", got)
	}
	// Nil child still yields the parent-only wire.
	if w := Nest("client", "client", "rtt", time.Millisecond, nil); len(w.Procs) != 1 {
		t.Fatalf("nil-child nest = %+v", w.Procs)
	}
}

func TestWirePerfettoExport(t *testing.T) {
	id := NewID()
	rec := recWithSpans(t, 2, 1)
	child := BuildWire(id, "replica 0", 5*time.Millisecond, nil, rec)
	w := Nest("gateway", "request", "dispatch", 9*time.Millisecond, child)

	var buf bytes.Buffer
	if err := w.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if f.TraceID != id.String() {
		t.Fatalf("file trace id = %q, want %q", f.TraceID, id)
	}
	pids := map[int]bool{}
	procNames := map[string]bool{}
	var complete int
	for _, ev := range f.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "process_name" {
				procNames[ev.Args["name"].(string)] = true
			}
		case "X":
			complete++
			pids[ev.PID] = true
			if ev.TS < 0 || ev.Dur < 0 {
				t.Fatalf("negative ts/dur: %+v", ev)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if !procNames["gateway"] || !procNames["replica 0"] {
		t.Fatalf("process names = %v", procNames)
	}
	if len(pids) != 2 {
		t.Fatalf("distinct pids = %d, want 2", len(pids))
	}
	if complete != 3 { // 1 gateway span + 2 rank spans
		t.Fatalf("complete events = %d, want 3", complete)
	}
	// Child spans must land inside the parent window after offsetting.
	off := w.Procs[1].OffsetUS
	for _, tr := range w.Procs[1].Tracks {
		for _, s := range tr.Spans {
			if off+s.StartUS < 0 || off+s.StartUS+s.DurUS > 9000+1 {
				t.Fatalf("child span escapes parent window: off=%v span=%+v", off, s)
			}
		}
	}
}
