//go:build race

package trace

// raceEnabled gates allocation assertions: the race detector
// instruments memory operations and inflates allocation counts, so
// alloc-exactness tests skip under -race (same guard as the repo's
// compositing allocs benchmarks).
const raceEnabled = true
