package trace

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

func TestFlightTailSampling(t *testing.T) {
	f := NewFlight(8)

	// First frame: empty window, p99 = 0, everything is "at the tail".
	if !f.Observe(FlightEntry{Outcome: "ok", Latency: 5 * time.Millisecond}) {
		t.Fatal("first frame not kept")
	}
	// Warm the window with 100 fast frames; most drop once the window
	// has mass, since they are below the running p99.
	kept := 0
	for i := 0; i < 100; i++ {
		if f.Observe(FlightEntry{Outcome: "ok", Latency: time.Millisecond}) {
			kept++
		}
	}
	if kept > 5 {
		t.Fatalf("kept %d of 100 identical fast frames, want few", kept)
	}

	// Errors and hedges always stay, regardless of latency.
	if !f.Observe(FlightEntry{Outcome: "world_failed", Latency: time.Microsecond}) {
		t.Fatal("error frame dropped")
	}
	if !f.Observe(FlightEntry{Outcome: "ok", Hedged: true, Latency: time.Microsecond}) {
		t.Fatal("hedged frame dropped")
	}
	// A new slowest-ever frame is ≥ the old p99 and stays.
	if !f.Observe(FlightEntry{Outcome: "ok", Latency: time.Second}) {
		t.Fatal("new slowest frame dropped")
	}
	// Cache hits never qualify via latency (their microsecond latencies
	// also stay out of the window).
	if f.Observe(FlightEntry{Outcome: "ok", Cached: true, Latency: 2 * time.Second}) {
		t.Fatal("cached frame kept via p99 rule")
	}

	// Reasons recorded, newest first.
	entries := f.Entries()
	if len(entries) == 0 || entries[0].Reason != "p99" {
		t.Fatalf("entries[0] = %+v", entries)
	}
	var reasons []string
	for _, e := range entries {
		reasons = append(reasons, e.Reason)
	}
	if reasons[1] != "hedged" || reasons[2] != "error" {
		t.Fatalf("reasons = %v", reasons)
	}
}

// TestFlightWindowIgnoresErrors pins the p99 window's diet: fast
// rejections (overloaded/shutdown answer in microseconds) must not feed
// the latency window, or during and after an overload burst the
// threshold collapses and every ordinary frame qualifies as ">= p99",
// churning the ring and evicting genuinely interesting entries. Errors
// are kept unconditionally, so they need no say in the threshold.
func TestFlightWindowIgnoresErrors(t *testing.T) {
	f := NewFlight(8)
	for i := 0; i < flightWindow; i++ {
		f.Observe(FlightEntry{Outcome: "ok", Latency: 10 * time.Millisecond})
	}
	// An overload burst: twice the window size of microsecond rejections.
	for i := 0; i < 2*flightWindow; i++ {
		if !f.Observe(FlightEntry{Outcome: "overloaded", Latency: time.Microsecond}) {
			t.Fatal("error frame dropped")
		}
	}
	// An ordinary 5ms frame is still below the 10ms tail and drops; with
	// the window polluted it would have been "kept: p99".
	if f.Observe(FlightEntry{Outcome: "ok", Latency: 5 * time.Millisecond}) {
		t.Fatal("ordinary frame kept after an error burst: errors fed the p99 window")
	}
}

func TestFlightRingEviction(t *testing.T) {
	f := NewFlight(4)
	for i := 0; i < 10; i++ {
		// Errors bypass the latency rule, so all 10 are kept.
		f.Observe(FlightEntry{Outcome: "deadline", Latency: time.Duration(i) * time.Millisecond})
	}
	if f.Len() != 4 {
		t.Fatalf("len = %d, want 4", f.Len())
	}
	es := f.Entries()
	if len(es) != 4 {
		t.Fatalf("entries = %d, want 4", len(es))
	}
	for i, e := range es {
		if want := uint64(10 - i); e.Seq != want {
			t.Fatalf("entries[%d].Seq = %d, want %d (newest first)", i, e.Seq, want)
		}
	}
}

func TestFlightNilDisabled(t *testing.T) {
	var f *Flight
	if f.Observe(FlightEntry{Outcome: "error"}) {
		t.Fatal("nil flight kept an entry")
	}
	if f.Len() != 0 || f.Entries() != nil {
		t.Fatal("nil flight accessors not zero-valued")
	}
	rr := httptest.NewRecorder()
	f.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/flight", nil))
	if rr.Code != 404 {
		t.Fatalf("nil flight HTTP status = %d, want 404", rr.Code)
	}
}

func TestFlightHTTP(t *testing.T) {
	f := NewFlight(8)
	id := NewID()
	rec := recWithSpans(t, 2, 1)
	wire := BuildWire(id, "renderd", time.Millisecond, nil, rec)
	f.Observe(FlightEntry{
		TraceID: id.String(),
		Outcome: "ok",
		Latency: 40 * time.Millisecond,
		Detail:  "bsbrc 256x256",
		Trace:   func() *Wire { return wire },
	})

	// List form.
	rr := httptest.NewRecorder()
	f.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/flight", nil))
	if rr.Code != 200 {
		t.Fatalf("list status = %d", rr.Code)
	}
	var list struct {
		Entries []struct {
			Seq     uint64  `json:"seq"`
			TraceID string  `json:"trace_id"`
			MS      float64 `json:"ms"`
			Outcome string  `json:"outcome"`
			Detail  string  `json:"detail"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &list); err != nil {
		t.Fatalf("list is not valid JSON: %v", err)
	}
	if len(list.Entries) != 1 {
		t.Fatalf("entries = %+v", list.Entries)
	}
	e := list.Entries[0]
	if e.TraceID != id.String() || e.MS != 40 || e.Detail != "bsbrc 256x256" {
		t.Fatalf("entry = %+v", e)
	}

	// Per-entry Perfetto export, by trace id and by seq.
	for _, key := range []string{id.String(), "1"} {
		rr = httptest.NewRecorder()
		f.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/flight?trace="+key, nil))
		if rr.Code != 200 {
			t.Fatalf("export(%q) status = %d", key, rr.Code)
		}
		var file File
		if err := json.Unmarshal(rr.Body.Bytes(), &file); err != nil {
			t.Fatalf("export is not valid JSON: %v", err)
		}
		if file.TraceID != id.String() || len(file.TraceEvents) == 0 {
			t.Fatalf("export file = %+v", file)
		}
	}

	// Unknown key.
	rr = httptest.NewRecorder()
	f.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/flight?trace=ffff", nil))
	if rr.Code != 404 {
		t.Fatalf("unknown key status = %d, want 404", rr.Code)
	}
}
