//go:build !race

package trace

// raceEnabled gates allocation assertions; see race.go.
const raceEnabled = false
