package trace

import (
	"fmt"
	"io"
	"time"
)

// The wire trace is the cross-process span-tree format: what a replica
// returns in its reply header when a request is sampled, what the
// gateway assembles from its own spans plus every attempt's returned
// tree, and what /debug/flight exports as Perfetto JSON. It is a list
// of processes, each a list of named tracks, each a list of spans with
// microsecond offsets from the process's own epoch; a process-level
// OffsetUS places the process on the merged timeline (zero for the
// process that assembled the trace, a clock-alignment estimate for
// everyone nested under it).

// MaxWireSpans caps the spans one wire trace carries. Reply headers are
// read under the protocol's 64 KiB request-frame limit, so the span
// tree must stay well inside it; a P=8 frame records ~200 spans, so the
// cap only bites on deep worlds, and Truncated says so.
const MaxWireSpans = 768

// WireSpan is one span, microseconds from its process's epoch.
type WireSpan struct {
	Name    string  `json:"n"`
	Stage   string  `json:"g,omitempty"`
	StartUS float64 `json:"s"`
	DurUS   float64 `json:"d"`
}

// WireTrack is one timeline of non-overlapping-or-nested spans (one
// rank, one dispatch attempt, one server's request view).
type WireTrack struct {
	Name  string     `json:"name"`
	Spans []WireSpan `json:"spans"`
}

// WireProc is one process's tracks. OffsetUS shifts the whole process
// onto the assembling process's timeline.
type WireProc struct {
	Name     string      `json:"name"`
	OffsetUS float64     `json:"offset_us,omitempty"`
	Tracks   []WireTrack `json:"tracks"`
}

// Clone deep-copies the process: fresh Tracks and Spans arrays, so the
// copy can be renamed, offset, and Truncated without mutating the
// source. Assemblers that merge retained child trees into a new Wire
// (the gateway, Nest) must clone — the same child is merged again on a
// later flight export, and Truncate rewrites slices in place.
func (p WireProc) Clone() WireProc {
	out := p
	out.Tracks = make([]WireTrack, len(p.Tracks))
	for i, tr := range p.Tracks {
		tr.Spans = append([]WireSpan(nil), tr.Spans...)
		out.Tracks[i] = tr
	}
	return out
}

// Wire is one request's (partial or merged) trace.
type Wire struct {
	TraceID string `json:"trace_id"`
	// TotalUS is the assembling process's wall time for the request —
	// the quantity the next tier up combines with its measured RTT to
	// estimate the clock offset (see MidpointOffset).
	TotalUS   float64    `json:"total_us"`
	Truncated bool       `json:"truncated,omitempty"`
	Procs     []WireProc `json:"procs"`
}

// Total returns TotalUS as a duration.
func (w *Wire) Total() time.Duration {
	return time.Duration(w.TotalUS * float64(time.Microsecond))
}

// SpanCount sums the spans across all processes and tracks.
func (w *Wire) SpanCount() int {
	n := 0
	for _, p := range w.Procs {
		for _, tr := range p.Tracks {
			n += len(tr.Spans)
		}
	}
	return n
}

func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// toWireSpans converts recorder spans to their wire form.
func toWireSpans(spans []Span) []WireSpan {
	out := make([]WireSpan, len(spans))
	for i, s := range spans {
		out[i] = WireSpan{Name: s.Name, Stage: s.Stage, StartUS: us(s.Start), DurUS: us(s.Dur)}
	}
	return out
}

// BuildWire flattens one process's view of a request into a wire trace:
// an optional process-level track (queue/serve spans the server derives
// from its own timestamps) followed by one track per recorder rank.
// rec may be nil (tracing disabled server-side); the process track
// alone still tells the caller where queue time went. The result is
// capped at MaxWireSpans.
func BuildWire(traceID ID, proc string, total time.Duration, procTrack []Span, rec *Recorder) *Wire {
	w := &Wire{TraceID: traceID.String(), TotalUS: us(total)}
	p := WireProc{Name: proc}
	if len(procTrack) > 0 {
		p.Tracks = append(p.Tracks, WireTrack{Name: "server", Spans: toWireSpans(procTrack)})
	}
	for i, spans := range rec.Snapshot() {
		if len(spans) == 0 {
			continue
		}
		p.Tracks = append(p.Tracks, WireTrack{Name: fmt.Sprintf("rank %d", i), Spans: toWireSpans(spans)})
	}
	w.Procs = []WireProc{p}
	w.Truncate(MaxWireSpans)
	return w
}

// Truncate drops spans past the cap in document order (process-level
// tracks come first, so the umbrella spans survive and the deepest rank
// detail goes), and flags the trace as truncated. It rewrites the
// Tracks/Spans slice headers in place, so the Wire must own them —
// merge retained child procs with Clone before calling.
func (w *Wire) Truncate(max int) {
	left := max
	for pi := range w.Procs {
		p := &w.Procs[pi]
		for ti := range p.Tracks {
			tr := &p.Tracks[ti]
			if len(tr.Spans) <= left {
				left -= len(tr.Spans)
				continue
			}
			tr.Spans = tr.Spans[:left]
			left = 0
			w.Truncated = true
		}
	}
	if w.Truncated {
		for pi := range w.Procs {
			p := &w.Procs[pi]
			// Compact into a fresh slice: filtering through p.Tracks[:0]
			// would scribble over a backing array the source tree may
			// still share.
			kept := make([]WireTrack, 0, len(p.Tracks))
			for _, tr := range p.Tracks {
				if len(tr.Spans) > 0 {
					kept = append(kept, tr)
				}
			}
			p.Tracks = kept
		}
	}
}

// MidpointOffset estimates where a remote process's epoch falls on the
// local timeline. The dispatch left at start (local clock), the reply
// arrived rtt later, and the remote reports total wall time handling
// it; assuming symmetric transit (the NTP midpoint assumption), the
// remote window sits centered in the slack. Negative slack — the remote
// claims more wall time than the round trip, i.e. clock drift larger
// than the transit — clamps to zero so spans never escape their parent
// window leftwards.
func MidpointOffset(start, rtt, total time.Duration) time.Duration {
	slack := rtt - total
	if slack < 0 {
		slack = 0
	}
	return start + slack/2
}

// Nest wraps child under a single parent span covering rtt on the
// caller's clock: the result's first process is the parent (one track,
// one span), and the child's processes shift by the midpoint offset so
// they sit centered inside the parent window. Used by clients to put a
// "client wait" root over the tree a server returned. child may be nil.
func Nest(proc, track, span string, rtt time.Duration, child *Wire) *Wire {
	out := &Wire{TotalUS: us(rtt)}
	parent := WireProc{Name: proc, Tracks: []WireTrack{{
		Name:  track,
		Spans: []WireSpan{{Name: span, DurUS: us(rtt)}},
	}}}
	out.Procs = append(out.Procs, parent)
	if child != nil {
		out.TraceID = child.TraceID
		out.Truncated = child.Truncated
		off := us(MidpointOffset(0, rtt, child.Total()))
		for _, p := range child.Procs {
			p = p.Clone() // the result may be Truncated; leave child intact
			p.OffsetUS += off
			out.Procs = append(out.Procs, p)
		}
	}
	return out
}

// Events flattens the wire trace into Chrome trace events: one pid per
// process, one tid per track, timestamps shifted by the process offset.
func (w *Wire) Events() []Event {
	var events []Event
	for pi, p := range w.Procs {
		events = append(events, Event{
			Name: "process_name", Ph: "M", PID: pi, TID: 0,
			Args: map[string]any{"name": p.Name},
		})
		for ti, tr := range p.Tracks {
			events = append(events, Event{
				Name: "thread_name", Ph: "M", PID: pi, TID: ti,
				Args: map[string]any{"name": tr.Name},
			})
			for _, s := range tr.Spans {
				ev := Event{
					Name: s.Name, Ph: "X",
					TS: p.OffsetUS + s.StartUS, Dur: s.DurUS,
					PID: pi, TID: ti,
				}
				if s.Stage != "" {
					ev.Args = map[string]any{"stage": s.Stage}
				}
				events = append(events, ev)
			}
		}
	}
	return events
}

// WritePerfetto writes the wire trace as Chrome/Perfetto trace-event
// JSON, the trace ID carried as a top-level field.
func (w *Wire) WritePerfetto(dst io.Writer) error {
	return writeTraceFile(dst, File{TraceID: w.TraceID, TraceEvents: w.Events(), DisplayTimeUnit: "ms"})
}
