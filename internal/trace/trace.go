// Package trace is a low-overhead wall-clock span recorder for the
// sort-last pipeline. Where internal/stats counts the paper's exact
// quantities (pixels, codes, bytes) and internal/costmodel turns them
// into *modeled* SP2 times, this package records where wall-clock time
// *actually* goes on the host: one append-only span buffer per rank,
// monotonic timestamps against a shared epoch, and static span names so
// recording a span never formats or allocates.
//
// Tracing is opt-in per run. Every method is a no-op on a nil *Rank or
// nil *Recorder, so instrumented code calls Begin/End unconditionally
// and a tracing-disabled run pays two nil checks per span — no clock
// reads, no locks, no allocations (asserted in tests). When enabled,
// appends reuse buffer capacity across frames (Reset keeps storage), so
// steady-state recording allocates nothing either; each rank's buffer
// takes a private uncontended mutex per span so exporters can snapshot
// a live recorder safely (the serving tier reads the last frame's trace
// while the next frame records).
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Canonical span names. Static strings: recording them copies a string
// header, never formats. Per-stage spans reuse the compositors' stage
// labels ("stage1", "stage2", ...) as both name and Stage attribute.
const (
	// SpanRender is one rank's whole rendering phase.
	SpanRender = "render"
	// SpanRaycast is the ray-casting inner loop (child of SpanRender).
	SpanRaycast = "raycast"
	// SpanGridBuild is the ray caster's kernel setup — transfer-derived
	// tables plus the once-per-volume macro-cell grid build (child of
	// SpanRaycast; near-zero once the volume's grid is cached).
	SpanGridBuild = "grid-build"
	// SpanCompositing is one rank's whole compositing phase.
	SpanCompositing = "compositing"
	// SpanGather is the final-image gather at rank 0.
	SpanGather = "gather"
	// SpanBound is the initial bounding-rectangle scan (BSBR/BSBRC).
	SpanBound = "bound"
	// SpanEncode is a stage's payload build: bounding-rectangle pack
	// and/or run-length encode.
	SpanEncode = "encode"
	// SpanComposite is a stage's over-compositing of received pixels.
	SpanComposite = "composite"
	// SpanSendWait is time spent inside the comm layer's Send (buffered
	// copy in-process; syscall wait over TCP).
	SpanSendWait = "send-wait"
	// SpanRecvWait is time blocked in the comm layer's Recv waiting for
	// the partner's message.
	SpanRecvWait = "recv-wait"
)

// StageGather labels comm spans issued during the final gather.
const StageGather = "gather"

// StageRoute and StageMerge label the two phases of the tile-routed
// compositors (internal/tilecomp): route is the encode-and-send fan-out
// to the strip/tile owners, merge is the owner's depth-ordered
// compositing of the received contributions.
const (
	StageRoute = "route"
	StageMerge = "merge"
)

// Span is one timed interval on one rank's track. Start is the offset
// from the recorder's epoch, so spans from different ranks align.
type Span struct {
	Name  string
	Stage string // compositing stage label, "" outside stages
	Start time.Duration
	Dur   time.Duration
}

// End returns the span's end offset.
func (s Span) End() time.Duration { return s.Start + s.Dur }

// Mark is an opaque begin timestamp returned by Rank.Begin.
type Mark time.Duration

// Rank is one rank's span buffer. A nil *Rank is the disabled recorder:
// every method is a no-op. The buffer has a single writer (the rank's
// goroutine); the mutex exists so exporters can snapshot concurrently.
type Rank struct {
	id    int
	epoch time.Time

	mu    sync.Mutex
	spans []Span
}

// ID returns the rank number.
func (r *Rank) ID() int {
	if r == nil {
		return -1
	}
	return r.id
}

// Enabled reports whether spans are being recorded.
func (r *Rank) Enabled() bool { return r != nil }

// Begin starts a span and returns its mark. On a nil Rank it returns 0
// without reading the clock.
func (r *Rank) Begin() Mark {
	if r == nil {
		return 0
	}
	return Mark(time.Since(r.epoch))
}

// End records the span opened at m under a static name and stage label.
func (r *Rank) End(m Mark, name, stage string) {
	if r == nil {
		return
	}
	now := time.Since(r.epoch)
	r.mu.Lock()
	r.spans = append(r.spans, Span{Name: name, Stage: stage, Start: time.Duration(m), Dur: now - time.Duration(m)})
	r.mu.Unlock()
}

// Spans returns a copy of the recorded spans, in end order (children
// before the spans that contain them).
func (r *Rank) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Span(nil), r.spans...)
}

// Total sums the durations of spans with the given name.
func (r *Rank) Total(name string) time.Duration {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var d time.Duration
	for i := range r.spans {
		if r.spans[i].Name == name {
			d += r.spans[i].Dur
		}
	}
	return d
}

// reset truncates the buffer, keeping its storage.
func (r *Rank) reset() {
	r.mu.Lock()
	r.spans = r.spans[:0]
	r.mu.Unlock()
}

// spansPerRankHint sizes a rank's initial buffer: a deep world frame
// records a handful of spans per binary-swap stage plus the phase and
// gather spans; 256 covers P=64 runs without growing.
const spansPerRankHint = 256

// Recorder holds the span buffers of one world, one track per rank,
// sharing a single epoch so the tracks align. A nil *Recorder is the
// disabled recorder: Rank returns nil and exports are empty.
type Recorder struct {
	epoch   time.Time
	ranks   []*Rank
	traceID atomic.Uint64
}

// SetTraceID tags the recorder with the distributed trace it records
// for. One plain store outside the rank span path: Begin/End never
// touch it, so the zero-alloc pin is unaffected.
func (rec *Recorder) SetTraceID(id ID) {
	if rec == nil {
		return
	}
	rec.traceID.Store(uint64(id))
}

// TraceID returns the recorder's trace identity, zero when untagged.
func (rec *Recorder) TraceID() ID {
	if rec == nil {
		return 0
	}
	return ID(rec.traceID.Load())
}

// NewRecorder creates a recorder for a world of p ranks.
func NewRecorder(p int) *Recorder {
	rec := &Recorder{epoch: time.Now(), ranks: make([]*Rank, p)}
	for i := range rec.ranks {
		rec.ranks[i] = &Rank{id: i, epoch: rec.epoch, spans: make([]Span, 0, spansPerRankHint)}
	}
	return rec
}

// Rank returns rank i's buffer, nil when the recorder is nil or i is
// out of range (both mean "tracing disabled" to the instrumented code).
func (rec *Recorder) Rank(i int) *Rank {
	if rec == nil || i < 0 || i >= len(rec.ranks) {
		return nil
	}
	return rec.ranks[i]
}

// Size returns the number of rank tracks.
func (rec *Recorder) Size() int {
	if rec == nil {
		return 0
	}
	return len(rec.ranks)
}

// Reset truncates every rank's buffer, keeping storage, so a standing
// recorder can be reused frame to frame without allocating.
func (rec *Recorder) Reset() {
	if rec == nil {
		return
	}
	rec.traceID.Store(0)
	for _, r := range rec.ranks {
		r.reset()
	}
}

// Snapshot copies every rank's spans, indexed by rank.
func (rec *Recorder) Snapshot() [][]Span {
	if rec == nil {
		return nil
	}
	out := make([][]Span, len(rec.ranks))
	for i, r := range rec.ranks {
		out[i] = r.Spans()
	}
	return out
}

// MaxTotal returns the slowest rank's summed duration for one span
// name — the completion-time bound for a phase, the quantity the
// serving tier's per-phase latency histograms observe.
func (rec *Recorder) MaxTotal(name string) time.Duration {
	if rec == nil {
		return 0
	}
	var max time.Duration
	for _, r := range rec.ranks {
		if d := r.Total(name); d > max {
			max = d
		}
	}
	return max
}
