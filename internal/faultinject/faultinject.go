// Package faultinject wraps mp.Transport endpoints with deterministic
// fault injection, so the failure paths of the serving stack can be
// exercised from tests and load drivers instead of waiting for a real
// interconnect to misbehave. The paper's SP2 runs assume a perfectly
// reliable network; a service built on the same exchange patterns needs
// its wedged-rank and lost-message behavior pinned by tests.
//
// An Injector is configured once (probabilistic drops, delays and
// connection resets, seeded so a run is reproducible) and then wraps
// each world incarnation's per-rank transports via BeginWorld + Wrap.
// On top of the probabilistic faults, tests can arm deterministic
// faults against the current incarnation: Crash(rank) makes every
// operation on that rank's transport fail (the in-process equivalent of
// the rank's process dying), Stall(rank, d) makes them block (a wedged
// or pathologically slow rank). Armed faults do not carry over to the
// next incarnation — a restarted world starts healthy, which is exactly
// the recovery the supervision layer is supposed to deliver.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"sortlast/internal/mp"
)

// Sentinel errors for injected faults, so tests and logs can tell an
// injected failure from a real one.
var (
	// ErrCrashed is returned by every operation on a crashed rank's
	// transport.
	ErrCrashed = errors.New("faultinject: rank crashed")
	// ErrReset is returned by an operation that drew a connection reset.
	ErrReset = errors.New("faultinject: connection reset")
)

// Config sets the probabilistic fault mix. All probabilities are per
// message operation and default to zero (no faults); an Injector with a
// zero Config is a transparent pass-through until a deterministic fault
// is armed.
type Config struct {
	// Seed makes the probabilistic draws reproducible. Zero means 1.
	Seed int64

	// DropProb silently discards a Send (the message is lost in the
	// network; the receiver waits until a timeout or watchdog fires).
	DropProb float64
	// ResetProb fails a Send or Recv with ErrReset, as a torn TCP
	// connection would.
	ResetProb float64
	// DelayProb holds a Send for a uniform duration in (0, MaxDelay].
	DelayProb float64
	// MaxDelay bounds injected delays; zero means 1ms.
	MaxDelay time.Duration
}

func (c Config) maxDelay() time.Duration {
	if c.MaxDelay <= 0 {
		return time.Millisecond
	}
	return c.MaxDelay
}

// Injector owns the fault state shared by all wrapped transports. It is
// safe for concurrent use by all rank goroutines.
type Injector struct {
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand
	gen *generation
}

// generation is one world incarnation's deterministic fault state.
// Sleeps (stalls, delays) select on done so a torn-down world never
// keeps a rank goroutine sleeping past its teardown.
type generation struct {
	mu      sync.Mutex
	crashed map[int]bool
	stalled map[int]time.Duration
	done    chan struct{}
	closed  bool
}

func (g *generation) end() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.closed {
		g.closed = true
		close(g.done)
	}
}

// New returns an injector with the given probabilistic fault mix.
func New(cfg Config) *Injector {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Injector{
		cfg: cfg,
		rng: rand.New(rand.NewSource(seed)),
		gen: &generation{done: make(chan struct{})},
	}
}

// BeginWorld starts a fresh incarnation: armed crashes and stalls from
// the previous incarnation are dropped and its in-flight sleeps are
// released. Call it once per world build, before wrapping the ranks.
func (inj *Injector) BeginWorld() {
	inj.mu.Lock()
	prev := inj.gen
	inj.gen = &generation{done: make(chan struct{})}
	inj.mu.Unlock()
	prev.end()
}

// EndWorld releases every in-flight injected sleep of the current
// incarnation (armed crashes stay armed until BeginWorld). Teardown
// paths call it so a stalled rank unblocks immediately instead of
// sleeping out its injected stall.
func (inj *Injector) EndWorld() {
	inj.mu.Lock()
	g := inj.gen
	inj.mu.Unlock()
	g.end()
}

// Wrap wraps one rank's transport for the current incarnation.
func (inj *Injector) Wrap(rank int, tr mp.Transport) mp.Transport {
	inj.mu.Lock()
	g := inj.gen
	inj.mu.Unlock()
	return &transport{inj: inj, gen: g, rank: rank, tr: tr}
}

// WrapWorld is BeginWorld plus Wrap over a whole rank pool.
func (inj *Injector) WrapWorld(trs []mp.Transport) []mp.Transport {
	inj.BeginWorld()
	out := make([]mp.Transport, len(trs))
	for r, tr := range trs {
		out[r] = inj.Wrap(r, tr)
	}
	return out
}

// Crash arms a deterministic crash: every subsequent operation on the
// rank's transport (this incarnation only) fails with ErrCrashed.
func (inj *Injector) Crash(rank int) {
	g := inj.current()
	g.mu.Lock()
	if g.crashed == nil {
		g.crashed = make(map[int]bool)
	}
	g.crashed[rank] = true
	g.mu.Unlock()
}

// Stall arms a deterministic stall: every subsequent operation on the
// rank's transport (this incarnation only) sleeps d before proceeding,
// released early by EndWorld/BeginWorld.
func (inj *Injector) Stall(rank int, d time.Duration) {
	g := inj.current()
	g.mu.Lock()
	if g.stalled == nil {
		g.stalled = make(map[int]time.Duration)
	}
	g.stalled[rank] = d
	g.mu.Unlock()
}

func (inj *Injector) current() *generation {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.gen
}

// roll draws one seeded Bernoulli sample.
func (inj *Injector) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	inj.mu.Lock()
	v := inj.rng.Float64()
	inj.mu.Unlock()
	return v < p
}

// delay draws one seeded uniform delay in (0, max].
func (inj *Injector) delay(max time.Duration) time.Duration {
	inj.mu.Lock()
	v := inj.rng.Int63n(int64(max))
	inj.mu.Unlock()
	return time.Duration(v) + 1
}

// transport is one rank's fault-wrapped endpoint.
type transport struct {
	inj  *Injector
	gen  *generation
	rank int
	tr   mp.Transport
}

// check applies the rank's armed deterministic faults: a stall sleeps
// (released by EndWorld), a crash fails the operation.
func (t *transport) check() error {
	t.gen.mu.Lock()
	crashed := t.gen.crashed[t.rank]
	stall := t.gen.stalled[t.rank]
	t.gen.mu.Unlock()
	if stall > 0 {
		t.sleep(stall)
	}
	if crashed {
		return fmt.Errorf("%w (rank %d)", ErrCrashed, t.rank)
	}
	return nil
}

// sleep blocks for d or until the incarnation is torn down.
func (t *transport) sleep(d time.Duration) {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-t.gen.done:
	}
}

// Send implements mp.Transport.
func (t *transport) Send(to, tag int, payload []byte) error {
	if err := t.check(); err != nil {
		return err
	}
	if t.inj.roll(t.inj.cfg.ResetProb) {
		return fmt.Errorf("%w (rank %d send to %d)", ErrReset, t.rank, to)
	}
	if t.inj.roll(t.inj.cfg.DropProb) {
		return nil // lost in the network: the receiver never sees it
	}
	if t.inj.roll(t.inj.cfg.DelayProb) {
		t.sleep(t.inj.delay(t.inj.cfg.maxDelay()))
	}
	return t.tr.Send(to, tag, payload)
}

// Recv implements mp.Transport.
func (t *transport) Recv(from, tag int, timeout time.Duration) ([]byte, error) {
	if err := t.check(); err != nil {
		return nil, err
	}
	if t.inj.roll(t.inj.cfg.ResetProb) {
		return nil, fmt.Errorf("%w (rank %d recv from %d)", ErrReset, t.rank, from)
	}
	return t.tr.Recv(from, tag, timeout)
}
