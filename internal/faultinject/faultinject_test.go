package faultinject

import (
	"errors"
	"testing"
	"time"

	"sortlast/internal/mp"
)

// echoPair builds a 2-rank in-process world with both transports wrapped
// by inj.
func echoPair(inj *Injector) ([]mp.Transport, error) {
	w, err := mp.NewWorld(2, mp.Options{})
	if err != nil {
		return nil, err
	}
	return inj.WrapWorld([]mp.Transport{w.Transport(0), w.Transport(1)}), nil
}

func TestPassThrough(t *testing.T) {
	trs, err := echoPair(New(Config{}))
	if err != nil {
		t.Fatal(err)
	}
	if err := trs[0].Send(1, 7, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	msg, err := trs[1].Recv(0, 7, time.Second)
	if err != nil || string(msg) != "hi" {
		t.Fatalf("Recv = %q, %v", msg, err)
	}
}

func TestCrashFailsAllOps(t *testing.T) {
	inj := New(Config{})
	trs, err := echoPair(inj)
	if err != nil {
		t.Fatal(err)
	}
	inj.Crash(1)
	if err := trs[1].Send(0, 1, nil); !errors.Is(err, ErrCrashed) {
		t.Errorf("crashed Send = %v, want ErrCrashed", err)
	}
	if _, err := trs[1].Recv(0, 1, time.Second); !errors.Is(err, ErrCrashed) {
		t.Errorf("crashed Recv = %v, want ErrCrashed", err)
	}
	// The other rank's transport is unaffected.
	if err := trs[0].Send(1, 1, nil); err != nil {
		t.Errorf("healthy Send = %v", err)
	}
}

// A fresh incarnation starts healthy: crashes armed against the previous
// world do not carry over.
func TestBeginWorldClearsArmedFaults(t *testing.T) {
	inj := New(Config{})
	if _, err := echoPair(inj); err != nil {
		t.Fatal(err)
	}
	inj.Crash(0)
	inj.Stall(1, time.Hour)
	trs, err := echoPair(inj) // WrapWorld calls BeginWorld
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- trs[0].Send(1, 1, nil) }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Send on fresh incarnation = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fresh incarnation still stalled or crashed")
	}
}

// EndWorld releases an in-flight stall promptly, so teardown never waits
// out an injected sleep.
func TestEndWorldReleasesStall(t *testing.T) {
	inj := New(Config{})
	trs, err := echoPair(inj)
	if err != nil {
		t.Fatal(err)
	}
	inj.Stall(1, time.Hour)
	done := make(chan error, 1)
	go func() { done <- trs[1].Send(0, 1, nil) }()
	time.Sleep(20 * time.Millisecond) // let the Send enter the stall
	inj.EndWorld()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("EndWorld did not release the stalled Send")
	}
}

// The probabilistic draws are reproducible for a fixed seed.
func TestSeedDeterminism(t *testing.T) {
	draws := func(seed int64) []bool {
		inj := New(Config{Seed: seed, DropProb: 0.3})
		out := make([]bool, 64)
		for i := range out {
			out[i] = inj.roll(inj.cfg.DropProb)
		}
		return out
	}
	a, b := draws(42), draws(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs for the same seed", i)
		}
	}
	c := draws(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical draw sequences")
	}
}

// A dropped Send reports success but the message never arrives.
func TestDropLosesMessage(t *testing.T) {
	inj := New(Config{DropProb: 1})
	trs, err := echoPair(inj)
	if err != nil {
		t.Fatal(err)
	}
	if err := trs[0].Send(1, 3, []byte("x")); err != nil {
		t.Fatalf("dropped Send = %v, want nil", err)
	}
	if _, err := trs[1].Recv(0, 3, 50*time.Millisecond); !errors.Is(err, mp.ErrTimeout) {
		t.Errorf("Recv after drop = %v, want timeout", err)
	}
}

func TestResetFailsOp(t *testing.T) {
	inj := New(Config{ResetProb: 1})
	trs, err := echoPair(inj)
	if err != nil {
		t.Fatal(err)
	}
	if err := trs[0].Send(1, 3, nil); !errors.Is(err, ErrReset) {
		t.Errorf("Send under ResetProb=1 = %v, want ErrReset", err)
	}
}
