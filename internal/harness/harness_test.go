package harness

import (
	"testing"

	"sortlast/internal/frame"
	"sortlast/internal/rle"
	"sortlast/internal/transfer"
	"sortlast/internal/volume"
)

// smallCfg uses a tiny custom volume so harness tests stay fast; the
// paper-scale datasets are exercised by the benchmarks.
func smallCfg(method string, p int) Config {
	return Config{
		Dataset: "engine_low", // label and transfer function
		Volume:  volume.EngineBlock(32, 32, 16),
		Width:   64, Height: 64,
		P:      p,
		Method: method,
	}
}

func TestRunAllMethods(t *testing.T) {
	for _, m := range []string{"bs", "bsbr", "bslc", "bsbrc", "direct", "pipeline", "bintree", "bsdpf", "bsvc"} {
		row, err := Run(smallCfg(m, 4))
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if row.TotalMS <= 0 || row.TotalMS != row.CompMS+row.CommMS {
			t.Errorf("%s: totals inconsistent: %+v", m, row)
		}
		if row.NonBlank == 0 {
			t.Errorf("%s: final image is blank", m)
		}
		if row.P != 4 || row.Width != 64 {
			t.Errorf("%s: row echo wrong: %+v", m, row)
		}
	}
}

func TestRunWithImageMatchesAcrossMethods(t *testing.T) {
	cfg := smallCfg("bs", 4)
	cfg.RenderOpts.EarlyTermination = -1
	_, ref, err := RunWithImage(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"bsbr", "bslc", "bsbrc"} {
		c := smallCfg(m, 4)
		c.RenderOpts.EarlyTermination = -1
		_, img, err := RunWithImage(c)
		if err != nil {
			t.Fatal(err)
		}
		if d := ref.MaxAbsDiff(img, ref.Full()); d != 0 {
			t.Errorf("%s image differs from bs by %g", m, d)
		}
	}
}

func TestRunNonPowerOfTwoFolds(t *testing.T) {
	for _, p := range []int{3, 5, 6} {
		row, err := Run(smallCfg("bsbrc", p))
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if row.Method != "BSBRC+fold" {
			t.Errorf("P=%d: method = %q, want folded", p, row.Method)
		}
		if row.NonBlank == 0 {
			t.Errorf("P=%d: blank final image", p)
		}
	}
	// Baselines cannot fold.
	if _, err := Run(smallCfg("direct", 3)); err == nil {
		t.Error("direct at P=3 must error")
	}
}

func TestRunDistributeVolume(t *testing.T) {
	cfg := smallCfg("bsbrc", 4)
	cfg.RenderOpts.EarlyTermination = -1
	_, ref, err := RunWithImage(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DistributeVolume = true
	_, img, err := RunWithImage(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Ghost-cell sampling translates coordinates in float arithmetic, so
	// agreement is to within accumulated ulps, not bit-exact.
	if d := ref.MaxAbsDiff(img, ref.Full()); d > 1e-9 {
		t.Errorf("distributed-volume image differs by %g", d)
	}
}

func TestRunValidation(t *testing.T) {
	bad := []Config{
		{Dataset: "nope", Width: 32, Height: 32, P: 2, Method: "bs"},
		{Dataset: "cube", Width: 0, Height: 32, P: 2, Method: "bs"},
		{Dataset: "cube", Width: 32, Height: 32, P: 0, Method: "bs"},
		{Dataset: "cube", Width: 32, Height: 32, P: 2, Method: "wat"},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestDatasetCacheAndPresets(t *testing.T) {
	// The paper datasets must resolve at their native dimensions.
	for _, d := range []string{"engine_low", "engine_high", "head", "cube"} {
		v, err := datasetVolume(d)
		if err != nil {
			t.Fatal(err)
		}
		if v.NX != 256 || v.NY != 256 {
			t.Errorf("%s: %dx%dx%d", d, v.NX, v.NY, v.NZ)
		}
	}
	a, _ := datasetVolume("engine_low")
	b, _ := datasetVolume("engine_high")
	if a != b {
		t.Error("engine_low and engine_high must share the cached engine volume")
	}
}

func TestBSLCGranularityKnob(t *testing.T) {
	cfg := smallCfg("bslc", 4)
	cfg.Granularity = 16
	row, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if row.NonBlank == 0 {
		t.Error("blank image with custom granularity")
	}
}

func TestPowersOfTwoAndIsPow2(t *testing.T) {
	got := PowersOfTwo(64)
	want := []int{2, 4, 8, 16, 32, 64}
	if len(got) != len(want) {
		t.Fatalf("PowersOfTwo = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PowersOfTwo = %v", got)
		}
	}
	if !IsPow2(8) || IsPow2(6) || IsPow2(0) {
		t.Error("IsPow2 wrong")
	}
}

func TestRotationIncreasesOrKeepsEmptyRects(t *testing.T) {
	// §3.2: empty receiving rectangles exist under the straight view for
	// a compact object and the row must expose them.
	cfg := Config{
		Dataset: "cube",
		Volume:  volume.SolidCube(32, 32, 16),
		TF:      transfer.Cube(),
		Width:   64, Height: 64, P: 8, Method: "bsbrc",
	}
	row, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if row.EmptyRects == 0 {
		t.Error("cube at P=8 must produce empty receiving rectangles")
	}
}

func TestBalanceRenderStillCorrect(t *testing.T) {
	// A skewed volume: nearly all content in one corner.
	vol := volume.New(32, 32, 16)
	vol.Fill(volume.Box{Lo: [3]int{1, 1, 1}, Hi: [3]int{9, 9, 9}}, 150)
	base := Config{
		Dataset: "cube", Volume: vol, TF: transfer.Cube(),
		Width: 64, Height: 64, P: 8, Method: "bsbrc",
	}
	base.RenderOpts.EarlyTermination = -1
	_, ref, err := RunWithImage(base)
	if err != nil {
		t.Fatal(err)
	}
	bal := base
	bal.BalanceRender = true
	_, img, err := RunWithImage(bal)
	if err != nil {
		t.Fatal(err)
	}
	// Different partitions regroup floating-point accumulation, so the
	// images agree to tolerance, not bitwise.
	if d := ref.MaxAbsDiff(img, ref.Full()); d > 1e-9 {
		t.Errorf("balanced-partition image differs by %g", d)
	}
}

func TestBalanceRenderRequiresPow2(t *testing.T) {
	cfg := smallCfg("bsbrc", 3)
	cfg.BalanceRender = true
	if _, err := Run(cfg); err == nil {
		t.Error("BalanceRender at P=3 must error")
	}
}

func TestValidateModeAllMethods(t *testing.T) {
	for _, m := range []string{"bs", "bsbrc", "bslc", "direct", "pipeline", "bintree"} {
		cfg := smallCfg(m, 4)
		cfg.Validate = true
		cfg.RenderOpts.EarlyTermination = -1
		row, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if row.ValidateDiff > 1e-9 {
			t.Errorf("%s: validate diff %g", m, row.ValidateDiff)
		}
	}
	// Validation must also cover the fold path.
	cfg := smallCfg("bsbrc", 5)
	cfg.Validate = true
	if _, err := Run(cfg); err != nil {
		t.Fatalf("folded validate: %v", err)
	}
}

func TestSurfaceModeAllMethods(t *testing.T) {
	for _, m := range []string{"bs", "bsbrc", "bslc", "bsvc", "direct", "bintree"} {
		cfg := smallCfg(m, 4)
		cfg.Surface = true
		cfg.IsoLevel = 150
		cfg.Validate = true
		row, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if row.NonBlank == 0 {
			t.Errorf("%s: blank surface image", m)
		}
	}
}

func TestSurfaceModeWithDistributeAndFold(t *testing.T) {
	cfg := smallCfg("bsbrc", 4)
	cfg.Surface = true
	cfg.DistributeVolume = true
	cfg.Validate = true
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	cfg = smallCfg("bsbrc", 5) // non-power-of-two
	cfg.Surface = true
	cfg.Validate = true
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

// Value-RLE shines on flat-shaded surface images (Ahrens–Painter's
// regime) in a way it cannot on float volume images — the §3.3 argument
// completed in both directions. Compare runs-per-non-blank-pixel of the
// value encoding on the two image kinds.
func TestValueRLEHelpsOnSurfaces(t *testing.T) {
	mk := func(surface bool) *frame.Image {
		cfg := smallCfg("bs", 2)
		cfg.Width, cfg.Height = 128, 128
		cfg.Surface = surface
		cfg.IsoLevel = 150
		cfg.RasterOpts.Flat = true
		cfg.RasterOpts.Levels = 4
		_, img, err := RunWithImage(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return img
	}
	ratio := func(img *frame.Image) float64 {
		runs := rle.EncodeValues(img.PackRegion(img.Full()))
		nonBlankRuns := 0
		for _, r := range runs {
			if !r.Value.Blank() {
				nonBlankRuns++
			}
		}
		nb := img.CountNonBlank(img.Full())
		if nb == 0 {
			t.Fatal("blank image")
		}
		return float64(nonBlankRuns) / float64(nb)
	}
	surfRatio := ratio(mk(true)) // flat shades repeat: runs < pixels
	volRatio := ratio(mk(false)) // noisy float pixels rarely repeat: ~1 run/px
	if volRatio < 0.9 {
		t.Errorf("volume image value-runs/px = %.3f; expected near-degenerate (~1)", volRatio)
	}
	if surfRatio >= 0.75*volRatio {
		t.Errorf("value-RLE runs/px on surfaces %.3f not well below volume images %.3f",
			surfRatio, volRatio)
	}
}

func TestRunDetailedExposesRankStats(t *testing.T) {
	row, rs, err := RunDetailed(smallCfg("bsbrc", 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 {
		t.Fatalf("rank stats = %d", len(rs))
	}
	totalRecv := 0
	for r, s := range rs {
		if s == nil {
			t.Fatalf("rank %d stats missing", r)
		}
		totalRecv += s.BytesReceived()
	}
	if row.MakespanMS <= 0 {
		t.Error("makespan must be positive")
	}
	if row.MakespanMS+1e-9 < row.CompMS {
		t.Errorf("makespan %.3f below max comp %.3f", row.MakespanMS, row.CompMS)
	}
}

func TestDatasetHelper(t *testing.T) {
	v, tf, err := Dataset("cube")
	if err != nil || v == nil || tf == nil {
		t.Fatalf("Dataset: %v", err)
	}
	if _, _, err := Dataset("nope"); err == nil {
		t.Error("unknown dataset must error")
	}
}
