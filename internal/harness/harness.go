// Package harness drives the full sort-last pipeline for one experiment
// configuration — partitioning, parallel rendering, compositing, final
// gather — and reduces the per-rank counters to the row format of the
// paper's tables: modeled T_comp / T_comm / T_total (ms), the maximum
// received message size M_max, and the empty-rectangle counts of §3.2.
package harness

import (
	"bytes"
	"fmt"
	"math/bits"
	"strings"
	"sync"
	"time"

	"sortlast/internal/autotune"
	"sortlast/internal/core"
	"sortlast/internal/costmodel"
	"sortlast/internal/frame"
	"sortlast/internal/mesh"
	"sortlast/internal/mp"
	"sortlast/internal/partition"
	"sortlast/internal/render"
	"sortlast/internal/stats"
	"sortlast/internal/tilecomp"
	"sortlast/internal/trace"
	"sortlast/internal/transfer"
	"sortlast/internal/volume"
)

// volumeSource is what the rendering phase needs from volume data: both
// the full volume and a ghosted subvolume provide it.
type volumeSource interface {
	render.Sampler
	mesh.Source
}

// Config describes one experiment: dataset x method x P x image size x
// viewpoint, plus model parameters.
type Config struct {
	// Dataset is one of the paper's four workloads: engine_low,
	// engine_high, head, cube. Volume/TF override it when set.
	Dataset string
	Volume  *volume.Volume
	TF      *transfer.Func

	Width, Height int
	P             int
	// Method is a core registry name (bs, bsbr, bslc, bsbrc, ds, dfb,
	// ...) or "auto": the cost model picks the cheapest model-backed
	// method per frame from the frame's sparsity features (see
	// internal/autotune).
	Method string

	// RotX and RotY rotate the viewpoint (degrees), the paper's §3.2
	// rotation study.
	RotX, RotY float64

	// Quality is the frame's quality contract: QualityFull (or empty,
	// byte-identical to an unconstrained render), QualityApprox (raised
	// early-termination cutoff and sub-ApproxDropAlpha pixels dropped
	// before encode, error bounded by Plan.ErrorBound), or
	// QualityPreview. Preview is geometric: callers pass the reduced
	// PreviewDims as Width/Height themselves — the harness renders
	// exactly the geometry it is given.
	Quality string

	// Params are the cost-model constants; zero value means the SP2
	// preset.
	Params costmodel.Params

	// Selector carries adaptive-selection state across frames when
	// Method is "auto". nil means each run selects from a fresh
	// pre-scan; animations and serving tiers share one selector so the
	// previous frame's counters and EWMA corrections inform the next.
	Selector *autotune.Selector

	// RenderOpts tune the ray caster (zero value: defaults).
	RenderOpts render.Options

	// Surface switches the rendering phase from ray casting to the
	// surface path (paper §1): marching-tetrahedra isosurface extraction
	// at IsoLevel followed by z-buffered rasterization. Surface images
	// are opaque (alpha 1), so the same compositors apply unchanged.
	Surface    bool
	IsoLevel   uint8 // default 128
	RasterOpts render.RasterOptions

	// Granularity is BSLC's interleave section size (0: one scanline).
	Granularity int

	// Tile is the dfb tile edge in pixels (0: tilecomp.DefaultTile).
	Tile int

	// DistributeVolume exercises the partitioning phase: rank 0 extracts
	// subvolumes with ghost cells and scatters them, and each rank
	// renders only from its own subvolume. Off by default because the
	// in-process transport can share the immutable volume.
	DistributeVolume bool

	// BalanceRender splits the volume at estimated-work medians instead
	// of spatial midpoints (the paper's §5 rendering-phase load
	// balancing). Requires a power-of-two P.
	BalanceRender bool

	// Validate gathers the pristine subimages at rank 0 after
	// compositing and compares the parallel result against the
	// sequential depth-order reference, recording the difference in
	// Row.ValidateDiff and failing the run if it exceeds 1e-9.
	Validate bool

	// Trace, when set, records wall-clock spans for every phase of the
	// run — render, per-stage encode/composite, comm waits, gather — on
	// the recorder's per-rank tracks. nil (the default) disables tracing
	// at zero cost.
	Trace *trace.Recorder

	// Options for the message-passing world (zero value: defaults).
	WorldOpts mp.Options
}

// Row is one line of a paper-style table.
type Row struct {
	Dataset       string
	Method        string
	P             int
	Width, Height int

	CompMS  float64 // modeled T_comp, max over ranks
	CommMS  float64 // modeled T_comm, max over ranks
	TotalMS float64 // CompMS + CommMS (the paper's per-processor sum)

	// MakespanMS is the schedule-aware completion time: stage-k
	// compositing waits for the partner's message, so slow partners
	// stall pairs. Only computed for the binary-swap family.
	MakespanMS float64

	MeasuredCompMS float64 // measured compositing compute, max over ranks
	// WallMS is the measured compositing wall time including
	// communication waits, max over ranks — what a frame actually paid.
	WallMS   float64
	RenderMS float64 // measured rendering wall, max over ranks

	// RenderSkipFrac is the fraction of candidate ray samples the
	// macro-cell empty-space skipping removed, aggregated over ranks
	// (0 for surface runs).
	RenderSkipFrac float64

	MMax       int // maximum received message size (bytes)
	EmptyRects int // empty receiving bounding rectangles, all ranks
	NonBlank   int // non-blank pixels in the final image

	// ValidateDiff is the max per-channel difference from the sequential
	// reference when Config.Validate is set (else 0).
	ValidateDiff float64

	// Auto records that Method was chosen by the adaptive selector
	// (the config requested "auto").
	Auto bool
}

// datasetCache avoids regenerating the procedural volumes for every
// experiment; they are immutable once built.
var datasetCache sync.Map // map[string]*volume.Volume

func datasetVolume(name string) (*volume.Volume, error) {
	base := ""
	switch name {
	case "engine_low", "engine_high":
		base = volume.DatasetEngine
	case "head":
		base = volume.DatasetHead
	case "cube":
		base = volume.DatasetCube
	default:
		return nil, fmt.Errorf("harness: unknown dataset %q", name)
	}
	if v, ok := datasetCache.Load(base); ok {
		return v.(*volume.Volume), nil
	}
	v, err := volume.Generate(base)
	if err != nil {
		return nil, err
	}
	actual, _ := datasetCache.LoadOrStore(base, v)
	return actual.(*volume.Volume), nil
}

// Dataset resolves one of the paper's workload names to its (cached)
// volume and transfer function.
func Dataset(name string) (*volume.Volume, *transfer.Func, error) {
	v, err := datasetVolume(name)
	if err != nil {
		return nil, nil, err
	}
	tf, err := transfer.Preset(name)
	if err != nil {
		return nil, nil, err
	}
	return v, tf, nil
}

func (cfg *Config) resolve() (*volume.Volume, *transfer.Func, error) {
	vol, tf := cfg.Volume, cfg.TF
	if vol == nil {
		v, err := datasetVolume(cfg.Dataset)
		if err != nil {
			return nil, nil, err
		}
		vol = v
	}
	if tf == nil {
		f, err := transfer.Preset(cfg.Dataset)
		if err != nil {
			return nil, nil, err
		}
		tf = f
	}
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return nil, nil, fmt.Errorf("harness: image size %dx%d", cfg.Width, cfg.Height)
	}
	if cfg.P <= 0 {
		return nil, nil, fmt.Errorf("harness: P = %d", cfg.P)
	}
	return vol, tf, nil
}

func (cfg *Config) params() costmodel.Params {
	if cfg.Params == (costmodel.Params{}) {
		return costmodel.SP2()
	}
	return cfg.Params
}

// Pow2MethodError reports a method that cannot serve the requested
// non-power-of-two rank count. Admission layers (renderd) detect it with
// errors.As so the rejection can name the any-P alternatives.
type Pow2MethodError struct {
	Method string
	P      int
}

func (e *Pow2MethodError) Error() string {
	return fmt.Sprintf("harness: method %q requires a power-of-two P, got %d (any-P methods: %s)",
		e.Method, e.P, strings.Join(core.AnyPMethods(), ", "))
}

// newCompositor builds the configured compositor plus the rank geometry
// it runs over. At non-power-of-two P, foldable binary-swap methods wrap
// in the core.Folded pre-stage, while natively any-P methods (the
// tile-routed family) take the fold plan as pure geometry — per-rank
// boxes and a global depth order, no fold messages.
func (cfg *Config) newCompositor(vol *volume.Volume) (core.Compositor, *partition.Decomposition, partition.Layout, error) {
	bounds := vol.Bounds()
	inner, err := core.New(cfg.Method)
	if err != nil {
		return nil, nil, nil, err
	}
	spec, _ := core.Lookup(cfg.Method)
	if b, ok := inner.(core.BSLC); ok {
		b.Granularity = cfg.Granularity
		inner = b
	}
	if b, ok := inner.(core.BSBRLC); ok {
		b.Granularity = cfg.Granularity
		inner = b
	}
	if b, ok := inner.(tilecomp.DFB); ok {
		b.Tile = cfg.Tile
		inner = b
	}
	if IsPow2(cfg.P) {
		var dec *partition.Decomposition
		if cfg.BalanceRender {
			dec, err = partition.DecomposeWeighted(bounds, cfg.P,
				volume.VoxelWork{Vol: vol, Threshold: 20})
		} else {
			dec, err = partition.Decompose(bounds, cfg.P)
		}
		if err != nil {
			return nil, nil, nil, err
		}
		return inner, dec, dec, nil
	}
	if cfg.BalanceRender {
		return nil, nil, nil, fmt.Errorf("harness: BalanceRender requires a power-of-two P, got %d", cfg.P)
	}
	if !spec.Caps.ServesAnyP() {
		return nil, nil, nil, &Pow2MethodError{Method: cfg.Method, P: cfg.P}
	}
	plan, err := partition.PlanFold(bounds, cfg.P)
	if err != nil {
		return nil, nil, nil, err
	}
	if spec.Caps.NativeAnyP {
		switch v := inner.(type) {
		case tilecomp.DS:
			v.Lay = plan
			inner = v
		case tilecomp.DFB:
			v.Lay = plan
			inner = v
		}
		return inner, plan.Dec, plan, nil
	}
	return &core.Folded{Plan: plan, Inner: inner}, plan.Dec, plan, nil
}

// Run executes the experiment and returns its table row.
func Run(cfg Config) (*Row, error) {
	row, _, _, err := run(cfg, false)
	return row, err
}

// RunWithImage executes the experiment and also returns the final image
// gathered at rank 0.
func RunWithImage(cfg Config) (*Row, *frame.Image, error) {
	row, img, _, err := run(cfg, true)
	return row, img, err
}

// RunDetailed additionally returns the per-rank counters, for timeline
// and stage-breakdown reporting.
func RunDetailed(cfg Config) (*Row, []*stats.Rank, error) {
	row, _, rs, err := run(cfg, false)
	return row, rs, err
}

// RunFull returns the row, the final image, and the per-rank counters —
// everything a traced run needs for the measured-vs-modeled report.
func RunFull(cfg Config) (*Row, *frame.Image, []*stats.Rank, error) {
	return run(cfg, true)
}

func run(cfg Config, wantImage bool) (*Row, *frame.Image, []*stats.Rank, error) {
	plan, err := NewPlan(cfg)
	if err != nil {
		return nil, nil, nil, err
	}

	rankStats := make([]*stats.Rank, cfg.P)
	renderStats := make([]render.Stats, cfg.P)
	renderWall := make([]time.Duration, cfg.P)
	compositeWall := make([]time.Duration, cfg.P)
	var final *frame.Image
	var validateDiff float64

	err = mp.Run(cfg.P, cfg.WorldOpts, func(c mp.Comm) error {
		me := c.Rank()
		c.SetTracer(cfg.Trace.Rank(me))

		var src volumeSource = plan.Vol
		if cfg.DistributeVolume {
			sub, err := distribute(c, plan.Vol, plan.Box, cfg.RenderOpts.Shaded)
			if err != nil {
				return err
			}
			src = sub
		}

		start := time.Now()
		img := plan.renderFrom(src, me, c.Tracer(), &renderStats[me])
		renderWall[me] = time.Since(start)

		var pristine *frame.Image
		if cfg.Validate {
			pristine = img.Clone()
		}

		if err := c.Barrier(); err != nil { // compositing starts together
			return err
		}
		cstart := time.Now()
		res, err := plan.CompositeRank(c, img)
		compositeWall[me] = time.Since(cstart)
		if err != nil {
			return err
		}
		rankStats[me] = res.Stats

		out, err := plan.GatherRank(c, res)
		if err != nil {
			return err
		}
		if me == 0 {
			final = out
		}
		if cfg.Validate {
			d, err := validateAgainstSequential(c, plan.Lay, plan.Cam.Dir, pristine, out)
			if err != nil {
				return err
			}
			if me == 0 {
				validateDiff = d
			}
		}
		return nil
	})
	if err != nil {
		return nil, nil, nil, err
	}

	p := cfg.params()
	cost := p.World(rankStats)
	makespan := p.Makespan(rankStats)
	row := &Row{
		Dataset: cfg.Dataset, Method: plan.Comp.Name(), P: cfg.P,
		Width: cfg.Width, Height: cfg.Height,
		CompMS:         ms(cost.Comp),
		CommMS:         ms(cost.Comm),
		TotalMS:        ms(cost.Comp) + ms(cost.Comm),
		MeasuredCompMS: ms(stats.MaxCompWall(rankStats)),
		MakespanMS:     ms(makespan),
		MMax:           stats.MaxMessageBytes(rankStats),
	}
	var skipNum, skipDen int
	for me, r := range rankStats {
		if r != nil {
			row.EmptyRects += r.EmptyRecvRects()
			r.Render = renderCounters(renderStats[me].Snapshot())
			skipNum += r.Render.SamplesSkipped
			skipDen += r.Render.Samples + r.Render.SamplesSkipped
		}
	}
	if skipDen > 0 {
		row.RenderSkipFrac = float64(skipNum) / float64(skipDen)
	}
	var maxRender, maxComposite time.Duration
	for _, d := range renderWall {
		if d > maxRender {
			maxRender = d
		}
	}
	for _, d := range compositeWall {
		if d > maxComposite {
			maxComposite = d
		}
	}
	row.RenderMS = ms(maxRender)
	row.WallMS = ms(maxComposite)
	row.ValidateDiff = validateDiff
	row.Auto = plan.Choice != nil
	// Close the adaptive loop: this frame's counters and measured
	// compositing wall become the selector's inputs for the next frame.
	plan.ObserveFrame(rankStats, maxComposite)
	if final != nil {
		row.NonBlank = final.CountNonBlank(final.Full())
	}
	if !wantImage {
		final = nil
	}
	return row, final, rankStats, nil
}

// validateAgainstSequential gathers every rank's pristine subimage at
// rank 0, composites them sequentially in the layout's depth order, and
// compares with the parallel result. One reference path serves every
// method at every rank count: folded worlds and the tile-routed methods
// alike resolve to a partition.Layout.
func validateAgainstSequential(c mp.Comm, lay partition.Layout, viewDir [3]float64,
	pristine, final *frame.Image) (float64, error) {
	b := pristine.Bounds()
	payload := make([]byte, frame.RectBytes, frame.RectBytes+b.Area()*frame.PixelBytes)
	frame.PutRect(payload, b)
	payload = frame.EncodeRegion(pristine, b, payload)
	parts, err := c.Gather(0, payload)
	if err != nil {
		return 0, err
	}
	if c.Rank() != 0 {
		return 0, nil
	}
	imgs := make([]*frame.Image, len(parts))
	full := pristine.Full()
	for r, part := range parts {
		if len(part) < frame.RectBytes {
			return 0, fmt.Errorf("harness: validate: short subimage from rank %d", r)
		}
		rb := frame.GetRect(part)
		img := frame.NewImage(full.Dx(), full.Dy())
		if !rb.Empty() {
			if len(part) != frame.RectBytes+rb.Area()*frame.PixelBytes {
				return 0, fmt.Errorf("harness: validate: bad subimage size from rank %d", r)
			}
			img.StoreWire(rb, part[frame.RectBytes:])
		}
		imgs[r] = img
	}
	ref := core.CompositeSequentialLayout(imgs, lay, viewDir)
	d := ref.MaxAbsDiff(final, full)
	if d > 1e-9 {
		return d, fmt.Errorf("harness: parallel result differs from sequential reference by %g", d)
	}
	return d, nil
}

// distribute implements the partitioning phase: rank 0 extracts every
// rank's subvolume (with enough ghost cells for the render options) and
// scatters them; each rank deserializes its own.
func distribute(c mp.Comm, vol *volume.Volume, boxOf func(int) volume.Box,
	shaded bool) (*volume.Subvolume, error) {
	ghost := 1
	if shaded {
		ghost = 2
	}
	var payloads [][]byte
	if c.Rank() == 0 {
		payloads = make([][]byte, c.Size())
		for r := 0; r < c.Size(); r++ {
			sub, err := volume.Extract(vol, boxOf(r), ghost)
			if err != nil {
				return nil, err
			}
			var buf bytes.Buffer
			if err := sub.Serialize(&buf); err != nil {
				return nil, err
			}
			payloads[r] = buf.Bytes()
		}
	}
	mine, err := c.Scatter(0, payloads)
	if err != nil {
		return nil, err
	}
	return volume.ReadSubvolume(bytes.NewReader(mine))
}

func ms(d time.Duration) float64 { return float64(d) / 1e6 }

// renderCounters converts the ray caster's snapshot into the stats
// package's plain-int form carried on stats.Rank.
func renderCounters(s render.StatsSnapshot) stats.Render {
	return stats.Render{
		Rays:           int(s.Rays),
		Samples:        int(s.Samples),
		SamplesSkipped: int(s.SamplesSkipped),
		CellsVisited:   int(s.CellsVisited),
		CellsSkipped:   int(s.CellsSkipped),
	}
}

// PowersOfTwo returns {2, 4, ..., max} — the paper's processor-count
// sweep.
func PowersOfTwo(max int) []int {
	var out []int
	for p := 2; p <= max; p *= 2 {
		out = append(out, p)
	}
	return out
}

// IsPow2 reports whether p is a positive power of two.
func IsPow2(p int) bool { return p > 0 && bits.OnesCount(uint(p)) == 1 }
