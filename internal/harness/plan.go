package harness

import (
	"fmt"
	"time"

	"sortlast/internal/autotune"
	"sortlast/internal/core"
	"sortlast/internal/frame"
	"sortlast/internal/mesh"
	"sortlast/internal/mp"
	"sortlast/internal/partition"
	"sortlast/internal/render"
	"sortlast/internal/stats"
	"sortlast/internal/trace"
	"sortlast/internal/transfer"
	"sortlast/internal/volume"
)

// Plan is a Config resolved once: dataset volume, transfer function,
// compositor, decomposition and camera. It splits the one-shot setup
// from per-frame execution so a standing world (a resident rank pool
// serving many requests, as in internal/server) can amortize the setup
// across frames instead of paying it per render. A Plan is immutable
// after NewPlan and safe for concurrent use by all rank goroutines.
type Plan struct {
	Cfg  Config
	Vol  *volume.Volume
	TF   *transfer.Func
	Comp core.Compositor
	Dec  *partition.Decomposition
	// Lay is the rank geometry the world actually runs over: the
	// decomposition at power-of-two P, the fold plan otherwise. Box and
	// the sequential validation reference both read it.
	Lay partition.Layout
	Cam *render.Camera

	// Selector and Choice are set when the config requested Method
	// "auto": Choice is the per-frame selection decision (Cfg.Method
	// holds the resolved concrete method) and Selector is the stateful
	// tuner the run's measurements feed back into.
	Selector *autotune.Selector
	Choice   *autotune.Choice
}

// NewPlan resolves cfg into an executable per-frame plan. Method "auto"
// is resolved here, before the world starts, so every rank runs the
// same concrete compositor with no cross-rank coordination: the
// selector's stored features (previous frame) drive the choice, or a
// low-resolution pre-scan seeds them on the first frame.
func NewPlan(cfg Config) (*Plan, error) {
	vol, tf, err := cfg.resolve()
	if err != nil {
		return nil, err
	}
	if q, err := NormalizeQuality(cfg.Quality); err != nil {
		return nil, err
	} else {
		cfg.Quality = q
	}
	if cfg.Quality == QualityApprox && !cfg.Surface && cfg.RenderOpts.EarlyTermination == 0 {
		// The approx contract's render-side knob: terminate rays earlier
		// than the 0.999 default. An explicit caller-set cutoff wins.
		cfg.RenderOpts.EarlyTermination = render.ApproxCutoff
	}
	var sel *autotune.Selector
	var choice *autotune.Choice
	if autotune.IsAuto(cfg.Method) {
		sel = cfg.Selector
		if sel == nil {
			sel = autotune.NewSelector(cfg.params(), autotune.TransportMP)
		}
		ch, ok, err := sel.ChooseForQuality(cfg.Width, cfg.Height, cfg.P, cfg.Quality)
		if err != nil {
			return nil, err
		}
		if !ok {
			f := autotune.Prescan(vol, tf, cfg.Width, cfg.Height, cfg.P, cfg.RotX, cfg.RotY)
			f.Quality = cfg.Quality
			sel.Seed(f)
			if ch, err = sel.Choose(f); err != nil {
				return nil, err
			}
		}
		cfg.Method = ch.Method
		choice = &ch
	}
	comp, dec, lay, err := cfg.newCompositor(vol)
	if err != nil {
		return nil, err
	}
	if !cfg.Surface {
		// Warm the volume's macro-cell grid during setup so the rank
		// goroutines never serialize on its sync.Once inside the first
		// frame (the grid is cached on the volume, shared across plans
		// through the dataset cache).
		vol.MacroCells()
	}
	return &Plan{
		Cfg: cfg, Vol: vol, TF: tf,
		Comp: comp, Dec: dec, Lay: lay,
		Cam:      render.NewCamera(cfg.Width, cfg.Height, vol.Bounds(), cfg.RotX, cfg.RotY),
		Selector: sel,
		Choice:   choice,
	}, nil
}

// ObserveFrame feeds one completed frame back into the plan's selector:
// the exact per-rank counters become the next frame's feature vector,
// and the measured compositing wall time (slowest rank, communication
// waits included) corrects the chosen method's EWMA factor. A no-op for
// fixed-method plans.
func (p *Plan) ObserveFrame(ranks []*stats.Rank, compositeWall time.Duration) {
	if p.Selector == nil || p.Choice == nil {
		return
	}
	p.Selector.UpdateFromStats(p.Cfg.Width, p.Cfg.Height, p.Cfg.P, p.Cfg.Method, ranks)
	p.Selector.Observe(p.Choice.Method, p.Choice.Features, compositeWall)
}

// Box returns the subvolume assigned to rank me (the fold plan's box for
// non-power-of-two worlds).
func (p *Plan) Box(me int) volume.Box { return p.Lay.Box(me) }

// RenderRank runs the rendering phase for rank me from the shared
// volume and returns its subimage. Callers that distributed subvolumes
// through the message layer use RenderRankFrom instead.
func (p *Plan) RenderRank(me int) *frame.Image {
	return p.renderFrom(p.Vol, me, nil, nil)
}

// RenderRankTraced is RenderRank recording a "render" span (with a
// nested "raycast" span on the volume path) on the rank's track.
func (p *Plan) RenderRankTraced(me int, tr *trace.Rank) *frame.Image {
	return p.renderFrom(p.Vol, me, tr, nil)
}

// RenderRankObserved is RenderRankTraced additionally accumulating the
// ray caster's work counters (rays, samples, macro-cell skips) into rs.
// rs may be shared across ranks and frames; nil collects nothing.
func (p *Plan) RenderRankObserved(me int, tr *trace.Rank, rs *render.Stats) *frame.Image {
	return p.renderFrom(p.Vol, me, tr, rs)
}

// RenderRankFrom renders rank me's subimage from src, which must cover
// the rank's box (plus ghost cells when shading).
func (p *Plan) RenderRankFrom(src volumeSource, me int) *frame.Image {
	return p.renderFrom(src, me, nil, nil)
}

func (p *Plan) renderFrom(src volumeSource, me int, tr *trace.Rank, rs *render.Stats) *frame.Image {
	m := tr.Begin()
	defer tr.End(m, trace.SpanRender, "")
	box := p.Lay.Box(me)
	if p.Cfg.Surface {
		iso := p.Cfg.IsoLevel
		if iso == 0 {
			iso = 128
		}
		surf := mesh.Extract(src, mesh.CellsFor(box, p.Vol.Bounds()), iso)
		return render.Rasterize(surf, p.Cam, p.Cfg.RasterOpts)
	}
	opts := p.Cfg.RenderOpts
	opts.Trace = tr
	opts.Stats = rs
	img := render.Raycast(src, box, p.Cam, p.TF, opts)
	if p.Cfg.Quality == QualityApprox {
		// The approx contract's encode-side knob: sub-threshold
		// accumulations vanish before the bounding scan, so every
		// compositor downstream ships smaller rectangles and fewer codes.
		img.DropBelow(ApproxDropAlpha)
	}
	return img
}

// ErrorBound is the worst-case per-pixel 8-bit error of this plan's
// output against a full-quality render of the same geometry: zero for
// full (and for preview, whose degradation is resolution rather than
// pixel values), the cutoff+drop bound of ApproxErrorBound for approx.
func (p *Plan) ErrorBound() float64 {
	if p.Cfg.Quality != QualityApprox || p.Cfg.Surface {
		return 0
	}
	return ApproxErrorBound(p.Cfg.P, p.Cfg.RenderOpts.Cutoff(), ApproxDropAlpha)
}

// CompositeRank runs the compositing phase for one rank over a standing
// communicator. Successive frames may be composited back to back on the
// same communicator without barriers: per-(source, tag) FIFO ordering
// keeps consecutive frames' messages correctly paired, the same
// guarantee consecutive collectives rely on.
//
// When a tracer is attached to c, the whole phase is recorded as a
// "compositing" span containing the compositor's per-stage spans.
func (p *Plan) CompositeRank(c mp.Comm, img *frame.Image) (*core.Result, error) {
	tr := c.Tracer()
	m := tr.Begin()
	res, err := p.Comp.Composite(c, p.Dec, p.Cam.Dir, img)
	tr.End(m, trace.SpanCompositing, "")
	return res, err
}

// GatherRank assembles the distributed final image at rank 0 from this
// rank's compositing result; non-root ranks receive nil. Comm spans
// issued during the gather are labeled with the "gather" stage so the
// reports can separate them from binary-swap exchange waits.
func (p *Plan) GatherRank(c mp.Comm, res *core.Result) (*frame.Image, error) {
	tr := c.Tracer()
	c.SetStage(trace.StageGather)
	m := tr.Begin()
	img, err := core.GatherImage(c, 0, res)
	tr.End(m, trace.SpanGather, trace.StageGather)
	c.SetStage("")
	return img, err
}

// Datasets lists the built-in workload names accepted by Config.Dataset.
func Datasets() []string {
	return []string{"engine_low", "engine_high", "head", "cube"}
}

// KnownDataset reports whether name is a built-in workload.
func KnownDataset(name string) bool {
	switch name {
	case "engine_low", "engine_high", "head", "cube":
		return true
	}
	return false
}

// Check validates a Config without generating volumes or building a
// world, so admission layers (the renderd server, CLI flag parsing) can
// reject bad requests up front with a precise error. (Named Check
// because Validate is the Config field enabling the sequential-reference
// comparison.)
func (cfg *Config) Check() error {
	if cfg.Volume == nil && !KnownDataset(cfg.Dataset) {
		return fmt.Errorf("harness: unknown dataset %q (have %v)", cfg.Dataset, Datasets())
	}
	if cfg.Volume != nil && cfg.TF == nil {
		if _, err := transfer.Preset(cfg.Dataset); err != nil {
			return fmt.Errorf("harness: no transfer function for volume: %w", err)
		}
	}
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return fmt.Errorf("harness: image size %dx%d must be positive", cfg.Width, cfg.Height)
	}
	if _, err := NormalizeQuality(cfg.Quality); err != nil {
		return err
	}
	if cfg.P <= 0 {
		return fmt.Errorf("harness: P = %d must be positive", cfg.P)
	}
	// "auto" resolves at plan time to one of the selector's candidates,
	// all of which serve any rank count (fold or natively).
	if !autotune.IsAuto(cfg.Method) {
		if _, err := core.New(cfg.Method); err != nil {
			return err
		}
	}
	if !IsPow2(cfg.P) {
		if cfg.BalanceRender {
			return fmt.Errorf("harness: BalanceRender requires a power-of-two P, got %d", cfg.P)
		}
		if !autotune.IsAuto(cfg.Method) && !core.ServesAnyP(cfg.Method) {
			return &Pow2MethodError{Method: cfg.Method, P: cfg.P}
		}
	}
	return nil
}
