package harness

import (
	"errors"
	"testing"
)

// The tile-routed methods run natively at any P and must reproduce the
// sequential composite bit-for-bit, dense or sparse, pow-2 or not.
func TestTileRoutedValidateAnyP(t *testing.T) {
	for _, m := range []string{"ds", "dfb"} {
		for _, p := range []int{2, 3, 4, 6, 8, 16} {
			cfg := smallCfg(m, p)
			cfg.Validate = true
			cfg.RenderOpts.EarlyTermination = -1
			row, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s P=%d: %v", m, p, err)
			}
			if row.ValidateDiff != 0 {
				t.Errorf("%s P=%d: diff %g from sequential", m, p, row.ValidateDiff)
			}
			if row.NonBlank == 0 {
				t.Errorf("%s P=%d: blank final image", m, p)
			}
			if row.WallMS <= 0 {
				t.Errorf("%s P=%d: no wall time measured: %+v", m, p, row)
			}
		}
	}
}

// At a non-power-of-two P the tile-routed image must match the folded
// binary-swap image exactly: same render, different routing.
func TestTileRoutedMatchesFoldedAtNonPow2(t *testing.T) {
	ref := smallCfg("bsbrc", 6)
	ref.RenderOpts.EarlyTermination = -1
	_, want, err := RunWithImage(ref)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"ds", "dfb"} {
		cfg := smallCfg(m, 6)
		cfg.RenderOpts.EarlyTermination = -1
		row, img, err := RunWithImage(cfg)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if d := want.MaxAbsDiff(img, want.Full()); d != 0 {
			t.Errorf("%s image differs from folded bsbrc by %g", m, d)
		}
		if row.Method == "BSBRC+fold" {
			t.Errorf("%s ran folded; should run natively", m)
		}
	}
}

// The Tile knob must reach the DFB compositor and leave the image exact.
func TestTileRoutedTileKnob(t *testing.T) {
	for _, tile := range []int{5, 16, 512} {
		cfg := smallCfg("dfb", 3)
		cfg.Tile = tile
		cfg.Validate = true
		cfg.RenderOpts.EarlyTermination = -1
		row, err := Run(cfg)
		if err != nil {
			t.Fatalf("tile=%d: %v", tile, err)
		}
		if row.ValidateDiff != 0 {
			t.Errorf("tile=%d: diff %g from sequential", tile, row.ValidateDiff)
		}
	}
}

// Methods that cannot serve a non-power-of-two world must fail admission
// with the typed error so the serving tier can name alternatives.
func TestPow2MethodErrorTyped(t *testing.T) {
	cfg := smallCfg("direct", 6)
	for _, err := range []error{cfg.Check(), func() error { _, e := Run(cfg); return e }()} {
		var pe *Pow2MethodError
		if !errors.As(err, &pe) {
			t.Fatalf("error %v is not a *Pow2MethodError", err)
		}
		if pe.Method != "direct" || pe.P != 6 {
			t.Errorf("typed error fields: %+v", pe)
		}
	}
}
