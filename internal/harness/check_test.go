package harness

import (
	"strings"
	"testing"
)

// Check must mirror the errors run() would hit, without generating
// volumes or building a world — it is the admission filter the serving
// tier and the CLIs use.
func TestConfigCheck(t *testing.T) {
	ok := Config{Dataset: "cube", Method: "bsbrc", Width: 32, Height: 32, P: 4}
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string // substring of the error; empty means valid
	}{
		{"valid", func(*Config) {}, ""},
		{"unknown dataset", func(c *Config) { c.Dataset = "nope" }, "unknown dataset"},
		{"zero width", func(c *Config) { c.Width = 0 }, "image size"},
		{"negative height", func(c *Config) { c.Height = -1 }, "image size"},
		{"zero P", func(c *Config) { c.P = 0 }, "P = 0"},
		{"unknown method", func(c *Config) { c.Method = "nope" }, "nope"},
		{"non-pow2 binary swap ok", func(c *Config) { c.P = 6 }, ""},
		{"non-pow2 direct send", func(c *Config) { c.P = 6; c.Method = "direct" }, "power-of-two"},
		{"non-pow2 ds ok", func(c *Config) { c.P = 6; c.Method = "ds" }, ""},
		{"non-pow2 dfb ok", func(c *Config) { c.P = 6; c.Method = "dfb" }, ""},
		{"non-pow2 balanced render", func(c *Config) { c.P = 6; c.BalanceRender = true }, "power-of-two"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := ok
			tc.mutate(&cfg)
			err := cfg.Check()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("Check() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Check() = nil, want error mentioning %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// A caller-provided volume skips the dataset lookup but still needs a
// resolvable transfer function.
func TestConfigCheckCallerVolume(t *testing.T) {
	vol, tf, err := Dataset("cube")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Dataset: "custom", Method: "bs", Width: 16, Height: 16, P: 2}
	cfg.Volume = vol
	if err := cfg.Check(); err == nil {
		t.Error("caller volume with unresolvable transfer preset must fail Check")
	}
	cfg.TF = tf
	if err := cfg.Check(); err != nil {
		t.Errorf("caller volume with explicit TF: Check() = %v, want nil", err)
	}
}
