package harness

import "fmt"

// Quality contracts (ROADMAP item 2, "Approximate Puzzlepiece
// Compositing" in PAPERS.md): a request names how much fidelity it is
// willing to trade for latency, and every layer honors the same three
// names. The serving tier's wire protocol re-exports these constants.
//
//	full    — the default: byte-identical to a plain render.
//	approx  — raised early-termination cutoff plus sub-threshold pixels
//	          dropped before encode; the per-frame error bound is
//	          computable from the knobs (see ApproxErrorBound).
//	preview — quarter-resolution render (PreviewDims); the client
//	          upscales. Resolution degrades, pixel values do not.
const (
	QualityFull    = "full"
	QualityApprox  = "approx"
	QualityPreview = "preview"
)

// ApproxDropAlpha is the accumulated-opacity threshold below which an
// approx-quality frame's pixels are dropped before the bounding scan
// and RLE encode (frame.Image.DropBelow). Dropping a segment of opacity
// a < tau perturbs the final composite by at most 2a per channel, so
// the value trades visible haze for smaller rectangles and fewer codes.
const ApproxDropAlpha = 0.005

// NormalizeQuality maps the empty string to QualityFull and rejects
// unknown names, so admission layers can fail bad contracts up front.
func NormalizeQuality(q string) (string, error) {
	switch q {
	case "", QualityFull:
		return QualityFull, nil
	case QualityApprox, QualityPreview:
		return q, nil
	}
	return "", fmt.Errorf("harness: unknown quality %q (have %s, %s, %s)",
		q, QualityFull, QualityApprox, QualityPreview)
}

// DegradeQuality steps one rung down the full→approx→preview ladder;
// ok is false at the floor (preview has nothing cheaper below it).
func DegradeQuality(q string) (string, bool) {
	switch q {
	case "", QualityFull:
		return QualityApprox, true
	case QualityApprox:
		return QualityPreview, true
	}
	return q, false
}

// QualityRank orders contracts by fidelity (full 2, approx 1, preview
// 0; unknown -1), so layers can compare "is this delivery below what
// was asked" without re-encoding the ladder.
func QualityRank(q string) int {
	switch q {
	case "", QualityFull:
		return 2
	case QualityApprox:
		return 1
	case QualityPreview:
		return 0
	}
	return -1
}

// PreviewDims is the preview contract's render geometry: each dimension
// halves (rounding up, so odd sizes keep their last pixel column/row).
// A quarter of the rays means roughly a quarter of the render cost; the
// reply carries these reduced dimensions and the client library
// upscales back to the requested size.
func PreviewDims(w, h int) (int, int) {
	return (w + 1) / 2, (h + 1) / 2
}

// ApproxErrorBound is the worst-case per-pixel 8-bit gray error of an
// approx delivery against the full render, from the two knobs that
// created it: early termination at cutoff leaves at most (1-cutoff)
// opacity unaccumulated on any ray, and dropping sub-dropAlpha segments
// perturbs the composite by at most 2·dropAlpha each, with at most one
// dropped segment per rank along a ray (P of them). The bound is
// conservative — measured error is typically far smaller — but it is
// computable per frame without rendering the reference.
func ApproxErrorBound(p int, cutoff, dropAlpha float64) float64 {
	residual := 1 - cutoff
	if residual < 0 {
		residual = 0
	}
	if dropAlpha < 0 {
		dropAlpha = 0
	}
	return 255 * (residual + 2*float64(p)*dropAlpha)
}
