package harness

import (
	"bytes"
	"testing"

	"sortlast/internal/autotune"
	"sortlast/internal/costmodel"
)

// Method "auto" must be a pure routing decision: the frame it produces
// is byte-identical to running the selected method as a fixed config.
func TestAutoByteIdenticalToSelectedMethod(t *testing.T) {
	base := Config{
		Dataset: "engine_low",
		Width:   128, Height: 128,
		P: 4, RotX: 20, RotY: 30,
	}

	auto := base
	auto.Method = "auto"
	autoRow, autoImg, err := RunWithImage(auto)
	if err != nil {
		t.Fatalf("auto run: %v", err)
	}
	if !autoRow.Auto {
		t.Fatal("row must record the method was auto-selected")
	}

	// The row reports the compositor's display name; resolve back to the
	// registry name to re-run it as a fixed method.
	var fixedName string
	for _, m := range autotune.Candidates() {
		fixed := base
		fixed.Method = m
		plan, err := NewPlan(fixed)
		if err != nil {
			t.Fatalf("plan %s: %v", m, err)
		}
		if plan.Comp.Name() == autoRow.Method {
			fixedName = m
			break
		}
	}
	if fixedName == "" {
		t.Fatalf("auto selected %q, which is not a candidate method", autoRow.Method)
	}

	fixed := base
	fixed.Method = fixedName
	fixedRow, fixedImg, err := RunWithImage(fixed)
	if err != nil {
		t.Fatalf("fixed run %s: %v", fixedName, err)
	}
	if fixedRow.Auto {
		t.Fatal("fixed-method row must not be marked auto")
	}
	if !bytes.Equal(autoImg.AppendGray(nil), fixedImg.AppendGray(nil)) {
		t.Fatalf("auto (via %s) and fixed %s frames differ", autoRow.Method, fixedName)
	}
	if d := autoImg.MaxAbsDiff(fixedImg, autoImg.Full()); d != 0 {
		t.Fatalf("auto and fixed pixels differ by %g", d)
	}
}

// A shared selector must carry state across frames: the first auto
// frame seeds features by pre-scan, later frames reuse stats-derived
// features and keep producing valid selections.
func TestAutoSharedSelectorAcrossFrames(t *testing.T) {
	sel := autotune.NewSelector(costmodel.SP2(), autotune.TransportMP)
	cfg := Config{
		Dataset: "engine_low",
		Width:   96, Height: 96,
		P: 4, Method: "auto",
		Selector: sel,
	}
	if _, ok := sel.Features(); ok {
		t.Fatal("selector must start with no features")
	}
	for f := 0; f < 3; f++ {
		cfg.RotY = float64(40 * f)
		row, err := Run(cfg)
		if err != nil {
			t.Fatalf("frame %d: %v", f, err)
		}
		if !row.Auto {
			t.Fatalf("frame %d: not auto-selected", f)
		}
	}
	if _, ok := sel.Features(); !ok {
		t.Fatal("selector must hold stats-derived features after frames ran")
	}
	snap := sel.Snapshot()
	if snap.Observed < 3 {
		t.Fatalf("selector observed %d frames, want >= 3", snap.Observed)
	}
	total := 0
	for _, n := range snap.Selected {
		total += n
	}
	if total < 3 {
		t.Fatalf("selection counts %v, want >= 3 total", snap.Selected)
	}
}

// Auto must work through the non-power-of-two fold and validate against
// the sequential reference.
func TestAutoNonPowerOfTwoValidates(t *testing.T) {
	row, err := Run(Config{
		Dataset: "engine_low",
		Width:   96, Height: 96,
		P: 3, Method: "auto",
		Validate: true,
	})
	if err != nil {
		t.Fatalf("auto P=3: %v", err)
	}
	if !row.Auto {
		t.Fatal("row must be marked auto")
	}
}

func TestCheckAcceptsAuto(t *testing.T) {
	cfg := Config{Dataset: "cube", Width: 64, Height: 64, P: 3, Method: "auto"}
	if err := cfg.Check(); err != nil {
		t.Fatalf("Check must accept auto with non-power-of-two P: %v", err)
	}
	cfg.Method = "autobahn"
	if err := cfg.Check(); err == nil {
		t.Fatal("Check must reject unknown methods")
	}
}
