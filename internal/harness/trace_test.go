package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"sortlast/internal/trace"
)

// TestTracedBSBRCRun is the acceptance run for the span recorder: a
// BSBRC frame at P=8 must produce, on every rank, a render span plus
// distinct encode/send-wait/recv-wait/composite slices for each of the
// three binary-swap stages, properly nested, and the Perfetto export
// must carry one track per rank.
func TestTracedBSBRCRun(t *testing.T) {
	rec := trace.NewRecorder(8)
	cfg := Config{
		Dataset: "cube", Method: "bsbrc",
		Width: 64, Height: 64, P: 8, RotY: 30,
		Trace: rec,
	}
	row, img, ranks, err := RunFull(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if row == nil || img == nil || len(ranks) != 8 {
		t.Fatalf("RunFull returned row=%v img=%v ranks=%d", row, img, len(ranks))
	}

	stages := []string{"stage1", "stage2", "stage3"}
	totalComposite := 0
	for r := 0; r < 8; r++ {
		spans := rec.Rank(r).Spans()
		if err := trace.ValidateNesting(spans); err != nil {
			t.Errorf("rank %d: %v", r, err)
		}
		count := func(name, stage string) int {
			n := 0
			for _, s := range spans {
				if s.Name == name && s.Stage == stage {
					n++
				}
			}
			return n
		}
		for _, phase := range []string{trace.SpanRender, trace.SpanRaycast, trace.SpanCompositing, trace.SpanBound} {
			if count(phase, "") != 1 {
				t.Errorf("rank %d: %d %q spans, want 1", r, count(phase, ""), phase)
			}
		}
		if count(trace.SpanGather, trace.StageGather) != 1 {
			t.Errorf("rank %d: missing gather span", r)
		}
		for k, lbl := range stages {
			for _, name := range []string{lbl, trace.SpanEncode, trace.SpanSendWait, trace.SpanRecvWait} {
				if count(name, lbl) != 1 {
					t.Errorf("rank %d stage %s: %d %q spans, want 1", r, lbl, count(name, lbl), name)
				}
			}
			// The composite slice appears exactly when the stage received
			// a non-empty rectangle; the run's own counters say which.
			want := 0
			if !ranks[r].Stages[k].RecvRectEmpty {
				want = 1
			}
			if count(trace.SpanComposite, lbl) != want {
				t.Errorf("rank %d stage %s: %d composite spans, want %d",
					r, lbl, count(trace.SpanComposite, lbl), want)
			}
			totalComposite += count(trace.SpanComposite, lbl)
		}
		// Child slices sit inside their stage umbrella.
		byName := map[string]trace.Span{}
		for _, s := range spans {
			byName[s.Name+"/"+s.Stage] = s
		}
		for _, lbl := range stages {
			u := byName[lbl+"/"+lbl]
			for _, name := range []string{trace.SpanEncode, trace.SpanSendWait, trace.SpanRecvWait, trace.SpanComposite} {
				c, ok := byName[name+"/"+lbl]
				if !ok {
					continue
				}
				if c.Start < u.Start || c.End() > u.End() {
					t.Errorf("rank %d stage %s: %q [%v,%v] outside umbrella [%v,%v]",
						r, lbl, name, c.Start, c.End(), u.Start, u.End())
				}
			}
		}
	}

	if totalComposite == 0 {
		t.Error("no composite spans recorded anywhere: the dense cube should over-blend at most stages")
	}

	var buf bytes.Buffer
	if err := trace.WritePerfetto(&buf, rec); err != nil {
		t.Fatal(err)
	}
	var f trace.File
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	tids := map[int]bool{}
	threadNames := map[string]bool{}
	for _, ev := range f.TraceEvents {
		switch ev.Ph {
		case "X":
			tids[ev.TID] = true
		case "M":
			if ev.Name == "thread_name" {
				threadNames[fmt.Sprint(ev.Args["name"])] = true
			}
		}
	}
	if len(tids) != 8 {
		t.Errorf("export has %d rank tracks, want 8", len(tids))
	}
	if len(threadNames) != 8 {
		t.Errorf("export names %d threads, want 8", len(threadNames))
	}
}

// TestUntracedRunUnchanged pins the zero-value behavior: a run with no
// recorder attached still completes and produces a sane row.
func TestUntracedRunUnchanged(t *testing.T) {
	cfg := Config{Dataset: "cube", Method: "bs", Width: 32, Height: 32, P: 2}
	row, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if row.TotalMS <= 0 || row.NonBlank <= 0 {
		t.Fatalf("row = %+v", row)
	}
}
